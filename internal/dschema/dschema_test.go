package dschema

import (
	"reflect"
	"strings"
	"testing"

	"pcxxstreams/internal/enc"
)

func TestParseValid(t *testing.T) {
	s, err := Parse("id:i64, mass:f64[] , label:str; density:f64")
	if err != nil {
		t.Fatal(err)
	}
	if s.NArrays() != 2 {
		t.Fatalf("NArrays = %d", s.NArrays())
	}
	if len(s.Arrays[0]) != 3 || s.Arrays[0][1].Name != "mass" || s.Arrays[0][1].Type != F64Slice {
		t.Fatalf("clause 0 = %+v", s.Arrays[0])
	}
	if s.Arrays[1][0] != (Field{Name: "density", Type: F64}) {
		t.Fatalf("clause 1 = %+v", s.Arrays[1])
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"id",            // no type
		":i64",          // no name
		"id:complex128", // unknown type
		"a:i64;;b:f64",  // empty clause
		"a:i64,a:f64",   // duplicate name
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDecodeElementAllTypes(t *testing.T) {
	var e enc.Buffer
	e.Bool(true)
	e.Int32(-9)
	e.Int64(1 << 40)
	e.Uint32(7)
	e.Uint64(1 << 50)
	e.Float32(2.5)
	e.Float64(3.75)
	e.String("hello")
	e.Bytes32([]byte{1, 2})
	e.Float64Slice([]float64{1, 2, 3})
	e.Int64Slice([]int64{-1, -2})

	s, err := Parse("b:bool,i:i32,j:i64,u:u32,v:u64,f:f32,g:f64,s:str,raw:bytes,fs:f64[],is:i64[]")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecodeElement(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"b": true, "i": int64(-9), "j": int64(1 << 40),
		"u": uint64(7), "v": uint64(1 << 50),
		"f": 2.5, "g": 3.75, "s": "hello",
		"raw": []byte{1, 2},
		"fs":  []float64{1, 2, 3}, "is": []int64{-1, -2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestDecodeElementInterleaved(t *testing.T) {
	// Two inserts: (count) then (value) — payload is their concatenation.
	var e enc.Buffer
	e.Int64(5)
	e.Float64(0.25)
	s, err := Parse("count:i64;value:f64")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecodeElement(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got["count"] != int64(5) || got["value"] != 0.25 {
		t.Fatalf("got %#v", got)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	var e enc.Buffer
	e.Int64(1)
	e.Int64(2) // not covered by schema
	s, _ := Parse("a:i64")
	if _, err := s.DecodeElement(e.Bytes()); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestDecodeRejectsShortPayload(t *testing.T) {
	s, _ := Parse("a:i64,b:f64")
	var e enc.Buffer
	e.Int64(1) // b missing
	if _, err := s.DecodeElement(e.Bytes()); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestDecodeArrayOutOfRange(t *testing.T) {
	s, _ := Parse("a:i64")
	if _, err := s.DecodeArray(enc.NewReader(nil), 1); err == nil {
		t.Fatal("array index out of range accepted")
	}
}
