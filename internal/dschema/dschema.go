// Package dschema decodes d/stream element payloads generically, given a
// textual description of the layout an application's inserters produced.
// It powers cmd/ds2json, which exports any d/stream file to JSON for
// external tools — the paper's §2 "communicating [results] to other
// applications and tools" task without writing a Go reader.
//
// # Schema language
//
// A schema describes the payload of one record, one clause per interleaved
// array (insert), clauses separated by ';'. Each clause is a
// comma-separated list of name:type fields:
//
//	id:i64,mass:f64[],label:str ; density:f64
//
// Types: bool, i32, i64, u32, u64, f32, f64, str, bytes, and the
// length-prefixed slices f64[] and i64[] — exactly the encodings the
// dstream Encoder produces, so a schema is a transliteration of the
// element type's StreamInsert body.
package dschema

import (
	"fmt"
	"strings"

	"pcxxstreams/internal/enc"
)

// FieldType enumerates the decodable payload field kinds.
type FieldType uint8

// Field kinds, matching the dstream Encoder's methods.
const (
	Bool FieldType = iota
	I32
	I64
	U32
	U64
	F32
	F64
	Str
	Bytes
	F64Slice
	I64Slice
)

var typeNames = map[string]FieldType{
	"bool": Bool, "i32": I32, "i64": I64, "u32": U32, "u64": U64,
	"f32": F32, "f64": F64, "str": Str, "bytes": Bytes,
	"f64[]": F64Slice, "i64[]": I64Slice,
}

// Field is one named value within an element payload.
type Field struct {
	Name string
	Type FieldType
}

// Schema describes a whole record: one field list per interleaved array.
type Schema struct {
	Arrays [][]Field
}

// Parse reads the schema language.
func Parse(s string) (*Schema, error) {
	sch := &Schema{}
	for ai, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("dschema: empty clause %d", ai)
		}
		var fields []Field
		seen := map[string]bool{}
		for fi, fieldSpec := range strings.Split(clause, ",") {
			fieldSpec = strings.TrimSpace(fieldSpec)
			name, typ, ok := strings.Cut(fieldSpec, ":")
			if !ok {
				return nil, fmt.Errorf("dschema: clause %d field %d: want name:type, got %q", ai, fi, fieldSpec)
			}
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("dschema: clause %d field %d: empty name", ai, fi)
			}
			if seen[name] {
				return nil, fmt.Errorf("dschema: clause %d: duplicate field %q", ai, name)
			}
			seen[name] = true
			ft, ok := typeNames[strings.TrimSpace(typ)]
			if !ok {
				return nil, fmt.Errorf("dschema: clause %d field %q: unknown type %q", ai, name, typ)
			}
			fields = append(fields, Field{Name: name, Type: ft})
		}
		sch.Arrays = append(sch.Arrays, fields)
	}
	return sch, nil
}

// NArrays returns the number of interleaved arrays the schema describes.
func (s *Schema) NArrays() int { return len(s.Arrays) }

// DecodeArray decodes the arrayIdx-th insert's fields of one element from
// d, in schema order. The returned map values are JSON-friendly (int64,
// uint64, float64, bool, string, []float64, []int64, []byte).
func (s *Schema) DecodeArray(d *enc.Reader, arrayIdx int) (map[string]any, error) {
	if arrayIdx < 0 || arrayIdx >= len(s.Arrays) {
		return nil, fmt.Errorf("dschema: array %d out of range [0,%d)", arrayIdx, len(s.Arrays))
	}
	out := make(map[string]any, len(s.Arrays[arrayIdx]))
	for _, f := range s.Arrays[arrayIdx] {
		var v any
		switch f.Type {
		case Bool:
			v = d.Bool()
		case I32:
			v = int64(d.Int32())
		case I64:
			v = d.Int64()
		case U32:
			v = uint64(d.Uint32())
		case U64:
			v = d.Uint64()
		case F32:
			v = float64(d.Float32())
		case F64:
			v = d.Float64()
		case Str:
			v = d.String()
		case Bytes:
			v = d.Bytes32()
		case F64Slice:
			v = d.Float64Slice()
		case I64Slice:
			v = d.Int64Slice()
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("dschema: field %q: %w", f.Name, err)
		}
		out[f.Name] = v
	}
	return out, nil
}

// DecodeElement decodes a whole element payload (all arrays, interleaved
// order) and reports an error if bytes remain undecoded — a schema that
// does not match the payload exactly is rejected rather than silently
// misread.
func (s *Schema) DecodeElement(payload []byte) (map[string]any, error) {
	d := enc.NewReader(payload)
	out := map[string]any{}
	for ai := range s.Arrays {
		m, err := s.DecodeArray(d, ai)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			out[k] = v
		}
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("dschema: %d bytes of payload not covered by schema", d.Remaining())
	}
	return out, nil
}
