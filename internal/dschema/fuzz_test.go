package dschema

import (
	"math"
	"strings"
	"testing"

	"pcxxstreams/internal/enc"
)

// FuzzParse: no schema string may panic the parser, and anything it accepts
// must describe at least one non-empty array with named fields.
func FuzzParse(f *testing.F) {
	f.Add("id:i64,mass:f64[],label:str ; density:f64")
	f.Add("a:bool")
	f.Add("")
	f.Add(";;")
	f.Add("x:i32,x:i64")
	f.Add("p:f64[] ; q:i64[] ; r:bytes,s:u32,t:u64,u:f32")
	f.Fuzz(func(t *testing.T, s string) {
		sch, err := Parse(s)
		if err != nil {
			return
		}
		if sch.NArrays() == 0 {
			t.Fatalf("accepted schema %q has no arrays", s)
		}
		for ai, fields := range sch.Arrays {
			if len(fields) == 0 {
				t.Fatalf("accepted schema %q: array %d has no fields", s, ai)
			}
			for _, fd := range fields {
				if fd.Name == "" {
					t.Fatalf("accepted schema %q: empty field name in array %d", s, ai)
				}
			}
		}
	})
}

// FuzzDecodeElement: arbitrary payload bytes against an arbitrary (valid)
// schema must decode cleanly or error — never panic, never read out of
// bounds.
func FuzzDecodeElement(f *testing.F) {
	f.Add("id:i64,mass:f64", []byte(nil))
	f.Add("s:str", []byte{4, 0, 0, 0, 'a', 'b', 'c', 'd'})
	f.Add("v:f64[]", []byte{0xff, 0xff, 0xff, 0xff})
	f.Add("b:bool ; w:u32", []byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, schema string, payload []byte) {
		sch, err := Parse(schema)
		if err != nil {
			return
		}
		m, err := sch.DecodeElement(payload)
		if err == nil && m == nil {
			t.Fatal("successful decode returned nil map")
		}
	})
}

// FuzzSchemaRoundTrip is the generative property: derive a payload from the
// schema itself (encoding one value per field with the dstream encoder the
// schema language mirrors), then decode it; every field must come back with
// its value, and no bytes may be left over.
func FuzzSchemaRoundTrip(f *testing.F) {
	f.Add("id:i64,mass:f64[],label:str ; density:f64", uint64(1))
	f.Add("a:bool,b:i32,c:i64,d:u32,e:u64,g:f32,h:f64,i:str,j:bytes,k:f64[],l:i64[]", uint64(42))
	f.Fuzz(func(t *testing.T, schema string, seed uint64) {
		sch, err := Parse(schema)
		if err != nil {
			return
		}
		next := func() uint64 { // splitmix64: deterministic per-field values
			seed += 0x9E3779B97F4A7C15
			z := seed
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return z ^ (z >> 31)
		}

		var e enc.Buffer
		want := map[string]any{}
		for _, fields := range sch.Arrays {
			for _, fd := range fields {
				v := next()
				switch fd.Type {
				case Bool:
					b := v&1 == 1
					e.Bool(b)
					want[fd.Name] = b
				case I32:
					e.Int32(int32(v))
					want[fd.Name] = int64(int32(v))
				case I64:
					e.Int64(int64(v))
					want[fd.Name] = int64(v)
				case U32:
					e.Uint32(uint32(v))
					want[fd.Name] = uint64(uint32(v))
				case U64:
					e.Uint64(v)
					want[fd.Name] = v
				case F32:
					fv := float32(v%1000) / 7
					e.Float32(fv)
					want[fd.Name] = float64(fv)
				case F64:
					fv := float64(v%100000) / 13
					e.Float64(fv)
					want[fd.Name] = fv
				case Str:
					s := strings.Repeat("s", int(v%9))
					e.String(s)
					want[fd.Name] = s
				case Bytes:
					p := make([]byte, v%9)
					for i := range p {
						p[i] = byte(v >> (i % 8))
					}
					e.Bytes32(p)
					want[fd.Name] = p
				case F64Slice:
					fs := make([]float64, v%7)
					for i := range fs {
						fs[i] = float64(i) * 1.5
					}
					e.Float64Slice(fs)
					want[fd.Name] = fs
				case I64Slice:
					is := make([]int64, v%7)
					for i := range is {
						is[i] = int64(v) - int64(i)
					}
					e.Int64Slice(is)
					want[fd.Name] = is
				}
			}
		}

		got, err := sch.DecodeElement(e.Bytes())
		if err != nil {
			t.Fatalf("decoding a schema-derived payload failed: %v", err)
		}
		// Later duplicate names across arrays overwrite earlier ones in the
		// decoded map; want was built the same way, so compare directly.
		if len(got) != len(want) {
			t.Fatalf("decoded %d fields, want %d", len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("field %q missing from decode", k)
			}
			if !valuesEqual(g, w) {
				t.Fatalf("field %q = %#v, want %#v", k, g, w)
			}
		}
	})
}

func valuesEqual(a, b any) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && math.Float64bits(x) == math.Float64bits(y)
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	case []int64:
		y, ok := b.([]int64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
