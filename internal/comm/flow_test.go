package comm

import (
	"testing"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// TestSendRecvFlow pins the msg causal edge: each Send span is connected to
// exactly the Recv span that consumed its sequence number, the edge points
// from sender to receiver, and the endpoint spans carry sane timestamps.
func TestSendRecvFlow(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	mon := dsmon.NewTracing()
	var c0, c1 vtime.Clock
	e0 := NewEndpoint(0, 2, tr, &c0, vtime.Challenge()).SetMonitor(mon)
	e1 := NewEndpoint(1, 2, tr, &c1, vtime.Challenge()).SetMonitor(mon)

	const n = 3
	for i := 0; i < n; i++ {
		if err := e0.Send(1, 7, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if _, err := e1.Recv(0, 7); err != nil {
			t.Fatal(err)
		}
	}

	rec := mon.Recorder()
	flows := rec.Flows()
	if len(flows) != n {
		t.Fatalf("got %d msg edges, want %d: %v", len(flows), n, flows)
	}
	byID := map[trace.SpanID]trace.Event{}
	for _, ev := range rec.Events() {
		if ev.ID != 0 {
			byID[ev.ID] = ev
		}
	}
	for _, f := range flows {
		if f.Kind != "msg" {
			t.Fatalf("edge kind %q, want msg", f.Kind)
		}
		from, ok := byID[f.From]
		if !ok {
			t.Fatalf("edge %v has dangling source", f)
		}
		to, ok := byID[f.To]
		if !ok {
			t.Fatalf("edge %v has dangling sink", f)
		}
		if from.Name != "Send" || from.Node != 0 {
			t.Fatalf("edge source = %+v, want a Send span on node 0", from)
		}
		if to.Name != "Recv" || to.Node != 1 {
			t.Fatalf("edge sink = %+v, want a Recv span on node 1", to)
		}
		// The receive completes at the message's arrival or later; a message
		// cannot be consumed before the sender's span began.
		if to.End < from.Start {
			t.Fatalf("receive span ends (%v) before the send began (%v)", to.End, from.Start)
		}
	}
}
