package comm

import (
	"sync"
	"sync/atomic"

	"pcxxstreams/internal/dsmon"
)

// This file holds the lock-free machinery under the mailbox: a bounded
// MPMC ring per (sender, receiver) pair and the broadcast wakeup gates
// that replace the old mutex + condition variable. The shape follows the
// classic bounded MPMC queue (per-slot sequence stamps, CAS'd head and
// tail indices): steady-state enqueue and dequeue are a CAS plus two
// atomic loads each, with no locks anywhere on the send path.
//
// The ring is MPMC rather than SPSC even though the common producer for a
// (sender, receiver) pair is one rank goroutine: retransmission layers
// (chaos delay/duplicate faults) deliver copies from timer goroutines, and
// the TCP transport's read loops produce on behalf of remote ranks — so
// multiple producers per pair are a fact of the system, not a corner case.

// defaultRingCap is the per-pair ring capacity (must be a power of two).
// 128 slots absorb a full collective chunk window; a producer that
// outruns its consumer by more than this blocks (bulk payloads on the
// in-process transport) or spills to the unbounded overflow (wire readers
// and small eager messages), but never drops.
const defaultRingCap = 128

type ringSlot struct {
	seq atomic.Uint64
	msg Message
}

// ring is the bounded lock-free MPMC queue. A slot's sequence stamp
// encodes its state: seq == tail means free for the producer claiming
// tail, seq == head+1 means filled for the consumer claiming head, and
// the stamp advances by the capacity on each reuse so late producers and
// consumers always observe a stale stamp and retry or report full/empty.
type ring struct {
	mask  uint64
	slots []ringSlot
	_     [48]byte // keep head and tail on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
}

func newRing(capacity int) *ring {
	if capacity&(capacity-1) != 0 || capacity <= 0 {
		panic("comm: ring capacity must be a positive power of two")
	}
	r := &ring{mask: uint64(capacity - 1), slots: make([]ringSlot, capacity)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPut claims the tail slot and stores m. It returns false when the
// ring is full — the caller decides between blocking (in-process senders)
// and spilling to the overflow list (wire readers, which must not stall).
func (r *ring) tryPut(m Message) bool {
	for {
		tail := r.tail.Load()
		s := &r.slots[tail&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail:
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.msg = m
				s.seq.Store(tail + 1) // publish: consumer may take the slot now
				return true
			}
		case seq < tail:
			return false // the consumer has not freed this slot yet: full
		}
		// seq > tail: another producer advanced the tail under us; retry.
	}
}

// tryTake claims the head slot and returns its message, or false when the
// ring is empty.
func (r *ring) tryTake() (Message, bool) {
	for {
		head := r.head.Load()
		s := &r.slots[head&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == head+1:
			if r.head.CompareAndSwap(head, head+1) {
				m := s.msg
				s.msg = Message{} // drop the payload reference with the slot
				s.seq.Store(head + uint64(len(r.slots)))
				return m, true
			}
		case seq < head+1:
			return Message{}, false // the producer has not filled it: empty
		}
	}
}

// gate is a broadcast wakeup point. A waiter registers (enter), re-checks
// its condition, and parks on the returned channel; wake closes the
// current generation's channel, releasing every parked waiter at once.
// When nobody waits, wake is a single atomic load — the cost the hot send
// path pays per message.
//
// The missed-wakeup argument: a waiter increments waiters before its
// re-check, and a producer publishes its message before wake loads
// waiters. Both operations are sequentially consistent atomics, so either
// the producer observes the waiter (and closes the channel it parks on),
// or the waiter's re-check observes the message. There is no interleaving
// in which the message is published, the waiter parks, and nobody wakes it.
type gate struct {
	waiters atomic.Int32
	ch      atomic.Pointer[chan struct{}]
}

// enter registers the caller as a waiter and returns the channel to park
// on. The caller must re-check its wakeup condition between enter and
// parking, and must call leave exactly once afterward.
func (g *gate) enter() <-chan struct{} {
	g.waiters.Add(1)
	for {
		if p := g.ch.Load(); p != nil {
			return *p
		}
		ch := make(chan struct{})
		if g.ch.CompareAndSwap(nil, &ch) {
			return ch
		}
	}
}

func (g *gate) leave() { g.waiters.Add(-1) }

// wake releases every currently registered waiter.
func (g *gate) wake() {
	if g.waiters.Load() == 0 {
		return
	}
	if p := g.ch.Swap(nil); p != nil {
		close(*p)
	}
}

// ringCounters aggregates mailbox-path events across a transport. All
// fields are atomics: producers on arbitrary goroutines bump them, and
// RingStats/dsmon collectors read them concurrently, so the counters are
// race-free by construction (the old Stats structs were goroutine-local
// and could not be scraped mid-run).
type ringCounters struct {
	ringPuts  atomic.Int64 // messages enqueued on the lock-free fast path
	spills    atomic.Int64 // messages diverted to the unbounded overflow list
	takes     atomic.Int64 // messages drained out of rings and overflow
	fullStall atomic.Int64 // producer blocks on a full ring (backpressure events)
	assists   atomic.Int64 // messages a blocked producer drained from its own inbox
	parks     atomic.Int64 // consumer parks (receiver found nothing and slept)
}

// RingStats is a point-in-time snapshot of a transport's mailbox-path
// counters. Safe to take from any goroutine at any time.
type RingStats struct {
	// RingPuts counts messages enqueued on the lock-free ring fast path;
	// Spills counts messages diverted to the unbounded overflow list (ring
	// full on a path that must not block, or an out-of-range sender rank).
	RingPuts, Spills int64
	// Takes counts messages drained toward delivery.
	Takes int64
	// FullStalls counts producer blocks on a full ring — the backpressure
	// events; Assists counts messages such blocked producers drained from
	// their own inboxes to keep symmetric exchanges deadlock-free.
	FullStalls, Assists int64
	// ConsumerParks counts receiver sleeps (nothing matching was staged).
	ConsumerParks int64
}

func (c *ringCounters) snapshot() RingStats {
	return RingStats{
		RingPuts:      c.ringPuts.Load(),
		Spills:        c.spills.Load(),
		Takes:         c.takes.Load(),
		FullStalls:    c.fullStall.Load(),
		Assists:       c.assists.Load(),
		ConsumerParks: c.parks.Load(),
	}
}

func (c *ringCounters) reset() {
	c.ringPuts.Store(0)
	c.spills.Store(0)
	c.takes.Store(0)
	c.fullStall.Store(0)
	c.assists.Store(0)
	c.parks.Store(0)
}

// ringBound maps a registry to the indirection cell its comm_ring_*
// collector reads. Gauges and the collector are registered once per
// registry; successive transports on the same monitor (monitors outlive
// machine runs) just swap the cell, so a stale transport can never
// overwrite a live one's numbers.
var ringBound sync.Map // *dsmon.Registry -> *atomic.Pointer[ringCounters]

// bindRingMetrics exports ctr as comm_ring_* gauges on the monitor's
// registry, refreshed by a registry collector at each gather — the same
// glue shape the machine uses for bufpool's process-global stats.
func bindRingMetrics(m *dsmon.Monitor, ctr *ringCounters) {
	reg := m.Registry()
	if reg == nil {
		return
	}
	cell, bound := ringBound.LoadOrStore(reg, new(atomic.Pointer[ringCounters]))
	p := cell.(*atomic.Pointer[ringCounters])
	p.Store(ctr)
	if bound {
		return
	}
	puts := reg.Gauge("comm_ring_puts_total", "messages enqueued on the lock-free mailbox ring fast path")
	spills := reg.Gauge("comm_ring_spills_total", "messages diverted to the unbounded mailbox overflow list")
	takes := reg.Gauge("comm_ring_takes_total", "messages drained out of mailbox rings and overflow")
	stalls := reg.Gauge("comm_ring_full_stalls_total", "producer blocks on a full mailbox ring (backpressure events)")
	assists := reg.Gauge("comm_ring_assists_total", "messages blocked producers drained from their own inboxes")
	parks := reg.Gauge("comm_ring_consumer_parks_total", "receiver sleeps on an empty mailbox")
	reg.AddCollector(func() {
		c := p.Load()
		if c == nil {
			return
		}
		st := c.snapshot()
		puts.Set(float64(st.RingPuts))
		spills.Set(float64(st.Spills))
		takes.Set(float64(st.Takes))
		stalls.Set(float64(st.FullStalls))
		assists.Set(float64(st.Assists))
		parks.Set(float64(st.ConsumerParks))
	})
}
