package comm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/vtime"
)

// The mailbox torture suite: the linearizability properties the lock-free
// rings must uphold — per-sender FIFO, no loss, no duplication — hammered
// with 1k-message bursts, randomized scheduling jitter, mixed eager/bulk
// payloads, and delayed consumers (so the bursts overflow the 128-slot
// rings and exercise the spill path's ordering guard). Run under -race in
// `make check`, where the detector turns any unsynchronized slot access
// into a hard failure.

// tortureJitter perturbs the goroutine schedule: mostly yields, sometimes
// a real sleep, driven by the sender's private seeded RNG so runs vary
// across seeds but one failure is reproducible from its seed.
func tortureJitter(rng *rand.Rand) {
	switch rng.Intn(20) {
	case 0:
		time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
	case 1, 2, 3, 4, 5:
		runtime.Gosched()
	}
}

// torturePayload builds the self-describing payload for message i of
// sender s: the index, the sender, and a size chosen by class — small
// (eager path), occasionally bulk (rendezvous path) for mixed senders.
func torturePayload(s, i int, bulk bool) []byte {
	size := 16
	if bulk {
		size = eagerMaxBytes + 512
	}
	p := make([]byte, size)
	binary.LittleEndian.PutUint32(p, uint32(i))
	binary.LittleEndian.PutUint32(p[4:], uint32(s))
	p[8] = byte(i * s) // a content byte past the header, checked on receive
	return p
}

func checkTorturePayload(s, i int, d []byte) error {
	if got := int(binary.LittleEndian.Uint32(d)); got != i {
		return fmt.Errorf("sender %d message %d: index %d out of order", s, i, got)
	}
	if got := int(binary.LittleEndian.Uint32(d[4:])); got != s {
		return fmt.Errorf("sender %d message %d: carries sender %d", s, i, got)
	}
	if d[8] != byte(i*s) {
		return fmt.Errorf("sender %d message %d: content corrupted", s, i)
	}
	return nil
}

// TestMailboxTortureRawFIFO drives the raw transport (Seq 0 — no
// reassembly safety net) with four concurrent 1k bursts into one rank. The
// consumers start late, so every burst overflows its 128-slot ring into
// the overflow list and back; delivery must still be exactly the send
// order, with every message delivered exactly once. One sender is
// all-bulk, so the rendezvous backpressure path runs concurrently with
// the eager spills.
func TestMailboxTortureRawFIFO(t *testing.T) {
	const (
		senders = 4
		burst   = 1000
	)
	tr := NewChanTransport(senders + 1)
	defer tr.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2*senders)
	start := make(chan struct{})
	// Eager senders signal once they are far past ring capacity, and their
	// consumers hold off until then — so every eager burst provably
	// overruns its 128-slot ring into the overflow, under any scheduler
	// (including the slowed-down -race and pooldebug builds). The all-bulk
	// sender gets no such gate: it must block on its full ring instead.
	const overrun = 3 * defaultRingCap
	ahead := make([]chan struct{}, senders+1)
	for s := 1; s < senders; s++ {
		ahead[s] = make(chan struct{})
	}
	for s := 1; s <= senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			<-start
			for i := 0; i < burst; i++ {
				bulk := s == senders || (s%2 == 0 && i%13 == 0)
				if err := tr.Send(Message{From: s, To: 0, Tag: 0x70, Data: torturePayload(s, i, bulk)}); err != nil {
					errs <- fmt.Errorf("sender %d message %d: %v", s, i, err)
					return
				}
				if s < senders && i == overrun {
					close(ahead[s])
				}
				tortureJitter(rng)
			}
		}()
	}
	// One consumer goroutine per sender stream: concurrent receivers on the
	// same mailbox are part of the contract (collective trees do this).
	for s := 1; s <= senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + s)))
			<-start
			if s < senders {
				<-ahead[s] // the burst has overrun the ring; start consuming
			} else {
				// Give the all-bulk sender time to fill its ring and park on
				// the backpressure path before draining it.
				time.Sleep(2 * time.Millisecond)
			}
			for i := 0; i < burst; i++ {
				m, err := tr.Recv(0, s, 0x70)
				if err != nil {
					errs <- fmt.Errorf("recv from %d message %d: %v", s, i, err)
					return
				}
				perr := checkTorturePayload(s, i, m.Data)
				bufpool.Put(m.Data)
				if perr != nil {
					errs <- perr
					// The test has failed; keep draining so blocked bulk
					// senders can finish and the test reports instead of
					// timing out.
					for i++; i < burst; i++ {
						if m, err := tr.Recv(0, s, 0x70); err == nil {
							bufpool.Put(m.Data)
						} else {
							return
						}
					}
					return
				}
				tortureJitter(rng)
			}
			// No extras: the stream must be exactly drained. A duplicate
			// would surface here (or as an out-of-order index above).
			if _, err := tr.boxes[0].getWithin(s, 0x70, 20*time.Millisecond); err == nil {
				errs <- fmt.Errorf("sender %d: message beyond the burst — duplication", s)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := tr.RingStats()
	t.Logf("ring stats: %+v", st)
	if st.Spills == 0 {
		t.Error("torture burst never spilled — the overflow ordering path went unexercised")
	}
	if st.RingPuts == 0 {
		t.Error("torture burst never used the ring fast path")
	}
}

// TestMailboxTortureSequenced runs the same burst shape through Endpoints
// (Seq != 0, the machine's real path): sequencing, dedup, and reassembly
// sit on top of the rings and the result must still be exactly-once
// in-order per stream.
func TestMailboxTortureSequenced(t *testing.T) {
	const (
		senders = 3
		burst   = 1000
	)
	tr := NewChanTransport(senders + 1)
	defer tr.Close()
	prof := vtime.Paragon()

	var wg sync.WaitGroup
	errs := make(chan error, senders+1)
	for s := 1; s <= senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			var clk vtime.Clock
			ep := NewEndpoint(s, senders+1, tr, &clk, prof)
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < burst; i++ {
				p := torturePayload(s, i, s%3 == 0 && i%17 == 0)
				if err := ep.Send(0, 0x71, p); err != nil {
					errs <- fmt.Errorf("sender %d message %d: %v", s, i, err)
					return
				}
				tortureJitter(rng)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var clk vtime.Clock
		ep := NewEndpoint(0, senders+1, tr, &clk, prof)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < burst; i++ {
			for s := 1; s <= senders; s++ {
				d, err := ep.Recv(s, 0x71)
				if err != nil {
					errs <- fmt.Errorf("recv from %d message %d: %v", s, i, err)
					return
				}
				perr := checkTorturePayload(s, i, d)
				bufpool.Put(d)
				if perr != nil {
					errs <- perr
					// Drain the rest so blocked senders finish and the test
					// reports instead of timing out.
					drain := func(u int) bool {
						d, err := ep.Recv(u, 0x71)
						if err == nil {
							bufpool.Put(d)
						}
						return err == nil
					}
					for u := s + 1; u <= senders; u++ {
						if !drain(u) {
							return
						}
					}
					for r := i + 1; r < burst; r++ {
						for u := 1; u <= senders; u++ {
							if !drain(u) {
								return
							}
						}
					}
					return
				}
			}
			tortureJitter(rng)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
