package comm

import (
	"bytes"
	"testing"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/vtime"
)

// TestRecvSurvivesSenderRecycle pins the transport ownership contract: Send
// copies the payload before returning, so a sender may Put its buffer back
// to the pool — and even watch the pool recycle it into a new, overwritten
// message — without the in-flight payload changing under the receiver.
func TestRecvSurvivesSenderRecycle(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		const rounds = 32
		wants := make([][]byte, rounds)
		for i := 0; i < rounds; i++ {
			buf := bufpool.Get(512)
			for j := range buf {
				buf[j] = byte(i)
			}
			wants[i] = bytes.Clone(buf)
			if err := tr.Send(Message{From: 0, To: 1, Tag: 5, Seq: uint64(i + 1), Data: buf}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			// Sender recycles immediately: scribble, release, and let the
			// next round's Get likely hand the same bytes back.
			for j := range buf {
				buf[j] = 0xEE
			}
			bufpool.Put(buf)
		}
		for i := 0; i < rounds; i++ {
			m, err := tr.Recv(1, 0, 5)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if !bytes.Equal(m.Data, wants[i]) {
				t.Fatalf("message %d corrupted by sender recycle: got %x... want %x...", i, m.Data[:4], wants[i][:4])
			}
			// Receiver owns the payload; returning it is part of the contract
			// under test — the next messages must still arrive intact.
			bufpool.Put(m.Data)
		}
	})
}

// TestEndpointRecvPayloadOwnership is the same contract one layer up: the
// sequenced Endpoint's Recv hands the caller a payload that stays intact
// while the sender's buffer lives on, and that the caller may release.
func TestEndpointRecvPayloadOwnership(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	prof := vtime.Paragon()
	snd := NewEndpoint(0, 2, tr, &c0, prof)
	rcv := NewEndpoint(1, 2, tr, &c1, prof).SetRecvDeadline(5 * time.Second)

	buf := bufpool.Get(1024)
	for j := range buf {
		buf[j] = 0xAB
	}
	want := bytes.Clone(buf)
	if err := snd.Send(1, 9, buf); err != nil {
		t.Fatal(err)
	}
	for j := range buf {
		buf[j] = 0 // sender reuses its buffer the instant Send returns
	}
	bufpool.Put(buf)

	got, err := rcv.Recv(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("endpoint payload aliased the sender's recycled buffer")
	}
	bufpool.Put(got)
}
