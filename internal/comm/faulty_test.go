package comm

import (
	"testing"
	"time"
)

func TestFaultyTransportBudget(t *testing.T) {
	tr := NewFaultyTransport(NewChanTransport(2), 2)
	if err := tr.Send(Message{From: 0, To: 1, Tag: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 1, Tag: 2, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 1, Tag: 3, Data: []byte("c")}); err == nil {
		t.Fatal("third send succeeded past budget")
	}
	// Transport is dead: receivers get errors, further sends fail fast.
	if err := tr.Send(Message{From: 0, To: 1, Tag: 4}); err == nil {
		t.Fatal("send on dead transport succeeded")
	}
	if _, err := tr.Recv(1, 0, 99); err == nil {
		t.Fatal("recv on dead transport succeeded")
	}
}

// TestFaultyTransportReleasesBlockedReceivers: a receiver already parked in
// Recv is woken with an error when the link dies — the documented guarantee
// that a crashed interconnect surfaces as errors, never a hang.
func TestFaultyTransportReleasesBlockedReceivers(t *testing.T) {
	tr := NewFaultyTransport(NewChanTransport(2), 0)
	errc := make(chan error, 1)
	go func() {
		_, err := tr.Recv(1, 0, 7)
		errc <- err
	}()
	// The first send exhausts the (zero) budget and kills the transport.
	if err := tr.Send(Message{From: 0, To: 1, Tag: 7}); err == nil {
		t.Fatal("send with zero budget succeeded")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked receiver not released with error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked receiver still parked after budget trip")
	}
}

// TestFaultyTransportPostDeathRecvFailsFast: a receive issued after the
// budget trips must not park at all — there is no message coming, and the
// death is permanent.
func TestFaultyTransportPostDeathRecvFailsFast(t *testing.T) {
	tr := NewFaultyTransport(NewChanTransport(2), 0)
	if err := tr.Send(Message{From: 0, To: 1, Tag: 1}); err == nil {
		t.Fatal("send with zero budget succeeded")
	}
	done := make(chan error, 2)
	go func() {
		_, err := tr.Recv(1, 0, 1)
		done <- err
	}()
	go func() {
		_, err := tr.RecvWithin(1, 0, 1, time.Hour) // deadline must be irrelevant
		done <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("post-death receive returned a message")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("post-death receive blocked instead of failing fast")
		}
	}
}

// TestFaultyTransportErrorsAreFatal: the injected failure models a crashed
// node — endpoints must not retry it, so it must not read as transient.
func TestFaultyTransportErrorsAreFatal(t *testing.T) {
	tr := NewFaultyTransport(NewChanTransport(2), 0)
	err := tr.Send(Message{From: 0, To: 1, Tag: 1})
	if err == nil {
		t.Fatal("send with zero budget succeeded")
	}
	if IsTransient(err) {
		t.Fatalf("budget-trip error is transient (%v); endpoints would retry a dead link", err)
	}
	if _, rerr := tr.Recv(1, 0, 1); rerr == nil {
		t.Fatal("post-death recv succeeded")
	} else if IsTransient(rerr) {
		t.Fatalf("post-death recv error is transient: %v", rerr)
	}
}
