package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
)

// TCPTransport moves messages over real loopback TCP sockets. Every rank
// holds one multiplexed connection to a central acceptor; frames carry the
// destination rank and are dispatched into per-rank mailboxes. Virtual time
// rides in-band (the frame carries the sender's timestamp), so a program
// produces the same virtual-time results over TCP as over channels — a
// property the transport tests assert.
type TCPTransport struct {
	boxes []*mailbox
	ln    net.Listener

	mu    sync.Mutex
	conns []*tcpConn // indexed by sender rank
	wg    sync.WaitGroup
	done  chan struct{}

	// ioTimeout, when positive, bounds each socket write in real time.
	// Set before the machine run starts; read by sender goroutines.
	ioTimeout time.Duration

	// Wire-level counters (nil handles are no-ops). Unlike the Endpoint's
	// payload accounting these measure the real socket traffic: frame
	// headers included.
	mFrames    *dsmon.Counter
	mWireBytes *dsmon.Counter
}

// SetMonitor attaches wire-level counters: frames written and total bytes
// on the wire (frame headers included). Call before the machine run
// starts; the handles are read by sender goroutines without further
// synchronization.
func (t *TCPTransport) SetMonitor(m *dsmon.Monitor) {
	reg := m.Registry()
	t.mFrames = reg.Counter("comm_tcp_frames_total", "frames written to the loopback socket")
	t.mWireBytes = reg.Counter("comm_tcp_wire_bytes_total", "bytes written to the loopback socket, frame headers included")
}

type tcpConn struct {
	mu     sync.Mutex // serializes frame writes
	c      net.Conn
	w      *bufio.Writer
	broken bool // a mid-frame write failed; the byte stream is torn
	hdr    [frameHeaderLen]byte // frame-header scratch, guarded by mu
}

// frame layout: u32 payloadLen | u32 from | u32 to | u64 tag | u64 seq | u64 timeBits | payload
const frameHeaderLen = 4 + 4 + 4 + 8 + 8 + 8

// NewTCPTransport creates a transport for n ranks over loopback TCP. It
// starts a listener, dials one connection per rank, and spawns reader
// goroutines that dispatch inbound frames to mailboxes.
func NewTCPTransport(n int) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp listen: %w", err)
	}
	t := &TCPTransport{
		boxes: make([]*mailbox, n),
		ln:    ln,
		conns: make([]*tcpConn, n),
		done:  make(chan struct{}),
	}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}

	accepted := make(chan net.Conn, n)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
		close(accepted)
	}()

	for rank := 0; rank < n; rank++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: tcp dial rank %d: %w", rank, err)
		}
		t.conns[rank] = &tcpConn{c: c, w: bufio.NewWriter(c)}
	}

	// Spawn a reader per accepted connection. Which accepted socket pairs
	// with which dialer does not matter: frames self-describe From/To.
	for c := range accepted {
		c := c
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(c)
		}()
	}
	return t, nil
}

func (t *TCPTransport) readLoop(c net.Conn) {
	r := bufio.NewReader(c)
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		m := Message{
			From: int(int32(binary.LittleEndian.Uint32(hdr[4:8]))),
			To:   int(int32(binary.LittleEndian.Uint32(hdr[8:12]))),
			Tag:  binary.LittleEndian.Uint64(hdr[12:20]),
			Seq:  binary.LittleEndian.Uint64(hdr[20:28]),
			Time: math.Float64frombits(binary.LittleEndian.Uint64(hdr[28:36])),
		}
		if plen > 0 {
			m.Data = bufpool.Get(int(plen))
			if _, err := io.ReadFull(r, m.Data); err != nil {
				bufpool.Put(m.Data)
				return
			}
		}
		if m.To < 0 || m.To >= len(t.boxes) {
			bufpool.Put(m.Data)
			return // corrupt frame; drop the connection
		}
		if err := t.boxes[m.To].put(m); err != nil {
			bufpool.Put(m.Data)
			return
		}
	}
}

// Send implements Transport by framing m onto the sender's connection.
func (t *TCPTransport) Send(m Message) error {
	if m.From < 0 || m.From >= len(t.conns) {
		return fmt.Errorf("comm: tcp send from invalid rank %d", m.From)
	}
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("comm: tcp send to invalid rank %d", m.To)
	}
	tc := t.conns[m.From]
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.broken {
		return fmt.Errorf("comm: tcp send from %d: connection broken by earlier mid-frame failure", m.From)
	}
	hdr := tc.hdr[:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(m.Data)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(m.From)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(m.To)))
	binary.LittleEndian.PutUint64(hdr[12:20], m.Tag)
	binary.LittleEndian.PutUint64(hdr[20:28], m.Seq)
	binary.LittleEndian.PutUint64(hdr[28:36], math.Float64bits(m.Time))
	if t.ioTimeout > 0 {
		tc.c.SetWriteDeadline(time.Now().Add(t.ioTimeout))
		defer tc.c.SetWriteDeadline(time.Time{})
	}
	if _, err := tc.w.Write(hdr); err != nil {
		tc.broken = true
		return fmt.Errorf("comm: tcp send: %w", err)
	}
	if len(m.Data) > 0 {
		if _, err := tc.w.Write(m.Data); err != nil {
			tc.broken = true
			return fmt.Errorf("comm: tcp send: %w", err)
		}
	}
	if err := tc.w.Flush(); err != nil {
		// A timed-out or failed flush may have left a partial frame on the
		// wire; the byte stream can no longer be trusted, so the connection
		// is marked broken and every later send fails fast and fatally
		// (retrying could interleave into the torn frame).
		tc.broken = true
		return fmt.Errorf("comm: tcp send: %w", err)
	}
	t.mFrames.Inc()
	t.mWireBytes.Add(int64(frameHeaderLen + len(m.Data)))
	return nil
}

// SetIOTimeout bounds each socket write in real time (0, the default,
// disables deadlines). A write that times out marks its connection broken —
// the failure is fatal, not transient, because a partial frame may already
// be on the wire.
func (t *TCPTransport) SetIOTimeout(d time.Duration) { t.ioTimeout = d }

// Recv implements Transport.
func (t *TCPTransport) Recv(to, from int, tag uint64) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: tcp recv on invalid rank %d", to)
	}
	return t.boxes[to].get(from, tag)
}

// RecvWithin implements DeadlineRecver.
func (t *TCPTransport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: tcp recv on invalid rank %d", to)
	}
	return t.boxes[to].getWithin(from, tag, timeout)
}

// Close shuts down the listener, all connections, and all mailboxes.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return nil
	default:
		close(t.done)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	for _, b := range t.boxes {
		b.close()
	}
	t.wg.Wait()
	return nil
}
