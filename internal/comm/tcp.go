package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
)

// TCPTransport moves messages over real loopback TCP sockets. Every rank
// holds one multiplexed connection to a central acceptor; frames carry the
// destination rank and are dispatched into per-rank mailboxes. Virtual time
// rides in-band (the frame carries the sender's timestamp), so a program
// produces the same virtual-time results over TCP as over channels — a
// property the transport tests assert.
//
// Writes are batched: Send encodes the frame into a pooled buffer and
// queues it on the sender's connection; a per-connection writer coalesces
// whatever has accumulated into one vectored write (net.Buffers → writev),
// so a burst of small frames costs one syscall, not one per message.
type TCPTransport struct {
	boxes []*mailbox
	ln    net.Listener
	ctr   ringCounters

	mu    sync.Mutex
	conns []*tcpConn // indexed by sender rank
	wg    sync.WaitGroup
	done  chan struct{}

	// ioTimeout, when positive, bounds each socket write in real time.
	// Set before the machine run starts; read by writer goroutines.
	ioTimeout time.Duration

	// Wire-level counters (nil handles are no-ops). Unlike the Endpoint's
	// payload accounting these measure the real socket traffic: frame
	// headers included.
	mFrames    *dsmon.Counter
	mWireBytes *dsmon.Counter
	mBatches   *dsmon.Counter
}

// SetMonitor attaches wire-level counters — frames written, total bytes on
// the wire (frame headers included), and vectored batches flushed — plus
// the comm_ring_* mailbox gauges. Call before the machine run starts; the
// handles are read by writer goroutines without further synchronization.
func (t *TCPTransport) SetMonitor(m *dsmon.Monitor) {
	reg := m.Registry()
	t.mFrames = reg.Counter("comm_tcp_frames_total", "frames written to the loopback socket")
	t.mWireBytes = reg.Counter("comm_tcp_wire_bytes_total", "bytes written to the loopback socket, frame headers included")
	t.mBatches = reg.Counter("comm_tcp_write_batches_total", "vectored writes flushed (each coalesces one or more frames)")
	bindRingMetrics(m, &t.ctr)
}

// RingStats snapshots the transport's mailbox-path counters. Safe from
// any goroutine, including mid-run.
func (t *TCPTransport) RingStats() RingStats { return t.ctr.snapshot() }

// ResetRingStats zeroes the mailbox-path counters. Safe from any goroutine.
func (t *TCPTransport) ResetRingStats() { t.ctr.reset() }

// maxOutboxBytes bounds the frames queued on one connection awaiting the
// writer; a sender that outruns the socket parks here instead of growing
// the queue without bound.
const maxOutboxBytes = 1 << 20

type tcpConn struct {
	c net.Conn

	mu      sync.Mutex
	cond    *sync.Cond // queue became non-empty, space freed, broken, or closing
	outbox  [][]byte   // encoded frames (pooled), in send order
	queued  int        // bytes across outbox
	broken  error      // first write failure; the byte stream is torn, all later sends fail fast
	closing bool
}

// frame layout: u32 payloadLen | u32 from | u32 to | u64 tag | u64 seq | u64 timeBits | payload
const frameHeaderLen = 4 + 4 + 4 + 8 + 8 + 8

// NewTCPTransport creates a transport for n ranks over loopback TCP. It
// starts a listener, dials one connection per rank, and spawns reader and
// writer goroutines per connection.
func NewTCPTransport(n int) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp listen: %w", err)
	}
	t := &TCPTransport{
		boxes: make([]*mailbox, n),
		ln:    ln,
		conns: make([]*tcpConn, n),
		done:  make(chan struct{}),
	}
	for i := range t.boxes {
		t.boxes[i] = newMailbox(n, &t.ctr)
	}

	accepted := make(chan net.Conn, n)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
		close(accepted)
	}()

	for rank := 0; rank < n; rank++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: tcp dial rank %d: %w", rank, err)
		}
		tc := &tcpConn{c: c}
		tc.cond = sync.NewCond(&tc.mu)
		t.conns[rank] = tc
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.writeLoop(tc)
		}()
	}

	// Spawn a reader per accepted connection. Which accepted socket pairs
	// with which dialer does not matter: frames self-describe From/To.
	for c := range accepted {
		c := c
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(c)
		}()
	}
	return t, nil
}

func (t *TCPTransport) readLoop(c net.Conn) {
	r := bufio.NewReader(c)
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		m := Message{
			From: int(int32(binary.LittleEndian.Uint32(hdr[4:8]))),
			To:   int(int32(binary.LittleEndian.Uint32(hdr[8:12]))),
			Tag:  binary.LittleEndian.Uint64(hdr[12:20]),
			Seq:  binary.LittleEndian.Uint64(hdr[20:28]),
			Time: math.Float64frombits(binary.LittleEndian.Uint64(hdr[28:36])),
		}
		if plen > 0 {
			m.Data = bufpool.Get(int(plen))
			if _, err := io.ReadFull(r, m.Data); err != nil {
				bufpool.Put(m.Data)
				return
			}
		}
		if m.To < 0 || m.To >= len(t.boxes) {
			bufpool.Put(m.Data)
			return // corrupt frame; drop the connection
		}
		// put never blocks (a full ring spills to the overflow list): a read
		// loop stalled on one hot rank would head-of-line-block every other
		// rank multiplexed on this connection.
		if err := t.boxes[m.To].put(m); err != nil {
			bufpool.Put(m.Data)
			return
		}
	}
}

// Send implements Transport by encoding m into a pooled frame and queueing
// it on the sender's connection for the writer to coalesce. The payload is
// fully copied before Send returns, so callers may reuse their buffers
// immediately, exactly as with the old synchronous write path. A write
// failure surfaces on the next Send from that rank (fast and fatal — a
// partial frame may be on the wire, so the stream cannot be trusted).
func (t *TCPTransport) Send(m Message) error {
	if m.From < 0 || m.From >= len(t.conns) {
		return fmt.Errorf("comm: tcp send from invalid rank %d", m.From)
	}
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("comm: tcp send to invalid rank %d", m.To)
	}
	frame := bufpool.Get(frameHeaderLen + len(m.Data))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(m.Data)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(int32(m.From)))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(int32(m.To)))
	binary.LittleEndian.PutUint64(frame[12:20], m.Tag)
	binary.LittleEndian.PutUint64(frame[20:28], m.Seq)
	binary.LittleEndian.PutUint64(frame[28:36], math.Float64bits(m.Time))
	copy(frame[frameHeaderLen:], m.Data)

	tc := t.conns[m.From]
	tc.mu.Lock()
	for tc.queued >= maxOutboxBytes && tc.broken == nil && !tc.closing {
		tc.cond.Wait()
	}
	if tc.broken != nil {
		tc.mu.Unlock()
		bufpool.Put(frame)
		return fmt.Errorf("comm: tcp send from %d: %w", m.From, tc.broken)
	}
	if tc.closing {
		tc.mu.Unlock()
		bufpool.Put(frame)
		return ErrClosed
	}
	tc.outbox = append(tc.outbox, frame)
	tc.queued += len(frame)
	tc.mu.Unlock()
	tc.cond.Broadcast()
	return nil
}

// writeLoop drains one connection's outbox: each pass swaps out everything
// queued and pushes it with a single vectored write, releasing the pooled
// frames afterward. A failed or timed-out write may have left a partial
// frame on the wire; the connection is marked broken and every later send
// fails fast and fatally (retrying could interleave into the torn frame).
func (t *TCPTransport) writeLoop(tc *tcpConn) {
	var scratch net.Buffers
	for {
		tc.mu.Lock()
		for len(tc.outbox) == 0 && tc.broken == nil && !tc.closing {
			tc.cond.Wait()
		}
		if tc.broken != nil || (tc.closing && len(tc.outbox) == 0) {
			frames := tc.outbox
			tc.outbox, tc.queued = nil, 0
			tc.mu.Unlock()
			tc.cond.Broadcast()
			for _, f := range frames {
				bufpool.Put(f)
			}
			return
		}
		frames := tc.outbox
		tc.outbox, tc.queued = nil, 0
		tc.mu.Unlock()
		tc.cond.Broadcast() // space freed: release parked senders

		var bytes int64
		// WriteTo consumes (and reslices) its receiver, so hand it a scratch
		// copy and keep the originals intact for the pool.
		scratch = append(scratch[:0], frames...)
		for _, f := range frames {
			bytes += int64(len(f))
		}
		if t.ioTimeout > 0 {
			tc.c.SetWriteDeadline(time.Now().Add(t.ioTimeout))
		}
		_, err := scratch.WriteTo(tc.c)
		if t.ioTimeout > 0 {
			tc.c.SetWriteDeadline(time.Time{})
		}
		for _, f := range frames {
			bufpool.Put(f)
		}
		if err != nil {
			tc.mu.Lock()
			tc.broken = err
			tc.mu.Unlock()
			tc.cond.Broadcast()
			return
		}
		t.mFrames.Add(int64(len(frames)))
		t.mWireBytes.Add(bytes)
		t.mBatches.Inc()
	}
}

// SetIOTimeout bounds each vectored socket write in real time (0, the
// default, disables deadlines). A write that times out marks its
// connection broken — the failure is fatal, not transient, because a
// partial frame may already be on the wire.
func (t *TCPTransport) SetIOTimeout(d time.Duration) { t.ioTimeout = d }

// Recv implements Transport.
func (t *TCPTransport) Recv(to, from int, tag uint64) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: tcp recv on invalid rank %d", to)
	}
	return t.boxes[to].get(from, tag)
}

// RecvWithin implements DeadlineRecver.
func (t *TCPTransport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: tcp recv on invalid rank %d", to)
	}
	return t.boxes[to].getWithin(from, tag, timeout)
}

// Close shuts down the writers, the listener, all connections, and all
// mailboxes. Queued frames still unflushed are dropped, as on a real wire.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return nil
	default:
		close(t.done)
	}
	t.mu.Unlock()

	for _, tc := range t.conns {
		if tc != nil {
			tc.mu.Lock()
			tc.closing = true
			tc.mu.Unlock()
			tc.cond.Broadcast()
		}
	}
	t.ln.Close()
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	for _, b := range t.boxes {
		b.close()
	}
	t.wg.Wait()
	return nil
}
