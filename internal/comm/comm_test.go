package comm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/vtime"
)

// eachTransport runs the test body once per transport implementation.
func eachTransport(t *testing.T, n int, body func(t *testing.T, tr Transport)) {
	t.Helper()
	t.Run("chan", func(t *testing.T) {
		tr := NewChanTransport(n)
		defer tr.Close()
		body(t, tr)
	})
	t.Run("tcp", func(t *testing.T) {
		tr, err := NewTCPTransport(n)
		if err != nil {
			t.Fatalf("NewTCPTransport: %v", err)
		}
		defer tr.Close()
		body(t, tr)
	})
}

func TestPointToPoint(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		want := []byte("hello distributed world")
		if err := tr.Send(Message{From: 0, To: 1, Tag: 7, Time: 1.5, Data: want}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		m, err := tr.Recv(1, 0, 7)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !bytes.Equal(m.Data, want) || m.From != 0 || m.Tag != 7 || m.Time != 1.5 {
			t.Fatalf("got %+v, want data=%q from=0 tag=7 time=1.5", m, want)
		}
	})
}

func TestEmptyPayload(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		if err := tr.Send(Message{From: 1, To: 0, Tag: 3}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		m, err := tr.Recv(0, 1, 3)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if len(m.Data) != 0 {
			t.Fatalf("got %d bytes, want 0", len(m.Data))
		}
	})
}

func TestSelfSend(t *testing.T) {
	eachTransport(t, 1, func(t *testing.T, tr Transport) {
		if err := tr.Send(Message{From: 0, To: 0, Tag: 1, Data: []byte("me")}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		m, err := tr.Recv(0, 0, 1)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(m.Data) != "me" {
			t.Fatalf("got %q", m.Data)
		}
	})
}

// TestTagMatching: a receiver waiting on tag B is not satisfied by tag A,
// even when A arrived first.
func TestTagMatching(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		if err := tr.Send(Message{From: 0, To: 1, Tag: 1, Data: []byte("first")}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send(Message{From: 0, To: 1, Tag: 2, Data: []byte("second")}); err != nil {
			t.Fatal(err)
		}
		m2, err := tr.Recv(1, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if string(m2.Data) != "second" {
			t.Fatalf("tag 2 recv got %q", m2.Data)
		}
		m1, err := tr.Recv(1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(m1.Data) != "first" {
			t.Fatalf("tag 1 recv got %q", m1.Data)
		}
	})
}

// TestSenderFIFO: per-(sender,tag) order is preserved.
func TestSenderFIFO(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		const k = 100
		for i := 0; i < k; i++ {
			if err := tr.Send(Message{From: 0, To: 1, Tag: 9, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < k; i++ {
			m, err := tr.Recv(1, 0, 9)
			if err != nil {
				t.Fatal(err)
			}
			if m.Data[0] != byte(i) {
				t.Fatalf("message %d out of order: got %d", i, m.Data[0])
			}
		}
	})
}

// TestSendBufferReuse: the transport must copy payloads so callers can
// reuse their buffers immediately (wire semantics).
func TestSendBufferReuse(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		buf := []byte("original")
		if err := tr.Send(Message{From: 0, To: 1, Tag: 1, Data: buf}); err != nil {
			t.Fatal(err)
		}
		copy(buf, "CLOBBER!")
		m, err := tr.Recv(1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != "original" {
			t.Fatalf("payload aliased sender buffer: got %q", m.Data)
		}
	})
}

func TestManyToOneConcurrent(t *testing.T) {
	const n = 8
	eachTransport(t, n, func(t *testing.T, tr Transport) {
		var wg sync.WaitGroup
		for r := 1; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := tr.Send(Message{From: r, To: 0, Tag: 4, Data: []byte{byte(r), byte(i)}}); err != nil {
						t.Errorf("send from %d: %v", r, err)
						return
					}
				}
			}()
		}
		// Receiver pulls from each sender in rank order; FIFO per sender.
		for r := 1; r < n; r++ {
			for i := 0; i < 50; i++ {
				m, err := tr.Recv(0, r, 4)
				if err != nil {
					t.Fatalf("recv from %d: %v", r, err)
				}
				if m.Data[0] != byte(r) || m.Data[1] != byte(i) {
					t.Fatalf("from %d msg %d: got %v", r, i, m.Data)
				}
			}
		}
		wg.Wait()
	})
}

func TestInvalidRanks(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		if err := tr.Send(Message{From: 0, To: 5, Tag: 1}); err == nil {
			t.Error("send to invalid rank accepted")
		}
		if _, err := tr.Recv(-1, 0, 1); err == nil {
			t.Error("recv on invalid rank accepted")
		}
	})
}

func TestCloseUnblocksReceivers(t *testing.T) {
	eachTransport(t, 2, func(t *testing.T, tr Transport) {
		errc := make(chan error, 1)
		go func() {
			_, err := tr.Recv(1, 0, 1)
			errc <- err
		}()
		tr.Close()
		if err := <-errc; err == nil {
			t.Error("Recv returned nil error after Close")
		}
	})
}

// TestEndpointTiming verifies the virtual-time law: receiver time advances
// to sendTime + latency + bytes/bandwidth.
func TestEndpointTiming(t *testing.T) {
	prof := vtime.Profile{MsgLatency: 0.010, MsgBW: 1000, SendOverhead: 0.001}
	tr := NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	e0 := NewEndpoint(0, 2, tr, &c0, prof)
	e1 := NewEndpoint(1, 2, tr, &c1, prof)

	data := make([]byte, 500) // 0.5s at 1000 B/s
	if err := e0.Send(1, 1, data); err != nil {
		t.Fatal(err)
	}
	// Sender paid its overhead.
	if got := c0.Now(); got != 0.001 {
		t.Fatalf("sender clock = %v, want 0.001", got)
	}
	if _, err := e1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	want := 0.001 + 0.010 + 0.5
	if got := c1.Now(); got != want {
		t.Fatalf("receiver clock = %v, want %v", got, want)
	}
}

// TestEndpointTimingLateReceiver: if the receiver is already past the
// arrival time, its clock must not move backwards.
func TestEndpointTimingLateReceiver(t *testing.T) {
	prof := vtime.Profile{MsgLatency: 0.010, MsgBW: 1e9}
	tr := NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	e0 := NewEndpoint(0, 2, tr, &c0, prof)
	e1 := NewEndpoint(1, 2, tr, &c1, prof)
	c1.Advance(100)

	if err := e0.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := c1.Now(); got != 100 {
		t.Fatalf("receiver clock = %v, want 100 (no backwards motion)", got)
	}
}

// TestTransportsTimeEquivalent: a fixed message script produces identical
// virtual clocks over the channel and TCP transports.
func TestTransportsTimeEquivalent(t *testing.T) {
	prof := vtime.Paragon()
	run := func(tr Transport) []float64 {
		defer tr.Close()
		const n = 4
		clocks := make([]vtime.Clock, n)
		eps := make([]*Endpoint, n)
		for i := range eps {
			eps[i] = NewEndpoint(i, n, tr, &clocks[i], prof)
		}
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Ring: send to (r+1)%n, receive from (r-1+n)%n, 10 rounds.
				for round := 0; round < 10; round++ {
					payload := make([]byte, 128*(r+1))
					if err := eps[r].Send((r+1)%n, uint64(round), payload); err != nil {
						t.Errorf("send: %v", err)
						return
					}
					if _, err := eps[r].Recv((r+n-1)%n, uint64(round)); err != nil {
						t.Errorf("recv: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		out := make([]float64, n)
		for i := range clocks {
			out[i] = clocks[i].Now()
		}
		return out
	}

	chanTimes := run(NewChanTransport(4))
	tcpTr, err := NewTCPTransport(4)
	if err != nil {
		t.Fatal(err)
	}
	tcpTimes := run(tcpTr)
	for i := range chanTimes {
		if chanTimes[i] != tcpTimes[i] {
			t.Fatalf("rank %d: chan vtime %v != tcp vtime %v", i, chanTimes[i], tcpTimes[i])
		}
	}
}

func TestEndpointStats(t *testing.T) {
	tr := NewChanTransport(3)
	defer tr.Close()
	var c0, c1 vtime.Clock
	e0 := NewEndpoint(0, 3, tr, &c0, vtime.Challenge())
	e1 := NewEndpoint(1, 3, tr, &c1, vtime.Challenge())
	for i := 0; i < 3; i++ {
		if err := e0.Send(1, 1, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e0.Send(2, 1, make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e1.Recv(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := e0.Stats()
	if st.Sent != 4 || st.BytesSent != 35 {
		t.Fatalf("sender stats = %+v, want Sent 4, BytesSent 35", st)
	}
	if st.SentByPeer[1] != 3 || st.SentByPeer[2] != 1 {
		t.Fatalf("SentByPeer = %v, want [0 3 1]", st.SentByPeer)
	}
	rst := e1.Stats()
	if rst.Received != 3 || rst.BytesReceived != 30 {
		t.Fatalf("receiver stats = %+v, want Received 3, BytesReceived 30", rst)
	}
	if rst.ReceivedByPeer[0] != 3 {
		t.Fatalf("ReceivedByPeer = %v, want [3 0 0]", rst.ReceivedByPeer)
	}
	// Snapshots are copies, not views.
	rst.ReceivedByPeer[0] = 99
	if e1.Stats().ReceivedByPeer[0] != 3 {
		t.Fatal("Stats leaked internal slice")
	}
}

func TestEndpointMonitorMetricsAndSpans(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	mon := dsmon.NewTracing()
	var c0, c1 vtime.Clock
	e0 := NewEndpoint(0, 2, tr, &c0, vtime.Challenge()).SetMonitor(mon)
	e1 := NewEndpoint(1, 2, tr, &c1, vtime.Challenge()).SetMonitor(mon)
	if err := e0.Send(1, 7, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Recv(0, 7); err != nil {
		t.Fatal(err)
	}
	reg := mon.Registry()
	if got := reg.Counter("comm_messages_sent_total", "").Value(); got != 1 {
		t.Fatalf("sent counter = %d", got)
	}
	if got := reg.Counter("comm_bytes_received_total", "").Value(); got != 128 {
		t.Fatalf("bytes received counter = %d", got)
	}
	if got := reg.Histogram("comm_message_size_bytes", "", dsmon.SizeBuckets).Count(); got != 1 {
		t.Fatalf("size histogram count = %d", got)
	}
	var sendSpans, recvSpans int
	for _, ev := range mon.Recorder().Events() {
		if ev.Cat != "comm" {
			t.Fatalf("unexpected category %q", ev.Cat)
		}
		switch ev.Name {
		case "Send":
			sendSpans++
		case "Recv":
			recvSpans++
		}
	}
	if sendSpans != 1 || recvSpans != 1 {
		t.Fatalf("spans = %d send, %d recv", sendSpans, recvSpans)
	}
}

// Property: payloads of arbitrary content round-trip intact over TCP frames.
func TestTCPFrameRoundTripQuick(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	seq := uint64(0)
	f := func(data []byte, timeMantissa uint16) bool {
		seq++
		tm := float64(timeMantissa) / 7.0
		if err := tr.Send(Message{From: 0, To: 1, Tag: seq, Time: tm, Data: data}); err != nil {
			return false
		}
		m, err := tr.Recv(1, 0, seq)
		if err != nil {
			return false
		}
		return bytes.Equal(m.Data, data) && m.Time == tm && m.From == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChanTransportRoundTrip(b *testing.B) {
	benchTransport(b, NewChanTransport(2))
}

func BenchmarkTCPTransportRoundTrip(b *testing.B) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		b.Fatal(err)
	}
	benchTransport(b, tr)
}

func benchTransport(b *testing.B, tr Transport) {
	defer tr.Close()
	payload := make([]byte, 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m, err := tr.Recv(1, 0, 1)
			if err != nil {
				b.Error(err)
				return
			}
			if err := tr.Send(Message{From: 1, To: 0, Tag: 2, Data: m.Data}); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Tag: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Recv(0, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// The FaultyTransport tests live in faulty_test.go.
