// Package comm provides the rank-addressed message-passing substrate of the
// simulated multicomputer. The paper's pC++ runtime sat on Intel NX and TMC
// CMMD; Go has no MPI culture, so this package emulates the same facility
// with goroutines and sockets: a Transport moves tagged byte payloads
// between ranks, and an Endpoint layers deterministic virtual-time
// accounting on top (each message carries its send timestamp; the receiver's
// clock advances to send time + latency + size/bandwidth).
//
// Two transports are provided behind one interface: ChanTransport (in-process
// queues) and TCPTransport (real loopback sockets, exercising genuine
// serialization). Because virtual time is carried in-band, both transports
// produce identical virtual-time results for the same program.
package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// Message is one rank-to-rank datagram. Time is the sender's virtual clock
// at the moment of sending. Seq, when nonzero, is the message's 1-based
// sequence number within its (from, to, tag) stream: sequenced messages are
// deduplicated (a retried or duplicated copy of an already-delivered seq is
// discarded) and reassembled in order (a receiver waiting on the stream is
// not handed seq n+1 while seq n is still in flight). Seq 0 messages bypass
// both mechanisms and behave exactly as before — raw Transport users that
// never face duplication need no sequencing.
type Message struct {
	From, To int
	Tag      uint64
	Seq      uint64
	Time     float64
	Data     []byte
}

// Transport delivers messages between ranks. Implementations must preserve
// per-(sender, tag) FIFO order and must match receives by exact (from, tag).
type Transport interface {
	// Send enqueues m for delivery to m.To. It must not block indefinitely
	// on a well-formed program.
	Send(m Message) error
	// Recv blocks until a message from `from` with tag `tag` addressed to
	// `to` is available and returns it.
	Recv(to, from int, tag uint64) (Message, error)
	// Close releases transport resources. Pending receivers get errors.
	Close() error
}

// DeadlineRecver is implemented by transports whose receives can be bounded
// in real time. A receive that outlasts the deadline fails with
// ErrRecvTimeout (a transient fault) instead of blocking forever — the
// last-resort conversion of a hang into a clean error.
type DeadlineRecver interface {
	RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error)
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// ErrTransient marks a fault the sender or receiver may retry: a dropped or
// NACKed message, an injected chaos fault, a receive deadline. Fatal faults
// (closed transports, invalid ranks, dead links) do not wrap it and
// propagate immediately.
var ErrTransient = errors.New("comm: transient fault")

// ErrRecvTimeout reports a receive that outlasted its real-time deadline.
// It wraps ErrTransient: the receiver may retry (the message may merely be
// delayed), and gives up cleanly when its retry budget is spent.
var ErrRecvTimeout = fmt.Errorf("%w: receive deadline exceeded", ErrTransient)

// IsTransient reports whether err is worth retrying: anything wrapping
// ErrTransient, plus net.Error timeouts from a real-socket transport.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// RetryPolicy bounds an endpoint's handling of transient faults: up to
// MaxAttempts tries per operation, with Backoff virtual seconds charged
// before the first retry and doubled for each further one. Retries are
// idempotent — a resent message carries the same sequence number, so a
// "failed" send whose copy actually arrived is deduplicated at the
// receiver, not delivered twice.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     float64
}

// DefaultRetryPolicy allows six attempts starting at a microsecond of
// virtual backoff — enough to ride out bursts of transient faults while
// keeping a genuinely dead link's failure latency far below a human's.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 6, Backoff: 1e-6} }

// streamID keys per-(peer, tag) sequencing state: the peer is the sender on
// the receive side and the destination on the send side.
type streamID struct {
	peer int
	tag  uint64
}

// mailbox is a matching queue shared by both transports: messages land in a
// per-destination list; receivers scan for the first (from, tag) match.
// For sequenced messages (Seq != 0) the mailbox is also the reassembly
// point: next tracks the next sequence number to deliver per (from, tag)
// stream, duplicates of already-delivered or already-queued sequence
// numbers are discarded at put, and get refuses to hand out seq n+1 while
// seq n is still in flight — so a transport wrapped in delay, duplication,
// or retransmission still presents exactly-once, in-order streams.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	next   map[streamID]uint64 // next seq to deliver; absent means 1
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{next: make(map[streamID]uint64)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// nextSeq returns the next deliverable sequence number for a stream (1 when
// the stream has never delivered). Callers hold mb.mu.
func (mb *mailbox) nextSeq(k streamID) uint64 {
	if n := mb.next[k]; n != 0 {
		return n
	}
	return 1
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	if m.Seq != 0 {
		k := streamID{m.From, m.Tag}
		if m.Seq < mb.nextSeq(k) {
			bufpool.Put(m.Data) // duplicate of an already-delivered message
			return nil
		}
		for _, q := range mb.queue {
			if q.From == m.From && q.Tag == m.Tag && q.Seq == m.Seq {
				bufpool.Put(m.Data) // duplicate of an already-queued message
				return nil
			}
		}
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) get(from int, tag uint64) (Message, error) {
	return mb.getWithin(from, tag, 0)
}

// getWithin is get with an optional real-time deadline (0 = wait forever).
// The deadline is implemented with a timer that broadcasts on the condition
// variable, so an expired waiter wakes promptly even with nothing arriving.
func (mb *mailbox) getWithin(from int, tag uint64, timeout time.Duration) (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	expired := false
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			mb.mu.Lock()
			expired = true
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		for i, m := range mb.queue {
			if m.From != from || m.Tag != tag {
				continue
			}
			if m.Seq != 0 {
				k := streamID{from, tag}
				if m.Seq != mb.nextSeq(k) {
					continue // a gap precedes this one; wait for the in-flight message
				}
				mb.next[k] = m.Seq + 1
			}
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m, nil
		}
		if mb.closed {
			return Message{}, ErrClosed
		}
		if expired {
			return Message{}, fmt.Errorf("%w: no message from %d tag %#x within %v",
				ErrRecvTimeout, from, tag, timeout)
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	// Undelivered payloads are now unowned: no receiver will ever match them.
	for _, m := range mb.queue {
		bufpool.Put(m.Data)
	}
	mb.queue = nil
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// ChanTransport is the in-process transport: one mailbox per rank.
type ChanTransport struct {
	boxes []*mailbox
}

// NewChanTransport creates an in-process transport for n ranks.
func NewChanTransport(n int) *ChanTransport {
	t := &ChanTransport{boxes: make([]*mailbox, n)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("comm: send to invalid rank %d (size %d)", m.To, len(t.boxes))
	}
	// Copy the payload into a pooled buffer: senders are free to reuse their
	// buffers the moment Send returns, exactly as with a real wire transport,
	// and the receiver owns (and may bufpool.Put) the delivered copy.
	if m.Data != nil {
		d := bufpool.Get(len(m.Data))
		copy(d, m.Data)
		m.Data = d
	}
	if err := t.boxes[m.To].put(m); err != nil {
		bufpool.Put(m.Data)
		return err
	}
	return nil
}

// Recv implements Transport.
func (t *ChanTransport) Recv(to, from int, tag uint64) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: recv on invalid rank %d (size %d)", to, len(t.boxes))
	}
	return t.boxes[to].get(from, tag)
}

// RecvWithin implements DeadlineRecver.
func (t *ChanTransport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: recv on invalid rank %d (size %d)", to, len(t.boxes))
	}
	return t.boxes[to].getWithin(from, tag, timeout)
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// Endpoint is one rank's view of the transport plus its virtual-time
// accounting. All Endpoint methods must be called only from the owning
// node's goroutine.
type Endpoint struct {
	rank, size int
	tr         Transport
	clock      *vtime.Clock
	prof       vtime.Profile

	// Resilience: per-stream send sequence numbers (for receiver-side dedup
	// and reassembly), the transient-fault retry policy, and the optional
	// real-time receive deadline. All owned by the node's goroutine.
	seqs         map[streamID]uint64
	retry        RetryPolicy
	recvDeadline time.Duration

	// Statistics, local to the owning goroutine.
	sent, received           int
	bytesSent, bytesReceived int64
	sentByPeer, recvByPeer   []int

	// Observability (nil handles are no-ops).
	mon         *dsmon.Monitor
	mSent       *dsmon.Counter
	mRecv       *dsmon.Counter
	mBytesOut   *dsmon.Counter
	mBytesIn    *dsmon.Counter
	mTransient  *dsmon.Counter
	mSendRetry  *dsmon.Counter
	mRecvRetry  *dsmon.Counter
	mExhausted  *dsmon.Counter
	hMsgSize    *dsmon.Histogram
	hRecvWait   *dsmon.Histogram
}

// NewEndpoint binds rank's endpoint onto tr.
func NewEndpoint(rank, size int, tr Transport, clock *vtime.Clock, prof vtime.Profile) *Endpoint {
	return &Endpoint{
		rank: rank, size: size, tr: tr, clock: clock, prof: prof,
		seqs:       make(map[streamID]uint64),
		retry:      DefaultRetryPolicy(),
		sentByPeer: make([]int, size), recvByPeer: make([]int, size),
	}
}

// SetRetryPolicy replaces the endpoint's transient-fault retry policy
// (MaxAttempts is clamped to at least one attempt).
func (e *Endpoint) SetRetryPolicy(p RetryPolicy) *Endpoint {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	e.retry = p
	return e
}

// SetRecvDeadline bounds every blocking receive in real time (0 disables,
// the default). Each attempt waits up to d; a timeout counts as a transient
// fault, so the worst-case wall-clock wait before a clean error is
// d × MaxAttempts.
func (e *Endpoint) SetRecvDeadline(d time.Duration) *Endpoint {
	e.recvDeadline = d
	return e
}

// SetMonitor attaches the observability layer: per-message counters, the
// message-size histogram, the receive-wait stall histogram, and (when the
// monitor traces) one comm-category span per Send/Recv. Metric handles are
// cached here so the per-message cost of monitoring is a few atomic adds.
func (e *Endpoint) SetMonitor(m *dsmon.Monitor) *Endpoint {
	e.mon = m
	reg := m.Registry()
	e.mSent = reg.Counter("comm_messages_sent_total", "point-to-point messages sent")
	e.mRecv = reg.Counter("comm_messages_received_total", "point-to-point messages received")
	e.mBytesOut = reg.Counter("comm_bytes_sent_total", "payload bytes sent")
	e.mBytesIn = reg.Counter("comm_bytes_received_total", "payload bytes received")
	e.mTransient = reg.Counter("comm_transient_errors_total", "transient transport faults observed (send and recv)")
	e.mSendRetry = reg.Counter("comm_send_retries_total", "point-to-point sends retried after a transient fault")
	e.mRecvRetry = reg.Counter("comm_recv_retries_total", "point-to-point receives retried after a transient fault")
	e.mExhausted = reg.Counter("comm_retries_exhausted_total", "operations that failed after spending the whole retry budget")
	e.hMsgSize = reg.Histogram("comm_message_size_bytes",
		"payload size of sent messages", dsmon.SizeBuckets)
	e.hRecvWait = reg.Histogram("comm_recv_wait_seconds",
		"virtual seconds from receive call to message arrival", dsmon.LatencyBuckets)
	return e
}

// Monitor returns the attached monitor (nil when unmonitored). The
// collective layer reads it so one machine flag lights up both layers.
func (e *Endpoint) Monitor() *dsmon.Monitor { return e.mon }

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks.
func (e *Endpoint) Size() int { return e.size }

// Clock returns the owning node's virtual clock.
func (e *Endpoint) Clock() *vtime.Clock { return e.clock }

// Profile returns the platform cost profile.
func (e *Endpoint) Profile() vtime.Profile { return e.prof }

// Send transmits data to rank `to` under `tag`, charging the sender its
// per-message CPU overhead. Transient transport faults are retried with
// exponential virtual-time backoff; the resent message reuses its sequence
// number, so a retry whose earlier copy actually arrived is deduplicated at
// the receiver. Fatal errors, and transient ones that outlast the retry
// budget, are returned to the caller.
func (e *Endpoint) Send(to int, tag uint64, data []byte) error {
	start := e.clock.Now()
	e.clock.Advance(e.prof.SendOverhead)
	k := streamID{to, tag}
	e.seqs[k]++
	m := Message{From: e.rank, To: to, Tag: tag, Seq: e.seqs[k], Data: data}
	backoff := e.retry.Backoff
	var err error
	for attempt := 1; ; attempt++ {
		m.Time = e.clock.Now()
		err = e.tr.Send(m)
		if err == nil || !IsTransient(err) {
			break
		}
		e.mTransient.Inc()
		if attempt >= e.retry.MaxAttempts {
			e.mExhausted.Inc()
			err = fmt.Errorf("comm: send to %d tag %#x: retries exhausted after %d attempts: %w",
				to, tag, attempt, err)
			break
		}
		e.mSendRetry.Inc()
		e.backoffSpan(backoff)
		backoff *= 2
	}
	if err != nil {
		return err
	}
	e.sent++
	e.bytesSent += int64(len(data))
	if to >= 0 && to < len(e.sentByPeer) {
		e.sentByPeer[to]++
	}
	e.mSent.Inc()
	e.mBytesOut.Add(int64(len(data)))
	e.hMsgSize.Observe(float64(len(data)))
	if rec := e.mon.Recorder(); rec != nil {
		// One span and one edge per logical send, however many transport
		// attempts it took: the edge is keyed by the sequence number, which
		// retransmissions reuse, so the graph never doubles an edge.
		id := rec.AddSpan(e.rank, "comm", "Send", start, e.clock.Now())
		rec.FlowOut(trace.FlowKey{Kind: "msg", A: e.rank, B: to, Tag: tag, Seq: m.Seq}, id)
	}
	return nil
}

// backoffSpan charges one retry backoff to the clock and, when tracing,
// records it as its own span so the critical-path analyzer can attribute
// time lost to retransmission separately from useful communication.
func (e *Endpoint) backoffSpan(backoff float64) {
	rec := e.mon.Recorder()
	b0 := e.clock.Now()
	e.clock.Advance(backoff)
	if rec != nil {
		rec.Add(e.rank, "comm", "backoff", b0, e.clock.Now())
	}
}

// recvOnce performs a single receive attempt, bounded by the configured
// real-time deadline when the transport supports one.
func (e *Endpoint) recvOnce(from int, tag uint64) (Message, error) {
	if e.recvDeadline > 0 {
		if dr, ok := e.tr.(DeadlineRecver); ok {
			return dr.RecvWithin(e.rank, from, tag, e.recvDeadline)
		}
	}
	return e.tr.Recv(e.rank, from, tag)
}

// Recv blocks for the matching message and advances the local clock to the
// message's arrival time: send time + latency + transfer time. Transient
// faults (injected receive errors, deadline expiries) are retried with
// exponential virtual-time backoff before a clean error is surfaced.
//
// The returned payload is owned by the caller: it never aliases the sender's
// buffer, may be retained indefinitely, and may be released with bufpool.Put
// once fully consumed (releasing is optional — the GC reclaims it either
// way).
func (e *Endpoint) Recv(from int, tag uint64) ([]byte, error) {
	start := e.clock.Now()
	var m Message
	var err error
	backoff := e.retry.Backoff
	for attempt := 1; ; attempt++ {
		m, err = e.recvOnce(from, tag)
		if err == nil || !IsTransient(err) {
			break
		}
		e.mTransient.Inc()
		if attempt >= e.retry.MaxAttempts {
			e.mExhausted.Inc()
			return nil, fmt.Errorf("comm: recv from %d tag %#x: retries exhausted after %d attempts: %w",
				from, tag, attempt, err)
		}
		e.mRecvRetry.Inc()
		e.backoffSpan(backoff)
		backoff *= 2
	}
	if err != nil {
		return nil, err
	}
	arrival := m.Time + e.prof.MsgLatency + vtime.TransferTime(int64(len(m.Data)), e.prof.MsgBW)
	e.clock.SyncTo(arrival)
	e.received++
	e.bytesReceived += int64(len(m.Data))
	if from >= 0 && from < len(e.recvByPeer) {
		e.recvByPeer[from]++
	}
	e.mRecv.Inc()
	e.mBytesIn.Add(int64(len(m.Data)))
	e.hRecvWait.Observe(e.clock.Now() - start)
	if rec := e.mon.Recorder(); rec != nil {
		id := rec.AddSpan(e.rank, "comm", "Recv", start, e.clock.Now())
		// The mailbox delivers each sequence number exactly once, so a
		// duplicated or retransmitted message can never complete a second
		// edge — the FlowKey below is consumed by exactly one FlowOut.
		if m.Seq != 0 {
			rec.FlowIn(trace.FlowKey{Kind: "msg", A: from, B: e.rank, Tag: tag, Seq: m.Seq}, id)
		}
	}
	return m.Data, nil
}

// Stats is one endpoint's traffic account.
type Stats struct {
	// Sent and Received count point-to-point messages.
	Sent, Received int
	// BytesSent and BytesReceived sum payload bytes.
	BytesSent, BytesReceived int64
	// SentByPeer[r] and ReceivedByPeer[r] count messages exchanged with
	// rank r — the communication matrix row that reveals funnel hotspots
	// (everything converging on node 0) at a glance.
	SentByPeer, ReceivedByPeer []int
}

// Stats returns a snapshot of this endpoint's traffic counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Sent: e.sent, Received: e.received,
		BytesSent: e.bytesSent, BytesReceived: e.bytesReceived,
		SentByPeer:     append([]int(nil), e.sentByPeer...),
		ReceivedByPeer: append([]int(nil), e.recvByPeer...),
	}
}
