// Package comm provides the rank-addressed message-passing substrate of the
// simulated multicomputer. The paper's pC++ runtime sat on Intel NX and TMC
// CMMD; Go has no MPI culture, so this package emulates the same facility
// with goroutines and sockets: a Transport moves tagged byte payloads
// between ranks, and an Endpoint layers deterministic virtual-time
// accounting on top (each message carries its send timestamp; the receiver's
// clock advances to send time + latency + size/bandwidth).
//
// Two transports are provided behind one interface: ChanTransport (in-process
// queues) and TCPTransport (real loopback sockets, exercising genuine
// serialization). Because virtual time is carried in-band, both transports
// produce identical virtual-time results for the same program.
package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// Message is one rank-to-rank datagram. Time is the sender's virtual clock
// at the moment of sending. Seq, when nonzero, is the message's 1-based
// sequence number within its (from, to, tag) stream: sequenced messages are
// deduplicated (a retried or duplicated copy of an already-delivered seq is
// discarded) and reassembled in order (a receiver waiting on the stream is
// not handed seq n+1 while seq n is still in flight). Seq 0 messages bypass
// both mechanisms and behave exactly as before — raw Transport users that
// never face duplication need no sequencing.
type Message struct {
	From, To int
	Tag      uint64
	Seq      uint64
	Time     float64
	Data     []byte
}

// Transport delivers messages between ranks. Implementations must preserve
// per-(sender, tag) FIFO order and must match receives by exact (from, tag).
type Transport interface {
	// Send enqueues m for delivery to m.To. It must not block indefinitely
	// on a well-formed program.
	Send(m Message) error
	// Recv blocks until a message from `from` with tag `tag` addressed to
	// `to` is available and returns it.
	Recv(to, from int, tag uint64) (Message, error)
	// Close releases transport resources. Pending receivers get errors.
	Close() error
}

// DeadlineRecver is implemented by transports whose receives can be bounded
// in real time. A receive that outlasts the deadline fails with
// ErrRecvTimeout (a transient fault) instead of blocking forever — the
// last-resort conversion of a hang into a clean error.
type DeadlineRecver interface {
	RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error)
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// ErrTransient marks a fault the sender or receiver may retry: a dropped or
// NACKed message, an injected chaos fault, a receive deadline. Fatal faults
// (closed transports, invalid ranks, dead links) do not wrap it and
// propagate immediately.
var ErrTransient = errors.New("comm: transient fault")

// ErrRecvTimeout reports a receive that outlasted its real-time deadline.
// It wraps ErrTransient: the receiver may retry (the message may merely be
// delayed), and gives up cleanly when its retry budget is spent.
var ErrRecvTimeout = fmt.Errorf("%w: receive deadline exceeded", ErrTransient)

// IsTransient reports whether err is worth retrying: anything wrapping
// ErrTransient, plus net.Error timeouts from a real-socket transport.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// RetryPolicy bounds an endpoint's handling of transient faults: up to
// MaxAttempts tries per operation, with Backoff virtual seconds charged
// before the first retry and doubled for each further one. Retries are
// idempotent — a resent message carries the same sequence number, so a
// "failed" send whose copy actually arrived is deduplicated at the
// receiver, not delivered twice.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     float64
}

// DefaultRetryPolicy allows six attempts starting at a microsecond of
// virtual backoff — enough to ride out bursts of transient faults while
// keeping a genuinely dead link's failure latency far below a human's.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 6, Backoff: 1e-6} }

// streamID keys per-(peer, tag) sequencing state: the peer is the sender on
// the receive side and the destination on the send side.
type streamID struct {
	peer int
	tag  uint64
}

// mailbox is one rank's inbound message store, shared by both transports.
// The hot path is lock-free: each sender rank gets its own bounded MPMC
// ring (allocated lazily, so a 1024-rank machine pays only for the pairs
// that actually talk), and an enqueue is a CAS plus a waiter check — no
// mutex, no condition variable, no per-message channel hop. Producers that
// must never stall (wire read loops, and any sender of a small message —
// see eagerMaxBytes) spill to an unbounded overflow list when a ring
// fills; in-process senders of bulk payloads instead block on the space
// gate, so a fast producer is throttled, never dropped.
//
// Matching, sequencing, and reassembly live on the consumer side: the
// receiver drains rings into per-stream pending lists under mu (touched
// only by drainers, never by fast-path producers) and delivers the first
// (from, tag) match. For sequenced messages (Seq != 0) the pending stage
// is also the reassembly point: next tracks the next sequence number to
// deliver per (from, tag) stream, duplicates of already-delivered or
// already-staged sequence numbers are discarded as they are drained, and
// match refuses to hand out seq n+1 while seq n is still in flight — so a
// transport wrapped in delay, duplication, or retransmission still
// presents exactly-once, in-order streams.
type mailbox struct {
	size    int
	ringCap int
	rings   []atomic.Pointer[ring] // indexed by sender rank; nil until first use
	closed  atomic.Bool
	arrival gate // producers wake consumers: something was enqueued
	space   gate // consumers wake producers: ring slots were freed
	ctr     *ringCounters

	// ovfBySender[s] counts sender s's messages currently in the overflow
	// list. While it is nonzero, s's later messages must also ride the
	// overflow — a newer message jumping back into the (now drained) ring
	// would be staged ahead of the older spilled ones and break the
	// per-(sender, tag) FIFO contract for unsequenced messages.
	ovfBySender []atomic.Int32

	// ovf is the unbounded MPMC fallback: out-of-range sender ranks and
	// full-ring producers that must not block land here under a plain mutex.
	ovf struct {
		sync.Mutex
		q []Message
	}

	// Matching and reassembly state, guarded by mu. In steady state only
	// the rank's receiver goroutine takes it; a blocked producer assisting
	// its own inbox (see putBlocking) is the other drainer.
	mu      sync.Mutex
	pending map[streamID][]Message // staged messages per stream, arrival order
	next    map[streamID]uint64    // next seq to deliver; absent means 1
}

func newMailbox(size int, ctr *ringCounters) *mailbox {
	return &mailbox{
		size:        size,
		ringCap:     defaultRingCap,
		rings:       make([]atomic.Pointer[ring], size),
		ovfBySender: make([]atomic.Int32, size),
		ctr:         ctr,
		pending:     make(map[streamID][]Message),
		next:        make(map[streamID]uint64),
	}
}

// ringFor returns the sender's ring, allocating it on first use. Returns
// nil for out-of-range sender ranks (those messages ride the overflow
// list, preserving the old mailbox's permissiveness).
func (mb *mailbox) ringFor(from int) *ring {
	if from < 0 || from >= mb.size {
		return nil
	}
	if r := mb.rings[from].Load(); r != nil {
		return r
	}
	r := newRing(mb.ringCap)
	if mb.rings[from].CompareAndSwap(nil, r) {
		return r
	}
	return mb.rings[from].Load()
}

// nextSeqLocked returns the next deliverable sequence number for a stream
// (1 when the stream has never delivered). Callers hold mb.mu.
func (mb *mailbox) nextSeqLocked(k streamID) uint64 {
	if n := mb.next[k]; n != 0 {
		return n
	}
	return 1
}

// put enqueues without ever blocking: the ring when there is room, the
// overflow list otherwise. This is the wire producers' path (a TCP read
// loop that stalls on one full ring would head-of-line-block frames for
// every other rank on its connection, and, transitively, the kernel
// socket buffers its peers are writing into).
func (mb *mailbox) put(m Message) error {
	if mb.closed.Load() {
		return ErrClosed
	}
	if r := mb.ringFor(m.From); r != nil &&
		mb.ovfBySender[m.From].Load() == 0 && r.tryPut(m) {
		mb.ctr.ringPuts.Add(1)
		mb.arrival.wake()
		if mb.closed.Load() {
			mb.reap() // close raced the enqueue; release anything stranded
		}
		return nil
	}
	return mb.spill(m)
}

func (mb *mailbox) spill(m Message) error {
	mb.ovf.Lock()
	if mb.closed.Load() {
		// close drains the overflow after setting the flag, and does so
		// under this lock — an append here would be stranded forever.
		mb.ovf.Unlock()
		return ErrClosed
	}
	mb.ovf.q = append(mb.ovf.q, m)
	if m.From >= 0 && m.From < mb.size {
		mb.ovfBySender[m.From].Add(1)
	}
	mb.ovf.Unlock()
	mb.ctr.spills.Add(1)
	mb.arrival.wake()
	return nil
}

// eagerMaxBytes splits sends into MPI's two protocols. At or below it a
// send is eager: a full ring spills to the unbounded overflow and the
// sender never blocks, so fire-and-forget control traffic (barrier
// arrivals, chunk-train frames, probe messages) cannot deadlock a program
// that has no receiver posted yet. Above it a send is rendezvous: the
// producer blocks on the full ring until the receiver drains it, so bulk
// data exerts real backpressure instead of ballooning resident memory.
const eagerMaxBytes = 4096

// putBlocking enqueues for an in-process sender. A small message (see
// eagerMaxBytes) never blocks — full rings spill to the overflow. A bulk
// message blocks while the ring is full: the bounded ring is the
// backpressure contract. While blocked, the sender assists — it drains its
// own inbox's rings into the pending stage — so symmetric exchanges (two
// ranks streaming chunk trains at each other, as Alltoallv does) free each
// other's rings instead of deadlocking, the same progress-engine
// discipline MPI implementations use inside blocking sends.
func (mb *mailbox) putBlocking(m Message, own *mailbox) error {
	if mb.closed.Load() {
		return ErrClosed
	}
	r := mb.ringFor(m.From)
	if r == nil || mb.ovfBySender[m.From].Load() > 0 {
		// Out-of-range sender, or earlier messages from this sender are
		// still in the overflow: follow them so per-stream order holds.
		return mb.spill(m)
	}
	if r.tryPut(m) {
		mb.finishPut()
		return nil
	}
	if len(m.Data) <= eagerMaxBytes {
		return mb.spill(m)
	}
	mb.ctr.fullStall.Add(1)
	for {
		spaceCh := mb.space.enter()
		if r.tryPut(m) {
			mb.space.leave()
			mb.finishPut()
			return nil
		}
		if mb.closed.Load() {
			mb.space.leave()
			return ErrClosed
		}
		var ownCh <-chan struct{}
		if own != nil {
			if n := own.assist(); n > 0 {
				mb.ctr.assists.Add(int64(n))
			}
			// Park on our own arrival gate too: new inbound traffic means
			// more assisting to do (and, on a self-send, more ring space).
			ownCh = own.arrival.enter()
		}
		if r.tryPut(m) { // the assist may have freed our own ring
			if own != nil {
				own.arrival.leave()
			}
			mb.space.leave()
			mb.finishPut()
			return nil
		}
		select {
		case <-spaceCh:
		case <-ownCh: // nil when own == nil: never fires
		}
		if own != nil {
			own.arrival.leave()
		}
		mb.space.leave()
		if mb.closed.Load() {
			return ErrClosed
		}
	}
}

// finishPut is the post-enqueue epilogue shared by the blocking and
// non-blocking ring paths.
func (mb *mailbox) finishPut() {
	mb.ctr.ringPuts.Add(1)
	mb.arrival.wake()
	if mb.closed.Load() {
		mb.reap()
	}
}

// assist drains this mailbox's rings and overflow into the pending stage
// on behalf of a producer blocked elsewhere, returning the number of
// messages moved. Safe from any goroutine: staging is mu-guarded and
// delivery order per stream is unaffected (the stage preserves arrival
// order).
func (mb *mailbox) assist() int {
	mb.mu.Lock()
	n := mb.drainAllLocked()
	mb.mu.Unlock()
	if n > 0 {
		mb.space.wake()
		mb.arrival.wake()
	}
	return n
}

// drainRingLocked moves everything out of one sender's ring into the
// pending stage, returning the number of slots freed. Callers hold mb.mu.
func (mb *mailbox) drainRingLocked(from int) int {
	if from < 0 || from >= mb.size {
		return 0
	}
	r := mb.rings[from].Load()
	if r == nil {
		return 0
	}
	freed := 0
	for {
		m, ok := r.tryTake()
		if !ok {
			return freed
		}
		mb.stageLocked(m)
		freed++
	}
}

// drainOvfLocked moves the overflow list into the pending stage. Callers
// hold mb.mu (the overflow's own lock is taken only for the swap).
//
// Every ring is drained first: a message spills only when its sender's
// ring is full or that sender already has spilled messages pending, so at
// any instant a sender's in-ring messages are older than its in-overflow
// ones. Staging the overflow without draining the rings would let one
// consumer's poll stage another sender's newer spilled messages ahead of
// that sender's older in-ring ones and break per-stream FIFO.
func (mb *mailbox) drainOvfLocked() int {
	mb.ovf.Lock()
	empty := len(mb.ovf.q) == 0
	mb.ovf.Unlock()
	if empty {
		return 0
	}
	n := 0
	for from := range mb.rings {
		n += mb.drainRingLocked(from)
	}
	q := mb.takeOvf()
	for _, m := range q {
		mb.stageLocked(m)
	}
	return n + len(q)
}

// takeOvf swaps out the overflow list, clearing the per-sender stickiness
// counts under the same lock. A producer that then observes a zero count
// may return to the ring immediately: its spilled messages are staged (or
// reaped) under mb.mu before any later ring drain can stage the new one,
// so per-stream order is preserved.
func (mb *mailbox) takeOvf() []Message {
	mb.ovf.Lock()
	q := mb.ovf.q
	mb.ovf.q = nil
	for i := range q {
		if f := q[i].From; f >= 0 && f < mb.size {
			mb.ovfBySender[f].Add(-1)
		}
	}
	mb.ovf.Unlock()
	return q
}

func (mb *mailbox) drainAllLocked() int {
	n := 0
	for from := range mb.rings {
		n += mb.drainRingLocked(from)
	}
	return n + mb.drainOvfLocked()
}

// stageLocked appends one drained message to its stream's pending list,
// discarding duplicates of already-delivered or already-staged sequence
// numbers. Callers hold mb.mu.
func (mb *mailbox) stageLocked(m Message) {
	mb.ctr.takes.Add(1)
	if m.Seq != 0 {
		k := streamID{m.From, m.Tag}
		if m.Seq < mb.nextSeqLocked(k) {
			bufpool.Put(m.Data) // duplicate of an already-delivered message
			return
		}
		for _, q := range mb.pending[k] {
			if q.Seq == m.Seq {
				bufpool.Put(m.Data) // duplicate of an already-staged message
				return
			}
		}
	}
	k := streamID{m.From, m.Tag}
	mb.pending[k] = append(mb.pending[k], m)
}

// matchLocked delivers the first deliverable staged message of stream k:
// any Seq 0 message, or the sequenced message the stream's cursor is
// waiting for (a gap holds later sequence numbers back). Callers hold
// mb.mu. Emptied lists stay in the map so their capacity is reused —
// steady-state delivery allocates nothing.
func (mb *mailbox) matchLocked(k streamID) (Message, bool) {
	list := mb.pending[k]
	for i, m := range list {
		if m.Seq != 0 {
			if m.Seq != mb.nextSeqLocked(k) {
				continue // a gap precedes this one; wait for the in-flight message
			}
			mb.next[k] = m.Seq + 1
		}
		mb.pending[k] = append(list[:i], list[i+1:]...)
		return m, true
	}
	return Message{}, false
}

func (mb *mailbox) get(from int, tag uint64) (Message, error) {
	return mb.getWithin(from, tag, 0)
}

// getWithin is get with an optional real-time deadline (0 = wait forever).
// Each pass drains the sender's ring and the overflow into the pending
// stage, attempts a match, and parks on the arrival gate when nothing is
// deliverable; ring slots freed by the drain wake blocked producers.
func (mb *mailbox) getWithin(from int, tag uint64, timeout time.Duration) (Message, error) {
	k := streamID{from, tag}
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if mb.closed.Load() {
			return Message{}, ErrClosed
		}
		m, ok := mb.poll(from, k)
		if ok {
			return m, nil
		}
		// Register on the gate, then re-check: a message published after
		// the poll above would otherwise be woken into nobody.
		ch := mb.arrival.enter()
		m, ok = mb.poll(from, k)
		if ok {
			mb.arrival.leave()
			return m, nil
		}
		if mb.closed.Load() {
			mb.arrival.leave()
			return Message{}, ErrClosed
		}
		if timeout > 0 && timer == nil {
			timer = time.NewTimer(timeout)
			timeoutCh = timer.C
		}
		mb.ctr.parks.Add(1)
		select {
		case <-ch:
			mb.arrival.leave()
		case <-timeoutCh:
			mb.arrival.leave()
			// One final poll: the message may have landed as the timer fired.
			if m, ok := mb.poll(from, k); ok {
				return m, nil
			}
			return Message{}, fmt.Errorf("%w: no message from %d tag %#x within %v",
				ErrRecvTimeout, from, tag, timeout)
		}
	}
}

// poll drains and attempts one match, waking producers for any ring slots
// the drain freed.
func (mb *mailbox) poll(from int, k streamID) (Message, bool) {
	mb.mu.Lock()
	freed := mb.drainRingLocked(from)
	freed += mb.drainOvfLocked() // overflow may hold this stream's messages
	m, ok := mb.matchLocked(k)
	mb.mu.Unlock()
	if freed > 0 {
		mb.space.wake()
	}
	return m, ok
}

// backlog reports how many staged-but-undelivered messages the mailbox
// holds, draining first so in-ring duplicates are resolved. Test hook.
func (mb *mailbox) backlog() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.drainAllLocked()
	n := 0
	for _, l := range mb.pending {
		n += len(l)
	}
	return n
}

// reap releases every undelivered payload: no receiver will ever match
// them once the mailbox is closed. Concurrent-safe (ring takes are CAS'd,
// the rest is locked), so close and a racing post-enqueue producer can
// both sweep and each payload is released exactly once — by whichever
// sweep dequeues it.
func (mb *mailbox) reap() {
	for i := range mb.rings {
		r := mb.rings[i].Load()
		if r == nil {
			continue
		}
		for {
			m, ok := r.tryTake()
			if !ok {
				break
			}
			bufpool.Put(m.Data)
		}
	}
	for _, m := range mb.takeOvf() {
		bufpool.Put(m.Data)
	}
	mb.mu.Lock()
	for k, list := range mb.pending {
		for _, m := range list {
			bufpool.Put(m.Data)
		}
		delete(mb.pending, k)
	}
	mb.mu.Unlock()
}

func (mb *mailbox) close() {
	if mb.closed.Swap(true) {
		return
	}
	mb.reap()
	mb.arrival.wake()
	mb.space.wake()
}

// ChanTransport is the in-process transport: one mailbox per rank.
type ChanTransport struct {
	boxes []*mailbox
	ctr   ringCounters
}

// NewChanTransport creates an in-process transport for n ranks.
func NewChanTransport(n int) *ChanTransport {
	t := &ChanTransport{boxes: make([]*mailbox, n)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox(n, &t.ctr)
	}
	return t
}

// Send implements Transport. A bulk send (payload above eagerMaxBytes) to
// a rank whose inbound ring is full blocks until the receiver drains it
// (backpressure, never loss); while blocked, the sender services its own
// inbox so mutually saturated ranks free each other. Small messages are
// eager: a full ring spills them to the overflow and Send returns at once.
func (t *ChanTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("comm: send to invalid rank %d (size %d)", m.To, len(t.boxes))
	}
	// Copy the payload into a pooled buffer: senders are free to reuse their
	// buffers the moment Send returns, exactly as with a real wire transport,
	// and the receiver owns (and may bufpool.Put) the delivered copy.
	if m.Data != nil {
		d := bufpool.Get(len(m.Data))
		copy(d, m.Data)
		m.Data = d
	}
	var own *mailbox
	if m.From >= 0 && m.From < len(t.boxes) {
		own = t.boxes[m.From]
	}
	if err := t.boxes[m.To].putBlocking(m, own); err != nil {
		bufpool.Put(m.Data)
		return err
	}
	return nil
}

// RingStats snapshots the transport's mailbox-path counters. Safe from
// any goroutine, including mid-run.
func (t *ChanTransport) RingStats() RingStats { return t.ctr.snapshot() }

// ResetRingStats zeroes the mailbox-path counters (between benchmark
// phases, for example). Safe from any goroutine.
func (t *ChanTransport) ResetRingStats() { t.ctr.reset() }

// SetMonitor exports the transport's ring counters as comm_ring_* gauges
// on the monitor's registry. Safe to call for successive transports on a
// long-lived monitor: the gauges always reflect the most recently bound
// transport.
func (t *ChanTransport) SetMonitor(m *dsmon.Monitor) { bindRingMetrics(m, &t.ctr) }

// Recv implements Transport.
func (t *ChanTransport) Recv(to, from int, tag uint64) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: recv on invalid rank %d (size %d)", to, len(t.boxes))
	}
	return t.boxes[to].get(from, tag)
}

// RecvWithin implements DeadlineRecver.
func (t *ChanTransport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: recv on invalid rank %d (size %d)", to, len(t.boxes))
	}
	return t.boxes[to].getWithin(from, tag, timeout)
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// Endpoint is one rank's view of the transport plus its virtual-time
// accounting. All Endpoint methods must be called only from the owning
// node's goroutine.
type Endpoint struct {
	rank, size int
	tr         Transport
	clock      *vtime.Clock
	prof       vtime.Profile

	// Resilience: per-stream send sequence numbers (for receiver-side dedup
	// and reassembly), the transient-fault retry policy, and the optional
	// real-time receive deadline. All owned by the node's goroutine.
	seqs         map[streamID]uint64
	retry        RetryPolicy
	recvDeadline time.Duration

	// Statistics, local to the owning goroutine.
	sent, received           int
	bytesSent, bytesReceived int64
	sentByPeer, recvByPeer   []int

	// Observability (nil handles are no-ops).
	mon         *dsmon.Monitor
	mSent       *dsmon.Counter
	mRecv       *dsmon.Counter
	mBytesOut   *dsmon.Counter
	mBytesIn    *dsmon.Counter
	mTransient  *dsmon.Counter
	mSendRetry  *dsmon.Counter
	mRecvRetry  *dsmon.Counter
	mExhausted  *dsmon.Counter
	hMsgSize    *dsmon.Histogram
	hRecvWait   *dsmon.Histogram
}

// NewEndpoint binds rank's endpoint onto tr.
func NewEndpoint(rank, size int, tr Transport, clock *vtime.Clock, prof vtime.Profile) *Endpoint {
	return &Endpoint{
		rank: rank, size: size, tr: tr, clock: clock, prof: prof,
		seqs:       make(map[streamID]uint64),
		retry:      DefaultRetryPolicy(),
		sentByPeer: make([]int, size), recvByPeer: make([]int, size),
	}
}

// SetRetryPolicy replaces the endpoint's transient-fault retry policy
// (MaxAttempts is clamped to at least one attempt).
func (e *Endpoint) SetRetryPolicy(p RetryPolicy) *Endpoint {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	e.retry = p
	return e
}

// SetRecvDeadline bounds every blocking receive in real time (0 disables,
// the default). Each attempt waits up to d; a timeout counts as a transient
// fault, so the worst-case wall-clock wait before a clean error is
// d × MaxAttempts.
func (e *Endpoint) SetRecvDeadline(d time.Duration) *Endpoint {
	e.recvDeadline = d
	return e
}

// SetMonitor attaches the observability layer: per-message counters, the
// message-size histogram, the receive-wait stall histogram, and (when the
// monitor traces) one comm-category span per Send/Recv. Metric handles are
// cached here so the per-message cost of monitoring is a few atomic adds.
func (e *Endpoint) SetMonitor(m *dsmon.Monitor) *Endpoint {
	e.mon = m
	reg := m.Registry()
	e.mSent = reg.Counter("comm_messages_sent_total", "point-to-point messages sent")
	e.mRecv = reg.Counter("comm_messages_received_total", "point-to-point messages received")
	e.mBytesOut = reg.Counter("comm_bytes_sent_total", "payload bytes sent")
	e.mBytesIn = reg.Counter("comm_bytes_received_total", "payload bytes received")
	e.mTransient = reg.Counter("comm_transient_errors_total", "transient transport faults observed (send and recv)")
	e.mSendRetry = reg.Counter("comm_send_retries_total", "point-to-point sends retried after a transient fault")
	e.mRecvRetry = reg.Counter("comm_recv_retries_total", "point-to-point receives retried after a transient fault")
	e.mExhausted = reg.Counter("comm_retries_exhausted_total", "operations that failed after spending the whole retry budget")
	e.hMsgSize = reg.Histogram("comm_message_size_bytes",
		"payload size of sent messages", dsmon.SizeBuckets)
	e.hRecvWait = reg.Histogram("comm_recv_wait_seconds",
		"virtual seconds from receive call to message arrival", dsmon.LatencyBuckets)
	return e
}

// Monitor returns the attached monitor (nil when unmonitored). The
// collective layer reads it so one machine flag lights up both layers.
func (e *Endpoint) Monitor() *dsmon.Monitor { return e.mon }

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks.
func (e *Endpoint) Size() int { return e.size }

// Clock returns the owning node's virtual clock.
func (e *Endpoint) Clock() *vtime.Clock { return e.clock }

// Profile returns the platform cost profile.
func (e *Endpoint) Profile() vtime.Profile { return e.prof }

// Send transmits data to rank `to` under `tag`, charging the sender its
// per-message CPU overhead. Transient transport faults are retried with
// exponential virtual-time backoff; the resent message reuses its sequence
// number, so a retry whose earlier copy actually arrived is deduplicated at
// the receiver. Fatal errors, and transient ones that outlast the retry
// budget, are returned to the caller.
func (e *Endpoint) Send(to int, tag uint64, data []byte) error {
	start := e.clock.Now()
	e.clock.Advance(e.prof.SendOverhead)
	k := streamID{to, tag}
	e.seqs[k]++
	m := Message{From: e.rank, To: to, Tag: tag, Seq: e.seqs[k], Data: data}
	backoff := e.retry.Backoff
	var err error
	for attempt := 1; ; attempt++ {
		m.Time = e.clock.Now()
		err = e.tr.Send(m)
		if err == nil || !IsTransient(err) {
			break
		}
		e.mTransient.Inc()
		if attempt >= e.retry.MaxAttempts {
			e.mExhausted.Inc()
			err = fmt.Errorf("comm: send to %d tag %#x: retries exhausted after %d attempts: %w",
				to, tag, attempt, err)
			break
		}
		e.mSendRetry.Inc()
		e.backoffSpan(backoff)
		backoff *= 2
	}
	if err != nil {
		return err
	}
	e.sent++
	e.bytesSent += int64(len(data))
	if to >= 0 && to < len(e.sentByPeer) {
		e.sentByPeer[to]++
	}
	e.mSent.Inc()
	e.mBytesOut.Add(int64(len(data)))
	e.hMsgSize.Observe(float64(len(data)))
	if rec := e.mon.Recorder(); rec != nil {
		// One span and one edge per logical send, however many transport
		// attempts it took: the edge is keyed by the sequence number, which
		// retransmissions reuse, so the graph never doubles an edge.
		id := rec.AddSpan(e.rank, "comm", "Send", start, e.clock.Now())
		rec.FlowOut(trace.FlowKey{Kind: "msg", A: e.rank, B: to, Tag: tag, Seq: m.Seq}, id)
	}
	return nil
}

// backoffSpan charges one retry backoff to the clock and, when tracing,
// records it as its own span so the critical-path analyzer can attribute
// time lost to retransmission separately from useful communication.
func (e *Endpoint) backoffSpan(backoff float64) {
	rec := e.mon.Recorder()
	b0 := e.clock.Now()
	e.clock.Advance(backoff)
	if rec != nil {
		rec.Add(e.rank, "comm", "backoff", b0, e.clock.Now())
	}
}

// recvOnce performs a single receive attempt, bounded by the configured
// real-time deadline when the transport supports one.
func (e *Endpoint) recvOnce(from int, tag uint64) (Message, error) {
	if e.recvDeadline > 0 {
		if dr, ok := e.tr.(DeadlineRecver); ok {
			return dr.RecvWithin(e.rank, from, tag, e.recvDeadline)
		}
	}
	return e.tr.Recv(e.rank, from, tag)
}

// Recv blocks for the matching message and advances the local clock to the
// message's arrival time: send time + latency + transfer time. Transient
// faults (injected receive errors, deadline expiries) are retried with
// exponential virtual-time backoff before a clean error is surfaced.
//
// The returned payload is owned by the caller: it never aliases the sender's
// buffer, may be retained indefinitely, and may be released with bufpool.Put
// once fully consumed (releasing is optional — the GC reclaims it either
// way).
func (e *Endpoint) Recv(from int, tag uint64) ([]byte, error) {
	start := e.clock.Now()
	var m Message
	var err error
	backoff := e.retry.Backoff
	for attempt := 1; ; attempt++ {
		m, err = e.recvOnce(from, tag)
		if err == nil || !IsTransient(err) {
			break
		}
		e.mTransient.Inc()
		if attempt >= e.retry.MaxAttempts {
			e.mExhausted.Inc()
			return nil, fmt.Errorf("comm: recv from %d tag %#x: retries exhausted after %d attempts: %w",
				from, tag, attempt, err)
		}
		e.mRecvRetry.Inc()
		e.backoffSpan(backoff)
		backoff *= 2
	}
	if err != nil {
		return nil, err
	}
	arrival := m.Time + e.prof.MsgLatency + vtime.TransferTime(int64(len(m.Data)), e.prof.MsgBW)
	e.clock.SyncTo(arrival)
	e.received++
	e.bytesReceived += int64(len(m.Data))
	if from >= 0 && from < len(e.recvByPeer) {
		e.recvByPeer[from]++
	}
	e.mRecv.Inc()
	e.mBytesIn.Add(int64(len(m.Data)))
	e.hRecvWait.Observe(e.clock.Now() - start)
	if rec := e.mon.Recorder(); rec != nil {
		id := rec.AddSpan(e.rank, "comm", "Recv", start, e.clock.Now())
		// The mailbox delivers each sequence number exactly once, so a
		// duplicated or retransmitted message can never complete a second
		// edge — the FlowKey below is consumed by exactly one FlowOut.
		if m.Seq != 0 {
			rec.FlowIn(trace.FlowKey{Kind: "msg", A: from, B: e.rank, Tag: tag, Seq: m.Seq}, id)
		}
	}
	return m.Data, nil
}

// Stats is one endpoint's traffic account.
type Stats struct {
	// Sent and Received count point-to-point messages.
	Sent, Received int
	// BytesSent and BytesReceived sum payload bytes.
	BytesSent, BytesReceived int64
	// SentByPeer[r] and ReceivedByPeer[r] count messages exchanged with
	// rank r — the communication matrix row that reveals funnel hotspots
	// (everything converging on node 0) at a glance.
	SentByPeer, ReceivedByPeer []int
}

// Stats returns a snapshot of this endpoint's traffic counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Sent: e.sent, Received: e.received,
		BytesSent: e.bytesSent, BytesReceived: e.bytesReceived,
		SentByPeer:     append([]int(nil), e.sentByPeer...),
		ReceivedByPeer: append([]int(nil), e.recvByPeer...),
	}
}
