// Package comm provides the rank-addressed message-passing substrate of the
// simulated multicomputer. The paper's pC++ runtime sat on Intel NX and TMC
// CMMD; Go has no MPI culture, so this package emulates the same facility
// with goroutines and sockets: a Transport moves tagged byte payloads
// between ranks, and an Endpoint layers deterministic virtual-time
// accounting on top (each message carries its send timestamp; the receiver's
// clock advances to send time + latency + size/bandwidth).
//
// Two transports are provided behind one interface: ChanTransport (in-process
// queues) and TCPTransport (real loopback sockets, exercising genuine
// serialization). Because virtual time is carried in-band, both transports
// produce identical virtual-time results for the same program.
package comm

import (
	"errors"
	"fmt"
	"sync"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/vtime"
)

// Message is one rank-to-rank datagram. Time is the sender's virtual clock
// at the moment of sending.
type Message struct {
	From, To int
	Tag      uint64
	Time     float64
	Data     []byte
}

// Transport delivers messages between ranks. Implementations must preserve
// per-(sender, tag) FIFO order and must match receives by exact (from, tag).
type Transport interface {
	// Send enqueues m for delivery to m.To. It must not block indefinitely
	// on a well-formed program.
	Send(m Message) error
	// Recv blocks until a message from `from` with tag `tag` addressed to
	// `to` is available and returns it.
	Recv(to, from int, tag uint64) (Message, error)
	// Close releases transport resources. Pending receivers get errors.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// mailbox is a matching queue shared by both transports: messages land in a
// per-destination list; receivers scan for the first (from, tag) match.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) get(from int, tag uint64) (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.From == from && m.Tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return Message{}, ErrClosed
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// ChanTransport is the in-process transport: one mailbox per rank.
type ChanTransport struct {
	boxes []*mailbox
}

// NewChanTransport creates an in-process transport for n ranks.
func NewChanTransport(n int) *ChanTransport {
	t := &ChanTransport{boxes: make([]*mailbox, n)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("comm: send to invalid rank %d (size %d)", m.To, len(t.boxes))
	}
	// Copy the payload: senders are free to reuse their buffers, exactly as
	// with a real wire transport.
	if m.Data != nil {
		d := make([]byte, len(m.Data))
		copy(d, m.Data)
		m.Data = d
	}
	return t.boxes[m.To].put(m)
}

// Recv implements Transport.
func (t *ChanTransport) Recv(to, from int, tag uint64) (Message, error) {
	if to < 0 || to >= len(t.boxes) {
		return Message{}, fmt.Errorf("comm: recv on invalid rank %d (size %d)", to, len(t.boxes))
	}
	return t.boxes[to].get(from, tag)
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// Endpoint is one rank's view of the transport plus its virtual-time
// accounting. All Endpoint methods must be called only from the owning
// node's goroutine.
type Endpoint struct {
	rank, size int
	tr         Transport
	clock      *vtime.Clock
	prof       vtime.Profile

	// Statistics, local to the owning goroutine.
	sent, received           int
	bytesSent, bytesReceived int64
	sentByPeer, recvByPeer   []int

	// Observability (nil handles are no-ops).
	mon       *dsmon.Monitor
	mSent     *dsmon.Counter
	mRecv     *dsmon.Counter
	mBytesOut *dsmon.Counter
	mBytesIn  *dsmon.Counter
	hMsgSize  *dsmon.Histogram
	hRecvWait *dsmon.Histogram
}

// NewEndpoint binds rank's endpoint onto tr.
func NewEndpoint(rank, size int, tr Transport, clock *vtime.Clock, prof vtime.Profile) *Endpoint {
	return &Endpoint{
		rank: rank, size: size, tr: tr, clock: clock, prof: prof,
		sentByPeer: make([]int, size), recvByPeer: make([]int, size),
	}
}

// SetMonitor attaches the observability layer: per-message counters, the
// message-size histogram, the receive-wait stall histogram, and (when the
// monitor traces) one comm-category span per Send/Recv. Metric handles are
// cached here so the per-message cost of monitoring is a few atomic adds.
func (e *Endpoint) SetMonitor(m *dsmon.Monitor) *Endpoint {
	e.mon = m
	reg := m.Registry()
	e.mSent = reg.Counter("comm_messages_sent_total", "point-to-point messages sent")
	e.mRecv = reg.Counter("comm_messages_received_total", "point-to-point messages received")
	e.mBytesOut = reg.Counter("comm_bytes_sent_total", "payload bytes sent")
	e.mBytesIn = reg.Counter("comm_bytes_received_total", "payload bytes received")
	e.hMsgSize = reg.Histogram("comm_message_size_bytes",
		"payload size of sent messages", dsmon.SizeBuckets)
	e.hRecvWait = reg.Histogram("comm_recv_wait_seconds",
		"virtual seconds from receive call to message arrival", dsmon.LatencyBuckets)
	return e
}

// Monitor returns the attached monitor (nil when unmonitored). The
// collective layer reads it so one machine flag lights up both layers.
func (e *Endpoint) Monitor() *dsmon.Monitor { return e.mon }

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks.
func (e *Endpoint) Size() int { return e.size }

// Clock returns the owning node's virtual clock.
func (e *Endpoint) Clock() *vtime.Clock { return e.clock }

// Profile returns the platform cost profile.
func (e *Endpoint) Profile() vtime.Profile { return e.prof }

// Send transmits data to rank `to` under `tag`, charging the sender its
// per-message CPU overhead.
func (e *Endpoint) Send(to int, tag uint64, data []byte) error {
	start := e.clock.Now()
	e.clock.Advance(e.prof.SendOverhead)
	e.sent++
	e.bytesSent += int64(len(data))
	if to >= 0 && to < len(e.sentByPeer) {
		e.sentByPeer[to]++
	}
	e.mSent.Inc()
	e.mBytesOut.Add(int64(len(data)))
	e.hMsgSize.Observe(float64(len(data)))
	e.mon.Span(e.rank, "comm", "Send", start, e.clock.Now())
	return e.tr.Send(Message{
		From: e.rank, To: to, Tag: tag,
		Time: e.clock.Now(), Data: data,
	})
}

// Recv blocks for the matching message and advances the local clock to the
// message's arrival time: send time + latency + transfer time.
func (e *Endpoint) Recv(from int, tag uint64) ([]byte, error) {
	start := e.clock.Now()
	m, err := e.tr.Recv(e.rank, from, tag)
	if err != nil {
		return nil, err
	}
	arrival := m.Time + e.prof.MsgLatency + vtime.TransferTime(int64(len(m.Data)), e.prof.MsgBW)
	e.clock.SyncTo(arrival)
	e.received++
	e.bytesReceived += int64(len(m.Data))
	if from >= 0 && from < len(e.recvByPeer) {
		e.recvByPeer[from]++
	}
	e.mRecv.Inc()
	e.mBytesIn.Add(int64(len(m.Data)))
	e.hRecvWait.Observe(e.clock.Now() - start)
	e.mon.Span(e.rank, "comm", "Recv", start, e.clock.Now())
	return m.Data, nil
}

// Stats is one endpoint's traffic account.
type Stats struct {
	// Sent and Received count point-to-point messages.
	Sent, Received int
	// BytesSent and BytesReceived sum payload bytes.
	BytesSent, BytesReceived int64
	// SentByPeer[r] and ReceivedByPeer[r] count messages exchanged with
	// rank r — the communication matrix row that reveals funnel hotspots
	// (everything converging on node 0) at a glance.
	SentByPeer, ReceivedByPeer []int
}

// Stats returns a snapshot of this endpoint's traffic counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Sent: e.sent, Received: e.received,
		BytesSent: e.bytesSent, BytesReceived: e.bytesReceived,
		SentByPeer:     append([]int(nil), e.sentByPeer...),
		ReceivedByPeer: append([]int(nil), e.recvByPeer...),
	}
}
