package comm

import (
	"fmt"
	"sync"
	"time"
)

// FaultyTransport wraps a transport and fails operations after a budget is
// exhausted — the message-layer counterpart of pfs.FaultyBackend, used to
// test that node failures during communication surface as errors everywhere
// instead of hanging the machine.
type FaultyTransport struct {
	Transport
	mu        sync.Mutex
	sendsLeft int
	dead      bool
}

// NewFaultyTransport wraps tr, allowing sendsLeft successful sends before
// every further operation fails. When the budget trips, the underlying
// transport is closed, so receivers already blocked in Recv wake with an
// error rather than hanging (the regression test for this lives in
// faulty_test.go); receives issued after death fail fast with an injected
// failure. The failure is permanent and fatal — it deliberately does not
// wrap ErrTransient, so resilient endpoints do not retry it. For
// retryable, probabilistic faults use chaos.Transport instead.
func NewFaultyTransport(tr Transport, sendsLeft int) *FaultyTransport {
	return &FaultyTransport{Transport: tr, sendsLeft: sendsLeft}
}

// Send fails once the budget is spent, closing the underlying transport so
// blocked receivers wake with errors (a crashed interconnect, not a hang).
func (f *FaultyTransport) Send(m Message) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return fmt.Errorf("comm: injected link failure (transport dead)")
	}
	if f.sendsLeft <= 0 {
		f.dead = true
		f.mu.Unlock()
		f.Transport.Close()
		return fmt.Errorf("comm: injected link failure after send budget")
	}
	f.sendsLeft--
	f.mu.Unlock()
	return f.Transport.Send(m)
}

// Recv fails fast once the transport is dead; otherwise it defers to the
// underlying transport (whose closure, after a budget trip, also wakes any
// receiver that was already blocked).
func (f *FaultyTransport) Recv(to, from int, tag uint64) (Message, error) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return Message{}, fmt.Errorf("comm: injected link failure (transport dead)")
	}
	return f.Transport.Recv(to, from, tag)
}

// RecvWithin forwards the deadline-bounded receive when the wrapped
// transport supports one, preserving the same fail-fast behavior after
// death. It falls back to a plain Recv otherwise.
func (f *FaultyTransport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (Message, error) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return Message{}, fmt.Errorf("comm: injected link failure (transport dead)")
	}
	if dr, ok := f.Transport.(DeadlineRecver); ok {
		return dr.RecvWithin(to, from, tag, timeout)
	}
	return f.Transport.Recv(to, from, tag)
}
