package comm

import (
	"fmt"
	"sync"
)

// FaultyTransport wraps a transport and fails operations after a budget is
// exhausted — the message-layer counterpart of pfs.FaultyBackend, used to
// test that node failures during communication surface as errors everywhere
// instead of hanging the machine.
type FaultyTransport struct {
	Transport
	mu        sync.Mutex
	sendsLeft int
	dead      bool
}

// NewFaultyTransport wraps tr, allowing sendsLeft successful sends before
// every further operation fails (and pending receivers are released).
func NewFaultyTransport(tr Transport, sendsLeft int) *FaultyTransport {
	return &FaultyTransport{Transport: tr, sendsLeft: sendsLeft}
}

// Send fails once the budget is spent, closing the underlying transport so
// blocked receivers wake with errors (a crashed interconnect, not a hang).
func (f *FaultyTransport) Send(m Message) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return fmt.Errorf("comm: injected link failure (transport dead)")
	}
	if f.sendsLeft <= 0 {
		f.dead = true
		f.mu.Unlock()
		f.Transport.Close()
		return fmt.Errorf("comm: injected link failure after send budget")
	}
	f.sendsLeft--
	f.mu.Unlock()
	return f.Transport.Send(m)
}
