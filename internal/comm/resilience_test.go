package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/vtime"
)

// --- mailbox sequencing ---------------------------------------------------

func TestMailboxReassemblesOutOfOrder(t *testing.T) {
	mb := newMailbox(2, new(ringCounters))
	// Seq 2 arrives first (a reordered wire); seq 1 follows.
	mb.put(Message{From: 0, Tag: 5, Seq: 2, Data: []byte("second")})
	mb.put(Message{From: 0, Tag: 5, Seq: 1, Data: []byte("first")})
	for i, want := range []string{"first", "second"} {
		m, err := mb.get(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != want {
			t.Fatalf("delivery %d = %q, want %q", i, m.Data, want)
		}
	}
}

func TestMailboxDropsDuplicates(t *testing.T) {
	mb := newMailbox(2, new(ringCounters))
	mb.put(Message{From: 0, Tag: 1, Seq: 1, Data: []byte("a")})
	mb.put(Message{From: 0, Tag: 1, Seq: 1, Data: []byte("a-dup-queued")}) // dup of a queued message
	if m, _ := mb.get(0, 1); string(m.Data) != "a" {
		t.Fatalf("first delivery = %q", m.Data)
	}
	mb.put(Message{From: 0, Tag: 1, Seq: 1, Data: []byte("a-dup-late")}) // dup of a delivered message
	mb.put(Message{From: 0, Tag: 1, Seq: 2, Data: []byte("b")})
	if m, _ := mb.get(0, 1); string(m.Data) != "b" {
		t.Fatalf("second delivery = %q (duplicate leaked through)", m.Data)
	}
	if queued := mb.backlog(); queued != 0 {
		t.Fatalf("%d stale duplicates left staged", queued)
	}
}

func TestMailboxStreamsAreIndependent(t *testing.T) {
	mb := newMailbox(2, new(ringCounters))
	// A gap on one (from, tag) stream must not block a different stream.
	mb.put(Message{From: 0, Tag: 1, Seq: 2, Data: []byte("gapped")})
	mb.put(Message{From: 1, Tag: 1, Seq: 1, Data: []byte("other-rank")})
	mb.put(Message{From: 0, Tag: 2, Seq: 1, Data: []byte("other-tag")})
	if m, _ := mb.get(1, 1); string(m.Data) != "other-rank" {
		t.Fatalf("cross-rank delivery = %q", m.Data)
	}
	if m, _ := mb.get(0, 2); string(m.Data) != "other-tag" {
		t.Fatalf("cross-tag delivery = %q", m.Data)
	}
}

func TestMailboxSeqZeroBypassesSequencing(t *testing.T) {
	mb := newMailbox(2, new(ringCounters))
	// Legacy unsequenced messages (Seq 0) are delivered as-is, duplicates
	// included — raw transport users manage their own ordering.
	mb.put(Message{From: 0, Tag: 9, Data: []byte("x")})
	mb.put(Message{From: 0, Tag: 9, Data: []byte("x")})
	for i := 0; i < 2; i++ {
		if m, err := mb.get(0, 9); err != nil || string(m.Data) != "x" {
			t.Fatalf("unsequenced delivery %d: %q, %v", i, m.Data, err)
		}
	}
}

func TestMailboxGetWithinTimesOut(t *testing.T) {
	mb := newMailbox(2, new(ringCounters))
	start := time.Now()
	_, err := mb.getWithin(0, 1, 20*time.Millisecond)
	if err == nil {
		t.Fatal("empty-mailbox wait returned a message")
	}
	if !errors.Is(err, ErrRecvTimeout) || !IsTransient(err) {
		t.Fatalf("timeout error = %v; want ErrRecvTimeout (transient)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out wait took %v", elapsed)
	}
}

// --- endpoint retry -------------------------------------------------------

// scriptedTransport wraps an inner transport and fails sends according to a
// small script, for deterministic retry tests.
type scriptedTransport struct {
	Transport
	mu            sync.Mutex
	failFirst     int   // fail this many sends with a transient error...
	deliverAnyway bool  // ...but deliver them regardless (models a lost ACK)
	fatal         error // when set, every send fails with this instead
	sends         int
}

func (s *scriptedTransport) Send(m Message) error {
	s.mu.Lock()
	s.sends++
	n := s.sends
	s.mu.Unlock()
	if s.fatal != nil {
		return s.fatal
	}
	if n <= s.failFirst {
		if s.deliverAnyway {
			s.Transport.Send(m)
		}
		return fmt.Errorf("%w: scripted fault %d", ErrTransient, n)
	}
	return s.Transport.Send(m)
}

func testEndpoints(tr Transport) (*Endpoint, *Endpoint, *dsmon.Monitor) {
	mon := dsmon.New()
	prof := vtime.Paragon()
	var c0, c1 vtime.Clock
	snd := NewEndpoint(0, 2, tr, &c0, prof).SetMonitor(mon)
	rcv := NewEndpoint(1, 2, tr, &c1, prof).SetMonitor(mon)
	return snd, rcv, mon
}

func TestEndpointRetriesTransientSend(t *testing.T) {
	st := &scriptedTransport{Transport: NewChanTransport(2), failFirst: 3}
	snd, rcv, mon := testEndpoints(st)
	if err := snd.Send(1, 7, []byte("payload")); err != nil {
		t.Fatalf("send not absorbed by retry: %v", err)
	}
	if got, err := rcv.Recv(0, 7); err != nil || string(got) != "payload" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	reg := mon.Registry()
	if n := reg.Counter("comm_send_retries_total", "").Value(); n != 3 {
		t.Errorf("send retries counted = %d, want 3", n)
	}
	if n := reg.Counter("comm_retries_exhausted_total", "").Value(); n != 0 {
		t.Errorf("exhaustions counted = %d, want 0", n)
	}
}

func TestEndpointRetryDeliversExactlyOnce(t *testing.T) {
	// The transient failure delivered its message anyway (a lost ACK): the
	// retry manufactures a duplicate, which the mailbox must suppress.
	st := &scriptedTransport{Transport: NewChanTransport(2), failFirst: 1, deliverAnyway: true}
	snd, rcv, _ := testEndpoints(st)
	for i := 0; i < 5; i++ {
		if err := snd.Send(1, 3, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := rcv.Recv(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if want := string([]byte{byte('a' + i)}); string(got) != want {
			t.Fatalf("delivery %d = %q, want %q (duplicate or reorder leaked)", i, got, want)
		}
	}
}

func TestEndpointRetryExhaustionIsClean(t *testing.T) {
	st := &scriptedTransport{Transport: NewChanTransport(2), failFirst: 1 << 30}
	snd, _, mon := testEndpoints(st)
	snd.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, Backoff: 1e-6})
	err := snd.Send(1, 1, []byte("doomed"))
	if err == nil {
		t.Fatal("send succeeded with every attempt faulted")
	}
	if !IsTransient(err) {
		t.Fatalf("exhaustion error lost its transient cause: %v", err)
	}
	if st.sends != 4 {
		t.Errorf("transport saw %d attempts, want 4", st.sends)
	}
	if n := mon.Registry().Counter("comm_retries_exhausted_total", "").Value(); n != 1 {
		t.Errorf("exhaustions counted = %d, want 1", n)
	}
}

func TestEndpointDoesNotRetryFatalErrors(t *testing.T) {
	boom := errors.New("comm: wire on fire")
	st := &scriptedTransport{Transport: NewChanTransport(2), fatal: boom}
	snd, _, _ := testEndpoints(st)
	if err := snd.Send(1, 1, nil); !errors.Is(err, boom) {
		t.Fatalf("fatal error not propagated: %v", err)
	}
	if st.sends != 1 {
		t.Fatalf("fatal error retried: transport saw %d attempts", st.sends)
	}
}

func TestEndpointRecvDeadline(t *testing.T) {
	tr := NewChanTransport(2)
	_, rcv, mon := testEndpoints(tr)
	rcv.SetRecvDeadline(15 * time.Millisecond).
		SetRetryPolicy(RetryPolicy{MaxAttempts: 2, Backoff: 1e-6})
	_, err := rcv.Recv(0, 42)
	if err == nil {
		t.Fatal("receive with no sender returned")
	}
	if !IsTransient(err) {
		t.Fatalf("deadline error not transient: %v", err)
	}
	if n := mon.Registry().Counter("comm_recv_retries_total", "").Value(); n != 1 {
		t.Errorf("recv retries counted = %d, want 1", n)
	}
	// A sender that shows up within the deadline is unaffected.
	snd := NewEndpoint(0, 2, tr, new(vtime.Clock), vtime.Paragon())
	go func() {
		time.Sleep(5 * time.Millisecond)
		snd.Send(1, 43, []byte("late but fine"))
	}()
	rcv.SetRecvDeadline(5 * time.Second)
	if got, err := rcv.Recv(0, 43); err != nil || string(got) != "late but fine" {
		t.Fatalf("recv under generous deadline = %q, %v", got, err)
	}
}

// --- TCP all-to-all stress (run under -race via make check) ---------------

// TestTCPAllToAllStress drives every rank pair of a loopback TCP transport
// concurrently: each rank streams sequenced messages to every other rank
// while receiving from all of them, so the frame codec, per-conn write path,
// and mailbox sequencing are all exercised under contention.
func TestTCPAllToAllStress(t *testing.T) {
	const (
		nprocs = 4
		msgs   = 60
	)
	tr, err := NewTCPTransport(nprocs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	prof := vtime.Paragon()
	var wg sync.WaitGroup
	errc := make(chan error, nprocs)
	for rank := 0; rank < nprocs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			clk := new(vtime.Clock)
			ep := NewEndpoint(rank, nprocs, tr, clk, prof)
			for i := 0; i < msgs; i++ {
				for to := 0; to < nprocs; to++ {
					if to == rank {
						continue
					}
					payload := []byte(fmt.Sprintf("r%d->%d #%03d", rank, to, i))
					if err := ep.Send(to, 0x77, payload); err != nil {
						errc <- fmt.Errorf("rank %d send: %w", rank, err)
						return
					}
				}
			}
			for from := 0; from < nprocs; from++ {
				if from == rank {
					continue
				}
				for i := 0; i < msgs; i++ {
					got, err := ep.Recv(from, 0x77)
					if err != nil {
						errc <- fmt.Errorf("rank %d recv from %d: %w", rank, from, err)
						return
					}
					if want := fmt.Sprintf("r%d->%d #%03d", from, rank, i); string(got) != want {
						errc <- fmt.Errorf("rank %d: from %d message %d = %q, want %q", rank, from, i, got, want)
						return
					}
				}
			}
		}(rank)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
