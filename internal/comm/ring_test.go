package comm

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
)

// Regression tests for the bounded MPMC ring and its mailbox integration:
// wraparound at capacity boundaries, full-ring backpressure (the producer
// blocks, never drops), close racing in-flight sends, and the race-free
// stats surface. The pooldebug build (`make race-pooldebug`) re-runs these
// with poisoned buffers, so a payload released twice or used after reap
// panics at the exact call.

func TestRingWraparound(t *testing.T) {
	const cap = 8
	r := newRing(cap)
	// Drive the indices far past several wraparounds with a mixed
	// fill/drain pattern, verifying FIFO and the exact full/empty edges.
	next, taken := 0, 0
	for cycle := 0; cycle < 100; cycle++ {
		fill := 1 + cycle%cap
		if free := cap - (next - taken); fill > free {
			fill = free
		}
		for i := 0; i < fill; i++ {
			if !r.tryPut(Message{Tag: uint64(next)}) {
				t.Fatalf("cycle %d: put %d rejected with %d in flight", cycle, next, next-taken)
			}
			next++
		}
		if next-taken == cap {
			if r.tryPut(Message{Tag: 999}) {
				t.Fatalf("cycle %d: put accepted on a full ring", cycle)
			}
		}
		drain := 1 + (cycle+3)%cap
		if drain > next-taken {
			drain = next - taken
		}
		for i := 0; i < drain; i++ {
			m, ok := r.tryTake()
			if !ok {
				t.Fatalf("cycle %d: take rejected with %d in flight", cycle, next-taken)
			}
			if m.Tag != uint64(taken) {
				t.Fatalf("cycle %d: took %d, want %d — FIFO broken across wraparound", cycle, m.Tag, taken)
			}
			taken++
		}
	}
	for taken < next {
		m, ok := r.tryTake()
		if !ok || m.Tag != uint64(taken) {
			t.Fatalf("final drain: got (%v, %v), want %d", m.Tag, ok, taken)
		}
		taken++
	}
	if _, ok := r.tryTake(); ok {
		t.Fatal("take succeeded on an empty ring")
	}
}

// TestRingFullBackpressure: a bulk producer that outruns its consumer by a
// full ring must block — and lose nothing. The 129th send parks until the
// receiver drains a slot; every message then arrives exactly once, in
// order.
func TestRingFullBackpressure(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	payload := make([]byte, eagerMaxBytes+1024) // rendezvous class: never spills
	const total = defaultRingCap + 1

	sent := make(chan int, 1) // receives the count once the sender finishes
	go func() {
		for i := 0; i < total; i++ {
			payload[0] = byte(i)
			if err := tr.Send(Message{From: 0, To: 1, Tag: 5, Data: payload}); err != nil {
				sent <- i
				return
			}
		}
		sent <- total
	}()

	// The sender must fill the ring and then stall on message 129 — visible
	// as a FullStalls tick, not a drop or an error.
	deadline := time.Now().Add(5 * time.Second)
	for tr.RingStats().FullStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never hit the full-ring backpressure path")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case n := <-sent:
		t.Fatalf("sender finished %d messages with nobody receiving — ring did not backpressure", n)
	default:
	}

	for i := 0; i < total; i++ {
		m, err := tr.Recv(1, 0, 5)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d — backpressure dropped or reordered", i, m.Data[0])
		}
		bufpool.Put(m.Data)
	}
	if n := <-sent; n != total {
		t.Fatalf("sender completed only %d of %d sends", n, total)
	}
	st := tr.RingStats()
	if st.Spills != 0 {
		t.Errorf("bulk train spilled %d messages — rendezvous class must block, not spill", st.Spills)
	}
}

// TestRingCloseWhileSending closes the transport while producers are
// mid-burst — some parked on full rings, some racing the eager path. Every
// Send must return (nil or ErrClosed, never a hang), and the pooldebug
// build verifies close's reap and the racing producers release every
// pooled payload exactly once.
func TestRingCloseWhileSending(t *testing.T) {
	tr := NewChanTransport(3)
	bulk := make([]byte, eagerMaxBytes+512)
	small := make([]byte, 32)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for s := 0; s < 2; s++ {
		s := s
		wg.Add(1)
		go func() { // bulk producer: parks on the full ring, close must release it
			defer wg.Done()
			for i := 0; ; i++ {
				if err := tr.Send(Message{From: s, To: 2, Tag: 7, Data: bulk}); err != nil {
					if !errors.Is(err, ErrClosed) {
						errs <- fmt.Errorf("bulk sender %d: %v", s, err)
					}
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // eager producer: races close on the spill path
			defer wg.Done()
			for i := 0; ; i++ {
				if err := tr.Send(Message{From: s, To: 2, Tag: 8, Data: small}); err != nil {
					if !errors.Is(err, ErrClosed) {
						errs <- fmt.Errorf("eager sender %d: %v", s, err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the rings fill and the bulk producers park

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a sender is still blocked after Close — close did not release parked producers")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestRingStatsRaceFree is the exposition test for the stats surface:
// RingStats, ResetRingStats, and a Prometheus scrape all run concurrently
// with live traffic. Under -race (this suite runs in `make check`'s race
// leg) any unsynchronized counter access is a hard failure — the property
// that lets dsmon scrape comm gauges mid-run.
func TestRingStatsRaceFree(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	mon := dsmon.New()
	tr.SetMonitor(mon)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // traffic
		defer wg.Done()
		payload := make([]byte, 64)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tr.Send(Message{From: 0, To: 1, Tag: 3, Data: payload}); err != nil {
				return
			}
			m, err := tr.Recv(1, 0, 3)
			if err != nil {
				return
			}
			bufpool.Put(m.Data)
		}
	}()
	wg.Add(1)
	go func() { // snapshot + reset, mid-run
		defer wg.Done()
		for i := 0; i < 200; i++ {
			st := tr.RingStats()
			if st.RingPuts < 0 {
				t.Error("negative counter")
				return
			}
			if i%50 == 49 {
				tr.ResetRingStats()
			}
		}
	}()
	wg.Add(1)
	go func() { // the dsmon scrape path the telemetry endpoint uses
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := mon.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
