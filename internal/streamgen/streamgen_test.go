package streamgen

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `package demo

// Position mirrors the paper's Figure 3 declarations.
type Position struct {
	X, Y, Z float64
}

// ParticleList is the element class of the example grid.
type ParticleList struct {
	NumberOfParticles int
	Mass              []float64
	Positions         []Position
	Tag               string
	Active            bool
	Raw               []byte
	Counts            [3]int32
	Next              *ParticleList
	Lookup            map[string]int
}
`

func gen(t *testing.T, src string, opts Options) string {
	t.Helper()
	out, err := Generate([]byte(src), "demo.go", opts)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestGeneratedCodeParses(t *testing.T) {
	out := gen(t, sample, Options{})
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "demo_streams.go", out, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, out)
	}
}

func TestScalarAndSliceFields(t *testing.T) {
	out := gen(t, sample, Options{Types: []string{"ParticleList"}})
	for _, want := range []string{
		"func (v *ParticleList) StreamInsert(e *dstream.Encoder)",
		"func (v *ParticleList) StreamExtract(d *dstream.Decoder)",
		"e.Int64(int64(v.NumberOfParticles))",
		"v.NumberOfParticles = int(d.Int64())",
		"e.Float64Slice(v.Mass)",
		"v.Mass = d.Float64Slice()",
		"e.String(v.Tag)",
		"e.Bool(v.Active)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n%s", want, out)
		}
	}
}

func TestNestedStructRecursion(t *testing.T) {
	out := gen(t, sample, Options{})
	// Positions is a slice of a struct that itself gets generated methods:
	// a length prefix plus a per-element StreamInsert call.
	for _, want := range []string{
		"e.Uint32(uint32(len(v.Positions)))",
		"x.StreamInsert(e)",
		"func (v *Position) StreamInsert(e *dstream.Encoder)",
		"e.Float64(v.X)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n%s", want, out)
		}
	}
}

func TestFixedArray(t *testing.T) {
	out := gen(t, sample, Options{})
	if !strings.Contains(out, "for i := range v.Counts") {
		t.Errorf("fixed array not looped:\n%s", out)
	}
	if strings.Contains(out, "uint32(len(v.Counts))") {
		t.Errorf("fixed array got a length prefix:\n%s", out)
	}
}

// TestPointerAndMapBecomeTODOs: the §4.2 behaviour — pointer-bearing fields
// produce comments for the programmer, not code.
func TestPointerAndMapBecomeTODOs(t *testing.T) {
	out := gen(t, sample, Options{})
	for _, want := range []string{
		"TODO(streamgen): field Next (*ParticleList): pointer field",
		"TODO(streamgen): field Lookup (map[string]int): map field",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing placeholder %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "v.Next.StreamInsert") {
		t.Error("pointer field generated code instead of a TODO")
	}
}

func TestTypeFilter(t *testing.T) {
	out := gen(t, sample, Options{Types: []string{"Position"}})
	if strings.Contains(out, "ParticleList") {
		t.Errorf("filter leaked other types:\n%s", out)
	}
	if _, err := Generate([]byte(sample), "demo.go", Options{Types: []string{"NoSuch"}}); err == nil {
		t.Error("filter with no matches succeeded")
	}
}

func TestNoStructsError(t *testing.T) {
	if _, err := Generate([]byte("package p\nvar X int\n"), "p.go", Options{}); err == nil {
		t.Error("file without structs accepted")
	}
	if _, err := Generate([]byte("not go at all"), "p.go", Options{}); err == nil {
		t.Error("unparseable file accepted")
	}
}

func TestTypeNames(t *testing.T) {
	names, err := TypeNames([]byte(sample), "demo.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "ParticleList" || names[1] != "Position" {
		t.Fatalf("TypeNames = %v", names)
	}
}

func TestCustomImportPath(t *testing.T) {
	out := gen(t, sample, Options{DStreamImport: "example.com/alt/dstream"})
	if !strings.Contains(out, `"example.com/alt/dstream"`) {
		t.Errorf("custom import not used:\n%s", out)
	}
}

// TestRegeneratesSCFSegment: running the generator over the real
// internal/scf source must produce exactly the operation sequence the
// handwritten (committed) methods perform — proving the committed methods
// are what the tool would generate, as DESIGN.md claims.
func TestRegeneratesSCFSegment(t *testing.T) {
	src, err := os.ReadFile("../scf/scf.go")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(src, "scf.go", Options{Types: []string{"Segment"}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	wantInOrder := []string{
		"func (v *Segment) StreamInsert(e *dstream.Encoder)",
		"e.Int64(v.NumberOfParticles)",
		"e.Float64Slice(v.X)",
		"e.Float64Slice(v.Y)",
		"e.Float64Slice(v.Z)",
		"e.Float64Slice(v.VX)",
		"e.Float64Slice(v.VY)",
		"e.Float64Slice(v.VZ)",
		"e.Float64Slice(v.Mass)",
		"func (v *Segment) StreamExtract(d *dstream.Decoder)",
		"v.NumberOfParticles = d.Int64()",
		"v.X = d.Float64Slice()",
		"v.Mass = d.Float64Slice()",
	}
	pos := 0
	for _, w := range wantInOrder {
		i := strings.Index(s[pos:], w)
		if i < 0 {
			t.Fatalf("generated Segment code missing (or out of order) %q\n%s", w, s)
		}
		pos += i
	}
	if strings.Contains(s, "TODO(streamgen): field") {
		t.Fatalf("Segment generation produced TODOs:\n%s", s)
	}
}

func TestEmbeddedField(t *testing.T) {
	src := `package p
type Base struct{ A int64 }
type Derived struct {
	Base
	B float64
}
`
	out := gen(t, src, Options{})
	if !strings.Contains(out, "v.Base.StreamInsert(e)") {
		t.Errorf("embedded field not delegated:\n%s", out)
	}
}

func TestGenerateDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("types.go", "package p\n\ntype A struct{ X int64 }\n")
	write("more.go", "package p\n\ntype B struct{ Y []float64 }\n")
	write("plain.go", "package p\n\nfunc F() {}\n")                 // no structs: skipped
	write("types_test.go", "package p\n\ntype T struct{ Z int }\n") // test file: skipped
	write("old_streams.go", "package p\n")                          // generated: skipped

	written, err := GenerateDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 2 {
		t.Fatalf("wrote %d files (%v), want 2", len(written), written)
	}
	for _, w := range written {
		b, err := os.ReadFile(w)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "StreamInsert") {
			t.Fatalf("%s lacks generated methods", w)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "plain_streams.go")); !os.IsNotExist(err) {
		t.Fatal("companion generated for struct-free file")
	}
	if _, err := os.Stat(filepath.Join(dir, "types_test_streams.go")); !os.IsNotExist(err) {
		t.Fatal("companion generated for test file")
	}
}

func TestGenerateDirNoMatches(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte("package p\nfunc F(){}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateDir(dir, Options{}); err == nil {
		t.Fatal("directory without structs accepted")
	}
	if _, err := GenerateDir(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestSchemaForSegment(t *testing.T) {
	src, err := os.ReadFile("../scf/scf.go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := SchemaFor(src, "scf.go", "Segment")
	if err != nil {
		t.Fatal(err)
	}
	want := "numberOfParticles:i64,x:f64[],y:f64[],z:f64[],vX:f64[],vY:f64[],vZ:f64[],mass:f64[]"
	if got != want {
		t.Fatalf("schema = %q, want %q", got, want)
	}
}

func TestSchemaForRejectsUnsupported(t *testing.T) {
	if _, err := SchemaFor([]byte(sample), "demo.go", "ParticleList"); err == nil {
		t.Fatal("struct with pointer/map fields produced a schema")
	}
	if _, err := SchemaFor([]byte(sample), "demo.go", "NoSuch"); err == nil {
		t.Fatal("missing type produced a schema")
	}
}
