//go:build pooldebug

package bufpool

import "fmt"

// Debug reports whether the pooldebug poisoning checks are compiled in.
const Debug = true

// poisonByte fills every released buffer. 0xDB is unlikely as real payload
// (the wire format's magic, lengths, and timestamps are little-endian small
// integers), so a clean poison pattern at Get really does mean nobody wrote
// through a stale alias.
const poisonByte = 0xDB

func poison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = poisonByte
	}
}

func checkPoison(b []byte) {
	b = b[:cap(b)]
	for i, v := range b {
		if v != poisonByte {
			panic(fmt.Sprintf("bufpool: use after Put: byte %d of a released %d-byte buffer was overwritten (0x%02x != 0x%02x); some caller retained an alias past Put", i, cap(b), v, poisonByte))
		}
	}
}
