//go:build !pooldebug

package bufpool

// Debug reports whether the pooldebug poisoning checks are compiled in.
const Debug = false

func poison(b []byte)      {}
func checkPoison(b []byte) {}
