// Package bufpool is the shared buffer-pool layer of the d/stream stack:
// size-classed free lists of []byte that the hot paths — enc payload
// staging, the comm transports, the collective assembly buffers, and the
// dstream flush/refill paths — draw from instead of the garbage collector.
// The paper's whole argument is that buffering amortizes per-operation
// cost; this package applies the same argument to the allocator, so that
// the steady state of a d/stream program allocates (almost) nothing per
// element.
//
// # Ownership contract
//
// A buffer obtained from Get/GetCap is owned by the caller until the caller
// passes it across an API that documents a transfer (e.g. a comm.Transport
// delivers the *pool's copy* of a payload to the receiver, which then owns
// it). Exactly one owner may call Put, after which the buffer must not be
// touched — not read, not written, not Put again. Put is always optional:
// an owner that wants to retain a buffer forever simply never returns it,
// and the garbage collector reclaims it as before. Put accepts only buffers
// whose capacity exactly matches a size class (anything else — a re-sliced
// buffer, a foreign allocation — is quietly dropped), so handing Put a
// buffer you merely suspect came from the pool is safe.
//
// Get returns buffers with arbitrary contents (a recycled buffer still
// holds its previous bytes, or the pooldebug poison pattern); callers must
// fully overwrite the region they asked for.
//
// # pooldebug
//
// Built with `-tags pooldebug`, every released buffer is poisoned and
// verified still-poisoned when recycled: a retained alias written after Put
// makes the next Get of that buffer panic, turning a silent
// use-after-release data race into a crash at the pool boundary. The chaos
// and race CI jobs run with this tag.
package bufpool

import (
	"sync"
	"sync/atomic"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes:
	// 64 B .. 4 MiB in powers of two. Larger requests fall through to the
	// allocator (counted as oversize).
	minClassBits = 6
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
	// MinClass and MaxClass are the smallest and largest pooled capacities.
	MinClass = 1 << minClassBits
	MaxClass = 1 << maxClassBits
)

// entry boxes a buffer so the pools store pointers: recycling the boxes
// through spare keeps both Get and Put allocation-free in steady state (a
// sync.Pool of raw []byte would box the slice header on every Put).
type entry struct{ b []byte }

var (
	classes [numClasses]sync.Pool // full boxes, one pool per size class
	spare   sync.Pool             // empty boxes awaiting a Put

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	discards    atomic.Int64
	oversize    atomic.Int64
	outstanding atomic.Int64
)

// classFor returns the smallest class index whose size holds n, or -1 when
// n exceeds MaxClass.
func classFor(n int) int {
	if n > MaxClass {
		return -1
	}
	c := 0
	for size := MinClass; size < n; size <<= 1 {
		c++
	}
	return c
}

// classSize returns the capacity of class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// exactClass returns the class whose size is exactly n, or -1.
func exactClass(n int) int {
	if n < MinClass || n > MaxClass || n&(n-1) != 0 {
		return -1
	}
	c := classFor(n)
	if classSize(c) != n {
		return -1
	}
	return c
}

// Get returns a buffer of length n with arbitrary contents. Buffers up to
// MaxClass come from the pool; larger ones fall through to the allocator.
func Get(n int) []byte {
	return GetCap(n)[:n]
}

// GetCap returns a zero-length buffer with capacity at least n, for
// append-style assembly. Same pooling rules as Get.
func GetCap(n int) []byte {
	c := classFor(n)
	if c < 0 {
		oversize.Add(1)
		return make([]byte, 0, n)
	}
	if x := classes[c].Get(); x != nil {
		box := x.(*entry)
		b := box.b
		box.b = nil
		spare.Put(box)
		checkPoison(b)
		hits.Add(1)
		outstanding.Add(1)
		return b[:0]
	}
	misses.Add(1)
	outstanding.Add(1)
	return make([]byte, 0, classSize(c))
}

// Put releases b to its size class. Only buffers whose capacity exactly
// matches a class are pooled; everything else is dropped (safely — Put
// never panics on a foreign or re-sliced buffer). After Put the caller must
// not touch b again.
func Put(b []byte) {
	c := exactClass(cap(b))
	if c < 0 {
		if cap(b) > 0 {
			discards.Add(1)
		}
		return
	}
	poison(b)
	puts.Add(1)
	outstanding.Add(-1)
	box, _ := spare.Get().(*entry)
	if box == nil {
		box = new(entry)
	}
	box.b = b[:0]
	classes[c].Put(box)
}

// PoolStats is a snapshot of the pool's global counters.
type PoolStats struct {
	// Hits and Misses split Get/GetCap calls that were servable by a class:
	// a hit reused a pooled buffer, a miss allocated a fresh one.
	Hits, Misses int64
	// Puts counts buffers accepted back; Discards counts Put calls dropped
	// because the capacity matched no class (re-sliced or foreign buffers).
	Puts, Discards int64
	// Oversize counts requests beyond MaxClass, served by the allocator.
	Oversize int64
	// Outstanding is pooled buffers currently held by callers (Get minus
	// Put). Buffers legitimately retained forever keep it positive.
	Outstanding int64
}

// Stats snapshots the global pool counters.
func Stats() PoolStats {
	return PoolStats{
		Hits:        hits.Load(),
		Misses:      misses.Load(),
		Puts:        puts.Load(),
		Discards:    discards.Load(),
		Oversize:    oversize.Load(),
		Outstanding: outstanding.Load(),
	}
}
