package bufpool

import (
	"strings"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, size int }{
		{0, MinClass},
		{1, MinClass},
		{MinClass, MinClass},
		{MinClass + 1, MinClass * 2},
		{1000, 1024},
		{1024, 1024},
		{1025, 2048},
		{MaxClass, MaxClass},
	}
	for _, c := range cases {
		got := classFor(c.n)
		if got < 0 || classSize(got) != c.size {
			t.Errorf("classFor(%d) = class %d (size %d), want size %d", c.n, got, classSize(got), c.size)
		}
	}
	if classFor(MaxClass+1) != -1 {
		t.Errorf("classFor(MaxClass+1) = %d, want -1", classFor(MaxClass+1))
	}
}

func TestExactClass(t *testing.T) {
	for n := MinClass; n <= MaxClass; n <<= 1 {
		if c := exactClass(n); c < 0 || classSize(c) != n {
			t.Errorf("exactClass(%d) = %d", n, c)
		}
	}
	for _, n := range []int{0, 1, MinClass - 1, MinClass + 1, 1000, MaxClass - 1, MaxClass * 2} {
		if c := exactClass(n); c != -1 {
			t.Errorf("exactClass(%d) = %d, want -1", n, c)
		}
	}
}

func TestGetLengthAndCapacity(t *testing.T) {
	b := Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) len = %d", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("Get(100) cap = %d, want the 128 class", cap(b))
	}
	Put(b)

	bc := GetCap(100)
	if len(bc) != 0 || cap(bc) < 100 {
		t.Fatalf("GetCap(100) len=%d cap=%d", len(bc), cap(bc))
	}
	Put(bc)
}

func TestPutRejectsForeignBuffers(t *testing.T) {
	before := Stats().Discards
	Put(make([]byte, 100)) // non-class capacity
	Put(Get(256)[10:])     // re-sliced: offset alias
	Put(make([]byte, 3, 200))
	if got := Stats().Discards - before; got != 3 {
		t.Errorf("discards = %d, want 3", got)
	}
	Put(nil) // must be a silent no-op
}

func TestOversizeFallsThrough(t *testing.T) {
	before := Stats().Oversize
	b := Get(MaxClass + 1)
	if len(b) != MaxClass+1 {
		t.Fatalf("oversize Get len = %d", len(b))
	}
	if Stats().Oversize != before+1 {
		t.Error("oversize Get not counted")
	}
	Put(b) // cap is not a class; dropped quietly
}

func TestOutstandingBalances(t *testing.T) {
	before := Stats().Outstanding
	bufs := make([][]byte, 10)
	for i := range bufs {
		bufs[i] = Get(512)
	}
	if got := Stats().Outstanding - before; got != 10 {
		t.Errorf("outstanding after 10 Gets = %+d, want +10", got)
	}
	for _, b := range bufs {
		Put(b)
	}
	if got := Stats().Outstanding - before; got != 0 {
		t.Errorf("outstanding after matching Puts = %+d, want 0", got)
	}
}

// TestReuseHits: a Put buffer comes back on the next same-class Get. Under
// the race detector sync.Pool deliberately randomizes caching, so the hit is
// not guaranteed there.
func TestReuseHits(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes under -race")
	}
	Put(Get(1024)) // prime the class so the pool has at least one entry
	before := Stats().Hits
	for i := 0; i < 8; i++ {
		Put(Get(1024))
	}
	if got := Stats().Hits - before; got == 0 {
		t.Error("8 Get/Put cycles produced no pool hits")
	}
}

// TestSteadyStateZeroAlloc: the Get→Put cycle itself allocates nothing once
// the class and the spare-box pool are primed — the property every hot path
// in the stack leans on.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes under -race")
	}
	Put(Get(4096))
	if avg := testing.AllocsPerRun(200, func() { Put(Get(4096)) }); avg > 0 {
		t.Errorf("steady-state Get/Put allocates %.2f allocs/op, want 0", avg)
	}
}

// TestPoisonDetectsUseAfterPut: with -tags pooldebug, writing through an
// alias retained past Put makes the next Get of that buffer panic at the
// pool boundary. Without the tag the test only checks that Debug is off.
func TestPoisonDetectsUseAfterPut(t *testing.T) {
	if !Debug {
		t.Skip("needs -tags pooldebug")
	}
	if raceEnabled {
		t.Skip("sync.Pool randomizes under -race")
	}
	b := Get(2048)
	Put(b)
	b[7] = 0x5A // the use-after-Put this build exists to catch

	caught := ""
	func() {
		defer func() {
			if p := recover(); p != nil {
				caught, _ = p.(string)
			}
		}()
		// The corrupted buffer sits at the top of this P's private pool
		// slot; a handful of Gets must surface it. Clean buffers handed
		// back meanwhile are kept out of the pool.
		for i := 0; i < 8; i++ {
			Get(2048)
		}
	}()
	if caught == "" {
		t.Fatal("poisoned buffer recycled without panic — use-after-Put undetected")
	}
	if !strings.Contains(caught, "use after Put") {
		t.Fatalf("unexpected panic message: %s", caught)
	}
}

// TestPoisonAcceptsCleanRecycle: a buffer that is Put and left alone
// recycles without complaint even under pooldebug.
func TestPoisonAcceptsCleanRecycle(t *testing.T) {
	for i := 0; i < 50; i++ {
		b := Get(8192)
		for j := range b {
			b[j] = byte(i)
		}
		Put(b)
	}
}
