//go:build !race

package bufpool

// raceEnabled reports whether the race detector is compiled in; sync.Pool
// deliberately randomizes caching under -race, so pool-hit assertions must
// stand down there.
const raceEnabled = false
