//go:build race

package bufpool

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
