package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Add(0, "io", "x", 0, 1) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not empty")
	}
}

func TestAddAndSortedEvents(t *testing.T) {
	r := New()
	r.Add(1, "io", "b", 2.0, 3.0)
	r.Add(0, "io", "a", 1.0, 1.5)
	r.Add(0, "collective", "c", 2.0, 4.0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Name != "a" {
		t.Fatalf("first event %q, want a", evs[0].Name)
	}
	// Same start: lower node first.
	if evs[1].Node != 0 || evs[2].Node != 1 {
		t.Fatalf("tie-break order wrong: %+v", evs[1:])
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestAddNormalizesReversedInterval(t *testing.T) {
	r := New()
	r.Add(0, "io", "rev", 5, 2)
	e := r.Events()[0]
	if e.Start != 2 || e.End != 5 {
		t.Fatalf("interval not normalized: %+v", e)
	}
}

func TestChromeJSON(t *testing.T) {
	r := New()
	r.Add(0, "io", "WriteAt f", 0.001, 0.002)
	r.Add(1, "collective", "ParallelAppend f", 0.002, 0.010)
	var b strings.Builder
	if err := r.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(parsed.TraceEvents))
	}
	e0 := parsed.TraceEvents[0]
	if e0.Ph != "X" || e0.Ts != 1000 || e0.Dur != 1000 {
		t.Fatalf("event 0 = %+v (want complete event, µs units)", e0)
	}
	if parsed.TraceEvents[1].Tid != 1 {
		t.Fatalf("tid = %d", parsed.TraceEvents[1].Tid)
	}
}

func TestGantt(t *testing.T) {
	r := New()
	r.Add(0, "io", "w", 0, 0.5)
	r.Add(1, "collective", "p", 0.5, 1.0)
	var b strings.Builder
	if err := r.WriteGantt(&b, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "node  0 |") || !strings.Contains(out, "node  1 |") {
		t.Fatalf("missing node rows:\n%s", out)
	}
	// Node 0's bar is #, node 1's is =, and they occupy opposite halves.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row0, row1 := lines[1], lines[2]
	if !strings.Contains(row0, "#") || strings.Contains(row0, "=") {
		t.Fatalf("row0 marks wrong: %s", row0)
	}
	if !strings.Contains(row1, "=") || strings.Contains(row1, "#") {
		t.Fatalf("row1 marks wrong: %s", row1)
	}
}

func TestGanttEmpty(t *testing.T) {
	var b strings.Builder
	if err := New().WriteGantt(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no events") {
		t.Fatalf("empty gantt output: %q", b.String())
	}
}

func TestSummarize(t *testing.T) {
	r := New()
	// Node 0: two overlapping io events [0,2] and [1,3] → busy 3.
	r.Add(0, "io", "a", 0, 2)
	r.Add(0, "io", "b", 1, 3)
	// Node 0: disjoint collective [5,6] → +1.
	r.Add(0, "collective", "c", 5, 6)
	// Node 1: one event [2,4].
	r.Add(1, "io", "d", 2, 4)
	s := r.Summarize()
	if s.Span != 6 {
		t.Fatalf("Span = %v", s.Span)
	}
	if got := s.BusyByNode[0]; got != 4 {
		t.Fatalf("node 0 busy = %v, want 4 (overlap merged)", got)
	}
	if got := s.BusyByNode[1]; got != 2 {
		t.Fatalf("node 1 busy = %v", got)
	}
	// Category account counts overlaps separately: io = 2+2+2 = 6.
	if got := s.ByCategory["io"]; got != 6 {
		t.Fatalf("io category = %v", got)
	}
	if got := s.ByCategory["collective"]; got != 1 {
		t.Fatalf("collective category = %v", got)
	}
	if u := s.Utilization(0); u < 0.66 || u > 0.67 {
		t.Fatalf("node 0 utilization = %v, want ~2/3", u)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := New().Summarize()
	if s.Span != 0 || len(s.BusyByNode) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Utilization(3) != 0 {
		t.Fatal("utilization of empty recorder nonzero")
	}
}
