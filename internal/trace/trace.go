// Package trace records virtual-time event timelines of a machine run —
// which node spent which virtual interval in which file-system operation —
// and renders them as an ASCII Gantt chart or Chrome trace-viewer JSON
// (load via chrome://tracing or https://ui.perfetto.dev). The timeline
// makes the cost model inspectable: the Paragon's serialized node-order
// transfers, the unbuffered baseline's long runs of small calls, and the
// async write-behind overlap are all directly visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event is one traced interval on one node's virtual timeline.
type Event struct {
	Node  int     `json:"node"`
	Cat   string  `json:"cat"`  // e.g. "io", "collective"
	Name  string  `json:"name"` // e.g. "ParallelAppend f"
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Recorder collects events; safe for concurrent use. A nil *Recorder is a
// valid no-op sink, so instrumented code needs no conditionals.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one interval. No-op on a nil recorder.
func (r *Recorder) Add(node int, cat, name string, start, end float64) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Node: node, Cat: cat, Name: name, Start: start, End: end})
	r.mu.Unlock()
}

// Events returns the recorded events sorted by (start, node).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Summary aggregates a recorder's events: per-node and per-category busy
// virtual seconds (overlapping events on one node are merged, so "busy"
// never exceeds wall time).
type Summary struct {
	// BusyByNode[n] is node n's total time inside traced operations.
	BusyByNode map[int]float64
	// ByCategory sums event durations per category across nodes (without
	// overlap merging — a per-category cost account).
	ByCategory map[string]float64
	// Span is the latest event end time.
	Span float64
}

// Summarize computes the Summary.
func (r *Recorder) Summarize() Summary {
	s := Summary{BusyByNode: map[int]float64{}, ByCategory: map[string]float64{}}
	perNode := map[int][]Event{}
	for _, e := range r.Events() {
		perNode[e.Node] = append(perNode[e.Node], e)
		s.ByCategory[e.Cat] += e.End - e.Start
		if e.End > s.Span {
			s.Span = e.End
		}
	}
	for n, evs := range perNode {
		// Events arrive sorted by start; merge overlaps.
		busy, curStart, curEnd := 0.0, 0.0, -1.0
		for _, e := range evs {
			if e.Start > curEnd {
				if curEnd >= 0 {
					busy += curEnd - curStart
				}
				curStart, curEnd = e.Start, e.End
			} else if e.End > curEnd {
				curEnd = e.End
			}
		}
		if curEnd >= 0 {
			busy += curEnd - curStart
		}
		s.BusyByNode[n] = busy
	}
	return s
}

// Utilization returns node's busy fraction of the full span (0 when the
// recorder is empty).
func (s Summary) Utilization(node int) float64 {
	if s.Span == 0 {
		return 0
	}
	return s.BusyByNode[node] / s.Span
}

// chromeEvent is one entry of the Chrome trace-viewer "traceEvents" array.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeJSON renders the timeline in Chrome trace-viewer format, one
// "thread" per node, virtual seconds mapped to microseconds.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	evs := r.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{Unit: "ms"}
	for _, e := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: "X",
			Ts: e.Start * 1e6, Dur: (e.End - e.Start) * 1e6,
			Pid: 0, Tid: e.Node,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteGantt renders an ASCII Gantt chart, one row per node, `width`
// columns spanning [0, max end time].
func (r *Recorder) WriteGantt(w io.Writer, width int) error {
	evs := r.Events()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if width < 10 {
		width = 10
	}
	maxNode, maxT := 0, 0.0
	for _, e := range evs {
		if e.Node > maxNode {
			maxNode = e.Node
		}
		if e.End > maxT {
			maxT = e.End
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	col := func(t float64) int {
		c := int(t / maxT * float64(width-1))
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]byte, maxNode+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range evs {
		mark := byte('#')
		switch e.Cat {
		case "collective":
			mark = '='
		case "comm":
			mark = '-'
		case "dstream":
			mark = '~'
		}
		for c := col(e.Start); c <= col(e.End); c++ {
			rows[e.Node][c] = mark
		}
	}
	fmt.Fprintf(w, "virtual time 0 .. %.4fs  (# independent I/O, = collective op, - message, ~ stream op)\n", maxT)
	for n, row := range rows {
		if _, err := fmt.Fprintf(w, "node %2d |%s|\n", n, row); err != nil {
			return err
		}
	}
	return nil
}
