// Package trace records virtual-time event timelines of a machine run —
// which node spent which virtual interval in which file-system operation —
// and renders them as an ASCII Gantt chart or Chrome trace-viewer JSON
// (load via chrome://tracing or https://ui.perfetto.dev). The timeline
// makes the cost model inspectable: the Paragon's serialized node-order
// transfers, the unbuffered baseline's long runs of small calls, and the
// async write-behind overlap are all directly visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SpanID identifies one recorded span within a Recorder. IDs are allocated
// by the recorder; 0 means "no span" (the nil-recorder fast path) and is
// ignored everywhere a SpanID is consumed.
type SpanID uint64

// Event is one traced interval on one node's virtual timeline. ID is zero
// for plain Add events; spans recorded through AddSpan carry a recorder-
// unique ID so causal edges (Flow) can reference them.
type Event struct {
	Node  int     `json:"node"`
	Cat   string  `json:"cat"`  // e.g. "io", "collective"
	Name  string  `json:"name"` // e.g. "ParallelAppend f"
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	ID    SpanID  `json:"id,omitempty"`
}

// Flow is one causal edge of the span graph: work recorded in span From
// enabled work recorded in span To — a message send feeding its receive, a
// barrier arrival feeding the release, an asynchronous I/O issue feeding
// its completion, a shuffle contribution feeding the aggregator's stripe
// write. Kind names the edge family.
type Flow struct {
	From SpanID `json:"from"`
	To   SpanID `json:"to"`
	Kind string `json:"kind"`
}

// FlowKey is the rendezvous key for a cross-rank edge whose two endpoint
// spans are recorded by different goroutines: both sides derive the same
// key from protocol state (ranks, tag, sequence number), one side publishes
// its span with FlowOut, the other with FlowIn, and whichever arrives
// second completes the edge. Kind becomes the resulting Flow's Kind.
type FlowKey struct {
	Kind string
	A, B int // ranks: source and destination of the edge
	Tag  uint64
	Seq  uint64
}

// Recorder collects events; safe for concurrent use. A nil *Recorder is a
// valid no-op sink, so instrumented code needs no conditionals.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	flows  []Flow
	ids    atomic.Uint64
	// Pending halves of keyed cross-rank edges; entries for messages that
	// were sent but never received (aborted runs) stay behind harmlessly.
	pendingOut map[FlowKey]SpanID
	pendingIn  map[FlowKey]SpanID
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one interval. No-op on a nil recorder.
func (r *Recorder) Add(node int, cat, name string, start, end float64) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Node: node, Cat: cat, Name: name, Start: start, End: end})
	r.mu.Unlock()
}

// NewSpanID reserves a span ID without recording anything yet, for call
// sites that need to publish edges referencing a span before its end time
// is known (record it later with AddSpanID). Returns 0 on a nil recorder.
func (r *Recorder) NewSpanID() SpanID {
	if r == nil {
		return 0
	}
	return SpanID(r.ids.Add(1))
}

// AddSpan records one interval with a fresh span ID and returns the ID (0
// on a nil recorder).
func (r *Recorder) AddSpan(node int, cat, name string, start, end float64) SpanID {
	id := r.NewSpanID()
	r.AddSpanID(id, node, cat, name, start, end)
	return id
}

// AddSpanID records one interval under a previously reserved span ID.
func (r *Recorder) AddSpanID(id SpanID, node int, cat, name string, start, end float64) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Node: node, Cat: cat, Name: name, Start: start, End: end, ID: id})
	r.mu.Unlock()
}

// AddFlow records a causal edge between two spans directly (both IDs known
// to one goroutine). Edges touching span 0 are dropped, so untraced fast
// paths need no conditionals.
func (r *Recorder) AddFlow(from, to SpanID, kind string) {
	if r == nil || from == 0 || to == 0 {
		return
	}
	r.mu.Lock()
	r.flows = append(r.flows, Flow{From: from, To: to, Kind: kind})
	r.mu.Unlock()
}

// FlowOut publishes the source half of the keyed edge k. If the sink half
// is already waiting, the edge is recorded; otherwise it waits for FlowIn.
// Either call order works — the receiver of a message may record its span
// before the sender returns from its Send.
func (r *Recorder) FlowOut(k FlowKey, id SpanID) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if to, ok := r.pendingIn[k]; ok {
		delete(r.pendingIn, k)
		r.flows = append(r.flows, Flow{From: id, To: to, Kind: k.Kind})
	} else {
		if r.pendingOut == nil {
			r.pendingOut = make(map[FlowKey]SpanID)
		}
		r.pendingOut[k] = id
	}
	r.mu.Unlock()
}

// FlowIn publishes the sink half of the keyed edge k (see FlowOut).
func (r *Recorder) FlowIn(k FlowKey, id SpanID) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if from, ok := r.pendingOut[k]; ok {
		delete(r.pendingOut, k)
		r.flows = append(r.flows, Flow{From: from, To: id, Kind: k.Kind})
	} else {
		if r.pendingIn == nil {
			r.pendingIn = make(map[FlowKey]SpanID)
		}
		r.pendingIn[k] = id
	}
	r.mu.Unlock()
}

// Flows returns the completed causal edges sorted by (From, To, Kind).
func (r *Recorder) Flows() []Flow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Flow, len(r.flows))
	copy(out, r.flows)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Events returns the recorded events sorted by (start, node, name, id) —
// fully deterministic for goldens and snapshot diffs.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Summary aggregates a recorder's events: per-node and per-category busy
// virtual seconds (overlapping events on one node are merged, so "busy"
// never exceeds wall time).
type Summary struct {
	// BusyByNode[n] is node n's total time inside traced operations.
	BusyByNode map[int]float64
	// ByCategory sums event durations per category across nodes (without
	// overlap merging — a per-category cost account).
	ByCategory map[string]float64
	// Span is the latest event end time.
	Span float64
}

// Summarize computes the Summary.
func (r *Recorder) Summarize() Summary {
	s := Summary{BusyByNode: map[int]float64{}, ByCategory: map[string]float64{}}
	perNode := map[int][]Event{}
	for _, e := range r.Events() {
		perNode[e.Node] = append(perNode[e.Node], e)
		s.ByCategory[e.Cat] += e.End - e.Start
		if e.End > s.Span {
			s.Span = e.End
		}
	}
	for n, evs := range perNode {
		// Events arrive sorted by start; merge overlaps.
		busy, curStart, curEnd := 0.0, 0.0, -1.0
		for _, e := range evs {
			if e.Start > curEnd {
				if curEnd >= 0 {
					busy += curEnd - curStart
				}
				curStart, curEnd = e.Start, e.End
			} else if e.End > curEnd {
				curEnd = e.End
			}
		}
		if curEnd >= 0 {
			busy += curEnd - curStart
		}
		s.BusyByNode[n] = busy
	}
	return s
}

// Utilization returns node's busy fraction of the full span (0 when the
// recorder is empty).
func (s Summary) Utilization(node int) float64 {
	if s.Span == 0 {
		return 0
	}
	return s.BusyByNode[node] / s.Span
}

// chromeEvent is one entry of the Chrome trace-viewer "traceEvents" array.
// ID and BP are only set on flow events (ph "s"/"f") and omitted from the
// duration events, so traces without flows keep their exact legacy shape.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	ID   uint64  `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
}

// WriteChromeJSON renders the timeline in Chrome trace-viewer format, one
// "thread" per node, virtual seconds mapped to microseconds. Causal edges
// are appended as flow-event pairs (ph "s" at the source span's end, ph "f"
// with bp "e" at the sink span's end) that chrome://tracing and Perfetto
// render as arrows. Output is fully deterministic: duration events sort by
// (start, node, name), flows by endpoint position, and the flow ids are
// renumbered in that order.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	evs := r.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{Unit: "ms"}
	byID := make(map[SpanID]Event)
	for _, e := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: "X",
			Ts: e.Start * 1e6, Dur: (e.End - e.Start) * 1e6,
			Pid: 0, Tid: e.Node,
		})
		if e.ID != 0 {
			byID[e.ID] = e
		}
	}
	type boundFlow struct {
		from, to Event
		kind     string
	}
	var flows []boundFlow
	for _, f := range r.Flows() {
		from, okF := byID[f.From]
		to, okT := byID[f.To]
		if okF && okT {
			flows = append(flows, boundFlow{from: from, to: to, kind: f.Kind})
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.from.End != b.from.End {
			return a.from.End < b.from.End
		}
		if a.from.Node != b.from.Node {
			return a.from.Node < b.from.Node
		}
		if a.to.End != b.to.End {
			return a.to.End < b.to.End
		}
		if a.to.Node != b.to.Node {
			return a.to.Node < b.to.Node
		}
		return a.kind < b.kind
	})
	for i, f := range flows {
		id := uint64(i + 1)
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: f.kind, Cat: "flow", Ph: "s", Ts: f.from.End * 1e6, Pid: 0, Tid: f.from.Node, ID: id},
			chromeEvent{Name: f.kind, Cat: "flow", Ph: "f", Ts: f.to.End * 1e6, Pid: 0, Tid: f.to.Node, ID: id, BP: "e"},
		)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteGantt renders an ASCII Gantt chart, one row per node, `width`
// columns spanning [0, max end time].
func (r *Recorder) WriteGantt(w io.Writer, width int) error {
	evs := r.Events()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if width < 10 {
		width = 10
	}
	maxNode, maxT := 0, 0.0
	for _, e := range evs {
		if e.Node > maxNode {
			maxNode = e.Node
		}
		if e.End > maxT {
			maxT = e.End
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	col := func(t float64) int {
		c := int(t / maxT * float64(width-1))
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]byte, maxNode+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range evs {
		mark := byte('#')
		switch e.Cat {
		case "collective":
			mark = '='
		case "comm":
			mark = '-'
		case "dstream":
			mark = '~'
		}
		for c := col(e.Start); c <= col(e.End); c++ {
			rows[e.Node][c] = mark
		}
	}
	fmt.Fprintf(w, "virtual time 0 .. %.4fs  (# independent I/O, = collective op, - message, ~ stream op)\n", maxT)
	for n, row := range rows {
		if _, err := fmt.Fprintf(w, "node %2d |%s|\n", n, row); err != nil {
			return err
		}
	}
	return nil
}
