package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeJSONGolden pins the exact Chrome trace-viewer output: field
// names, microsecond units, (start, node) event ordering, and the category
// set the stack emits. chrome://tracing and Perfetto both parse this shape;
// a drift here silently breaks every saved trace, so the comparison is
// byte-for-byte.
func TestChromeJSONGolden(t *testing.T) {
	r := New()
	// Added out of order on purpose: output must sort by (start, node).
	r.Add(1, "collective", "barrier", 0.002, 0.0025)
	r.Add(0, "io", "ParallelAppend f", 0.001, 0.002)
	r.Add(0, "dstream", "ostream.Write f", 0.0005, 0.003)
	r.Add(1, "comm", "Send", 0.001, 0.0011)

	var b strings.Builder
	if err := r.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "traceEvents": [
  {
   "name": "ostream.Write f",
   "cat": "dstream",
   "ph": "X",
   "ts": 500,
   "dur": 2500,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "ParallelAppend f",
   "cat": "io",
   "ph": "X",
   "ts": 1000,
   "dur": 1000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "Send",
   "cat": "comm",
   "ph": "X",
   "ts": 1000,
   "dur": 100.00000000000004,
   "pid": 0,
   "tid": 1
  },
  {
   "name": "barrier",
   "cat": "collective",
   "ph": "X",
   "ts": 2000,
   "dur": 500,
   "pid": 0,
   "tid": 1
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := b.String(); got != golden {
		t.Fatalf("Chrome JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// The golden bytes must also round-trip as valid JSON with the four
	// categories the instrumented stack emits.
	var parsed struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(golden), &parsed); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		cats[e.Cat] = true
	}
	for _, want := range []string{"io", "comm", "collective", "dstream"} {
		if !cats[want] {
			t.Fatalf("category %q missing from golden events", want)
		}
	}
}
