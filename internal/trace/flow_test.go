package trace

import (
	"strings"
	"testing"
)

// TestFlowRendezvous pins the keyed-edge rendezvous protocol: either arrival
// order completes the edge exactly once, distinct keys stay independent, and
// unmatched halves never surface as flows.
func TestFlowRendezvous(t *testing.T) {
	r := New()
	a := r.AddSpan(0, "comm", "Send", 0.0, 0.1)
	b := r.AddSpan(1, "comm", "Recv", 0.05, 0.2)
	c := r.AddSpan(1, "comm", "Send", 0.3, 0.4)
	d := r.AddSpan(0, "comm", "Recv", 0.35, 0.5)

	k1 := FlowKey{Kind: "msg", A: 0, B: 1, Tag: 7, Seq: 1}
	k2 := FlowKey{Kind: "msg", A: 1, B: 0, Tag: 7, Seq: 1}
	r.FlowOut(k1, a) // source first
	r.FlowIn(k1, b)
	r.FlowIn(k2, d) // sink first
	r.FlowOut(k2, c)
	r.FlowOut(FlowKey{Kind: "msg", A: 0, B: 1, Tag: 9, Seq: 2}, a) // never received

	flows := r.Flows()
	want := []Flow{{From: a, To: b, Kind: "msg"}, {From: c, To: d, Kind: "msg"}}
	if len(flows) != len(want) {
		t.Fatalf("got %d flows %v, want %v", len(flows), flows, want)
	}
	for i, f := range flows {
		if f != want[i] {
			t.Fatalf("flow %d = %v, want %v", i, f, want[i])
		}
	}
}

// TestFlowRendezvousRepublish pins the duplicate-delivery contract: if the
// same key's source half is published twice before the sink arrives (a
// retransmitted message), the edge completes once — no doubled arrows.
func TestFlowRendezvousRepublish(t *testing.T) {
	r := New()
	a := r.AddSpan(0, "comm", "Send", 0.0, 0.1)
	a2 := r.AddSpan(0, "comm", "Send", 0.1, 0.2)
	b := r.AddSpan(1, "comm", "Recv", 0.05, 0.3)
	k := FlowKey{Kind: "msg", A: 0, B: 1, Tag: 1, Seq: 5}
	r.FlowOut(k, a)
	r.FlowOut(k, a2) // retransmit republishes the key
	r.FlowIn(k, b)
	flows := r.Flows()
	if len(flows) != 1 {
		t.Fatalf("duplicate publish produced %d flows, want 1: %v", len(flows), flows)
	}
	if flows[0].To != b || flows[0].Kind != "msg" {
		t.Fatalf("flow %v does not end at the receive span", flows[0])
	}
}

// TestFlowNilAndZero pins the fast-path contract: nil recorders and zero
// span IDs are silently ignored everywhere.
func TestFlowNilAndZero(t *testing.T) {
	var nilRec *Recorder
	if id := nilRec.NewSpanID(); id != 0 {
		t.Fatalf("nil recorder allocated span id %d", id)
	}
	nilRec.AddFlow(1, 2, "msg")
	nilRec.FlowOut(FlowKey{Kind: "msg"}, 1)
	nilRec.FlowIn(FlowKey{Kind: "msg"}, 1)
	if got := nilRec.Flows(); got != nil {
		t.Fatalf("nil recorder has flows %v", got)
	}

	r := New()
	id := r.AddSpan(0, "io", "x", 0, 1)
	r.AddFlow(0, id, "k")
	r.AddFlow(id, 0, "k")
	r.FlowOut(FlowKey{Kind: "k"}, 0)
	r.FlowIn(FlowKey{Kind: "k"}, 0)
	if got := r.Flows(); len(got) != 0 {
		t.Fatalf("zero-ID edges surfaced: %v", got)
	}
}

// TestChromeJSONFlows pins the flow-event rendering: an s/f pair per bound
// edge, appended after all duration events, ids renumbered deterministically,
// bp "e" on the finish half, and arrows anchored at the endpoint spans' ends.
func TestChromeJSONFlows(t *testing.T) {
	r := New()
	a := r.AddSpan(0, "comm", "Send", 0.001, 0.002)
	b := r.AddSpan(1, "comm", "Recv", 0.0015, 0.003)
	r.AddFlow(a, b, "msg")

	var sb strings.Builder
	if err := r.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "traceEvents": [
  {
   "name": "Send",
   "cat": "comm",
   "ph": "X",
   "ts": 1000,
   "dur": 1000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "Recv",
   "cat": "comm",
   "ph": "X",
   "ts": 1500,
   "dur": 1500,
   "pid": 0,
   "tid": 1
  },
  {
   "name": "msg",
   "cat": "flow",
   "ph": "s",
   "ts": 2000,
   "dur": 0,
   "pid": 0,
   "tid": 0,
   "id": 1
  },
  {
   "name": "msg",
   "cat": "flow",
   "ph": "f",
   "ts": 3000,
   "dur": 0,
   "pid": 0,
   "tid": 1,
   "id": 1,
   "bp": "e"
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := sb.String(); got != golden {
		t.Fatalf("Chrome flow JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}
