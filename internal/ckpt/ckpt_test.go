package ckpt

import (
	"fmt"
	"strings"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

func runOn(t *testing.T, fs *pfs.FileSystem, nprocs int, body func(*machine.Node) error) error {
	t.Helper()
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs}, body)
	return err
}

func fillSeg(n *machine.Node, d *distr.Distribution, salt int) (*collection.Collection[scf.Segment], error) {
	c, err := collection.New[scf.Segment](n, d)
	if err != nil {
		return nil, err
	}
	c.Apply(func(g int, s *scf.Segment) { s.Fill(g+salt*1000, 5) })
	return c, nil
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 3, func(n *machine.Node) error {
		d, _ := distr.New(12, 3, distr.Cyclic, 0)
		c, err := fillSeg(n, d, 7)
		if err != nil {
			return err
		}
		m, err := New(n, "ck", 2)
		if err != nil {
			return err
		}
		return SaveCollection[scf.Segment](m, 42, c)
	}); err != nil {
		t.Fatal(err)
	}
	// Restore on a different machine shape.
	if err := runOn(t, fs, 5, func(n *machine.Node) error {
		d, _ := distr.New(12, 5, distr.Block, 0)
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		epoch, err := RestoreCollection[scf.Segment](n, "ck", 2, c)
		if err != nil {
			return err
		}
		if epoch != 42 {
			return fmt.Errorf("epoch = %d, want 42", epoch)
		}
		var bad error
		c.Apply(func(g int, s *scf.Segment) {
			var want scf.Segment
			want.Fill(g+7000, 5)
			if !s.Equal(&want) {
				bad = fmt.Errorf("global %d mismatch", g)
			}
		})
		return bad
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRotationKeepsNewest(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 2, func(n *machine.Node) error {
		d, _ := distr.New(6, 2, distr.Cyclic, 0)
		m, err := New(n, "rot", 2)
		if err != nil {
			return err
		}
		for epoch := uint64(1); epoch <= 5; epoch++ {
			c, err := fillSeg(n, d, int(epoch))
			if err != nil {
				return err
			}
			if err := SaveCollection[scf.Segment](m, epoch, c); err != nil {
				return err
			}
		}
		slot, ok, err := Latest(n, "rot", 2)
		if err != nil {
			return err
		}
		if !ok || slot.Epoch != 5 {
			return fmt.Errorf("Latest = %+v ok=%v, want epoch 5", slot, ok)
		}
		// Epoch 5 → slot 1; epoch 4 survives in slot 0.
		if slot.Slot != 1 {
			return fmt.Errorf("slot = %d, want 1", slot.Slot)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTornCheckpointFallsBack: a crash mid-save must leave the previous
// checkpoint restorable — the manager's whole reason to exist.
func TestTornCheckpointFallsBack(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	// Epoch 1 lands in slot 1 and commits.
	if err := runOn(t, fs, 2, func(n *machine.Node) error {
		d, _ := distr.New(8, 2, distr.Cyclic, 0)
		c, err := fillSeg(n, d, 1)
		if err != nil {
			return err
		}
		m, err := New(n, "torn", 2)
		if err != nil {
			return err
		}
		return SaveCollection[scf.Segment](m, 1, c)
	}); err != nil {
		t.Fatal(err)
	}

	// Epoch 2 targets slot 0; its data file dies mid-write.
	if err := fs.InjectFault("torn.0", 1); err != nil {
		t.Fatal(err)
	}
	err := runOn(t, fs, 2, func(n *machine.Node) error {
		d, _ := distr.New(8, 2, distr.Cyclic, 0)
		c, cerr := fillSeg(n, d, 2)
		if cerr != nil {
			return cerr
		}
		m, merr := New(n, "torn", 2)
		if merr != nil {
			return merr
		}
		return SaveCollection[scf.Segment](m, 2, c)
	})
	if err == nil {
		t.Fatal("torn save succeeded")
	}

	// Restart: must restore epoch 1, not the torn epoch 2.
	if err := runOn(t, fs, 2, func(n *machine.Node) error {
		d, _ := distr.New(8, 2, distr.Cyclic, 0)
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		epoch, err := RestoreCollection[scf.Segment](n, "torn", 2, c)
		if err != nil {
			return err
		}
		if epoch != 1 {
			return fmt.Errorf("restored epoch %d, want 1", epoch)
		}
		var bad error
		c.Apply(func(g int, s *scf.Segment) {
			var want scf.Segment
			want.Fill(g+1000, 5)
			if !s.Equal(&want) {
				bad = fmt.Errorf("global %d holds wrong data", g)
			}
		})
		return bad
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleCommitRejected: a commit marker whose recorded length no longer
// matches the data file must invalidate the slot.
func TestStaleCommitRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 1, func(n *machine.Node) error {
		d, _ := distr.New(4, 1, distr.Block, 0)
		c, err := fillSeg(n, d, 3)
		if err != nil {
			return err
		}
		m, err := New(n, "stale", 1)
		if err != nil {
			return err
		}
		if err := SaveCollection[scf.Segment](m, 9, c); err != nil {
			return err
		}
		// Corrupt the data file length after commit.
		f, err := n.Open("stale.0", false)
		if err != nil {
			return err
		}
		defer f.Close()
		return f.WriteAt([]byte{0xFF}, f.Size()) // append a stray byte
	}); err != nil {
		t.Fatal(err)
	}
	if err := runOn(t, fs, 1, func(n *machine.Node) error {
		if _, ok, err := Latest(n, "stale", 1); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("length-mismatched slot validated")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestColdStart(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 2, func(n *machine.Node) error {
		if _, ok, err := Latest(n, "nothing", 3); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("cold start found a checkpoint")
		}
		d, _ := distr.New(4, 2, distr.Block, 0)
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		_, err = RestoreCollection[scf.Segment](n, "nothing", 3, c)
		if err == nil || !strings.Contains(err.Error(), "no valid checkpoint") {
			return fmt.Errorf("cold restore: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 1, func(n *machine.Node) error {
		if _, err := New(n, "x", 0); err == nil {
			return fmt.Errorf("0 slots accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleSlotTornIsUnrecoverable: with only one slot, a torn save leaves
// nothing to fall back to — the reason New documents "at least 2 to survive
// a crash during a save".
func TestSingleSlotTornIsUnrecoverable(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 1, func(n *machine.Node) error {
		d, _ := distr.New(4, 1, distr.Block, 0)
		c, err := fillSeg(n, d, 1)
		if err != nil {
			return err
		}
		m, err := New(n, "solo", 1)
		if err != nil {
			return err
		}
		return SaveCollection[scf.Segment](m, 1, c)
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.InjectFault("solo.0", 1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 reuses slot 0 and tears, destroying epoch 1 too.
	err := runOn(t, fs, 1, func(n *machine.Node) error {
		d, _ := distr.New(4, 1, distr.Block, 0)
		c, cerr := fillSeg(n, d, 2)
		if cerr != nil {
			return cerr
		}
		m, merr := New(n, "solo", 1)
		if merr != nil {
			return merr
		}
		return SaveCollection[scf.Segment](m, 2, c)
	})
	if err == nil {
		t.Fatal("torn save succeeded")
	}
	if err := runOn(t, fs, 1, func(n *machine.Node) error {
		_, ok, err := Latest(n, "solo", 1)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("single-slot torn checkpoint still validated")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestResaveSameEpoch: overwriting an epoch in place is legal (same slot)
// and the newest data wins.
func TestResaveSameEpoch(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := runOn(t, fs, 2, func(n *machine.Node) error {
		d, _ := distr.New(6, 2, distr.Cyclic, 0)
		m, err := New(n, "re", 2)
		if err != nil {
			return err
		}
		for _, salt := range []int{1, 2} {
			c, err := fillSeg(n, d, salt)
			if err != nil {
				return err
			}
			if err := SaveCollection[scf.Segment](m, 5, c); err != nil {
				return err
			}
		}
		back, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		epoch, err := RestoreCollection[scf.Segment](n, "re", 2, back)
		if err != nil {
			return err
		}
		if epoch != 5 {
			return fmt.Errorf("epoch %d", epoch)
		}
		var bad error
		back.Apply(func(g int, s *scf.Segment) {
			var want scf.Segment
			want.Fill(g+2000, 5) // the second save's data
			if !s.Equal(&want) {
				bad = fmt.Errorf("global %d holds stale data", g)
			}
		})
		return bad
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManagerAcrossMachineShapes: save on 4, save again on 2 (append more
// history), restore on 3 — managers are stateless across machines.
func TestManagerAcrossMachineShapes(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	save := func(procs int, epoch uint64, salt int) {
		if err := runOn(t, fs, procs, func(n *machine.Node) error {
			d, _ := distr.New(12, procs, distr.Cyclic, 0)
			c, err := fillSeg(n, d, salt)
			if err != nil {
				return err
			}
			m, err := New(n, "mix", 3)
			if err != nil {
				return err
			}
			return SaveCollection[scf.Segment](m, epoch, c)
		}); err != nil {
			t.Fatal(err)
		}
	}
	save(4, 10, 1)
	save(2, 20, 2)
	if err := runOn(t, fs, 3, func(n *machine.Node) error {
		d, _ := distr.New(12, 3, distr.Block, 0)
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		epoch, err := RestoreCollection[scf.Segment](n, "mix", 3, c)
		if err != nil {
			return err
		}
		if epoch != 20 {
			return fmt.Errorf("restored epoch %d, want 20", epoch)
		}
		var bad error
		c.Apply(func(g int, s *scf.Segment) {
			var want scf.Segment
			want.Fill(g+2000, 5)
			if !s.Equal(&want) {
				bad = fmt.Errorf("global %d mismatch", g)
			}
		})
		return bad
	}); err != nil {
		t.Fatal(err)
	}
}
