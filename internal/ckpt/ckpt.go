// Package ckpt is a checkpoint manager built on d/streams, productizing
// the paper's §2 flagship task: "Many long-running parallel applications
// need to save the state of complex distributed data-sets periodically so
// that computation can be resumed at a later point. Periodically saving
// data-sets provides insurance against program termination by software bugs
// and job-control facilities."
//
// The manager rotates checkpoints across a fixed number of slots and makes
// each one crash-consistent with a commit marker: the slot's marker is
// invalidated before the d/stream write begins and re-written (with the
// epoch and the exact data length) only after the write completed, so a
// checkpoint torn by a mid-write crash is never restored — recovery falls
// back to the newest slot whose marker validates. Restart may use a
// different processor count and distribution, as d/streams allow.
package ckpt

import (
	"fmt"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
)

// commit marker layout: magic (8) | epoch (8) | dataLen (8).
var commitMagic = [8]byte{'D', 'S', 'C', 'K', '1', 0, 0, 0}

const commitLen = 24

// Manager coordinates rotated checkpoints for one SPMD program. Every node
// constructs an identical Manager and calls its methods collectively.
type Manager struct {
	node  *machine.Node
	base  string
	slots int
}

// New creates a manager writing checkpoints named base.<slot> with
// base.<slot>.commit markers, rotating over the given number of slots
// (at least 2 to survive a crash during a save).
func New(node *machine.Node, base string, slots int) (*Manager, error) {
	if slots < 1 {
		return nil, fmt.Errorf("ckpt: need at least 1 slot, got %d", slots)
	}
	return &Manager{node: node, base: base, slots: slots}, nil
}

func (m *Manager) slotFile(slot int) string   { return fmt.Sprintf("%s.%d", m.base, slot) }
func (m *Manager) commitFile(slot int) string { return m.slotFile(slot) + ".commit" }

// Save writes one checkpoint for the given epoch (a monotonically
// increasing step counter chosen by the application). The slot is
// epoch mod slots, so the previous checkpoint survives until this one
// commits. write receives an open output d/stream and performs the
// insert/write calls.
func (m *Manager) Save(epoch uint64, d *distr.Distribution, write func(*dstream.OStream) error) error {
	slot := int(epoch % uint64(m.slots))

	// 1. Invalidate the slot's marker BEFORE touching its data, so a crash
	// mid-write leaves an invalid (not stale-valid) slot.
	if err := m.writeCommit(slot, nil); err != nil {
		return fmt.Errorf("ckpt: invalidate slot %d: %w", slot, err)
	}

	// 2. Write the checkpoint data through a d/stream.
	s, err := dstream.Open(m.node, d, m.slotFile(slot))
	if err != nil {
		return fmt.Errorf("ckpt: open slot %d: %w", slot, err)
	}
	if err := write(s); err != nil {
		s.Close()
		return fmt.Errorf("ckpt: write epoch %d: %w", epoch, err)
	}
	dataLen := s.FileSize()
	if err := s.Close(); err != nil {
		return fmt.Errorf("ckpt: close slot %d: %w", slot, err)
	}

	// 3. Commit: marker carries the epoch and the exact data length.
	var e enc.Buffer
	e.Raw(commitMagic[:])
	e.Uint64(epoch)
	e.Uint64(uint64(dataLen))
	if err := m.writeCommit(slot, e.Bytes()); err != nil {
		return fmt.Errorf("ckpt: commit epoch %d: %w", epoch, err)
	}
	return nil
}

// writeCommit replaces the slot's marker (nil body = invalidate). Node 0
// does the file work; all nodes synchronize.
func (m *Manager) writeCommit(slot int, body []byte) error {
	f, err := m.node.Open(m.commitFile(slot), true)
	if err != nil {
		return err
	}
	defer f.Close()
	// Truncate-on-open cleared it; an empty marker is invalid by itself.
	if err := f.ControlSync(); err != nil {
		return err
	}
	if m.node.Rank() == 0 && len(body) > 0 {
		if err := f.WriteAt(body, 0); err != nil {
			return err
		}
	}
	return f.ControlSync()
}

// Slot describes one validated checkpoint slot.
type Slot struct {
	Slot  int
	Epoch uint64
	File  string
}

// Latest returns the newest valid checkpoint, scanning every slot's commit
// marker and verifying the recorded data length against the slot file. ok
// is false when no slot validates (cold start).
func Latest(node *machine.Node, base string, slots int) (Slot, bool, error) {
	best := Slot{}
	found := false
	for slot := 0; slot < slots; slot++ {
		name := fmt.Sprintf("%s.%d", base, slot)
		epoch, ok, err := validate(node, name)
		if err != nil {
			return Slot{}, false, err
		}
		if ok && (!found || epoch > best.Epoch) {
			best = Slot{Slot: slot, Epoch: epoch, File: name}
			found = true
		}
	}
	return best, found, nil
}

// validate checks one slot's marker on node 0 and broadcasts the verdict.
func validate(node *machine.Node, name string) (epoch uint64, ok bool, err error) {
	var verdict []byte // 1 byte ok flag + 8 bytes epoch
	if node.Rank() == 0 {
		verdict = validateLocal(node, name)
	}
	verdict, err = node.Comm().Bcast(0, verdict)
	if err != nil {
		return 0, false, fmt.Errorf("ckpt: validate %s: %w", name, err)
	}
	if len(verdict) != 9 {
		return 0, false, fmt.Errorf("ckpt: malformed verdict for %s", name)
	}
	d := enc.NewReader(verdict[1:])
	return d.Uint64(), verdict[0] == 1, nil
}

func validateLocal(node *machine.Node, name string) []byte {
	bad := make([]byte, 9)
	f, err := node.Open(name+".commit", false)
	if err != nil {
		return bad
	}
	defer f.Close()
	if f.Size() != commitLen {
		return bad
	}
	buf := make([]byte, commitLen)
	if err := f.ReadAt(buf, 0); err != nil {
		return bad
	}
	for i, c := range commitMagic {
		if buf[i] != c {
			return bad
		}
	}
	d := enc.NewReader(buf[8:])
	epoch := d.Uint64()
	dataLen := d.Uint64()

	df, err := node.Open(name, false)
	if err != nil {
		return bad
	}
	defer df.Close()
	if uint64(df.Size()) != dataLen {
		return bad
	}
	out := make([]byte, 1, 9)
	out[0] = 1
	var e enc.Buffer
	e.Uint64(epoch)
	return append(out, e.Bytes()...)
}

// Restore opens the newest valid checkpoint and hands an input d/stream to
// read, returning the restored epoch. The reader's distribution d may
// differ (in layout and processor count) from the writer's.
func Restore(node *machine.Node, base string, slots int, d *distr.Distribution, read func(*dstream.IStream) error) (uint64, error) {
	slot, ok, err := Latest(node, base, slots)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("ckpt: no valid checkpoint under %q", base)
	}
	s, err := dstream.OpenInput(node, d, slot.File)
	if err != nil {
		return 0, fmt.Errorf("ckpt: open %s: %w", slot.File, err)
	}
	defer s.Close()
	if err := read(s); err != nil {
		return 0, fmt.Errorf("ckpt: restore epoch %d: %w", slot.Epoch, err)
	}
	return slot.Epoch, nil
}

// SaveCollection checkpoints a whole collection in one record — the common
// case, matching `s << g; s.write()`.
func SaveCollection[T any, PT dstream.InserterPtr[T]](m *Manager, epoch uint64, c *collection.Collection[T]) error {
	return m.Save(epoch, c.Dist(), func(s *dstream.OStream) error {
		if err := dstream.Insert[T, PT](s, c); err != nil {
			return err
		}
		return s.Write()
	})
}

// RestoreCollection restores a whole collection from the newest valid
// checkpoint, with sorted reads (order and ownership restored).
func RestoreCollection[T any, PT dstream.ExtractorPtr[T]](node *machine.Node, base string, slots int, c *collection.Collection[T]) (uint64, error) {
	return Restore(node, base, slots, c.Dist(), func(s *dstream.IStream) error {
		if err := s.Read(); err != nil {
			return err
		}
		return dstream.Extract[T, PT](s, c)
	})
}
