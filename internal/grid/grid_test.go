package grid

import (
	"fmt"
	"testing"
	"testing/quick"

	"pcxxstreams/internal/distr"
)

func TestBlockBlockOwnership(t *testing.T) {
	// 4x6 grid over a 2x3 mesh, (BLOCK, BLOCK): rows split 2+2, cols 2+2+2.
	g, err := New2D(4, 6, 2, 3, distr.Block, distr.Block, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			wantPR, wantPC := i/2, j/2
			if got := g.Owner(i, j); got != wantPR*3+wantPC {
				t.Errorf("Owner(%d,%d) = %d, want %d", i, j, got, wantPR*3+wantPC)
			}
		}
	}
	// Every rank owns exactly 2x2 = 4 cells.
	for r := 0; r < 6; r++ {
		if got := g.Dist().LocalCount(r); got != 4 {
			t.Errorf("rank %d owns %d cells, want 4", r, got)
		}
	}
}

func TestCyclicCyclicOwnership(t *testing.T) {
	g, err := New2D(6, 6, 2, 2, distr.Cyclic, distr.Cyclic, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := (i%2)*2 + j%2
			if got := g.Owner(i, j); got != want {
				t.Errorf("Owner(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMixedModesWithBlockCyclic(t *testing.T) {
	g, err := New2D(8, 9, 2, 3, distr.BlockCyclic, distr.Cyclic, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 9; j++ {
			wantPR := (i / 2) % 2
			wantPC := j % 3
			if got := g.Owner(i, j); got != wantPR*3+wantPC {
				t.Errorf("Owner(%d,%d) = %d, want %d", i, j, got, wantPR*3+wantPC)
			}
		}
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g, err := New2D(5, 7, 1, 1, distr.Block, distr.Block, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			idx := g.Index(i, j)
			ri, rj := g.Coords(idx)
			if ri != i || rj != j {
				t.Fatalf("Coords(Index(%d,%d)) = (%d,%d)", i, j, ri, rj)
			}
		}
	}
}

func TestMeshCoords(t *testing.T) {
	g, err := New2D(4, 4, 2, 3, distr.Block, distr.Block, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		pr, pc := g.MeshCoords(r)
		if pr*3+pc != r {
			t.Fatalf("MeshCoords(%d) = (%d,%d)", r, pr, pc)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New2D(0, 4, 1, 1, distr.Block, distr.Block, 0, 0); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New2D(4, 4, 1, 1, distr.Explicit, distr.Block, 0, 0); err == nil {
		t.Error("explicit per-dimension mode accepted")
	}
	if _, err := New2D(4, 4, 2, 2, distr.BlockCyclic, distr.Block, 0, 0); err == nil {
		t.Error("BLOCK_CYCLIC rows without block accepted")
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	g, _ := New2D(3, 3, 1, 1, distr.Block, distr.Block, 0, 0)
	for _, f := range []func(){
		func() { g.Index(3, 0) },
		func() { g.Index(0, -1) },
		func() { g.Coords(9) },
		func() { g.MeshCoords(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the explicit distribution's ownership bijection holds for
// random grid shapes and the counts match the per-dimension product.
func TestGridBijectionQuick(t *testing.T) {
	f := func(r8, c8, pr8, pc8, m1, m2 uint8) bool {
		rows, cols := int(r8)%10+1, int(c8)%10+1
		pr, pc := int(pr8)%3+1, int(pc8)%3+1
		g, err := New2D(rows, cols, pr, pc, distr.Mode(m1%3), distr.Mode(m2%3), 2, 2)
		if err != nil {
			return false
		}
		d := g.Dist()
		for idx := 0; idx < rows*cols; idx++ {
			if d.GlobalIndex(d.Owner(idx), d.LocalIndex(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	g, _ := New2D(4, 5, 2, 2, distr.Block, distr.Block, 0, 0)
	if got := g.String(); got != "GRID(4x5 over 2x2 mesh)" {
		t.Fatalf("String = %q", got)
	}
	_ = fmt.Sprint(g)
}

func TestGrid3DOwnership(t *testing.T) {
	// 4x4x4 grid over 2x2x2 mesh, all BLOCK: each rank owns a 2x2x2 octant.
	g, err := New3D(4, 4, 4, 2, 2, 2, distr.Block, distr.Block, distr.Block, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				want := (i/2)*4 + (j/2)*2 + k/2
				if got := g.Owner(i, j, k); got != want {
					t.Errorf("Owner(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
			}
		}
	}
	for r := 0; r < 8; r++ {
		if got := g.Dist().LocalCount(r); got != 8 {
			t.Errorf("rank %d owns %d cells, want 8", r, got)
		}
	}
}

func TestGrid3DIndexCoords(t *testing.T) {
	g, err := New3D(3, 4, 5, 1, 1, 1, distr.Cyclic, distr.Cyclic, distr.Cyclic, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				ri, rj, rk := g.Coords(g.Index(i, j, k))
				if ri != i || rj != j || rk != k {
					t.Fatalf("Coords(Index(%d,%d,%d)) = (%d,%d,%d)", i, j, k, ri, rj, rk)
				}
			}
		}
	}
}

func TestGrid3DValidation(t *testing.T) {
	if _, err := New3D(0, 1, 1, 1, 1, 1, distr.Block, distr.Block, distr.Block, 0, 0, 0); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := New3D(2, 2, 2, 1, 1, 1, distr.Explicit, distr.Block, distr.Block, 0, 0, 0); err == nil {
		t.Error("explicit dim mode accepted")
	}
	if _, err := New3D(2, 2, 2, 1, 1, 1, distr.BlockCyclic, distr.Block, distr.Block, 0, 0, 0); err == nil {
		t.Error("block-cyclic without block accepted")
	}
}

func TestGrid3DBijectionQuick(t *testing.T) {
	f := func(n1, n2, n3, p1, p2, p3 uint8) bool {
		nx, ny, nz := int(n1)%4+1, int(n2)%4+1, int(n3)%4+1
		px, py, pz := int(p1)%2+1, int(p2)%2+1, int(p3)%2+1
		g, err := New3D(nx, ny, nz, px, py, pz, distr.Cyclic, distr.Block, distr.BlockCyclic, 0, 0, 2)
		if err != nil {
			return false
		}
		d := g.Dist()
		for idx := 0; idx < nx*ny*nz; idx++ {
			if d.GlobalIndex(d.Owner(idx), d.LocalIndex(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
