// Package grid layers two-dimensional HPF-style distributions over the
// one-dimensional collection base, the way pC++ programs built distributed
// grids "over the distributed array base" (paper §4). A Grid2D maps (row,
// col) coordinates onto a linearized element index and owns a processor
// mesh of procRows × procCols ranks, with an independent HPF pattern per
// dimension — (BLOCK, BLOCK), (CYCLIC, BLOCK), and so on.
//
// The resulting ownership is materialized as an EXPLICIT distribution, so
// grids flow through d/streams like any other collection: the owner table
// travels in the record header and a reader may restore the grid under a
// completely different layout.
package grid

import (
	"fmt"

	"pcxxstreams/internal/distr"
)

// Grid2D describes a rows × cols grid distributed over a procRows ×
// procCols processor mesh.
type Grid2D struct {
	Rows, Cols         int
	ProcRows, ProcCols int
	dist               *distr.Distribution
}

// dimOwner computes the 1-D HPF owner of index i among n cells on p procs.
func dimOwner(i, n, p int, mode distr.Mode, blockSize int) int {
	switch mode {
	case distr.Block:
		blk := (n + p - 1) / p
		return i / blk
	case distr.Cyclic:
		return i % p
	case distr.BlockCyclic:
		return (i / blockSize) % p
	}
	panic(fmt.Sprintf("grid: unsupported per-dimension mode %v", mode))
}

// New2D builds a grid of rows × cols elements over a procRows × procCols
// mesh with the given distribution pattern per dimension. blockR/blockC are
// the BLOCK_CYCLIC block sizes (ignored for other modes). The total rank
// count is procRows · procCols; rank layout is row-major over the mesh.
func New2D(rows, cols, procRows, procCols int, rowMode, colMode distr.Mode, blockR, blockC int) (*Grid2D, error) {
	if rows <= 0 || cols <= 0 || procRows <= 0 || procCols <= 0 {
		return nil, fmt.Errorf("grid: invalid shape %dx%d over %dx%d", rows, cols, procRows, procCols)
	}
	for _, m := range []distr.Mode{rowMode, colMode} {
		if m == distr.Explicit {
			return nil, fmt.Errorf("grid: per-dimension mode must be a pattern, got %v", m)
		}
	}
	if rowMode == distr.BlockCyclic && blockR <= 0 {
		return nil, fmt.Errorf("grid: BLOCK_CYCLIC rows need a positive block, got %d", blockR)
	}
	if colMode == distr.BlockCyclic && blockC <= 0 {
		return nil, fmt.Errorf("grid: BLOCK_CYCLIC cols need a positive block, got %d", blockC)
	}
	owners := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		pr := dimOwner(i, rows, procRows, rowMode, blockR)
		for j := 0; j < cols; j++ {
			pc := dimOwner(j, cols, procCols, colMode, blockC)
			owners[i*cols+j] = pr*procCols + pc
		}
	}
	d, err := distr.NewExplicit(owners, procRows*procCols)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	return &Grid2D{Rows: rows, Cols: cols, ProcRows: procRows, ProcCols: procCols, dist: d}, nil
}

// Dist returns the grid's linearized distribution, usable anywhere a
// one-dimensional distribution is (collections, d/streams).
func (g *Grid2D) Dist() *distr.Distribution { return g.dist }

// Index linearizes (row, col) to the element index (row-major).
func (g *Grid2D) Index(row, col int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("grid: (%d,%d) outside %dx%d", row, col, g.Rows, g.Cols))
	}
	return row*g.Cols + col
}

// Coords inverts Index.
func (g *Grid2D) Coords(idx int) (row, col int) {
	if idx < 0 || idx >= g.Rows*g.Cols {
		panic(fmt.Sprintf("grid: index %d outside %dx%d", idx, g.Rows, g.Cols))
	}
	return idx / g.Cols, idx % g.Cols
}

// Owner returns the rank owning grid cell (row, col).
func (g *Grid2D) Owner(row, col int) int {
	return g.dist.Owner(g.Index(row, col))
}

// MeshCoords returns a rank's position in the processor mesh.
func (g *Grid2D) MeshCoords(rank int) (procRow, procCol int) {
	if rank < 0 || rank >= g.ProcRows*g.ProcCols {
		panic(fmt.Sprintf("grid: rank %d outside %dx%d mesh", rank, g.ProcRows, g.ProcCols))
	}
	return rank / g.ProcCols, rank % g.ProcCols
}

func (g *Grid2D) String() string {
	return fmt.Sprintf("GRID(%dx%d over %dx%d mesh)", g.Rows, g.Cols, g.ProcRows, g.ProcCols)
}

// Grid3D describes an nx × ny × nz grid distributed over a px × py × pz
// processor mesh — the shape of 3-D field solvers.
type Grid3D struct {
	NX, NY, NZ int
	PX, PY, PZ int
	dist       *distr.Distribution
}

// New3D builds a 3-D grid with an HPF pattern per dimension (BLOCK or
// CYCLIC; BLOCK_CYCLIC uses the given block sizes). Linearization and rank
// layout are row-major (x outermost).
func New3D(nx, ny, nz, px, py, pz int, mx, my, mz distr.Mode, bx, by, bz int) (*Grid3D, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 || px <= 0 || py <= 0 || pz <= 0 {
		return nil, fmt.Errorf("grid: invalid 3-D shape %dx%dx%d over %dx%dx%d", nx, ny, nz, px, py, pz)
	}
	dims := []struct {
		n, p, b int
		m       distr.Mode
	}{{nx, px, bx, mx}, {ny, py, by, my}, {nz, pz, bz, mz}}
	for i, d := range dims {
		if d.m == distr.Explicit {
			return nil, fmt.Errorf("grid: per-dimension mode must be a pattern (dim %d)", i)
		}
		if d.m == distr.BlockCyclic && d.b <= 0 {
			return nil, fmt.Errorf("grid: BLOCK_CYCLIC dim %d needs a positive block", i)
		}
	}
	owners := make([]int, nx*ny*nz)
	idx := 0
	for i := 0; i < nx; i++ {
		oi := dimOwner(i, nx, px, mx, bx)
		for j := 0; j < ny; j++ {
			oj := dimOwner(j, ny, py, my, by)
			for k := 0; k < nz; k++ {
				ok := dimOwner(k, nz, pz, mz, bz)
				owners[idx] = (oi*py+oj)*pz + ok
				idx++
			}
		}
	}
	d, err := distr.NewExplicit(owners, px*py*pz)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	return &Grid3D{NX: nx, NY: ny, NZ: nz, PX: px, PY: py, PZ: pz, dist: d}, nil
}

// Dist returns the linearized distribution.
func (g *Grid3D) Dist() *distr.Distribution { return g.dist }

// Index linearizes (i, j, k), row-major.
func (g *Grid3D) Index(i, j, k int) int {
	if i < 0 || i >= g.NX || j < 0 || j >= g.NY || k < 0 || k >= g.NZ {
		panic(fmt.Sprintf("grid: (%d,%d,%d) outside %dx%dx%d", i, j, k, g.NX, g.NY, g.NZ))
	}
	return (i*g.NY+j)*g.NZ + k
}

// Coords inverts Index.
func (g *Grid3D) Coords(idx int) (i, j, k int) {
	if idx < 0 || idx >= g.NX*g.NY*g.NZ {
		panic(fmt.Sprintf("grid: index %d outside %dx%dx%d", idx, g.NX, g.NY, g.NZ))
	}
	k = idx % g.NZ
	j = (idx / g.NZ) % g.NY
	i = idx / (g.NY * g.NZ)
	return
}

// Owner returns the rank owning cell (i, j, k).
func (g *Grid3D) Owner(i, j, k int) int { return g.dist.Owner(g.Index(i, j, k)) }

func (g *Grid3D) String() string {
	return fmt.Sprintf("GRID(%dx%dx%d over %dx%dx%d mesh)", g.NX, g.NY, g.NZ, g.PX, g.PY, g.PZ)
}
