package dsinfo

import (
	"strings"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

type elem struct{ V []float64 }

func (e *elem) StreamInsert(enc *dstream.Encoder)  { enc.Float64Slice(e.V) }
func (e *elem) StreamExtract(dec *dstream.Decoder) { e.V = dec.Float64Slice() }

// writeSample produces a two-record d/stream file and returns its image.
func writeSample(t *testing.T, nprocs, n int) []byte {
	t.Helper()
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs},
		func(nd *machine.Node) error {
			d, err := distr.New(n, nprocs, distr.Cyclic, 0)
			if err != nil {
				return err
			}
			c, err := collection.New[elem](nd, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, e *elem) { e.V = make([]float64, g%5) })
			s, err := dstream.Open(nd, d, "f")
			if err != nil {
				return err
			}
			defer s.Close()
			if err := dstream.Insert[elem](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
			// Second record: two interleaved inserts.
			if err := dstream.Insert[elem](s, c); err != nil {
				return err
			}
			if err := dstream.Insert[elem](s, c); err != nil {
				return err
			}
			return s.Write()
		})
	if err != nil {
		t.Fatal(err)
	}
	img, err := fs.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestParseWellFormedFile(t *testing.T) {
	img := writeSample(t, 3, 10)
	info, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes != int64(len(img)) {
		t.Fatalf("Bytes = %d, want %d", info.Bytes, len(img))
	}
	if len(info.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(info.Records))
	}
	r0, r1 := &info.Records[0], &info.Records[1]
	if r0.Header.NArrays != 1 || r1.Header.NArrays != 2 {
		t.Fatalf("NArrays = %d, %d; want 1, 2", r0.Header.NArrays, r1.Header.NArrays)
	}
	if r0.Dist.N != 10 || r0.Dist.NProcs != 3 || r0.Dist.Mode != distr.Cyclic {
		t.Fatalf("record 0 dist = %v", r0.Dist)
	}
	// Record 1 interleaves the same data twice: exactly double the bytes.
	if r1.TotalBytes() != 2*r0.TotalBytes() {
		t.Fatalf("record 1 bytes %d, want 2× record 0's %d", r1.TotalBytes(), r0.TotalBytes())
	}
	// Element sizes vary (g%5 floats, length-prefixed).
	if r0.MinSize() == r0.MaxSize() {
		t.Fatalf("expected variable element sizes, got uniform %d", r0.MinSize())
	}
	if r0.Index != 0 || r1.Index != 1 {
		t.Fatalf("indices %d, %d", r0.Index, r1.Index)
	}
}

func TestElementRange(t *testing.T) {
	img := writeSample(t, 2, 6)
	info, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	rec := &info.Records[0]
	// Ranges tile the data section exactly.
	off := rec.DataOffset
	for i := range rec.Sizes {
		got, n, err := rec.ElementRange(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != off || n != int(rec.Sizes[i]) {
			t.Fatalf("elem %d range (%d,%d), want (%d,%d)", i, got, n, off, rec.Sizes[i])
		}
		off += int64(n)
	}
	if off != rec.DataOffset+int64(rec.Header.DataBytes) {
		t.Fatalf("ranges end at %d, want %d", off, rec.DataOffset+int64(rec.Header.DataBytes))
	}
	if _, _, err := rec.ElementRange(-1); err == nil {
		t.Fatal("negative element accepted")
	}
	if _, _, err := rec.ElementRange(len(rec.Sizes)); err == nil {
		t.Fatal("out-of-range element accepted")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	img := writeSample(t, 2, 6)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad file magic", func(b []byte) []byte { b[0] = 'X'; return b }, "not a d/stream file"},
		{"truncated header", func(b []byte) []byte { return b[:enc.FileHeaderLen+10] }, "truncated"},
		{"bad record magic", func(b []byte) []byte { b[enc.FileHeaderLen] ^= 0xFF; return b }, "record"},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xAB) }, "truncated header"},
		{"truncated data", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cp := append([]byte{}, img...)
			if _, err := Parse(c.mutate(cp)); err == nil {
				t.Fatalf("corruption accepted")
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestParseRejectsLyingSizeTable(t *testing.T) {
	img := writeSample(t, 2, 6)
	// Inflate the first element's size entry: sums no longer match header.
	off := enc.FileHeaderLen + enc.RecordHeaderLen
	img[off]++
	if _, err := Parse(img); err == nil || !strings.Contains(err.Error(), "size table sums") {
		t.Fatalf("err = %v, want size-table mismatch", err)
	}
}

func TestParseEmptyFileWithHeaderOnly(t *testing.T) {
	info, err := Parse(enc.EncodeFileHeader())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != 0 {
		t.Fatalf("records = %d", len(info.Records))
	}
}

func TestMinSizeEmptyRecord(t *testing.T) {
	r := Record{}
	if r.MinSize() != 0 || r.MaxSize() != 0 || r.TotalBytes() != 0 {
		t.Fatal("empty record stats nonzero")
	}
}
