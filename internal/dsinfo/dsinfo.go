// Package dsinfo walks d/stream file images and reports their structure:
// the file header, each record's distribution descriptor, and per-element
// size statistics. It is the engine behind cmd/dsdump and is also used by
// tests to assert on-disk layout properties without re-implementing the
// format.
package dsinfo

import (
	"fmt"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/enc"
)

// Record describes one write() record of a d/stream file.
type Record struct {
	// Index is the record's ordinal in the file.
	Index int
	// Offset is the record's byte offset (header start).
	Offset int64
	// Header is the raw distribution descriptor.
	Header enc.RecordHeader
	// Dist is the writer's reconstructed distribution.
	Dist *distr.Distribution
	// Sizes holds the per-element payload sizes in file (node-block) order.
	Sizes []uint32
	// DataOffset is the byte offset of the record's data section.
	DataOffset int64
}

// MinSize returns the smallest element payload (0 for empty records).
func (r *Record) MinSize() uint32 {
	if len(r.Sizes) == 0 {
		return 0
	}
	m := r.Sizes[0]
	for _, s := range r.Sizes[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// MaxSize returns the largest element payload.
func (r *Record) MaxSize() uint32 {
	var m uint32
	for _, s := range r.Sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// TotalBytes returns the sum of the element payload sizes.
func (r *Record) TotalBytes() uint64 {
	var t uint64
	for _, s := range r.Sizes {
		t += uint64(s)
	}
	return t
}

// ElementRange returns the byte range [off, off+n) of element i's payload
// within the file, where i indexes file (node-block) order.
func (r *Record) ElementRange(i int) (off int64, n int, err error) {
	if i < 0 || i >= len(r.Sizes) {
		return 0, 0, fmt.Errorf("dsinfo: element %d out of range [0,%d)", i, len(r.Sizes))
	}
	off = r.DataOffset
	for j := 0; j < i; j++ {
		off += int64(r.Sizes[j])
	}
	return off, int(r.Sizes[i]), nil
}

// FileInfo is the parsed structure of a whole d/stream file.
type FileInfo struct {
	Bytes   int64
	Records []Record
}

// Parse walks a complete d/stream file image. It fails on a bad file
// header, a corrupt record header, truncation, a size table that
// contradicts the record header, or trailing bytes.
func Parse(data []byte) (*FileInfo, error) {
	if err := enc.CheckFileHeader(data); err != nil {
		return nil, err
	}
	info := &FileInfo{Bytes: int64(len(data))}
	off := int64(enc.FileHeaderLen)
	for off < int64(len(data)) {
		rec, next, err := parseRecord(data, off, len(info.Records))
		if err != nil {
			return nil, err
		}
		info.Records = append(info.Records, rec)
		off = next
	}
	if off != int64(len(data)) {
		return nil, fmt.Errorf("dsinfo: %d trailing bytes after last record", int64(len(data))-off)
	}
	return info, nil
}

func parseRecord(data []byte, off int64, index int) (Record, int64, error) {
	var rec Record
	if off+enc.RecordHeaderLen > int64(len(data)) {
		return rec, 0, fmt.Errorf("dsinfo: record %d: truncated header at offset %d", index, off)
	}
	h, err := enc.DecodeRecordHeader(data[off : off+enc.RecordHeaderLen])
	if err != nil {
		return rec, 0, fmt.Errorf("dsinfo: record %d at offset %d: %w", index, off, err)
	}
	descOff := off + enc.RecordHeaderLen
	descEnd := descOff + int64(h.DescBytes)
	if descEnd > int64(len(data)) {
		return rec, 0, fmt.Errorf("dsinfo: record %d: truncated distribution descriptor", index)
	}
	var d *distr.Distribution
	if distr.Mode(h.Mode) == distr.Explicit {
		owners, oerr := enc.DecodeOwnerTable(data[descOff:descEnd], int(h.NElems))
		if oerr != nil {
			return rec, 0, fmt.Errorf("dsinfo: record %d: %w", index, oerr)
		}
		d, err = distr.NewExplicit(owners, int(h.NProcs))
	} else {
		d, err = distr.NewAligned(int(h.NElems), int(h.TemplateN), int(h.NProcs),
			distr.Mode(h.Mode), int(h.BlockSize),
			distr.Alignment{Offset: int(h.AlignOffset), Stride: int(h.AlignStride)})
	}
	if err != nil {
		return rec, 0, fmt.Errorf("dsinfo: record %d: invalid distribution: %w", index, err)
	}
	tblOff := descEnd
	tblEnd := tblOff + h.SizeTableBytes()
	if tblEnd > int64(len(data)) {
		return rec, 0, fmt.Errorf("dsinfo: record %d: truncated size table", index)
	}
	sizes, err := enc.DecodeSizeTable(data[tblOff:tblEnd], int(h.NElems))
	if err != nil {
		return rec, 0, fmt.Errorf("dsinfo: record %d: %w", index, err)
	}
	rec = Record{
		Index:      index,
		Offset:     off,
		Header:     h,
		Dist:       d,
		Sizes:      sizes,
		DataOffset: tblEnd,
	}
	if rec.TotalBytes() != h.DataBytes {
		return rec, 0, fmt.Errorf("dsinfo: record %d: size table sums to %d but header claims %d data bytes",
			index, rec.TotalBytes(), h.DataBytes)
	}
	next := off + h.TotalBytes()
	if next > int64(len(data)) {
		return rec, 0, fmt.Errorf("dsinfo: record %d: truncated data section (need %d bytes, have %d)",
			index, next, len(data))
	}
	return rec, next, nil
}
