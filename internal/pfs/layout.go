package pfs

// DefaultStripeUnit is the stripe cell size assumed for backends that do not
// expose their geometry — the 64 KB default stripe unit of the Paragon PFS.
const DefaultStripeUnit int64 = 64 << 10

// Layout describes the stripe geometry of the storage behind one file: how
// many devices (I/O nodes) the image is dealt across and the cell size of
// the deal. Collective-I/O engines use it to pick aggregator counts and to
// align extents so one aggregator's write maps to whole stripe cells —
// exactly the "knowledge of parallel I/O, disk striping, and memory
// alignment" §2 says raw interfaces demand and the library should
// encapsulate.
type Layout struct {
	// StripeUnit is the bytes per stripe cell.
	StripeUnit int64
	// StripeFactor is the number of stripe devices the file is dealt across.
	StripeFactor int
}

// AlignUp returns the smallest stripe-cell boundary at or above off.
func (l Layout) AlignUp(off int64) int64 {
	if l.StripeUnit <= 0 {
		return off
	}
	return (off + l.StripeUnit - 1) / l.StripeUnit * l.StripeUnit
}

// LayoutProvider is implemented by backends that know their stripe
// geometry (notably StripedBackend). Backends that don't are reported with
// the file system's default geometry.
type LayoutProvider interface {
	Layout() Layout
}

// Layout returns the stripe geometry of the file behind this handle. If the
// backend exposes its real geometry that is returned; otherwise the
// geometry defaults to the platform profile's I/O channel count with the
// default stripe unit, so strategy choices degrade gracefully on flat
// backends. No virtual time is charged: the geometry is mount-time
// knowledge, not a metadata round trip.
func (h *File) Layout() Layout {
	if lp, ok := h.f.b.(LayoutProvider); ok {
		if l := lp.Layout(); l.StripeFactor > 0 && l.StripeUnit > 0 {
			return l
		}
	}
	c := h.fs.prof.IOChannels
	if c <= 0 {
		c = 1
	}
	return Layout{StripeUnit: DefaultStripeUnit, StripeFactor: c}
}

// Layout implements LayoutProvider by delegating to the wrapped backend, so
// the retry layer is transparent to geometry queries. A backend without
// geometry yields the zero Layout, which File.Layout treats as unknown.
func (rb *resilientBackend) Layout() Layout {
	if lp, ok := rb.Backend.(LayoutProvider); ok {
		return lp.Layout()
	}
	return Layout{}
}
