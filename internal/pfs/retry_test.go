package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"pcxxstreams/internal/vtime"
)

// flakyBackend wraps a MemBackend and serves at most chunk bytes per call,
// failing the remainder with a transient error — the resumable-short-transfer
// shape the retry helpers exist for. failN makes the first failN calls fail
// outright (still transiently) before touching the store.
type flakyBackend struct {
	*MemBackend
	chunk int
	failN int
	calls int
}

func (f *flakyBackend) step() bool {
	f.calls++
	return f.calls <= f.failN
}

func (f *flakyBackend) ReadAt(p []byte, off int64) (int, error) {
	if f.step() {
		return 0, fmt.Errorf("%w: flaky read", ErrTransient)
	}
	if f.chunk > 0 && len(p) > f.chunk {
		n, err := f.MemBackend.ReadAt(p[:f.chunk], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: flaky short read", ErrTransient)
	}
	return f.MemBackend.ReadAt(p, off)
}

func (f *flakyBackend) WriteAt(p []byte, off int64) (int, error) {
	if f.step() {
		return 0, fmt.Errorf("%w: flaky write", ErrTransient)
	}
	if f.chunk > 0 && len(p) > f.chunk {
		n, err := f.MemBackend.WriteAt(p[:f.chunk], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: flaky short write", ErrTransient)
	}
	return f.MemBackend.WriteAt(p, off)
}

func TestRetryWriteResumesShortTransfers(t *testing.T) {
	fb := &flakyBackend{MemBackend: NewMemBackend(), chunk: 7}
	want := []byte("the quick brown fox jumps over the lazy dog")
	retries := 0
	n, err := retryWriteAt(fb, want, 3, func() { retries++ })
	if err != nil || n != len(want) {
		t.Fatalf("retryWriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(want))
	if _, err := fb.MemBackend.ReadAt(got, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed write produced %q, want %q", got, want)
	}
	if retries == 0 {
		t.Error("no retries reported for a 7-byte-chunk backend")
	}
}

func TestRetryReadResumesShortTransfers(t *testing.T) {
	mem := NewMemBackend()
	want := []byte("0123456789abcdef0123456789abcdef")
	mem.WriteAt(want, 0)
	fb := &flakyBackend{MemBackend: mem, chunk: 5, failN: 2}
	got := make([]byte, len(want))
	retries := 0
	n, err := retryReadAt(fb, got, 0, func() { retries++ })
	if err != nil || n != len(want) {
		t.Fatalf("retryReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed read produced %q, want %q", got, want)
	}
	if retries < 2 {
		t.Errorf("retries = %d, want at least the 2 scripted outright failures", retries)
	}
}

func TestRetryZeroLengthIsNoop(t *testing.T) {
	// A zero-length transfer must not touch the backend at all (a flaky
	// backend would fail it, and pfs issues zero-length ops for empty
	// blocks).
	fb := &flakyBackend{MemBackend: NewMemBackend(), failN: 1 << 30}
	if n, err := retryReadAt(fb, nil, 0, nil); n != 0 || err != nil {
		t.Fatalf("zero-length read = %d, %v", n, err)
	}
	if n, err := retryWriteAt(fb, nil, 0, nil); n != 0 || err != nil {
		t.Fatalf("zero-length write = %d, %v", n, err)
	}
	if fb.calls != 0 {
		t.Fatalf("zero-length ops reached the backend %d times", fb.calls)
	}
}

func TestRetryExhaustionSurfacesCleanly(t *testing.T) {
	fb := &flakyBackend{MemBackend: NewMemBackend(), failN: 1 << 30}
	_, err := retryWriteAt(fb, []byte("doomed"), 0, nil)
	if err == nil {
		t.Fatal("write succeeded against an always-failing backend")
	}
	if !IsTransient(err) {
		t.Fatalf("exhaustion error lost its transient cause: %v", err)
	}
	if fb.calls != ioMaxAttempts {
		t.Fatalf("backend saw %d attempts, want %d", fb.calls, ioMaxAttempts)
	}
}

func TestRetryPropagatesEOF(t *testing.T) {
	mem := NewMemBackend()
	mem.WriteAt([]byte("short"), 0)
	p := make([]byte, 64)
	n, err := retryReadAt(mem, p, 0, func() { t.Error("genuine EOF retried") })
	if !errors.Is(err, io.EOF) {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
	if n != 5 || string(p[:5]) != "short" {
		t.Fatalf("partial read = %d %q", n, p[:n])
	}
	if IsTransient(err) {
		t.Fatal("io.EOF classified as transient")
	}
}

func TestRetryDoesNotRetryInjectedFaults(t *testing.T) {
	// FaultyBackend models a dead disk: its errors are permanent, and the
	// retry helpers must hand them straight up instead of burning attempts.
	fb := NewFaultyBackend(NewMemBackend(), 0)
	_, err := retryWriteAt(fb, []byte("x"), 0, func() { t.Error("injected fault retried") })
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if IsTransient(err) {
		t.Fatal("injected fault classified as transient")
	}
}

// TestFileSystemRetriesFlakyFactory: the resilient layer the file system
// wraps around factory backends absorbs transient faults end-to-end, and the
// spent retries appear in both the run stats and the dsmon counter.
func TestFileSystemRetriesFlakyFactory(t *testing.T) {
	factory := func(string) (Backend, error) {
		return &flakyBackend{MemBackend: NewMemBackend(), chunk: 11}, nil
	}
	fs := NewFileSystem(vtime.Paragon(), factory)
	var clk vtime.Clock
	h, err := fs.Open("flaky", 1, 0, &clk, true)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("resilience!"), 100)
	if err := h.WriteAt(want, 0); err != nil {
		t.Fatalf("write through flaky backend: %v", err)
	}
	got := make([]byte, len(want))
	if err := h.ReadAt(got, 0); err != nil {
		t.Fatalf("read through flaky backend: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flaky round trip corrupted data")
	}
	if n := fs.Stats().IORetries; n == 0 {
		t.Error("IORetries stat is zero after a flaky run")
	}
}

// TestFileSystemDoesNotRetryInjectedFaults: InjectFault's permanent faults
// must cut straight through the retry layer — a crashed disk is not a
// transient hiccup, and retrying it ioMaxAttempts times would only delay the
// abort.
func TestFileSystemDoesNotRetryInjectedFaults(t *testing.T) {
	fs := NewMemFS(vtime.Paragon())
	var clk vtime.Clock
	h, err := fs.Open("doomed", 1, 0, &clk, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.InjectFault("doomed", 0); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt([]byte("fails"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write = %v, want ErrInjected", err)
	}
	if n := fs.Stats().IORetries; n != 0 {
		t.Errorf("permanent fault burned %d retries", n)
	}
}
