package pfs

import (
	"fmt"
	"io"
	"sync"
)

// StripedBackend scatters a file image across several child backends in
// round-robin stripe units, the way the Paragon PFS striped files across
// its I/O nodes ("Obtaining high I/O performance using these interfaces
// often requires a knowledge of parallel I/O, disk striping, and memory
// alignment of I/O buffers" — §2; the library encapsulates exactly this).
// Byte i lives on child (i/unit) mod k at offset (i/(unit·k))·unit +
// i mod unit.
type StripedBackend struct {
	mu       sync.Mutex
	children []Backend
	unit     int64
	size     int64
}

// NewStripedBackend stripes across the given children with the given unit
// (bytes per stripe cell). At least one child and a positive unit are
// required.
func NewStripedBackend(children []Backend, unit int64) (*StripedBackend, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("pfs: striped backend needs at least one child")
	}
	if unit <= 0 {
		return nil, fmt.Errorf("pfs: stripe unit must be positive, got %d", unit)
	}
	return &StripedBackend{children: children, unit: unit}, nil
}

// NewStripedMemBackend is shorthand for striping across k fresh in-memory
// backends.
func NewStripedMemBackend(k int, unit int64) (*StripedBackend, error) {
	children := make([]Backend, k)
	for i := range children {
		children[i] = NewMemBackend()
	}
	return NewStripedBackend(children, unit)
}

// locate maps a global offset to (child, childOffset).
func (s *StripedBackend) locate(off int64) (child int, childOff int64) {
	k := int64(len(s.children))
	cell := off / s.unit
	return int(cell % k), (cell/k)*s.unit + off%s.unit
}

// cellEnd returns the global offset of the end of off's stripe cell.
func (s *StripedBackend) cellEnd(off int64) int64 {
	return (off/s.unit + 1) * s.unit
}

// WriteAt implements io.WriterAt across the stripes.
func (s *StripedBackend) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	// Zero-length writes must not extend the file (pwrite semantics): with
	// no bytes to place, the size bookkeeping below would otherwise record
	// off as the new end.
	if len(p) == 0 {
		return 0, nil
	}
	total := 0
	for len(p) > 0 {
		child, childOff := s.locate(off)
		n := s.cellEnd(off) - off
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		// Child writes go through the retry helper so a transient fault on
		// one stripe device (e.g. a chaos-wrapped child) is resumed in place
		// instead of failing the whole striped operation.
		if _, err := retryWriteAt(s.children[child], p[:n], childOff, nil); err != nil {
			return total, fmt.Errorf("pfs: stripe %d: %w", child, err)
		}
		p = p[n:]
		off += n
		total += int(n)
	}
	s.mu.Lock()
	if off > s.size {
		s.size = off
	}
	s.mu.Unlock()
	return total, nil
}

// ReadAt implements io.ReaderAt across the stripes.
func (s *StripedBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	size := s.Size()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	total := 0
	for int64(total) < want {
		child, childOff := s.locate(off)
		n := s.cellEnd(off) - off
		if n > want-int64(total) {
			n = want - int64(total)
		}
		if _, err := retryReadAt(s.children[child], p[total:total+int(n)], childOff, nil); err != nil && err != io.EOF {
			return total, fmt.Errorf("pfs: stripe %d: %w", child, err)
		}
		off += n
		total += int(n)
	}
	if int64(len(p)) > want {
		return total, io.EOF
	}
	return total, nil
}

// Layout implements LayoutProvider: the real stripe geometry.
func (s *StripedBackend) Layout() Layout {
	return Layout{StripeUnit: s.unit, StripeFactor: len(s.children)}
}

// Size implements Backend.
func (s *StripedBackend) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Truncate implements Backend, matching the flat backends' semantics:
// after shrinking to S and regrowing, bytes in [S, newSize) read as zero.
func (s *StripedBackend) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("pfs: negative truncate %d", size)
	}
	s.mu.Lock()
	old := s.size
	s.size = size
	s.mu.Unlock()
	if size >= old {
		// Grow: zero-fill the new region.
		return s.zeroRange(old, size)
	}
	// Shrink: zero the abandoned tail now so a later regrow reads zeros.
	s.mu.Lock()
	s.size = old // temporarily restore so WriteAt bookkeeping is sane
	s.mu.Unlock()
	if err := s.zeroRange(size, old); err != nil {
		return err
	}
	s.mu.Lock()
	s.size = size
	s.mu.Unlock()
	return nil
}

// zeroRange writes zeros over [lo, hi).
func (s *StripedBackend) zeroRange(lo, hi int64) error {
	var zero [4096]byte
	for off := lo; off < hi; {
		n := hi - off
		if n > int64(len(zero)) {
			n = int64(len(zero))
		}
		if _, err := s.WriteAt(zero[:n], off); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Close closes every child.
func (s *StripedBackend) Close() error {
	var first error
	for _, c := range s.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StripedMemFactory returns a factory producing files striped over k fresh
// in-memory backends with the given unit.
func StripedMemFactory(k int, unit int64) BackendFactory {
	return func(string) (Backend, error) { return NewStripedMemBackend(k, unit) }
}
