package pfs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"pcxxstreams/internal/dsmon"
)

// StripedBackend scatters a file image across several child backends in
// round-robin stripe units, the way the Paragon PFS striped files across
// its I/O nodes ("Obtaining high I/O performance using these interfaces
// often requires a knowledge of parallel I/O, disk striping, and memory
// alignment of I/O buffers" — §2; the library encapsulates exactly this).
// Byte i lives on child (i/unit) mod k at offset (i/(unit·k))·unit +
// i mod unit.
type StripedBackend struct {
	mu       sync.Mutex
	children []Backend
	unit     int64
	size     int64
	// fanoutHist, when set, observes the number of concurrent child
	// transfers per multi-cell operation (pfs_stripe_fanout).
	fanoutHist atomic.Pointer[dsmon.Histogram]
}

// maxStripeFanout bounds the goroutine pool of one striped operation: at
// most this many child backends transfer concurrently, the rest of the
// involved children queue for a slot.
const maxStripeFanout = 8

// fanoutBuckets spans 2 children (the smallest multi-child op) to wide
// arrays.
var fanoutBuckets = []float64{2, 3, 4, 6, 8, 12, 16, 32}

// SetMonitor binds the pfs_stripe_fanout histogram in m's registry. The
// file system calls this (through its resilient wrapper) when a monitor is
// attached; safe to call while operations are in flight.
func (s *StripedBackend) SetMonitor(m *dsmon.Monitor) {
	s.fanoutHist.Store(m.Registry().Histogram("pfs_stripe_fanout",
		"concurrent child transfers per multi-cell striped operation", fanoutBuckets))
}

// NewStripedBackend stripes across the given children with the given unit
// (bytes per stripe cell). At least one child and a positive unit are
// required.
func NewStripedBackend(children []Backend, unit int64) (*StripedBackend, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("pfs: striped backend needs at least one child")
	}
	if unit <= 0 {
		return nil, fmt.Errorf("pfs: stripe unit must be positive, got %d", unit)
	}
	return &StripedBackend{children: children, unit: unit}, nil
}

// NewStripedMemBackend is shorthand for striping across k fresh in-memory
// backends.
func NewStripedMemBackend(k int, unit int64) (*StripedBackend, error) {
	children := make([]Backend, k)
	for i := range children {
		children[i] = NewMemBackend()
	}
	return NewStripedBackend(children, unit)
}

// locate maps a global offset to (child, childOffset).
func (s *StripedBackend) locate(off int64) (child int, childOff int64) {
	k := int64(len(s.children))
	cell := off / s.unit
	return int(cell % k), (cell/k)*s.unit + off%s.unit
}

// cellEnd returns the global offset of the end of off's stripe cell.
func (s *StripedBackend) cellEnd(off int64) int64 {
	return (off/s.unit + 1) * s.unit
}

// WriteAt implements io.WriterAt across the stripes. Multi-child writes
// transfer to the involved children concurrently; on error, zero progress
// is reported (a concurrent fan-out has no contiguous prefix to resume
// from) and the retry layer above re-issues the whole — idempotent —
// operation.
func (s *StripedBackend) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	// Zero-length writes must not extend the file (pwrite semantics): with
	// no bytes to place, the size bookkeeping below would otherwise record
	// off as the new end.
	if len(p) == 0 {
		return 0, nil
	}
	if err := s.fanout(p, off, true); err != nil {
		return 0, err
	}
	end := off + int64(len(p))
	s.mu.Lock()
	if end > s.size {
		s.size = end
	}
	s.mu.Unlock()
	return len(p), nil
}

// ReadAt implements io.ReaderAt across the stripes, fanning multi-child
// reads out concurrently like WriteAt.
func (s *StripedBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	size := s.Size()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	if err := s.fanout(p[:want], off, false); err != nil {
		return 0, err
	}
	if int64(len(p)) > want {
		return int(want), io.EOF
	}
	return int(want), nil
}

// fanout moves [off, off+len(p)) between p and the child backends. An
// operation confined to a single child runs inline; a multi-child operation
// runs one worker per involved child (at most maxStripeFanout at a time),
// each walking only the cells that live on its child. The workers write to
// pairwise-disjoint sub-slices of p and share no other mutable state, so
// the fan-out is race-free by construction; the first error wins and stops
// the remaining workers at their next cell boundary.
func (s *StripedBackend) fanout(p []byte, off int64, write bool) error {
	k := len(s.children)
	n := int64(len(p))
	firstCell := off / s.unit
	width := int((off+n-1)/s.unit - firstCell + 1)
	if width > k {
		width = k
	}
	if width == 1 {
		return s.childWalk(p, off, int(firstCell%int64(k)), write, nil)
	}
	if h := s.fanoutHist.Load(); h != nil {
		h.Observe(float64(width))
	}
	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		errMu sync.Mutex
		first error
	)
	sem := make(chan struct{}, maxStripeFanout)
	for w := 0; w < width; w++ {
		child := int((firstCell + int64(w)) % int64(k))
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := s.childWalk(p, off, child, write, &stop); err != nil {
				stop.Store(true)
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return first
}

// childWalk transfers every cell of [off, off+len(p)) that lives on child,
// in ascending offset order. Child transfers go through the retry helpers
// so a transient fault on one stripe device (e.g. a chaos-wrapped child) is
// resumed in place instead of failing the whole striped operation.
func (s *StripedBackend) childWalk(p []byte, off int64, child int, write bool, stop *atomic.Bool) error {
	k := int64(len(s.children))
	end := off + int64(len(p))
	firstCell := off / s.unit
	// First cell at or after firstCell that maps to this child.
	cell := firstCell + ((int64(child)-firstCell)%k+k)%k
	for ; cell*s.unit < end; cell += k {
		if stop != nil && stop.Load() {
			return nil
		}
		lo := cell * s.unit
		a, b := lo, lo+s.unit
		if a < off {
			a = off
		}
		if b > end {
			b = end
		}
		childOff := (cell/k)*s.unit + (a - lo)
		seg := p[a-off : b-off]
		if write {
			if _, err := retryWriteAt(s.children[child], seg, childOff, nil); err != nil {
				return fmt.Errorf("pfs: stripe %d: %w", child, err)
			}
		} else if _, err := retryReadAt(s.children[child], seg, childOff, nil); err != nil && err != io.EOF {
			return fmt.Errorf("pfs: stripe %d: %w", child, err)
		}
	}
	return nil
}

// Layout implements LayoutProvider: the real stripe geometry.
func (s *StripedBackend) Layout() Layout {
	return Layout{StripeUnit: s.unit, StripeFactor: len(s.children)}
}

// Size implements Backend.
func (s *StripedBackend) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Truncate implements Backend, matching the flat backends' semantics:
// after shrinking to S and regrowing, bytes in [S, newSize) read as zero.
func (s *StripedBackend) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("pfs: negative truncate %d", size)
	}
	s.mu.Lock()
	old := s.size
	s.size = size
	s.mu.Unlock()
	if size >= old {
		// Grow: zero-fill the new region.
		return s.zeroRange(old, size)
	}
	// Shrink: zero the abandoned tail now so a later regrow reads zeros.
	s.mu.Lock()
	s.size = old // temporarily restore so WriteAt bookkeeping is sane
	s.mu.Unlock()
	if err := s.zeroRange(size, old); err != nil {
		return err
	}
	s.mu.Lock()
	s.size = size
	s.mu.Unlock()
	return nil
}

// zeroRange writes zeros over [lo, hi).
func (s *StripedBackend) zeroRange(lo, hi int64) error {
	var zero [4096]byte
	for off := lo; off < hi; {
		n := hi - off
		if n > int64(len(zero)) {
			n = int64(len(zero))
		}
		if _, err := s.WriteAt(zero[:n], off); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Close closes every child.
func (s *StripedBackend) Close() error {
	var first error
	for _, c := range s.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StripedMemFactory returns a factory producing files striped over k fresh
// in-memory backends with the given unit.
func StripedMemFactory(k int, unit int64) BackendFactory {
	return func(string) (Backend, error) { return NewStripedMemBackend(k, unit) }
}
