package pfs

import (
	"bytes"
	"strings"
	"testing"

	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// TestAsyncIssueCompletionFlow pins the async-io causal edge: every
// asynchronous collective operation records an issue span on the caller's
// timeline, a background disk span reaching to the virtual completion, and
// an edge from issue to disk — with the disk span starting where the issue
// span ends and ending at the completion time the caller was promised.
func TestAsyncIssueCompletionFlow(t *testing.T) {
	prof := testProfile()
	fs := NewMemFS(prof)
	rec := trace.New()
	fs.SetRecorder(rec)

	completions := make([]float64, 3)
	spmdFS(t, fs, 3, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", 3, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		_, completion, err := h.ParallelAppendAsync(bytes.Repeat([]byte{byte('a' + rank)}, 512))
		if err != nil {
			return err
		}
		completions[rank] = completion
		if h.LastAsyncSpan() == 0 {
			return nil // recorder attached, so this must not happen; checked below
		}
		return nil
	})

	byID := map[trace.SpanID]trace.Event{}
	for _, ev := range rec.Events() {
		if ev.ID != 0 {
			byID[ev.ID] = ev
		}
	}
	var asyncEdges int
	for _, f := range rec.Flows() {
		if f.Kind != "async-io" {
			continue
		}
		asyncEdges++
		issue, ok := byID[f.From]
		if !ok {
			t.Fatalf("edge %v has dangling issue span", f)
		}
		disk, ok := byID[f.To]
		if !ok {
			t.Fatalf("edge %v has dangling disk span", f)
		}
		if issue.Node != disk.Node {
			t.Fatalf("issue on node %d but disk span on node %d", issue.Node, disk.Node)
		}
		if !strings.HasSuffix(disk.Name, " (async)") || disk.Cat != "io" {
			t.Fatalf("disk span = %+v, want an io span named '… (async)'", disk)
		}
		if disk.Start != issue.End {
			t.Fatalf("disk span starts at %v, want the issue span's end %v", disk.Start, issue.End)
		}
		if disk.End != completions[disk.Node] {
			t.Fatalf("disk span ends at %v, want the promised completion %v",
				disk.End, completions[disk.Node])
		}
		if disk.End < disk.Start {
			t.Fatalf("disk span %+v ends before it starts", disk)
		}
	}
	if asyncEdges != 3 {
		t.Fatalf("got %d async-io edges, want one per rank (3)", asyncEdges)
	}
}
