package pfs

import "sync/atomic"

// IOStats counts the file-system operations of one machine run — the
// quantity that explains the paper's tables: the unbuffered baseline issues
// one small call per field per element, while the buffered variants issue a
// handful of parallel operations.
type IOStats struct {
	Opens             int64
	IndependentWrites int64
	IndependentReads  int64
	ParallelAppends   int64
	ParallelReads     int64
	ControlSyncs      int64
	BytesWritten      int64
	BytesRead         int64
	// IORetries counts backend operations re-issued after a transient
	// storage fault or short transfer (zero on a healthy run).
	IORetries int64
}

// ioCounters is the atomic backing store inside FileSystem.
type ioCounters struct {
	opens             atomic.Int64
	independentWrites atomic.Int64
	independentReads  atomic.Int64
	parallelAppends   atomic.Int64
	parallelReads     atomic.Int64
	controlSyncs      atomic.Int64
	bytesWritten      atomic.Int64
	bytesRead         atomic.Int64
	ioRetries         atomic.Int64
}

func (c *ioCounters) snapshot() IOStats {
	return IOStats{
		Opens:             c.opens.Load(),
		IndependentWrites: c.independentWrites.Load(),
		IndependentReads:  c.independentReads.Load(),
		ParallelAppends:   c.parallelAppends.Load(),
		ParallelReads:     c.parallelReads.Load(),
		ControlSyncs:      c.controlSyncs.Load(),
		BytesWritten:      c.bytesWritten.Load(),
		BytesRead:         c.bytesRead.Load(),
		IORetries:         c.ioRetries.Load(),
	}
}

// Stats returns a snapshot of the operation counters.
func (fs *FileSystem) Stats() IOStats { return fs.counters.snapshot() }

// ResetStats zeroes the operation counters (between measurement phases).
// Each counter is stored to zero individually: reassigning the whole
// ioCounters struct would copy atomic.Int64 values and race with
// concurrent increments from node goroutines.
func (fs *FileSystem) ResetStats() {
	c := &fs.counters
	c.opens.Store(0)
	c.independentWrites.Store(0)
	c.independentReads.Store(0)
	c.parallelAppends.Store(0)
	c.parallelReads.Store(0)
	c.controlSyncs.Store(0)
	c.bytesWritten.Store(0)
	c.bytesRead.Store(0)
	c.ioRetries.Store(0)
}

// TotalOps returns the total number of I/O calls of any kind.
func (s IOStats) TotalOps() int64 {
	return s.Opens + s.IndependentWrites + s.IndependentReads +
		s.ParallelAppends + s.ParallelReads + s.ControlSyncs
}
