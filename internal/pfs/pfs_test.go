package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"pcxxstreams/internal/vtime"
)

// spmdFS runs body on n node goroutines against one file system, returning
// each node's final virtual time.
func spmdFS(t *testing.T, fs *FileSystem, n int, body func(rank int, clock *vtime.Clock) error) []float64 {
	t.Helper()
	clocks := make([]vtime.Clock, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = body(r, &clocks[r])
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	out := make([]float64, n)
	for i := range clocks {
		out[i] = clocks[i].Now()
	}
	return out
}

func testProfile() vtime.Profile {
	p := vtime.Challenge()
	return p
}

func TestMemBackendReadWrite(t *testing.T) {
	m := NewMemBackend()
	if _, err := m.WriteAt([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
	buf := make([]byte, 5)
	if _, err := m.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	// Leading gap is zero-filled.
	head := make([]byte, 3)
	if _, err := m.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, []byte{0, 0, 0}) {
		t.Fatalf("gap = %v", head)
	}
}

func TestMemBackendShortRead(t *testing.T) {
	m := NewMemBackend()
	m.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := m.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("ReadAt = (%d, %v), want (2, EOF)", n, err)
	}
	if _, err := m.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
	if _, err := m.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestMemBackendTruncate(t *testing.T) {
	m := NewMemBackend()
	m.WriteAt([]byte("0123456789"), 0)
	if err := m.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 {
		t.Fatalf("Size = %d", m.Size())
	}
	if err := m.Truncate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	m.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("after grow: %q", buf)
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestOSBackend(t *testing.T) {
	dir := t.TempDir()
	b, err := NewOSBackend(filepath.Join(dir, "f.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.WriteAt([]byte("paragon"), 2); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 9 {
		t.Fatalf("Size = %d, want 9", b.Size())
	}
	buf := make([]byte, 7)
	if _, err := b.ReadAt(buf, 2); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "paragon" {
		t.Fatalf("read %q", buf)
	}
	if err := b.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 {
		t.Fatalf("Size after truncate = %d", b.Size())
	}
}

// TestBackendsEquivalent: the same operation script yields identical images
// on the memory and OS backends.
func TestBackendsEquivalent(t *testing.T) {
	dir := t.TempDir()
	osb, err := NewOSBackend(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer osb.Close()
	mem := NewMemBackend()
	script := []struct {
		data []byte
		off  int64
	}{
		{[]byte("alpha"), 0},
		{[]byte("beta"), 10},
		{[]byte("overlapping"), 3},
		{[]byte{0xFF}, 20},
	}
	for _, s := range script {
		if _, err := mem.WriteAt(s.data, s.off); err != nil {
			t.Fatal(err)
		}
		if _, err := osb.WriteAt(s.data, s.off); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Size() != osb.Size() {
		t.Fatalf("sizes differ: %d vs %d", mem.Size(), osb.Size())
	}
	a := make([]byte, mem.Size())
	b := make([]byte, osb.Size())
	mem.ReadAt(a, 0)
	osb.ReadAt(b, 0)
	if !bytes.Equal(a, b) {
		t.Fatalf("images differ:\nmem %v\nos  %v", a, b)
	}
}

func TestFaultyBackend(t *testing.T) {
	fb := NewFaultyBackend(NewMemBackend(), 2)
	if _, err := fb.WriteAt([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.WriteAt([]byte("b"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.WriteAt([]byte("c"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd op err = %v, want ErrInjected", err)
	}
	if _, err := fb.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
}

func TestOpenValidation(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	if _, err := fs.Open("f", 0, 0, &c, false); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := fs.Open("f", 2, 2, &c, false); err == nil {
		t.Error("rank==nprocs accepted")
	}
}

func TestOpenChargesLatency(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, err := fs.Open("f", 1, 0, &c, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if c.Now() != testProfile().OpenLatency {
		t.Fatalf("clock = %v, want %v", c.Now(), testProfile().OpenLatency)
	}
}

func TestIndependentWriteReadRoundTrip(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, err := fs.Open("f", 1, 0, &c, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	want := []byte("unbuffered bytes")
	if err := h.WriteAt(want, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := h.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
	if c.Now() <= testProfile().OpenLatency {
		t.Fatal("I/O ops charged no time")
	}
}

func TestReadPastEndFails(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, _ := fs.Open("f", 1, 0, &c, true)
	defer h.Close()
	if err := h.ReadAt(make([]byte, 10), 0); err == nil {
		t.Fatal("read of empty file succeeded")
	}
}

func TestClosedHandleRejected(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, _ := fs.Open("f", 1, 0, &c, true)
	h.Close()
	if err := h.WriteAt([]byte("x"), 0); err == nil {
		t.Error("write on closed handle accepted")
	}
	if err := h.ReadAt(make([]byte, 1), 0); err == nil {
		t.Error("read on closed handle accepted")
	}
	if _, err := h.ParallelAppend(nil); err == nil {
		t.Error("collective on closed handle accepted")
	}
	if err := h.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, _ := fs.Open("f", 1, 0, &c, true)
	h.WriteAt([]byte("leftover"), 0)
	h.Close()
	h2, _ := fs.Open("f", 1, 0, &c, true)
	defer h2.Close()
	if h2.Size() != 0 {
		t.Fatalf("size after trunc reopen = %d", h2.Size())
	}
	// Reopen without trunc preserves.
	h2.WriteAt([]byte("kept"), 0)
	h2.Close()
	h3, _ := fs.Open("f", 1, 0, &c, false)
	defer h3.Close()
	if h3.Size() != 4 {
		t.Fatalf("size after plain reopen = %d", h3.Size())
	}
}

// TestParallelAppendNodeOrder: blocks land contiguously in rank order
// regardless of arrival order, and every node gets the same exit time.
func TestParallelAppendNodeOrder(t *testing.T) {
	const n = 5
	fs := NewMemFS(testProfile())
	offsets := make([]int64, n)
	times := spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", n, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		// Skew arrivals so rank order != arrival order.
		clock.Advance(float64(n-rank) * 0.01)
		block := bytes.Repeat([]byte{byte('A' + rank)}, rank+1)
		off, err := h.ParallelAppend(block)
		if err != nil {
			return err
		}
		offsets[rank] = off
		return nil
	})
	img, err := fs.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("ABBCCCDDDDEEEEE")
	if !bytes.Equal(img, want) {
		t.Fatalf("image = %q, want %q", img, want)
	}
	expectOff := int64(0)
	for r := 0; r < n; r++ {
		if offsets[r] != expectOff {
			t.Fatalf("rank %d offset %d, want %d", r, offsets[r], expectOff)
		}
		expectOff += int64(r + 1)
	}
	for r, tm := range times {
		if tm != times[0] {
			t.Fatalf("rank %d exit %v != %v", r, tm, times[0])
		}
	}
}

func TestParallelAppendEmptyBlocks(t *testing.T) {
	const n = 3
	fs := NewMemFS(testProfile())
	spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", n, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		var block []byte
		if rank == 1 {
			block = []byte("only-me")
		}
		if _, err := h.ParallelAppend(block); err != nil {
			return err
		}
		return nil
	})
	img, _ := fs.Image("f")
	if string(img) != "only-me" {
		t.Fatalf("image %q", img)
	}
}

func TestSequentialParallelAppends(t *testing.T) {
	const n = 2
	fs := NewMemFS(testProfile())
	spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", n, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		for round := 0; round < 3; round++ {
			b := []byte(fmt.Sprintf("[r%dn%d]", round, rank))
			if _, err := h.ParallelAppend(b); err != nil {
				return err
			}
		}
		return nil
	})
	img, _ := fs.Image("f")
	want := "[r0n0][r0n1][r1n0][r1n1][r2n0][r2n1]"
	if string(img) != want {
		t.Fatalf("image %q, want %q", img, want)
	}
}

func TestParallelRead(t *testing.T) {
	const n = 4
	fs := NewMemFS(testProfile())
	times := spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", n, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		block := bytes.Repeat([]byte{byte('a' + rank)}, 8)
		off, err := h.ParallelAppend(block)
		if err != nil {
			return err
		}
		// Each node reads back its own block; rank 2 reads nothing.
		rg := Range{Off: off, Len: 8}
		if rank == 2 {
			rg = Range{}
		}
		got, err := h.ParallelRead(rg)
		if err != nil {
			return err
		}
		if rank == 2 {
			if len(got) != 0 {
				return fmt.Errorf("rank 2 got %q, want empty", got)
			}
			return nil
		}
		if !bytes.Equal(got, block) {
			return fmt.Errorf("rank %d got %q want %q", rank, got, block)
		}
		return nil
	})
	for r, tm := range times {
		if tm != times[0] {
			t.Fatalf("rank %d exit %v != %v", r, tm, times[0])
		}
	}
}

func TestParallelReadOutOfBounds(t *testing.T) {
	fs := NewMemFS(testProfile())
	errs := make([]error, 1)
	spmdFS(t, fs, 1, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", 1, 0, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		_, errs[0] = h.ParallelRead(Range{Off: 1000, Len: 10})
		return nil
	})
	if errs[0] == nil {
		t.Fatal("out-of-bounds parallel read succeeded")
	}
}

func TestControlSync(t *testing.T) {
	const n = 3
	fs := NewMemFS(testProfile())
	times := spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", n, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		clock.Advance(float64(rank)) // skew
		return h.ControlSync()
	})
	want := testProfile().OpenLatency + 2 + testProfile().ControlOpLatency
	for r, tm := range times {
		if tm != want {
			t.Fatalf("rank %d exit %v, want %v", r, tm, want)
		}
	}
}

// TestParagonChannelSerialization: on a 1-channel profile, a parallel
// append's duration depends on the total bytes, not the per-node share.
func TestParagonChannelSerialization(t *testing.T) {
	prof := vtime.Paragon()
	run := func(n int, perNode int) float64 {
		fs := NewMemFS(prof)
		times := spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("f", n, rank, clock, true)
			if err != nil {
				return err
			}
			defer h.Close()
			_, err = h.ParallelAppend(make([]byte, perNode))
			return err
		})
		return times[0] - prof.OpenLatency - float64(n)*(prof.SerialPerOp+prof.IOOpLatency)
	}
	// Same total bytes, different node counts: near-equal op time.
	t2 := run(2, 1<<20)
	t4 := run(4, 512<<10)
	if diff := t2 - t4; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("1-channel parallel time varies with node count: %v vs %v", t2, t4)
	}
}

// TestChallengeChannelParallelism: with enough channels, per-node blocks
// transfer concurrently, so doubling nodes at fixed per-node size barely
// moves the transfer term.
func TestChallengeChannelParallelism(t *testing.T) {
	prof := vtime.Challenge()
	run := func(n int) float64 {
		fs := NewMemFS(prof)
		times := spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("f", n, rank, clock, true)
			if err != nil {
				return err
			}
			defer h.Close()
			_, err = h.ParallelAppend(make([]byte, 1<<20))
			return err
		})
		return times[0] - prof.OpenLatency - float64(n)*prof.SerialPerOp
	}
	t1, t8 := run(1), run(8)
	// With C channels, 8 equal blocks take ~ceil(8/C) block-times: real
	// scaling, unlike the 1-channel Paragon where 8 blocks take 8.
	c := prof.IOChannels
	maxRatio := float64((8+c-1)/c) * 1.2
	if t8 > t1*maxRatio {
		t.Fatalf("parallel write did not scale with %d channels: 1 node %v, 8 nodes %v (ratio %.1f, max %.1f)",
			c, t1, t8, t8/t1, maxRatio)
	}
	if t8 > t1*7 {
		t.Fatalf("parallel write fully serialized despite %d channels", c)
	}
}

// TestSlowOffsetCliff: small ops past the slow offset cost IOOpSlow.
func TestSlowOffsetCliff(t *testing.T) {
	prof := vtime.Paragon()
	fs := NewMemFS(prof)
	var c vtime.Clock
	h, err := fs.Open("f", 1, 0, &c, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	before := c.Now()
	if err := h.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	fastCost := c.Now() - before
	before = c.Now()
	if err := h.WriteAt(make([]byte, 100), prof.SlowOffset+1); err != nil {
		t.Fatal(err)
	}
	slowCost := c.Now() - before
	if slowCost < 5*fastCost {
		t.Fatalf("no cliff: fast %v, slow %v", fastCost, slowCost)
	}
}

// TestBlockCacheCliff: a block transfer beyond the per-node cache pays the
// slow bandwidth for the excess.
func TestBlockCacheCliff(t *testing.T) {
	prof := vtime.Paragon()
	d := newDisk(prof)
	within := d.streamCost(prof.BlockCache, true)
	beyond := d.streamCost(prof.BlockCache+1<<20, true)
	// Reads never pay the write-cache cliff.
	readCost := d.streamCost(prof.BlockCache+1<<20, false)
	if want := vtime.TransferTime(prof.BlockCache+1<<20, prof.DiskFastBW); readCost != want {
		t.Fatalf("read stream cost %v, want fast-only %v", readCost, want)
	}
	excess := beyond - within
	wantExcess := float64(1<<20) / prof.DiskSlowBW
	if excess < wantExcess*0.99 || excess > wantExcess*1.01 {
		t.Fatalf("cache-excess cost %v, want ~%v", excess, wantExcess)
	}
}

func TestInjectFaultPropagates(t *testing.T) {
	fs := NewMemFS(testProfile())
	if err := fs.InjectFault("f", 0); err != nil {
		t.Fatal(err)
	}
	var c vtime.Clock
	h, err := fs.Open("f", 1, 0, &c, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if _, err := h.ParallelAppend([]byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("parallel err = %v, want injected", err)
	}
}

func TestImageAndNames(t *testing.T) {
	fs := NewMemFS(testProfile())
	var c vtime.Clock
	h, _ := fs.Open("b-file", 1, 0, &c, true)
	h.WriteAt([]byte("z"), 0)
	h.Close()
	h2, _ := fs.Open("a-file", 1, 0, &c, true)
	h2.Close()
	names := fs.Names()
	if len(names) != 2 || names[0] != "a-file" || names[1] != "b-file" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := fs.Image("missing"); err == nil {
		t.Fatal("Image of missing file succeeded")
	}
	img, err := fs.Image("b-file")
	if err != nil || string(img) != "z" {
		t.Fatalf("Image = %q, %v", img, err)
	}
}

// Property: MemBackend matches a plain map-of-bytes model under random
// write scripts.
func TestMemBackendModelQuick(t *testing.T) {
	f := func(ops []struct {
		Data []byte
		Off  uint16
	}) bool {
		m := NewMemBackend()
		model := map[int64]byte{}
		var maxEnd int64
		for _, op := range ops {
			off := int64(op.Off)
			if _, err := m.WriteAt(op.Data, off); err != nil {
				return false
			}
			for i, b := range op.Data {
				model[off+int64(i)] = b
			}
			// Zero-length writes do not extend the file (pwrite semantics).
			if end := off + int64(len(op.Data)); len(op.Data) > 0 && end > maxEnd {
				maxEnd = end
			}
		}
		if m.Size() != maxEnd {
			return false
		}
		if maxEnd == 0 {
			return true
		}
		img := make([]byte, maxEnd)
		if _, err := m.ReadAt(img, 0); err != nil && err != io.EOF {
			return false
		}
		for i := int64(0); i < maxEnd; i++ {
			if img[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOSFactorySanitizesNames(t *testing.T) {
	dir := t.TempDir()
	fac := OSFactory(dir)
	b, err := fac("../escape/attempt")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 entry in dir, got %d", len(entries))
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); !os.IsNotExist(err) {
		t.Fatal("factory escaped the sandbox directory")
	}
}

// TestManyFilesAndReopenCycles: files are independent; handles can cycle
// open/close without losing images or leaking rendezvous state.
func TestManyFilesAndReopenCycles(t *testing.T) {
	fs := NewMemFS(testProfile())
	const n = 2
	spmdFS(t, fs, n, func(rank int, clock *vtime.Clock) error {
		for cycle := 0; cycle < 5; cycle++ {
			for _, name := range []string{"a", "b", "c"} {
				h, err := fs.Open(name, n, rank, clock, cycle == 0)
				if err != nil {
					return err
				}
				if _, err := h.ParallelAppend([]byte{byte('0' + cycle), byte('a' + rank)}); err != nil {
					return err
				}
				if err := h.Close(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	for _, name := range []string{"a", "b", "c"} {
		img, err := fs.Image(name)
		if err != nil {
			t.Fatal(err)
		}
		want := "0a0b1a1b2a2b3a3b4a4b"
		if string(img) != want {
			t.Fatalf("%s image %q, want %q", name, img, want)
		}
	}
	if got := len(fs.Names()); got != 3 {
		t.Fatalf("Names() has %d entries", got)
	}
}

// TestIndependentOpTotalDeterministic: on the 1-channel paragon disk, the
// makespan of a flood of independent ops equals the serialized sum of their
// costs regardless of goroutine interleaving (run-to-run determinism of the
// benchmark metric).
func TestIndependentOpTotalDeterministic(t *testing.T) {
	prof := vtime.Paragon()
	elapsed := func() float64 {
		fs := NewMemFS(prof)
		times := spmdFS(t, fs, 4, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("flood", 4, rank, clock, rank == 0)
			if err != nil {
				return err
			}
			defer h.Close()
			for i := 0; i < 50; i++ {
				if err := h.WriteAt(make([]byte, 64), int64(rank*50+i)*64); err != nil {
					return err
				}
			}
			return nil
		})
		return vtime.MaxOf(times)
	}
	a, b := elapsed(), elapsed()
	if a != b {
		t.Fatalf("flood makespan varies: %v vs %v", a, b)
	}
}
