package pfs

import (
	"sync"

	"pcxxstreams/internal/vtime"
)

// disk models the timing behaviour of the storage subsystem behind one
// file: a set of I/O channels (Paragon PFS: effectively one, node-order
// serialized; SGI Challenge: one per CPU up to the bus limit), each with a
// "free at" horizon in virtual time.
//
// Two timing laws, calibrated against the paper's tables:
//
//   - Small independent operations (the unbuffered baseline) pay IOOpLatency
//     per call while the file region being touched still fits the OS write
//     cache (offset < SlowOffset) and IOOpSlow once past it — reproducing
//     the Paragon cliff between the 2.8 MB and 5.6 MB points of Tables 1-2.
//
//   - Block transfers stream at DiskFastBW for the portion of a node's block
//     that fits the per-node write cache (BlockCache) and at DiskSlowBW
//     beyond — reproducing the manual-buffering cliff when per-node blocks
//     outgrow the cache (11.2 MB on 4 processors vs 8 in Tables 1-2).
type disk struct {
	mu       sync.Mutex
	prof     vtime.Profile
	chanFree []float64
}

func newDisk(prof vtime.Profile) *disk {
	c := prof.IOChannels
	if c <= 0 {
		c = 1
	}
	return &disk{prof: prof, chanFree: make([]float64, c)}
}

// opCost returns the service time of one I/O call moving n bytes.
// slowEligible marks an op that falls outside the OS cache: for writes,
// the target offset is past the cache horizon; for reads, the whole file
// no longer fits the cache (after writing a large file, nothing of it is
// still cached, so every small read seeks). The write-cache bandwidth
// cliff applies to writes only.
func (d *disk) opCost(n int64, write, slowEligible bool) float64 {
	p := &d.prof
	lat := p.IOOpLatency
	if n <= p.SmallOp && slowEligible {
		lat = p.IOOpSlow
	}
	return lat + d.streamCost(n, write)
}

// streamCost is the bandwidth term: the part of a written block within the
// per-node write cache streams fast, the remainder at raw disk speed;
// reads always stream at the fast rate.
func (d *disk) streamCost(n int64, write bool) float64 {
	p := &d.prof
	fast := n
	var slow int64
	if write && p.BlockCache > 0 && n > p.BlockCache {
		fast = p.BlockCache
		slow = n - p.BlockCache
	}
	return vtime.TransferTime(fast, p.DiskFastBW) + vtime.TransferTime(slow, p.DiskSlowBW)
}

// submit services one independent operation issued by rank at virtual time
// arrival, moving n bytes at offset off, and returns its completion time.
// Each rank is pinned to channel rank % C, so timing is deterministic per
// rank; ranks sharing a channel serialize, which is how the single-channel
// Paragon profile makes total unbuffered time depend on total operation
// count rather than on the processor count (Tables 1 vs 2).
func (d *disk) submit(rank int, arrival float64, n int64, write, slowEligible bool) float64 {
	cost := d.opCost(n, write, slowEligible)
	ch := rank % len(d.chanFree)
	d.mu.Lock()
	defer d.mu.Unlock()
	start := vtime.Max(arrival, d.chanFree[ch])
	end := start + cost
	d.chanFree[ch] = end
	return end
}

// parallel services a synchronized node-order transfer: every node
// contributes a block of sizes[rank] bytes; all nodes block until the whole
// operation completes, and all leave at the same completion time.
//
// The cost law: start at the latest arrival, pay the per-node serialized
// control cost (SerialPerOp × nprocs), then the blocks are dealt to the
// channels by rank and the op takes the heaviest channel's total streaming
// time. C=1 degenerates to the sum of the blocks (Paragon); C ≥ nprocs to
// the max (Challenge).
func (d *disk) parallel(arrivals []float64, sizes []int64, write bool) float64 {
	start := vtime.MaxOf(arrivals)
	n := len(sizes)
	c := len(d.chanFree)
	load := make([]float64, c)
	for r, sz := range sizes {
		if sz > 0 {
			load[r%c] += d.prof.IOOpLatency + d.streamCost(sz, write)
		}
	}
	opTime := 0.0
	for _, l := range load {
		if l > opTime {
			opTime = l
		}
	}
	end := start + float64(n)*d.prof.SerialPerOp + opTime
	d.mu.Lock()
	for ch := range d.chanFree {
		if end > d.chanFree[ch] {
			d.chanFree[ch] = end
		}
	}
	d.mu.Unlock()
	return end
}

// control services a synchronizing control operation (metadata sync): all
// nodes leave at max(arrivals) + ControlOpLatency.
func (d *disk) control(arrivals []float64) float64 {
	return vtime.MaxOf(arrivals) + d.prof.ControlOpLatency
}
