package pfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"pcxxstreams/internal/vtime"
)

func TestStripedBasicRoundTrip(t *testing.T) {
	s, err := NewStripedMemBackend(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("The quick brown fox jumps over the lazy dog")
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if s.Size() != int64(len(data)) {
		t.Fatalf("Size = %d", s.Size())
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
	// Unaligned sub-reads.
	mid := make([]byte, 13)
	if _, err := s.ReadAt(mid, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, data[7:20]) {
		t.Fatalf("sub-read: %q", mid)
	}
}

func TestStripedActuallyStripes(t *testing.T) {
	children := []Backend{NewMemBackend(), NewMemBackend()}
	s, err := NewStripedBackend(children, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt([]byte("AAAABBBBCCCCDDDD"), 0); err != nil {
		t.Fatal(err)
	}
	// Child 0 gets cells 0 and 2 (AAAA, CCCC); child 1 gets BBBB, DDDD.
	c0 := children[0].(*MemBackend).Bytes()
	c1 := children[1].(*MemBackend).Bytes()
	if string(c0) != "AAAACCCC" {
		t.Fatalf("child 0 = %q", c0)
	}
	if string(c1) != "BBBBDDDD" {
		t.Fatalf("child 1 = %q", c1)
	}
}

func TestStripedValidation(t *testing.T) {
	if _, err := NewStripedBackend(nil, 4); err == nil {
		t.Error("no children accepted")
	}
	if _, err := NewStripedMemBackend(2, 0); err == nil {
		t.Error("zero unit accepted")
	}
	s, _ := NewStripedMemBackend(2, 4)
	if _, err := s.WriteAt([]byte("x"), -1); err == nil {
		t.Error("negative write offset accepted")
	}
	if _, err := s.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative read offset accepted")
	}
	if err := s.Truncate(-1); err == nil {
		t.Error("negative truncate accepted")
	}
}

func TestStripedEOF(t *testing.T) {
	s, _ := NewStripedMemBackend(2, 4)
	s.WriteAt([]byte("abcdef"), 0)
	buf := make([]byte, 10)
	n, err := s.ReadAt(buf, 2)
	if n != 4 || err != io.EOF {
		t.Fatalf("short read = (%d, %v), want (4, EOF)", n, err)
	}
	if _, err := s.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past end: %v", err)
	}
}

func TestStripedTruncate(t *testing.T) {
	s, _ := NewStripedMemBackend(3, 2)
	s.WriteAt([]byte("0123456789"), 0)
	if err := s.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("Size = %d", s.Size())
	}
	// Regrow: the tail must be zeros, not stale digits.
	if err := s.Truncate(10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := s.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("after shrink+grow: %q", buf)
	}
}

// TestStripedMatchesFlatModel: representative write scripts produce the
// same image on a striped backend as on a flat one.
func TestStripedMatchesFlatModel(t *testing.T) {
	type op struct {
		data []byte
		off  int64
	}
	scripts := [][]op{
		{{[]byte("hello"), 0}, {[]byte("world"), 3}},
		{{[]byte("a"), 100}, {[]byte("bb"), 0}, {[]byte("c"), 50}},
		{{bytes.Repeat([]byte{7}, 1000), 13}},
		{{[]byte("x"), 0}, {[]byte("y"), 4095}, {[]byte("z"), 4096}},
	}
	for si, script := range scripts {
		flat := NewMemBackend()
		striped, err := NewStripedMemBackend(4, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range script {
			if _, err := flat.WriteAt(o.data, o.off); err != nil {
				t.Fatal(err)
			}
			if _, err := striped.WriteAt(o.data, o.off); err != nil {
				t.Fatal(err)
			}
		}
		if flat.Size() != striped.Size() {
			t.Fatalf("script %d: sizes %d vs %d", si, flat.Size(), striped.Size())
		}
		a := make([]byte, flat.Size())
		b := make([]byte, striped.Size())
		flat.ReadAt(a, 0)
		striped.ReadAt(b, 0)
		if !bytes.Equal(a, b) {
			t.Fatalf("script %d: images differ", si)
		}
	}
}

// TestStripedQuick: random single-write/read pairs agree with a flat model
// across stripe geometries.
func TestStripedQuick(t *testing.T) {
	fn := func(data []byte, off16 uint16, k8, unit8 uint8) bool {
		off := int64(off16 % 2048)
		k := int(k8)%5 + 1
		unit := int64(unit8)%63 + 1
		flat := NewMemBackend()
		striped, err := NewStripedMemBackend(k, unit)
		if err != nil {
			return false
		}
		flat.WriteAt(data, off)
		striped.WriteAt(data, off)
		if flat.Size() != striped.Size() {
			return false
		}
		if flat.Size() == 0 {
			return true
		}
		a := make([]byte, flat.Size())
		b := make([]byte, striped.Size())
		flat.ReadAt(a, 0)
		striped.ReadAt(b, 0)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestStripedUnderFullPipeline: a machine run writing and reading a
// d/stream over a striped file system behaves identically to the flat one.
func TestStripedUnderFullPipeline(t *testing.T) {
	prof := vtime.Challenge()
	flatFS := NewMemFS(prof)
	stripedFS := NewFileSystem(prof, StripedMemFactory(4, 1024))

	runScript := func(fs *FileSystem) []byte {
		times := spmdFS(t, fs, 3, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("f", 3, rank, clock, true)
			if err != nil {
				return err
			}
			defer h.Close()
			block := bytes.Repeat([]byte{byte('a' + rank)}, 700+rank*13)
			if _, err := h.ParallelAppend(block); err != nil {
				return err
			}
			got, err := h.ParallelRead(Range{Off: 0, Len: 700})
			if err != nil {
				return err
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{'a'}, 700)) {
				return io.ErrUnexpectedEOF
			}
			return nil
		})
		_ = times
		img, err := fs.Image("f")
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	if !bytes.Equal(runScript(flatFS), runScript(stripedFS)) {
		t.Fatal("striped and flat file systems produced different images")
	}
}
