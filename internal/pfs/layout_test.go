package pfs

import (
	"testing"

	"pcxxstreams/internal/vtime"
)

// TestLayoutStriped: a file on a striped store reports its real geometry
// through the resilient wrapper.
func TestLayoutStriped(t *testing.T) {
	fs := NewFileSystem(vtime.Paragon(), StripedMemFactory(4, 1<<20))
	var clk vtime.Clock
	f, err := fs.Open("s", 1, 0, &clk, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := f.Layout()
	if got.StripeFactor != 4 || got.StripeUnit != 1<<20 {
		t.Fatalf("Layout() = %+v, want factor 4 unit 1MB", got)
	}
}

// TestLayoutDefault: a flat backend falls back to the profile's channel
// count and the default stripe unit.
func TestLayoutDefault(t *testing.T) {
	for _, prof := range []vtime.Profile{vtime.Paragon(), vtime.Challenge(), vtime.CM5()} {
		fs := NewMemFS(prof)
		var clk vtime.Clock
		f, err := fs.Open("d", 1, 0, &clk, true)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Layout()
		want := prof.IOChannels
		if want <= 0 {
			want = 1
		}
		if got.StripeFactor != want || got.StripeUnit != DefaultStripeUnit {
			t.Errorf("%s: Layout() = %+v, want factor %d unit %d", prof.Name, got, want, DefaultStripeUnit)
		}
		f.Close()
	}
}

// TestLayoutSurvivesInjectedFault: wrapping a file in a fault injector must
// not panic the geometry query; it may degrade to the default.
func TestLayoutSurvivesInjectedFault(t *testing.T) {
	fs := NewFileSystem(vtime.Paragon(), StripedMemFactory(2, 64<<10))
	if err := fs.InjectFault("s", 1000); err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	f, err := fs.Open("s", 1, 0, &clk, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := f.Layout()
	if got.StripeFactor < 1 || got.StripeUnit < 1 {
		t.Fatalf("Layout() degraded to nonsense: %+v", got)
	}
}

// TestLayoutAlignUp covers the boundary arithmetic aggregation plans use.
func TestLayoutAlignUp(t *testing.T) {
	l := Layout{StripeUnit: 64, StripeFactor: 2}
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 64}, {63, 64}, {64, 64}, {65, 128}, {1000, 1024},
	}
	for _, c := range cases {
		if got := l.AlignUp(c.in); got != c.want {
			t.Errorf("AlignUp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := (Layout{}).AlignUp(77); got != 77 {
		t.Errorf("zero-unit AlignUp(77) = %d, want identity", got)
	}
}
