package pfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// FileSystem is one simulated parallel file system instance. Create one per
// machine run; handles from different nodes share the same file images and
// the same disk timing state.
type FileSystem struct {
	mu      sync.Mutex
	prof    vtime.Profile
	factory BackendFactory
	files   map[string]*file

	abort    chan struct{}
	abortErr error

	counters ioCounters
	rec      *trace.Recorder
	met      pfsMetrics
	mon      *dsmon.Monitor
}

// pfsOpMetrics is the dsmon handle set for one operation kind. The zero
// value (all nil) is inert, so unmonitored file systems pay nothing.
type pfsOpMetrics struct {
	ops   *dsmon.Counter
	bytes *dsmon.Counter
	size  *dsmon.Histogram
	dur   *dsmon.Histogram
}

// record accounts one executed operation: count, bytes moved, the
// transfer-size histogram, and the virtual duration from first issue to
// completion.
func (om pfsOpMetrics) record(bytes int64, start, end float64) {
	om.ops.Inc()
	om.bytes.Add(bytes)
	om.size.Observe(float64(bytes))
	om.dur.Observe(end - start)
}

// pfsMetrics holds one handle set per PFS operation kind, plus the
// transient-fault retry counter.
type pfsMetrics struct {
	open, writeAt, readAt, pappend, pread, csync pfsOpMetrics
	retries                                      *dsmon.Counter
}

// SetMonitor attaches the observability layer: per-operation counters and
// the size/duration histograms under the pfs_* families. If the monitor
// traces and no explicit recorder was set, the monitor's recorder also
// becomes the span sink. Call before the machine run starts.
func (fs *FileSystem) SetMonitor(m *dsmon.Monitor) {
	reg := m.Registry()
	mk := func(op string) pfsOpMetrics {
		return pfsOpMetrics{
			ops:   reg.Counter("pfs_ops_total", "file-system operations executed", "op", op),
			bytes: reg.Counter("pfs_io_bytes_total", "bytes moved, whole-group total per collective op", "op", op),
			size: reg.Histogram("pfs_io_size_bytes",
				"bytes moved per operation (whole group for collective ops)", dsmon.SizeBuckets, "op", op),
			dur: reg.Histogram("pfs_op_seconds",
				"virtual seconds from first arrival to completion", dsmon.LatencyBuckets, "op", op),
		}
	}
	fs.met = pfsMetrics{
		open:    mk("open"),
		writeAt: mk("write_at"),
		readAt:  mk("read_at"),
		pappend: mk("parallel_append"),
		pread:   mk("parallel_read"),
		csync:   mk("control_sync"),
		retries: reg.Counter("pfs_io_retries_total",
			"backend operations re-issued after a transient storage fault or short transfer"),
	}
	if r := m.Recorder(); r != nil && fs.rec == nil {
		fs.rec = r
	}
	// Backends with their own instruments (e.g. the striped backend's
	// fan-out histogram) bind to the same registry, existing and future.
	fs.mu.Lock()
	fs.mon = m
	for _, f := range fs.files {
		attachBackendMonitor(f.b, m)
	}
	fs.mu.Unlock()
}

// attachBackendMonitor hands the monitor to any backend layer that wants
// instruments of its own (the striped backend's fan-out histogram). The
// resilient wrapper forwards the call to whatever it wraps.
func attachBackendMonitor(b Backend, m *dsmon.Monitor) {
	if mb, ok := b.(interface{ SetMonitor(*dsmon.Monitor) }); ok {
		mb.SetMonitor(m)
	}
}

// NewFileSystem builds a file system with the given cost profile and
// storage factory.
func NewFileSystem(prof vtime.Profile, factory BackendFactory) *FileSystem {
	return &FileSystem{
		prof:    prof,
		factory: factory,
		files:   make(map[string]*file),
		abort:   make(chan struct{}),
	}
}

// ResetAbort re-arms a file system whose previous machine run was aborted,
// so a later run (e.g. a restart after a simulated crash) can use the same
// file images. It also clears rendezvous state left behind by nodes that
// died mid-collective. A FileSystem supports one machine run at a time;
// the machine runner calls this at the start of each run.
func (fs *FileSystem) ResetAbort() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	select {
	case <-fs.abort:
		fs.abort = make(chan struct{})
		fs.abortErr = nil
		for _, f := range fs.files {
			f.mu.Lock()
			f.rdvs = make(map[uint64]*rendezvous)
			f.refs = 0
			f.mayTrunc = true
			f.mu.Unlock()
		}
	default:
	}
}

// Abort wakes every node blocked in a collective file operation with err.
// The machine runner calls it when a node fails, so surviving nodes cannot
// deadlock waiting for a peer that will never arrive at the rendezvous.
func (fs *FileSystem) Abort(err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	select {
	case <-fs.abort:
	default:
		if err == nil {
			err = fmt.Errorf("pfs: aborted")
		}
		fs.abortErr = err
		close(fs.abort)
	}
}

// NewMemFS is shorthand for an in-memory file system.
func NewMemFS(prof vtime.Profile) *FileSystem {
	return NewFileSystem(prof, MemFactory())
}

// Profile returns the cost profile of the file system.
func (fs *FileSystem) Profile() vtime.Profile { return fs.prof }

// SetRecorder attaches a trace recorder; every subsequent I/O operation
// records its virtual interval. Set before a machine run starts; nil
// disables tracing.
func (fs *FileSystem) SetRecorder(r *trace.Recorder) { fs.rec = r }

// file is the shared per-name state.
type file struct {
	mu   sync.Mutex
	name string
	b    Backend
	d    *disk
	refs int
	// mayTrunc guards truncate-on-open: a fresh open generation (no opens
	// since the refcount last reached zero) may truncate exactly once, so a
	// node opening late cannot wipe data an early opener already wrote.
	mayTrunc bool
	rdvs     map[uint64]*rendezvous
}

// rendezvous synchronizes one collective operation across the group. The
// last arrival executes the operation; everyone leaves with the same
// completion time.
type rendezvous struct {
	arrived    int
	arrivals   []float64
	blocks     [][]byte
	ranges     []Range
	done       chan struct{}
	completion float64
	offsets    []int64
	data       [][]byte
	dsts       [][]byte
	err        error
}

// Range is one node's contribution to a ParallelRead: read Len bytes at Off.
type Range struct {
	Off int64
	Len int
}

// File is one node's handle on a parallel file. Methods must be called only
// from the owning node's goroutine; collective methods must be called by
// every node of the group in the same order.
type File struct {
	fs     *FileSystem
	f      *file
	rank   int
	nprocs int
	clock  *vtime.Clock
	seq    uint64
	closed bool
	// lastAsync is the span ID of the background-disk half of this rank's
	// most recent asynchronous collective (0 when not tracing). Consumers
	// that later wait on the completion (dstream's Drain, a prefetch hit)
	// read it to link their wait span to the I/O that satisfied it.
	lastAsync trace.SpanID
}

// LastAsyncSpan returns the span ID of the most recent asynchronous
// collective's background-disk interval on this handle, 0 when the file
// system is not tracing or no async collective has run yet.
func (h *File) LastAsyncSpan() trace.SpanID { return h.lastAsync }

// Open returns rank's handle on the named file in a group of nprocs nodes,
// charging the platform's open latency. If trunc is true the file image is
// cleared by the first opener of the current open generation.
func (fs *FileSystem) Open(name string, nprocs, rank int, clock *vtime.Clock, trunc bool) (*File, error) {
	if nprocs <= 0 || rank < 0 || rank >= nprocs {
		return nil, fmt.Errorf("pfs: open %q: bad rank %d of %d", name, rank, nprocs)
	}
	fs.mu.Lock()
	f, ok := fs.files[name]
	if !ok {
		b, err := fs.factory(name)
		if err != nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("pfs: open %q: %w", name, err)
		}
		f = &file{name: name, b: &resilientBackend{Backend: b, fs: fs}, d: newDisk(fs.prof), mayTrunc: true, rdvs: make(map[uint64]*rendezvous)}
		if fs.mon != nil {
			attachBackendMonitor(f.b, fs.mon)
		}
		fs.files[name] = f
	}
	fs.mu.Unlock()

	f.mu.Lock()
	if trunc && f.mayTrunc {
		if err := f.b.Truncate(0); err != nil {
			f.mu.Unlock()
			return nil, fmt.Errorf("pfs: truncate %q: %w", name, err)
		}
	}
	f.mayTrunc = false
	f.refs++
	f.mu.Unlock()

	start := clock.Now()
	clock.Advance(fs.prof.OpenLatency)
	fs.counters.opens.Add(1)
	fs.met.open.record(0, start, clock.Now())
	return &File{fs: fs, f: f, rank: rank, nprocs: nprocs, clock: clock}, nil
}

// InjectFault wraps the named file's backend so that I/O fails after
// failAfter further operations. Test hook; creates the file if absent.
func (fs *FileSystem) InjectFault(name string, failAfter int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		b, err := fs.factory(name)
		if err != nil {
			return err
		}
		f = &file{name: name, b: &resilientBackend{Backend: b, fs: fs}, d: newDisk(fs.prof), mayTrunc: true, rdvs: make(map[uint64]*rendezvous)}
		if fs.mon != nil {
			attachBackendMonitor(f.b, fs.mon)
		}
		fs.files[name] = f
	}
	f.mu.Lock()
	f.b = NewFaultyBackend(f.b, failAfter)
	f.mu.Unlock()
	return nil
}

// Rank returns the handle's rank.
func (h *File) Rank() int { return h.rank }

// Name returns the file's name.
func (h *File) Name() string { return h.f.name }

// Size returns the current file image size in bytes (no time charged; the
// library uses it only for bookkeeping it would otherwise carry in memory).
func (h *File) Size() int64 { return h.f.b.Size() }

// WriteAt is an independent (non-collective) write of p at off, the
// operating-system primitive of the paper's unbuffered baseline.
func (h *File) WriteAt(p []byte, off int64) error {
	if h.closed {
		return fmt.Errorf("pfs: write on closed handle %q", h.f.name)
	}
	if _, err := h.f.b.WriteAt(p, off); err != nil {
		return fmt.Errorf("pfs: write %q at %d: %w", h.f.name, off, err)
	}
	slow := off >= h.fs.prof.SlowOffset
	start := h.clock.Now()
	h.clock.SyncTo(h.f.d.submit(h.rank, start, int64(len(p)), true, slow))
	h.fs.rec.Add(h.rank, "io", "WriteAt "+h.f.name, start, h.clock.Now())
	h.fs.counters.independentWrites.Add(1)
	h.fs.counters.bytesWritten.Add(int64(len(p)))
	h.fs.met.writeAt.record(int64(len(p)), start, h.clock.Now())
	return nil
}

// ReadAt is an independent read of len(p) bytes at off.
func (h *File) ReadAt(p []byte, off int64) error {
	if h.closed {
		return fmt.Errorf("pfs: read on closed handle %q", h.f.name)
	}
	if _, err := io.ReadFull(io.NewSectionReader(h.f.b, off, int64(len(p))), p); err != nil {
		return fmt.Errorf("pfs: read %q at %d: %w", h.f.name, off, err)
	}
	// A small read of a file larger than the OS cache seeks no matter where
	// it lands — after writing such a file, none of it is still cached.
	slow := h.f.b.Size() >= h.fs.prof.SlowOffset
	start := h.clock.Now()
	h.clock.SyncTo(h.f.d.submit(h.rank, start, int64(len(p)), false, slow))
	h.fs.rec.Add(h.rank, "io", "ReadAt "+h.f.name, start, h.clock.Now())
	h.fs.counters.independentReads.Add(1)
	h.fs.counters.bytesRead.Add(int64(len(p)))
	h.fs.met.readAt.record(int64(len(p)), start, h.clock.Now())
	return nil
}

// ReadAtAsync is the read-ahead variant of ReadAt: the bytes are available
// in p and the disk channel is busy until the returned completion time, but
// the caller's clock does not advance — the transfer overlaps computation.
// Callers must SyncTo the completion time before consuming p.
func (h *File) ReadAtAsync(p []byte, off int64) (completion float64, err error) {
	if h.closed {
		return 0, fmt.Errorf("pfs: read on closed handle %q", h.f.name)
	}
	if _, err := io.ReadFull(io.NewSectionReader(h.f.b, off, int64(len(p))), p); err != nil {
		return 0, fmt.Errorf("pfs: read %q at %d: %w", h.f.name, off, err)
	}
	slow := h.f.b.Size() >= h.fs.prof.SlowOffset
	start := h.clock.Now()
	completion = h.f.d.submit(h.rank, start, int64(len(p)), false, slow)
	h.fs.rec.Add(h.rank, "io", "ReadAtAsync "+h.f.name, start, completion)
	h.fs.counters.independentReads.Add(1)
	h.fs.counters.bytesRead.Add(int64(len(p)))
	h.fs.met.readAt.record(int64(len(p)), start, completion)
	return completion, nil
}

// Close drops the handle. The underlying image persists in the file system
// so it can be reopened (e.g. written by an oStream, read back by an
// iStream).
func (h *File) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	h.f.mu.Lock()
	h.f.refs--
	if h.f.refs == 0 {
		h.f.mayTrunc = true // next open generation may truncate again
	}
	h.f.mu.Unlock()
	return nil
}

// collect runs one rendezvous step: the last arrival executes exec (with
// the file lock released) and publishes the result. When syncClock is
// false the caller's virtual clock is NOT advanced to the operation's
// completion time — the asynchronous (write-behind) mode, where the disk
// works in the background while the node computes; the disk's channel
// horizon still moves, so later operations queue behind this one.
func (h *File) collect(syncClock bool, fill func(r *rendezvous), exec func(r *rendezvous)) (*rendezvous, error) {
	return h.collectNamed("collective "+h.f.name, syncClock, fill, exec)
}

func (h *File) collectNamed(name string, syncClock bool, fill func(r *rendezvous), exec func(r *rendezvous)) (*rendezvous, error) {
	if h.closed {
		return nil, fmt.Errorf("pfs: collective op on closed handle %q", h.f.name)
	}
	arrival := h.clock.Now()
	h.seq++
	f := h.f
	f.mu.Lock()
	r, ok := f.rdvs[h.seq]
	if !ok {
		r = &rendezvous{
			arrivals: make([]float64, h.nprocs),
			blocks:   make([][]byte, h.nprocs),
			ranges:   make([]Range, h.nprocs),
			offsets:  make([]int64, h.nprocs),
			data:     make([][]byte, h.nprocs),
			dsts:     make([][]byte, h.nprocs),
			done:     make(chan struct{}),
		}
		f.rdvs[h.seq] = r
	}
	r.arrivals[h.rank] = h.clock.Now()
	fill(r)
	r.arrived++
	last := r.arrived == h.nprocs
	if last {
		delete(f.rdvs, h.seq)
	}
	f.mu.Unlock()

	if last {
		exec(r)
		close(r.done)
	} else {
		select {
		case <-r.done:
		case <-h.fs.abort:
			return nil, fmt.Errorf("pfs: collective on %q aborted: %w", f.name, h.fs.abortErr)
		}
	}
	if syncClock {
		h.clock.SyncTo(r.completion)
		h.fs.rec.Add(h.rank, "collective", name, arrival, r.completion)
	} else {
		// Still a rendezvous: nobody leaves before the last arrival (the
		// group must agree on the file layout), but the transfer itself
		// proceeds in the background.
		h.clock.SyncTo(vtime.MaxOf(r.arrivals))
		if rec := h.fs.rec; rec != nil {
			// Async mode splits the event into the foreground issue
			// (rendezvous) interval and the background disk interval, with
			// an issue→completion edge between them; the disk span ID is
			// kept on the handle so whoever later waits on the completion
			// can link their stall to this I/O.
			leave := h.clock.Now()
			issue := rec.AddSpan(h.rank, "collective", name, arrival, leave)
			disk := rec.AddSpan(h.rank, "io", name+" (async)", leave, r.completion)
			rec.AddFlow(issue, disk, "async-io")
			h.lastAsync = disk
		}
	}
	return r, r.err
}

// ParallelAppend is the synchronized node-order append of the Paragon PFS:
// every node contributes a block (possibly empty); the blocks are written
// contiguously in rank order at the end of the file. It returns the file
// offset at which the caller's block landed. All nodes leave at the same
// virtual time.
func (h *File) ParallelAppend(block []byte) (int64, error) {
	off, _, err := h.parallelAppend(block, true)
	return off, err
}

// ParallelAppendAsync is the write-behind variant of ParallelAppend: the
// blocks land in the file and the disk is busy until the returned
// completion time, but the caller's clock only advances to the rendezvous
// point — computation overlaps the transfer. Callers must eventually
// SyncTo the completion time (an output stream does this at Close).
func (h *File) ParallelAppendAsync(block []byte) (off int64, completion float64, err error) {
	return h.parallelAppend(block, false)
}

func (h *File) parallelAppend(block []byte, syncClock bool) (int64, float64, error) {
	r, err := h.collectNamed("ParallelAppend "+h.f.name, syncClock,
		func(r *rendezvous) { r.blocks[h.rank] = block },
		func(r *rendezvous) {
			sizes := make([]int64, h.nprocs)
			base := h.f.b.Size()
			off := base
			for i, b := range r.blocks {
				sizes[i] = int64(len(b))
				r.offsets[i] = off
				off += int64(len(b))
			}
			for i, b := range r.blocks {
				if len(b) == 0 {
					continue
				}
				if _, werr := h.f.b.WriteAt(b, r.offsets[i]); werr != nil {
					r.err = fmt.Errorf("pfs: parallel append %q: %w", h.f.name, werr)
					break
				}
			}
			r.completion = h.f.d.parallel(r.arrivals, sizes, true)
			var total int64
			for _, sz := range sizes {
				total += sz
			}
			h.fs.counters.parallelAppends.Add(1)
			h.fs.counters.bytesWritten.Add(total)
			h.fs.met.pappend.record(total, minOf(r.arrivals), r.completion)
		},
	)
	if err != nil {
		return 0, 0, err
	}
	return r.offsets[h.rank], r.completion, nil
}

// ParallelRead is the synchronized parallel read: every node supplies the
// byte range it needs (possibly empty) and receives that range. All nodes
// leave at the same virtual time. The returned buffer is pool-backed and
// owned by the caller (bufpool.Put when done is optional).
func (h *File) ParallelRead(rg Range) ([]byte, error) {
	b, _, err := h.parallelReadInto(rg, nil, true)
	return b, err
}

// ParallelReadInto is ParallelRead reading into the caller's buffer: when
// cap(dst) covers the range, dst[:rg.Len] is filled and returned and the
// steady state allocates nothing; otherwise (including dst == nil) a
// pool-backed buffer is returned. Each rank's dst serves only its own range.
func (h *File) ParallelReadInto(rg Range, dst []byte) ([]byte, error) {
	b, _, err := h.parallelReadInto(rg, dst, true)
	return b, err
}

// ParallelReadAsync is the read-ahead variant of ParallelRead: the data is
// available in the returned buffer and the disk is busy until the returned
// completion time, but the caller's clock only advances to the rendezvous
// point — the transfer overlaps whatever the node computes next. Callers
// must SyncTo the completion time before consuming the bytes (an input
// stream does this when the prefetched record is read).
func (h *File) ParallelReadAsync(rg Range) (data []byte, completion float64, err error) {
	return h.parallelReadInto(rg, nil, false)
}

// ParallelReadIntoAsync is ParallelReadAsync reading into the caller's
// buffer, with ParallelReadInto's reuse contract.
func (h *File) ParallelReadIntoAsync(rg Range, dst []byte) (data []byte, completion float64, err error) {
	return h.parallelReadInto(rg, dst, false)
}

func (h *File) parallelReadInto(rg Range, dst []byte, syncClock bool) ([]byte, float64, error) {
	r, err := h.collectNamed("ParallelRead "+h.f.name, syncClock,
		func(r *rendezvous) {
			r.ranges[h.rank] = rg
			r.dsts[h.rank] = dst
		},
		func(r *rendezvous) {
			sizes := make([]int64, h.nprocs)
			for i, g := range r.ranges {
				sizes[i] = int64(g.Len)
			}
			for i, g := range r.ranges {
				if g.Len == 0 {
					continue
				}
				buf := r.dsts[i]
				if cap(buf) >= g.Len {
					buf = buf[:g.Len]
				} else {
					buf = bufpool.Get(g.Len)
				}
				if _, rerr := io.ReadFull(io.NewSectionReader(h.f.b, g.Off, int64(g.Len)), buf); rerr != nil {
					r.err = fmt.Errorf("pfs: parallel read %q [%d,+%d): %w", h.f.name, g.Off, g.Len, rerr)
					break
				}
				r.data[i] = buf
			}
			r.completion = h.f.d.parallel(r.arrivals, sizes, false)
			var total int64
			for _, sz := range sizes {
				total += sz
			}
			h.fs.counters.parallelReads.Add(1)
			h.fs.counters.bytesRead.Add(total)
			h.fs.met.pread.record(total, minOf(r.arrivals), r.completion)
		},
	)
	if err != nil {
		return nil, 0, err
	}
	return r.data[h.rank], r.completion, nil
}

// ControlSync is a synchronizing metadata operation (the gopen/eseek-style
// control calls of the Paragon PFS): all nodes rendezvous and leave at
// max(arrival) + ControlOpLatency.
func (h *File) ControlSync() error {
	_, err := h.collectNamed("ControlSync "+h.f.name, true,
		func(*rendezvous) {},
		func(r *rendezvous) {
			r.completion = h.f.d.control(r.arrivals)
			h.fs.counters.controlSyncs.Add(1)
			h.fs.met.csync.record(0, minOf(r.arrivals), r.completion)
		},
	)
	return err
}

// minOf returns the earliest of a non-empty slice of arrival times — the
// start of a collective operation's span for the duration histograms.
func minOf(ts []float64) float64 {
	m := ts[0]
	for _, t := range ts[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// Image returns a copy of the full current file image (tools/tests).
func (fs *FileSystem) Image(name string) ([]byte, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pfs: no such file %q", name)
	}
	sz := f.b.Size()
	buf := make([]byte, sz)
	if sz == 0 {
		return buf, nil
	}
	if _, err := f.b.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// Names lists the files present, sorted (tools/tests).
func (fs *FileSystem) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close closes every backend.
func (fs *FileSystem) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	for _, f := range fs.files {
		if err := f.b.Close(); err != nil && first == nil {
			first = err
		}
	}
	fs.files = make(map[string]*file)
	return first
}
