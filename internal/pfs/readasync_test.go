package pfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/vtime"
)

// TestParallelReadAsyncCompletion: the async collective read returns the
// same bytes as the synchronous one, immediately in real time, with a
// virtual completion at or after the call — and a rank that syncs to the
// completion ends up exactly where the synchronous reader would have.
func TestParallelReadAsyncCompletion(t *testing.T) {
	prof := testProfile()
	write := func(fs *FileSystem) {
		spmdFS(t, fs, 3, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("f", 3, rank, clock, true)
			if err != nil {
				return err
			}
			defer h.Close()
			_, err = h.ParallelAppend(bytes.Repeat([]byte{byte('a' + rank)}, 512))
			return err
		})
	}
	syncFS, asyncFS := NewMemFS(prof), NewMemFS(prof)
	write(syncFS)
	write(asyncFS)

	var syncTimes, asyncTimes []float64
	var syncData, asyncData [][]byte
	collect := func(fs *FileSystem, async bool) ([]float64, [][]byte) {
		data := make([][]byte, 3)
		times := spmdFS(t, fs, 3, func(rank int, clock *vtime.Clock) error {
			h, err := fs.Open("f", 3, rank, clock, false)
			if err != nil {
				return err
			}
			defer h.Close()
			rg := Range{Off: int64(rank) * 512, Len: 512}
			if async {
				got, completion, err := h.ParallelReadAsync(rg)
				if err != nil {
					return err
				}
				if completion < clock.Now() {
					return fmt.Errorf("completion %f before issue-side clock %f", completion, clock.Now())
				}
				data[rank] = got
				clock.SyncTo(completion)
				return nil
			}
			got, err := h.ParallelRead(rg)
			data[rank] = got
			return err
		})
		return times, data
	}
	syncTimes, syncData = collect(syncFS, false)
	asyncTimes, asyncData = collect(asyncFS, true)
	for r := 0; r < 3; r++ {
		if !bytes.Equal(syncData[r], asyncData[r]) {
			t.Errorf("rank %d: async bytes differ from sync", r)
		}
		if want := bytes.Repeat([]byte{byte('a' + r)}, 512); !bytes.Equal(asyncData[r], want) {
			t.Errorf("rank %d: wrong bytes", r)
		}
		if syncTimes[r] != asyncTimes[r] {
			t.Errorf("rank %d: sync-then-SyncTo clock %f != synchronous read clock %f",
				r, asyncTimes[r], syncTimes[r])
		}
	}
}

// TestReadAtAsync: the independent async read moves the bytes immediately
// and returns a completion the caller settles later, matching the
// synchronous ReadAt's final clock.
func TestReadAtAsync(t *testing.T) {
	prof := testProfile()
	fs := NewMemFS(prof)
	spmdFS(t, fs, 1, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", 1, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		if _, err := h.ParallelAppend(bytes.Repeat([]byte{7}, 256)); err != nil {
			return err
		}
		buf := make([]byte, 100)
		completion, err := h.ReadAtAsync(buf, 50)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{7}, 100)) {
			return fmt.Errorf("async bytes not delivered immediately")
		}
		if completion <= clock.Now() {
			return fmt.Errorf("completion %f not after issue time %f", completion, clock.Now())
		}
		// Reading past EOF is an error, same as ReadAt.
		if _, err := h.ReadAtAsync(buf, 250); err == nil {
			return fmt.Errorf("read past EOF succeeded")
		}
		return nil
	})
}

// TestStripedFanoutConcurrent: many goroutines hammer one striped backend
// with overlapping multi-cell reads and disjoint writes; under -race this
// is the fan-out's data-race certificate, and the final image must match a
// flat reference.
func TestStripedFanoutConcurrent(t *testing.T) {
	const workers, span = 8, 1 << 15
	flat := NewMemBackend()
	striped, err := NewStripedMemBackend(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	pattern := func(w int) []byte {
		b := make([]byte, span/workers)
		for i := range b {
			b[i] = byte(w*31 + i)
		}
		return b
	}
	for _, b := range []Backend{flat, striped} {
		b := b
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				data := pattern(w)
				off := int64(w * len(data))
				if _, err := b.WriteAt(data, off); err != nil {
					t.Error(err)
					return
				}
				// Overlapping wide reads race only against the (disjoint)
				// writers; content is checked after the barrier.
				buf := make([]byte, len(data)*2)
				b.ReadAt(buf, off/2)
			}()
		}
		wg.Wait()
	}
	a := make([]byte, span)
	c := make([]byte, span)
	if _, err := flat.ReadAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := striped.ReadAt(c, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("striped image differs from flat after concurrent fan-out")
	}
}

// TestStripedFanoutErrorWins: a failing child surfaces the error from the
// whole fan-out with zero progress reported, for both directions.
// readFailer passes writes through and fails every read — so a striped
// store can be populated and then exercise the read fan-out's error path.
type readFailer struct{ Backend }

func (r readFailer) ReadAt(p []byte, off int64) (int, error) { return 0, ErrInjected }

func TestStripedFanoutErrorWins(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 64) // 8 cells of 8: all three children involved

	broken := []Backend{NewMemBackend(), NewFaultyBackend(NewMemBackend(), 0), NewMemBackend()}
	s, err := NewStripedBackend(broken, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.WriteAt(data, 0); err == nil || n != 0 {
		t.Fatalf("WriteAt with failing child = (%d, %v), want (0, error)", n, err)
	}

	s2, err := NewStripedBackend([]Backend{NewMemBackend(), readFailer{NewMemBackend()}, NewMemBackend()}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.ReadAt(make([]byte, 64), 0); err == nil || n != 0 {
		t.Fatalf("ReadAt with failing child = (%d, %v), want (0, error)", n, err)
	}
}

// TestStripedFanoutMetric: multi-cell operations on a monitored file system
// observe their concurrent-child width in pfs_stripe_fanout; single-child
// operations do not.
func TestStripedFanoutMetric(t *testing.T) {
	mon := dsmon.New()
	fs := NewFileSystem(testProfile(), StripedMemFactory(4, 16))
	fs.SetMonitor(mon)
	spmdFS(t, fs, 1, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", 1, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		// 64 bytes over unit 16 × 4 children: width 4.
		if _, err := h.ParallelAppend(bytes.Repeat([]byte{1}, 64)); err != nil {
			return err
		}
		// A single-cell read must not observe.
		buf := make([]byte, 8)
		return h.ReadAt(buf, 0)
	})
	hist := mon.Registry().Histogram("pfs_stripe_fanout", "", fanoutBuckets)
	if c := hist.Count(); c == 0 {
		t.Fatal("no fanout observations from a 4-cell append")
	}
	if sum, c := hist.Sum(), hist.Count(); sum/float64(c) < 2 {
		t.Errorf("mean fanout %.1f < 2 over %d observations", sum/float64(c), c)
	}
}

// TestStripedFanoutMonitorLateBind: attaching the monitor after files exist
// still reaches the striped backends through the resilient wrapper.
func TestStripedFanoutMonitorLateBind(t *testing.T) {
	fs := NewFileSystem(testProfile(), StripedMemFactory(3, 16))
	mon := dsmon.New()
	spmdFS(t, fs, 1, func(rank int, clock *vtime.Clock) error {
		h, err := fs.Open("f", 1, rank, clock, true)
		if err != nil {
			return err
		}
		defer h.Close()
		fs.SetMonitor(mon) // late: the file is already open
		_, err = h.ParallelAppend(bytes.Repeat([]byte{1}, 96))
		return err
	})
	if mon.Registry().Histogram("pfs_stripe_fanout", "", fanoutBuckets).Count() == 0 {
		t.Fatal("late-bound monitor saw no fanout observations")
	}
}
