package pfs

import (
	"errors"
	"fmt"
	"io"

	"pcxxstreams/internal/dsmon"
)

// ErrTransient marks a storage fault worth retrying: a short read or write
// that can be resumed, an EINTR-style hiccup, an injected chaos fault.
// Permanent faults (FaultyBackend's ErrInjected, corrupt offsets, genuine
// EOF) do not wrap it and propagate immediately.
var ErrTransient = errors.New("pfs: transient fault")

// IsTransient reports whether err is a retryable storage fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ioMaxAttempts bounds *consecutive zero-progress* attempts: any attempt
// that moves bytes resets the budget, since progress proves the device is
// alive (a chunky-but-healthy backend may legitimately take many short
// transfers to finish one large request). Storage retries carry no
// virtual-time backoff (the disk model already charges transfer time); the
// bound only ensures a permanently-stalled backend surfaces a clean error
// instead of spinning.
const ioMaxAttempts = 8

// retryReadAt reads len(p) bytes at off, resuming after short reads and
// retrying transient faults until ioMaxAttempts consecutive attempts make
// no progress. onRetry (may be nil) is called once per extra attempt.
// Non-transient errors — including a genuine io.EOF — propagate with the
// partial count, preserving the io.ReaderAt contract.
func retryReadAt(r io.ReaderAt, p []byte, off int64, onRetry func()) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	done, stalls := 0, 0
	for {
		n, err := r.ReadAt(p[done:], off+int64(done))
		if n > 0 {
			done += n
			stalls = 0
		} else {
			stalls++
		}
		if done == len(p) {
			return done, nil
		}
		if err != nil && !IsTransient(err) {
			return done, err
		}
		if stalls >= ioMaxAttempts {
			if err == nil {
				err = ErrTransient
			}
			return done, fmt.Errorf("pfs: read at %d: retries exhausted after %d stalled attempts: %w",
				off, stalls, err)
		}
		// Transient fault, or a short read with nil error: re-issue for the
		// remainder. Progress already made is kept.
		if onRetry != nil {
			onRetry()
		}
	}
}

// retryWriteAt writes p at off, resuming after short writes and retrying
// transient faults until ioMaxAttempts consecutive attempts make no
// progress. onRetry (may be nil) is called once per extra attempt.
func retryWriteAt(w io.WriterAt, p []byte, off int64, onRetry func()) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	done, stalls := 0, 0
	for {
		n, err := w.WriteAt(p[done:], off+int64(done))
		if n > 0 {
			done += n
			stalls = 0
		} else {
			stalls++
		}
		if done == len(p) {
			return done, nil
		}
		if err != nil && !IsTransient(err) {
			return done, err
		}
		if stalls >= ioMaxAttempts {
			if err == nil {
				err = ErrTransient
			}
			return done, fmt.Errorf("pfs: write at %d: retries exhausted after %d stalled attempts: %w",
				off, stalls, err)
		}
		if onRetry != nil {
			onRetry()
		}
	}
}

// resilientBackend is the retry layer the file system slips between itself
// and whatever the factory produced. Transient faults (chaos injection,
// short transfers) are absorbed here, so every caller above — independent
// reads/writes, parallel appends, section readers — sees either a complete
// transfer or a clean non-transient error. Note the wrap order with the
// fault injectors: InjectFault's FaultyBackend wraps *outside* this layer,
// so its permanent faults are deliberately not retried, while a chaos
// factory wraps the raw store *inside* it, so its transient faults are.
type resilientBackend struct {
	Backend
	fs *FileSystem
}

func (rb *resilientBackend) ReadAt(p []byte, off int64) (int, error) {
	return retryReadAt(rb.Backend, p, off, rb.fs.countIORetry)
}

func (rb *resilientBackend) WriteAt(p []byte, off int64) (int, error) {
	return retryWriteAt(rb.Backend, p, off, rb.fs.countIORetry)
}

// SetMonitor forwards the observability hookup to the wrapped backend, so
// instrumented backends (the striped fan-out histogram) are reachable
// through the resilient layer the file system always interposes.
func (rb *resilientBackend) SetMonitor(m *dsmon.Monitor) {
	attachBackendMonitor(rb.Backend, m)
}

// countIORetry accounts one storage retry in both the machine-run stats and
// the dsmon registry.
func (fs *FileSystem) countIORetry() {
	fs.counters.ioRetries.Add(1)
	fs.met.retries.Inc()
}
