// Package pfs emulates the parallel file systems of the paper's platforms —
// the Intel Paragon PFS and TMC CM-5 SFS — over pluggable storage backends.
//
// The file system provides two classes of operation:
//
//   - Independent per-node calls (ReadAt/WriteAt), the "operating system
//     I/O primitives" of the paper's unbuffered baseline. They contend for
//     the simulated disk channels.
//
//   - Synchronized parallel operations (ParallelAppend, ParallelRead,
//     ControlSync), in which every compute node participates and blocks
//     until the combined transfer completes, exactly like the Paragon mode
//     the paper describes: "parallel I/O primitives which transfer a
//     contiguous block of data from each compute node to the file system
//     simultaneously and write those blocks to the file in node order."
//
// Data genuinely moves: a MemBackend or OSBackend holds the real file
// image, so checkpoint/restart round-trips are byte-exact. Virtual time is
// layered on top by the disk cost model in disk.go.
package pfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Backend is the raw storage under a simulated parallel file. Implementations
// must be safe for concurrent use.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length of the backing store.
	Size() int64
	// Truncate resizes the backing store.
	Truncate(size int64) error
	// Close releases resources.
	Close() error
}

// BackendFactory opens (creating if needed) the backend for a named file.
type BackendFactory func(name string) (Backend, error)

// MemBackend is an in-memory backend: a growable byte slice.
type MemBackend struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadAt implements io.ReaderAt.
func (m *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the store as needed.
func (m *MemBackend) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	// A zero-length write must not extend the file (pwrite semantics; the
	// OS backend inherits this from the kernel, so the model must match).
	if len(p) == 0 {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		if end <= int64(cap(m.data)) {
			m.data = m.data[:end]
		} else {
			// Grow geometrically: many small sequential writes (the
			// unbuffered baseline does hundreds of thousands) must not
			// reallocate the whole image each time.
			newCap := int64(cap(m.data))*2 + 64
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, m.data)
			m.data = grown
		}
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

// Size implements Backend.
func (m *MemBackend) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// Truncate implements Backend.
func (m *MemBackend) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("pfs: negative truncate %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// Bytes returns a copy of the full file image (for tests and tools).
func (m *MemBackend) Bytes() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}

// OSBackend stores the file image in a real file on the host file system.
type OSBackend struct {
	f *os.File
}

// NewOSBackend opens (creating if needed) path as a backend.
func NewOSBackend(path string) (*OSBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pfs: open backend: %w", err)
	}
	return &OSBackend{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (o *OSBackend) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (o *OSBackend) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

// Size implements Backend.
func (o *OSBackend) Size() int64 {
	fi, err := o.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Truncate implements Backend.
func (o *OSBackend) Truncate(size int64) error { return o.f.Truncate(size) }

// Close implements Backend.
func (o *OSBackend) Close() error { return o.f.Close() }

// MemFactory returns a factory producing fresh in-memory backends.
func MemFactory() BackendFactory {
	return func(string) (Backend, error) { return NewMemBackend(), nil }
}

// OSFactory returns a factory creating file backends under dir. Path
// separators in names are flattened so callers cannot escape dir.
func OSFactory(dir string) BackendFactory {
	return func(name string) (Backend, error) {
		clean := strings.NewReplacer("/", "_", "\\", "_", "..", "_").Replace(name)
		return NewOSBackend(filepath.Join(dir, clean))
	}
}

// ErrInjected is the error returned by FaultyBackend once its budget is
// exhausted; tests use errors.Is against it.
var ErrInjected = errors.New("pfs: injected fault")

// FaultyBackend wraps a backend and fails every I/O after the first
// FailAfter operations — the library's failure-injection hook.
type FaultyBackend struct {
	Backend
	mu        sync.Mutex
	failAfter int
	ops       int
}

// NewFaultyBackend wraps b, allowing failAfter successful I/O operations.
func NewFaultyBackend(b Backend, failAfter int) *FaultyBackend {
	return &FaultyBackend{Backend: b, failAfter: failAfter}
}

func (f *FaultyBackend) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.ops > f.failAfter {
		return fmt.Errorf("%w after %d ops", ErrInjected, f.failAfter)
	}
	return nil
}

// ReadAt fails once the operation budget is exhausted.
func (f *FaultyBackend) ReadAt(p []byte, off int64) (int, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.Backend.ReadAt(p, off)
}

// WriteAt fails once the operation budget is exhausted.
func (f *FaultyBackend) WriteAt(p []byte, off int64) (int, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.Backend.WriteAt(p, off)
}
