package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// stripeEdgeBackends builds a striped backend for each child-backend kind,
// so every edge case runs against both the in-memory model and real files.
func stripeEdgeBackends(t *testing.T, k int, unit int64) map[string]*StripedBackend {
	t.Helper()
	out := make(map[string]*StripedBackend)

	mem, err := NewStripedMemBackend(k, unit)
	if err != nil {
		t.Fatal(err)
	}
	out["mem"] = mem

	dir := t.TempDir()
	children := make([]Backend, k)
	for i := range children {
		b, err := NewOSBackend(fmt.Sprintf("%s/stripe.%d", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		children[i] = b
	}
	osb, err := NewStripedBackend(children, unit)
	if err != nil {
		t.Fatal(err)
	}
	out["os"] = osb
	return out
}

// TestStripedEdgeCases drives the stripe math through its corners: requests
// of zero length, requests that start/end exactly on cell boundaries,
// requests spanning several full cells, and reads that run past EOF — over
// both backend kinds, since the OS path has real short-read behavior the
// memory model lacks.
func TestStripedEdgeCases(t *testing.T) {
	const (
		k    = 3
		unit = int64(8)
	)
	fileLen := int(unit)*k*2 + 5 // two full rounds plus a ragged tail (53)
	img := make([]byte, fileLen)
	for i := range img {
		img[i] = byte(i*7 + 1)
	}

	writes := []struct {
		name     string
		off, n   int
		wantSize int64 // size after this write (cumulative over the table)
	}{
		{"zero-length at zero", 0, 0, 0},
		{"zero-length past end", 9999, 0, 0},
		{"first byte", 0, 1, 1},
		{"exactly one cell", 0, int(unit), unit},
		{"cell-boundary start", int(unit), int(unit), 2 * unit},
		{"spans two cells", int(unit) - 3, 6, 2 * unit},
		{"spans all children", 0, int(unit) * k, unit * k},
		{"whole file", 0, fileLen, int64(fileLen)},
		{"ragged tail rewrite", fileLen - 5, 5, int64(fileLen)},
	}
	reads := []struct {
		name   string
		off, n int
		wantN  int  // bytes expected back
		eof    bool // io.EOF expected
	}{
		{"first byte", 0, 1, 1, false},
		{"exactly one cell", 0, int(unit), int(unit), false},
		{"cell-boundary start", int(unit), int(unit), int(unit), false},
		{"last byte of cell", int(unit) - 1, 1, 1, false},
		{"spans two cells", int(unit) - 3, 6, 6, false},
		{"spans all children", 0, int(unit) * k, int(unit) * k, false},
		{"whole file", 0, fileLen, fileLen, false},
		{"tail exactly to EOF", fileLen - 5, 5, 5, false},
		{"read past EOF", fileLen - 3, 10, 3, true},
		{"read at EOF", fileLen, 4, 0, true},
		{"read far past EOF", fileLen + 100, 4, 0, true},
	}

	for kind, sb := range stripeEdgeBackends(t, k, unit) {
		t.Run(kind, func(t *testing.T) {
			for _, w := range writes {
				var src []byte
				if w.n > 0 {
					src = img[w.off : w.off+w.n]
				}
				n, err := sb.WriteAt(src, int64(w.off))
				if err != nil || n != w.n {
					t.Fatalf("write %q: n=%d err=%v", w.name, n, err)
				}
				if got := sb.Size(); got != w.wantSize {
					t.Fatalf("write %q: size=%d want %d", w.name, got, w.wantSize)
				}
			}
			for _, r := range reads {
				p := make([]byte, r.n)
				n, err := sb.ReadAt(p, int64(r.off))
				if n != r.wantN {
					t.Errorf("read %q: n=%d want %d (err=%v)", r.name, n, r.wantN, err)
				}
				if r.eof && !errors.Is(err, io.EOF) {
					t.Errorf("read %q: err=%v want io.EOF", r.name, err)
				}
				if !r.eof && err != nil {
					t.Errorf("read %q: err=%v", r.name, err)
				}
				if r.off < fileLen && !bytes.Equal(p[:n], img[r.off:r.off+n]) {
					t.Errorf("read %q returned wrong bytes", r.name)
				}
			}
			// Zero-length reads: inside the file they are a clean no-op; the
			// at/past-EOF cases follow the flat backends (EOF).
			if n, err := sb.ReadAt(nil, 0); n != 0 || err != nil {
				t.Errorf("zero-length read inside file: n=%d err=%v", n, err)
			}
			if _, err := sb.ReadAt(nil, int64(fileLen)); !errors.Is(err, io.EOF) {
				t.Errorf("zero-length read at EOF: err=%v want io.EOF", err)
			}
		})
	}
}

// TestStripedNegativeOffsets: both directions reject negative offsets with a
// non-transient error, matching the flat backends.
func TestStripedNegativeOffsets(t *testing.T) {
	sb, err := NewStripedMemBackend(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.WriteAt([]byte("x"), -1); err == nil || IsTransient(err) {
		t.Fatalf("negative write: %v", err)
	}
	if _, err := sb.ReadAt(make([]byte, 1), -1); err == nil || IsTransient(err) {
		t.Fatalf("negative read: %v", err)
	}
}

// TestStripedSparseWriteReadsZeros: writing past the current end leaves a
// hole that reads back as zeros, on every backend kind.
func TestStripedSparseWriteReadsZeros(t *testing.T) {
	for kind, sb := range stripeEdgeBackends(t, 2, 4) {
		t.Run(kind, func(t *testing.T) {
			if _, err := sb.WriteAt([]byte("end"), 21); err != nil {
				t.Fatal(err)
			}
			p := make([]byte, 24)
			n, err := sb.ReadAt(p, 0)
			if err != nil || n != 24 {
				t.Fatalf("read over hole: n=%d err=%v", n, err)
			}
			want := append(bytes.Repeat([]byte{0}, 21), 'e', 'n', 'd')
			if !bytes.Equal(p, want) {
				t.Fatalf("hole read = %q", p)
			}
		})
	}
}
