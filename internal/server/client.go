package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pcxxstreams/internal/pfs"
)

// ErrClientClosed reports use of a client after Close (or after a failed
// reconnect exhausted its budget and broke the session for good).
var ErrClientClosed = errors.New("dstreamd: client closed")

// ClientConfig shapes one client session.
type ClientConfig struct {
	// Tenant is the namespace to authenticate into. Required.
	Tenant string
	// ReconnectBudget is the total real time a broken connection is retried
	// before the session fails permanently with a clean error. Default 15 s.
	ReconnectBudget time.Duration
	// ReconnectPause is the delay between redial attempts. Default 20 ms.
	ReconnectPause time.Duration
	// Token resumes a previous session instead of admitting a new one.
	// Normally left empty; reconnects within one Client resume implicitly.
	Token string
}

// statusError is a permanent server-reported failure, tagged with its wire
// status so callers can errors.Is against the exported sentinels.
type statusError struct {
	status uint8
	msg    string
}

func (e *statusError) Error() string { return e.msg }

func (e *statusError) Is(target error) bool {
	switch e.status {
	case statusQuota:
		return target == ErrQuota
	case statusAuth:
		return target == ErrUnknownTenant
	case statusBusy:
		return target == ErrBusy
	}
	return false
}

// call is one in-flight request: the full frame payload (kept for an
// idempotent resend after reconnect) and the reply channel.
type call struct {
	req  []byte
	done chan reply
}

type reply struct {
	status uint8
	rd     *reader
	err    error // client-side failure (session broken); status invalid
}

// Client is one tenant session with a dstreamd daemon: it multiplexes
// concurrent requests onto a single TCP connection, enforces the granted
// write window client-side, and transparently reconnects — resuming the
// same server-side session by token and resending every in-flight request
// (requests are idempotent by construction, see the package doc).
//
// Clients are safe for concurrent use; a session's streams on many machine
// ranks share one Client.
type Client struct {
	addr string
	cfg  ClientConfig

	window *byteSem // granted write window (client-side credit accounting)
	eager  int      // eager/rendezvous split granted at hello

	mu      sync.Mutex
	conn    net.Conn
	gen     int // bumps on every successful reconnect
	token   string
	quota   int64
	used    int64
	nextID  uint64
	pending map[uint64]*call
	broken  error // non-nil once the session is permanently dead

	wmu sync.Mutex // serializes frame writes to the current conn
}

// Dial connects to a daemon at addr and opens a session for cfg.Tenant.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Tenant == "" {
		return nil, fmt.Errorf("dstreamd: ClientConfig.Tenant is required")
	}
	if cfg.ReconnectBudget <= 0 {
		cfg.ReconnectBudget = 15 * time.Second
	}
	if cfg.ReconnectPause <= 0 {
		cfg.ReconnectPause = 20 * time.Millisecond
	}
	c := &Client{
		addr:    addr,
		cfg:     cfg,
		token:   cfg.Token,
		pending: make(map[uint64]*call),
	}
	conn, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	go c.readLoop(conn, c.gen)
	return c, nil
}

// dialOnce dials and performs the hello handshake on a fresh connection.
// It updates the session grants (token, window, eager split) on success.
func (c *Client) dialOnce() (net.Conn, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	tok := c.token
	c.mu.Unlock()
	req := putU8(putU64(nil, 0), opHello)
	req = putStr(req, c.cfg.Tenant)
	req = putStr(req, tok)
	if err := writeFrame(conn, req); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	r := &reader{b: frame}
	r.u64() // id 0
	status := r.u8()
	if status != statusOK {
		msg := r.str()
		conn.Close()
		return nil, &statusError{status: status, msg: msg}
	}
	token := r.str()
	window := r.i64()
	quota := r.i64()
	used := r.i64()
	r.u8() // resumed flag (informational)
	eager := r.u32()
	if r.err != nil {
		conn.Close()
		return nil, r.err
	}
	c.mu.Lock()
	c.token = token
	c.quota, c.used = quota, used
	c.eager = int(eager)
	if c.window == nil {
		// Granted once at the first hello; reconnects keep the outstanding
		// credit state (in-flight resends still hold their reservations).
		c.window = newByteSem(window)
	}
	c.mu.Unlock()
	return conn, nil
}

// eagerLimit reads the hello-granted eager threshold.
func (c *Client) eagerLimit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eager
}

// Token returns the session resume token granted at hello.
func (c *Client) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Close says goodbye (best effort) and tears the session down. In-flight
// requests fail with ErrClientClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.broken != nil {
		c.mu.Unlock()
		return nil
	}
	c.broken = ErrClientClosed
	conn := c.conn
	id := c.nextID
	c.nextID++
	calls := c.takeCallsLocked()
	c.mu.Unlock()

	if conn != nil {
		// Tell the server the session ends now (frees its admission slot
		// without waiting out the grace window); ignore failures — the
		// janitor reclaims the slot eventually either way.
		c.wmu.Lock()
		writeFrame(conn, putU8(putU64(nil, id), opBye)) //nolint:errcheck
		c.wmu.Unlock()
		conn.Close()
	}
	for _, cl := range calls {
		cl.done <- reply{err: ErrClientClosed}
	}
	if c.window != nil {
		c.window.close()
	}
	return nil
}

// takeCallsLocked drains the pending map; caller holds c.mu.
func (c *Client) takeCallsLocked() []*call {
	calls := make([]*call, 0, len(c.pending))
	for id, cl := range c.pending {
		calls = append(calls, cl)
		delete(c.pending, id)
	}
	return calls
}

// readLoop delivers responses for one connection generation; on connection
// failure it hands off to reconnect.
func (c *Client) readLoop(conn net.Conn, gen int) {
	for {
		frame, err := readFrame(conn)
		if err != nil {
			c.reconnect(conn, gen)
			return
		}
		r := &reader{b: frame}
		id := r.u64()
		status := r.u8()
		if r.err != nil {
			c.reconnect(conn, gen)
			return
		}
		c.mu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if cl != nil {
			cl.done <- reply{status: status, rd: r}
		}
	}
}

// reconnect redials within the budget, resumes the session by token, and
// resends every in-flight request on the new connection. Single-flight by
// construction: only the readLoop of the current generation gets here, and
// it runs at most once per generation.
func (c *Client) reconnect(dead net.Conn, gen int) {
	dead.Close()
	c.mu.Lock()
	if c.broken != nil || gen != c.gen {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	deadline := time.Now().Add(c.cfg.ReconnectBudget)
	for {
		conn, err := c.dialOnce()
		if err == nil {
			c.mu.Lock()
			if c.broken != nil {
				// Close raced the redial; don't resurrect the session.
				c.mu.Unlock()
				conn.Close()
				return
			}
			c.conn = conn
			c.gen++
			newGen := c.gen
			resend := make([]*call, 0, len(c.pending))
			for _, cl := range c.pending {
				resend = append(resend, cl)
			}
			c.mu.Unlock()
			go c.readLoop(conn, newGen)
			// Resend in-flight requests; they are idempotent (same bytes,
			// same offsets, same names), so a request the server already
			// executed just executes again to the same effect.
			c.wmu.Lock()
			for _, cl := range resend {
				if writeFrame(conn, cl.req) != nil {
					break // next readLoop generation will reconnect again
				}
			}
			c.wmu.Unlock()
			return
		}
		var se *statusError
		if errors.As(err, &se) {
			// The server refused the resume outright (auth/busy): permanent.
			c.fail(err)
			return
		}
		if time.Now().After(deadline) {
			c.fail(fmt.Errorf("dstreamd: reconnect budget exhausted: %w", err))
			return
		}
		time.Sleep(c.cfg.ReconnectPause)
	}
}

// fail breaks the session permanently with a clean error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken != nil {
		c.mu.Unlock()
		return
	}
	c.broken = err
	calls := c.takeCallsLocked()
	c.mu.Unlock()
	for _, cl := range calls {
		cl.done <- reply{err: err}
	}
	if c.window != nil {
		c.window.close()
	}
}

// roundTrip sends one request (op + body) and waits for its response.
func (c *Client) roundTrip(op uint8, body func(b []byte) []byte) (reply, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return reply{}, err
	}
	id := c.nextID
	c.nextID++
	req := body(putU8(putU64(nil, id), op))
	cl := &call{req: req, done: make(chan reply, 1)}
	c.pending[id] = cl
	conn := c.conn
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(conn, req)
	c.wmu.Unlock()
	if err != nil {
		// Kick the readLoop into reconnecting; the request stays pending and
		// is resent on the next connection.
		conn.Close()
	}
	rep := <-cl.done
	if rep.err != nil {
		return reply{}, rep.err
	}
	return rep, nil
}

// decodeErr maps a non-OK status to the error the pfs layer expects:
// transient faults re-wrap pfs.ErrTransient so the client file system's
// retry machinery absorbs them; everything else is permanent.
func decodeErr(status uint8, msg string) error {
	switch status {
	case statusTransient:
		return fmt.Errorf("%w: %s", pfs.ErrTransient, msg)
	case statusQuota, statusAuth, statusBusy:
		return &statusError{status: status, msg: msg}
	default:
		return errors.New(msg)
	}
}

// Usage reports the tenant's reserved bytes and quota as of now.
func (c *Client) Usage() (used, quota int64, err error) {
	rep, err := c.roundTrip(opUsage, func(b []byte) []byte { return b })
	if err != nil {
		return 0, 0, err
	}
	if rep.status != statusOK {
		return 0, 0, decodeErr(rep.status, rep.rd.str())
	}
	used = rep.rd.i64()
	quota = rep.rd.i64()
	return used, quota, rep.rd.err
}

// OpenBackend opens (or creates) the named file in the session's tenant
// namespace and returns it as a pfs.Backend + pfs.LayoutProvider: the
// remote daemon becomes just another storage device under the client-side
// file system, with the server's stripe geometry visible to the two-phase
// aggregation planner.
func (c *Client) OpenBackend(name string) (pfs.Backend, error) {
	rep, err := c.roundTrip(opOpen, func(b []byte) []byte { return putStr(b, name) })
	if err != nil {
		return nil, err
	}
	if rep.status != statusOK {
		return nil, decodeErr(rep.status, rep.rd.str())
	}
	rep.rd.i64() // current size (informational; Size() re-queries)
	unit := rep.rd.i64()
	factor := rep.rd.u32()
	if rep.rd.err != nil {
		return nil, rep.rd.err
	}
	return &remoteFile{
		c:      c,
		name:   name,
		layout: pfs.Layout{StripeUnit: unit, StripeFactor: int(factor)},
	}, nil
}

// Factory adapts the session to a pfs.BackendFactory, the seam the whole
// integration hangs on: pfs.NewFileSystem(profile, client.Factory()) yields
// a file system whose storage lives in the daemon.
func (c *Client) Factory() pfs.BackendFactory {
	return func(name string) (pfs.Backend, error) { return c.OpenBackend(name) }
}

// remoteFile is one daemon-resident file exposed as a pfs.Backend. Large
// transfers are chunked so credit accounting stays fine-grained and no
// single frame monopolizes the connection.
type remoteFile struct {
	c      *Client
	name   string
	layout pfs.Layout
}

var _ pfs.LayoutProvider = (*remoteFile)(nil)

// Layout reports the server-side stripe geometry.
func (f *remoteFile) Layout() pfs.Layout { return f.layout }

// Close is a no-op: the file's lifetime is the session's, and many files
// share one session (the Client owns the connection).
func (f *remoteFile) Close() error { return nil }

// Size queries the current file size. Backend.Size has no error return, so
// a dead session reports 0 — harmless, because every subsequent transfer on
// the dead session fails with the real (clean) error.
func (f *remoteFile) Size() int64 {
	rep, err := f.c.roundTrip(opSize, func(b []byte) []byte { return putStr(b, f.name) })
	if err != nil || rep.status != statusOK {
		return 0
	}
	return rep.rd.i64()
}

// Truncate resizes the file (and the tenant's quota reservation).
func (f *remoteFile) Truncate(size int64) error {
	rep, err := f.c.roundTrip(opTrunc, func(b []byte) []byte {
		return putI64(putStr(b, f.name), size)
	})
	if err != nil {
		return err
	}
	if rep.status != statusOK {
		return decodeErr(rep.status, rep.rd.str())
	}
	return nil
}

// ReadAt implements io.ReaderAt against the daemon, chunk by chunk.
func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > chunkBytes {
			n = chunkBytes
		}
		got, err := f.readChunk(p[total:total+n], off+int64(total))
		total += got
		if err != nil {
			return total, err
		}
		if got < n {
			return total, io.EOF
		}
	}
	return total, nil
}

func (f *remoteFile) readChunk(p []byte, off int64) (int, error) {
	rep, err := f.c.roundTrip(opRead, func(b []byte) []byte {
		return putU32(putI64(putStr(b, f.name), off), uint32(len(p)))
	})
	if err != nil {
		return 0, err
	}
	switch rep.status {
	case statusOK:
		return copy(p, rep.rd.bytes()), rep.rd.err
	case statusEOF:
		return copy(p, rep.rd.bytes()), io.EOF
	case statusTransient:
		msg := rep.rd.str()
		return copy(p, rep.rd.bytes()), fmt.Errorf("%w: %s", pfs.ErrTransient, msg)
	default:
		return 0, decodeErr(rep.status, rep.rd.str())
	}
}

// WriteAt implements io.WriterAt against the daemon. Bulk chunks acquire
// window credits first (the eager/rendezvous split from the comm layer:
// small control-sized writes sail through, large data reserves bandwidth),
// so one session cannot flood the daemon beyond its granted window.
func (f *remoteFile) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > chunkBytes {
			n = chunkBytes
		}
		wrote, err := f.writeChunk(p[total:total+n], off+int64(total))
		total += wrote
		if err != nil {
			return total, err
		}
		if wrote < n {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

func (f *remoteFile) writeChunk(p []byte, off int64) (int, error) {
	if len(p) > f.c.eagerLimit() && f.c.window != nil {
		if err := f.c.window.acquire(int64(len(p))); err != nil {
			// The window only closes when the session breaks; report the
			// session's real error, not the semaphore's.
			f.c.mu.Lock()
			if f.c.broken != nil {
				err = f.c.broken
			}
			f.c.mu.Unlock()
			return 0, err
		}
		defer f.c.window.release(int64(len(p)))
	}
	rep, err := f.c.roundTrip(opWrite, func(b []byte) []byte {
		return putBytes(putI64(putStr(b, f.name), off), p)
	})
	if err != nil {
		return 0, err
	}
	switch rep.status {
	case statusOK:
		return int(rep.rd.u32()), rep.rd.err
	case statusTransient:
		msg := rep.rd.str()
		return int(rep.rd.u32()), fmt.Errorf("%w: %s", pfs.ErrTransient, msg)
	default:
		return 0, decodeErr(rep.status, rep.rd.str())
	}
}
