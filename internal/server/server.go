package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
)

// Sentinel errors surfaced to clients as clean failures (never hangs).
var (
	// ErrQuota reports a write or truncate that would push a tenant past its
	// byte quota. Permanent: the pfs retry layer does not retry it, so it
	// surfaces through dstream as a clean ErrIO on every rank.
	ErrQuota = errors.New("dstreamd: tenant quota exceeded")
	// ErrUnknownTenant reports a hello for a tenant the daemon was not
	// configured with.
	ErrUnknownTenant = errors.New("dstreamd: unknown tenant")
	// ErrBusy reports admission refusal: the tenant is at its session limit.
	ErrBusy = errors.New("dstreamd: tenant session limit reached")
	// ErrShutdown reports a request caught by daemon shutdown.
	ErrShutdown = errors.New("dstreamd: server shutting down")
)

// Tenant configures one namespace the daemon serves.
type Tenant struct {
	// Name identifies the tenant; clients present it at hello. Every file a
	// tenant opens lives under "<name>/" in the daemon's backing store, so
	// tenants cannot observe each other's bytes.
	Name string
	// QuotaBytes bounds the tenant's total reserved file bytes; zero means
	// unlimited. Breaches fail the offending write with a clean ErrQuota.
	QuotaBytes int64
	// MaxSessions bounds concurrent sessions (attached or within the
	// reconnect grace window); zero means unlimited.
	MaxSessions int
}

// Config describes one daemon instance.
type Config struct {
	// Factory creates the storage backend behind each (tenant-prefixed)
	// file. Nil defaults to a striped in-memory store with StripeFactor /
	// StripeUnit geometry.
	Factory pfs.BackendFactory
	// StripeFactor and StripeUnit shape the default striped store (and the
	// geometry reported to clients for backends that expose none). Defaults:
	// 4 devices × 64 KiB.
	StripeFactor int
	StripeUnit   int64
	// Tenants is the namespace table. A client presenting any other name is
	// rejected at hello.
	Tenants []Tenant
	// IORanks is the number of dedicated I/O goroutines that own the
	// storage; requests are routed by (file, stripe cell), so one file's
	// cell is always served by the same rank while distinct cells and files
	// proceed in parallel. Default: StripeFactor.
	IORanks int
	// WindowBytes is the per-session write window granted at hello: the
	// client keeps at most this many bulk payload bytes in flight on one
	// connection. Default 4 MiB.
	WindowBytes int64
	// TenantWindowBytes is the per-tenant admission budget: across all of a
	// tenant's sessions, at most this many bulk bytes are queued on the I/O
	// ranks at once; excess requests wait (backpressure, not failure).
	// Default: 2 × StripeFactor × StripeUnit — roughly the store's natural
	// concurrency, so one tenant cannot bury the stripe under a backlog.
	TenantWindowBytes int64
	// EagerBytes is the eager/rendezvous split reused from the comm layer:
	// requests whose payload is at most this many bytes bypass the
	// admission window (control traffic must not deadlock behind bulk
	// data), larger ones reserve window credits first. Default 4 KiB.
	EagerBytes int
	// Grace is how long a disconnected session stays resumable (and keeps
	// counting against MaxSessions). Default 30 s.
	Grace time.Duration
	// Monitor receives the daemon's metrics (per-tenant labels). Nil runs
	// unmonitored.
	Monitor *dsmon.Monitor
}

func (c Config) withDefaults() Config {
	if c.StripeFactor <= 0 {
		c.StripeFactor = 4
	}
	if c.StripeUnit <= 0 {
		c.StripeUnit = 64 << 10
	}
	if c.Factory == nil {
		c.Factory = pfs.StripedMemFactory(c.StripeFactor, c.StripeUnit)
	}
	if c.IORanks <= 0 {
		c.IORanks = c.StripeFactor
	}
	if c.WindowBytes <= 0 {
		c.WindowBytes = 4 << 20
	}
	if c.TenantWindowBytes <= 0 {
		c.TenantWindowBytes = 2 * int64(c.StripeFactor) * c.StripeUnit
	}
	if c.EagerBytes <= 0 {
		c.EagerBytes = 4 << 10
	}
	if c.Grace <= 0 {
		c.Grace = 30 * time.Second
	}
	return c
}

// byteSem is a counting semaphore over bytes with blocking acquisition —
// the admission window. Closing it releases every waiter with ErrShutdown.
type byteSem struct {
	mu     sync.Mutex
	cond   *sync.Cond
	avail  int64
	closed bool
}

func newByteSem(n int64) *byteSem {
	s := &byteSem{avail: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until n bytes are available (n is clamped to the window
// size elsewhere, so it can always be satisfied).
func (s *byteSem) acquire(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail < n && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return ErrShutdown
	}
	s.avail -= n
	return nil
}

func (s *byteSem) release(n int64) {
	s.mu.Lock()
	s.avail += n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *byteSem) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// srvFile is one tenant file: the backend (shared by every session of the
// tenant), its stripe geometry, and the reserved high-water size the quota
// accounting tracks.
type srvFile struct {
	b      pfs.Backend
	layout pfs.Layout
	resEnd int64
}

// tenantMetrics is the per-tenant handle set, all labeled tenant="<name>".
type tenantMetrics struct {
	sessions      *dsmon.Gauge
	sessionsTotal *dsmon.Counter
	reconnects    *dsmon.Counter
	quotaUsed     *dsmon.Gauge
	quotaRejects  *dsmon.Counter
	bytesIn       *dsmon.Counter
	bytesOut      *dsmon.Counter
	requests      *dsmon.Counter
	transients    *dsmon.Counter
	admissionWait *dsmon.Histogram
}

func newTenantMetrics(m *dsmon.Monitor, tenant string) tenantMetrics {
	reg := m.Registry()
	return tenantMetrics{
		sessions: reg.Gauge("dstreamd_sessions_active",
			"client sessions attached or within the reconnect grace window", "tenant", tenant),
		sessionsTotal: reg.Counter("dstreamd_sessions_total",
			"client sessions ever admitted", "tenant", tenant),
		reconnects: reg.Counter("dstreamd_reconnects_total",
			"sessions resumed after a disconnect", "tenant", tenant),
		quotaUsed: reg.Gauge("dstreamd_quota_used_bytes",
			"reserved file bytes counted against the tenant quota", "tenant", tenant),
		quotaRejects: reg.Counter("dstreamd_quota_rejects_total",
			"writes or truncates refused for breaching the tenant quota", "tenant", tenant),
		bytesIn: reg.Counter("dstreamd_bytes_in_total",
			"payload bytes received in write requests", "tenant", tenant),
		bytesOut: reg.Counter("dstreamd_bytes_out_total",
			"payload bytes returned in read responses", "tenant", tenant),
		requests: reg.Counter("dstreamd_requests_total",
			"requests served", "tenant", tenant),
		transients: reg.Counter("dstreamd_transient_replies_total",
			"requests answered with a retryable storage fault", "tenant", tenant),
		admissionWait: reg.Histogram("dstreamd_admission_wait_seconds",
			"real seconds bulk requests waited for the tenant admission window",
			dsmon.LatencyBuckets, "tenant", tenant),
	}
}

// tenantState is the server-side namespace of one tenant.
type tenantState struct {
	cfg    Tenant
	window *byteSem

	mu       sync.Mutex
	files    map[string]*srvFile
	usage    int64
	sessions int

	met tenantMetrics
}

// session is one admitted client session, resumable across connections.
type session struct {
	token string
	ten   *tenantState

	mu       sync.Mutex
	attached bool
	detached time.Time
}

// Server is a running dstreamd instance.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	tenants  map[string]*tenantState
	sessions map[string]*session
	conns    map[net.Conn]struct{}
	closed   bool

	ranks []chan func()
	wg    sync.WaitGroup // conn handlers + janitor
	iowg  sync.WaitGroup // I/O rank workers

	mConns *dsmon.Gauge
}

// Start builds a daemon from cfg and serves it on addr (":0" picks a free
// port). It returns once the listener is bound.
func Start(addr string, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dstreamd: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		tenants:  make(map[string]*tenantState),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
		ranks:    make([]chan func(), cfg.IORanks),
	}
	// dsmon handles are nil-safe, so an unmonitored daemon needs no guards.
	s.mConns = cfg.Monitor.Registry().Gauge("dstreamd_connections_active",
		"client connections currently attached")
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			ln.Close()
			return nil, fmt.Errorf("dstreamd: tenant with empty name")
		}
		if _, dup := s.tenants[t.Name]; dup {
			ln.Close()
			return nil, fmt.Errorf("dstreamd: duplicate tenant %q", t.Name)
		}
		ts := &tenantState{
			cfg:    t,
			window: newByteSem(cfg.TenantWindowBytes),
			files:  make(map[string]*srvFile),
		}
		ts.met = newTenantMetrics(cfg.Monitor, t.Name)
		s.tenants[t.Name] = ts
	}
	for i := range s.ranks {
		ch := make(chan func(), 64)
		s.ranks[i] = ch
		s.iowg.Add(1)
		go func() {
			defer s.iowg.Done()
			for job := range ch {
				job()
			}
		}()
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Monitor returns the daemon's monitor (nil when unmonitored).
func (s *Server) Monitor() *dsmon.Monitor { return s.cfg.Monitor }

// Close shuts the daemon down: stops accepting, closes every client
// connection, drains the I/O ranks, and closes the storage backends.
// Idempotent; blocks until every goroutine has exited.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	tenants := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, t := range tenants {
		t.window.close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	for _, ch := range s.ranks {
		close(ch)
	}
	s.iowg.Wait()
	var firstErr error
	for _, t := range tenants {
		t.mu.Lock()
		for _, f := range t.files {
			if err := f.b.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		t.mu.Unlock()
	}
	return firstErr
}

// KillConnections forcibly closes every live client connection while
// leaving their sessions resumable within the grace window — the
// disconnect/reconnect fault the chaos oracle injects mid-run.
func (s *Server) KillConnections() int {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// SessionCount reports sessions currently admitted for the tenant
// (attached or within the grace window); -1 for an unknown tenant.
func (s *Server) SessionCount(tenant string) int {
	s.mu.Lock()
	t := s.tenants[tenant]
	s.mu.Unlock()
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions
}

// Usage reports a tenant's reserved bytes and quota; an error for unknown
// tenants.
func (s *Server) Usage(tenant string) (used, quota int64, err error) {
	s.mu.Lock()
	t := s.tenants[tenant]
	s.mu.Unlock()
	if t == nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usage, t.cfg.QuotaBytes, nil
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.mConns.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.mConns.Add(-1)
	c.Close()
}

// newToken mints a session resume token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// connWriter serializes response frames onto one connection.
type connWriter struct {
	mu sync.Mutex
	c  net.Conn
}

func (w *connWriter) reply(payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// A dead connection just drops the response; the client will resend the
	// request on its next connection.
	writeFrame(w.c, payload) //nolint:errcheck
}

func errPayload(id uint64, status uint8, msg string) []byte {
	return putStr(putU8(putU64(nil, id), status), msg)
}

// handleConn owns one client connection: hello, then the request loop.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(c)
	w := &connWriter{c: c}

	sess, err := s.hello(c, w)
	if err != nil {
		return
	}
	ten := sess.ten
	defer func() {
		// Detach: the session stays resumable for the grace window, then a
		// timer releases its admission slot.
		sess.mu.Lock()
		sess.attached = false
		sess.detached = time.Now()
		sess.mu.Unlock()
		time.AfterFunc(s.cfg.Grace, func() { s.expire(sess) })
	}()

	for {
		frame, err := readFrame(c)
		if err != nil {
			return
		}
		r := &reader{b: frame}
		id := r.u64()
		op := r.u8()
		ten.met.requests.Inc()
		switch op {
		case opBye:
			w.reply(putU8(putU64(nil, id), statusOK))
			// An explicit goodbye ends the session immediately: no grace,
			// the admission slot frees now.
			sess.mu.Lock()
			sess.attached = false
			sess.detached = time.Time{}
			sess.mu.Unlock()
			s.remove(sess)
			return
		case opOpen:
			name := r.str()
			if r.err != nil {
				return
			}
			s.doOpen(ten, w, id, name)
		case opSize:
			name := r.str()
			if r.err != nil {
				return
			}
			f, err := s.lookup(ten, name)
			if err != nil {
				w.reply(errPayload(id, statusErr, err.Error()))
				continue
			}
			w.reply(putI64(putU8(putU64(nil, id), statusOK), f.b.Size()))
		case opTrunc:
			name := r.str()
			size := r.i64()
			if r.err != nil {
				return
			}
			s.doTrunc(ten, w, id, name, size)
		case opUsage:
			ten.mu.Lock()
			used, quota := ten.usage, ten.cfg.QuotaBytes
			ten.mu.Unlock()
			w.reply(putI64(putI64(putU8(putU64(nil, id), statusOK), used), quota))
		case opRead:
			name := r.str()
			off := r.i64()
			n := r.u32()
			if r.err != nil || n > chunkBytes {
				return
			}
			s.submitRead(ten, w, id, name, off, int(n))
		case opWrite:
			name := r.str()
			off := r.i64()
			data := r.bytes()
			if r.err != nil {
				return
			}
			// The frame buffer is re-read per iteration, so data may be
			// retained by the I/O rank without copying.
			s.submitWrite(ten, w, id, name, off, data)
		default:
			w.reply(errPayload(id, statusErr, fmt.Sprintf("dstreamd: unknown %s", opName(op))))
		}
	}
}

// hello performs the handshake: authenticate the tenant, admit or resume
// the session, grant the write window.
func (s *Server) hello(c net.Conn, w *connWriter) (*session, error) {
	frame, err := readFrame(c)
	if err != nil {
		return nil, err
	}
	r := &reader{b: frame}
	id := r.u64()
	op := r.u8()
	tenant := r.str()
	token := r.str()
	if r.err != nil || op != opHello {
		w.reply(errPayload(id, statusErr, "dstreamd: expected hello"))
		return nil, fmt.Errorf("bad hello")
	}
	s.mu.Lock()
	ten := s.tenants[tenant]
	if ten == nil {
		s.mu.Unlock()
		w.reply(errPayload(id, statusAuth, fmt.Sprintf("%v: %q", ErrUnknownTenant, tenant)))
		return nil, ErrUnknownTenant
	}
	resumed := false
	var sess *session
	if token != "" {
		if prev, ok := s.sessions[token]; ok && prev.ten == ten {
			sess = prev
			resumed = true
		}
	}
	if sess == nil {
		ten.mu.Lock()
		if ten.cfg.MaxSessions > 0 && ten.sessions >= ten.cfg.MaxSessions {
			ten.mu.Unlock()
			s.mu.Unlock()
			w.reply(errPayload(id, statusBusy,
				fmt.Sprintf("%v: %d active", ErrBusy, ten.cfg.MaxSessions)))
			return nil, ErrBusy
		}
		ten.sessions++
		ten.mu.Unlock()
		sess = &session{token: newToken(), ten: ten}
		s.sessions[sess.token] = sess
		ten.met.sessionsTotal.Inc()
		ten.met.sessions.Set(float64(sessionGauge(ten)))
	}
	s.mu.Unlock()
	sess.mu.Lock()
	sess.attached = true
	sess.mu.Unlock()
	if resumed {
		ten.met.reconnects.Inc()
	}

	ten.mu.Lock()
	used, quota := ten.usage, ten.cfg.QuotaBytes
	ten.mu.Unlock()
	out := putU8(putU64(nil, id), statusOK)
	out = putStr(out, sess.token)
	out = putI64(out, s.cfg.WindowBytes)
	out = putI64(out, quota)
	out = putI64(out, used)
	if resumed {
		out = putU8(out, 1)
	} else {
		out = putU8(out, 0)
	}
	out = putU32(out, uint32(s.cfg.EagerBytes))
	w.reply(out)
	return sess, nil
}

func sessionGauge(t *tenantState) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions
}

// expire releases a session's admission slot once its grace window passed
// without a resume.
func (s *Server) expire(sess *session) {
	sess.mu.Lock()
	stale := !sess.attached && !sess.detached.IsZero() && time.Since(sess.detached) >= s.cfg.Grace
	sess.mu.Unlock()
	if stale {
		s.remove(sess)
	}
}

// remove deletes a session and frees its admission slot. Idempotent.
func (s *Server) remove(sess *session) {
	s.mu.Lock()
	_, present := s.sessions[sess.token]
	delete(s.sessions, sess.token)
	s.mu.Unlock()
	if !present {
		return
	}
	sess.ten.mu.Lock()
	sess.ten.sessions--
	n := sess.ten.sessions
	sess.ten.mu.Unlock()
	sess.ten.met.sessions.Set(float64(n))
}

// lookup resolves an already-opened tenant file.
func (s *Server) lookup(t *tenantState, name string) (*srvFile, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.files[name]
	if !ok {
		return nil, fmt.Errorf("dstreamd: file %q not opened", name)
	}
	return f, nil
}

// doOpen gets or creates the tenant file and reports size and geometry.
func (s *Server) doOpen(t *tenantState, w *connWriter, id uint64, name string) {
	t.mu.Lock()
	f, ok := t.files[name]
	if !ok {
		b, err := s.cfg.Factory(t.cfg.Name + "/" + name)
		if err != nil {
			t.mu.Unlock()
			w.reply(errPayload(id, statusErr, fmt.Sprintf("dstreamd: open %q: %v", name, err)))
			return
		}
		f = &srvFile{b: b, resEnd: b.Size()}
		if lp, isLP := b.(pfs.LayoutProvider); isLP {
			f.layout = lp.Layout()
		}
		if f.layout.StripeFactor <= 0 || f.layout.StripeUnit <= 0 {
			f.layout = pfs.Layout{StripeUnit: s.cfg.StripeUnit, StripeFactor: s.cfg.StripeFactor}
		}
		t.files[name] = f
		// A pre-existing image (an OS-backed daemon restart) counts against
		// the quota from the start.
		t.usage += f.resEnd
		t.met.quotaUsed.Set(float64(t.usage))
	}
	size := f.b.Size()
	layout := f.layout
	t.mu.Unlock()
	out := putI64(putU8(putU64(nil, id), statusOK), size)
	out = putI64(out, layout.StripeUnit)
	out = putU32(out, uint32(layout.StripeFactor))
	w.reply(out)
}

// doTrunc resizes a tenant file, adjusting the quota reservation.
func (s *Server) doTrunc(t *tenantState, w *connWriter, id uint64, name string, size int64) {
	if size < 0 {
		w.reply(errPayload(id, statusErr, fmt.Sprintf("dstreamd: negative truncate %d", size)))
		return
	}
	f, err := s.lookup(t, name)
	if err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	t.mu.Lock()
	switch {
	case size < f.resEnd:
		t.usage -= f.resEnd - size
		f.resEnd = size
	case size > f.resEnd:
		delta := size - f.resEnd
		if t.cfg.QuotaBytes > 0 && t.usage+delta > t.cfg.QuotaBytes {
			t.mu.Unlock()
			t.met.quotaRejects.Inc()
			w.reply(errPayload(id, statusQuota, fmt.Sprintf("%v: truncate to %d needs %d over %d",
				ErrQuota, size, delta, t.cfg.QuotaBytes)))
			return
		}
		t.usage += delta
		f.resEnd = size
	}
	usage := t.usage
	t.mu.Unlock()
	t.met.quotaUsed.Set(float64(usage))
	if err := f.b.Truncate(size); err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	w.reply(putU8(putU64(nil, id), statusOK))
}

// rankFor routes one request to its dedicated I/O rank: the same (tenant,
// file, stripe cell) always lands on the same rank, so per-cell order is
// preserved while distinct cells and files fan out across the ranks — the
// ViPIOS "data is mapped across I/O server processes" scheme.
func (s *Server) rankFor(tenant, name string, off int64) chan func() {
	h := fnv.New64a()
	io.WriteString(h, tenant)     //nolint:errcheck
	io.WriteString(h, "/")        //nolint:errcheck
	io.WriteString(h, name)       //nolint:errcheck
	cell := off / s.cfg.StripeUnit
	return s.ranks[(h.Sum64()^uint64(cell))%uint64(len(s.ranks))]
}

// admit reserves n bulk bytes from the tenant window (eager-sized requests
// pass straight through, like eager sends in the comm layer). The returned
// release func is nil-safe to call once.
func (s *Server) admit(t *tenantState, n int) (func(), error) {
	if n <= s.cfg.EagerBytes {
		return func() {}, nil
	}
	grab := int64(n)
	if grab > s.cfg.TenantWindowBytes {
		grab = s.cfg.TenantWindowBytes
	}
	start := time.Now()
	if err := t.window.acquire(grab); err != nil {
		return nil, err
	}
	t.met.admissionWait.Observe(time.Since(start).Seconds())
	var once sync.Once
	return func() { once.Do(func() { t.window.release(grab) }) }, nil
}

// submitRead admits and enqueues one read on its I/O rank.
func (s *Server) submitRead(t *tenantState, w *connWriter, id uint64, name string, off int64, n int) {
	f, err := s.lookup(t, name)
	if err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	release, err := s.admit(t, n)
	if err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	s.rankFor(t.cfg.Name, name, off) <- func() {
		defer release()
		buf := make([]byte, n)
		got, err := f.b.ReadAt(buf, off)
		if got < 0 {
			got = 0
		}
		t.met.bytesOut.Add(int64(got))
		out := putU64(nil, id)
		switch {
		case err == nil:
			out = putBytes(putU8(out, statusOK), buf[:got])
		case errors.Is(err, io.EOF):
			out = putBytes(putU8(out, statusEOF), buf[:got])
		case pfs.IsTransient(err):
			t.met.transients.Inc()
			out = putBytes(putStr(putU8(out, statusTransient), err.Error()), buf[:got])
		default:
			out = putStr(putU8(out, statusErr), err.Error())
		}
		w.reply(out)
	}
}

// submitWrite checks the quota, admits, and enqueues one write.
func (s *Server) submitWrite(t *tenantState, w *connWriter, id uint64, name string, off int64, data []byte) {
	f, err := s.lookup(t, name)
	if err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	if off < 0 {
		w.reply(errPayload(id, statusErr, fmt.Sprintf("dstreamd: negative offset %d", off)))
		return
	}
	// Quota: reserve growth up front, under the tenant lock, so concurrent
	// writes through different I/O ranks cannot double-spend the budget. A
	// resend after reconnect re-reserves nothing (the high-water already
	// covers it), keeping retries idempotent.
	end := off + int64(len(data))
	t.mu.Lock()
	if end > f.resEnd {
		delta := end - f.resEnd
		if t.cfg.QuotaBytes > 0 && t.usage+delta > t.cfg.QuotaBytes {
			used := t.usage
			t.mu.Unlock()
			t.met.quotaRejects.Inc()
			w.reply(errPayload(id, statusQuota, fmt.Sprintf(
				"%v: write to %d needs %d more with %d of %d used",
				ErrQuota, end, delta, used, t.cfg.QuotaBytes)))
			return
		}
		t.usage += delta
		f.resEnd = end
	}
	usage := t.usage
	t.mu.Unlock()
	t.met.quotaUsed.Set(float64(usage))
	t.met.bytesIn.Add(int64(len(data)))

	release, err := s.admit(t, len(data))
	if err != nil {
		w.reply(errPayload(id, statusErr, err.Error()))
		return
	}
	s.rankFor(t.cfg.Name, name, off) <- func() {
		defer release()
		n, err := f.b.WriteAt(data, off)
		if n < 0 {
			n = 0
		}
		out := putU64(nil, id)
		switch {
		case err == nil:
			out = putU32(putU8(out, statusOK), uint32(n))
		case pfs.IsTransient(err):
			t.met.transients.Inc()
			out = putU32(putStr(putU8(out, statusTransient), err.Error()), uint32(n))
		default:
			out = putStr(putU8(out, statusErr), err.Error())
		}
		w.reply(out)
	}
}
