package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/server"
)

func startDaemon(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *server.Server, tenant string) *server.Client {
	t.Helper()
	cli, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestBackendRoundTrip pins the wire protocol end to end: open, write, read
// (including chunked transfers larger than one frame's chunk), size,
// truncate, EOF semantics, and the advertised stripe geometry.
func TestBackendRoundTrip(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Tenants:      []server.Tenant{{Name: "a"}},
		StripeFactor: 3, StripeUnit: 4096,
	})
	cli := dial(t, srv, "a")
	b, err := cli.OpenBackend("data")
	if err != nil {
		t.Fatal(err)
	}
	lp, ok := b.(pfs.LayoutProvider)
	if !ok {
		t.Fatal("remote backend does not expose its layout")
	}
	if l := lp.Layout(); l.StripeFactor != 3 || l.StripeUnit != 4096 {
		t.Fatalf("layout = %+v, want {4096 3}", l)
	}

	// 3 MiB spans multiple chunks and stripe cells.
	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if n, err := b.WriteAt(big, 0); err != nil || n != len(big) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if got := b.Size(); got != int64(len(big)) {
		t.Fatalf("Size = %d, want %d", got, len(big))
	}
	back := make([]byte, len(big))
	if n, err := b.ReadAt(back, 0); err != nil || n != len(big) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(big, back) {
		t.Fatal("round-trip bytes differ")
	}
	// Reading past the end yields the short count and io.EOF.
	tail := make([]byte, 100)
	n, err := b.ReadAt(tail, int64(len(big))-10)
	if n != 10 || !errors.Is(err, io.EOF) {
		t.Fatalf("past-end ReadAt = %d, %v; want 10, EOF", n, err)
	}
	if !bytes.Equal(tail[:10], big[len(big)-10:]) {
		t.Fatal("tail bytes differ")
	}
	if err := b.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if got := b.Size(); got != 5 {
		t.Fatalf("Size after truncate = %d, want 5", got)
	}
}

// TestTenantIsolation writes different bytes to the *same file name* from
// two tenants and asserts neither observes the other's data.
func TestTenantIsolation(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Tenants: []server.Tenant{{Name: "a"}, {Name: "b"}},
	})
	payload := func(tenant string) []byte {
		return bytes.Repeat([]byte(tenant), 64<<10)
	}
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: tenant})
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			b, err := cli.OpenBackend("data")
			if err != nil {
				t.Error(err)
				return
			}
			want := payload(tenant)
			if _, err := b.WriteAt(want, 0); err != nil {
				t.Error(err)
				return
			}
			got := make([]byte, len(want))
			if _, err := b.ReadAt(got, 0); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(want, got) {
				t.Errorf("tenant %s read back foreign or corrupt bytes", tenant)
			}
		}()
	}
	wg.Wait()
}

// TestQuota pins the quota regime: a breach is a clean ErrQuota (not a
// hang), usage tracks reserved bytes, truncate releases them, and the freed
// budget is spendable again.
func TestQuota(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Tenants: []server.Tenant{{Name: "a", QuotaBytes: 1 << 20}},
	})
	cli := dial(t, srv, "a")
	b, err := cli.OpenBackend("data")
	if err != nil {
		t.Fatal(err)
	}
	half := make([]byte, 512<<10)
	if _, err := b.WriteAt(half, 0); err != nil {
		t.Fatal(err)
	}
	if used, quota, err := cli.Usage(); err != nil || used != 512<<10 || quota != 1<<20 {
		t.Fatalf("Usage = %d/%d, %v", used, quota, err)
	}
	// Second half fits exactly; one more byte breaches.
	if _, err := b.WriteAt(half, 512<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte{1}, 1<<20); !errors.Is(err, server.ErrQuota) {
		t.Fatalf("over-quota write = %v, want ErrQuota", err)
	}
	// Rewriting bytes already reserved is not a breach (idempotent resends).
	if _, err := b.WriteAt(half, 0); err != nil {
		t.Fatalf("rewrite within reservation = %v", err)
	}
	// Truncating releases budget; the freed bytes are writable again.
	if err := b.Truncate(256 << 10); err != nil {
		t.Fatal(err)
	}
	if used, _, _ := cli.Usage(); used != 256<<10 {
		t.Fatalf("usage after truncate = %d, want %d", used, 256<<10)
	}
	if _, err := b.WriteAt(half, 256<<10); err != nil {
		t.Fatal(err)
	}
	if err := b.Truncate(2 << 20); !errors.Is(err, server.ErrQuota) {
		t.Fatalf("over-quota truncate = %v, want ErrQuota", err)
	}
}

// TestAdmission pins hello-time control: unknown tenants are refused with
// ErrUnknownTenant, the MaxSessions limit returns ErrBusy, and an explicit
// Close frees the slot immediately (no grace wait).
func TestAdmission(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Tenants: []server.Tenant{{Name: "a", MaxSessions: 1}},
		Grace:   time.Hour, // a leaked slot would hang the retry below
	})
	if _, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: "nobody"}); !errors.Is(err, server.ErrUnknownTenant) {
		t.Fatalf("unknown tenant Dial = %v, want ErrUnknownTenant", err)
	}
	first, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: "a"}); !errors.Is(err, server.ErrBusy) {
		t.Fatalf("second Dial = %v, want ErrBusy", err)
	}
	first.Close()
	// Bye frees the admission slot synchronously on the server, but the
	// client does not wait for the response; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		second, err := server.Dial(srv.Addr(), server.ClientConfig{Tenant: "a"})
		if err == nil {
			second.Close()
			break
		}
		if !errors.Is(err, server.ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("Dial after Close = %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReconnectResume kills every connection mid-stream and asserts the
// client transparently resumes the same server-side session: no new
// admission slot, data written across the cut reads back byte-identical,
// and the reconnect is visible in the daemon's metrics.
func TestReconnectResume(t *testing.T) {
	mon := dsmon.New()
	srv := startDaemon(t, server.Config{
		Tenants: []server.Tenant{{Name: "a", MaxSessions: 1}},
		Grace:   time.Hour,
		Monitor: mon,
	})
	cli := dial(t, srv, "a")
	b, err := cli.OpenBackend("data")
	if err != nil {
		t.Fatal(err)
	}
	part := make([]byte, 128<<10)
	for i := range part {
		part[i] = byte(i)
	}
	if _, err := b.WriteAt(part, 0); err != nil {
		t.Fatal(err)
	}
	if n := srv.KillConnections(); n != 1 {
		t.Fatalf("KillConnections = %d, want 1", n)
	}
	// The next operation rides the reconnect; MaxSessions=1 proves it
	// resumed rather than admitted a second session.
	if _, err := b.WriteAt(part, int64(len(part))); err != nil {
		t.Fatalf("write after cut = %v", err)
	}
	if got := srv.SessionCount("a"); got != 1 {
		t.Fatalf("SessionCount = %d, want 1 (resumed, not re-admitted)", got)
	}
	back := make([]byte, 2*len(part))
	if _, err := b.ReadAt(back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[:len(part)], part) || !bytes.Equal(back[len(part):], part) {
		t.Fatal("data across the reconnect differs")
	}
	reconnects := mon.Registry().Counter("dstreamd_reconnects_total",
		"sessions resumed after a disconnect", "tenant", "a")
	if reconnects.Value() == 0 {
		t.Fatal("reconnect not counted in dstreamd_reconnects_total")
	}
}

// flakyFactory wraps a factory so every k-th write fails transiently.
type flakyBackend struct {
	pfs.Backend
	mu    sync.Mutex
	n     int
	every int
}

func (f *flakyBackend) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.n++
	fail := f.n%f.every == 0
	f.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("%w: injected", pfs.ErrTransient)
	}
	return f.Backend.WriteAt(p, off)
}

// TestTransientPropagation: a transient fault under the daemon surfaces on
// the client as pfs.ErrTransient — the contract the client-side retry layer
// depends on.
func TestTransientPropagation(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Factory: func(name string) (pfs.Backend, error) {
			return &flakyBackend{Backend: pfs.NewMemBackend(), every: 1}, nil
		},
		Tenants: []server.Tenant{{Name: "a"}},
	})
	cli := dial(t, srv, "a")
	b, err := cli.OpenBackend("data")
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.WriteAt([]byte("x"), 0)
	if !pfs.IsTransient(err) {
		t.Fatalf("WriteAt = %v, want a pfs.ErrTransient", err)
	}
}

// TestServerClose: shutting the daemon down fails outstanding client work
// with a clean error instead of hanging, and Close is idempotent.
func TestServerClose(t *testing.T) {
	srv := startDaemon(t, server.Config{
		Tenants: []server.Tenant{{Name: "a"}},
	})
	cli, err := server.Dial(srv.Addr(), server.ClientConfig{
		Tenant:          "a",
		ReconnectBudget: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	b, err := cli.OpenBackend("data")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.WriteAt(make([]byte, 1024), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write against a closed daemon succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write against a closed daemon hung")
	}
}
