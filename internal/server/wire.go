// Package server implements dstreamd, a ViPIOS-style multi-tenant I/O
// daemon for d/streams: a long-running process in which dedicated I/O ranks
// own the parallel file system while many independent client sessions open,
// append, and read streams over TCP.
//
// The split mirrors ViPIOS's architecture (client compute processes talking
// to dedicated I/O server processes) mapped onto this repository's stack:
// the client side exposes the daemon as a pfs.Backend, so the entire
// existing machinery — the resilient retry layer, striped-geometry-aware
// two-phase aggregation, read-ahead prefetching, chaos hardening — runs
// unchanged against remote storage. The server side adds what a shared
// daemon needs and a single-program library does not: per-tenant namespaces
// and byte quotas, admission control and credit-based backpressure when
// aggregate demand exceeds the stripe bandwidth, session resume across
// client disconnects, and per-tenant observability on one /metrics page.
//
// # Wire protocol
//
// One TCP connection per session, carrying length-prefixed frames both
// ways. Requests are tagged with a client-chosen id and may complete out of
// order (the client multiplexes concurrent rank goroutines onto the one
// connection); every request produces exactly one response with the same
// id. All integers are little-endian; strings and byte blobs are u32
// length-prefixed.
//
//	frame    := len(u32) payload
//	request  := id(u64) op(u8) body
//	response := id(u64) status(u8) body
//
// Requests are stateless with respect to file handles — reads and writes
// name the file, and the server resolves names against the session's tenant
// namespace — which is what makes a resend after reconnect idempotent: the
// same bytes at the same offset of the same file.
//
// Transient storage faults under the daemon (chaos injection, short
// transfers) are reported with statusTransient and re-wrapped as
// pfs.ErrTransient on the client, so the client file system's retry layer
// absorbs them exactly as it does for local storage. Quota breaches,
// unknown tenants, and admission rejections are permanent statuses and
// surface as clean errors.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol limits.
const (
	// maxFrame bounds one wire frame; requests are chunked client-side well
	// below it, so anything larger is a corrupt stream.
	maxFrame = 16 << 20
	// chunkBytes is the client-side transfer granularity: larger reads and
	// writes are split so no single frame monopolizes the connection and
	// credit accounting stays fine-grained.
	chunkBytes = 1 << 20
)

// Request opcodes.
const (
	opHello uint8 = iota + 1 // tenant, token → token, window, quota, used, resumed
	opOpen                   // name → size, stripe unit, stripe factor
	opRead                   // name, off, n → eof, data
	opWrite                  // name, off, data → n
	opTrunc                  // name, size → –
	opSize                   // name → size
	opUsage                  // – → used, quota
	opBye                    // – → –
)

// Response statuses.
const (
	statusOK        uint8 = iota // body per op
	statusEOF                    // read only: data (possibly short) + genuine EOF
	statusTransient              // retryable storage fault; body: msg (+ partial data/count)
	statusQuota                  // tenant byte quota exceeded; body: msg
	statusAuth                   // unknown tenant / bad hello; body: msg
	statusBusy                   // admission refused (session limit); body: msg
	statusErr                    // permanent failure; body: msg
)

func opName(op uint8) string {
	switch op {
	case opHello:
		return "hello"
	case opOpen:
		return "open"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opTrunc:
		return "trunc"
	case opSize:
		return "size"
	case opUsage:
		return "usage"
	case opBye:
		return "bye"
	}
	return fmt.Sprintf("op(%d)", op)
}

// writeFrame writes one length-prefixed frame. The caller serializes writers.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dstreamd: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// --- append-style encoders ---

func putU8(b []byte, v uint8) []byte   { return append(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func putStr(b []byte, s string) []byte { return append(putU32(b, uint32(len(s))), s...) }
func putBytes(b, p []byte) []byte      { return append(putU32(b, uint32(len(p))), p...) }

// reader is a cursor over one frame payload; decoding errors are sticky.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dstreamd: truncated frame")
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || uint32(len(r.b)) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }
