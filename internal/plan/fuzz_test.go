package plan

import (
	"math"
	"testing"

	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// FuzzCostModel throws arbitrary (profile, layout, geometry, fan-in) tuples
// at the cost model — negative byte counts, zero machines, NaN bandwidths,
// absurd stripe geometries. The contract under fuzz: never panic, never
// divide by zero, and every estimate stays a finite non-negative float.
func FuzzCostModel(f *testing.F) {
	f.Add(4, 64, int64(1<<20), int64(300), int64(64<<10), 4, 4, uint8(0),
		415e6, 6e6, 80e6, 150e-6, 1.2e-3, int64(512<<10), 2)
	f.Add(0, 0, int64(0), int64(0), int64(0), 0, 0, uint8(1),
		0.0, 0.0, 0.0, 0.0, 0.0, int64(0), 0)
	f.Add(-5, -1, int64(-1<<40), int64(-7), int64(-3), -2, -9, uint8(2),
		-1.0, math.Inf(1), math.NaN(), -0.5, math.Inf(-1), int64(-1), -3)
	f.Add(1 << 20, 1 << 30, int64(math.MaxInt64), int64(math.MaxInt64), int64(1), 1 << 20, 1 << 20, uint8(7),
		1e300, 1e-300, 5e5, 90e-6, 20e-6, int64(math.MaxInt64), 1<<20)

	f.Fuzz(func(t *testing.T, nprocs, nelems int, dataBytes, metaBytes, stripeUnit int64,
		stripeFactor, k int, sByte uint8,
		fastBW, slowBW, msgBW, ioLat, serial float64, blockCache int64, channels int) {
		prof := vtime.Paragon()
		prof.DiskFastBW = fastBW
		prof.DiskSlowBW = slowBW
		prof.MsgBW = msgBW
		prof.IOOpLatency = ioLat
		prof.SerialPerOp = serial
		prof.BlockCache = blockCache
		prof.IOChannels = channels
		m := Model{Prof: prof, Layout: pfs.Layout{StripeUnit: stripeUnit, StripeFactor: stripeFactor}}
		g := Geometry{NProcs: nprocs, NElems: nelems, DataBytes: dataBytes, MetaBytes: metaBytes}
		s := Strategy(sByte % uint8(numStrategies))

		for name, c := range map[string]float64{
			"write": m.WriteCost(g, s, k),
			"read":  m.ReadCost(g, s, k),
		} {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				t.Fatalf("%s cost(%+v, %v, k=%d) = %g under fuzzed profile %+v", name, g, s, k, c, prof)
			}
		}
		limit := nprocs
		if limit < 1 {
			limit = 1
		}
		for name, best := range map[string]int{
			"write": m.BestWriteAggregators(g),
			"read":  m.BestReadAggregators(g),
		} {
			if best < 1 || best > limit {
				t.Fatalf("%s Best…Aggregators(%+v) = %d outside [1, %d]", name, g, best, limit)
			}
		}
	})
}

// FuzzPlannerChain drives a whole controller from an arbitrary byte script
// (each chunk becomes one plan-or-observe step), twice, asserting the two
// runs never panic and produce bit-identical decision chains — the
// rank-identity property the chaos oracle checks end to end, pinned here at
// the unit level over a much wilder input space.
func FuzzPlannerChain(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x80, 0xff, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45})
	f.Add([]byte("plan write plan read observe waste consume plan plan plan"))

	f.Fuzz(func(t *testing.T, script []byte) {
		drive := func() (uint64, int64, int64) {
			p := New(Model{Prof: vtime.CM5(), Layout: pfs.Layout{StripeUnit: 16 << 10, StripeFactor: 4}})
			for i := 0; i+6 <= len(script); i += 6 {
				b := script[i : i+6]
				g := Geometry{
					NProcs:    int(b[1]%32) - 2, // occasionally degenerate
					NElems:    int(b[2]) * 7,
					DataBytes: int64(b[3]) << (b[4] % 24),
					MetaBytes: int64(b[5]),
				}
				switch b[0] % 5 {
				case 0:
					d := p.PlanWrite(g, int(b[2])-8)
					if d.Aggregators < 1 {
						t.Fatalf("write plan with %d aggregators", d.Aggregators)
					}
				case 1:
					d := p.PlanRead(g, int(b[2])-8, int(b[3])-8)
					if d.ReadAhead < 0 || d.Aggregators < 1 {
						t.Fatalf("read plan depth %d aggregators %d", d.ReadAhead, d.Aggregators)
					}
				case 2:
					p.Observe(Strategy(b[1]%4), float64(b[2])-10, float64(int(b[3])-10)*float64(b[4]))
				case 3:
					p.ObserveConsumed(int64(b[2]) - 64)
				case 4:
					p.ObserveWasted(int64(b[3]) - 64)
				}
			}
			return p.Signature(), p.Records(), p.Switches()
		}
		sigA, recA, swA := drive()
		sigB, recB, swB := drive()
		if sigA != sigB || recA != recB || swA != swB {
			t.Fatalf("same script, diverging chains: (%016x,%d,%d) vs (%016x,%d,%d)",
				sigA, recA, swA, sigB, recB, swB)
		}
	})
}
