package plan

import "math"

// Controller tuning. The hysteresis band and hold-down keep the planner
// from flapping between near-tied strategies: a challenger must beat the
// incumbent's calibrated cost by switchMargin, and after any switch the
// incumbent is locked in for holdDown records.
const (
	// ewmaAlpha is the weight of the newest observed/estimate ratio in
	// the per-strategy calibration factor.
	ewmaAlpha = 0.3
	// switchMargin is the hysteresis band: re-plan only when the best
	// challenger is at least this fraction cheaper than the incumbent.
	switchMargin = 0.15
	// holdDown is how many records a fresh choice is pinned before the
	// controller may switch again.
	holdDown = 2
	// ratioMin/ratioMax clamp one observation's influence on the
	// calibration, so a single skewed measurement (chaos faults, cold
	// caches) cannot invert the ranking by itself.
	ratioMin = 0.25
	ratioMax = 4.0
	// DefaultReadAhead is the prefetch depth the planner asks for when a
	// record is worth pipelining: depth 2 hid 86–96% of the refill stall
	// on the read-ahead ablation grid, and deeper queues only add waste.
	DefaultReadAhead = 2
)

// Decision is one record's plan.
type Decision struct {
	// Strategy is the chosen data path.
	Strategy Strategy
	// Aggregators is the two-phase fan-in (meaningful when Strategy is
	// TwoPhase; still populated otherwise so a later switch needs no
	// re-scan).
	Aggregators int
	// ReadAhead is the prefetch queue depth the planner wants (read
	// side; 0 on write plans).
	ReadAhead int
	// Estimate is the calibrated cost estimate, in virtual seconds.
	Estimate float64
	// RawEstimate is the uncalibrated model cost of the chosen strategy —
	// the value to hand back to Observe with the observed cost.
	RawEstimate float64
	// Switched reports that this plan changed strategy from the
	// previous record — the re-planning event harnesses and traces key on.
	Switched bool
}

// Planner is the per-stream online controller. It is not safe for
// concurrent use; each stream endpoint (one rank's view) owns one.
// Determinism contract: given the same sequence of Plan/Observe calls with
// rank-identical arguments, every rank's planner makes the identical
// decision chain — Signature lets a harness check exactly that.
type Planner struct {
	m Model

	calib     [numStrategies]float64
	haveCalib [numStrategies]bool

	current     Strategy
	haveCurrent bool
	cool        int

	records  int64
	switches int64
	sig      uint64

	// Read-ahead governor: exponentially decayed byte accounts of
	// consumed vs prefetched-then-skipped records.
	consumedEWMA float64
	wastedEWMA   float64
}

// New returns a planner over the given model.
func New(m Model) *Planner {
	return &Planner{m: m, sig: fnvOffset}
}

// Model returns the planner's cost model.
func (p *Planner) Model() Model { return p.m }

// FNV-1a, folded by hand so signing a decision allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// sign folds one decision into the plan signature.
func (p *Planner) sign(s Strategy, k, depth int) {
	h := fnv64(p.sig, uint64(p.records))
	h = fnvByte(h, byte(s))
	h = fnv64(h, uint64(int64(k)))
	h = fnv64(h, uint64(int64(depth)))
	p.sig = h
}

// factor returns the calibration multiplier for a strategy (1 until the
// first observation lands).
func (p *Planner) factor(s Strategy) float64 {
	if s < numStrategies && p.haveCalib[s] {
		return p.calib[s]
	}
	return 1
}

// choose runs the strategy scan + hysteresis and commits the decision.
// cost must return the raw model estimate for a strategy; candidates are
// scanned in order, so earlier entries win ties (funnel first — the
// paper's default and the cheapest to be wrong about).
func (p *Planner) choose(cost func(Strategy) float64, candidates []Strategy) (Strategy, float64, bool) {
	best := candidates[0]
	bestCost := cost(best) * p.factor(best)
	for _, s := range candidates[1:] {
		if c := cost(s) * p.factor(s); c < bestCost {
			best, bestCost = s, c
		}
	}
	chosen, chosenCost := best, bestCost
	if p.haveCurrent && best != p.current {
		incumbent := cost(p.current) * p.factor(p.current)
		if p.cool > 0 || bestCost > incumbent*(1-switchMargin) {
			chosen, chosenCost = p.current, incumbent
		}
	}
	switched := p.haveCurrent && chosen != p.current
	if switched {
		p.switches++
		p.cool = holdDown
	} else if p.cool > 0 {
		p.cool--
	}
	p.current, p.haveCurrent = chosen, true
	return chosen, chosenCost, switched
}

var writeCandidates = [...]Strategy{Funnel, Parallel, TwoPhase}
var readCandidates = [...]Strategy{Parallel, TwoPhase}

// PlanWrite plans one output record. kOverride pins the two-phase
// aggregator count (≤0 lets the model scan for the best fan-in).
func (p *Planner) PlanWrite(g Geometry, kOverride int) Decision {
	k := kOverride
	if k <= 0 {
		k = p.m.BestWriteAggregators(g)
	}
	k = clampK(k, maxInt(g.NProcs, 1))
	cost := func(s Strategy) float64 { return p.m.WriteCost(g, s, k) }
	s, c, switched := p.choose(cost, writeCandidates[:])
	p.records++
	p.sign(s, k, 0)
	return Decision{Strategy: s, Aggregators: k, Estimate: c, RawEstimate: cost(s), Switched: switched}
}

// PlanRead plans one input record. kOverride pins the two-phase
// aggregator count; depthOverride pins the read-ahead depth (≤0 lets the
// waste governor decide).
func (p *Planner) PlanRead(g Geometry, kOverride, depthOverride int) Decision {
	k := kOverride
	if k <= 0 {
		k = p.m.BestReadAggregators(g)
	}
	k = clampK(k, maxInt(g.NProcs, 1))
	cost := func(s Strategy) float64 { return p.m.ReadCost(g, s, k) }
	s, c, switched := p.choose(cost, readCandidates[:])
	depth := depthOverride
	if depth <= 0 {
		depth = p.readAheadDepth(g)
	}
	p.records++
	p.sign(s, k, depth)
	return Decision{Strategy: s, Aggregators: k, ReadAhead: depth, Estimate: c, RawEstimate: cost(s), Switched: switched}
}

// readAheadDepth is the waste governor: prefetch at the default depth
// while the consumer actually uses what the pipeline fetches, and fall
// back to synchronous reads when more bytes have been prefetched-then-
// skipped than consumed.
func (p *Planner) readAheadDepth(g Geometry) int {
	if g.DataBytes <= 0 {
		return 0
	}
	if p.wastedEWMA > p.consumedEWMA {
		return 0
	}
	return DefaultReadAhead
}

// Observe feeds back one record's observed virtual cost against the raw
// (uncalibrated) estimate, updating the strategy's calibration EWMA.
// Non-finite or non-positive inputs are ignored. The calibration shift is
// how divergence triggers re-planning: once a strategy's observed/estimate
// ratio drifts past the hysteresis band, the next Plan call switches away
// from it.
func (p *Planner) Observe(s Strategy, estimate, observed float64) {
	if s >= numStrategies {
		return
	}
	if !(estimate > 0) || !(observed >= 0) || math.IsInf(estimate, 1) || math.IsInf(observed, 1) {
		return
	}
	r := observed / estimate
	if r < ratioMin {
		r = ratioMin
	} else if r > ratioMax {
		r = ratioMax
	}
	if !p.haveCalib[s] {
		p.calib[s], p.haveCalib[s] = r, true
		return
	}
	p.calib[s] = (1-ewmaAlpha)*p.calib[s] + ewmaAlpha*r
}

// ObserveConsumed credits the waste governor with a record the consumer
// actually read.
func (p *Planner) ObserveConsumed(bytes int64) { p.account(&p.consumedEWMA, bytes) }

// ObserveWasted debits the waste governor with a prefetched record the
// consumer skipped.
func (p *Planner) ObserveWasted(bytes int64) { p.account(&p.wastedEWMA, bytes) }

func (p *Planner) account(acc *float64, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	*acc = (1-ewmaAlpha)**acc + ewmaAlpha*float64(bytes)
}

// Calibration returns the current observed/estimate EWMA for a strategy
// (1 before any observation).
func (p *Planner) Calibration(s Strategy) float64 { return p.factor(s) }

// Records returns how many records have been planned.
func (p *Planner) Records() int64 { return p.records }

// Switches returns how many plans changed strategy mid-stream.
func (p *Planner) Switches() int64 { return p.switches }

// Signature returns the FNV-1a hash of the full decision chain (record
// ordinal, strategy, fan-in, depth per record). Ranks of one stream must
// agree on it; a mismatch means a plan switch broke collective
// consistency.
func (p *Planner) Signature() uint64 { return p.sig }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
