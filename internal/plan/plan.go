// Package plan is the d/stream strategy planner: a closed-form cost model
// over the vtime platform profile, the pfs stripe layout, and one record's
// geometry, plus a small online controller that re-plans between records
// when observation diverges from estimate.
//
// The paper (§4.1) picks between its funnelled and parallel I/O paths with
// a static element-count threshold. The ablation grids (BENCH_twophase,
// BENCH_readahead) show no strategy dominates: the winner moves with the
// platform's per-operation latency, the stripe geometry, the record size,
// and the write-cache cliffs. This package derives the choice instead: it
// prices each strategy with the same timing laws the simulated platform
// charges (pfs/disk.go, the collective cost model), picks the cheapest, and
// keeps itself honest by comparing its estimates against the observed
// virtual cost of every record — the adaptive logical-to-physical mapping
// ViPIOS argued for, scoped to one stream.
//
// Everything here is deterministic and allocation-free per record. Planner
// inputs must be rank-identical (total record bytes, broadcast headers,
// virtual-clock deltas between synchronizing collectives); under that
// contract every rank of a stream computes the identical plan chain with no
// extra communication, which the plan signature (Signature) lets harnesses
// verify.
package plan

import (
	"math"

	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// Strategy is the planner's view of the d/stream data paths. The values
// deliberately mirror dstream's funnel/parallel/twophase triple without
// importing it (dstream imports this package).
type Strategy uint8

const (
	// Funnel: metadata gathers to node 0 and rides one parallel append
	// with every rank's data block.
	Funnel Strategy = iota
	// Parallel: metadata and data move with separate parallel appends.
	Parallel
	// TwoPhase: ranks shuffle payloads to K aggregators which move
	// stripe-aligned extents.
	TwoPhase
	numStrategies
)

// String returns the flag-friendly name of the strategy.
func (s Strategy) String() string {
	switch s {
	case Funnel:
		return "funnel"
	case Parallel:
		return "parallel"
	case TwoPhase:
		return "twophase"
	}
	return "strategy?"
}

// Geometry is one record's shape, as agreed by every rank of the stream:
// total bytes (not a single rank's share), so the planner's inputs are
// rank-identical by construction.
type Geometry struct {
	// NProcs is the machine size the record moves across.
	NProcs int
	// NElems is the element count of the record's distribution.
	NElems int
	// DataBytes is the record's whole data section, summed over ranks.
	DataBytes int64
	// MetaBytes is the record's front matter: header, distribution
	// descriptor, and size table.
	MetaBytes int64
}

// Model prices the strategies on one platform + file layout. The zero
// value is usable (every cost is 0); build one from the machine's profile
// and the stream file's layout.
type Model struct {
	Prof   vtime.Profile
	Layout pfs.Layout
}

// pos sanitizes a profile constant: negatives, NaNs, and infinities
// contribute nothing instead of poisoning the estimate — fuzzing the
// profile space must never make a cost non-finite or negative.
func pos(x float64) float64 {
	if x > 0 && !math.IsInf(x, 1) {
		return x
	}
	return 0
}

// posBytes clamps a byte count to [0, ∞).
func posBytes(n int64) int64 {
	if n < 0 {
		return 0
	}
	return n
}

// safeTransfer is TransferTime with the bandwidth sanitized.
func safeTransfer(n int64, bw float64) float64 {
	return vtime.TransferTime(posBytes(n), pos(bw))
}

// ceilDiv divides, rounding up, with a floor of 1 on the divisor.
func ceilDiv(n int64, d int) int64 {
	if d < 1 {
		d = 1
	}
	return (n + int64(d) - 1) / int64(d)
}

// log2ceil returns ⌈log₂ n⌉ (0 for n ≤ 1) — the tree depth of the
// collective algorithms.
func log2ceil(n int) int {
	d := 0
	for span := 1; span < n; span <<= 1 {
		d++
	}
	return d
}

// channels returns the storage subsystem's concurrency, as pfs derives it.
func (m Model) channels() int {
	if m.Prof.IOChannels > 0 {
		return m.Prof.IOChannels
	}
	return 1
}

// msg prices one point-to-point message of n bytes.
func (m Model) msg(n int64) float64 {
	return pos(m.Prof.MsgLatency) + pos(m.Prof.SendOverhead) + safeTransfer(n, m.Prof.MsgBW)
}

// streamIO mirrors disk.streamCost: the bandwidth term of moving n bytes,
// with the write-cache cliff applied to writes.
func (m Model) streamIO(n int64, write bool) float64 {
	n = posBytes(n)
	fast, slow := n, int64(0)
	if write && m.Prof.BlockCache > 0 && n > m.Prof.BlockCache {
		fast, slow = m.Prof.BlockCache, n-m.Prof.BlockCache
	}
	return safeTransfer(fast, m.Prof.DiskFastBW) + safeTransfer(slow, m.Prof.DiskSlowBW)
}

// parallelIO mirrors disk.parallel: a node-order collective transfer where
// nz of the nprocs ranks move per bytes each and rank 0 carries extra0
// additional bytes at the head of its block. The blocks deal onto the
// profile's I/O channels by rank; the op costs the serialized control term
// plus the heaviest channel's streaming time. Channel 0 always carries
// rank 0's block, so it is the heaviest: ⌈nz/C⌉ blocks plus the extra.
func (m Model) parallelIO(nprocs, nz int, per, extra0 int64, write bool) float64 {
	if nprocs < 1 {
		nprocs = 1
	}
	if nz < 1 {
		nz = 1
	}
	if nz > nprocs {
		nz = nprocs
	}
	c := m.channels()
	perCh := (nz + c - 1) / c
	lat := pos(m.Prof.IOOpLatency)
	load := float64(perCh)*(lat+m.streamIO(per, write)) +
		m.streamIO(per+posBytes(extra0), write) - m.streamIO(per, write)
	return float64(nprocs)*pos(m.Prof.SerialPerOp) + load
}

// gather prices a tree gather of total bytes to the root.
func (m Model) gather(nprocs int, total int64) float64 {
	return float64(log2ceil(nprocs))*pos(m.Prof.MsgLatency) +
		float64(nprocs)*pos(m.Prof.SendOverhead) + safeTransfer(total, m.Prof.MsgBW)
}

// bcast prices a tree broadcast of n bytes from the root.
func (m Model) bcast(nprocs int, n int64) float64 {
	return float64(log2ceil(nprocs)) * m.msg(n)
}

// allreduce8 prices the 8-byte scalar agreement the planner (and the
// parallel strategy's header) performs.
func (m Model) allreduce8(nprocs int) float64 {
	return 2 * float64(log2ceil(nprocs)) * m.msg(8)
}

// shuffle prices the two-phase interconnect exchange: every rank sends its
// per bytes toward at most k aggregators, each aggregator receives and
// packs an ext-byte extent. The bottleneck path is the heavier of the
// sender's and the aggregator's byte stream, plus the pack copy.
func (m Model) shuffle(nprocs, k int, per, ext int64) float64 {
	if k > nprocs {
		k = nprocs
	}
	if k < 1 {
		k = 1
	}
	peers := k
	wire := per
	if ext > wire {
		wire = ext
	}
	return float64(peers)*(pos(m.Prof.MsgLatency)+pos(m.Prof.SendOverhead)) +
		safeTransfer(wire, m.Prof.MsgBW) + safeTransfer(ext, m.Prof.MemCopyBW)
}

// clampK bounds an aggregator count to [1, nprocs].
func clampK(k, nprocs int) int {
	if nprocs < 1 {
		nprocs = 1
	}
	if k < 1 {
		k = 1
	}
	if k > nprocs {
		k = nprocs
	}
	return k
}

// WriteCost estimates the virtual seconds one record flush takes under the
// given strategy. k is the two-phase aggregator count (ignored by the
// other strategies; sanitized to [1, NProcs]). Estimates are finite,
// non-negative, and monotone in DataBytes for every strategy.
func (m Model) WriteCost(g Geometry, s Strategy, k int) float64 {
	nprocs := g.NProcs
	if nprocs < 1 {
		nprocs = 1
	}
	data := posBytes(g.DataBytes)
	meta := posBytes(g.MetaBytes)
	per := ceilDiv(data, nprocs)
	table := posBytes(4 * int64(g.NElems))
	switch s {
	case Funnel:
		// Gather the size table to node 0; one parallel append moves
		// every rank's block, node 0's with the metadata at its head.
		return m.gather(nprocs, table) + m.parallelIO(nprocs, nprocs, per, meta, true)
	case Parallel:
		// Agree on the total (8-byte allreduce), then two appends: the
		// metadata section split across ranks (header and descriptor on
		// rank 0), then the data.
		metaPer := ceilDiv(table, nprocs)
		extra0 := posBytes(meta - table)
		return m.allreduce8(nprocs) +
			m.parallelIO(nprocs, nprocs, metaPer, extra0, true) +
			m.parallelIO(nprocs, nprocs, per, 0, true)
	case TwoPhase:
		// Allgather the per-rank lengths, gather the size table, shuffle
		// payloads to K aggregators, one append of K extents (metadata on
		// aggregator 0's head).
		kk := clampK(k, nprocs)
		ext := ceilDiv(data, kk)
		return m.gather(nprocs, 8*int64(nprocs)) + m.gather(nprocs, table) +
			m.shuffle(nprocs, kk, per, ext) +
			m.parallelIO(nprocs, kk, ext, meta, true)
	}
	return math.Inf(1)
}

// ReadCost estimates the virtual seconds one record refill takes under the
// given strategy (Funnel reads are priced as Parallel — the input side has
// no funnel path). The estimate covers the data movement that follows the
// metadata broadcast, matching how the stream observes it.
func (m Model) ReadCost(g Geometry, s Strategy, k int) float64 {
	nprocs := g.NProcs
	if nprocs < 1 {
		nprocs = 1
	}
	data := posBytes(g.DataBytes)
	per := ceilDiv(data, nprocs)
	switch s {
	case TwoPhase:
		kk := clampK(k, nprocs)
		ext := ceilDiv(data, kk)
		return m.parallelIO(nprocs, kk, ext, 0, false) +
			m.shuffle(nprocs, kk, ext, per) +
			safeTransfer(per, m.Prof.MemCopyBW)
	default:
		return m.parallelIO(nprocs, nprocs, per, 0, false) +
			safeTransfer(per, m.Prof.MemCopyBW)
	}
}

// maxPlanAggregators bounds the aggregator scan; stripe factors beyond
// this see no extra modeled benefit worth the scan cost.
const maxPlanAggregators = 16

// BestWriteAggregators returns the aggregator count in [1, NProcs] that
// minimizes the modeled two-phase write cost, preferring the file's stripe
// factor on ties (one aggregator per stripe device is the natural
// operating point, and what the static strategy uses).
func (m Model) BestWriteAggregators(g Geometry) int {
	return m.bestAggregators(g, true)
}

// BestReadAggregators is the read-side mirror of BestWriteAggregators.
func (m Model) BestReadAggregators(g Geometry) int {
	return m.bestAggregators(g, false)
}

func (m Model) bestAggregators(g Geometry, write bool) int {
	nprocs := g.NProcs
	if nprocs < 1 {
		nprocs = 1
	}
	limit := nprocs
	if limit > maxPlanAggregators {
		limit = maxPlanAggregators
	}
	natural := clampK(m.Layout.StripeFactor, nprocs)
	cost := func(k int) float64 {
		if write {
			return m.WriteCost(g, TwoPhase, k)
		}
		return m.ReadCost(g, TwoPhase, k)
	}
	best, bestCost := natural, cost(natural)
	for k := 1; k <= limit; k++ {
		if k == natural {
			continue
		}
		if c := cost(k); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}
