package plan

import (
	"math"
	"testing"

	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// profiles under test: the real platforms plus the zero profile (every
// constant absent) — the model must be total over all of them.
func testProfiles() []vtime.Profile {
	return []vtime.Profile{vtime.Paragon(), vtime.CM5(), vtime.Challenge(), {}}
}

func testGeometries() []Geometry {
	return []Geometry{
		{},
		{NProcs: 1, NElems: 1, DataBytes: 1, MetaBytes: 1},
		{NProcs: 4, NElems: 64, DataBytes: 1 << 20, MetaBytes: 300},
		{NProcs: 16, NElems: 256, DataBytes: 64 << 20, MetaBytes: 1100},
		{NProcs: 1024, NElems: 1 << 16, DataBytes: 1 << 34, MetaBytes: 1 << 18},
		// Degenerate shapes the sanitizers must absorb.
		{NProcs: -3, NElems: -1, DataBytes: -1 << 20, MetaBytes: -5},
		{NProcs: 0, NElems: 1 << 20, DataBytes: math.MaxInt64 / 4, MetaBytes: math.MaxInt64 / 4},
	}
}

// TestCostFiniteNonNegative: every estimate over profiles × geometries ×
// strategies × aggregator counts (including nonsense ones) is a finite,
// non-negative number. NaN anywhere here would silently disable the
// planner's ranking.
func TestCostFiniteNonNegative(t *testing.T) {
	for _, prof := range testProfiles() {
		for _, layout := range []pfs.Layout{{}, {StripeUnit: 64 << 10, StripeFactor: 4}, {StripeUnit: -1, StripeFactor: -7}} {
			m := Model{Prof: prof, Layout: layout}
			for _, g := range testGeometries() {
				for _, s := range []Strategy{Funnel, Parallel, TwoPhase} {
					for _, k := range []int{-1, 0, 1, 4, 16, 1 << 20} {
						for name, c := range map[string]float64{
							"write": m.WriteCost(g, s, k),
							"read":  m.ReadCost(g, s, k),
						} {
							if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
								t.Fatalf("%s/%s cost(%+v, %v, k=%d) = %g — not finite non-negative",
									prof.Name, name, g, s, k, c)
							}
						}
					}
				}
			}
		}
	}
}

// TestCostMonotoneInDataBytes: growing a record never makes any strategy's
// estimate cheaper. A non-monotone model could flap the controller between
// strategies on byte-count noise alone.
func TestCostMonotoneInDataBytes(t *testing.T) {
	sizes := []int64{0, 1, 1 << 10, 1 << 16, 1 << 20, 1 << 24, 1 << 30}
	for _, prof := range testProfiles() {
		m := Model{Prof: prof, Layout: pfs.Layout{StripeUnit: 64 << 10, StripeFactor: 4}}
		for _, nprocs := range []int{1, 4, 16} {
			for _, s := range []Strategy{Funnel, Parallel, TwoPhase} {
				prevW, prevR := -1.0, -1.0
				for _, n := range sizes {
					g := Geometry{NProcs: nprocs, NElems: 64, DataBytes: n, MetaBytes: 300}
					if w := m.WriteCost(g, s, 4); w < prevW {
						t.Fatalf("%s: WriteCost(%v, %d procs) fell from %g to %g at %d bytes",
							prof.Name, s, nprocs, prevW, w, n)
					} else {
						prevW = w
					}
					if r := m.ReadCost(g, s, 4); r < prevR {
						t.Fatalf("%s: ReadCost(%v, %d procs) fell from %g to %g at %d bytes",
							prof.Name, s, nprocs, prevR, r, n)
					} else {
						prevR = r
					}
				}
			}
		}
	}
}

// TestBestAggregatorsRange: the fan-in scan always lands in [1, NProcs]
// (and within the scan bound), even for degenerate geometries.
func TestBestAggregatorsRange(t *testing.T) {
	for _, prof := range testProfiles() {
		m := Model{Prof: prof, Layout: pfs.Layout{StripeUnit: 16 << 10, StripeFactor: 4}}
		for _, g := range testGeometries() {
			limit := g.NProcs
			if limit < 1 {
				limit = 1
			}
			for name, k := range map[string]int{
				"write": m.BestWriteAggregators(g),
				"read":  m.BestReadAggregators(g),
			} {
				if k < 1 || k > limit {
					t.Fatalf("%s/%s: Best…Aggregators(%+v) = %d outside [1, %d]", prof.Name, name, g, k, limit)
				}
			}
		}
	}
}

// TestPlannerDeterministicChain: two planners fed the identical call
// sequence produce identical decisions and signatures (the rank-identity
// contract), and a sequence that diverges at one Observe produces a
// different chain only through its decisions — never through a crash.
func TestPlannerDeterministicChain(t *testing.T) {
	m := Model{Prof: vtime.Paragon(), Layout: pfs.Layout{StripeUnit: 64 << 10, StripeFactor: 4}}
	drive := func(skew float64) (uint64, []Decision) {
		p := New(m)
		var ds []Decision
		for i := 0; i < 8; i++ {
			g := Geometry{NProcs: 4, NElems: 64, DataBytes: int64(1<<16) << uint(i%3), MetaBytes: 300}
			d := p.PlanWrite(g, 0)
			p.Observe(d.Strategy, d.RawEstimate, d.RawEstimate*skew)
			ds = append(ds, d)
		}
		return p.Signature(), ds
	}
	sigA, dsA := drive(1.0)
	sigB, dsB := drive(1.0)
	if sigA != sigB {
		t.Fatalf("identical call sequences signed %016x vs %016x", sigA, sigB)
	}
	for i := range dsA {
		if dsA[i] != dsB[i] {
			t.Fatalf("decision %d diverged between identical sequences: %+v vs %+v", i, dsA[i], dsB[i])
		}
	}
	if sigC, _ := drive(3.9); sigC == sigA {
		t.Log("skewed observations happened not to change any decision — signature legitimately equal")
	}
}

// TestPlannerReplansOnDivergence: when the incumbent's observed cost drifts
// far above its estimate, the calibration EWMA shifts the ranking and the
// controller switches strategy — and the switch respects the hold-down
// (no second switch within holdDown records).
func TestPlannerReplansOnDivergence(t *testing.T) {
	m := Model{Prof: vtime.Paragon(), Layout: pfs.Layout{StripeUnit: 64 << 10, StripeFactor: 4}}
	// Find a geometry whose two cheapest write strategies are within 2x of
	// each other, so a ratioMax (4x) calibration skew must flip the ranking
	// past the hysteresis band.
	var g Geometry
	found := false
	for _, particles := range []int{8, 32, 128, 512} {
		cand := Geometry{NProcs: 4, NElems: 64, DataBytes: int64(particles) * 64 * 8 * 4, MetaBytes: 300}
		costs := []float64{
			m.WriteCost(cand, Funnel, 4),
			m.WriteCost(cand, Parallel, 4),
			m.WriteCost(cand, TwoPhase, 4),
		}
		best, second := math.Inf(1), math.Inf(1)
		for _, c := range costs {
			if c < best {
				best, second = c, best
			} else if c < second {
				second = c
			}
		}
		if second < 2*best {
			g, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no near-tied geometry on this profile — hysteresis unexercisable here")
	}

	p := New(m)
	first := p.PlanWrite(g, 0)
	if first.Switched {
		t.Fatal("first plan reported a switch — there was no incumbent")
	}
	// Drive the incumbent's calibration to the clamp: observed 10x the
	// estimate, repeatedly (the clamp caps each step at ratioMax).
	switched := false
	for i := 0; i < 12 && !switched; i++ {
		d := p.PlanWrite(g, 0)
		switched = d.Switched
		if !switched && d.Strategy != first.Strategy {
			t.Fatalf("strategy changed from %v to %v without reporting Switched", first.Strategy, d.Strategy)
		}
		p.Observe(d.Strategy, d.RawEstimate, d.RawEstimate*10)
	}
	if !switched {
		t.Fatalf("calibration at the %gx clamp never forced a re-plan off %v", ratioMax, first.Strategy)
	}
	if p.Switches() != 1 {
		t.Fatalf("Switches() = %d after exactly one re-plan", p.Switches())
	}
	// Hold-down: the freshly chosen strategy is pinned for holdDown records
	// even if its own observations immediately look terrible.
	cur := p.PlanWrite(g, 0)
	if cur.Switched {
		t.Fatal("re-planned on the record immediately after a switch — hold-down not applied")
	}
	p.Observe(cur.Strategy, cur.RawEstimate, cur.RawEstimate*10)
	d := p.PlanWrite(g, 0)
	if d.Switched {
		t.Fatal("re-planned within the hold-down window")
	}
}

// TestObserveIgnoresGarbage: non-finite and non-positive feedback leaves
// the calibration untouched, and legitimate feedback is clamped to
// [ratioMin, ratioMax].
func TestObserveIgnoresGarbage(t *testing.T) {
	p := New(Model{Prof: vtime.Paragon()})
	for _, bad := range [][2]float64{
		{math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1}, {1, math.Inf(1)},
		{0, 1}, {-1, 1}, {1, -1},
	} {
		p.Observe(Funnel, bad[0], bad[1])
		if c := p.Calibration(Funnel); c != 1 {
			t.Fatalf("Observe(%g, %g) moved calibration to %g", bad[0], bad[1], c)
		}
	}
	p.Observe(Funnel, 1, 1e9)
	if c := p.Calibration(Funnel); c > ratioMax {
		t.Fatalf("calibration %g exceeds the %g clamp", c, ratioMax)
	}
	p.Observe(Parallel, 1e9, 1e-9)
	if c := p.Calibration(Parallel); c < ratioMin {
		t.Fatalf("calibration %g undercuts the %g clamp", c, ratioMin)
	}
	p.Observe(numStrategies, 1, 1) // out-of-range strategy: must not panic
}

// TestWasteGovernor: the read planner asks for the default depth while
// prefetched bytes are being consumed, and falls back to synchronous reads
// once more bytes were prefetched-then-skipped than consumed (and for
// empty records).
func TestWasteGovernor(t *testing.T) {
	m := Model{Prof: vtime.Paragon()}
	g := Geometry{NProcs: 4, NElems: 64, DataBytes: 1 << 20, MetaBytes: 300}

	p := New(m)
	if d := p.PlanRead(g, 0, 0); d.ReadAhead != DefaultReadAhead {
		t.Fatalf("fresh planner asked depth %d, want %d", d.ReadAhead, DefaultReadAhead)
	}
	if d := p.PlanRead(Geometry{NProcs: 4, NElems: 64}, 0, 0); d.ReadAhead != 0 {
		t.Fatalf("empty record asked depth %d, want 0", d.ReadAhead)
	}
	for i := 0; i < 8; i++ {
		p.ObserveWasted(1 << 20)
	}
	if d := p.PlanRead(g, 0, 0); d.ReadAhead != 0 {
		t.Fatalf("wasted-dominated planner asked depth %d, want 0", d.ReadAhead)
	}
	for i := 0; i < 32; i++ {
		p.ObserveConsumed(4 << 20)
	}
	if d := p.PlanRead(g, 0, 0); d.ReadAhead != DefaultReadAhead {
		t.Fatalf("recovered planner asked depth %d, want %d", d.ReadAhead, DefaultReadAhead)
	}
	if d := p.PlanRead(g, 0, 5); d.ReadAhead != 5 {
		t.Fatalf("explicit depth override returned %d, want 5", d.ReadAhead)
	}
}

// TestAggregatorOverride: a pinned fan-in is honored (clamped to the
// machine size), and the unpinned scan is used otherwise.
func TestAggregatorOverride(t *testing.T) {
	m := Model{Prof: vtime.Paragon(), Layout: pfs.Layout{StripeUnit: 64 << 10, StripeFactor: 4}}
	g := Geometry{NProcs: 4, NElems: 64, DataBytes: 1 << 20, MetaBytes: 300}
	p := New(m)
	if d := p.PlanWrite(g, 3); d.Aggregators != 3 {
		t.Fatalf("kOverride=3 planned %d aggregators", d.Aggregators)
	}
	if d := p.PlanWrite(g, 99); d.Aggregators != 4 {
		t.Fatalf("kOverride=99 on 4 procs planned %d aggregators, want clamp to 4", d.Aggregators)
	}
	if d := p.PlanWrite(g, 0); d.Aggregators < 1 || d.Aggregators > 4 {
		t.Fatalf("unpinned scan planned %d aggregators, outside [1,4]", d.Aggregators)
	}
}
