package enc

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRoundTrip: whatever a Buffer encodes, a Reader decodes back exactly —
// the wire-format property the whole d/stream file format leans on.
func FuzzRoundTrip(f *testing.F) {
	f.Add(true, uint32(0), uint64(0), 0.0, "", []byte(nil), uint8(0))
	f.Add(false, uint32(1), uint64(1<<63), -1.5, "hello", []byte{1, 2, 3}, uint8(3))
	f.Add(true, uint32(0xffffffff), uint64(0xffffffffffffffff), math.Inf(1), "κ…\x00", []byte{0}, uint8(17))
	f.Add(false, uint32(42), uint64(7), math.NaN(), "nan payload", []byte("bytes"), uint8(255))
	f.Fuzz(func(t *testing.T, b bool, u32 uint32, u64 uint64, f64 float64, s string, raw []byte, n uint8) {
		fslice := make([]float64, int(n)%9)
		islice := make([]int64, int(n)%5)
		for i := range fslice {
			fslice[i] = f64 * float64(i+1)
		}
		for i := range islice {
			islice[i] = int64(u64) - int64(i)
		}

		var e Buffer
		e.Bool(b)
		e.Uint32(u32)
		e.Uint64(u64)
		e.Int32(int32(u32))
		e.Int64(int64(u64))
		e.Float64(f64)
		e.Float32(float32(f64))
		e.String(s)
		e.Bytes32(raw)
		e.Float64Slice(fslice)
		e.Int64Slice(islice)

		d := NewReader(e.Bytes())
		if got := d.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := d.Uint32(); got != u32 {
			t.Fatalf("Uint32 = %d, want %d", got, u32)
		}
		if got := d.Uint64(); got != u64 {
			t.Fatalf("Uint64 = %d, want %d", got, u64)
		}
		if got := d.Int32(); got != int32(u32) {
			t.Fatalf("Int32 = %d, want %d", got, int32(u32))
		}
		if got := d.Int64(); got != int64(u64) {
			t.Fatalf("Int64 = %d, want %d", got, int64(u64))
		}
		if got := d.Float64(); math.Float64bits(got) != math.Float64bits(f64) {
			t.Fatalf("Float64 = %v, want %v", got, f64)
		}
		if got := d.Float32(); math.Float32bits(got) != math.Float32bits(float32(f64)) {
			t.Fatalf("Float32 = %v, want %v", got, float32(f64))
		}
		if got := d.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if got := d.Bytes32(); !bytes.Equal(got, raw) {
			t.Fatalf("Bytes32 = %q, want %q", got, raw)
		}
		gf := d.Float64Slice()
		if len(gf) != len(fslice) {
			t.Fatalf("Float64Slice len = %d, want %d", len(gf), len(fslice))
		}
		for i := range gf {
			if math.Float64bits(gf[i]) != math.Float64bits(fslice[i]) {
				t.Fatalf("Float64Slice[%d] = %v, want %v", i, gf[i], fslice[i])
			}
		}
		gi := d.Int64Slice()
		if len(gi) != len(islice) {
			t.Fatalf("Int64Slice len = %d, want %d", len(gi), len(islice))
		}
		for i := range gi {
			if gi[i] != islice[i] {
				t.Fatalf("Int64Slice[%d] = %d, want %d", i, gi[i], islice[i])
			}
		}
		if err := d.Err(); err != nil {
			t.Fatalf("reader error after clean round trip: %v", err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left over after round trip", d.Remaining())
		}
	})
}

// FuzzReaderNeverPanics drives a Reader over arbitrary bytes with an
// arbitrary script of decode calls: no input may panic it, offsets must stay
// in bounds, and once it errors the error must stick.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte{1, 2, 3}, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{9, 9, 10, 10})
	f.Fuzz(func(t *testing.T, data, script []byte) {
		d := NewReader(data)
		for _, op := range script {
			hadErr := d.Err() != nil
			switch op % 11 {
			case 0:
				d.Bool()
			case 1:
				d.Uint32()
			case 2:
				d.Uint64()
			case 3:
				d.Int32()
			case 4:
				d.Int64()
			case 5:
				d.Float32()
			case 6:
				d.Float64()
			case 7:
				_ = d.String()
			case 8:
				d.Bytes32()
			case 9:
				d.Float64Slice()
			case 10:
				d.Int64Slice()
			}
			if hadErr && d.Err() == nil {
				t.Fatal("reader error un-stuck itself")
			}
			if d.Offset() < 0 || d.Offset() > len(data) {
				t.Fatalf("offset %d out of bounds [0,%d]", d.Offset(), len(data))
			}
			if d.Remaining() < 0 {
				t.Fatalf("negative remaining %d", d.Remaining())
			}
		}
	})
}

// FuzzRecordHeader: arbitrary bytes never panic the record-header decoder,
// and any header it accepts is a fixed point of encode∘decode.
func FuzzRecordHeader(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeFileHeader())
	h := RecordHeader{NArrays: 2, NElems: 9, NProcs: 4, Mode: 1, DataBytes: 1 << 20}
	f.Add(h.Encode())
	f.Add(h.Encode()[:RecordHeaderLen-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeRecordHeader(data)
		if err != nil {
			return
		}
		again, err := DecodeRecordHeader(h.Encode())
		if err != nil {
			t.Fatalf("re-decoding an accepted header failed: %v", err)
		}
		if again != h {
			t.Fatalf("decode∘encode not idempotent: %+v vs %+v", again, h)
		}
		if h.TotalBytes() < RecordHeaderLen {
			t.Fatalf("TotalBytes %d below header length", h.TotalBytes())
		}
	})
}
