package enc

import (
	"fmt"
)

// File and record framing of the d/stream on-disk format:
//
//	file   := fileHeader record*
//	record := recordHeader descriptor sizeTable dataSection
//
// The fileHeader is written once when an output d/stream opens its file.
// Each write() emits one record. The recordHeader carries the writer's
// distribution descriptor; pattern distributions (BLOCK/CYCLIC/
// BLOCK_CYCLIC) fit entirely in the fixed header and have an empty
// descriptor section, while EXPLICIT distributions store their owner table
// (one u32 per element) as the descriptor. The sizeTable holds one u32 per
// element, in node-block order (writer's rank order, local order within a
// rank); the dataSection holds the element payloads in the same order.
// Because the metadata precedes the data, an input d/stream needs nothing
// from the programmer to read the file back (§4.1: "the library does the
// paperwork involved in determining the structure of the data that was
// written").

// FileMagic begins every d/stream file.
var FileMagic = [8]byte{'D', 'S', 'T', 'R', 'M', '1', 0, 0}

// FileHeaderLen is the size of the file header in bytes.
const FileHeaderLen = 16

// EncodeFileHeader renders the 16-byte file header.
func EncodeFileHeader() []byte {
	var e Buffer
	e.Raw(FileMagic[:])
	e.Uint64(0) // reserved flags
	return e.Bytes()
}

// CheckFileHeader validates a file header.
func CheckFileHeader(b []byte) error {
	if len(b) < FileHeaderLen {
		return fmt.Errorf("enc: file header truncated (%d bytes)", len(b))
	}
	for i, c := range FileMagic {
		if b[i] != c {
			return fmt.Errorf("enc: bad magic %q — not a d/stream file", b[:8])
		}
	}
	return nil
}

// RecordMagic begins every record header.
const RecordMagic uint32 = 0x52545344 // "DSTR" little-endian

// RecordHeaderLen is the fixed size of a record header in bytes.
const RecordHeaderLen = 56

// RecordHeader is the distribution descriptor stored ahead of each record.
type RecordHeader struct {
	NArrays     uint32 // inserts interleaved in this record
	NElems      uint32 // global element count of the writing collection
	NProcs      uint32 // writer's node count
	Mode        uint8  // distr.Mode of the writer
	BlockSize   uint32 // BLOCK_CYCLIC block, 0 otherwise
	AlignOffset int32
	AlignStride int32
	TemplateN   uint32
	DescBytes   uint32 // descriptor section length (EXPLICIT owner table)
	DataBytes   uint64 // total payload bytes in the data section
}

// SizeTableBytes returns the byte length of the record's size table.
func (h *RecordHeader) SizeTableBytes() int64 { return int64(h.NElems) * 4 }

// TotalBytes returns the full record length including the header.
func (h *RecordHeader) TotalBytes() int64 {
	return RecordHeaderLen + int64(h.DescBytes) + h.SizeTableBytes() + int64(h.DataBytes)
}

// EncodeOwnerTable renders an EXPLICIT distribution's owner table as the
// record's descriptor section.
func EncodeOwnerTable(owners []int32) []byte {
	var e Buffer
	for _, o := range owners {
		e.Uint32(uint32(o))
	}
	return e.Bytes()
}

// DecodeOwnerTable parses a descriptor section of n owners.
func DecodeOwnerTable(b []byte, n int) ([]int, error) {
	if len(b) < 4*n {
		return nil, fmt.Errorf("enc: owner table truncated: %d bytes for %d entries", len(b), n)
	}
	d := NewReader(b)
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Uint32())
	}
	return out, d.Err()
}

// Encode renders the fixed-size header.
func (h *RecordHeader) Encode() []byte {
	return h.AppendTo(nil)
}

// AppendTo appends the fixed-size header encoding to dst — the
// allocation-free form for callers assembling a record block in a reused or
// pooled buffer.
func (h *RecordHeader) AppendTo(dst []byte) []byte {
	e := Buffer{b: dst}
	mark := e.Len()
	e.Uint32(RecordMagic)
	e.Uint32(h.NArrays)
	e.Uint32(h.NElems)
	e.Uint32(h.NProcs)
	e.Uint32(uint32(h.Mode))
	e.Uint32(h.BlockSize)
	e.Int32(h.AlignOffset)
	e.Int32(h.AlignStride)
	e.Uint32(h.TemplateN)
	e.Uint32(h.DescBytes)
	e.Uint64(h.DataBytes)
	e.Uint64(0) // reserved
	if e.Len()-mark != RecordHeaderLen {
		panic(fmt.Sprintf("enc: record header encoded to %d bytes, want %d", e.Len()-mark, RecordHeaderLen))
	}
	return e.Bytes()
}

// DecodeRecordHeader parses a fixed-size record header.
func DecodeRecordHeader(b []byte) (RecordHeader, error) {
	var h RecordHeader
	d := NewReader(b)
	if magic := d.Uint32(); magic != RecordMagic {
		if d.Err() != nil {
			return h, fmt.Errorf("enc: record header truncated: %w", d.Err())
		}
		return h, fmt.Errorf("enc: bad record magic %#x", magic)
	}
	h.NArrays = d.Uint32()
	h.NElems = d.Uint32()
	h.NProcs = d.Uint32()
	h.Mode = uint8(d.Uint32())
	h.BlockSize = d.Uint32()
	h.AlignOffset = d.Int32()
	h.AlignStride = d.Int32()
	h.TemplateN = d.Uint32()
	h.DescBytes = d.Uint32()
	h.DataBytes = d.Uint64()
	d.Uint64() // reserved
	if err := d.Err(); err != nil {
		return h, fmt.Errorf("enc: record header truncated: %w", err)
	}
	if h.NProcs == 0 {
		return h, fmt.Errorf("enc: record header has zero writer procs")
	}
	// Bound the declared data section: readers size buffers and skip records
	// with TotalBytes, so a corrupt header claiming ~2^64 payload bytes must
	// be rejected here rather than overflow the int64 offset arithmetic.
	if h.DataBytes > 1<<56 {
		return h, fmt.Errorf("enc: record header declares unreasonable data section (%d bytes)", h.DataBytes)
	}
	return h, nil
}

// EncodeSizeTable renders per-element sizes as u32s.
func EncodeSizeTable(sizes []uint32) []byte {
	return AppendSizeTable(nil, sizes)
}

// AppendSizeTable appends the size-table encoding of sizes to dst.
func AppendSizeTable(dst []byte, sizes []uint32) []byte {
	e := Buffer{b: dst}
	for _, s := range sizes {
		e.Uint32(s)
	}
	return e.Bytes()
}

// SumSizeTable validates that b is a size table of exactly n entries and
// returns the sum of the entries — what a record flush needs from the
// gathered table, without materializing a []uint32.
func SumSizeTable(b []byte, n int) (uint64, error) {
	if len(b) != 4*n {
		return 0, fmt.Errorf("enc: size table is %d bytes, want %d for %d entries", len(b), 4*n, n)
	}
	var total uint64
	for off := 0; off < len(b); off += 4 {
		total += uint64(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
	}
	return total, nil
}

// DecodeSizeTable parses a size table of n entries.
func DecodeSizeTable(b []byte, n int) ([]uint32, error) {
	if len(b) < 4*n {
		return nil, fmt.Errorf("enc: size table truncated: %d bytes for %d entries", len(b), n)
	}
	d := NewReader(b)
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.Uint32()
	}
	return out, d.Err()
}
