package enc

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	var e Buffer
	e.Uint32(0xDEADBEEF)
	e.Uint64(1 << 60)
	e.Int32(-7)
	e.Int64(-1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Pi)
	e.Float32(2.5)
	e.String("pC++/streams")
	e.Bytes32([]byte{9, 8, 7})

	d := NewReader(e.Bytes())
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 1<<60 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := d.Int32(); got != -7 {
		t.Fatalf("Int32 = %d", got)
	}
	if got := d.Int64(); got != -1<<40 {
		t.Fatalf("Int64 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.Float64(); got != math.Pi {
		t.Fatalf("Float64 = %v", got)
	}
	if got := d.Float32(); got != 2.5 {
		t.Fatalf("Float32 = %v", got)
	}
	if got := d.String(); got != "pC++/streams" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Bytes32 = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestSliceRoundTrip(t *testing.T) {
	var e Buffer
	f := []float64{1.5, -2.25, math.MaxFloat64, 0}
	i := []int64{-5, 0, 1 << 62}
	e.Float64Slice(f)
	e.Int64Slice(i)
	e.Float64Slice(nil)

	d := NewReader(e.Bytes())
	if got := d.Float64Slice(); !reflect.DeepEqual(got, f) {
		t.Fatalf("Float64Slice = %v", got)
	}
	if got := d.Int64Slice(); !reflect.DeepEqual(got, i) {
		t.Fatalf("Int64Slice = %v", got)
	}
	if got := d.Float64Slice(); len(got) != 0 {
		t.Fatalf("empty slice = %v", got)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestReaderStickyError(t *testing.T) {
	d := NewReader([]byte{1, 2})
	if got := d.Uint64(); got != 0 {
		t.Fatalf("short Uint64 = %d, want 0", got)
	}
	if !errors.Is(d.Err(), ErrShort) {
		t.Fatalf("Err = %v, want ErrShort", d.Err())
	}
	// Error is sticky: subsequent reads keep failing even if bytes remain.
	if got := d.Uint32(); got != 0 {
		t.Fatalf("post-error read = %d", got)
	}
}

func TestReaderShortSlices(t *testing.T) {
	var e Buffer
	e.Uint32(1000) // claims 1000 floats, provides none
	d := NewReader(e.Bytes())
	if got := d.Float64Slice(); got != nil {
		t.Fatalf("truncated slice = %v, want nil", got)
	}
	if !errors.Is(d.Err(), ErrShort) {
		t.Fatalf("Err = %v", d.Err())
	}
	// Huge claimed length must not cause a huge allocation.
	var e2 Buffer
	e2.Uint32(math.MaxUint32)
	d2 := NewReader(e2.Bytes())
	if got := d2.Bytes32(); got != nil {
		t.Fatal("oversized Bytes32 succeeded")
	}
}

func TestBufferReset(t *testing.T) {
	var e Buffer
	e.Uint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.Uint32(2)
	d := NewReader(e.Bytes())
	if d.Uint32() != 2 {
		t.Fatal("buffer reuse broken")
	}
}

func TestRawAliasVsCopy(t *testing.T) {
	var e Buffer
	e.Bytes32([]byte("abc"))
	src := e.Bytes()
	d := NewReader(src)
	got := d.Bytes32()
	src[4] = 'X' // mutate underlying buffer after decode
	if string(got) != "abc" {
		t.Fatalf("Bytes32 aliased its source: %q", got)
	}
}

func TestFileHeader(t *testing.T) {
	h := EncodeFileHeader()
	if len(h) != FileHeaderLen {
		t.Fatalf("header len %d, want %d", len(h), FileHeaderLen)
	}
	if err := CheckFileHeader(h); err != nil {
		t.Fatal(err)
	}
	if err := CheckFileHeader(h[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := append([]byte{}, h...)
	bad[0] = 'X'
	if err := CheckFileHeader(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecordHeaderRoundTrip(t *testing.T) {
	h := RecordHeader{
		NArrays:     3,
		NElems:      2000,
		NProcs:      8,
		Mode:        2,
		BlockSize:   16,
		AlignOffset: -4,
		AlignStride: 3,
		TemplateN:   6000,
		DataBytes:   11_200_000,
	}
	b := h.Encode()
	if len(b) != RecordHeaderLen {
		t.Fatalf("encoded %d bytes, want %d", len(b), RecordHeaderLen)
	}
	got, err := DecodeRecordHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
	if got.SizeTableBytes() != 8000 {
		t.Fatalf("SizeTableBytes = %d", got.SizeTableBytes())
	}
	if got.TotalBytes() != 56+8000+11_200_000 {
		t.Fatalf("TotalBytes = %d", got.TotalBytes())
	}
}

func TestRecordHeaderRejects(t *testing.T) {
	if _, err := DecodeRecordHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated record header accepted")
	}
	h := RecordHeader{NElems: 1, NProcs: 1}
	b := h.Encode()
	b[0] ^= 0xFF
	if _, err := DecodeRecordHeader(b); err == nil {
		t.Fatal("bad record magic accepted")
	}
	zeroHdr := RecordHeader{NElems: 1}
	zero := zeroHdr.Encode()
	if _, err := DecodeRecordHeader(zero); err == nil {
		t.Fatal("zero-proc record header accepted")
	}
}

func TestSizeTableRoundTrip(t *testing.T) {
	sizes := []uint32{0, 1, 5604, math.MaxUint32}
	b := EncodeSizeTable(sizes)
	got, err := DecodeSizeTable(b, len(sizes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sizes) {
		t.Fatalf("got %v", got)
	}
	if _, err := DecodeSizeTable(b, len(sizes)+1); err == nil {
		t.Fatal("oversized decode accepted")
	}
}

// Property: header round trip is identity for arbitrary field values.
func TestRecordHeaderQuick(t *testing.T) {
	f := func(nArr, nEl, bs, tn uint32, np uint16, mode uint8, ao, as int32, db uint64) bool {
		h := RecordHeader{
			NArrays: nArr, NElems: nEl, NProcs: uint32(np) + 1,
			Mode: mode % 3, BlockSize: bs,
			AlignOffset: ao, AlignStride: as, TemplateN: tn,
			DataBytes: db % (1 << 56), // decoder rejects declared sizes past this bound
		}
		got, err := DecodeRecordHeader(h.Encode())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary scalar scripts round trip.
func TestBufferReaderQuick(t *testing.T) {
	f := func(u32 uint32, i64 int64, fl float64, s string, bs []byte) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		var e Buffer
		e.Uint32(u32)
		e.Int64(i64)
		e.Float64(fl)
		e.String(s)
		e.Bytes32(bs)
		d := NewReader(e.Bytes())
		return d.Uint32() == u32 &&
			d.Int64() == i64 &&
			d.Float64() == fl &&
			d.String() == s &&
			bytes.Equal(d.Bytes32(), bs) &&
			d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
