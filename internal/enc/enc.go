// Package enc defines the d/stream binary encodings: the little-endian
// typed buffer encoder/decoder used by element inserters and extractors,
// and the on-disk record header carrying the distribution and per-element
// size information the library stores ahead of the data (paper §4.1:
// "Information about the distribution ... and about the size of the data to
// be output from each element needs to be written to the file prior to the
// actual data").
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Buffer is an append-only typed encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// Bytes returns the encoded bytes (aliasing the internal buffer).
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset clears the buffer, retaining capacity.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Uint32 appends v.
func (e *Buffer) Uint32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

// Uint64 appends v.
func (e *Buffer) Uint64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// Int32 appends v.
func (e *Buffer) Int32(v int32) { e.Uint32(uint32(v)) }

// Int64 appends v.
func (e *Buffer) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool appends v as one byte.
func (e *Buffer) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Float64 appends v.
func (e *Buffer) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Float32 appends v.
func (e *Buffer) Float32(v float32) { e.Uint32(math.Float32bits(v)) }

// Raw appends p verbatim.
func (e *Buffer) Raw(p []byte) { e.b = append(e.b, p...) }

// Bytes32 appends p with a u32 length prefix.
func (e *Buffer) Bytes32(p []byte) {
	e.Uint32(uint32(len(p)))
	e.Raw(p)
}

// String appends s with a u32 length prefix.
func (e *Buffer) String(s string) {
	e.Uint32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Float64Slice appends a u32 length prefix followed by the values.
func (e *Buffer) Float64Slice(v []float64) {
	e.Uint32(uint32(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Int64Slice appends a u32 length prefix followed by the values.
func (e *Buffer) Int64Slice(v []int64) {
	e.Uint32(uint32(len(v)))
	for _, x := range v {
		e.Int64(x)
	}
}

// ErrShort reports a decode past the end of the buffer.
var ErrShort = errors.New("enc: short buffer")

// Reader is a sequential typed decoder with sticky error state: after the
// first failure every further Get returns the zero value and Err() reports
// the failure, so extractors can decode unconditionally and check once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader decodes from b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset repoints the reader at b, clearing position and error state, so a
// single Reader can decode a stream of records without per-record
// allocation.
func (d *Reader) Reset(b []byte) {
	d.b = b
	d.off = 0
	d.err = nil
}

// Err returns the first decode error, if any.
func (d *Reader) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Reader) Remaining() int { return len(d.b) - d.off }

// Offset returns the current read position.
func (d *Reader) Offset() int { return d.off }

func (d *Reader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShort, n, d.off, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// Uint32 decodes a u32.
func (d *Reader) Uint32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// Uint64 decodes a u64.
func (d *Reader) Uint64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Int32 decodes an i32.
func (d *Reader) Int32() int32 { return int32(d.Uint32()) }

// Int64 decodes an i64.
func (d *Reader) Int64() int64 { return int64(d.Uint64()) }

// Bool decodes one byte as a bool.
func (d *Reader) Bool() bool {
	p := d.take(1)
	return p != nil && p[0] != 0
}

// Float64 decodes an f64.
func (d *Reader) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Float32 decodes an f32.
func (d *Reader) Float32() float32 { return math.Float32frombits(d.Uint32()) }

// Raw decodes n raw bytes (aliasing the underlying buffer).
func (d *Reader) Raw(n int) []byte { return d.take(n) }

// Bytes32 decodes a u32-length-prefixed byte slice (copied).
func (d *Reader) Bytes32() []byte {
	n := int(d.Uint32())
	p := d.take(n)
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// String decodes a u32-length-prefixed string.
func (d *Reader) String() string {
	n := int(d.Uint32())
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Float64Slice decodes a u32-length-prefixed []float64.
func (d *Reader) Float64Slice() []float64 {
	n := int(d.Uint32())
	if d.err != nil {
		return nil
	}
	out := make([]float64, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		out = append(out, d.Float64())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Int64Slice decodes a u32-length-prefixed []int64.
func (d *Reader) Int64Slice() []int64 {
	n := int(d.Uint32())
	if d.err != nil {
		return nil
	}
	out := make([]int64, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		out = append(out, d.Int64())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
