package collection

import (
	"fmt"
	"sync"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/vtime"
)

func runMachine(t *testing.T, n int, body func(*machine.Node) error) {
	t.Helper()
	if _, err := machine.Run(machine.Config{NProcs: n, Profile: vtime.Challenge()}, body); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsMismatchedProcs(t *testing.T) {
	runMachine(t, 2, func(n *machine.Node) error {
		d, _ := distr.New(10, 4, distr.Block, 0)
		if _, err := New[int](n, d); err == nil {
			return fmt.Errorf("mismatched nprocs accepted")
		}
		return nil
	})
}

func TestLocalSizes(t *testing.T) {
	runMachine(t, 3, func(n *machine.Node) error {
		d, _ := distr.New(10, 3, distr.Block, 0)
		c, err := New[float64](n, d)
		if err != nil {
			return err
		}
		want := d.LocalCount(n.Rank())
		if c.LocalLen() != want {
			return fmt.Errorf("rank %d LocalLen %d, want %d", n.Rank(), c.LocalLen(), want)
		}
		if c.GlobalLen() != 10 {
			return fmt.Errorf("GlobalLen %d", c.GlobalLen())
		}
		return nil
	})
}

// TestApplyCoversEveryElementOnce: across the machine, Apply visits each
// global index exactly once with a correctly mapped pointer.
func TestApplyCoversEveryElementOnce(t *testing.T) {
	const N, P = 23, 4
	var mu sync.Mutex
	seen := make(map[int]int)
	runMachine(t, P, func(n *machine.Node) error {
		d, _ := distr.New(N, P, distr.Cyclic, 0)
		c, err := New[int](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *int) {
			*e = g * g
			mu.Lock()
			seen[g]++
			mu.Unlock()
		})
		// Local values really were written through the pointers.
		for l, v := range c.Local() {
			g := c.GlobalIndexOf(l)
			if v != g*g {
				return fmt.Errorf("rank %d local %d: %d != %d", n.Rank(), l, v, g*g)
			}
		}
		return nil
	})
	if len(seen) != N {
		t.Fatalf("visited %d distinct elements, want %d", len(seen), N)
	}
	for g, k := range seen {
		if k != 1 {
			t.Fatalf("element %d visited %d times", g, k)
		}
	}
}

func TestOwns(t *testing.T) {
	runMachine(t, 2, func(n *machine.Node) error {
		d, _ := distr.New(6, 2, distr.Cyclic, 0)
		c, err := New[string](n, d)
		if err != nil {
			return err
		}
		for g := 0; g < 6; g++ {
			l, ok := c.Owns(g)
			wantOwn := g%2 == n.Rank()
			if ok != wantOwn {
				return fmt.Errorf("rank %d Owns(%d) = %v, want %v", n.Rank(), g, ok, wantOwn)
			}
			if ok && c.GlobalIndexOf(l) != g {
				return fmt.Errorf("rank %d: slot %d maps to %d, want %d", n.Rank(), l, c.GlobalIndexOf(l), g)
			}
		}
		return nil
	})
}

func TestAtAliasesLocal(t *testing.T) {
	runMachine(t, 1, func(n *machine.Node) error {
		d, _ := distr.New(4, 1, distr.Block, 0)
		c, err := New[int](n, d)
		if err != nil {
			return err
		}
		*c.At(2) = 99
		if c.Local()[2] != 99 {
			return fmt.Errorf("At did not alias Local")
		}
		return nil
	})
}

func TestAlignedWith(t *testing.T) {
	runMachine(t, 2, func(n *machine.Node) error {
		d1, _ := distr.New(8, 2, distr.Cyclic, 0)
		d2, _ := distr.New(8, 2, distr.Cyclic, 0)
		d3, _ := distr.New(8, 2, distr.Block, 0)
		c, err := New[int](n, d1)
		if err != nil {
			return err
		}
		if !c.AlignedWith(d2) {
			return fmt.Errorf("same layout reported unaligned")
		}
		if c.AlignedWith(d3) {
			return fmt.Errorf("different layout reported aligned")
		}
		return nil
	})
}
