// Package collection emulates pC++ collections: distributed arrays of
// arbitrary objects with HPF-style distribution and alignment (paper §4:
// "A collection is a distributed array of objects with additional
// infrastructure supporting the implementation of arbitrary distributed
// data structures ... over the distributed array base").
//
// Each node of the machine holds the elements it owns, in local order. A
// Collection value is one node's view; the SPMD program constructs the same
// collection on every node, and parallel operations (Apply) run the element
// function over the locally owned elements, which across the machine covers
// every element exactly once — the object-parallel execution model.
package collection

import (
	"fmt"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
)

// Collection is one node's view of a distributed array of T.
type Collection[T any] struct {
	node  *machine.Node
	dist  *distr.Distribution
	local []T
}

// New builds rank-local storage for a collection distributed by d. Every
// node of the machine must construct the collection with the same d.
func New[T any](node *machine.Node, d *distr.Distribution) (*Collection[T], error) {
	if d.NProcs != node.Size() {
		return nil, fmt.Errorf("collection: distribution is over %d procs but machine has %d",
			d.NProcs, node.Size())
	}
	return &Collection[T]{
		node:  node,
		dist:  d,
		local: make([]T, d.LocalCount(node.Rank())),
	}, nil
}

// Node returns the owning node context.
func (c *Collection[T]) Node() *machine.Node { return c.node }

// Dist returns the collection's distribution.
func (c *Collection[T]) Dist() *distr.Distribution { return c.dist }

// GlobalLen returns the total number of elements across all nodes.
func (c *Collection[T]) GlobalLen() int { return c.dist.N }

// LocalLen returns the number of elements owned by this node.
func (c *Collection[T]) LocalLen() int { return len(c.local) }

// Local returns the locally owned elements in local order. Mutating the
// returned slice mutates the collection.
func (c *Collection[T]) Local() []T { return c.local }

// At returns a pointer to the local element in slot `local`.
func (c *Collection[T]) At(local int) *T { return &c.local[local] }

// GlobalIndexOf returns the global index of local slot `local` on this node.
func (c *Collection[T]) GlobalIndexOf(local int) int {
	return c.dist.GlobalIndex(c.node.Rank(), local)
}

// Owns reports whether this node owns global element g, and if so its local
// slot.
func (c *Collection[T]) Owns(g int) (local int, ok bool) {
	if c.dist.Owner(g) != c.node.Rank() {
		return 0, false
	}
	return c.dist.LocalIndex(g), true
}

// Apply concurrently applies f to every locally owned element — pC++'s
// object-parallel method invocation. f receives the element's global index
// and a pointer to the element.
func (c *Collection[T]) Apply(f func(global int, elem *T)) {
	for l := range c.local {
		f(c.GlobalIndexOf(l), &c.local[l])
	}
}

// AlignedWith reports whether o has element-for-element the same layout as
// c, the precondition the paper puts on interleaved inserts from multiple
// collections ("Assume g2 is a second collection aligned with g").
func (c *Collection[T]) AlignedWith(d *distr.Distribution) bool {
	return c.dist.SameLayout(d)
}
