package dsmon

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// sample is one exposition row: a metric handle plus its desc, flattened
// so both exposition formats can iterate families uniformly.
type sample struct {
	d    desc
	kind string // "counter" | "gauge" | "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// gather snapshots the registry into samples sorted by (name, labels).
func (r *Registry) gather() []sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cols := r.collectors
	r.mu.Unlock()
	for _, f := range cols {
		f()
	}
	r.mu.Lock()
	out := make([]sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, sample{d: c.d, kind: "counter", c: c})
	}
	for _, g := range r.gauges {
		out = append(out, sample{d: g.d, kind: "gauge", g: g})
	}
	for _, h := range r.hists {
		out = append(out, sample{d: h.d, kind: "histogram", h: h})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].d.name != out[j].d.name {
			return out[i].d.name < out[j].d.name
		}
		return out[i].d.labels < out[j].d.labels
	})
	return out
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// withExtraLabels returns a copy of d whose label set includes the extra
// rendered pairs, re-sorted into canonical order. Used by the multi-registry
// exposition to stamp every sample of one registry with an identifying label
// (e.g. registry="tenant-a") without touching the live metric descriptors.
func withExtraLabels(d desc, rendered string) desc {
	if rendered == "" {
		return d
	}
	pairs := strings.Split(rendered, ",")
	if d.labels != "" {
		pairs = append(pairs, strings.Split(d.labels, ",")...)
	}
	sort.Strings(pairs)
	d.labels = strings.Join(pairs, ",")
	return d
}

// LabeledRegistry pairs a registry with extra label key/value pairs injected
// into every sample at exposition time.
type LabeledRegistry struct {
	Reg    *Registry
	Labels []string // key, value, key, value…
}

// WritePrometheusMerged renders several registries as one Prometheus text
// exposition: samples from all registries are merged and sorted by family,
// so each # HELP / # TYPE pair appears exactly once even when families
// collide across registries, and every sample carries its registry's extra
// labels. This is what lets one daemon /metrics page cover many tenants (or
// many embedded machine runs) without a port per registry.
func WritePrometheusMerged(w io.Writer, regs ...LabeledRegistry) error {
	var all []sample
	for _, lr := range regs {
		rendered := renderLabels(lr.Labels)
		for _, s := range lr.Reg.gather() {
			s.d = withExtraLabels(s.d, rendered)
			all = append(all, s)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d.name != all[j].d.name {
			return all[i].d.name < all[j].d.name
		}
		return all[i].d.labels < all[j].d.labels
	})
	return writeProm(w, all)
}

// promName renders `name{labels}` (or bare name when unlabeled), with
// extra label pairs appended (the histogram `le`).
func promName(d desc, extra ...string) string {
	labels := d.labels
	if e := renderLabels(extra); e != "" {
		if labels != "" {
			labels += ","
		}
		labels += e
	}
	if labels == "" {
		return d.name
	}
	return d.name + "{" + labels + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per family, then the
// samples. Deterministic order: families by name, samples by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writeProm(w, r.gather())
}

// writeProm renders pre-gathered samples (sorted by name, then labels).
func writeProm(w io.Writer, samples []sample) error {
	lastFamily := ""
	for _, s := range samples {
		if s.d.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				s.d.name, s.d.help, s.d.name, s.kind); err != nil {
				return err
			}
			lastFamily = s.d.name
		}
		var err error
		switch s.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", promName(s.d), s.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %s\n", promName(s.d), fmtFloat(s.g.Value()))
		case "histogram":
			var cum int64
			for i, b := range s.h.bounds {
				cum += s.h.buckets[i].Load()
				if _, err = fmt.Fprintf(w, "%s %d\n",
					promBucketName(s.d, fmtFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += s.h.buckets[len(s.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s %d\n", promBucketName(s.d, "+Inf"), cum); err != nil {
				return err
			}
			sumD, countD := s.d, s.d
			sumD.name += "_sum"
			countD.name += "_count"
			// _count is the cumulative +Inf bucket, not a separate Count()
			// load: with ranks observing concurrently, two loads could tear
			// (count ahead of buckets or vice versa); deriving one from the
			// other keeps each exposition internally consistent.
			if _, err = fmt.Fprintf(w, "%s %s\n%s %d\n",
				promName(sumD), fmtFloat(s.h.Sum()),
				promName(countD), cum); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promBucketName renders the `name_bucket{…,le="bound"}` sample name.
func promBucketName(d desc, le string) string {
	bd := d
	bd.name += "_bucket"
	return promName(bd, "le", le)
}

// Snapshot is the JSON form of the registry at one instant.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistSnap is one histogram's snapshot; Buckets holds cumulative counts
// per upper bound, with the +Inf bucket equal to Count.
type HistSnap struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Bounds  []float64         `json:"bounds"`
	Buckets []int64           `json:"buckets"`
}

// labelMap parses the rendered label string back into a map for JSON.
func labelMap(labels string) map[string]string {
	if labels == "" {
		return nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		out[k] = strings.Trim(v, `"`)
	}
	return out
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistSnap{},
	}
	for _, s := range r.gather() {
		switch s.kind {
		case "counter":
			snap.Counters = append(snap.Counters, CounterSnap{
				Name: s.d.name, Labels: labelMap(s.d.labels), Value: s.c.Value(),
			})
		case "gauge":
			snap.Gauges = append(snap.Gauges, GaugeSnap{
				Name: s.d.name, Labels: labelMap(s.d.labels), Value: s.g.Value(),
			})
		case "histogram":
			hs := HistSnap{
				Name: s.d.name, Labels: labelMap(s.d.labels),
				Sum:     s.h.Sum(),
				Bounds:  append([]float64(nil), s.h.bounds...),
				Buckets: make([]int64, len(s.h.bounds)+1),
			}
			var cum int64
			for i := range s.h.buckets {
				cum += s.h.buckets[i].Load()
				hs.Buckets[i] = cum
			}
			// Count derives from the buckets (see WritePrometheus): each
			// bucket is monotone, so successive snapshots never show a
			// count that disagrees with the bucket sums or goes backward.
			hs.Count = cum
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// quantileFromBuckets estimates the q-quantile (0 ≤ q ≤ 1) from cumulative
// bucket counts by linear interpolation inside the containing bucket —
// the standard Prometheus histogram_quantile estimate. The first bucket
// interpolates from 0; values above the last bound clamp to it.
func quantileFromBuckets(bounds []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := cum[len(cum)-1]
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no upper bound to interpolate toward; report
			// the largest finite bound as the best available estimate.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo, loCount := 0.0, int64(0)
		if i > 0 {
			lo, loCount = bounds[i-1], cum[i-1]
		}
		width := float64(c - loCount)
		if width == 0 {
			return bounds[i]
		}
		return lo + (bounds[i]-lo)*(rank-float64(loCount))/width
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile of the snapshotted distribution.
func (s HistSnap) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Bounds, s.Buckets, q)
}

// P50 is Quantile(0.50).
func (s HistSnap) P50() float64 { return s.Quantile(0.50) }

// P95 is Quantile(0.95).
func (s HistSnap) P95() float64 { return s.Quantile(0.95) }

// P99 is Quantile(0.99).
func (s HistSnap) P99() float64 { return s.Quantile(0.99) }

// Quantile estimates the q-quantile of the live histogram from a consistent
// cumulative-bucket snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum := make([]int64, len(h.buckets))
	var c int64
	for i := range h.buckets {
		c += h.buckets[i].Load()
		cum[i] = c
	}
	return quantileFromBuckets(h.bounds, cum, q)
}

// Delta returns s - prev element-wise, matching rows by (name, labels);
// rows absent from prev pass through unchanged. Watchers use it to turn
// successive cumulative snapshots into per-interval rates.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	ckey := func(c CounterSnap) string { return c.Name + "\x00" + renderLabelMap(c.Labels) }
	hkey := func(h HistSnap) string { return h.Name + "\x00" + renderLabelMap(h.Labels) }
	prevC := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[ckey(c)] = c.Value
	}
	prevH := make(map[string]HistSnap, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevH[hkey(h)] = h
	}
	out := Snapshot{
		Counters:   make([]CounterSnap, len(s.Counters)),
		Gauges:     append([]GaugeSnap{}, s.Gauges...), // gauges are levels, not cumulative
		Histograms: make([]HistSnap, len(s.Histograms)),
	}
	for i, c := range s.Counters {
		c.Value -= prevC[ckey(c)]
		out.Counters[i] = c
	}
	for i, h := range s.Histograms {
		if p, ok := prevH[hkey(h)]; ok && len(p.Buckets) == len(h.Buckets) {
			h.Count -= p.Count
			h.Sum -= p.Sum
			bk := make([]int64, len(h.Buckets))
			for j := range h.Buckets {
				bk[j] = h.Buckets[j] - p.Buckets[j]
			}
			h.Buckets = bk
		}
		out.Histograms[i] = h
	}
	return out
}

// renderLabelMap renders a label map back to the sorted canonical string.
func renderLabelMap(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, m[k])
	}
	return b.String()
}
