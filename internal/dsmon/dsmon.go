// Package dsmon is the observability layer of the d/stream stack: one
// per-run metrics registry (atomic counters, gauges, and fixed-bucket
// histograms) plus a span API that feeds the trace package's virtual-time
// timeline. The paper's whole argument is quantitative — its tables explain
// buffered vs. unbuffered I/O by counting operations and accounting where
// virtual time goes — and dsmon makes the same accounting available for
// every layer at run time: message sizes and receive waits in comm,
// collective latencies, PFS operation sizes and durations, and the
// d/stream buffer behaviour itself (fill levels, flush/refill stalls, and
// the blocked-vs-overlapped split of asynchronous write-behind).
//
// Everything is nil-safe: a nil *Registry hands out nil metric handles
// whose methods are no-ops, and a nil *Monitor records nothing, so
// instrumented code needs no conditionals and an unmonitored run pays only
// a nil check per operation.
//
// Three expositions are provided: Prometheus-style text (WritePrometheus),
// a JSON snapshot (WriteJSON), and — through the attached trace.Recorder —
// Chrome trace-viewer JSON whose events carry the io, comm, collective and
// dstream categories.
package dsmon

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// desc identifies one metric: a family name, a help line shared by the
// family, and an optional set of label pairs rendered Prometheus-style.
type desc struct {
	name   string
	help   string
	labels string // rendered `key="value",…` in key order; "" when unlabeled
}

// key is the registry map key: name plus rendered labels.
func (d desc) key() string { return d.name + "{" + d.labels + "}" }

// renderLabels turns variadic key, value, key, value… pairs into the
// canonical rendered form. Panics on an odd count (a programming error at
// an instrumentation site, not a runtime condition).
func renderLabels(kv []string) string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("dsmon: odd label list %q", kv))
	}
	n := len(kv) / 2
	pairs := make([]string, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv[2*i] + `="` + kv[2*i+1] + `"`
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// Counter is a monotonically increasing integer metric. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	d desc
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways (buffer fill levels).
// A nil *Gauge is a no-op.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by d (negative to decrease), atomically.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations ≤ bounds[i]; one implicit +Inf bucket). A
// nil *Histogram is a no-op.
type Histogram struct {
	d       desc
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values — e.g. the total virtual
// seconds stalled, when the histogram observes stall durations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Default bucket boundaries. Sizes are bytes (message payloads, I/O
// transfers, buffer flushes); latencies are virtual seconds.
var (
	// SizeBuckets spans one cache line to multi-megabyte parallel transfers.
	SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
	// LatencyBuckets spans sub-microsecond overheads to multi-second stalls.
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30}
)

// Registry holds one run's metrics. Handles are get-or-create: two sites
// asking for the same name and labels share one metric, so e.g. every
// stream's flush histogram aggregates into a single family. All methods
// are safe for concurrent use; a nil *Registry returns nil handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func()
}

// AddCollector registers a hook that runs at the start of every gather —
// before WritePrometheus, WriteJSON, or Snapshot reads the metrics. It is
// the place to refresh gauges whose source of truth lives elsewhere (e.g.
// the buffer-pool statistics, which are process-global atomics rather than
// per-event instrument calls). Collectors run outside the registry lock and
// may therefore create or set metrics.
func (r *Registry) AddCollector(f func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. labels are
// key, value pairs baked into the metric's identity.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[d.key()]; ok {
		return c
	}
	c := &Counter{d: d}
	r.counters[d.key()] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[d.key()]; ok {
		return g
	}
	g := &Gauge{d: d}
	r.gauges[d.key()] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use. Later calls reuse the first
// call's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[d.key()]; ok {
		return h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic(fmt.Sprintf("dsmon: histogram %q bounds not ascending: %v", name, bounds))
	}
	h := &Histogram{d: d, bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	r.hists[d.key()] = h
	return h
}
