package dsmon_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// TestWatcherDeliversAndStops: a watcher delivers consistent periodic
// snapshots while the registry mutates, counters never go backward between
// successive snapshots, and Stop delivers one final snapshot before closing
// the channel.
func TestWatcherDeliversAndStops(t *testing.T) {
	reg := dsmon.NewRegistry()
	ctr := reg.Counter("events_total", "")
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				ctr.Inc()
			}
		}
	}()

	w := reg.Watch(time.Millisecond)
	var last int64 = -1
	for i := 0; i < 5; i++ {
		snap, ok := <-w.C()
		if !ok {
			t.Fatal("watcher channel closed early")
		}
		if len(snap.Counters) != 1 || snap.Counters[0].Name != "events_total" {
			t.Fatalf("snapshot %d = %+v", i, snap)
		}
		if snap.Counters[0].Value < last {
			t.Fatalf("counter went backward: %d after %d", snap.Counters[0].Value, last)
		}
		last = snap.Counters[0].Value
	}
	close(stop)
	w.Stop()
	// Stop sends one final snapshot (unless the buffer already held one),
	// then closes; drain to the close and verify monotonicity held.
	for snap := range w.C() {
		if len(snap.Counters) == 1 && snap.Counters[0].Value < last {
			t.Fatalf("final snapshot went backward: %d after %d", snap.Counters[0].Value, last)
		}
	}
	// A second Stop is a harmless no-op.
	w.Stop()
}

// TestSnapshotDelta: counters and histogram buckets subtract element-wise,
// gauges pass through as levels, and rows new since prev pass unchanged.
func TestSnapshotDelta(t *testing.T) {
	reg := dsmon.NewRegistry()
	c := reg.Counter("ops_total", "", "kind", "put")
	g := reg.Gauge("depth", "")
	h := reg.Histogram("lat", "", []float64{1, 10})
	c.Add(5)
	g.Set(3)
	h.Observe(0.5)
	prev := reg.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(0.5)
	h.Observe(100)
	cur := reg.Snapshot()

	d := cur.Delta(prev)
	if d.Counters[0].Value != 7 {
		t.Fatalf("counter delta = %d, want 7", d.Counters[0].Value)
	}
	if d.Gauges[0].Value != 9 {
		t.Fatalf("gauge delta = %v, want the level 9", d.Gauges[0].Value)
	}
	hs := d.Histograms[0]
	if hs.Count != 2 || hs.Sum != 100.5 {
		t.Fatalf("histogram delta count=%d sum=%v, want 2, 100.5", hs.Count, hs.Sum)
	}
	want := []int64{1, 1, 2}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket delta %v, want %v", hs.Buckets, want)
		}
	}
}

// TestExpositionRaceHammer runs a real machine workload while a watcher
// goroutine and two scraper goroutines hammer Snapshot, WritePrometheus and
// WriteChromeJSON mid-run. Under -race this is the torn-read detector; the
// assertions check snapshot self-consistency (Count equals the +Inf bucket)
// and cross-snapshot monotonicity of every histogram's count.
func TestExpositionRaceHammer(t *testing.T) {
	mon := dsmon.NewTracing()
	reg := mon.Registry()

	done := make(chan struct{})
	scrape := func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			var sb strings.Builder
			if err := mon.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			sb.Reset()
			if err := mon.WriteChromeJSON(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}
	go scrape()
	go scrape()

	w := reg.Watch(time.Millisecond)
	watcherErr := make(chan error, 1)
	go func() {
		defer close(watcherErr)
		lastCount := map[string]int64{}
		for snap := range w.C() {
			for _, h := range snap.Histograms {
				inf := h.Buckets[len(h.Buckets)-1]
				if h.Count != inf {
					t.Errorf("torn snapshot: %s count %d != +Inf bucket %d", h.Name, h.Count, inf)
				}
				// Histograms are labeled families — key per child, not per name.
				keys := make([]string, 0, len(h.Labels))
				for k := range h.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				key := h.Name
				for _, k := range keys {
					key += "{" + k + "=" + h.Labels[k] + "}"
				}
				if h.Count < lastCount[key] {
					t.Errorf("histogram %s count went backward: %d after %d", key, h.Count, lastCount[key])
				}
				lastCount[key] = h.Count
			}
		}
	}()

	_, err := machine.Run(machine.Config{
		NProcs: 4, Profile: vtime.CM5(), Monitor: mon,
	}, func(n *machine.Node) error {
		d, err := distr.New(16, 4, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		for rec := 0; rec < 12; rec++ {
			rec := rec
			c.Apply(func(g int, s *scf.Segment) { s.Fill(g+100*rec, 16) })
			s, err := dstream.Open(n, d, "hammer", dstream.WithStrategy(dstream.StrategyTwoPhase))
			if err != nil {
				return err
			}
			if err := dstream.Insert[scf.Segment](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	close(done)
	w.Stop()
	<-watcherErr
}
