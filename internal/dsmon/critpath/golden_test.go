package critpath_test

import (
	"strings"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dsmon/critpath"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// TestReportGolden pins the full text report of a small deterministic run:
// virtual time is exact, span ordering and tie-breaks are deterministic,
// and the category tables sort by total — so the report is byte-stable and
// any drift in the analyzer or the instrumentation shows up here.
func TestReportGolden(t *testing.T) {
	mon := dsmon.NewTracing()
	_, err := machine.Run(machine.Config{
		NProcs: 2, Profile: vtime.Paragon(), Monitor: mon,
	}, func(n *machine.Node) error {
		d, err := distr.New(8, 2, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, s *scf.Segment) { s.Fill(g, 4) })
		out, err := dstream.Open(n, d, "f", dstream.WithStrategy(dstream.StrategyFunnel))
		if err != nil {
			return err
		}
		if err := dstream.Insert[scf.Segment](out, c); err != nil {
			return err
		}
		if err := out.Write(); err != nil {
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	rep := critpath.Analyze(mon.Recorder())
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got != golden {
		t.Fatalf("critpath report drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

const golden = `critical-path analysis: 13 spans, 3 edges, makespan 0.625473s

per-rank attribution (exclusive, % of makespan):
rank          compute       pfs wait         encode           comm    flush stall
0               56.0%          44.0%           0.1%           0.0%           0.0%
1               56.0%          44.0%           0.1%           0.0%           0.0%

stall accounts (inclusive span sums, all ranks):
  flush stall      0.247336s

critical path (5 steps):
  compute          0.350035s
  pfs wait         0.274928s
  encode           0.000400s
  comm             0.000130s
  node  1  pfs wait       ControlSync f                        [0.350000, 0.501405]
  node  1  encode         ostream.Insert f                     [0.501405, 0.501805]
  node  1  comm           Send                                 [0.501841, 0.501861]
  node  0  comm           Recv                                 [0.501841, 0.501951]
  node  0  pfs wait       ParallelAppend f                     [0.501951, 0.625473]
`
