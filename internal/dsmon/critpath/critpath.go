// Package critpath turns a causal span graph (trace.Recorder events plus
// flow edges) into an attribution of virtual time: where did each rank's
// wall time go, and what chain of operations actually bounded the run.
//
// Three views are computed:
//
//   - Per-rank timeline decomposition: each rank's [0, makespan] interval is
//     partitioned exclusively among categories — at every instant the most
//     specific covering span wins, gaps count as compute — so the per-rank
//     rows sum exactly to the makespan.
//   - Stall accounts: inclusive per-family sums of the dstream stall spans.
//     These intervals are, by construction, the same intervals the
//     dstream_refill_stall_seconds / dstream_twophase_shuffle_stall_seconds
//     histograms observe, so the two accountings agree.
//   - Critical path: a backward walk from the last span to time zero,
//     stepping to whichever predecessor (same-rank previous span or causal
//     in-edge) bounded each span's start, attributing span durations to
//     their categories and inter-span gaps to compute.
package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
)

// Category names. Report maps sum virtual seconds per category.
const (
	CatCompute  = "compute"
	CatEncode   = "encode"
	CatShuffle  = "shuffle stall"
	CatRefill   = "refill stall"
	CatFlush    = "flush stall"
	CatDrain    = "drain stall"
	CatPFSWait  = "pfs wait"
	CatBarrier  = "barrier skew"
	CatComm     = "comm"
	CatRetry    = "retry/backoff"
	CatAsyncIO  = "async io" // background disk work; excluded from rank timelines
	CatPrefetch = "prefetch"
)

// classify maps a span's (cat, name) to its attribution category.
func classify(cat, name string) string {
	switch cat {
	case "comm":
		if name == "backoff" {
			return CatRetry
		}
		return CatComm
	case "io":
		if hasSuffix(name, " (async)") {
			return CatAsyncIO
		}
		return CatPFSWait
	case "collective":
		// pfs rendezvous events carry the operation + file name; pure
		// interconnect collectives carry the bare op name.
		switch {
		case hasPrefix(name, "ParallelAppend"), hasPrefix(name, "ParallelRead"),
			hasPrefix(name, "ControlSync"), hasPrefix(name, "collective"):
			return CatPFSWait
		default:
			return CatBarrier
		}
	case "dstream":
		switch {
		case hasPrefix(name, "ostream.Insert"):
			return CatEncode
		case hasPrefix(name, "twophase.shuffle"):
			return CatShuffle
		case hasPrefix(name, "istream.Read"), hasPrefix(name, "istream.UnsortedRead"):
			return CatRefill
		case hasPrefix(name, "ostream.Write"):
			return CatFlush
		case hasPrefix(name, "ostream.Drain"):
			return CatDrain
		case hasPrefix(name, "istream.prefetch"):
			return CatPrefetch
		}
	}
	return cat
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
func hasSuffix(s, p string) bool { return len(s) >= len(p) && s[len(s)-len(p):] == p }

// priority orders categories for the exclusive timeline decomposition:
// when spans nest (a Send inside a barrier inside a shuffle inside a record
// flush), the instant is charged to the innermost — highest-priority —
// activity. Higher wins.
func priority(cat string) int {
	switch cat {
	case CatRetry:
		return 9
	case CatComm:
		return 8
	case CatPFSWait:
		return 7
	case CatBarrier:
		return 6
	case CatEncode:
		return 5
	case CatShuffle:
		return 4
	case CatPrefetch:
		return 3
	case CatRefill, CatDrain:
		return 2
	case CatFlush:
		return 1
	default:
		return 0
	}
}

// RankBreakdown is one rank's exclusive timeline decomposition over
// [0, makespan]: the per-category seconds sum to Total.
type RankBreakdown struct {
	Rank    int                `json:"rank"`
	Total   float64            `json:"total"`
	Seconds map[string]float64 `json:"seconds"`
}

// Named returns the fraction of the rank's wall time attributed to a named
// category (all categories, compute included, are named — the interesting
// complement is how much is *not* idle compute).
func (b RankBreakdown) Named() float64 {
	if b.Total == 0 {
		return 0
	}
	var sum float64
	for _, v := range b.Seconds {
		sum += v
	}
	return sum / b.Total
}

// PathStep is one span on the critical path (walked backward, stored
// forward).
type PathStep struct {
	Node     int     `json:"node"`
	Category string  `json:"category"`
	Name     string  `json:"name"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// Report is the full critical-path analysis artifact.
type Report struct {
	// Makespan is the latest span end — the run's virtual wall time.
	Makespan float64 `json:"makespan"`
	// Ranks holds the exclusive per-rank decompositions, ascending rank.
	Ranks []RankBreakdown `json:"ranks"`
	// Stalls holds the inclusive stall-span family sums across ranks
	// (CatRefill, CatShuffle, CatFlush, CatDrain). Each equals the sum of
	// the matching dstream stall histogram, because the spans cover exactly
	// the observed intervals.
	Stalls map[string]float64 `json:"stalls"`
	// PathSeconds attributes the critical path's virtual time per category
	// (gaps between path spans count as compute).
	PathSeconds map[string]float64 `json:"path_seconds"`
	// Steps is the critical path itself, earliest first.
	Steps []PathStep `json:"steps"`
	// Spans and Flows count the graph's size.
	Spans int `json:"spans"`
	Flows int `json:"flows"`
}

// Analyze builds the report from a recorder's span graph. A nil or empty
// recorder yields an empty report.
func Analyze(rec *trace.Recorder) *Report {
	rep := &Report{
		Stalls:      map[string]float64{},
		PathSeconds: map[string]float64{},
	}
	if rec == nil {
		return rep
	}
	events := rec.Events()
	flows := rec.Flows()
	rep.Spans = len(events)
	rep.Flows = len(flows)
	if len(events) == 0 {
		return rep
	}

	perRank := map[int][]trace.Event{}
	maxRank := 0
	for _, e := range events {
		if e.End > rep.Makespan {
			rep.Makespan = e.End
		}
		if e.Node > maxRank {
			maxRank = e.Node
		}
		perRank[e.Node] = append(perRank[e.Node], e)
		switch classify(e.Cat, e.Name) {
		case CatRefill:
			rep.Stalls[CatRefill] += e.End - e.Start
		case CatShuffle:
			rep.Stalls[CatShuffle] += e.End - e.Start
		case CatFlush:
			rep.Stalls[CatFlush] += e.End - e.Start
		case CatDrain:
			rep.Stalls[CatDrain] += e.End - e.Start
		}
	}

	for r := 0; r <= maxRank; r++ {
		rep.Ranks = append(rep.Ranks, decomposeRank(r, perRank[r], rep.Makespan))
	}
	rep.walkPath(events, flows)
	return rep
}

// decomposeRank partitions [0, horizon] on one rank's timeline: elementary
// intervals between span boundaries are charged to the highest-priority
// covering span's category, uncovered intervals to compute.
func decomposeRank(rank int, evs []trace.Event, horizon float64) RankBreakdown {
	b := RankBreakdown{Rank: rank, Total: horizon, Seconds: map[string]float64{}}
	type bound struct {
		t     float64
		open  bool
		categ string
	}
	var bounds []bound
	for _, e := range evs {
		c := classify(e.Cat, e.Name)
		if c == CatAsyncIO {
			// Background disk work overlaps the node's own activity; charging
			// it to the rank's timeline would eat into (and misstate) compute.
			continue
		}
		bounds = append(bounds, bound{e.Start, true, c}, bound{e.End, false, c})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })
	active := map[string]int{}
	prev := 0.0
	charge := func(upto float64) {
		if upto <= prev {
			return
		}
		best, bestPrio := CatCompute, -1
		for c, n := range active {
			if n > 0 && priority(c) > bestPrio {
				best, bestPrio = c, priority(c)
			}
		}
		b.Seconds[best] += upto - prev
		prev = upto
	}
	for _, bd := range bounds {
		charge(bd.t)
		if bd.open {
			active[bd.categ]++
		} else {
			active[bd.categ]--
		}
	}
	charge(horizon)
	return b
}

// walkPath performs the backward critical-path walk: start from the span
// with the latest end; at every step, move to the predecessor with the
// latest end among the same-rank span preceding this one and the sources of
// causal in-edges; the positive gap between the predecessor's end and the
// span's start is compute.
func (rep *Report) walkPath(events []trace.Event, flows []trace.Flow) {
	byID := map[trace.SpanID]trace.Event{}
	perRank := map[int][]trace.Event{}
	for _, e := range events {
		if e.ID != 0 {
			byID[e.ID] = e
		}
		perRank[e.Node] = append(perRank[e.Node], e) // already (start, node) sorted
	}
	inEdges := map[trace.SpanID][]trace.SpanID{}
	for _, f := range flows {
		if f.From != f.To {
			inEdges[f.To] = append(inEdges[f.To], f.From)
		}
	}

	// Deterministic start: latest end, ties broken by (start, node, name).
	cur := events[0]
	for _, e := range events[1:] {
		if e.End > cur.End ||
			(e.End == cur.End && (e.Start > cur.Start ||
				(e.Start == cur.Start && (e.Node < cur.Node ||
					(e.Node == cur.Node && e.Name < cur.Name))))) {
			cur = e
		}
	}

	visited := map[trace.SpanID]bool{}
	var steps []PathStep
	for range events { // bounded: each step visits a new span
		c := classify(cur.Cat, cur.Name)
		steps = append(steps, PathStep{Node: cur.Node, Category: c, Name: cur.Name, Start: cur.Start, End: cur.End})
		rep.PathSeconds[c] += cur.End - cur.Start
		if cur.ID != 0 {
			visited[cur.ID] = true
		}

		var pred trace.Event
		found := false
		better := func(e trace.Event) bool {
			if !found {
				return true
			}
			if e.End != pred.End {
				return e.End > pred.End
			}
			if e.Start != pred.Start {
				return e.Start > pred.Start
			}
			return e.Node < pred.Node
		}
		// Same-rank predecessor: the latest span ending at or before this
		// one's start (what serialized the rank's own timeline).
		for _, e := range perRank[cur.Node] {
			if e.Start >= cur.Start {
				break
			}
			if e.End <= cur.Start && !(e.ID != 0 && visited[e.ID]) && better(e) {
				pred, found = e, true
			}
		}
		// Causal in-edges: whoever enabled this span, possibly on another
		// rank; their end may reach into (Start, End] (a Recv span starts
		// waiting before the Send completes).
		for _, from := range inEdges[cur.ID] {
			if e, ok := byID[from]; ok && e.End <= cur.End && !visited[e.ID] && better(e) {
				pred, found = e, true
			}
		}
		if !found {
			break
		}
		if gap := cur.Start - pred.End; gap > 0 {
			rep.PathSeconds[CatCompute] += gap
		}
		cur = pred
	}
	if cur.Start > 0 {
		rep.PathSeconds[CatCompute] += cur.Start
	}
	// Walked backward; report forward.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	rep.Steps = steps
}

// Publish exports the per-rank attribution as critpath_seconds{category=…}
// gauges (summed across ranks) into reg; a nil registry is a no-op.
func (rep *Report) Publish(reg *dsmon.Registry) {
	totals := map[string]float64{}
	for _, b := range rep.Ranks {
		for c, v := range b.Seconds {
			totals[c] += v
		}
	}
	for c, v := range totals {
		reg.Gauge("critpath_seconds",
			"virtual seconds attributed per category by the critical-path analyzer, summed over ranks",
			"category", c).Set(v)
	}
}

// categories returns the union of category keys in deterministic order:
// descending total seconds, then name.
func categories(ms ...map[string]float64) []string {
	tot := map[string]float64{}
	for _, m := range ms {
		for c, v := range m {
			tot[c] += v
		}
	}
	out := make([]string, 0, len(tot))
	for c := range tot {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if tot[out[i]] != tot[out[j]] {
			return tot[out[i]] > tot[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// WriteText renders the human-readable report.
func (rep *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical-path analysis: %d spans, %d edges, makespan %.6fs\n",
		rep.Spans, rep.Flows, rep.Makespan); err != nil {
		return err
	}
	if rep.Spans == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded — run with tracing enabled)")
		return err
	}

	rankMaps := make([]map[string]float64, 0, len(rep.Ranks))
	for _, b := range rep.Ranks {
		rankMaps = append(rankMaps, b.Seconds)
	}
	cats := categories(rankMaps...)
	fmt.Fprintf(w, "\nper-rank attribution (exclusive, %% of makespan):\n")
	fmt.Fprintf(w, "%-6s", "rank")
	for _, c := range cats {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, b := range rep.Ranks {
		fmt.Fprintf(w, "%-6d", b.Rank)
		for _, c := range cats {
			pct := 0.0
			if b.Total > 0 {
				pct = 100 * b.Seconds[c] / b.Total
			}
			fmt.Fprintf(w, " %13.1f%%", pct)
		}
		fmt.Fprintln(w)
	}

	if len(rep.Stalls) > 0 {
		fmt.Fprintf(w, "\nstall accounts (inclusive span sums, all ranks):\n")
		for _, c := range categories(rep.Stalls) {
			fmt.Fprintf(w, "  %-16s %.6fs\n", c, rep.Stalls[c])
		}
	}

	fmt.Fprintf(w, "\ncritical path (%d steps):\n", len(rep.Steps))
	for _, c := range categories(rep.PathSeconds) {
		fmt.Fprintf(w, "  %-16s %.6fs\n", c, rep.PathSeconds[c])
	}
	n := len(rep.Steps)
	show := rep.Steps
	if n > 12 {
		show = rep.Steps[n-12:]
		fmt.Fprintf(w, "  … last 12 of %d steps:\n", n)
	}
	for _, st := range show {
		if _, err := fmt.Fprintf(w, "  node %2d  %-14s %-36s [%.6f, %.6f]\n",
			st.Node, st.Category, st.Name, st.Start, st.End); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rep)
}
