package critpath

import (
	"math"
	"strings"
	"testing"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestAnalyzeSynthetic pins the analyzer's three views on a hand-built
// graph: exclusive decomposition with innermost-wins nesting, inclusive
// stall accounts, and the backward walk following a causal edge across
// ranks.
func TestAnalyzeSynthetic(t *testing.T) {
	rec := trace.New()
	// Rank 0: a write span [1, 5] containing a comm send [2, 3]; idle before 1.
	w := rec.AddSpan(0, "dstream", "ostream.Write f", 1, 5)
	snd := rec.AddSpan(0, "comm", "Send", 2, 3)
	// Rank 1: a receive [2.5, 6] enabled by the send, then a refill stall [6, 8].
	rcv := rec.AddSpan(1, "comm", "Recv", 2.5, 6)
	rd := rec.AddSpan(1, "dstream", "istream.Read f", 6, 8)
	rec.AddFlow(snd, rcv, "msg")

	rep := Analyze(rec)
	if !approx(rep.Makespan, 8) {
		t.Fatalf("makespan = %v, want 8", rep.Makespan)
	}
	if len(rep.Ranks) != 2 {
		t.Fatalf("got %d rank rows, want 2", len(rep.Ranks))
	}
	r0 := rep.Ranks[0].Seconds
	// [0,1] gap → compute; [1,5] write minus the nested comm [2,3]; [5,8] gap.
	if !approx(r0[CatFlush], 3) || !approx(r0[CatComm], 1) || !approx(r0[CatCompute], 4) {
		t.Fatalf("rank 0 decomposition = %v", r0)
	}
	r1 := rep.Ranks[1].Seconds
	if !approx(r1[CatComm], 3.5) || !approx(r1[CatRefill], 2) || !approx(r1[CatCompute], 2.5) {
		t.Fatalf("rank 1 decomposition = %v", r1)
	}
	for _, b := range rep.Ranks {
		if f := b.Named(); !approx(f, 1) {
			t.Fatalf("rank %d named fraction = %v, want 1 (decomposition is exhaustive)", b.Rank, f)
		}
	}
	if !approx(rep.Stalls[CatRefill], 2) || !approx(rep.Stalls[CatFlush], 4) {
		t.Fatalf("stall accounts = %v", rep.Stalls)
	}

	// Backward walk: istream.Read ← Recv ← (msg edge) Send ← same-rank
	// predecessor write? The write [1,5] overlaps the send's start, so the
	// walk ends at the send after charging its start as compute.
	wantPath := []trace.SpanID{snd, rcv, rd}
	if len(rep.Steps) != len(wantPath) {
		t.Fatalf("path = %+v, want 3 steps", rep.Steps)
	}
	names := []string{"Send", "Recv", "istream.Read f"}
	for i, st := range rep.Steps {
		if st.Name != names[i] {
			t.Fatalf("path step %d = %+v, want %q", i, st, names[i])
		}
	}
	_ = w
}

// TestQuantileHelpers pins the histogram quantile interpolation the report
// uses: exact bucket math on a known distribution, nil safety, and clamping.
func TestQuantileHelpers(t *testing.T) {
	h := dsmon.NewRegistry().Histogram("q", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 3, 3, 3, 3, 10, 10} {
		h.Observe(v)
	}
	// cum = [2, 4, 8, 10]; p50 → rank 5 inside (2,4]: 2 + (5-4)/4*2 = 2.5.
	if got := h.Quantile(0.5); !approx(got, 2.5) {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	// p95 → rank 9.5 lands in the +Inf bucket → last finite bound.
	if got := h.Quantile(0.95); !approx(got, 4) {
		t.Fatalf("p95 = %v, want 4 (clamped to last finite bound)", got)
	}
	if got := h.Quantile(0); !approx(got, 0) {
		t.Fatalf("p0 = %v, want 0", got)
	}
	var nilH *dsmon.Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
}

// TestAnalyzeEmpty: nil and empty recorders yield a well-formed empty report.
func TestAnalyzeEmpty(t *testing.T) {
	for _, rep := range []*Report{Analyze(nil), Analyze(trace.New())} {
		if rep.Makespan != 0 || len(rep.Ranks) != 0 || len(rep.Steps) != 0 {
			t.Fatalf("non-empty report from empty recorder: %+v", rep)
		}
		var sb strings.Builder
		if err := rep.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "no spans recorded") {
			t.Fatalf("empty-report text = %q", sb.String())
		}
	}
}

// TestPublish: the per-category gauges land in the registry under
// critpath_seconds{category=…} and sum over ranks.
func TestPublish(t *testing.T) {
	rec := trace.New()
	rec.AddSpan(0, "dstream", "istream.Read f", 0, 2)
	rec.AddSpan(1, "dstream", "istream.Read f", 1, 2)
	rep := Analyze(rec)
	reg := dsmon.NewRegistry()
	rep.Publish(reg)
	if got := reg.Gauge("critpath_seconds", "", "category", CatRefill).Value(); !approx(got, 3) {
		t.Fatalf("critpath_seconds{category=refill} = %v, want 3", got)
	}
	if got := reg.Gauge("critpath_seconds", "", "category", CatCompute).Value(); !approx(got, 1) {
		t.Fatalf("critpath_seconds{category=compute} = %v, want 1", got)
	}
}
