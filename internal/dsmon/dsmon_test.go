package dsmon

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x", "help")
	h := r.Histogram("x_seconds", "help", LatencyBuckets)
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(-2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles not inert")
	}
	var m *Monitor
	m.Span(0, "comm", "Send", 0, 1)
	if m.Registry() != nil || m.Recorder() != nil {
		t.Fatal("nil monitor leaked state")
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

func TestGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", "op", "write")
	b := r.Counter("ops_total", "ops", "op", "write")
	other := r.Counter("ops_total", "ops", "op", "read")
	if a != b {
		t.Fatal("same name+labels did not share a handle")
	}
	if a == other {
		t.Fatal("different labels shared a handle")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter = %d", b.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz_bytes", "sizes", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1022 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Cumulative: le=10 → 2 (1 and 10 inclusive), le=100 → 3, +Inf → 4.
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	want := []int64{2, 3, 4}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, hs.Buckets[i], w, hs.Buckets)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("comm_messages_sent_total", "messages sent").Add(7)
	r.Gauge("dstream_buffer_fill_bytes", "bytes buffered").Set(42)
	h := r.Histogram("collective_latency_seconds", "latency", []float64{0.001, 1}, "op", "barrier")
	h.Observe(0.0005)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP comm_messages_sent_total messages sent",
		"# TYPE comm_messages_sent_total counter",
		"comm_messages_sent_total 7",
		"# TYPE dstream_buffer_fill_bytes gauge",
		"dstream_buffer_fill_bytes 42",
		"# TYPE collective_latency_seconds histogram",
		`collective_latency_seconds_bucket{op="barrier",le="0.001"} 1`,
		`collective_latency_seconds_bucket{op="barrier",le="1"} 1`,
		`collective_latency_seconds_bucket{op="barrier",le="+Inf"} 2`,
		`collective_latency_seconds_sum{op="barrier"} 2.0005`,
		`collective_latency_seconds_count{op="barrier"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("pfs_ops_total", "ops", "op", "parallel_append").Add(3)
	r.Histogram("comm_message_size_bytes", "sizes", SizeBuckets).Observe(500)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Counters[0].Labels["op"] != "parallel_append" {
		t.Fatalf("labels = %v", snap.Counters[0].Labels)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
}

// Concurrent hammering of every metric kind; run under -race this proves
// the handles are safe from many node goroutines at once.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "c")
			g := r.Gauge("g", "g")
			h := r.Histogram("h_seconds", "h", LatencyBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g", "g").Value(); got != workers*per {
		t.Fatalf("gauge = %v", got)
	}
	if got := r.Histogram("h_seconds", "h", LatencyBuckets).Count(); got != workers*per {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestMonitorSpans(t *testing.T) {
	m := NewTracing()
	m.Span(1, "dstream", "ostream.Write", 0.5, 1.5)
	evs := m.Recorder().Events()
	if len(evs) != 1 || evs[0].Cat != "dstream" || evs[0].Node != 1 {
		t.Fatalf("events = %+v", evs)
	}
	var b strings.Builder
	if err := m.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"cat": "dstream"`) {
		t.Fatalf("chrome JSON missing category:\n%s", b.String())
	}
	// A non-tracing monitor silently drops spans.
	plain := New()
	plain.Span(0, "comm", "Send", 0, 1)
	if plain.Recorder() != nil {
		t.Fatal("New() should not trace")
	}
}
