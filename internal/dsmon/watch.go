package dsmon

import (
	"sync"
	"time"
)

// Watcher delivers periodic registry snapshots while a run is still
// mutating the metrics, for live dashboards and the telemetry endpoint.
// Each delivered Snapshot is a deep copy owned by the receiver — the
// watcher never reuses or mutates a snapshot after sending it, so
// consumers may retain snapshots across ticks and diff them with Delta.
//
// Delivery is lossy by design: if the consumer is slower than the tick
// interval, intermediate snapshots are dropped rather than blocking the
// watcher goroutine. Snapshots are internally consistent (histogram counts
// derive from the bucket sums) and monotone between successive deliveries.
type Watcher struct {
	ch       chan Snapshot
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Watch starts a goroutine snapshotting the registry every interval. Call
// Stop to end it; the snapshot channel is closed after the final snapshot,
// so `for snap := range w.C()` terminates cleanly.
func (r *Registry) Watch(interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = time.Second
	}
	w := &Watcher{
		ch:   make(chan Snapshot, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		defer close(w.ch)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				// One final snapshot so the consumer always observes the
				// end-of-run totals.
				w.offer(r.Snapshot())
				return
			case <-t.C:
				w.offer(r.Snapshot())
			}
		}
	}()
	return w
}

// offer sends snap without blocking, replacing a stale undelivered
// snapshot if the consumer has fallen behind.
func (w *Watcher) offer(snap Snapshot) {
	for {
		select {
		case w.ch <- snap:
			return
		default:
		}
		select {
		case <-w.ch: // drop the stale one, retry
		default:
		}
	}
}

// C returns the snapshot delivery channel.
func (w *Watcher) C() <-chan Snapshot { return w.ch }

// Stop ends the watcher after delivering one final snapshot, then closes
// the channel. Safe to call more than once; blocks until the watcher
// goroutine has exited.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
