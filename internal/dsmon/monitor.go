package dsmon

import (
	"io"

	"pcxxstreams/internal/trace"
)

// Monitor bundles the two halves of the observability layer: the metrics
// Registry and an optional trace.Recorder for virtual-time spans. One
// Monitor serves one machine run; hand it to machine.Config.Monitor and
// every layer — comm, collective, pfs, dstream — lights up.
//
// A nil *Monitor is a valid no-op sink, mirroring trace.Recorder.
type Monitor struct {
	reg *Registry
	rec *trace.Recorder
}

// New creates a monitor with a metrics registry but no span recorder —
// counters, gauges and histograms only.
func New() *Monitor { return &Monitor{reg: NewRegistry()} }

// NewTracing creates a monitor that also records spans into a fresh
// trace.Recorder, for Chrome-trace / Gantt output.
func NewTracing() *Monitor { return &Monitor{reg: NewRegistry(), rec: trace.New()} }

// Registry returns the metrics registry (nil on a nil monitor; the
// registry's handle constructors are nil-safe in turn).
func (m *Monitor) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Recorder returns the span recorder, nil when the monitor does not trace.
func (m *Monitor) Recorder() *trace.Recorder {
	if m == nil {
		return nil
	}
	return m.rec
}

// SetRecorder redirects spans into r — the machine runner uses it to unify
// the monitor with an explicitly configured trace recorder, so one
// timeline carries the io, comm, collective and dstream categories.
func (m *Monitor) SetRecorder(r *trace.Recorder) {
	if m == nil {
		return
	}
	m.rec = r
}

// Span records one virtual-time interval on node's timeline under the
// given category ("io", "comm", "collective", "dstream"). A no-op when the
// monitor is nil or does not trace.
func (m *Monitor) Span(node int, cat, name string, start, end float64) {
	if m == nil {
		return
	}
	m.rec.Add(node, cat, name, start, end)
}

// Tracing reports whether spans are being recorded. Instrumented hot paths
// use it to skip span-ID allocation and causal-edge bookkeeping entirely
// when tracing is off, keeping the disabled path allocation-free.
func (m *Monitor) Tracing() bool {
	return m != nil && m.rec != nil
}

// WritePrometheus renders the metrics in Prometheus text format.
func (m *Monitor) WritePrometheus(w io.Writer) error {
	return m.Registry().WritePrometheus(w)
}

// WriteJSON renders the metrics snapshot as JSON.
func (m *Monitor) WriteJSON(w io.Writer) error {
	return m.Registry().WriteJSON(w)
}

// WriteChromeJSON renders the span timeline in Chrome trace-viewer format
// (empty timeline when the monitor does not trace).
func (m *Monitor) WriteChromeJSON(w io.Writer) error {
	return m.Recorder().WriteChromeJSON(w)
}
