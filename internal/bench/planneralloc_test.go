package bench

import (
	"testing"

	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/plan"
	"pcxxstreams/internal/vtime"
)

// TestPlannerWriteCycleZeroOverhead pins the satellite claim that the
// cost-model planner adds zero allocations per operation to the write
// cycle. The planner's only communication is the 8-byte geometry
// Allreduce, and writeParallel reuses that agreement instead of
// performing its own — so on a workload where the model picks the
// parallel strategy, full-auto must allocate exactly what the
// hard-coded parallel cycle allocates. (On funnel/two-phase picks the
// Allreduce is extra by construction; those cycles are gated against
// the committed BENCH_alloc_baseline.json instead.)
//
// The profile is shaped so parallel wins decisively: near-zero I/O op
// latency removes parallel's extra-operation penalty, and a 10 KB/s
// message fabric makes funnel's size-table gather and two-phase's data
// shuffle expensive while the planner's 8-byte Allreduce stays cheap.
// The margin is wide enough (≥2x, measured ~5x) that even a
// calibration clamped at the planner's 4x ratio ceiling cannot push
// the pick through the hysteresis band — the plan stays parallel for
// every record of the cycle.
func TestPlannerWriteCycleZeroOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	if testing.Short() {
		t.Skip("machine-level pin skipped in -short mode")
	}
	prof := vtime.Paragon()
	prof.MsgBW = 1e4
	prof.IOOpLatency = 1e-6
	prof.SerialPerOp = 1e-6

	// Guard: the model must pick parallel by a decisive margin on the
	// alloc workload's geometry, across the plausible metadata sizes,
	// or the comparison below would be measuring the wrong pair.
	m := plan.Model{Prof: prof, Layout: pfs.Layout{StripeUnit: 1 << 14, StripeFactor: allocNProcs}}
	for _, meta := range []int64{64, 256, 1024} {
		g := plan.Geometry{
			NProcs:    allocNProcs,
			NElems:    allocElems,
			DataBytes: allocElems * allocElemSize,
			MetaBytes: meta,
		}
		k := m.BestWriteAggregators(g)
		par := m.WriteCost(g, plan.Parallel, k)
		fun := m.WriteCost(g, plan.Funnel, k)
		two := m.WriteCost(g, plan.TwoPhase, k)
		if 2*par >= fun || 2*par >= two {
			t.Fatalf("profile does not force a decisive parallel pick at meta=%d: parallel %.6f funnel %.6f twophase %.6f",
				meta, par, fun, two)
		}
	}

	statAllocs, statBytes, err := writeCycleAllocs(prof, dstream.StrategyParallel)
	if err != nil {
		t.Fatal(err)
	}
	autoAllocs, autoBytes, err := writeCycleAllocs(prof, dstream.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("parallel cycle: %.2f allocs %.1f B; full-auto cycle: %.2f allocs %.1f B",
		statAllocs, statBytes, autoAllocs, autoBytes)
	// Two allocs / 256 B of slack absorb scheduler jitter in the
	// whole-machine counters; the planner's own bookkeeping (model
	// evaluation, decision, metrics, signature) must contribute nothing.
	if autoAllocs > statAllocs+2 {
		t.Errorf("planner adds %.2f allocs/op to the write cycle (auto %.2f vs parallel %.2f)",
			autoAllocs-statAllocs, autoAllocs, statAllocs)
	}
	if autoBytes > statBytes+256 {
		t.Errorf("planner adds %.1f B/op to the write cycle (auto %.1f vs parallel %.1f)",
			autoBytes-statBytes, autoBytes, statBytes)
	}
}
