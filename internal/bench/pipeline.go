package bench

import (
	"fmt"
	"hash/fnv"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// PipelinePoint is one cell of the pipeline-vs-file grid: the same M-producer
// N-consumer record hand-off timed through a persistent stream-to-stream
// channel and through the file system (write every record, then read every
// record). Speedup is FileSeconds/PipelineSeconds; BytesMatch asserts the
// consumers extracted byte-identical payloads on both paths (per-rank FNV
// over every record's elements in global order).
type PipelinePoint struct {
	Platform         string  `json:"platform"`
	Producers        int     `json:"producers"`
	Consumers        int     `json:"consumers"`
	Elems            int     `json:"elems"`
	ElemBytes        int     `json:"elem_bytes"`
	Records          int     `json:"records"`
	ComputePerRecord float64 `json:"compute_per_record_seconds"`
	PipelineSeconds  float64 `json:"pipeline_seconds"`
	FileSeconds      float64 `json:"file_seconds"`
	Speedup          float64 `json:"speedup"`
	BytesMatch       bool    `json:"bytes_match"`
}

// blob is the grid's element: an opaque payload whose bytes are a pure
// function of (global index, record, size), so both paths can be verified
// against the generator and hashed for cross-path identity.
type blob struct{ data []byte }

func (b *blob) StreamInsert(e *dstream.Encoder)  { e.Bytes32(b.data) }
func (b *blob) StreamExtract(d *dstream.Decoder) { b.data = d.Bytes32() }

func fillBlob(b *blob, g, rec, size int) {
	if cap(b.data) < size {
		b.data = make([]byte, size)
	}
	b.data = b.data[:size]
	for i := range b.data {
		b.data[i] = byte(g*31 + rec*7 + i)
	}
}

// consumerHasher folds one extracted record into a consumer rank's running
// digest, walking the rank's local elements in global order so the digest is
// a pure function of the consumed bytes.
type consumerHasher struct {
	sum uint64
}

func (h *consumerHasher) fold(rec int, d *distr.Distribution, rank int, local []blob) {
	f := fnv.New64a()
	var hdr [12]byte
	for l := range local {
		g := d.GlobalIndex(rank, l)
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(rec), byte(rec>>8), byte(rec>>16), byte(rec>>24)
		hdr[4], hdr[5], hdr[6], hdr[7] = byte(g), byte(g>>8), byte(g>>16), byte(g>>24)
		n := len(local[l].data)
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
		f.Write(hdr[:])
		f.Write(local[l].data)
	}
	h.sum = h.sum*1099511628211 ^ f.Sum64()
}

// verifyBlobs checks one record against the generator.
func verifyBlobs(rec int, d *distr.Distribution, rank int, local []blob) error {
	var want blob
	for l := range local {
		g := d.GlobalIndex(rank, l)
		fillBlob(&want, g, rec, len(local[l].data))
		if string(local[l].data) != string(want.data) {
			return fmt.Errorf("bench: record %d element %d differs from generator", rec, g)
		}
	}
	return nil
}

// pipelineSeconds runs the channel path on an (m+n)-rank machine: producers
// write `records` records into a channel, consumers read, verify, and spend
// `compute` virtual seconds per record. Returns the makespan and fills
// hashes[slot] with each consumer's digest.
func pipelineSeconds(prof vtime.Profile, m, n, elems, elemBytes, records int,
	compute float64, hashes []uint64) (float64, error) {
	p := m + n
	mres, err := machine.Run(machine.Config{NProcs: p, Profile: prof, FS: pfs.NewMemFS(prof)},
		func(node *machine.Node) error {
			dProd, err := distr.New(elems, m, distr.Block, 0)
			if err != nil {
				return err
			}
			dCons, err := distr.New(elems, n, distr.Cyclic, 0)
			if err != nil {
				return err
			}
			if err := node.Comm().Barrier(); err != nil {
				return err
			}
			node.Clock().Reset()

			rank := node.Rank()
			if rank < m {
				s, err := dstream.OpenChannel(node, dProd, dCons, "pipe")
				if err != nil {
					return err
				}
				local := make([]blob, s.LocalLen())
				for rec := 0; rec < records; rec++ {
					for l := range local {
						fillBlob(&local[l], dProd.GlobalIndex(rank, l), rec, elemBytes)
					}
					if err := dstream.InsertElems[blob](s, local); err != nil {
						return err
					}
					if err := s.Write(); err != nil {
						return err
					}
				}
				return s.Close()
			}
			r, err := dstream.OpenChannelInput(node, dCons, dProd, "pipe")
			if err != nil {
				return err
			}
			slot := rank - (p - n)
			local := make([]blob, r.LocalLen())
			var h consumerHasher
			for rec := 0; rec < records; rec++ {
				if err := r.Read(); err != nil {
					return err
				}
				if err := dstream.ExtractElems[blob](r, local); err != nil {
					return err
				}
				if err := verifyBlobs(rec, dCons, slot, local); err != nil {
					return err
				}
				h.fold(rec, dCons, slot, local)
				node.Compute(compute)
			}
			hashes[slot] = h.sum
			return r.Close()
		})
	if err != nil {
		return 0, fmt.Errorf("bench: pipeline path (%dx%d): %w", m, n, err)
	}
	return mres.Elapsed, nil
}

// fileSeconds runs the write-then-read path on the same machine shape: the
// producers spool every record to the file system (a machine-wide explicit
// distribution placing all elements on producer ranks), then the consumers
// read them back under a distribution placing all elements on consumer
// ranks, with the same verification, hashing, and per-record compute.
func fileSeconds(prof vtime.Profile, m, n, elems, elemBytes, records int,
	compute float64, hashes []uint64) (float64, error) {
	p := m + n
	dProd, err := distr.New(elems, m, distr.Block, 0)
	if err != nil {
		return 0, err
	}
	dCons, err := distr.New(elems, n, distr.Cyclic, 0)
	if err != nil {
		return 0, err
	}
	wOwners := make([]int, elems)
	rOwners := make([]int, elems)
	for g := 0; g < elems; g++ {
		wOwners[g] = dProd.Owner(g)
		rOwners[g] = p - n + dCons.Owner(g)
	}
	dW, err := distr.NewExplicit(wOwners, p)
	if err != nil {
		return 0, err
	}
	dR, err := distr.NewExplicit(rOwners, p)
	if err != nil {
		return 0, err
	}
	mres, err := machine.Run(machine.Config{NProcs: p, Profile: prof, FS: pfs.NewMemFS(prof)},
		func(node *machine.Node) error {
			if err := node.Comm().Barrier(); err != nil {
				return err
			}
			node.Clock().Reset()

			s, err := dstream.Open(node, dW, "spool")
			if err != nil {
				return err
			}
			c, err := collection.New[blob](node, dW)
			if err != nil {
				return err
			}
			for rec := 0; rec < records; rec++ {
				rec := rec
				c.Apply(func(g int, b *blob) { fillBlob(b, g, rec, elemBytes) })
				if err := dstream.Insert[blob](s, c); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			if err := s.Close(); err != nil {
				return err
			}

			r, err := dstream.OpenInput(node, dR, "spool")
			if err != nil {
				return err
			}
			back, err := collection.New[blob](node, dR)
			if err != nil {
				return err
			}
			rank := node.Rank()
			slot := rank - (p - n)
			var h consumerHasher
			for rec := 0; rec < records; rec++ {
				if err := r.Read(); err != nil {
					return err
				}
				if err := dstream.Extract[blob](r, back); err != nil {
					return err
				}
				if rank >= p-n {
					if err := verifyBlobs(rec, dCons, slot, back.Local()); err != nil {
						return err
					}
					h.fold(rec, dCons, slot, back.Local())
					node.Compute(compute)
				}
			}
			if rank >= p-n {
				hashes[slot] = h.sum
			}
			return r.Close()
		})
	if err != nil {
		return 0, fmt.Errorf("bench: file path (%dx%d): %w", m, n, err)
	}
	return mres.Elapsed, nil
}

// MeasurePipeline times one grid cell both ways. The file path's consumer
// distribution has the same per-consumer layout as the channel's, so the two
// digests are comparable slot by slot.
func MeasurePipeline(prof vtime.Profile, m, n, elems, elemBytes, records int, compute float64) (PipelinePoint, error) {
	pt := PipelinePoint{
		Platform:         prof.Name,
		Producers:        m,
		Consumers:        n,
		Elems:            elems,
		ElemBytes:        elemBytes,
		Records:          records,
		ComputePerRecord: compute,
	}
	pipeHash := make([]uint64, n)
	fileHash := make([]uint64, n)
	var err error
	if pt.PipelineSeconds, err = pipelineSeconds(prof, m, n, elems, elemBytes, records, compute, pipeHash); err != nil {
		return pt, err
	}
	if pt.FileSeconds, err = fileSeconds(prof, m, n, elems, elemBytes, records, compute, fileHash); err != nil {
		return pt, err
	}
	pt.BytesMatch = true
	for i := range pipeHash {
		if pipeHash[i] != fileHash[i] {
			pt.BytesMatch = false
		}
	}
	if pt.PipelineSeconds > 0 {
		pt.Speedup = pt.FileSeconds / pt.PipelineSeconds
	}
	return pt, nil
}

// PipelineSweep runs the default pipeline-vs-file grid: M×N shape × element
// size × compute overlap, on the Paragon profile (the platform where the
// spool path pays real PFS cost).
func PipelineSweep() ([]PipelinePoint, error) {
	shapes := [][2]int{{1, 1}, {2, 2}, {4, 2}, {2, 4}}
	var out []PipelinePoint
	for _, sh := range shapes {
		for _, elemBytes := range []int{64, 4096} {
			for _, compute := range []float64{0, 0.005} {
				pt, err := MeasurePipeline(vtime.Paragon(), sh[0], sh[1], 128, elemBytes, 4, compute)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// CheckPipeline is the acceptance gate for the channel subsystem: the
// consumed bytes must be identical to the file path in every cell, and the
// pipeline must beat write-then-read on at least half the grid.
func CheckPipeline(pts []PipelinePoint) error {
	if len(pts) == 0 {
		return fmt.Errorf("bench: empty pipeline grid")
	}
	wins := 0
	for _, p := range pts {
		if !p.BytesMatch {
			return fmt.Errorf("bench: pipeline cell %dx%d/%dB/compute=%.3f consumed different bytes than the file path",
				p.Producers, p.Consumers, p.ElemBytes, p.ComputePerRecord)
		}
		if p.PipelineSeconds < p.FileSeconds {
			wins++
		}
	}
	if 2*wins < len(pts) {
		return fmt.Errorf("bench: pipeline beat write-then-read on only %d of %d grid cells", wins, len(pts))
	}
	return nil
}
