package bench

import (
	"testing"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/vtime"
)

// The allocation pins: exact committed budgets for the four hot paths,
// enforced on every test run (not just when the bench-alloc gate diffs
// BENCH_alloc_baseline.json). The budgets are the measured steady state
// with the buffer pool in place, plus scheduler headroom for the
// machine-level cycles; before pooling they sat at 4 (enc), 3 (sendrecv),
// ~139 (funnel cycle) and ~210 (two-phase cycle). Raising a budget is a
// deliberate act — it means a hot path got slower for every caller.
const (
	encRoundTripBudget    = 0   // allocs/op, reused Buffer+Reader
	inprocSendRecvBudget  = 1   // allocs/op, 1 KiB payload, receiver Puts
	ringRawSendRecvBudget = 1   // allocs/op, raw ring path, 256 B eager payload
	tracedSendRecvBudget  = 4   // same path with spans+flow edges recorded
	funnelCycleBudget     = 40  // whole-machine allocs per insert+write cycle, 4 ranks
	twoPhaseCycleBudget   = 125 // same, with the aggregation shuffle
	readCycleBudget       = 110 // whole-machine allocs per read+extract cycle, 4 ranks
	funnelCycleByteBudget = 20 << 10
)

func TestEncRoundTripAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	var e enc.Buffer
	var d enc.Reader
	raw := make([]byte, 32)
	avg := testing.AllocsPerRun(500, func() {
		e.Reset()
		e.Uint32(7)
		e.Int64(21)
		e.Float64(3.5)
		e.Bool(true)
		e.Raw(raw)
		d.Reset(e.Bytes())
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Float64()
		_ = d.Bool()
		_ = d.Raw(32)
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
	})
	if avg > encRoundTripBudget {
		t.Errorf("enc round trip: %.2f allocs/op, budget %d", avg, encRoundTripBudget)
	}
}

func TestInprocSendRecvAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	prof := vtime.Paragon()
	ep0 := comm.NewEndpoint(0, 2, tr, &c0, prof)
	ep1 := comm.NewEndpoint(1, 2, tr, &c1, prof)
	payload := make([]byte, 1024)
	// Prime the pool and the mailbox path before pinning.
	for i := 0; i < 8; i++ {
		if err := ep0.Send(1, 42, payload); err != nil {
			t.Fatal(err)
		}
		d, err := ep1.Recv(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(d)
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := ep0.Send(1, 42, payload); err != nil {
			t.Fatal(err)
		}
		d, err := ep1.Recv(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(d)
	})
	if avg > inprocSendRecvBudget {
		t.Errorf("in-proc send/recv: %.2f allocs/op, budget %d", avg, inprocSendRecvBudget)
	}
}

// TestRingRawSendRecvAllocPin pins the raw transport round trip — the
// lock-free ring without endpoint sequencing on top. Slot hand-off, stage,
// and match must allocate nothing in steady state; the one permitted alloc
// is headroom for the pooled payload copy's size-class misses.
func TestRingRawSendRecvAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	payload := make([]byte, 256)
	roundTrip := func() {
		if err := tr.Send(comm.Message{From: 0, To: 1, Tag: 7, Data: payload}); err != nil {
			t.Fatal(err)
		}
		m, err := tr.Recv(1, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(m.Data)
	}
	// Prime the pool, the ring, and the pending stage before pinning.
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	avg := testing.AllocsPerRun(500, roundTrip)
	t.Logf("raw ring send/recv: %.2f allocs/op", avg)
	if avg > ringRawSendRecvBudget {
		t.Errorf("raw ring send/recv: %.2f allocs/op, budget %d", avg, ringRawSendRecvBudget)
	}
}

// TestTracedSendRecvAllocPin pins the cost of turning tracing ON for the
// same hot path TestInprocSendRecvAllocPin measures with it off. Each
// logical message records two spans (Send, Recv), one flow edge, and the
// per-message metric updates; the budget is the committed per-span overhead.
// The nil-monitor fast path is covered by the untraced pin above — tracing
// must cost nothing when disabled and a bounded constant when enabled.
func TestTracedSendRecvAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	mon := dsmon.NewTracing()
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	prof := vtime.Paragon()
	ep0 := comm.NewEndpoint(0, 2, tr, &c0, prof).SetMonitor(mon)
	ep1 := comm.NewEndpoint(1, 2, tr, &c1, prof).SetMonitor(mon)
	payload := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		if err := ep0.Send(1, 42, payload); err != nil {
			t.Fatal(err)
		}
		d, err := ep1.Recv(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(d)
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := ep0.Send(1, 42, payload); err != nil {
			t.Fatal(err)
		}
		d, err := ep1.Recv(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(d)
	})
	t.Logf("traced send/recv: %.2f allocs/op", avg)
	if avg > tracedSendRecvBudget {
		t.Errorf("traced send/recv: %.2f allocs/op, budget %d", avg, tracedSendRecvBudget)
	}
}

func TestFunnelWriteCycleAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	if testing.Short() {
		t.Skip("machine-level pin skipped in -short mode")
	}
	cell, err := machineCycleAllocs(dstream.StrategyFunnel)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("funnel cycle: %.1f allocs, %.1f B", cell.AllocsPerOp, cell.BytesPerOp)
	if cell.AllocsPerOp > funnelCycleBudget {
		t.Errorf("funnel insert+write cycle: %.1f allocs, budget %d", cell.AllocsPerOp, funnelCycleBudget)
	}
	if cell.BytesPerOp > funnelCycleByteBudget {
		t.Errorf("funnel insert+write cycle: %.1f B, budget %d", cell.BytesPerOp, funnelCycleByteBudget)
	}
}

func TestTwoPhaseWriteCycleAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	if testing.Short() {
		t.Skip("machine-level pin skipped in -short mode")
	}
	cell, err := machineCycleAllocs(dstream.StrategyTwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("two-phase cycle: %.1f allocs, %.1f B", cell.AllocsPerOp, cell.BytesPerOp)
	if cell.AllocsPerOp > twoPhaseCycleBudget {
		t.Errorf("two-phase insert+write cycle: %.1f allocs, budget %d", cell.AllocsPerOp, twoPhaseCycleBudget)
	}
}

// TestReadCycleAllocPin pins the input side both ways: the synchronous
// read+extract cycle, and the same cycle under WithReadAhead(2). The second
// pin is the structural guarantee of the prefetch pipeline — its buffers
// cycle through the stream's free list, so turning it on must not raise the
// steady-state allocation rate over the synchronous path's budget.
func TestReadCycleAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	if testing.Short() {
		t.Skip("machine-level pin skipped in -short mode")
	}
	for _, depth := range []int{0, 2} {
		cell, err := machineReadCycleAllocs(dstream.StrategyParallel, depth)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %.1f allocs, %.1f B", cell.Name, cell.AllocsPerOp, cell.BytesPerOp)
		if cell.AllocsPerOp > readCycleBudget {
			t.Errorf("%s cycle: %.1f allocs, budget %d", cell.Name, cell.AllocsPerOp, readCycleBudget)
		}
	}
}

// TestChannelCycleAllocPin pins the stream-to-stream channel's steady state
// at funnel-or-better: a record hand-off through the channel (both the
// send-facing and the full-extraction cycle) must not out-allocate the
// funnel insert+write cycle it replaces — the channel exists to be the
// cheaper path, and an allocation-per-frame bug would erase that.
func TestChannelCycleAllocPin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins stand down under -race")
	}
	if testing.Short() {
		t.Skip("machine-level pin skipped in -short mode")
	}
	for _, extract := range []bool{false, true} {
		cell, err := channelCycleAllocs(extract)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %.1f allocs, %.1f B", cell.Name, cell.AllocsPerOp, cell.BytesPerOp)
		if cell.AllocsPerOp > funnelCycleBudget {
			t.Errorf("%s cycle: %.1f allocs, budget %d (funnel-or-better)", cell.Name, cell.AllocsPerOp, funnelCycleBudget)
		}
		if cell.BytesPerOp > funnelCycleByteBudget {
			t.Errorf("%s cycle: %.1f B, budget %d", cell.Name, cell.BytesPerOp, funnelCycleByteBudget)
		}
	}
}

// TestCheckAllocRegression exercises the CI gate logic itself.
func TestCheckAllocRegression(t *testing.T) {
	base := []AllocCell{{Name: "x", AllocsPerOp: 10, BytesPerOp: 1000}}
	if err := CheckAllocRegression([]AllocCell{{Name: "x", AllocsPerOp: 10.5, BytesPerOp: 1050}}, base); err != nil {
		t.Errorf("within 10%%: %v", err)
	}
	if err := CheckAllocRegression([]AllocCell{{Name: "x", AllocsPerOp: 12, BytesPerOp: 1000}}, base); err == nil {
		t.Error("20% allocs regression passed the gate")
	}
	if err := CheckAllocRegression([]AllocCell{{Name: "x", AllocsPerOp: 10, BytesPerOp: 1200}}, base); err == nil {
		t.Error("20% bytes regression passed the gate")
	}
	// Zero baselines get absolute slack so noise does not hard-fail.
	zero := []AllocCell{{Name: "z"}}
	if err := CheckAllocRegression([]AllocCell{{Name: "z", AllocsPerOp: 0.5, BytesPerOp: 32}}, zero); err != nil {
		t.Errorf("absolute slack on zero baseline: %v", err)
	}
	// A benchmark with no baseline entry is not a failure.
	if err := CheckAllocRegression([]AllocCell{{Name: "new", AllocsPerOp: 99}}, base); err != nil {
		t.Errorf("missing baseline treated as regression: %v", err)
	}
}
