package bench

import (
	"fmt"

	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/vtime"
)

// StrategyPoint is one cell of the two-phase ablation grid: the SCF
// write+read pipeline timed under each write strategy on one (platform,
// nodes, element size, stripe geometry) configuration.
type StrategyPoint struct {
	Platform     string  `json:"platform"`
	NProcs       int     `json:"nprocs"`
	Segments     int     `json:"segments"`
	Particles    int     `json:"particles"`
	StripeFactor int     `json:"stripe_factor"`
	StripeUnit   int64   `json:"stripe_unit"`
	Funnel       float64 `json:"funnel_seconds"`
	Parallel     float64 `json:"parallel_seconds"`
	TwoPhase     float64 `json:"twophase_seconds"`
	// Winner names the fastest strategy of the cell.
	Winner string `json:"winner"`
}

// MeasureStrategies times one grid cell under all three strategies. Verify
// stays on: a strategy that wins by writing wrong bytes is not a winner.
func MeasureStrategies(prof vtime.Profile, nprocs, segments, particles, stripeFactor int, unit int64) (StrategyPoint, error) {
	pt := StrategyPoint{
		Platform:     prof.Name,
		NProcs:       nprocs,
		Segments:     segments,
		Particles:    particles,
		StripeFactor: stripeFactor,
		StripeUnit:   unit,
	}
	for _, s := range []dstream.Strategy{dstream.StrategyFunnel, dstream.StrategyParallel, dstream.StrategyTwoPhase} {
		sec, err := Seconds(Run{
			Profile:      prof,
			NProcs:       nprocs,
			Segments:     segments,
			Particles:    particles,
			Variant:      Streams,
			StreamOpts:   dstream.Options{Strategy: s},
			StripeFactor: stripeFactor,
			StripeUnit:   unit,
			Verify:       true,
		})
		if err != nil {
			return pt, fmt.Errorf("bench: %s %v: %w", prof.Name, s, err)
		}
		switch s {
		case dstream.StrategyFunnel:
			pt.Funnel = sec
		case dstream.StrategyParallel:
			pt.Parallel = sec
		case dstream.StrategyTwoPhase:
			pt.TwoPhase = sec
		}
	}
	pt.Winner = dstream.StrategyFunnel.String()
	best := pt.Funnel
	if pt.Parallel < best {
		pt.Winner, best = dstream.StrategyParallel.String(), pt.Parallel
	}
	if pt.TwoPhase < best {
		pt.Winner = dstream.StrategyTwoPhase.String()
	}
	return pt, nil
}

// TwoPhaseSweep runs the default ablation grid: platform × node count ×
// element size × stripe factor. The grid is chosen so the answer is not
// one-sided — small collections on one I/O channel favor the funnel, many
// small blocks from many nodes favor aggregation, and large elements
// amortize the per-operation latency that two-phase exists to dodge.
func TwoPhaseSweep() ([]StrategyPoint, error) {
	var out []StrategyPoint
	for _, prof := range []vtime.Profile{vtime.Paragon(), vtime.CM5()} {
		for _, nprocs := range []int{4, 16} {
			for _, particles := range []int{8, 128} {
				for _, stripe := range []int{1, 4} {
					pt, err := MeasureStrategies(prof, nprocs, 16*nprocs, particles, stripe, 64<<10)
					if err != nil {
						return nil, err
					}
					out = append(out, pt)
				}
			}
		}
	}
	return out, nil
}
