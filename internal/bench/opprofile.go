package bench

import (
	"fmt"
	"io"

	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/vtime"
)

// OpProfile regenerates the operation-count story behind one table column:
// for each variant, the number and kind of I/O calls issued. This is the
// mechanism behind the paper's results — "buffering reduces total I/O
// latency time" because it replaces thousands of small calls with a few
// parallel ones.
func OpProfile(w io.Writer, prof vtime.Profile, nprocs, segments int) error {
	fmt.Fprintf(w, "I/O operation profile — %s, %d procs, %d segments (output+input):\n",
		prof.Name, nprocs, segments)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s %10s %12s %12s\n",
		"variant", "opens", "smallW", "smallR", "parW", "parR", "bytesW", "bytesR")
	for _, v := range []Variant{Unbuffered, ManualBuf, Streams} {
		m, err := Measure(Run{Profile: prof, NProcs: nprocs, Segments: segments, Variant: v})
		if err != nil {
			return err
		}
		io := m.IO
		fmt.Fprintf(w, "%-20s %10d %10d %10d %10d %10d %12d %12d\n",
			v, io.Opens, io.IndependentWrites, io.IndependentReads,
			io.ParallelAppends, io.ParallelReads, io.BytesWritten, io.BytesRead)
	}
	return nil
}

// PlatformSweep runs the streams variant of the SCF benchmark on every
// platform profile — including the CM-5, which the paper reports the
// library ran on but could not time ("CMMD timers do not account for I/O").
// The virtual-time machinery has no such limitation, so the sweep supplies
// the CM-5 column the paper could not.
type PlatformResult struct {
	Profile  string
	NProcs   int
	Segments int
	Variant  Variant
	Seconds  float64
}

// RunPlatformSweep measures every variant on every platform at one size.
func RunPlatformSweep(nprocs, segments int) ([]PlatformResult, error) {
	var out []PlatformResult
	for _, name := range []string{"paragon", "cm5", "challenge"} {
		prof, _ := vtime.ByName(name)
		for _, v := range []Variant{Unbuffered, ManualBuf, Streams} {
			secs, err := Seconds(Run{Profile: prof, NProcs: nprocs, Segments: segments, Variant: v})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%v: %w", name, v, err)
			}
			out = append(out, PlatformResult{
				Profile: name, NProcs: nprocs, Segments: segments, Variant: v, Seconds: secs,
			})
		}
	}
	return out, nil
}

// ScalingPoint is one node-count measurement of the scaling sweep.
type ScalingPoint struct {
	NProcs int
	Linear float64 // seconds with linear collectives
	Tree   float64 // seconds with tree collectives
}

// RunScalingSweep measures the streams variant at fixed problem size over a
// range of node counts, under both collective algorithms — the extension
// "figure" beyond the paper's 8-processor ceiling. The benchmark is
// strong-scaling: total data stays constant.
func RunScalingSweep(prof vtime.Profile, segments int, procCounts []int) ([]ScalingPoint, error) {
	return runScaling(prof, procCounts, func(int) int { return segments })
}

// RunWeakScalingSweep grows the problem with the machine: segmentsPerProc
// segments per node, so perfect weak scaling is a flat line.
func RunWeakScalingSweep(prof vtime.Profile, segmentsPerProc int, procCounts []int) ([]ScalingPoint, error) {
	return runScaling(prof, procCounts, func(p int) int { return segmentsPerProc * p })
}

func runScaling(prof vtime.Profile, procCounts []int, segsFor func(p int) int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, p := range procCounts {
		pt := ScalingPoint{NProcs: p}
		for _, alg := range []collective.Algorithm{collective.Linear, collective.Tree} {
			secs, err := Seconds(Run{
				Profile: prof, NProcs: p, Segments: segsFor(p),
				Variant: Streams, Collectives: alg,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: scaling p=%d alg=%v: %w", p, alg, err)
			}
			if alg == collective.Linear {
				pt.Linear = secs
			} else {
				pt.Tree = secs
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatScalingSweep renders the sweep.
func FormatScalingSweep(w io.Writer, prof vtime.Profile, segments int, pts []ScalingPoint) {
	fmt.Fprintf(w, "Strong scaling (extension) — %s, %d segments, streams variant (virtual seconds):\n",
		prof.Name, segments)
	fmt.Fprintf(w, "%8s %14s %14s\n", "procs", "linear-coll", "tree-coll")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %14.3f %14.3f\n", p.NProcs, p.Linear, p.Tree)
	}
}

// FormatPlatformSweep renders the sweep as a table.
func FormatPlatformSweep(w io.Writer, results []PlatformResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "Platform sweep — %d procs, %d segments (output+input, virtual seconds):\n",
		results[0].NProcs, results[0].Segments)
	fmt.Fprintf(w, "%-20s %12s %12s %12s\n", "variant", "paragon", "cm5", "challenge")
	byKey := map[string]float64{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%d", r.Profile, r.Variant)] = r.Seconds
	}
	for _, v := range []Variant{Unbuffered, ManualBuf, Streams} {
		fmt.Fprintf(w, "%-20s %12.3f %12.3f %12.3f\n", v,
			byKey[fmt.Sprintf("paragon/%d", v)],
			byKey[fmt.Sprintf("cm5/%d", v)],
			byKey[fmt.Sprintf("challenge/%d", v)])
	}
}
