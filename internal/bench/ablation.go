package bench

import (
	"fmt"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// This file implements the ablation experiments DESIGN.md derives from the
// paper's design choices: each returns virtual seconds for the two (or
// more) sides of one design decision, so the benches can report the margin
// the choice buys.

// AblationSortedVsUnsorted measures read vs unsortedRead on a file whose
// distribution changed between write and read (§3: unsortedRead avoids the
// interprocessor communication).
func AblationSortedVsUnsorted(prof vtime.Profile, nprocs, segments int) (sorted, unsorted float64, err error) {
	measure := func(v Variant) (float64, error) {
		fs := pfs.NewMemFS(prof)
		res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				wd, err := distr.New(segments, nprocs, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				c, err := collection.New[scf.Segment](n, wd)
				if err != nil {
					return err
				}
				c.Apply(func(g int, s *scf.Segment) { s.Fill(g, scf.DefaultParticles) })
				if err := streamsWrite(n, wd, c, "ab", dstream.Options{}); err != nil {
					return err
				}
				// Read under a different distribution so sorting must route.
				rd, err := distr.New(segments, nprocs, distr.Block, 0)
				if err != nil {
					return err
				}
				back, err := collection.New[scf.Segment](n, rd)
				if err != nil {
					return err
				}
				if err := n.Comm().Barrier(); err != nil {
					return err
				}
				n.Clock().Reset()
				return streamsRead(n, rd, back, "ab", v == StreamsSorted, dstream.Options{})
			})
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	if sorted, err = measure(StreamsSorted); err != nil {
		return 0, 0, err
	}
	if unsorted, err = measure(Streams); err != nil {
		return 0, 0, err
	}
	return sorted, unsorted, nil
}

// AblationMetadataPath measures the funnel-through-node-0 metadata path
// against the parallel metadata write for a given collection size (§4.1
// step 1: the right choice depends on the element count).
func AblationMetadataPath(prof vtime.Profile, nprocs, segments int) (funnel, parallel float64, err error) {
	measure := func(pol dstream.MetaPolicy) (float64, error) {
		return Seconds(Run{
			Profile: prof, NProcs: nprocs, Segments: segments,
			Variant: Streams, StreamOpts: dstream.Options{Meta: pol},
		})
	}
	if funnel, err = measure(dstream.MetaFunnel); err != nil {
		return 0, 0, err
	}
	if parallel, err = measure(dstream.MetaParallel); err != nil {
		return 0, 0, err
	}
	return funnel, parallel, nil
}

// AblationInterleave measures inserting k field arrays into one record
// (interleaved, one parallel write) against writing k separate records
// (one per field), quantifying what the interleaving feature saves.
func AblationInterleave(prof vtime.Profile, nprocs, segments int) (interleaved, separate float64, err error) {
	measure := func(oneRecord bool) (float64, error) {
		fs := pfs.NewMemFS(prof)
		res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(segments, nprocs, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				c, err := collection.New[scf.Segment](n, d)
				if err != nil {
					return err
				}
				c.Apply(func(g int, s *scf.Segment) { s.Fill(g, scf.DefaultParticles) })
				if err := n.Comm().Barrier(); err != nil {
					return err
				}
				n.Clock().Reset()
				s, err := dstream.Open(n, d, "il")
				if err != nil {
					return err
				}
				defer s.Close()
				inserts := []func() error{
					func() error {
						return dstream.InsertField(s, c, func(e *scf.Segment) int64 { return e.NumberOfParticles })
					},
					func() error {
						return dstream.InsertFloat64Slice(s, c, func(e *scf.Segment) []float64 { return e.X })
					},
					func() error {
						return dstream.InsertFloat64Slice(s, c, func(e *scf.Segment) []float64 { return e.Y })
					},
					func() error {
						return dstream.InsertFloat64Slice(s, c, func(e *scf.Segment) []float64 { return e.Z })
					},
					func() error {
						return dstream.InsertFloat64Slice(s, c, func(e *scf.Segment) []float64 { return e.Mass })
					},
				}
				for _, ins := range inserts {
					if err := ins(); err != nil {
						return err
					}
					if !oneRecord {
						if err := s.Write(); err != nil {
							return err
						}
					}
				}
				if oneRecord {
					return s.Write()
				}
				return nil
			})
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	if interleaved, err = measure(true); err != nil {
		return 0, 0, err
	}
	if separate, err = measure(false); err != nil {
		return 0, 0, err
	}
	return interleaved, separate, nil
}

// AblationFlushGranularity measures the cost of flushing the same data in
// `records` separate write() calls — the buffering-reduces-latency claim of
// §4.3 ("buffering reduces total I/O latency time").
func AblationFlushGranularity(prof vtime.Profile, nprocs, segments int, records int) (float64, error) {
	if records <= 0 || segments%records != 0 {
		return 0, fmt.Errorf("bench: segments (%d) must divide into records (%d)", segments, records)
	}
	fs := pfs.NewMemFS(prof)
	res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs},
		func(n *machine.Node) error {
			// Each record covers segments/records segments: model a program
			// that flushes its buffer `records` times.
			per := segments / records
			d, err := distr.New(per, nprocs, distr.Cyclic, 0)
			if err != nil {
				return err
			}
			c, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, s *scf.Segment) { s.Fill(g, scf.DefaultParticles) })
			if err := n.Comm().Barrier(); err != nil {
				return err
			}
			n.Clock().Reset()
			s, err := dstream.Open(n, d, "fg")
			if err != nil {
				return err
			}
			defer s.Close()
			for rec := 0; rec < records; rec++ {
				if err := dstream.Insert[scf.Segment](s, c); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// AblationRedistribute measures a checkpoint/restart where the reader keeps
// the writer's layout against one where both the processor count and the
// distribution changed — the price of §4.1's two-phase read, paid only when
// needed.
func AblationRedistribute(prof vtime.Profile, segments int) (same, changed float64, err error) {
	writeCk := func(fs *pfs.FileSystem) error {
		_, err := machine.Run(machine.Config{NProcs: 4, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(segments, 4, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				c, err := collection.New[scf.Segment](n, d)
				if err != nil {
					return err
				}
				c.Apply(func(g int, s *scf.Segment) { s.Fill(g, scf.DefaultParticles) })
				return streamsWrite(n, d, c, "ck", dstream.Options{})
			})
		return err
	}
	restart := func(fs *pfs.FileSystem, nprocs int, mode distr.Mode) (float64, error) {
		res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(segments, nprocs, mode, 0)
				if err != nil {
					return err
				}
				back, err := collection.New[scf.Segment](n, d)
				if err != nil {
					return err
				}
				return streamsRead(n, d, back, "ck", true, dstream.Options{})
			})
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}

	fs1 := pfs.NewMemFS(prof)
	if err = writeCk(fs1); err != nil {
		return 0, 0, err
	}
	if same, err = restart(fs1, 4, distr.Cyclic); err != nil {
		return 0, 0, err
	}
	fs2 := pfs.NewMemFS(prof)
	if err = writeCk(fs2); err != nil {
		return 0, 0, err
	}
	if changed, err = restart(fs2, 6, distr.Block); err != nil {
		return 0, 0, err
	}
	return same, changed, nil
}

// AblationAsyncOverlap measures the write-behind extension: a program that
// alternates computation with checkpoint writes, once with synchronous
// writes (compute and I/O serialize) and once with Options.Async (they
// overlap). computeSecs is the per-round computation time.
func AblationAsyncOverlap(prof vtime.Profile, nprocs, segments, rounds int, computeSecs float64) (sync, async float64, err error) {
	measure := func(asyncMode bool) (float64, error) {
		fs := pfs.NewMemFS(prof)
		res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(segments, nprocs, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				c, err := collection.New[scf.Segment](n, d)
				if err != nil {
					return err
				}
				c.Apply(func(g int, s *scf.Segment) { s.Fill(g, scf.DefaultParticles) })
				if err := n.Comm().Barrier(); err != nil {
					return err
				}
				n.Clock().Reset()
				s, err := dstream.Open(n, d, "ck", dstream.WithOptions(dstream.Options{Async: asyncMode}))
				if err != nil {
					return err
				}
				defer s.Close()
				for r := 0; r < rounds; r++ {
					n.Compute(computeSecs)
					if err := dstream.Insert[scf.Segment](s, c); err != nil {
						return err
					}
					if err := s.Write(); err != nil {
						return err
					}
				}
				return s.Close()
			})
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	if sync, err = measure(false); err != nil {
		return 0, 0, err
	}
	if async, err = measure(true); err != nil {
		return 0, 0, err
	}
	return sync, async, nil
}

// AblationTransport runs the same streams measurement over the in-process
// channel transport and the TCP socket transport; identical virtual times
// validate the transport substitution (DESIGN.md).
func AblationTransport(prof vtime.Profile, nprocs, segments int) (chanSecs, tcpSecs float64, err error) {
	if chanSecs, err = Seconds(Run{
		Profile: prof, NProcs: nprocs, Segments: segments,
		Variant: Streams, Transport: machine.TransportChan,
	}); err != nil {
		return 0, 0, err
	}
	if tcpSecs, err = Seconds(Run{
		Profile: prof, NProcs: nprocs, Segments: segments,
		Variant: Streams, Transport: machine.TransportTCP,
	}); err != nil {
		return 0, 0, err
	}
	return chanSecs, tcpSecs, nil
}
