package bench

import (
	"fmt"
	"time"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/vtime"
)

// The scale curve measures the real (wall-clock) per-message cost of the
// comm stack as the simulated machine grows from 4 to 1024 ranks — the
// number the lock-free mailbox rings exist to keep flat. Every rank runs
// the same fixed workload (a neighbor-ring send/recv train plus sharded
// collectives), so the total message count grows linearly with the rank
// count while the per-rank work stays constant; on a fixed host, perfect
// runtime scalability therefore means wall time per message stays flat.
// The old mutex mailbox failed exactly this: every enqueue to a hot rank
// serialized on one lock and the cost per message climbed with the rank
// count. The committed BENCH_scale.json is gated on the ratio against the
// 8-rank cell (see CheckScaleCurve).

// ScalePoint is one cell of the scale curve: one rank count, best-of-reps
// wall time over the fixed per-rank workload.
type ScalePoint struct {
	NProcs     int `json:"nprocs"`
	P2PPerRank int `json:"p2p_per_rank"`
	Rounds     int `json:"rounds"`
	Fanout     int `json:"fanout"`
	// Messages is the total point-to-point message count of one rep
	// (collective traffic included — collectives are built from messages).
	Messages int `json:"messages"`
	// WallSeconds is the best rep's real time; PerMsgMicros is that wall
	// time divided by the message count — the scale curve's y-axis.
	WallSeconds  float64 `json:"wall_seconds"`
	PerMsgMicros float64 `json:"per_msg_micros"`
	// Mailbox-path counters of the best rep: how the traffic split between
	// the lock-free ring fast path and the overflow list, and how often
	// anyone blocked.
	RingPuts      int64 `json:"ring_puts"`
	Spills        int64 `json:"spills"`
	FullStalls    int64 `json:"full_stalls"`
	ConsumerParks int64 `json:"consumer_parks"`
}

// scaleTag is the user-level tag of the neighbor train; its high byte is
// zero, so it can never collide with the collective kinds.
const scaleTag uint64 = 0x5CA1E

// scaleWorkload is the fixed per-rank body: rounds × (p2p messages to the
// right neighbor interleaved with receives from the left, then one
// Allreduce and one Barrier over the sharded trees).
func scaleWorkload(p2p, rounds int) func(n *machine.Node) error {
	return func(n *machine.Node) error {
		me, size := n.Rank(), n.Size()
		right := (me + 1) % size
		left := (me - 1 + size) % size
		payload := make([]byte, 256)
		ep := n.Comm().Endpoint()
		for r := 0; r < rounds; r++ {
			for i := 0; i < p2p; i++ {
				if err := ep.Send(right, scaleTag, payload); err != nil {
					return err
				}
				d, err := ep.Recv(left, scaleTag)
				if err != nil {
					return err
				}
				bufpool.Put(d)
			}
			if _, err := n.Comm().Allreduce(float64(me), collective.OpMax); err != nil {
				return err
			}
			if err := n.Comm().Barrier(); err != nil {
				return err
			}
		}
		return nil
	}
}

// MeasureScale times the fixed workload at one rank count, keeping the
// best (minimum) wall time across reps — the rep least disturbed by the
// host's scheduler, which is the machine-dependent noise the curve must
// reject.
func MeasureScale(nprocs, p2p, rounds, fanout, reps int) (ScalePoint, error) {
	pt := ScalePoint{NProcs: nprocs, P2PPerRank: p2p, Rounds: rounds, Fanout: fanout}
	for rep := 0; rep < reps; rep++ {
		var tr *comm.ChanTransport
		cfg := machine.Config{
			NProcs:  nprocs,
			Profile: vtime.Paragon(),
			Fanout:  fanout,
			WrapTransport: func(t comm.Transport) comm.Transport {
				tr, _ = t.(*comm.ChanTransport)
				return t
			},
		}
		start := time.Now()
		res, err := machine.Run(cfg, scaleWorkload(p2p, rounds))
		wall := time.Since(start).Seconds()
		if err != nil {
			return pt, fmt.Errorf("bench: scale cell %d ranks: %w", nprocs, err)
		}
		if rep == 0 || wall < pt.WallSeconds {
			pt.WallSeconds = wall
			pt.Messages = res.MessagesSent
			pt.PerMsgMicros = wall * 1e6 / float64(res.MessagesSent)
			if tr != nil {
				st := tr.RingStats()
				pt.RingPuts, pt.Spills = st.RingPuts, st.Spills
				pt.FullStalls, pt.ConsumerParks = st.FullStalls, st.ConsumerParks
			}
		}
	}
	return pt, nil
}

// ScaleSweep runs the scale curve over doubling rank counts from 4 up to
// maxProcs (1024 for the committed curve; CI smokes a 128 cap).
func ScaleSweep(maxProcs int) ([]ScalePoint, error) {
	const (
		p2p    = 64
		rounds = 4
		fanout = 8
		reps   = 3
	)
	var out []ScalePoint
	for n := 4; n <= maxProcs; n *= 2 {
		pt, err := MeasureScale(n, p2p, rounds, fanout, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// CheckScaleCurve gates the curve: every cell's per-message wall cost, from
// the 8-rank baseline up, must stay within maxRatio of the 8-rank cell's.
// A mailbox whose enqueue cost grows with the rank count (lock convoys,
// one-goroutine funnels) fails here long before 1024 ranks. Cells below
// the baseline are reported but not gated: their message counts are small
// enough that the fixed machine setup dominates the quotient, and the gate
// guards scaling up, not down.
func CheckScaleCurve(pts []ScalePoint, maxRatio float64) error {
	var base float64
	for _, p := range pts {
		if p.NProcs == 8 {
			base = p.PerMsgMicros
		}
	}
	if base == 0 {
		return fmt.Errorf("bench: scale curve has no 8-rank baseline cell")
	}
	for _, p := range pts {
		if p.NProcs < 8 {
			continue
		}
		if ratio := p.PerMsgMicros / base; ratio > maxRatio {
			return fmt.Errorf("bench: scale cell %d ranks: %.3f µs/msg is %.2fx the 8-rank cost (%.3f µs/msg), budget %.2fx",
				p.NProcs, p.PerMsgMicros, ratio, base, maxRatio)
		}
	}
	return nil
}
