package bench

import (
	"fmt"
	"strings"
	"testing"

	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// TestTablesReproduceShape regenerates every table (with data verification)
// and asserts the DESIGN.md shape criteria.
func TestTablesReproduceShape(t *testing.T) {
	for _, spec := range Tables() {
		spec := spec
		t.Run(spec.Title, func(t *testing.T) {
			res, err := RunTable(spec, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.CheckShape(); err != nil {
				var b strings.Builder
				res.Format(&b)
				t.Fatalf("%v\n%s", err, b.String())
			}
		})
	}
}

// TestTablesWithinFactorOfPaper: every regenerated cell is within 2× of the
// published number — we reproduce shape, but the absolute levels should not
// drift wildly either.
func TestTablesWithinFactorOfPaper(t *testing.T) {
	const factor = 2.0
	for _, spec := range Tables() {
		res, err := RunTable(spec, false)
		if err != nil {
			t.Fatal(err)
		}
		check := func(label string, got, paper []float64) {
			for i := range got {
				lo, hi := paper[i]/factor, paper[i]*factor
				if got[i] < lo || got[i] > hi {
					t.Errorf("table %d %s col %d: %.2f outside [%.2f, %.2f] (paper %.2f)",
						spec.ID, label, i, got[i], lo, hi, paper[i])
				}
			}
		}
		check("unbuffered", res.Unbuffered, spec.PaperUnbuffered)
		check("manual", res.Manual, spec.PaperManual)
		check("streams", res.Streams, spec.PaperStreams)
	}
}

func TestTableByID(t *testing.T) {
	for id := 1; id <= 4; id++ {
		spec, err := TableByID(id)
		if err != nil || spec.ID != id {
			t.Fatalf("TableByID(%d) = %+v, %v", id, spec.ID, err)
		}
	}
	if _, err := TableByID(9); err == nil {
		t.Fatal("TableByID(9) succeeded")
	}
}

func TestSecondsUnknownVariant(t *testing.T) {
	if _, err := Seconds(Run{Profile: vtime.Challenge(), NProcs: 1, Segments: 4, Variant: Variant(99)}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		Unbuffered:    "Unbuffered I/O",
		ManualBuf:     "Manual Buffering",
		Streams:       "pC++/streams",
		StreamsSorted: "pC++/streams (sorted read)",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func TestAblationSortedVsUnsorted(t *testing.T) {
	sorted, unsorted, err := AblationSortedVsUnsorted(vtime.Paragon(), 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if unsorted >= sorted {
		t.Fatalf("unsortedRead (%v) not faster than read (%v)", unsorted, sorted)
	}
}

func TestAblationMetadataPath(t *testing.T) {
	// Small collection: funnel should win (that's why the paper funnels).
	funnelS, parallelS, err := AblationMetadataPath(vtime.Paragon(), 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if funnelS > parallelS {
		t.Errorf("small collection: funnel (%v) slower than parallel (%v)", funnelS, parallelS)
	}
}

func TestAblationInterleave(t *testing.T) {
	inter, sep, err := AblationInterleave(vtime.Paragon(), 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if inter >= sep {
		t.Fatalf("interleaved single record (%v) not cheaper than %v separate records (%v)",
			inter, 5, sep)
	}
}

func TestAblationFlushGranularity(t *testing.T) {
	one, err := AblationFlushGranularity(vtime.Paragon(), 4, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := AblationFlushGranularity(vtime.Paragon(), 4, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one >= many {
		t.Fatalf("1 flush (%v) not cheaper than 8 flushes (%v)", one, many)
	}
	if _, err := AblationFlushGranularity(vtime.Paragon(), 4, 10, 3); err == nil {
		t.Fatal("non-divisible flush count accepted")
	}
}

func TestAblationRedistribute(t *testing.T) {
	same, changed, err := AblationRedistribute(vtime.Paragon(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if same >= changed {
		t.Fatalf("same-layout restart (%v) not cheaper than redistributing restart (%v)", same, changed)
	}
}

func TestAblationTransportVirtualTimesEqual(t *testing.T) {
	chanS, tcpS, err := AblationTransport(vtime.Challenge(), 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if chanS != tcpS {
		t.Fatalf("virtual time differs by transport: chan %v, tcp %v", chanS, tcpS)
	}
}

// TestStreamOptsPlumbed: explicit metadata policies produce a working run.
func TestStreamOptsPlumbed(t *testing.T) {
	for _, pol := range []dstream.MetaPolicy{dstream.MetaAuto, dstream.MetaFunnel, dstream.MetaParallel} {
		if _, err := Seconds(Run{
			Profile: vtime.Challenge(), NProcs: 2, Segments: 16,
			Variant: Streams, StreamOpts: dstream.Options{Meta: pol}, Verify: true,
		}); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
	}
}

// TestSortedVariantVerifies: the sorted-read variant round-trips data too.
func TestSortedVariantVerifies(t *testing.T) {
	if _, err := Seconds(Run{
		Profile: vtime.Challenge(), NProcs: 3, Segments: 30,
		Variant: StreamsSorted, Verify: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestOpProfileStory: the mechanism behind every table — unbuffered issues
// thousands of small calls; the buffered variants a handful of parallel
// ones; streams adds only metadata ops over manual buffering.
func TestOpProfileStory(t *testing.T) {
	const nprocs, segments = 4, 256
	measure := func(v Variant) Measurement {
		m, err := Measure(Run{Profile: vtime.Paragon(), NProcs: nprocs, Segments: segments, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	unbuf := measure(Unbuffered)
	manual := measure(ManualBuf)
	streams := measure(Streams)

	// Unbuffered: 8 calls per segment per phase (count + 7 arrays).
	wantSmall := int64(segments * 8)
	if unbuf.IO.IndependentWrites != wantSmall || unbuf.IO.IndependentReads != wantSmall {
		t.Fatalf("unbuffered small ops = %d/%d, want %d each",
			unbuf.IO.IndependentWrites, unbuf.IO.IndependentReads, wantSmall)
	}
	if unbuf.IO.ParallelAppends != 0 || unbuf.IO.ParallelReads != 0 {
		t.Fatal("unbuffered used parallel ops")
	}
	// Manual: exactly one parallel op per phase, zero small data ops.
	if manual.IO.ParallelAppends != 1 || manual.IO.ParallelReads != 1 {
		t.Fatalf("manual parallel ops = %d/%d, want 1/1",
			manual.IO.ParallelAppends, manual.IO.ParallelReads)
	}
	if manual.IO.IndependentWrites != 0 || manual.IO.IndependentReads != 0 {
		t.Fatal("manual buffering issued small ops")
	}
	// Streams: same parallel op count, plus a handful of metadata calls.
	if streams.IO.ParallelAppends != 1 || streams.IO.ParallelReads != 1 {
		t.Fatalf("streams parallel ops = %d/%d, want 1/1",
			streams.IO.ParallelAppends, streams.IO.ParallelReads)
	}
	metaOps := streams.IO.IndependentWrites + streams.IO.IndependentReads
	if metaOps == 0 || metaOps > 8 {
		t.Fatalf("streams metadata ops = %d, want a small handful", metaOps)
	}
	// Streams' extra file bytes are exactly the bookkeeping: the file and
	// record headers, the size table (4 B/element), and the length prefixes
	// of the seven variable arrays plus the wider count (28 B/element) that
	// make the format self-describing.
	extra := streams.IO.BytesWritten - manual.IO.BytesWritten
	wantExtra := int64(16 + 56 + segments*4 + segments*28)
	if extra != wantExtra {
		t.Fatalf("streams metadata bytes = %d, want %d", extra, wantExtra)
	}
	// Manual moves exactly the raw payload.
	wantBytes := int64(segments) * scf.RawBytes(scf.DefaultParticles)
	if manual.IO.BytesWritten != wantBytes {
		t.Fatalf("manual bytes = %d, want %d", manual.IO.BytesWritten, wantBytes)
	}
	// Messages: streams needs collectives for its metadata (size gather,
	// header broadcast) on top of the harness's own barrier; manual
	// buffering needs only that barrier.
	if streams.MessagesSent <= manual.MessagesSent {
		t.Fatalf("streams messages (%d) not above manual's (%d) — metadata collectives missing",
			streams.MessagesSent, manual.MessagesSent)
	}
}

// TestPlatformSweepOrdering: on every platform, at benchmark scale,
// buffered beats unbuffered and manual is the floor.
func TestPlatformSweepOrdering(t *testing.T) {
	results, err := RunPlatformSweep(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%d", r.Profile, r.Variant)] = r.Seconds
	}
	for _, p := range []string{"paragon", "cm5", "challenge"} {
		u := byKey[fmt.Sprintf("%s/%d", p, Unbuffered)]
		m := byKey[fmt.Sprintf("%s/%d", p, ManualBuf)]
		s := byKey[fmt.Sprintf("%s/%d", p, Streams)]
		if u == 0 || m == 0 || s == 0 {
			t.Fatalf("%s: missing results", p)
		}
		if u <= m {
			t.Errorf("%s: unbuffered (%v) not slower than manual (%v)", p, u, m)
		}
		if s <= m {
			t.Errorf("%s: streams (%v) not slower than manual (%v)", p, s, m)
		}
	}
}

func TestOpProfileFormats(t *testing.T) {
	var b strings.Builder
	if err := OpProfile(&b, vtime.Challenge(), 2, 16); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Unbuffered I/O", "Manual Buffering", "pC++/streams", "opens"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

// TestAblationAsyncOverlap: with real computation between writes, the
// write-behind stream overlaps I/O and compute; the synchronous stream
// serializes them. The async elapsed time must be materially shorter and
// bounded below by both the total compute and the total I/O.
func TestAblationAsyncOverlap(t *testing.T) {
	const rounds, compute = 4, 0.5
	syncT, asyncT, err := AblationAsyncOverlap(vtime.Paragon(), 4, 512, rounds, compute)
	if err != nil {
		t.Fatal(err)
	}
	if asyncT >= syncT {
		t.Fatalf("async (%v) not faster than sync (%v)", asyncT, syncT)
	}
	if asyncT < rounds*compute {
		t.Fatalf("async (%v) finished before its own computation (%v)", asyncT, float64(rounds)*compute)
	}
	// The saving should be a significant share of the I/O time.
	if syncT-asyncT < 0.2 {
		t.Fatalf("overlap saved only %v seconds", syncT-asyncT)
	}
}

// TestScalingSweep: the extension strong-scaling sweep runs and shows
// speedup from 1 to 4 nodes; the tree collectives never lose to linear by
// a meaningful margin at any point.
func TestScalingSweep(t *testing.T) {
	pts, err := RunScalingSweep(vtime.Challenge(), 1024, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Linear >= pts[0].Linear {
		t.Fatalf("no speedup 1→4 nodes: %v → %v", pts[0].Linear, pts[1].Linear)
	}
	for _, p := range pts {
		if p.Tree > p.Linear*1.1 {
			t.Fatalf("tree collectives regressed at %d nodes: %v vs %v", p.NProcs, p.Tree, p.Linear)
		}
	}
}

// TestTreeCollectivesFullPipeline: the whole streams pipeline works (and
// verifies) under tree collectives.
func TestTreeCollectivesFullPipeline(t *testing.T) {
	if _, err := Seconds(Run{
		Profile: vtime.Paragon(), NProcs: 8, Segments: 64,
		Variant: StreamsSorted, Verify: true,
		Collectives: collective.Tree,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWeakScalingSweep: with segments growing proportionally to nodes, the
// time per node grows far slower than the data (the disk-bound baseline on
// challenge's multiple channels keeps per-node time near-flat up to the
// channel count).
func TestWeakScalingSweep(t *testing.T) {
	pts, err := RunWeakScalingSweep(vtime.Challenge(), 256, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4x the data on 4x the nodes: time should grow far less than 4x.
	if pts[1].Linear > pts[0].Linear*2.5 {
		t.Fatalf("weak scaling broke down: 1 node %v, 4 nodes (4x data) %v",
			pts[0].Linear, pts[1].Linear)
	}
}
