package bench

import (
	"fmt"
	"io"
	"strings"

	"pcxxstreams/internal/vtime"
)

// TableSpec describes one table of the paper's Figure 5, including the
// published numbers for side-by-side comparison.
type TableSpec struct {
	ID       int
	Title    string
	Platform string // profile name
	NProcs   int
	// Columns.
	Segments []int
	SizeMB   []float64
	// Paper rows, indexed [variant][column]; Percent is the paper's final
	// row (pC++/streams as % of manual buffering).
	PaperUnbuffered []float64
	PaperManual     []float64
	PaperStreams    []float64
	PaperPercent    []float64
}

// Tables returns the four specs of Figure 5.
func Tables() []TableSpec {
	return []TableSpec{
		{
			ID: 1, Title: "Benchmark Results on Intel Paragon (4 processors)",
			Platform: "paragon", NProcs: 4,
			Segments:        []int{256, 512, 1000, 2000},
			SizeMB:          []float64{1.4, 2.8, 5.6, 11.2},
			PaperUnbuffered: []float64{7.13, 14.73, 283.00, 556.78},
			PaperManual:     []float64{2.14, 3.04, 5.42, 54.17},
			PaperStreams:    []float64{2.47, 3.31, 5.71, 55.00},
			PaperPercent:    []float64{86.7, 91.9, 95.0, 98.5},
		},
		{
			ID: 2, Title: "Benchmark Results on Intel Paragon (8 processors)",
			Platform: "paragon", NProcs: 8,
			Segments:        []int{256, 512, 1000, 2000},
			SizeMB:          []float64{1.4, 2.8, 5.6, 11.2},
			PaperUnbuffered: []float64{7.53, 14.47, 273.77, 561.72},
			PaperManual:     []float64{2.91, 3.75, 5.72, 9.69},
			PaperStreams:    []float64{3.36, 4.20, 6.16, 10.19},
			PaperPercent:    []float64{86.5, 89.3, 93.0, 95.1},
		},
		{
			ID: 3, Title: "Benchmark Results on Uniprocessor SGI Challenge (preliminary)",
			Platform: "challenge", NProcs: 1,
			Segments:        []int{1000, 2000, 20000},
			SizeMB:          []float64{5.6, 11.2, 112},
			PaperUnbuffered: []float64{1.68, 3.42, 32.20},
			PaperManual:     []float64{1.05, 2.13, 20.9},
			PaperStreams:    []float64{1.32, 2.71, 21.84},
			PaperPercent:    []float64{79, 78, 95},
		},
		{
			ID: 4, Title: "Benchmark Results on Multiprocessor SGI Challenge (8 processors) (preliminary)",
			Platform: "challenge", NProcs: 8,
			Segments:        []int{1000, 2000, 8000},
			SizeMB:          []float64{5.6, 11.2, 44.8},
			PaperUnbuffered: []float64{0.55, 1.10, 4.95},
			PaperManual:     []float64{0.22, 0.34, 2.38},
			PaperStreams:    []float64{0.39, 0.75, 2.65},
			PaperPercent:    []float64{56, 45, 89},
		},
	}
}

// TableByID returns the spec with the given ID.
func TableByID(id int) (TableSpec, error) {
	for _, t := range Tables() {
		if t.ID == id {
			return t, nil
		}
	}
	return TableSpec{}, fmt.Errorf("bench: no table %d (have 1-4)", id)
}

// TableResult holds one regenerated table.
type TableResult struct {
	Spec       TableSpec
	Unbuffered []float64
	Manual     []float64
	Streams    []float64
	Percent    []float64 // manual as % of streams time (paper's final row)
}

// RunTable regenerates every cell of spec. verify re-checks data integrity
// after each input phase.
func RunTable(spec TableSpec, verify bool) (TableResult, error) {
	prof, ok := vtime.ByName(spec.Platform)
	if !ok {
		return TableResult{}, fmt.Errorf("bench: unknown platform %q", spec.Platform)
	}
	res := TableResult{Spec: spec}
	for _, segs := range spec.Segments {
		for _, v := range []Variant{Unbuffered, ManualBuf, Streams} {
			secs, err := Seconds(Run{
				Profile: prof, NProcs: spec.NProcs, Segments: segs,
				Variant: v, Verify: verify,
			})
			if err != nil {
				return res, fmt.Errorf("bench: table %d, %d segments, %v: %w", spec.ID, segs, v, err)
			}
			switch v {
			case Unbuffered:
				res.Unbuffered = append(res.Unbuffered, secs)
			case ManualBuf:
				res.Manual = append(res.Manual, secs)
			case Streams:
				res.Streams = append(res.Streams, secs)
			}
		}
	}
	for i := range res.Manual {
		res.Percent = append(res.Percent, 100*res.Manual[i]/res.Streams[i])
	}
	return res, nil
}

// Format renders the regenerated table next to the paper's numbers.
func (r TableResult) Format(w io.Writer) {
	s := r.Spec
	fmt.Fprintf(w, "Table %d: %s\n", s.ID, s.Title)
	fmt.Fprintf(w, "(virtual seconds; paper values in parentheses)\n")
	head := "I/O Size (# of Segments)  "
	for i, mb := range s.SizeMB {
		head += fmt.Sprintf("| %8.1f MB (%d) ", mb, s.Segments[i])
	}
	fmt.Fprintln(w, head)
	fmt.Fprintln(w, strings.Repeat("-", len(head)))
	row := func(label string, got, paper []float64, pct bool) {
		fmt.Fprintf(w, "%-26s", label)
		for i := range got {
			if pct {
				fmt.Fprintf(w, "| %6.1f%% (%5.1f%%) ", got[i], paper[i])
			} else {
				fmt.Fprintf(w, "| %7.2f (%7.2f) ", got[i], paper[i])
			}
		}
		fmt.Fprintln(w)
	}
	row("Unbuffered I/O", r.Unbuffered, s.PaperUnbuffered, false)
	row("Manual Buffering", r.Manual, s.PaperManual, false)
	row("pC++/streams", r.Streams, s.PaperStreams, false)
	row("% of Manual Buf.", r.Percent, s.PaperPercent, true)
	fmt.Fprintln(w)
}

// CheckShape validates the DESIGN.md shape criteria against the regenerated
// numbers and returns the first violation.
func (r TableResult) CheckShape() error {
	s := r.Spec
	for i := range s.Segments {
		if r.Unbuffered[i] <= r.Manual[i] {
			return fmt.Errorf("table %d col %d: unbuffered (%.2f) not slower than manual (%.2f)",
				s.ID, i, r.Unbuffered[i], r.Manual[i])
		}
		if r.Streams[i] <= r.Manual[i] {
			return fmt.Errorf("table %d col %d: streams (%.2f) not slower than manual (%.2f) — overhead vanished",
				s.ID, i, r.Streams[i], r.Manual[i])
		}
		if r.Percent[i] <= 0 || r.Percent[i] >= 100 {
			return fmt.Errorf("table %d col %d: percent %.1f out of (0,100)", s.ID, i, r.Percent[i])
		}
	}
	// Library overhead shrinks as I/O size grows (Figure 5's headline).
	for i := 1; i < len(r.Percent); i++ {
		if r.Percent[i] < r.Percent[i-1] {
			return fmt.Errorf("table %d: %% of manual not monotone: %.1f then %.1f",
				s.ID, r.Percent[i-1], r.Percent[i])
		}
	}
	// Paragon unbuffered cliff between 2.8 MB and 5.6 MB (Tables 1-2).
	if s.Platform == "paragon" {
		if r.Unbuffered[2] < 10*r.Unbuffered[1] {
			return fmt.Errorf("table %d: no unbuffered cache cliff: %.2f → %.2f (want >10×)",
				s.ID, r.Unbuffered[1], r.Unbuffered[2])
		}
	}
	return nil
}
