//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. Allocation
// pins stand down under -race: the instrumentation allocates, and sync.Pool
// deliberately randomizes caching there.
const raceEnabled = false
