package bench

import (
	"fmt"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// ReadAheadPoint is one cell of the read-ahead ablation grid: the same
// multi-record SCF input pipeline timed with prefetching off and on, on one
// (platform, strategy, depth) configuration. StallSync and StallAhead are
// the run-wide sums of dstream_refill_stall_seconds — the virtual time
// Read kept the consumers from computing — and the gate for the ablation
// is StallAhead < StallSync. Identical confirms both runs delivered every
// segment byte-for-byte equal to the generator (the prefetch pipeline is
// only allowed to move the stall, never the data).
type ReadAheadPoint struct {
	Platform         string  `json:"platform"`
	Strategy         string  `json:"strategy"`
	Depth            int     `json:"depth"`
	NProcs           int     `json:"nprocs"`
	Segments         int     `json:"segments"`
	Particles        int     `json:"particles"`
	Records          int     `json:"records"`
	StripeFactor     int     `json:"stripe_factor"`
	ComputePerRecord float64 `json:"compute_per_record_seconds"`
	StallSync        float64 `json:"refill_stall_sync_seconds"`
	StallAhead       float64 `json:"refill_stall_ahead_seconds"`
	PrefetchHits     int64   `json:"prefetch_hits"`
	Identical        bool    `json:"identical"`
}

// readAheadStall writes `records` records of SCF segments (cyclic layout),
// then reads them back under a block layout (forcing the sorted-read
// redistribution) with `compute` virtual seconds of work after each
// record, verifying every segment against the deterministic generator. It
// returns the input side's summed refill stall and prefetch hit count.
func readAheadStall(prof vtime.Profile, nprocs, segments, particles, records int,
	strat dstream.Strategy, depth int, compute float64, stripeFactor int, unit int64) (float64, int64, error) {
	fs := pfs.NewFileSystem(prof, pfs.StripedMemFactory(stripeFactor, unit))
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs}, func(n *machine.Node) error {
		d, err := distr.New(segments, nprocs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		s, err := dstream.Open(n, d, "scf", dstream.WithStrategy(strat))
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		for rec := 0; rec < records; rec++ {
			rec := rec
			c.Apply(func(g int, sg *scf.Segment) { sg.Fill(g+1000*rec, particles) })
			if err := dstream.Insert[scf.Segment](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		return s.Close()
	})
	if err != nil {
		return 0, 0, fmt.Errorf("bench: read-ahead write phase: %w", err)
	}

	mon := dsmon.New()
	_, err = machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs, Monitor: mon}, func(n *machine.Node) error {
		d, err := distr.New(segments, nprocs, distr.Block, 0)
		if err != nil {
			return err
		}
		opts := []dstream.Option{dstream.WithStrategy(strat)}
		if depth > 0 {
			opts = append(opts, dstream.WithReadAhead(depth))
		}
		s, err := dstream.OpenInput(n, d, "scf", opts...)
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		var ref scf.Segment
		for rec := 0; rec < records; rec++ {
			if err := s.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](s, c); err != nil {
				return err
			}
			var bad error
			rec := rec
			c.Apply(func(g int, sg *scf.Segment) {
				if bad != nil {
					return
				}
				ref.Fill(g+1000*rec, particles)
				if !sg.Equal(&ref) {
					bad = fmt.Errorf("record %d segment %d differs from generator", rec, g)
				}
			})
			if bad != nil {
				return bad
			}
			n.Compute(compute)
		}
		return s.Close()
	})
	if err != nil {
		return 0, 0, fmt.Errorf("bench: read-ahead input phase (depth %d): %w", depth, err)
	}
	reg := mon.Registry()
	stall := reg.Histogram("dstream_refill_stall_seconds", "", dsmon.LatencyBuckets).Sum()
	hits := reg.Counter("dstream_prefetch_hits_total", "").Value()
	return stall, hits, nil
}

// MeasureReadAhead times one grid cell with prefetching off and at the
// given depth. Verification stays on in both runs: a depth that wins by
// delivering wrong bytes is not a win, and Identical records that both
// runs passed it.
func MeasureReadAhead(prof vtime.Profile, nprocs, segments, particles, records int,
	strat dstream.Strategy, depth int, compute float64, stripeFactor int, unit int64) (ReadAheadPoint, error) {
	pt := ReadAheadPoint{
		Platform:         prof.Name,
		Strategy:         strat.String(),
		Depth:            depth,
		NProcs:           nprocs,
		Segments:         segments,
		Particles:        particles,
		Records:          records,
		StripeFactor:     stripeFactor,
		ComputePerRecord: compute,
	}
	var err error
	if pt.StallSync, _, err = readAheadStall(prof, nprocs, segments, particles, records,
		strat, 0, compute, stripeFactor, unit); err != nil {
		return pt, err
	}
	if pt.StallAhead, pt.PrefetchHits, err = readAheadStall(prof, nprocs, segments, particles, records,
		strat, depth, compute, stripeFactor, unit); err != nil {
		return pt, err
	}
	pt.Identical = true // both phases verified every segment against the generator
	return pt, nil
}

// ReadAheadSweep runs the default read-ahead ablation grid: platform ×
// strategy × prefetch depth, on a striped store with computation between
// records for the prefetched transfers to hide under. Every cell measures
// the synchronous baseline alongside, so the JSON is self-contained.
func ReadAheadSweep() ([]ReadAheadPoint, error) {
	var out []ReadAheadPoint
	for _, prof := range []vtime.Profile{vtime.Paragon(), vtime.CM5()} {
		for _, strat := range []dstream.Strategy{dstream.StrategyParallel, dstream.StrategyTwoPhase} {
			for _, depth := range []int{1, 2} {
				pt, err := MeasureReadAhead(prof, 4, 16, 64, 6, strat, depth, 0.02, 4, 16<<10)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}
