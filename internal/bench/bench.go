// Package bench is the harness that regenerates every table of the paper's
// evaluation (§4.3, Figure 5): the SCF I/O skeleton coded three ways —
// unbuffered OS primitives, manual buffering, and pC++/streams — measured as
// "an output operation followed by an input operation on a distributed data
// structure", with the d/stream unsortedRead primitive used for input.
//
// Times are deterministic virtual seconds from the platform cost models, so
// the tables reproduce the paper's shape (who wins, by what factor, where
// the cliffs fall) on any host.
package bench

import (
	"fmt"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/manualbuf"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/unbuffered"
	"pcxxstreams/internal/vtime"
)

// Variant selects which of the paper's three I/O codings to run.
type Variant uint8

const (
	// Unbuffered uses one OS call per field per segment.
	Unbuffered Variant = iota
	// ManualBuf packs per-node buffers by hand; no metadata in the file.
	ManualBuf
	// Streams uses the pC++/streams library (output, then unsortedRead).
	Streams
	// StreamsSorted uses the sorted read primitive instead of unsortedRead
	// (ablation only; the paper's tables use unsortedRead).
	StreamsSorted
)

func (v Variant) String() string {
	switch v {
	case Unbuffered:
		return "Unbuffered I/O"
	case ManualBuf:
		return "Manual Buffering"
	case Streams:
		return "pC++/streams"
	case StreamsSorted:
		return "pC++/streams (sorted read)"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Run describes one measurement.
type Run struct {
	Profile   vtime.Profile
	NProcs    int
	Segments  int
	Particles int // 0 means scf.DefaultParticles
	Variant   Variant
	Transport machine.TransportKind
	// StreamOpts tunes the Streams variants (strategy and metadata-policy
	// ablations); it is applied to both the output and the input stream.
	StreamOpts dstream.Options
	// StripeFactor, when positive, backs the run's file system with a
	// striped store of that many devices (StripeUnit bytes per cell,
	// pfs.DefaultStripeUnit when zero) instead of a flat one — the geometry
	// the two-phase strategy aggregates against.
	StripeFactor int
	StripeUnit   int64
	// FS, when non-nil, overrides the run's file system entirely (the
	// stripe fields are ignored). The planner ablation uses it to keep
	// the written image inspectable after the run, for byte-identity
	// comparison across strategies.
	FS *pfs.FileSystem
	// Verify re-checks every element after the input phase (on by default
	// in tests; adds no virtual time).
	Verify bool
	// Trace, when non-nil, records every I/O operation's virtual interval.
	Trace *trace.Recorder
	// Monitor, when non-nil, collects dsmon metrics (and, if the monitor
	// traces, spans) for the whole run.
	Monitor *dsmon.Monitor
	// Collectives selects the collective algorithm (Linear default).
	Collectives collective.Algorithm
}

// Measurement is one benchmark run's outcome: the paper's metric (virtual
// seconds) plus the operation profile that explains it.
type Measurement struct {
	Seconds      float64
	IO           pfs.IOStats
	MessagesSent int
	BytesSent    int64
}

// Seconds executes the measurement and returns the virtual makespan of the
// output-then-input sequence, excluding data-set construction.
func Seconds(r Run) (float64, error) {
	m, err := Measure(r)
	return m.Seconds, err
}

// Measure executes the measurement and returns the full profile.
func Measure(r Run) (Measurement, error) {
	particles := r.Particles
	if particles == 0 {
		particles = scf.DefaultParticles
	}
	fs := r.FS
	if fs == nil {
		fs = pfs.NewMemFS(r.Profile)
		if r.StripeFactor > 0 {
			unit := r.StripeUnit
			if unit <= 0 {
				unit = pfs.DefaultStripeUnit
			}
			fs = pfs.NewFileSystem(r.Profile, pfs.StripedMemFactory(r.StripeFactor, unit))
		}
	}
	mres, err := machine.Run(machine.Config{
		NProcs:      r.NProcs,
		Profile:     r.Profile,
		Transport:   r.Transport,
		FS:          fs,
		Trace:       r.Trace,
		Monitor:     r.Monitor,
		Collectives: r.Collectives,
	}, func(n *machine.Node) error {
		// Figure 3 declares the benchmark collection CYCLIC.
		d, err := distr.New(r.Segments, r.NProcs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, s *scf.Segment) { s.Fill(g, particles) })
		back, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		n.Clock().Reset()

		const file = "scf-particles"
		switch r.Variant {
		case Unbuffered:
			if err := unbuffered.WriteSegments(n, c, file, particles); err != nil {
				return err
			}
			if err := unbuffered.ReadSegments(n, back, file, particles); err != nil {
				return err
			}
		case ManualBuf:
			if err := manualbuf.WriteSegments(n, c, file, particles); err != nil {
				return err
			}
			if err := manualbuf.ReadSegments(n, back, file, particles); err != nil {
				return err
			}
		case Streams, StreamsSorted:
			if err := streamsWrite(n, d, c, file, r.StreamOpts); err != nil {
				return err
			}
			if err := streamsRead(n, d, back, file, r.Variant == StreamsSorted, r.StreamOpts); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bench: unknown variant %d", r.Variant)
		}

		if r.Verify {
			var bad error
			back.Apply(func(g int, s *scf.Segment) {
				var want scf.Segment
				want.Fill(g, particles)
				if !s.Equal(&want) {
					bad = fmt.Errorf("bench: verification failed at global %d", g)
				}
			})
			if bad != nil {
				return bad
			}
		}
		return nil
	})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Seconds:      mres.Elapsed,
		IO:           mres.IO,
		MessagesSent: mres.MessagesSent,
		BytesSent:    mres.BytesSent,
	}, nil
}

func streamsWrite(n *machine.Node, d *distr.Distribution, c *collection.Collection[scf.Segment], file string, opts dstream.Options) error {
	s, err := dstream.Open(n, d, file, dstream.WithOptions(opts))
	if err != nil {
		return err
	}
	if err := dstream.Insert[scf.Segment](s, c); err != nil {
		return err
	}
	if err := s.Write(); err != nil {
		return err
	}
	return s.Close()
}

func streamsRead(n *machine.Node, d *distr.Distribution, c *collection.Collection[scf.Segment], file string, sorted bool, opts dstream.Options) error {
	s, err := dstream.OpenInput(n, d, file, dstream.WithOptions(opts))
	if err != nil {
		return err
	}
	if sorted {
		err = s.Read()
	} else {
		err = s.UnsortedRead()
	}
	if err != nil {
		return err
	}
	if err := dstream.Extract[scf.Segment](s, c); err != nil {
		return err
	}
	return s.Close()
}
