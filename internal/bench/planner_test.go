package bench

import (
	"testing"

	"pcxxstreams/internal/vtime"
)

// TestPlannerGrid is the planner-vs-oracle acceptance test: the full write
// grid (the two-phase ablation's 16 cells) and the 8-cell read workload
// grid, each cell replayed under every static choice and under full-auto.
// StrategyAuto must land within PlannerTolerance of the best static choice
// on at least PlannerMinFraction of the cells, and its file image (write
// side) and extracted segments (read side) must be byte-identical in every
// cell — a planner that wins with wrong bytes fails outright.
func TestPlannerGrid(t *testing.T) {
	g, err := PlannerSweep()
	if err != nil {
		t.Fatal(err)
	}
	wm, rm := 0, 0
	for _, pt := range g.Write {
		if pt.Matched {
			wm++
		} else {
			t.Logf("write cell %s/%dp/%dB/sf%d: auto %.4fs vs best %s %.4fs (%.3fx, pick=%s)",
				pt.Platform, pt.NProcs, pt.Particles, pt.StripeFactor,
				pt.Auto, pt.BestStrategy, pt.Best, pt.AutoOverBest, pt.AutoPick)
		}
	}
	for _, pt := range g.Read {
		if pt.Matched {
			rm++
		} else {
			t.Logf("read cell %s/%dB/compute %.3fs: auto %.4fs vs best %s %.4fs (%.3fx)",
				pt.Platform, pt.Particles, pt.ComputePerRecord,
				pt.Auto, pt.BestChoice, pt.Best, pt.AutoOverBest)
		}
	}
	t.Logf("planner matched the oracle on %d/%d write and %d/%d read cells",
		wm, len(g.Write), rm, len(g.Read))
	if err := CheckPlanner(g, PlannerTolerance, PlannerMinFraction); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerModelTracksObserved: on every grid cell where the planner ran,
// its own summed cost estimates and the observed costs it was calibrated
// with must both be positive and finite — the model-vs-measured columns of
// the committed artifact are real measurements, not zero-filled fields.
func TestPlannerModelTracksObserved(t *testing.T) {
	pt, err := MeasurePlannerWrite(vtime.Paragon(), 4, 64, 8, 4, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ModelEstimate <= 0 || pt.ModelObserved <= 0 {
		t.Fatalf("planner self-accounting empty: estimate %g, observed %g", pt.ModelEstimate, pt.ModelObserved)
	}
	if pt.AutoPick == "" {
		t.Fatal("planner recorded no strategy pick")
	}
	// The closed-form model replicates the pfs cost laws, so on a cell this
	// regular the summed estimates should be the same order of magnitude as
	// the observations (calibration then absorbs the residual).
	if ratio := pt.ModelObserved / pt.ModelEstimate; ratio < 0.1 || ratio > 10 {
		t.Errorf("model estimate %.4fs vs observed %.4fs — off by more than 10x", pt.ModelEstimate, pt.ModelObserved)
	}
}

// TestCheckPlannerGate pins the gate's own semantics on synthetic grids:
// byte mismatch fails regardless of timing, a sub-threshold matched
// fraction fails, an empty grid fails, and a healthy grid passes.
func TestCheckPlannerGate(t *testing.T) {
	ok := PlannerWritePoint{Platform: "p", Auto: 1.0, Best: 1.0, Identical: true}
	slow := PlannerWritePoint{Platform: "p", Auto: 2.0, Best: 1.0, Identical: true}
	bad := PlannerWritePoint{Platform: "p", Auto: 1.0, Best: 1.0, Identical: false}

	if err := CheckPlanner(PlannerGrid{Write: []PlannerWritePoint{ok, ok}}, 0.10, 0.90); err != nil {
		t.Errorf("healthy grid failed: %v", err)
	}
	if err := CheckPlanner(PlannerGrid{Write: []PlannerWritePoint{ok, bad}}, 0.10, 0.0); err == nil {
		t.Error("byte mismatch passed the gate")
	}
	if err := CheckPlanner(PlannerGrid{Write: []PlannerWritePoint{ok, slow, slow, slow}}, 0.10, 0.90); err == nil {
		t.Error("25% matched fraction passed a 90% gate")
	}
	if err := CheckPlanner(PlannerGrid{}, 0.10, 0.90); err == nil {
		t.Error("empty grid passed the gate")
	}
}
