package bench

// The allocation benchmark: steady-state allocations per operation on the
// four hot paths the buffer-pool layer exists for — the enc round trip, the
// in-process message path, and the funnel and two-phase record flushes.
// Unlike the virtual-time tables, these numbers measure the *real* machine:
// the Go allocator traffic per operation, the quantity that turns into GC
// pressure when a d/stream program scales up. `dstream-bench -alloc` prints
// the table, `-alloc-json` emits it for CI, and `-alloc-check` diffs a fresh
// measurement against the committed BENCH_alloc_baseline.json, failing on
// >10% regression — the gate that keeps the hot path allocation-free.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// AllocCell is one row of the allocation table.
type AllocCell struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// AllocTable measures every allocation benchmark and returns the table.
func AllocTable() ([]AllocCell, error) {
	cells := []AllocCell{
		benchToCell("enc_roundtrip", benchEncRoundTrip),
		benchToCell("comm_inproc_sendrecv", benchInprocSendRecv),
		benchToCell("comm_ring_raw_sendrecv", benchRingRawSendRecv),
		benchToCell("comm_ring_bulk_sendrecv", benchRingBulkSendRecv),
	}
	funnel, err := machineCycleAllocs(dstream.StrategyFunnel)
	if err != nil {
		return nil, fmt.Errorf("bench: funnel alloc cycle: %w", err)
	}
	cells = append(cells, funnel)
	twophase, err := machineCycleAllocs(dstream.StrategyTwoPhase)
	if err != nil {
		return nil, fmt.Errorf("bench: two-phase alloc cycle: %w", err)
	}
	cells = append(cells, twophase)
	auto, err := machineCycleAllocs(dstream.StrategyAuto)
	if err != nil {
		return nil, fmt.Errorf("bench: planner alloc cycle: %w", err)
	}
	cells = append(cells, auto)
	read, err := machineReadCycleAllocs(dstream.StrategyParallel, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: parallel read alloc cycle: %w", err)
	}
	cells = append(cells, read)
	ahead, err := machineReadCycleAllocs(dstream.StrategyParallel, 2)
	if err != nil {
		return nil, fmt.Errorf("bench: read-ahead alloc cycle: %w", err)
	}
	cells = append(cells, ahead)
	autoRead, err := machineReadCycleAllocs(dstream.StrategyAuto, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: planner read alloc cycle: %w", err)
	}
	cells = append(cells, autoRead)
	chanSend, err := channelCycleAllocs(false)
	if err != nil {
		return nil, fmt.Errorf("bench: channel send alloc cycle: %w", err)
	}
	cells = append(cells, chanSend)
	chanRecv, err := channelCycleAllocs(true)
	if err != nil {
		return nil, fmt.Errorf("bench: channel recv alloc cycle: %w", err)
	}
	return append(cells, chanRecv), nil
}

func benchToCell(name string, f func(b *testing.B)) AllocCell {
	r := testing.Benchmark(f)
	return AllocCell{
		Name:        name,
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
		BytesPerOp:  float64(r.MemBytes) / float64(r.N),
	}
}

// benchEncRoundTrip is the steady-state typed encode/decode round trip: a
// reused enc.Buffer filled with a mixed-type element payload, decoded back
// with a reused enc.Reader.
func benchEncRoundTrip(b *testing.B) {
	var e enc.Buffer
	var d enc.Reader
	raw := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uint32(uint32(i))
		e.Int64(int64(i) * 3)
		e.Float64(float64(i) * 0.5)
		e.Bool(i&1 == 0)
		e.Raw(raw)
		d.Reset(e.Bytes())
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Float64()
		_ = d.Bool()
		_ = d.Raw(32)
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// benchInprocSendRecv is one 1 KiB message over the in-process transport:
// Endpoint.Send on rank 0, Endpoint.Recv on rank 1, receiver releasing the
// payload back to the pool — the per-message steady state of every
// collective operation and every funnel gather.
func benchInprocSendRecv(b *testing.B) {
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	var c0, c1 vtime.Clock
	prof := vtime.Paragon()
	ep0 := comm.NewEndpoint(0, 2, tr, &c0, prof)
	ep1 := comm.NewEndpoint(1, 2, tr, &c1, prof)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep0.Send(1, 42, payload); err != nil {
			b.Fatal(err)
		}
		d, err := ep1.Recv(0, 42)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(d)
	}
}

// benchRingRawSendRecv is the raw transport round trip the lock-free
// mailbox ring serves: one 256-byte eager-class message enqueued on the
// ring fast path and drained by the receiver's poll, payload recycled
// through the pool. No endpoint sequencing — this pins the allocation cost
// of the ring itself (slot CAS, stage, match) at zero steady state beyond
// the pooled payload copy.
func benchRingRawSendRecv(b *testing.B) {
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(comm.Message{From: 0, To: 1, Tag: 7, Data: payload}); err != nil {
			b.Fatal(err)
		}
		m, err := tr.Recv(1, 0, 7)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(m.Data)
	}
}

// benchRingBulkSendRecv is the same round trip in the rendezvous class: an
// 8 KiB payload, the size band whose full-ring behavior is blocking
// backpressure rather than an eager spill. Drained every message, the ring
// never fills, so this pins the bulk fast path — pool get/copy/put of a
// large class plus the ring hand-off.
func benchRingBulkSendRecv(b *testing.B) {
	tr := comm.NewChanTransport(2)
	defer tr.Close()
	payload := make([]byte, 8<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(comm.Message{From: 0, To: 1, Tag: 8, Data: payload}); err != nil {
			b.Fatal(err)
		}
		m, err := tr.Recv(1, 0, 8)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(m.Data)
	}
}

// allocCycleParams shapes the machine-level cycles: a 4-node machine, 64
// cyclic elements of 64 payload bytes, one insert per write.
const (
	allocNProcs   = 4
	allocElems    = 64
	allocElemSize = 64
	allocWarmup   = 8
	allocCycles   = 64
)

// machineCycleAllocs runs a 4-node machine performing steady-state
// insert+write cycles under the given strategy and returns the whole-machine
// allocations per cycle. The Go heap counters are global, so the cycle cost
// includes all four ranks' work — the number a training loop would feel.
func machineCycleAllocs(strat dstream.Strategy) (AllocCell, error) {
	name := "dstream_funnel_write"
	switch strat {
	case dstream.StrategyTwoPhase:
		name = "dstream_twophase_write"
	case dstream.StrategyAuto:
		// Full-auto: the cost-model planner picks the strategy per record.
		// Its bookkeeping must ride the cycle allocation-free.
		name = "dstream_auto_write"
	}
	allocs, bytes, err := writeCycleAllocs(vtime.Paragon(), strat)
	if err != nil {
		return AllocCell{}, err
	}
	return AllocCell{Name: name, AllocsPerOp: allocs, BytesPerOp: bytes}, nil
}

// writeCycleAllocs is the profile-parameterized core of machineCycleAllocs.
// The planner reads its cost model from the platform profile, so a test can
// hand this a profile shaped to force a particular strategy pick and compare
// the full-auto cycle against the same cycle with that pick hard-coded.
func writeCycleAllocs(prof vtime.Profile, strat dstream.Strategy) (float64, float64, error) {
	var allocs, bytes float64
	fs := pfs.NewFileSystem(prof, pfs.StripedMemFactory(allocNProcs, 1<<14))
	_, err := machine.Run(machine.Config{
		NProcs:  allocNProcs,
		Profile: prof,
		FS:      fs,
	}, func(n *machine.Node) error {
		d, err := distr.New(allocElems, allocNProcs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		s, err := dstream.Open(n, d, "alloc-bench", dstream.WithStrategy(strat))
		if err != nil {
			return err
		}
		defer s.Close()
		payload := make([]byte, allocElemSize)
		cycle := func() error {
			if err := s.InsertFunc(func(l int, e *dstream.Encoder) { e.Raw(payload) }); err != nil {
				return err
			}
			return s.Write()
		}
		for i := 0; i < allocWarmup; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		// Quiesce: all ranks idle while rank 0 snapshots the heap counters.
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		var before runtime.MemStats
		var gcPct int
		if n.Rank() == 0 {
			gcPct = debug.SetGCPercent(-1) // no GC inside the window
			runtime.ReadMemStats(&before)
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		for i := 0; i < allocCycles; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		if n.Rank() == 0 {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			debug.SetGCPercent(gcPct)
			allocs = float64(after.Mallocs-before.Mallocs) / allocCycles
			bytes = float64(after.TotalAlloc-before.TotalAlloc) / allocCycles
		}
		return nil
	})
	return allocs, bytes, err
}

// machineReadCycleAllocs is the input-side mirror of machineCycleAllocs: the
// machine first writes allocWarmup+allocCycles records, then re-opens the
// file for input and measures the steady-state read+extract cycle — with the
// prefetch pipeline off (depth 0) or on. Read-ahead recycles its buffers
// through the stream's free list, so its cycle must not out-allocate the
// synchronous path.
func machineReadCycleAllocs(strat dstream.Strategy, depth int) (AllocCell, error) {
	name := "dstream_parallel_read"
	if depth > 0 {
		name = "dstream_readahead_read"
	}
	if strat == dstream.StrategyAuto {
		// Full-auto: the planner owns both the strategy and the prefetch
		// depth, so this cell covers the planner-driven pipeline.
		name = "dstream_auto_read"
	}
	const records = allocWarmup + allocCycles
	var allocs, bytes float64
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(allocNProcs, 1<<14))
	_, err := machine.Run(machine.Config{
		NProcs:  allocNProcs,
		Profile: vtime.Paragon(),
		FS:      fs,
	}, func(n *machine.Node) error {
		d, err := distr.New(allocElems, allocNProcs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		s, err := dstream.Open(n, d, "alloc-bench-read", dstream.WithStrategy(strat))
		if err != nil {
			return err
		}
		payload := make([]byte, allocElemSize)
		for i := 0; i < records; i++ {
			if err := s.InsertFunc(func(l int, e *dstream.Encoder) { e.Raw(payload) }); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}

		opts := []dstream.Option{dstream.WithStrategy(strat)}
		if depth > 0 {
			opts = append(opts, dstream.WithReadAhead(depth))
		}
		in, err := dstream.OpenInput(n, d, "alloc-bench-read", opts...)
		if err != nil {
			return err
		}
		defer in.Close()
		cycle := func() error {
			if err := in.Read(); err != nil {
				return err
			}
			return in.ExtractFunc(func(l int, d *dstream.Decoder) { d.Raw(allocElemSize) })
		}
		for i := 0; i < allocWarmup; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		// Quiesce: all ranks idle while rank 0 snapshots the heap counters.
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		var before runtime.MemStats
		var gcPct int
		if n.Rank() == 0 {
			gcPct = debug.SetGCPercent(-1) // no GC inside the window
			runtime.ReadMemStats(&before)
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		for i := 0; i < allocCycles; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		if n.Rank() == 0 {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			debug.SetGCPercent(gcPct)
			allocs = float64(after.Mallocs-before.Mallocs) / allocCycles
			bytes = float64(after.TotalAlloc-before.TotalAlloc) / allocCycles
		}
		return nil
	})
	if err != nil {
		return AllocCell{}, err
	}
	return AllocCell{Name: name, AllocsPerOp: allocs, BytesPerOp: bytes}, nil
}

// channelCycleAllocs measures the stream-to-stream channel's steady state:
// a 4-rank machine with 2 producer and 2 consumer ranks pumping records
// through a persistent channel (block → cyclic, so every record is
// redistributed in flight), counted as whole-machine allocations per record
// hand-off like the other machine-level cells. The send cell stops the
// consumers at Read (frame arrival, validation, and retirement — the
// producer-facing steady state); the recv cell adds the full per-element
// extraction, so the pair brackets both ends of the pipeline.
func channelCycleAllocs(extract bool) (AllocCell, error) {
	name := "dstream_chan_send"
	if extract {
		name = "dstream_chan_recv"
	}
	const producers, consumers = 2, 2
	var allocs, bytes float64
	prof := vtime.Paragon()
	_, err := machine.Run(machine.Config{
		NProcs:  producers + consumers,
		Profile: prof,
		FS:      pfs.NewMemFS(prof),
	}, func(n *machine.Node) error {
		dProd, err := distr.New(allocElems, producers, distr.Block, 0)
		if err != nil {
			return err
		}
		dCons, err := distr.New(allocElems, consumers, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		var cycle func() error
		if n.Rank() < producers {
			s, err := dstream.OpenChannel(n, dProd, dCons, "alloc-chan")
			if err != nil {
				return err
			}
			defer s.Close()
			payload := make([]byte, allocElemSize)
			cycle = func() error {
				if err := s.InsertFunc(func(l int, e *dstream.Encoder) { e.Raw(payload) }); err != nil {
					return err
				}
				return s.Write()
			}
		} else {
			r, err := dstream.OpenChannelInput(n, dCons, dProd, "alloc-chan")
			if err != nil {
				return err
			}
			defer r.Close()
			cycle = func() error {
				if err := r.Read(); err != nil {
					return err
				}
				if !extract {
					return nil
				}
				return r.ExtractFunc(func(l int, d *dstream.Decoder) { d.Raw(allocElemSize) })
			}
		}
		for i := 0; i < allocWarmup; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		// Quiesce: all ranks idle while rank 0 snapshots the heap counters.
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		var before runtime.MemStats
		var gcPct int
		if n.Rank() == 0 {
			gcPct = debug.SetGCPercent(-1) // no GC inside the window
			runtime.ReadMemStats(&before)
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		for i := 0; i < allocCycles; i++ {
			if err := cycle(); err != nil {
				return err
			}
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		if n.Rank() == 0 {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			debug.SetGCPercent(gcPct)
			allocs = float64(after.Mallocs-before.Mallocs) / allocCycles
			bytes = float64(after.TotalAlloc-before.TotalAlloc) / allocCycles
		}
		return nil
	})
	if err != nil {
		return AllocCell{}, err
	}
	return AllocCell{Name: name, AllocsPerOp: allocs, BytesPerOp: bytes}, nil
}

// WriteAllocTable prints the table human-readably.
func WriteAllocTable(w io.Writer, cells []AllocCell) {
	fmt.Fprintf(w, "%-28s %14s %14s\n", "benchmark", "allocs/op", "B/op")
	for _, c := range cells {
		fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", c.Name, c.AllocsPerOp, c.BytesPerOp)
	}
}

// WriteAllocJSON emits the table as JSON (the BENCH_alloc.json artifact).
func WriteAllocJSON(w io.Writer, cells []AllocCell) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(cells)
}

// ReadAllocJSON loads a table emitted by WriteAllocJSON.
func ReadAllocJSON(path string) ([]AllocCell, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cells []AllocCell
	if err := json.Unmarshal(b, &cells); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return cells, nil
}

// CheckAllocRegression compares fresh cells against a baseline, failing on a
// >10% allocs/op or B/op regression (with one alloc / 64 bytes of absolute
// slack, so a zero baseline does not make every change a failure).
func CheckAllocRegression(fresh, baseline []AllocCell) error {
	base := make(map[string]AllocCell, len(baseline))
	for _, c := range baseline {
		base[c.Name] = c
	}
	var bad []string
	for _, c := range fresh {
		b, ok := base[c.Name]
		if !ok {
			continue // a new benchmark has no baseline yet
		}
		if limit := maxF(b.AllocsPerOp*1.10, b.AllocsPerOp+1); c.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f (+10%%)", c.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if limit := maxF(b.BytesPerOp*1.10, b.BytesPerOp+64); c.BytesPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: B/op %.1f exceeds baseline %.1f (+10%%)", c.Name, c.BytesPerOp, b.BytesPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: allocation regression:\n  %s", joinLines(bad))
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func joinLines(s []string) string {
	out := ""
	for i, l := range s {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
