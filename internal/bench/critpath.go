package bench

import (
	"fmt"
	"math"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dsmon/critpath"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// CritPathPoint is one cell of the critical-path attribution sweep: the
// read-ahead pipeline (write phase + verified read-back) run under a tracing
// monitor, with the span-graph attribution cross-checked against the
// independently-observed dstream stall histograms. The gates:
//
//   - NamedFractionMin ≥ 0.9: every rank's wall time decomposes into named
//     categories (the decomposition is exhaustive by construction — gaps are
//     compute — so this checks the analyzer stayed total).
//   - RefillSpan within 5% of RefillMetric, and (two-phase only) ShuffleSpan
//     within 5% of ShuffleMetric: the span graph and the metric histograms
//     observe the same intervals, so their sums must agree.
type CritPathPoint struct {
	Platform         string             `json:"platform"`
	Strategy         string             `json:"strategy"`
	Depth            int                `json:"depth"`
	NProcs           int                `json:"nprocs"`
	Records          int                `json:"records"`
	Makespan         float64            `json:"makespan_seconds"`
	Spans            int                `json:"spans"`
	Flows            int                `json:"flows"`
	NamedFractionMin float64            `json:"named_fraction_min"`
	RefillSpan       float64            `json:"refill_span_seconds"`
	RefillMetric     float64            `json:"refill_metric_seconds"`
	ShuffleSpan      float64            `json:"shuffle_span_seconds"`
	ShuffleMetric    float64            `json:"shuffle_metric_seconds"`
	Categories       map[string]float64 `json:"category_seconds"`
}

// agrees reports |a-b| ≤ 5% of max(|a|,|b|) (both-zero agrees).
func agrees(a, b float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return true
	}
	return math.Abs(a-b) <= 0.05*m
}

// Pass applies the cell's acceptance gates.
func (pt CritPathPoint) Pass() bool {
	if pt.NamedFractionMin < 0.9 {
		return false
	}
	if !agrees(pt.RefillSpan, pt.RefillMetric) {
		return false
	}
	return agrees(pt.ShuffleSpan, pt.ShuffleMetric)
}

// MeasureCritPath runs one traced write+read pipeline cell and analyzes its
// span graph. The whole pipeline runs inside a single machine run so the
// write-side shuffle stalls and the read-side refill stalls land on one
// causal timeline.
func MeasureCritPath(prof vtime.Profile, nprocs, segments, particles, records int,
	strat dstream.Strategy, depth int, compute float64, stripeFactor int, unit int64) (CritPathPoint, *critpath.Report, error) {
	pt := CritPathPoint{
		Platform: prof.Name,
		Strategy: strat.String(),
		Depth:    depth,
		NProcs:   nprocs,
		Records:  records,
	}
	fs := pfs.NewFileSystem(prof, pfs.StripedMemFactory(stripeFactor, unit))
	mon := dsmon.NewTracing()
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs, Monitor: mon}, func(n *machine.Node) error {
		dw, err := distr.New(segments, nprocs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		out, err := dstream.Open(n, dw, "scf", dstream.WithStrategy(strat))
		if err != nil {
			return err
		}
		cw, err := collection.New[scf.Segment](n, dw)
		if err != nil {
			return err
		}
		for rec := 0; rec < records; rec++ {
			rec := rec
			cw.Apply(func(g int, sg *scf.Segment) { sg.Fill(g+1000*rec, particles) })
			if err := dstream.Insert[scf.Segment](out, cw); err != nil {
				return err
			}
			if err := out.Write(); err != nil {
				return err
			}
		}
		if err := out.Close(); err != nil {
			return err
		}

		dr, err := distr.New(segments, nprocs, distr.Block, 0)
		if err != nil {
			return err
		}
		opts := []dstream.Option{dstream.WithStrategy(strat)}
		if depth > 0 {
			opts = append(opts, dstream.WithReadAhead(depth))
		}
		in, err := dstream.OpenInput(n, dr, "scf", opts...)
		if err != nil {
			return err
		}
		defer in.Close()
		cr, err := collection.New[scf.Segment](n, dr)
		if err != nil {
			return err
		}
		var ref scf.Segment
		for rec := 0; rec < records; rec++ {
			if err := in.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](in, cr); err != nil {
				return err
			}
			var bad error
			rec := rec
			cr.Apply(func(g int, sg *scf.Segment) {
				if bad != nil {
					return
				}
				ref.Fill(g+1000*rec, particles)
				if !sg.Equal(&ref) {
					bad = fmt.Errorf("record %d segment %d differs from generator", rec, g)
				}
			})
			if bad != nil {
				return bad
			}
			n.Compute(compute)
		}
		return in.Close()
	})
	if err != nil {
		return pt, nil, fmt.Errorf("bench: critpath cell: %w", err)
	}

	rep := critpath.Analyze(mon.Recorder())
	rep.Publish(mon.Registry())
	pt.Makespan = rep.Makespan
	pt.Spans = rep.Spans
	pt.Flows = rep.Flows
	pt.NamedFractionMin = 1
	pt.Categories = map[string]float64{}
	for _, b := range rep.Ranks {
		if f := b.Named(); f < pt.NamedFractionMin {
			pt.NamedFractionMin = f
		}
		for c, v := range b.Seconds {
			pt.Categories[c] += v
		}
	}
	pt.RefillSpan = rep.Stalls[critpath.CatRefill]
	pt.ShuffleSpan = rep.Stalls[critpath.CatShuffle]
	reg := mon.Registry()
	pt.RefillMetric = reg.Histogram("dstream_refill_stall_seconds", "", dsmon.LatencyBuckets).Sum()
	pt.ShuffleMetric = reg.Histogram("dstream_twophase_shuffle_stall_seconds", "", dsmon.LatencyBuckets).Sum()
	return pt, rep, nil
}

// CritPathSweep runs the attribution sweep over the read-ahead grid's
// platforms and strategies, at prefetch depth 0 and 2, so the cells show the
// stall attribution shifting as read-ahead hides the pfs wait.
func CritPathSweep() ([]CritPathPoint, error) {
	var out []CritPathPoint
	for _, prof := range []vtime.Profile{vtime.Paragon(), vtime.CM5()} {
		for _, strat := range []dstream.Strategy{dstream.StrategyParallel, dstream.StrategyTwoPhase} {
			for _, depth := range []int{0, 2} {
				pt, _, err := MeasureCritPath(prof, 4, 16, 64, 6, strat, depth, 0.02, 4, 16<<10)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}
