package bench

import (
	"bytes"
	"fmt"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// The planner-vs-oracle grid: every cell of the two-phase write ablation
// and a read-side workload grid is replayed once per static choice and
// once under full-auto (the cost-model planner), and the planner's cycle
// time is compared against the best static choice the oracle found. The
// gate — planner within PlannerTolerance of the oracle on at least
// PlannerMinFraction of all cells, byte identity in every cell — is what
// makes StrategyAuto's new meaning safe to ship: the model may mis-rank
// near-ties, but it must never buy its choices with wrong bytes and must
// never be left badly behind by a static configuration someone could have
// written by hand.

const (
	// PlannerTolerance is how far above the best static cycle time a
	// cell's auto run may land and still count as matched.
	PlannerTolerance = 0.10
	// PlannerMinFraction is the fraction of grid cells that must match.
	PlannerMinFraction = 0.90
)

// PlannerWritePoint is one write-grid cell: the full SCF write+read cycle
// timed under each static strategy and under the planner, on one
// (platform, nodes, element size, stripe geometry) configuration.
type PlannerWritePoint struct {
	Platform     string  `json:"platform"`
	NProcs       int     `json:"nprocs"`
	Segments     int     `json:"segments"`
	Particles    int     `json:"particles"`
	StripeFactor int     `json:"stripe_factor"`
	StripeUnit   int64   `json:"stripe_unit"`
	Funnel       float64 `json:"funnel_seconds"`
	Parallel     float64 `json:"parallel_seconds"`
	TwoPhase     float64 `json:"twophase_seconds"`
	Auto         float64 `json:"auto_seconds"`
	// Best is the oracle: the cheapest static strategy's cycle time.
	Best         float64 `json:"best_static_seconds"`
	BestStrategy string  `json:"best_static_strategy"`
	// AutoOverBest is Auto/Best — ≤ 1+PlannerTolerance counts as matched.
	AutoOverBest float64 `json:"auto_over_best"`
	Matched      bool    `json:"matched"`
	// Identical reports the auto run's file image was byte-identical to
	// the best static run's.
	Identical bool `json:"identical"`
	// The planner's own account of the cell: which strategy it settled
	// on, its summed cost estimates, and the summed observed costs — the
	// model-vs-measured comparison EXPERIMENTS.md tabulates.
	AutoPick      string  `json:"auto_pick"`
	ModelEstimate float64 `json:"model_estimate_seconds"`
	ModelObserved float64 `json:"model_observed_seconds"`
}

// PlannerReadPoint is one read-grid cell: a multi-record input pipeline
// timed under every static (strategy × depth) pair and under the planner,
// on one (platform, element size, compute gap) workload.
type PlannerReadPoint struct {
	Platform         string  `json:"platform"`
	NProcs           int     `json:"nprocs"`
	Segments         int     `json:"segments"`
	Particles        int     `json:"particles"`
	Records          int     `json:"records"`
	StripeFactor     int     `json:"stripe_factor"`
	ComputePerRecord float64 `json:"compute_per_record_seconds"`
	// Static candidates: strategy × prefetch depth {0, 2}.
	ParallelSync  float64 `json:"parallel_sync_seconds"`
	ParallelAhead float64 `json:"parallel_ahead_seconds"`
	TwoPhaseSync  float64 `json:"twophase_sync_seconds"`
	TwoPhaseAhead float64 `json:"twophase_ahead_seconds"`
	Auto          float64 `json:"auto_seconds"`
	Best          float64 `json:"best_static_seconds"`
	BestChoice    string  `json:"best_static_choice"`
	AutoOverBest  float64 `json:"auto_over_best"`
	Matched       bool    `json:"matched"`
	// Identical reports every auto-read segment matched the generator
	// byte-for-byte (checked in-loop; a planner that wins with wrong
	// bytes fails the cell, not the tolerance).
	Identical     bool    `json:"identical"`
	ModelEstimate float64 `json:"model_estimate_seconds"`
	ModelObserved float64 `json:"model_observed_seconds"`
}

// PlannerGrid is the committed artifact (BENCH_planner.json).
type PlannerGrid struct {
	Write []PlannerWritePoint `json:"write"`
	Read  []PlannerReadPoint  `json:"read"`
}

// planScrape pulls the planner's self-accounting out of a run's monitor.
func planScrape(mon *dsmon.Monitor) (pick string, est, obs float64) {
	reg := mon.Registry()
	var most int64
	for _, s := range []string{"funnel", "parallel", "twophase"} {
		if v := reg.Counter("dstream_plan_records_total", "", "strategy", s).Value(); v > most {
			most, pick = v, s
		}
	}
	est = reg.Histogram("dstream_plan_estimate_seconds", "", dsmon.LatencyBuckets).Sum()
	obs = reg.Histogram("dstream_plan_observed_seconds", "", dsmon.LatencyBuckets).Sum()
	return pick, est, obs
}

// cycleWithImage runs one SCF cycle and returns its virtual seconds plus
// the file image it wrote.
func cycleWithImage(prof vtime.Profile, nprocs, segments, particles, stripe int, unit int64,
	opts dstream.Options, mon *dsmon.Monitor) (float64, []byte, error) {
	fs := pfs.NewFileSystem(prof, pfs.StripedMemFactory(stripe, unit))
	sec, err := Seconds(Run{
		Profile:    prof,
		NProcs:     nprocs,
		Segments:   segments,
		Particles:  particles,
		Variant:    Streams,
		StreamOpts: opts,
		FS:         fs,
		Verify:     true,
		Monitor:    mon,
	})
	if err != nil {
		return 0, nil, err
	}
	img, err := fs.Image("scf-particles")
	if err != nil {
		return 0, nil, fmt.Errorf("bench: snapshot image: %w", err)
	}
	return sec, img, nil
}

// MeasurePlannerWrite times one write-grid cell: three static strategies
// plus full auto, byte identity enforced against the best static image.
func MeasurePlannerWrite(prof vtime.Profile, nprocs, segments, particles, stripe int, unit int64) (PlannerWritePoint, error) {
	pt := PlannerWritePoint{
		Platform:     prof.Name,
		NProcs:       nprocs,
		Segments:     segments,
		Particles:    particles,
		StripeFactor: stripe,
		StripeUnit:   unit,
	}
	type cand struct {
		strat dstream.Strategy
		sec   *float64
	}
	cands := []cand{
		{dstream.StrategyFunnel, &pt.Funnel},
		{dstream.StrategyParallel, &pt.Parallel},
		{dstream.StrategyTwoPhase, &pt.TwoPhase},
	}
	images := make([][]byte, len(cands))
	for i, c := range cands {
		sec, img, err := cycleWithImage(prof, nprocs, segments, particles, stripe, unit,
			dstream.Options{Strategy: c.strat}, nil)
		if err != nil {
			return pt, fmt.Errorf("bench: planner cell %s/%v: %w", prof.Name, c.strat, err)
		}
		*c.sec, images[i] = sec, img
	}
	mon := dsmon.New()
	autoSec, autoImg, err := cycleWithImage(prof, nprocs, segments, particles, stripe, unit,
		dstream.Options{}, mon)
	if err != nil {
		return pt, fmt.Errorf("bench: planner cell %s/auto: %w", prof.Name, err)
	}
	pt.Auto = autoSec
	pt.AutoPick, pt.ModelEstimate, pt.ModelObserved = planScrape(mon)

	pt.Best, pt.BestStrategy = pt.Funnel, cands[0].strat.String()
	bestImg := images[0]
	for i, c := range cands[1:] {
		if *c.sec < pt.Best {
			pt.Best, pt.BestStrategy, bestImg = *c.sec, c.strat.String(), images[i+1]
		}
	}
	pt.AutoOverBest = pt.Auto / pt.Best
	pt.Matched = pt.Auto <= pt.Best*(1+PlannerTolerance)
	pt.Identical = bytes.Equal(autoImg, bestImg)
	return pt, nil
}

// plannerReadCycle writes `records` records (cyclic layout, explicit
// parallel strategy — the write side is held constant so only the read
// plan varies), then times the block-layout read-back with `compute`
// virtual seconds between records, verifying every segment against the
// generator. auto=false uses the explicit (strategy, depth) pair.
func plannerReadCycle(prof vtime.Profile, nprocs, segments, particles, records int,
	compute float64, stripe int, unit int64,
	auto bool, strat dstream.Strategy, depth int, mon *dsmon.Monitor) (float64, error) {
	fs := pfs.NewFileSystem(prof, pfs.StripedMemFactory(stripe, unit))
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs}, func(n *machine.Node) error {
		d, err := distr.New(segments, nprocs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		s, err := dstream.Open(n, d, "scf", dstream.WithStrategy(dstream.StrategyParallel))
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		for rec := 0; rec < records; rec++ {
			rec := rec
			c.Apply(func(g int, sg *scf.Segment) { sg.Fill(g+1000*rec, particles) })
			if err := dstream.Insert[scf.Segment](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		return s.Close()
	})
	if err != nil {
		return 0, fmt.Errorf("bench: planner read grid write phase: %w", err)
	}

	mres, err := machine.Run(machine.Config{NProcs: nprocs, Profile: prof, FS: fs, Monitor: mon}, func(n *machine.Node) error {
		d, err := distr.New(segments, nprocs, distr.Block, 0)
		if err != nil {
			return err
		}
		var opts []dstream.Option
		if !auto {
			opts = append(opts, dstream.WithStrategy(strat))
			if depth > 0 {
				opts = append(opts, dstream.WithReadAhead(depth))
			}
		}
		s, err := dstream.OpenInput(n, d, "scf", opts...)
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		var ref scf.Segment
		for rec := 0; rec < records; rec++ {
			if err := s.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](s, c); err != nil {
				return err
			}
			var bad error
			rec := rec
			c.Apply(func(g int, sg *scf.Segment) {
				if bad != nil {
					return
				}
				ref.Fill(g+1000*rec, particles)
				if !sg.Equal(&ref) {
					bad = fmt.Errorf("record %d segment %d differs from generator", rec, g)
				}
			})
			if bad != nil {
				return bad
			}
			n.Compute(compute)
		}
		return s.Close()
	})
	if err != nil {
		return 0, fmt.Errorf("bench: planner read grid input phase: %w", err)
	}
	return mres.Elapsed, nil
}

// MeasurePlannerRead times one read-grid cell: four static (strategy ×
// depth) pairs plus full auto.
func MeasurePlannerRead(prof vtime.Profile, nprocs, segments, particles, records int,
	compute float64, stripe int, unit int64) (PlannerReadPoint, error) {
	pt := PlannerReadPoint{
		Platform:         prof.Name,
		NProcs:           nprocs,
		Segments:         segments,
		Particles:        particles,
		Records:          records,
		StripeFactor:     stripe,
		ComputePerRecord: compute,
	}
	type cand struct {
		name  string
		strat dstream.Strategy
		depth int
		sec   *float64
	}
	cands := []cand{
		{"parallel/sync", dstream.StrategyParallel, 0, &pt.ParallelSync},
		{"parallel/ahead2", dstream.StrategyParallel, 2, &pt.ParallelAhead},
		{"twophase/sync", dstream.StrategyTwoPhase, 0, &pt.TwoPhaseSync},
		{"twophase/ahead2", dstream.StrategyTwoPhase, 2, &pt.TwoPhaseAhead},
	}
	for _, c := range cands {
		sec, err := plannerReadCycle(prof, nprocs, segments, particles, records,
			compute, stripe, unit, false, c.strat, c.depth, nil)
		if err != nil {
			return pt, fmt.Errorf("bench: planner read cell %s/%s: %w", prof.Name, c.name, err)
		}
		*c.sec = sec
	}
	mon := dsmon.New()
	autoSec, err := plannerReadCycle(prof, nprocs, segments, particles, records,
		compute, stripe, unit, true, dstream.StrategyAuto, 0, mon)
	if err != nil {
		return pt, fmt.Errorf("bench: planner read cell %s/auto: %w", prof.Name, err)
	}
	pt.Auto = autoSec
	_, pt.ModelEstimate, pt.ModelObserved = planScrape(mon)

	pt.Best, pt.BestChoice = *cands[0].sec, cands[0].name
	for _, c := range cands[1:] {
		if *c.sec < pt.Best {
			pt.Best, pt.BestChoice = *c.sec, c.name
		}
	}
	pt.AutoOverBest = pt.Auto / pt.Best
	pt.Matched = pt.Auto <= pt.Best*(1+PlannerTolerance)
	pt.Identical = true // the read loop verified every segment in every run
	return pt, nil
}

// PlannerSweep replays the full grid: the 16 write cells of the two-phase
// ablation plus 8 read workload cells (platform × element size × compute
// gap), each scored against its static oracle.
func PlannerSweep() (PlannerGrid, error) {
	var g PlannerGrid
	for _, prof := range []vtime.Profile{vtime.Paragon(), vtime.CM5()} {
		for _, nprocs := range []int{4, 16} {
			for _, particles := range []int{8, 128} {
				for _, stripe := range []int{1, 4} {
					pt, err := MeasurePlannerWrite(prof, nprocs, 16*nprocs, particles, stripe, 64<<10)
					if err != nil {
						return g, err
					}
					g.Write = append(g.Write, pt)
				}
			}
		}
		for _, particles := range []int{8, 64} {
			for _, compute := range []float64{0, 0.02} {
				pt, err := MeasurePlannerRead(prof, 4, 16, particles, 6, compute, 4, 16<<10)
				if err != nil {
					return g, err
				}
				g.Read = append(g.Read, pt)
			}
		}
	}
	return g, nil
}

// CheckPlanner is the regression gate over a planner grid: byte identity
// in every cell, and the matched fraction at or above min (the ≥90%
// within-10% acceptance bar when called with the package constants).
func CheckPlanner(g PlannerGrid, tol, min float64) error {
	cells, matched := 0, 0
	for _, pt := range g.Write {
		if !pt.Identical {
			return fmt.Errorf("bench: planner write cell %s/%dp/%dB/sf%d: auto image differs from %s image",
				pt.Platform, pt.NProcs, pt.Particles, pt.StripeFactor, pt.BestStrategy)
		}
		cells++
		if pt.Auto <= pt.Best*(1+tol) {
			matched++
		}
	}
	for _, pt := range g.Read {
		if !pt.Identical {
			return fmt.Errorf("bench: planner read cell %s/%dB/%.3fs: segments differ from generator",
				pt.Platform, pt.Particles, pt.ComputePerRecord)
		}
		cells++
		if pt.Auto <= pt.Best*(1+tol) {
			matched++
		}
	}
	if cells == 0 {
		return fmt.Errorf("bench: planner grid is empty")
	}
	if frac := float64(matched) / float64(cells); frac < min {
		return fmt.Errorf("bench: planner matched the static oracle on %d/%d cells (%.0f%%), need ≥%.0f%%",
			matched, cells, 100*frac, 100*min)
	}
	return nil
}
