// Package session is the session-scoped entry point of the d/stream API:
// one handle through which streams are opened, whether the storage is the
// process-local simulated file system (the embedded-library path every
// program used before dstreamd existed) or a tenant namespace inside a
// remote dstreamd daemon.
//
// The two paths share every code path above the pfs.Backend seam — the same
// functional options, the same collective strategies, the same resilience
// machinery — so a program moves from embedded to daemon-backed storage by
// changing one line:
//
//	sess := session.Local()                          // embedded (default)
//	sess, err := session.Connect(addr, "tenant-a")   // remote dstreamd
//
//	s, err := sess.Open(node, d, "particles", dstream.WithAsync())
//
// Remote sessions should run the machine through Session.Run (or set
// machine.Config.FS to Session.FS themselves): the machine aborts its
// configured file system when a node fails, and only a file system the
// machine knows about gets that abort — otherwise surviving ranks could
// block forever in a collective-open rendezvous against the daemon.
package session

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/server"
	"pcxxstreams/internal/vtime"
)

// Session scopes stream opens to one storage domain. The zero-value-like
// local session (Local) opens on the machine's own file system; a connected
// session (Connect) opens in a dstreamd tenant namespace. Sessions are safe
// for concurrent use by all ranks of a machine run.
type Session struct {
	client *server.Client

	mu sync.Mutex
	fs *pfs.FileSystem
}

// local is the embedded session: no daemon, no private file system.
var local = &Session{}

// Local returns the process-local session: streams open on the machine's
// own file system (machine.Config.FS), exactly as before sessions existed.
func Local() *Session { return local }

// defaultSession is what the façade's package-level Open/OpenInput route
// through; Local unless SetDefault pointed it elsewhere.
var defaultSession atomic.Pointer[Session]

// Default returns the session package-level opens route through.
func Default() *Session {
	if s := defaultSession.Load(); s != nil {
		return s
	}
	return local
}

// SetDefault points the package-level one-line API at sess (nil restores
// Local), so an existing embedded program becomes daemon-backed without
// touching its open sites. Returns the previous default.
func SetDefault(sess *Session) *Session {
	prev := defaultSession.Swap(sess)
	if prev == nil {
		return local
	}
	return prev
}

// Connect opens a session with the dstreamd daemon at addr, authenticating
// into the named tenant. The connection transparently reconnects and
// resumes the server-side session after transient network failures;
// exhausted reconnect budgets surface as clean errors on every stream
// operation in flight.
func Connect(addr, tenant string) (*Session, error) {
	return ConnectConfig(addr, server.ClientConfig{Tenant: tenant})
}

// ConnectConfig is Connect with explicit client tuning (reconnect budget,
// session resume token).
func ConnectConfig(addr string, cfg server.ClientConfig) (*Session, error) {
	cli, err := server.Dial(addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("session: connect %s: %w", addr, err)
	}
	return &Session{client: cli}, nil
}

// Remote reports whether the session is backed by a daemon.
func (s *Session) Remote() bool { return s.client != nil }

// Close ends the session. For a remote session this says goodbye to the
// daemon (freeing its admission slot immediately) and fails any in-flight
// operations with a clean error; the local session is a no-op. Idempotent.
func (s *Session) Close() error {
	if s.client == nil {
		return nil
	}
	return s.client.Close()
}

// Usage reports the tenant's reserved bytes and configured quota. The local
// session reports zeros (no quota regime).
func (s *Session) Usage() (used, quota int64, err error) {
	if s.client == nil {
		return 0, 0, nil
	}
	return s.client.Usage()
}

// Token returns the daemon-granted resume token ("" for local sessions);
// pass it through ClientConfig.Token to resume the session from a new
// process within the daemon's grace window.
func (s *Session) Token() string {
	if s.client == nil {
		return ""
	}
	return s.client.Token()
}

// FS returns the session's file system under the given cost profile,
// building it on first use: a remote session's storage lives in the daemon
// (every file a pfs.Backend speaking the wire protocol), while the local
// session has none of its own (returns nil — the machine's file system is
// already the right one). One file system is built per session; the first
// caller's profile wins, which is harmless because all ranks of a run share
// one profile.
func (s *Session) FS(prof vtime.Profile) *pfs.FileSystem {
	if s.client == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fs == nil {
		s.fs = pfs.NewFileSystem(prof, s.client.Factory())
	}
	return s.fs
}

// Run executes body on a machine wired to the session: for remote sessions
// the session's file system becomes the machine's (machine.Config.FS), so
// node.Open, dstream opens, and — critically — the machine's failure abort
// all act on the daemon-backed storage. Local sessions run unchanged.
func (s *Session) Run(cfg machine.Config, body func(*machine.Node) error) (machine.Result, error) {
	if s.client != nil {
		if cfg.FS != nil {
			return machine.Result{}, fmt.Errorf("session: Run with both a remote session and an explicit machine.Config.FS")
		}
		cfg.FS = s.FS(cfg.Profile)
	}
	return machine.Run(cfg, body)
}

// Open opens an output d/stream in the session's storage domain, with the
// same functional options as the embedded API. Collective: every rank of
// the machine must make the matching call on the same session.
func (s *Session) Open(node *machine.Node, d *distr.Distribution, name string, opts ...dstream.Option) (*dstream.OStream, error) {
	return dstream.Open(node, d, name, s.withFS(node, opts)...)
}

// OpenInput opens an input d/stream in the session's storage domain.
func (s *Session) OpenInput(node *machine.Node, d *distr.Distribution, name string, opts ...dstream.Option) (*dstream.IStream, error) {
	return dstream.OpenInput(node, d, name, s.withFS(node, opts)...)
}

// OpenChannel opens the sending end of a stream-to-stream channel. Channels
// move records over the interconnect and never touch storage, so embedded
// and daemon-backed sessions behave identically — no file-system option is
// injected (a channel open would reject one).
func (s *Session) OpenChannel(node *machine.Node, mine, peer *distr.Distribution, name string, opts ...dstream.Option) (*dstream.OChannel, error) {
	return dstream.OpenChannel(node, mine, peer, name, opts...)
}

// OpenChannelInput opens the receiving end of a stream-to-stream channel.
func (s *Session) OpenChannelInput(node *machine.Node, mine, peer *distr.Distribution, name string, opts ...dstream.Option) (*dstream.IChannel, error) {
	return dstream.OpenChannelInput(node, mine, peer, name, opts...)
}

// withFS appends the session's file-system option after the caller's, so it
// wins over a stray WithOptions carrying a stale FS. When the machine is
// already running on the session's file system (Session.Run), the option is
// redundant but harmless — it names the same *pfs.FileSystem.
func (s *Session) withFS(node *machine.Node, opts []dstream.Option) []dstream.Option {
	if s.client == nil {
		return opts
	}
	fs := s.FS(node.Profile())
	out := make([]dstream.Option, 0, len(opts)+1)
	out = append(out, opts...)
	return append(out, dstream.WithFileSystem(fs))
}
