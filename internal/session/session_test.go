package session_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/server"
	"pcxxstreams/internal/session"
	"pcxxstreams/internal/vtime"
)

const (
	nprocs    = 4
	nelems    = 32
	particles = 8
)

// tenantRun writes a tenant-seeded collection through a remote session and
// reads it back, returning an error on any mismatch. Every tenant uses the
// SAME file name, so byte-identity doubles as a cross-tenant isolation
// check: leaking another tenant's bytes cannot reproduce this tenant's
// seeded fill.
func tenantRun(addr, tenant string, seed int, opts ...dstream.Option) error {
	sess, err := session.Connect(addr, tenant)
	if err != nil {
		return err
	}
	defer sess.Close()
	_, err = sess.Run(machine.Config{NProcs: nprocs, Profile: vtime.Paragon()}, func(n *machine.Node) error {
		d, err := distr.New(nelems, nprocs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, s *scf.Segment) { s.Fill(g+seed, particles) })
		s, err := sess.Open(n, d, "data", opts...)
		if err != nil {
			return err
		}
		if err := dstream.Insert[scf.Segment](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		in, err := sess.OpenInput(n, d, "data")
		if err != nil {
			return err
		}
		defer in.Close()
		got, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil {
			return err
		}
		if err := dstream.Extract[scf.Segment](in, got); err != nil {
			return err
		}
		var mismatch error
		got.Apply(func(g int, have *scf.Segment) {
			var want scf.Segment
			want.Fill(g+seed, particles)
			if !have.Equal(&want) && mismatch == nil {
				mismatch = fmt.Errorf("tenant %s: element %d differs from its seeded fill", tenant, g)
			}
		})
		return mismatch
	})
	return err
}

// TestConcurrentTenantsByteIdentical is the tentpole acceptance test: two
// independent tenant sessions concurrently write and read streams through
// one running dstreamd, each seeing exactly its own bytes, with per-tenant
// metrics visible on the daemon's monitor.
func TestConcurrentTenantsByteIdentical(t *testing.T) {
	mon := dsmon.New()
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Tenants: []server.Tenant{{Name: "tenant-a"}, {Name: "tenant-b"}},
		Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i, tenant := range []string{"tenant-a", "tenant-b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tenantRun(srv.Addr(), tenant, 1000*(i+1),
				dstream.WithStrategy(dstream.StrategyTwoPhase)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var sb strings.Builder
	if err := mon.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dstreamd_requests_total{tenant="tenant-a"}`,
		`dstreamd_requests_total{tenant="tenant-b"}`,
		`dstreamd_bytes_in_total{tenant="tenant-a"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("daemon metrics missing %s", want)
		}
	}
}

// TestQuotaCleanError: a stream whose writes breach the tenant quota fails
// with a clean error on every rank — the run terminates, never hangs.
func TestQuotaCleanError(t *testing.T) {
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Tenants: []server.Tenant{{Name: "small", QuotaBytes: 4 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		// The seeded fill writes far more than 4 KiB.
		done <- tenantRun(srv.Addr(), "small", 7)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("over-quota stream run succeeded")
		}
		if !errors.Is(err, server.ErrQuota) && !errors.Is(err, dstream.ErrIO) {
			t.Fatalf("over-quota run = %v, want ErrQuota (or ErrIO wrapping it)", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("over-quota stream run hung instead of failing cleanly")
	}
}

// TestReconnectMidRun cuts every daemon connection in the middle of a
// stream run; the session resumes and the run completes byte-identically.
func TestReconnectMidRun(t *testing.T) {
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Tenants: []server.Tenant{{Name: "a", MaxSessions: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var chopper sync.WaitGroup
	chopper.Add(1)
	go func() {
		defer chopper.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				srv.KillConnections()
			}
		}
	}()
	err = tenantRun(srv.Addr(), "a", 42)
	close(stop)
	chopper.Wait()
	if err != nil {
		t.Fatalf("run under connection chopping failed: %v", err)
	}
	if got := srv.SessionCount("a"); got > 1 {
		t.Fatalf("SessionCount = %d after reconnects, want ≤1 (resume, not re-admit)", got)
	}
}

// TestLocalSessionUnchanged: the local session is the embedded path — no
// daemon, the machine's own file system, same bytes as ever.
func TestLocalSessionUnchanged(t *testing.T) {
	sess := session.Local()
	if sess.Remote() {
		t.Fatal("Local session claims to be remote")
	}
	if used, quota, err := sess.Usage(); used != 0 || quota != 0 || err != nil {
		t.Fatalf("Local Usage = %d/%d, %v", used, quota, err)
	}
	_, err := sess.Run(machine.Config{NProcs: 2, Profile: vtime.CM5()}, func(n *machine.Node) error {
		d, err := distr.New(8, 2, distr.Block, 0)
		if err != nil {
			return err
		}
		s, err := sess.Open(n, d, "f")
		if err != nil {
			return err
		}
		if err := s.InsertFunc(func(l int, e *dstream.Encoder) { e.Int64(int64(l)) }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDefaultSession: SetDefault swaps the session the one-line API routes
// through and returns the previous one; nil restores Local.
func TestDefaultSession(t *testing.T) {
	if session.Default() != session.Local() {
		t.Fatal("default session is not Local at start")
	}
	srv, err := server.Start("127.0.0.1:0", server.Config{Tenants: []server.Tenant{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := session.Connect(srv.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	prev := session.SetDefault(remote)
	if prev != session.Local() {
		t.Fatal("SetDefault did not return the previous (local) session")
	}
	if session.Default() != remote {
		t.Fatal("Default() does not reflect SetDefault")
	}
	if prev := session.SetDefault(nil); prev != remote {
		t.Fatal("SetDefault(nil) did not return the remote session")
	}
	if session.Default() != session.Local() {
		t.Fatal("SetDefault(nil) did not restore Local")
	}
}

// TestRunRejectsConflictingFS: a remote session refuses a machine config
// that already pins a different file system — the ambiguity would silently
// split storage between two domains.
func TestRunRejectsConflictingFS(t *testing.T) {
	srv, err := server.Start("127.0.0.1:0", server.Config{Tenants: []server.Tenant{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sess, err := session.Connect(srv.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, err = sess.Run(machine.Config{NProcs: 1, Profile: vtime.CM5(), FS: pfs.NewMemFS(vtime.CM5())}, func(n *machine.Node) error { return nil })
	if err == nil {
		t.Fatal("Run accepted a conflicting explicit FS")
	}
}
