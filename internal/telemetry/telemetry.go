// Package telemetry serves a machine run's live observability surface over
// HTTP. Endpoints:
//
//	/healthz     liveness probe ("ok")
//	/metrics     Prometheus text exposition of the monitor's registry
//	/trace       Chrome trace-event JSON (load in chrome://tracing or Perfetto)
//	/critpath    critical-path attribution report (text; ?format=json)
//	/debug/vars  JSON snapshot of runtime stats plus all metrics
//
// All endpoints are safe to hit mid-run: expositions take consistent deep
// snapshots under the registry and recorder locks, so a scrape races with
// rank goroutines without torn reads.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dsmon/critpath"
)

// Server is a live telemetry endpoint bound to one primary monitor, plus
// any number of attached registries (see Attach): one /metrics page covers
// them all, each attached registry's samples stamped with a registry label.
type Server struct {
	mon *dsmon.Monitor
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	closed   bool
	attached []attachment
}

// attachment is one extra registry exposed under a registry="<name>" label.
type attachment struct {
	name string
	mon  *dsmon.Monitor
}

// Attach adds another monitor's registry to the /metrics and /debug/vars
// expositions. Its samples are stamped with a registry="<name>" label, so a
// multi-tenant daemon serves every tenant's metrics from one port instead of
// one server per registry. Attaching the same name again replaces the
// earlier registry; safe to call while the server is serving.
func (s *Server) Attach(name string, mon *dsmon.Monitor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.attached {
		if a.name == name {
			s.attached[i].mon = mon
			return
		}
	}
	s.attached = append(s.attached, attachment{name: name, mon: mon})
}

// Detach removes a previously attached registry. Unknown names are no-ops.
func (s *Server) Detach(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.attached {
		if a.name == name {
			s.attached = append(s.attached[:i], s.attached[i+1:]...)
			return
		}
	}
}

// registries snapshots the exposition set: the primary registry unlabeled,
// attached registries under their registry label.
func (s *Server) registries() []dsmon.LabeledRegistry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]dsmon.LabeledRegistry, 0, 1+len(s.attached))
	out = append(out, dsmon.LabeledRegistry{Reg: s.mon.Registry()})
	for _, a := range s.attached {
		out = append(out, dsmon.LabeledRegistry{Reg: a.mon.Registry(), Labels: []string{"registry", a.name}})
	}
	return out
}

// Serve starts an HTTP server on addr (":0" picks a free port) exposing
// mon's metrics and trace. It returns once the listener is bound; requests
// are served on a background goroutine until Close.
func Serve(addr string, mon *dsmon.Monitor) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{mon: mon, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/trace", s.trace)
	mux.HandleFunc("/critpath", s.critpath)
	mux.HandleFunc("/debug/vars", s.vars)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.srv.Close()
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	regs := s.registries()
	if len(regs) == 1 {
		s.mon.WritePrometheus(w) //nolint:errcheck // client went away
		return
	}
	dsmon.WritePrometheusMerged(w, regs...) //nolint:errcheck // client went away
}

func (s *Server) trace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.mon.WriteChromeJSON(w) //nolint:errcheck
}

func (s *Server) critpath(w http.ResponseWriter, r *http.Request) {
	rep := critpath.Analyze(s.mon.Recorder())
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rep.WriteText(w) //nolint:errcheck
}

func (s *Server) vars(w http.ResponseWriter, _ *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := map[string]any{
		"goroutines":  runtime.NumGoroutine(),
		"heap_alloc":  ms.HeapAlloc,
		"total_alloc": ms.TotalAlloc,
		"num_gc":      ms.NumGC,
		"metrics":     s.mon.Registry().Snapshot(),
		"trace_spans": 0,
	}
	s.mu.Lock()
	attached := append([]attachment(nil), s.attached...)
	s.mu.Unlock()
	if len(attached) > 0 {
		reg := make(map[string]dsmon.Snapshot, len(attached))
		for _, a := range attached {
			reg[a.name] = a.mon.Registry().Snapshot()
		}
		out["attached"] = reg
	}
	if rec := s.mon.Recorder(); rec != nil {
		out["trace_spans"] = rec.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(out) //nolint:errcheck
}
