package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/telemetry"
	"pcxxstreams/internal/vtime"
)

func get(addr, path string) (int, string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

func jsonKeys(body string, keys ...string) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return err
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("missing key %q", k)
		}
	}
	return nil
}

// TestServeMidRun wires a telemetry server through machine.Config and
// scrapes every endpoint while the run is still in flight: rank 0 parks
// after the write phase until the scraper goroutine has seen all five
// endpoints, so each GET races against live metric and span mutation —
// which is exactly what -race is checking here.
func TestServeMidRun(t *testing.T) {
	mon := dsmon.NewTracing()
	addrCh := make(chan string, 1)
	midRun := make(chan struct{})
	scraped := make(chan struct{})

	go func() {
		defer close(scraped)
		addr := <-addrCh
		<-midRun

		if code, body, err := get(addr, "/healthz"); err != nil || code != 200 || body != "ok\n" {
			t.Errorf("/healthz = %d %q (%v)", code, body, err)
		}
		code, body, err := get(addr, "/metrics")
		if err != nil || code != 200 {
			t.Errorf("/metrics = %d (%v)", code, err)
		}
		if !strings.Contains(body, "# TYPE ") || !strings.Contains(body, "comm_messages_sent_total") {
			t.Errorf("/metrics missing expected exposition lines:\n%.400s", body)
		}
		code, body, err = get(addr, "/trace")
		if err != nil || code != 200 {
			t.Errorf("/trace = %d (%v)", code, err)
		}
		if err := jsonKeys(body, "traceEvents"); err != nil {
			t.Errorf("/trace body: %v", err)
		}
		code, body, err = get(addr, "/critpath")
		if err != nil || code != 200 {
			t.Errorf("/critpath = %d (%v)", code, err)
		}
		if !strings.HasPrefix(body, "critical-path analysis:") {
			t.Errorf("/critpath body = %.120q", body)
		}
		code, body, err = get(addr, "/critpath?format=json")
		if err != nil || code != 200 {
			t.Errorf("/critpath?format=json = %d (%v)", code, err)
		}
		if err := jsonKeys(body, "makespan", "ranks"); err != nil {
			t.Errorf("/critpath json body: %v", err)
		}
		code, body, err = get(addr, "/debug/vars")
		if err != nil || code != 200 {
			t.Errorf("/debug/vars = %d (%v)", code, err)
		}
		if err := jsonKeys(body, "goroutines", "metrics", "trace_spans"); err != nil {
			t.Errorf("/debug/vars body: %v", err)
		}
	}()

	_, err := machine.Run(machine.Config{
		NProcs: 2, Profile: vtime.CM5(), Monitor: mon,
		TelemetryAddr: "127.0.0.1:0",
		OnTelemetry:   func(addr string) { addrCh <- addr },
	}, func(n *machine.Node) error {
		d, err := distr.New(8, 2, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, s *scf.Segment) { s.Fill(g, 8) })
		s, err := dstream.Open(n, d, "t", dstream.WithStrategy(dstream.StrategyFunnel))
		if err != nil {
			return err
		}
		if err := dstream.Insert[scf.Segment](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		// Park rank 0 until the scraper has hit every endpoint so the GETs
		// observe a run that is genuinely still in progress.
		if n.Rank() == 0 {
			close(midRun)
			<-scraped
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Run returned, so machine.Run's deferred Close fired: the address must
	// no longer accept connections.
	select {
	case addr := <-addrCh:
		t.Fatalf("OnTelemetry called twice with %q", addr)
	default:
	}
}

// TestServeAddrAndClose pins the standalone server lifecycle: ":0" binds a
// real port, Addr reports it, and Close is idempotent and actually stops
// the listener.
func TestServeAddrAndClose(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", dsmon.NewTracing())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() = %q, want a bound port", addr)
	}
	if code, body, err := get(addr, "/healthz"); err != nil || code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q (%v)", code, body, err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, _, err := get(addr, "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestAttachMultiRegistry pins the multi-registry exposition: one /metrics
// page covers the primary registry plus every attached one, attached samples
// stamped with registry="<name>", colliding family names emitting exactly
// one # TYPE header, and Detach removing a tenant's rows again.
func TestAttachMultiRegistry(t *testing.T) {
	primary := dsmon.New()
	primary.Registry().Counter("daemon_up", "daemon liveness").Inc()

	srv, err := telemetry.Serve("127.0.0.1:0", primary)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	monA, monB := dsmon.New(), dsmon.New()
	// The same family in both registries — and in the primary — must merge
	// under a single # TYPE header.
	primary.Registry().Counter("shared_ops_total", "ops").Add(1)
	monA.Registry().Counter("shared_ops_total", "ops").Add(2)
	monB.Registry().Counter("shared_ops_total", "ops", "op", "read").Add(3)
	srv.Attach("tenant-a", monA)
	srv.Attach("tenant-b", monB)

	code, body, err := get(srv.Addr(), "/metrics")
	if err != nil || code != 200 {
		t.Fatalf("/metrics = %d (%v)", code, err)
	}
	for _, want := range []string{
		"daemon_up 1",
		"shared_ops_total 1",
		`shared_ops_total{registry="tenant-a"} 2`,
		`shared_ops_total{op="read",registry="tenant-b"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE shared_ops_total"); n != 1 {
		t.Errorf("family header for shared_ops_total appears %d times, want 1:\n%s", n, body)
	}

	// /debug/vars carries the attached snapshots too.
	code, body, err = get(srv.Addr(), "/debug/vars")
	if err != nil || code != 200 {
		t.Fatalf("/debug/vars = %d (%v)", code, err)
	}
	if err := jsonKeys(body, "attached"); err != nil {
		t.Errorf("/debug/vars body: %v", err)
	}

	srv.Detach("tenant-b")
	_, body, err = get(srv.Addr(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body, "tenant-b") {
		t.Errorf("detached registry still exposed:\n%s", body)
	}
	if !strings.Contains(body, "tenant-a") {
		t.Errorf("remaining attachment lost on Detach of a sibling:\n%s", body)
	}
}

// TestServeBadAddr: an unbindable address surfaces as an error, not a panic.
func TestServeBadAddr(t *testing.T) {
	if _, err := telemetry.Serve("256.256.256.256:1", dsmon.NewTracing()); err == nil {
		t.Fatal("expected an error for an unbindable address")
	}
}
