// Package machine assembles the simulated multicomputer: N nodes, each a
// goroutine with its own virtual clock, a message-passing endpoint, the
// collective communicator, and a handle on the shared parallel file system.
// It plays the role of the Paragon/CM-5/Challenge hardware plus the pC++
// runtime's Processors object: machine.Run(cfg, body) is the moral
// equivalent of the paper's Processor_Main.
package machine

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/telemetry"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// TransportKind selects how nodes exchange messages.
type TransportKind uint8

const (
	// TransportChan uses in-process queues (the default; fastest).
	TransportChan TransportKind = iota
	// TransportTCP uses real loopback TCP sockets.
	TransportTCP
)

// Config describes one machine run.
type Config struct {
	NProcs    int
	Profile   vtime.Profile
	Transport TransportKind
	// FS is the parallel file system the nodes mount. If nil, a fresh
	// in-memory file system with the run's profile is created.
	FS *pfs.FileSystem
	// Trace, when non-nil, records the virtual-time interval of every file
	// system operation of the run.
	Trace *trace.Recorder
	// Monitor, when non-nil, lights up the whole stack's observability:
	// comm message counters and size/wait histograms, collective latency
	// histograms, pfs per-operation accounts, and dstream buffer/stall
	// metrics — plus comm/collective/dstream spans on the monitor's
	// recorder (or on Trace, when both are set).
	Monitor *dsmon.Monitor
	// Collectives selects the collective algorithm (Linear by default;
	// Tree scales to large node counts).
	Collectives collective.Algorithm
	// MaxMsgBytes, when positive, bounds one point-to-point payload inside
	// the large-vector collectives (Alltoallv); larger contributions are
	// chunked transparently. Applied uniformly across the group, as the
	// framing is part of the wire protocol.
	MaxMsgBytes int
	// Fanout, when >= 2, shards the funnel collectives (barrier, bcast,
	// gather, scatterv, reduce) onto a k-ary tree so no rank handles more
	// than Fanout+1 messages per operation — the root-funnel fix for runs
	// past a few dozen ranks. Takes precedence over Collectives for the
	// operations it covers. Applied uniformly across the group.
	Fanout int
	// WrapTransport, when non-nil, wraps the run's transport before any
	// endpoint binds to it — the hook the chaos layer uses to inject
	// per-message faults between the endpoints and the real transport.
	WrapTransport func(comm.Transport) comm.Transport
	// RecvDeadline, when positive, bounds every blocking endpoint receive
	// in real time: a receive that sees nothing for this long fails with a
	// transient timeout (and after the endpoint's retry budget, a clean
	// error). The last-resort conversion of a distributed hang into an
	// error; leave zero for normal runs.
	RecvDeadline time.Duration
	// Retry, when non-nil, replaces every endpoint's transient-fault retry
	// policy for the run.
	Retry *comm.RetryPolicy
	// TelemetryAddr, when non-empty and Monitor is set, serves the run's
	// live telemetry over HTTP on this address for the duration of the run
	// (":0" picks a free port): /metrics, /trace, /critpath, /healthz,
	// /debug/vars. The server is closed when Run returns.
	TelemetryAddr string
	// OnTelemetry, when non-nil, is called with the bound telemetry address
	// once the server is listening (before any node starts).
	OnTelemetry func(addr string)
}

// Node is one rank's execution context, passed to the SPMD body.
type Node struct {
	rank  int
	size  int
	clock vtime.Clock
	ep    *comm.Endpoint
	coll  *collective.Comm
	fs    *pfs.FileSystem
	prof  vtime.Profile
	mon   *dsmon.Monitor
}

// Rank returns this node's rank in [0, Size()).
func (n *Node) Rank() int { return n.rank }

// Size returns the number of nodes in the machine.
func (n *Node) Size() int { return n.size }

// Clock returns the node's virtual clock.
func (n *Node) Clock() *vtime.Clock { return &n.clock }

// Comm returns the node's collective communicator (point-to-point available
// via Comm().Endpoint()).
func (n *Node) Comm() *collective.Comm { return n.coll }

// FS returns the machine's parallel file system.
func (n *Node) FS() *pfs.FileSystem { return n.fs }

// Profile returns the platform cost profile.
func (n *Node) Profile() vtime.Profile { return n.prof }

// Monitor returns the run's observability monitor (nil when the run is
// unmonitored; dsmon handles are nil-safe so callers need no check).
func (n *Node) Monitor() *dsmon.Monitor { return n.mon }

// Open opens a parallel file on this node (every node must open the file to
// use its collective operations).
func (n *Node) Open(name string, trunc bool) (*pfs.File, error) {
	return n.fs.Open(name, n.size, n.rank, &n.clock, trunc)
}

// Compute charges d virtual seconds of local computation.
func (n *Node) Compute(d float64) { n.clock.Advance(d) }

// CopyCost charges the memory-copy time for b bytes at the platform's copy
// bandwidth (the cost of packing data into per-node buffers).
func (n *Node) CopyCost(b int64) {
	n.clock.Advance(vtime.TransferTime(b, n.prof.MemCopyBW))
}

// Result summarizes one machine run.
type Result struct {
	// NodeTimes holds each node's final virtual clock.
	NodeTimes []float64
	// Elapsed is the run's virtual makespan: the maximum node time.
	Elapsed float64
	// MessagesSent and BytesSent aggregate point-to-point traffic across
	// all nodes (collectives included — they are built from messages).
	MessagesSent int
	BytesSent    int64
	// IO snapshots the file system's operation counters at run end. Note
	// that a shared FileSystem accumulates across runs; use the FileSystem's
	// ResetStats between phases for per-phase numbers.
	IO pfs.IOStats
}

// Run executes body on every node of a machine described by cfg and waits
// for all nodes to finish. The first node error (or panic, converted to an
// error) aborts the run's result; remaining goroutines are still waited for
// so no node leaks.
func Run(cfg Config, body func(*Node) error) (Result, error) {
	if cfg.NProcs <= 0 {
		return Result{}, fmt.Errorf("machine: NProcs must be positive, got %d", cfg.NProcs)
	}
	var tr comm.Transport
	switch cfg.Transport {
	case TransportChan:
		tr = comm.NewChanTransport(cfg.NProcs)
	case TransportTCP:
		var err error
		tr, err = comm.NewTCPTransport(cfg.NProcs)
		if err != nil {
			return Result{}, fmt.Errorf("machine: %w", err)
		}
	default:
		return Result{}, fmt.Errorf("machine: unknown transport %d", cfg.Transport)
	}
	base := tr // the real transport, kept for transport-specific wiring
	if cfg.WrapTransport != nil {
		tr = cfg.WrapTransport(tr)
	}
	defer tr.Close()

	fs := cfg.FS
	if fs == nil {
		fs = pfs.NewMemFS(cfg.Profile)
	}
	// A previous run on this file system may have been aborted (a node
	// failed); re-arm it so this run's collectives work.
	fs.ResetAbort()
	if cfg.Trace != nil {
		fs.SetRecorder(cfg.Trace)
		// One timeline for everything: spans from comm, collective and
		// dstream join the file system's io events on the explicit
		// recorder.
		cfg.Monitor.SetRecorder(cfg.Trace)
	}
	if cfg.Monitor != nil {
		fs.SetMonitor(cfg.Monitor)
		bindPoolMetrics(cfg.Monitor)
		if tt, ok := base.(*comm.TCPTransport); ok {
			tt.SetMonitor(cfg.Monitor)
		}
		if ct, ok := base.(*comm.ChanTransport); ok {
			ct.SetMonitor(cfg.Monitor)
		}
		if r := cfg.Monitor.Recorder(); r != nil && cfg.Trace == nil {
			fs.SetRecorder(r)
		}
	}
	if cfg.TelemetryAddr != "" && cfg.Monitor != nil {
		srv, err := telemetry.Serve(cfg.TelemetryAddr, cfg.Monitor)
		if err != nil {
			return Result{}, fmt.Errorf("machine: %w", err)
		}
		defer srv.Close()
		if cfg.OnTelemetry != nil {
			cfg.OnTelemetry(srv.Addr())
		}
	}

	nodes := make([]*Node, cfg.NProcs)
	errs := make([]error, cfg.NProcs)
	var wg sync.WaitGroup
	for r := 0; r < cfg.NProcs; r++ {
		n := &Node{rank: r, size: cfg.NProcs, fs: fs, prof: cfg.Profile, mon: cfg.Monitor}
		n.ep = comm.NewEndpoint(r, cfg.NProcs, tr, &n.clock, cfg.Profile).SetMonitor(cfg.Monitor)
		if cfg.Retry != nil {
			n.ep.SetRetryPolicy(*cfg.Retry)
		}
		if cfg.RecvDeadline > 0 {
			n.ep.SetRecvDeadline(cfg.RecvDeadline)
		}
		n.coll = collective.New(n.ep).SetAlgorithm(cfg.Collectives).SetMaxMsgBytes(cfg.MaxMsgBytes).SetFanout(cfg.Fanout)
		nodes[r] = n
	}
	for r := 0; r < cfg.NProcs; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("machine: node %d panicked: %v\n%s", r, p, debug.Stack())
				}
				if errs[r] != nil {
					// Unblock peers stuck in message receives or in file
					// system rendezvous waiting for this rank.
					fs.Abort(errs[r])
					tr.Close()
				}
			}()
			errs[r] = body(nodes[r])
		}()
	}
	wg.Wait()

	res := Result{NodeTimes: make([]float64, cfg.NProcs), IO: fs.Stats()}
	for r, n := range nodes {
		res.NodeTimes[r] = n.clock.Now()
		if res.NodeTimes[r] > res.Elapsed {
			res.Elapsed = res.NodeTimes[r]
		}
		st := n.ep.Stats()
		res.MessagesSent += st.Sent
		res.BytesSent += st.BytesSent
	}
	for r, err := range errs {
		if err != nil {
			return res, fmt.Errorf("machine: node %d: %w", r, err)
		}
	}
	return res, nil
}
