package machine

import (
	"sync"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/dsmon"
)

// The bufpool package sits below dsmon in the dependency order and keeps
// its statistics as process-global atomics; this glue exports them as
// gauges, refreshed by a registry collector each time the metrics are
// gathered. Bound at most once per registry, since monitors outlive runs.

var poolBound sync.Map // *dsmon.Registry -> struct{}

func bindPoolMetrics(mon *dsmon.Monitor) {
	reg := mon.Registry()
	if reg == nil {
		return
	}
	if _, dup := poolBound.LoadOrStore(reg, struct{}{}); dup {
		return
	}
	hits := reg.Gauge("bufpool_hits_total", "Buffer pool Gets served from the pool.")
	misses := reg.Gauge("bufpool_misses_total", "Buffer pool Gets that allocated a fresh buffer.")
	puts := reg.Gauge("bufpool_puts_total", "Buffers returned to the pool.")
	discards := reg.Gauge("bufpool_discards_total", "Put buffers rejected (non-class capacity) and left to the GC.")
	oversize := reg.Gauge("bufpool_oversize_total", "Gets above the largest size class, served by plain allocation.")
	outstanding := reg.Gauge("bufpool_outstanding", "Pool-backed buffers currently held by callers.")
	reg.AddCollector(func() {
		st := bufpool.Stats()
		hits.Set(float64(st.Hits))
		misses.Set(float64(st.Misses))
		puts.Set(float64(st.Puts))
		discards.Set(float64(st.Discards))
		oversize.Set(float64(st.Oversize))
		outstanding.Set(float64(st.Outstanding))
	})
}
