package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

func cfg(n int) Config {
	return Config{NProcs: n, Profile: vtime.Challenge()}
}

func TestRunBasics(t *testing.T) {
	visited := make([]bool, 4)
	res, err := Run(cfg(4), func(n *Node) error {
		if n.Size() != 4 {
			return fmt.Errorf("size %d", n.Size())
		}
		visited[n.Rank()] = true
		n.Compute(float64(n.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range visited {
		if !v {
			t.Fatalf("rank %d never ran", r)
		}
	}
	if res.Elapsed != 3 {
		t.Fatalf("Elapsed = %v, want 3", res.Elapsed)
	}
	if len(res.NodeTimes) != 4 || res.NodeTimes[2] != 2 {
		t.Fatalf("NodeTimes = %v", res.NodeTimes)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{NProcs: 0}, func(*Node) error { return nil }); err == nil {
		t.Fatal("NProcs=0 accepted")
	}
	if _, err := Run(Config{NProcs: 1, Transport: 99}, func(*Node) error { return nil }); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("node failure")
	_, err := Run(cfg(3), func(n *Node) error {
		if n.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	_, err := Run(cfg(2), func(n *Node) error {
		if n.Rank() == 0 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic converted", err)
	}
}

// TestFailedNodeDoesNotDeadlockCollectives: rank 1 dies before the
// rendezvous; rank 0 must be released with an error, not hang.
func TestFailedNodeDoesNotDeadlockCollectives(t *testing.T) {
	_, err := Run(cfg(2), func(n *Node) error {
		if n.Rank() == 1 {
			return errors.New("early death")
		}
		f, ferr := n.Open("f", true)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if _, aerr := f.ParallelAppend([]byte("data")); aerr == nil {
			return errors.New("parallel append succeeded despite dead peer")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "early death") {
		t.Fatalf("err = %v", err)
	}
}

// TestFailedNodeDoesNotDeadlockMessaging: a peer blocked in Recv is
// unblocked when another node fails.
func TestFailedNodeDoesNotDeadlockMessaging(t *testing.T) {
	_, err := Run(cfg(2), func(n *Node) error {
		if n.Rank() == 1 {
			return errors.New("croak")
		}
		if _, rerr := n.Comm().Endpoint().Recv(1, 42); rerr == nil {
			return errors.New("recv returned data from a dead peer")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "croak") {
		t.Fatalf("err = %v", err)
	}
}

func TestNodeCollectivesWired(t *testing.T) {
	res, err := Run(cfg(5), func(n *Node) error {
		sum, err := n.Comm().Allreduce(1, 0 /* OpSum */)
		if err != nil {
			return err
		}
		if sum != 5 {
			return fmt.Errorf("allreduce sum = %v", sum)
		}
		return n.Comm().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, tm := range res.NodeTimes {
		if tm != res.NodeTimes[0] {
			t.Fatalf("rank %d time %v != %v after barrier", r, tm, res.NodeTimes[0])
		}
	}
}

func TestNodeFSWired(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	c := cfg(3)
	c.FS = fs
	_, err := Run(c, func(n *Node) error {
		f, err := n.Open("out", true)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.ParallelAppend([]byte{byte('0' + n.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := fs.Image("out")
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != "012" {
		t.Fatalf("image = %q", img)
	}
}

func TestCopyCost(t *testing.T) {
	prof := vtime.Challenge()
	res, err := Run(Config{NProcs: 1, Profile: prof}, func(n *Node) error {
		n.CopyCost(int64(prof.MemCopyBW)) // exactly 1 virtual second
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != 1 {
		t.Fatalf("Elapsed = %v, want 1", res.Elapsed)
	}
}

// TestDeterministicAcrossRunsAndTransports: the same SPMD program yields
// identical virtual times on repeated runs and on both transports.
func TestDeterministicAcrossRunsAndTransports(t *testing.T) {
	body := func(n *Node) error {
		f, err := n.Open("ck", true)
		if err != nil {
			return err
		}
		defer f.Close()
		for i := 0; i < 3; i++ {
			if _, err := f.ParallelAppend(make([]byte, 1000*(n.Rank()+1))); err != nil {
				return err
			}
			if _, err := n.Comm().Allgather(make([]byte, 64)); err != nil {
				return err
			}
		}
		return n.Comm().Barrier()
	}
	run := func(kind TransportKind) []float64 {
		res, err := Run(Config{NProcs: 4, Profile: vtime.Paragon(), Transport: kind}, body)
		if err != nil {
			t.Fatal(err)
		}
		return res.NodeTimes
	}
	a := run(TransportChan)
	b := run(TransportChan)
	c := run(TransportTCP)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs across runs: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("rank %d differs across transports: chan %v vs tcp %v", i, a[i], c[i])
		}
	}
}

// TestTraceCapturesOps: a traced run records one interval per file-system
// operation, tagged with the acting node.
func TestTraceCapturesOps(t *testing.T) {
	rec := trace.New()
	_, err := Run(Config{NProcs: 3, Profile: vtime.Challenge(), Trace: rec}, func(n *Node) error {
		f, err := n.Open("t", true)
		if err != nil {
			return err
		}
		defer f.Close()
		if n.Rank() == 0 {
			if err := f.WriteAt([]byte("x"), 0); err != nil {
				return err
			}
		}
		_, err = f.ParallelAppend([]byte{byte(n.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 independent write + 3 participants of one parallel append.
	if got := rec.Len(); got != 4 {
		t.Fatalf("recorded %d events, want 4: %+v", got, rec.Events())
	}
	nodes := map[int]bool{}
	for _, e := range rec.Events() {
		nodes[e.Node] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("events span %d nodes, want 3", len(nodes))
	}
}

// TestMonitorLightsUpStack: one Monitor in the config yields metrics from
// the comm, collective and pfs layers plus spans from all of them on the
// monitor's recorder — the single-flag contract of the observability layer.
func TestMonitorLightsUpStack(t *testing.T) {
	mon := dsmon.NewTracing()
	_, err := Run(Config{NProcs: 3, Profile: vtime.Challenge(), Monitor: mon}, func(n *Node) error {
		f, err := n.Open("m", true)
		if err != nil {
			return err
		}
		defer f.Close()
		if n.Rank() == 0 {
			if err := f.WriteAt([]byte("x"), 0); err != nil {
				return err
			}
		}
		if _, err := f.ParallelAppend([]byte{byte(n.Rank())}); err != nil {
			return err
		}
		if n.Rank() == 0 {
			return n.Comm().Endpoint().Send(1, 7, []byte("hi"))
		}
		if n.Rank() == 1 {
			_, err := n.Comm().Endpoint().Recv(0, 7)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := mon.Registry().Snapshot()
	counts := map[string]int64{}
	for _, c := range snap.Counters {
		counts[c.Name] += c.Value
	}
	if counts["comm_messages_sent_total"] != 1 {
		t.Fatalf("comm_messages_sent_total = %d, want 1 (%+v)", counts["comm_messages_sent_total"], snap.Counters)
	}
	if counts["pfs_ops_total"] == 0 {
		t.Fatalf("pfs_ops_total never incremented: %+v", snap.Counters)
	}
	cats := map[string]bool{}
	for _, e := range mon.Recorder().Events() {
		cats[e.Cat] = true
	}
	for _, want := range []string{"io", "comm", "collective"} {
		if !cats[want] {
			t.Fatalf("no %q spans recorded; categories = %v", want, cats)
		}
	}
}

// TestMonitorAdoptsExplicitTrace: with both Trace and Monitor set, spans
// land on the explicit recorder (one unified timeline).
func TestMonitorAdoptsExplicitTrace(t *testing.T) {
	rec := trace.New()
	mon := dsmon.New()
	_, err := Run(Config{NProcs: 2, Profile: vtime.Challenge(), Trace: rec, Monitor: mon}, func(n *Node) error {
		return n.Comm().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Cat == "collective" {
			found = true
		}
	}
	if !found {
		t.Fatalf("collective spans missing from explicit recorder: %+v", rec.Events())
	}
}

// TestSequentialRunsOnSharedFS: several runs over one file system see each
// other's files (write phase then read phase as separate machines, the
// examples' pattern), and per-run virtual clocks start fresh.
func TestSequentialRunsOnSharedFS(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	c1 := cfg(2)
	c1.FS = fs
	res1, err := Run(c1, func(n *Node) error {
		f, err := n.Open("state", true)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.ParallelAppend([]byte{byte('A' + n.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := Config{NProcs: 3, Profile: vtime.Challenge(), FS: fs}
	res2, err := Run(c2, func(n *Node) error {
		f, err := n.Open("state", false)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 2)
		if err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		if string(buf) != "AB" {
			t.Errorf("rank %d read %q", n.Rank(), buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh clocks per run: run 2's elapsed is not inflated by run 1's.
	if res2.Elapsed >= res1.Elapsed+1 {
		t.Fatalf("run 2 elapsed %v inherited run 1's clock (%v)", res2.Elapsed, res1.Elapsed)
	}
	// Aggregate stats accumulated across both runs on the shared FS.
	if res2.IO.Opens < res1.IO.Opens {
		t.Fatalf("IO stats went backwards: %d then %d opens", res1.IO.Opens, res2.IO.Opens)
	}
}
