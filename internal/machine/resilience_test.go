package machine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcxxstreams/internal/comm"
)

// countingTransport proves WrapTransport wiring: it counts the messages the
// endpoints push through it.
type countingTransport struct {
	comm.Transport
	sends atomic.Int64
}

func (c *countingTransport) Send(m comm.Message) error {
	c.sends.Add(1)
	return c.Transport.Send(m)
}

func TestWrapTransportSeesTraffic(t *testing.T) {
	var ct *countingTransport
	c := cfg(3)
	c.WrapTransport = func(tr comm.Transport) comm.Transport {
		ct = &countingTransport{Transport: tr}
		return ct
	}
	_, err := Run(c, func(n *Node) error {
		ep := n.Comm().Endpoint()
		if n.Rank() == 0 {
			return ep.Send(1, 5, []byte("through the wrapper"))
		}
		if n.Rank() == 1 {
			_, err := ep.Recv(0, 5)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct == nil {
		t.Fatal("WrapTransport never called")
	}
	if ct.sends.Load() == 0 {
		t.Fatal("wrapped transport saw no sends")
	}
}

// TestRecvDeadlineConvertsHangToError: a rank waiting for a message nobody
// sends is the canonical distributed hang; with a receive deadline and a
// small retry budget configured at the machine level, Run returns a clean
// transient-rooted error instead of blocking forever.
func TestRecvDeadlineConvertsHangToError(t *testing.T) {
	c := cfg(2)
	c.RecvDeadline = 20 * time.Millisecond
	c.Retry = &comm.RetryPolicy{MaxAttempts: 2, Backoff: 1e-6}
	done := make(chan error, 1)
	go func() {
		_, err := Run(c, func(n *Node) error {
			if n.Rank() == 1 {
				_, err := n.Comm().Endpoint().Recv(0, 9) // no one sends
				return err
			}
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("orphaned receive completed")
		}
		if !strings.Contains(err.Error(), "retries exhausted") {
			t.Fatalf("error does not name the exhausted retry budget: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("machine run hung despite receive deadline")
	}
}

// TestRetryPolicyAppliedToEndpoints: the machine-level policy reaches every
// endpoint — with MaxAttempts 1 a single transient fault is terminal.
func TestRetryPolicyAppliedToEndpoints(t *testing.T) {
	c := cfg(2)
	c.RecvDeadline = 10 * time.Millisecond
	c.Retry = &comm.RetryPolicy{MaxAttempts: 1, Backoff: 1e-6}
	start := time.Now()
	_, err := Run(c, func(n *Node) error {
		if n.Rank() == 0 {
			_, err := n.Comm().Endpoint().Recv(1, 3)
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("orphaned receive completed")
	}
	// One attempt at a 10ms deadline: the run must fail fast, nowhere near
	// a multi-attempt backoff schedule.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("single-attempt policy took %v", elapsed)
	}
}
