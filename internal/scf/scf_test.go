package scf

import (
	"testing"
	"testing/quick"

	"pcxxstreams/internal/enc"
)

func TestFillDeterministic(t *testing.T) {
	var a, b Segment
	a.Fill(7, 100)
	b.Fill(7, 100)
	if !a.Equal(&b) {
		t.Fatal("Fill not deterministic")
	}
	var c Segment
	c.Fill(8, 100)
	if a.Equal(&c) {
		t.Fatal("different globals produced identical segments")
	}
}

func TestFillShape(t *testing.T) {
	var s Segment
	s.Fill(3, 42)
	if s.NumberOfParticles != 42 {
		t.Fatalf("NumberOfParticles = %d", s.NumberOfParticles)
	}
	for _, a := range [][]float64{s.X, s.Y, s.Z, s.VX, s.VY, s.VZ, s.Mass} {
		if len(a) != 42 {
			t.Fatalf("field length %d", len(a))
		}
		for _, v := range a {
			if v < -1 || v > 1 {
				t.Fatalf("value %v out of (-1,1)", v)
			}
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var s Segment
	s.Fill(11, 17)
	var e enc.Buffer
	s.StreamInsert(&e)
	if int64(e.Len()) != EncodedBytes(17) {
		t.Fatalf("encoded %d bytes, want %d", e.Len(), EncodedBytes(17))
	}
	var got Segment
	d := enc.NewReader(e.Bytes())
	got.StreamExtract(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if !got.Equal(&s) {
		t.Fatal("stream round trip mismatch")
	}
	if got.Checksum() != s.Checksum() {
		t.Fatal("checksum mismatch after round trip")
	}
}

// TestPaperSizes: the workload reproduces the paper's I/O-size columns.
func TestPaperSizes(t *testing.T) {
	perSeg := EncodedBytes(DefaultParticles)
	cases := []struct {
		segments int
		mb       float64
	}{
		{256, 1.4}, {512, 2.8}, {1000, 5.6}, {2000, 11.2}, {8000, 44.8}, {20000, 112},
	}
	for _, c := range cases {
		gotMB := float64(c.segments) * float64(perSeg) / 1e6
		if gotMB < c.mb*0.95 || gotMB > c.mb*1.1 {
			t.Errorf("%d segments = %.2f MB, paper column says %.1f MB", c.segments, gotMB, c.mb)
		}
	}
	if raw := RawBytes(DefaultParticles); raw >= perSeg {
		t.Errorf("raw layout (%d) not smaller than stream layout (%d)", raw, perSeg)
	}
}

func TestChecksumSensitive(t *testing.T) {
	var a, b Segment
	a.Fill(1, 10)
	b.Fill(1, 10)
	b.X[3] += 1e-9
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum insensitive to perturbation")
	}
}

func TestStepConservesCount(t *testing.T) {
	var s Segment
	s.Fill(2, 25)
	before := make([]float64, len(s.X))
	copy(before, s.X)
	s.Step(0.01)
	if s.NumberOfParticles != 25 || len(s.X) != 25 {
		t.Fatal("Step changed particle count")
	}
	same := true
	for i := range s.X {
		if s.X[i] != before[i] {
			same = false
		}
	}
	if same {
		t.Fatal("Step moved nothing")
	}
}

// Property: round trip is identity for arbitrary particle counts.
func TestStreamRoundTripQuick(t *testing.T) {
	f := func(g uint16, n uint8) bool {
		var s, got Segment
		s.Fill(int(g), int(n))
		var e enc.Buffer
		s.StreamInsert(&e)
		d := enc.NewReader(e.Bytes())
		got.StreamExtract(d)
		return d.Err() == nil && got.Equal(&s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualDetectsEveryField(t *testing.T) {
	base := func() Segment {
		var s Segment
		s.Fill(5, 4)
		return s
	}
	mutations := []func(*Segment){
		func(s *Segment) { s.NumberOfParticles++ },
		func(s *Segment) { s.X[0]++ },
		func(s *Segment) { s.Y[1]++ },
		func(s *Segment) { s.Z[2]++ },
		func(s *Segment) { s.VX[3]++ },
		func(s *Segment) { s.VY[0]++ },
		func(s *Segment) { s.VZ[1]++ },
		func(s *Segment) { s.Mass[2]++ },
		func(s *Segment) { s.Mass = s.Mass[:3] },
	}
	for i, m := range mutations {
		a, b := base(), base()
		m(&b)
		if a.Equal(&b) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
}

func TestEnergyDiagnostics(t *testing.T) {
	var s Segment
	s.Fill(9, 50)
	ke, pe := s.KineticEnergy(), s.PotentialEnergy()
	if ke <= 0 {
		// Masses can be negative in the synthetic generator; kinetic energy
		// is sign-weighted by mass, so only check it is finite and nonzero.
		if ke == 0 {
			t.Fatal("kinetic energy identically zero")
		}
	}
	if pe == 0 {
		t.Fatal("potential energy identically zero")
	}
	// Energies are deterministic functions of the state.
	var s2 Segment
	s2.Fill(9, 50)
	if s2.KineticEnergy() != ke || s2.PotentialEnergy() != pe {
		t.Fatal("energies not deterministic")
	}
	// A dynamics step changes both.
	s.Step(0.05)
	if s.KineticEnergy() == ke && s.PotentialEnergy() == pe {
		t.Fatal("Step changed no energy")
	}
}
