// Package scf reproduces the I/O skeleton of the Self Consistent Field
// (SCF) code, the Grand Challenge computational-cosmology N-body
// application the paper benchmarks (§4.3): "the primary data structure is a
// one dimensional collection of Segments where each segment stores data
// corresponding to several particles. ... Per-particle information includes
// the x, y, and z coordinates of the particles, their x, y, and z
// velocities, and their masses."
//
// The paper's I/O sizes derive from this layout: ~5.6 KB per segment at the
// default 100 particles, so 256 segments ≈ 1.4 MB, 1000 ≈ 5.6 MB,
// 20000 ≈ 112 MB — exactly the columns of Tables 1–4.
package scf

import (
	"math"

	"pcxxstreams/internal/dstream"
)

// DefaultParticles is the particles-per-segment count that reproduces the
// paper's bytes-per-segment (≈5.6 KB).
const DefaultParticles = 100

// Segment is the element type of the SCF particle collection.
type Segment struct {
	NumberOfParticles int64
	X, Y, Z           []float64
	VX, VY, VZ        []float64
	Mass              []float64
}

// StreamInsert implements dstream.Inserter. (This method pair is what
// cmd/streamgen generates for Segment; see internal/streamgen's golden
// test, which regenerates it and diffs.)
func (s *Segment) StreamInsert(e *dstream.Encoder) {
	e.Int64(s.NumberOfParticles)
	e.Float64Slice(s.X)
	e.Float64Slice(s.Y)
	e.Float64Slice(s.Z)
	e.Float64Slice(s.VX)
	e.Float64Slice(s.VY)
	e.Float64Slice(s.VZ)
	e.Float64Slice(s.Mass)
}

// StreamExtract implements dstream.Extractor.
func (s *Segment) StreamExtract(d *dstream.Decoder) {
	s.NumberOfParticles = d.Int64()
	s.X = d.Float64Slice()
	s.Y = d.Float64Slice()
	s.Z = d.Float64Slice()
	s.VX = d.Float64Slice()
	s.VY = d.Float64Slice()
	s.VZ = d.Float64Slice()
	s.Mass = d.Float64Slice()
}

// EncodedBytes returns the segment's d/stream payload size: an int64 count
// plus seven length-prefixed float64 arrays.
func EncodedBytes(particles int) int64 {
	return 8 + 7*(4+8*int64(particles))
}

// RawBytes returns the segment's size in the baselines' fixed layout (no
// length prefixes — the "programmer computes the sizes" assumption the
// paper makes for manual buffering).
func RawBytes(particles int) int64 {
	return 8 + 7*8*int64(particles)
}

// Fill populates the segment with n particles of deterministic
// pseudo-random phase-space data derived from the segment's global index,
// so any node (and any later run) can verify content without communication.
func (s *Segment) Fill(global, n int) {
	s.NumberOfParticles = int64(n)
	s.X = fillSeries(global, 1, n)
	s.Y = fillSeries(global, 2, n)
	s.Z = fillSeries(global, 3, n)
	s.VX = fillSeries(global, 4, n)
	s.VY = fillSeries(global, 5, n)
	s.VZ = fillSeries(global, 6, n)
	s.Mass = fillSeries(global, 7, n)
}

// fillSeries is a cheap deterministic value generator (splitmix64-derived)
// producing floats in (-1, 1).
func fillSeries(global, field, n int) []float64 {
	out := make([]float64, n)
	seed := uint64(global)*1_000_003 + uint64(field)*7919
	for i := range out {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		out[i] = float64(int64(z))/math.MaxInt64*0.5 + 0.25
	}
	return out
}

// Checksum folds every field into one float64 so integrity can be verified
// after a round trip with a single Allreduce.
func (s *Segment) Checksum() float64 {
	sum := float64(s.NumberOfParticles)
	for _, a := range [][]float64{s.X, s.Y, s.Z, s.VX, s.VY, s.VZ, s.Mass} {
		for i, v := range a {
			sum += v * float64(i+1)
		}
	}
	return sum
}

// Equal reports whether two segments hold identical data.
func (s *Segment) Equal(o *Segment) bool {
	if s.NumberOfParticles != o.NumberOfParticles {
		return false
	}
	pairs := [][2][]float64{
		{s.X, o.X}, {s.Y, o.Y}, {s.Z, o.Z},
		{s.VX, o.VX}, {s.VY, o.VY}, {s.VZ, o.VZ},
		{s.Mass, o.Mass},
	}
	for _, p := range pairs {
		if len(p[0]) != len(p[1]) {
			return false
		}
		for i := range p[0] {
			if p[0][i] != p[1][i] {
				return false
			}
		}
	}
	return true
}

// KineticEnergy returns ½·Σ m·v² over the segment's particles — the
// diagnostic the SCF analysis pipeline computes from the saved frames.
func (s *Segment) KineticEnergy() float64 {
	e := 0.0
	for i := range s.VX {
		v2 := s.VX[i]*s.VX[i] + s.VY[i]*s.VY[i] + s.VZ[i]*s.VZ[i]
		e += 0.5 * s.Mass[i] * v2
	}
	return e
}

// PotentialEnergy returns Σ m·Φ(r) under the same toy central potential
// Step integrates (Φ = -1/r, softened).
func (s *Segment) PotentialEnergy() float64 {
	e := 0.0
	for i := range s.X {
		r2 := s.X[i]*s.X[i] + s.Y[i]*s.Y[i] + s.Z[i]*s.Z[i] + 1e-6
		e += s.Mass[i] * (-1.0 / math.Sqrt(r2))
	}
	return e
}

// Step advances the segment's particles by dt under a toy self-consistent
// central potential — enough real dynamics for the examples to checkpoint a
// program that is actually computing, as the SCF code does between saves.
func (s *Segment) Step(dt float64) {
	for i := range s.X {
		r2 := s.X[i]*s.X[i] + s.Y[i]*s.Y[i] + s.Z[i]*s.Z[i] + 1e-6
		inv := -1.0 / (r2 * math.Sqrt(r2))
		ax, ay, az := s.X[i]*inv, s.Y[i]*inv, s.Z[i]*inv
		s.VX[i] += ax * dt
		s.VY[i] += ay * dt
		s.VZ[i] += az * dt
		s.X[i] += s.VX[i] * dt
		s.Y[i] += s.VY[i] * dt
		s.Z[i] += s.VZ[i] * dt
	}
}
