package vtime

// Profile bundles the cost constants of one simulated platform. The two
// shipped profiles model the Intel Paragon and the SGI Challenge of the
// paper's evaluation (Section 4.3); a third models the TMC CM-5, which the
// paper reports the library also runs on. Constants were calibrated so the
// reproduced tables match the paper's shape: buffered I/O beats unbuffered
// by a wide margin, the Paragon's unbuffered path falls off a cache cliff
// between the 2.8 MB and 5.6 MB points, manual buffering hits its own cliff
// when the per-node block exceeds the write cache, and the pC++/streams
// overhead percentage shrinks as I/O size grows.
type Profile struct {
	Name string

	// Message passing.
	MsgLatency   float64 // seconds per message (one-way)
	MsgBW        float64 // bytes/second of a point-to-point link
	SendOverhead float64 // CPU seconds charged to the sender per message

	// Memory.
	MemCopyBW   float64 // bytes/second for buffer packing/unpacking
	PerElemCost float64 // seconds per element of pointer-list traversal

	// File system: fixed costs.
	IOOpLatency      float64 // seconds per I/O call while the OS cache absorbs it
	IOOpSlow         float64 // seconds per small I/O call beyond SlowOffset
	SlowOffset       int64   // file offset past which small ops pay IOOpSlow
	SmallOp          int64   // ops of at most this many bytes are "small"
	OpenLatency      float64 // seconds to open a parallel file
	ControlOpLatency float64 // seconds per synchronizing metadata operation

	// File system: streaming costs.
	DiskFastBW  float64 // bytes/second while a block fits the write cache
	DiskSlowBW  float64 // bytes/second for the portion beyond the cache
	BlockCache  int64   // per-node write-cache bytes for large block transfers
	SerialPerOp float64 // serialized seconds charged per node in a parallel op
	IOChannels  int     // concurrent I/O channels of the storage subsystem
}

// Paragon models a 4-16 node Intel Paragon partition with the PFS parallel
// file system (OSF/1, 1995). Its signature behaviours are a very high
// per-call cost for unbuffered small writes once the OS write cache is
// exhausted, and a hard bandwidth cliff when a node's block transfer
// overflows the per-node write cache.
func Paragon() Profile {
	return Profile{
		Name:             "paragon",
		MsgLatency:       90e-6,
		MsgBW:            80e6,
		SendOverhead:     20e-6,
		MemCopyBW:        30e6,
		PerElemCost:      100e-6,
		IOOpLatency:      1.4e-3,
		IOOpSlow:         22e-3,
		SlowOffset:       3 << 20, // ~3 MB of file absorbed by the OS cache
		SmallOp:          32 << 10,
		OpenLatency:      0.35,
		ControlOpLatency: 0.15,
		DiskFastBW:       3.0e6,
		DiskSlowBW:       64e3,
		BlockCache:       2 << 20, // ~2 MB per-node write cache
		SerialPerOp:      60e-3,
		IOChannels:       1, // PFS node-order serialized transfers
	}
}

// Challenge models the SGI Challenge shared-memory multiprocessor with a
// fast local file system: low per-call latency, no pathological cliffs, and
// parallel writes that scale but pay a serialized per-node cost on the
// shared bus (visible as the large small-size overhead in Table 4).
func Challenge() Profile {
	return Profile{
		Name:             "challenge",
		MsgLatency:       8e-6,
		MsgBW:            300e6,
		SendOverhead:     2e-6,
		MemCopyBW:        180e6,
		PerElemCost:      1.5e-6,
		IOOpLatency:      0.05e-3,
		IOOpSlow:         0.05e-3, // no cliff
		SlowOffset:       1 << 62,
		SmallOp:          32 << 10,
		OpenLatency:      3e-3,
		ControlOpLatency: 0.1,
		DiskFastBW:       12e6,
		DiskSlowBW:       12e6,
		BlockCache:       1 << 62,
		SerialPerOp:      3e-3,
		IOChannels:       4,
	}
}

// CM5 models a Thinking Machines CM-5 with the Scalable File System. The
// paper notes the library runs there but reports no table (CMMD timers do
// not account for I/O); the profile is provided for the extension benches.
func CM5() Profile {
	return Profile{
		Name:             "cm5",
		MsgLatency:       50e-6,
		MsgBW:            10e6,
		SendOverhead:     10e-6,
		MemCopyBW:        25e6,
		PerElemCost:      5e-6,
		IOOpLatency:      1.5e-3,
		IOOpSlow:         40e-3,
		SlowOffset:       4 << 20,
		SmallOp:          32 << 10,
		OpenLatency:      0.1,
		ControlOpLatency: 40e-3,
		DiskFastBW:       4.0e6,
		DiskSlowBW:       500e3,
		BlockCache:       2 << 20,
		SerialPerOp:      8e-3,
		IOChannels:       2,
	}
}

// ByName returns the named profile. Known names: paragon, challenge, cm5.
func ByName(name string) (Profile, bool) {
	switch name {
	case "paragon":
		return Paragon(), true
	case "challenge":
		return Challenge(), true
	case "cm5":
		return CM5(), true
	}
	return Profile{}, false
}
