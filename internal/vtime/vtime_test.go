package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(1.5)
	c.Advance(0.25)
	if got := c.Now(); got != 1.75 {
		t.Fatalf("Now() = %v, want 1.75", got)
	}
}

func TestClockAdvanceIgnoresNegative(t *testing.T) {
	var c Clock
	c.Advance(2)
	c.Advance(-5)
	if got := c.Now(); got != 2 {
		t.Fatalf("Now() = %v, want 2 (negative advance must be ignored)", got)
	}
}

func TestClockSyncTo(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.SyncTo(2) // earlier: no-op
	if c.Now() != 3 {
		t.Fatalf("SyncTo moved clock backwards to %v", c.Now())
	}
	c.SyncTo(7)
	if c.Now() != 7 {
		t.Fatalf("SyncTo(7) gave %v", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(9)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: any interleaving of Advance/SyncTo never decreases the clock.
	f := func(steps []float64) bool {
		var c Clock
		prev := 0.0
		for i, s := range steps {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			if i%2 == 0 {
				c.Advance(s)
			} else {
				c.SyncTo(s)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 1000); got != 1 {
		t.Fatalf("TransferTime(1000,1000) = %v, want 1", got)
	}
	if got := TransferTime(0, 1000); got != 0 {
		t.Fatalf("TransferTime(0,1000) = %v, want 0", got)
	}
	if got := TransferTime(1000, 0); got != 0 {
		t.Fatalf("TransferTime with bw=0 = %v, want 0 (infinitely fast)", got)
	}
	if got := TransferTime(-5, 100); got != 0 {
		t.Fatalf("TransferTime negative bytes = %v, want 0", got)
	}
}

func TestMaxOf(t *testing.T) {
	if got := MaxOf([]float64{1, 9, 3}); got != 9 {
		t.Fatalf("MaxOf = %v, want 9", got)
	}
	if got := MaxOf([]float64{-2}); got != -2 {
		t.Fatalf("MaxOf single = %v, want -2", got)
	}
}

func TestProfilesByName(t *testing.T) {
	for _, name := range []string{"paragon", "challenge", "cm5"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		if p.Name != name {
			t.Fatalf("profile name %q != %q", p.Name, name)
		}
		if p.MsgLatency <= 0 || p.MemCopyBW <= 0 || p.IOOpLatency <= 0 || p.DiskFastBW <= 0 {
			t.Fatalf("profile %q has non-positive core constants: %+v", name, p)
		}
		if p.IOOpSlow < p.IOOpLatency {
			t.Fatalf("profile %q: slow op cheaper than fast op", name)
		}
		if p.IOChannels < 1 {
			t.Fatalf("profile %q: no I/O channels", name)
		}
		if p.OpenLatency <= 0 || p.ControlOpLatency <= 0 || p.SerialPerOp <= 0 {
			t.Fatalf("profile %q: non-positive fixed costs: %+v", name, p)
		}
		if p.PerElemCost <= 0 {
			t.Fatalf("profile %q: non-positive per-element cost", name)
		}
		if p.DiskSlowBW > p.DiskFastBW {
			t.Fatalf("profile %q: slow disk faster than fast disk", name)
		}
	}
	if _, ok := ByName("cray"); ok {
		t.Fatal("ByName(cray) unexpectedly found")
	}
}
