// Package vtime provides the virtual-time machinery used by the simulated
// multicomputer. Every node of the machine owns a Clock that is advanced
// deterministically by the cost model of each operation (message sends,
// receives, memory copies, file-system calls). Benchmarks report elapsed
// virtual seconds, so results are reproducible on any host and preserve the
// *shape* of the paper's 1995 measurements (who wins, by what factor, where
// the crossovers fall) without depending on modern hardware speed.
//
// A Clock is owned by a single node goroutine and is not safe for concurrent
// use; synchronization points (collectives, parallel file-system operations)
// exchange timestamps explicitly and combine them with SyncTo.
package vtime

import "fmt"

// Clock is a per-node virtual clock measured in seconds.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds. Negative d is ignored so
// that cost formulas never move time backwards.
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// SyncTo moves the clock forward to t if t is later than the current time.
// It is used at synchronization points: after a barrier every participant
// calls SyncTo with the maximum timestamp observed across the group.
func (c *Clock) SyncTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset sets the clock back to zero. Benchmark harnesses call it between
// measured phases.
func (c *Clock) Reset() { c.now = 0 }

func (c *Clock) String() string { return fmt.Sprintf("vt=%.6fs", c.now) }

// TransferTime returns the time to move n bytes at bw bytes/second.
// A non-positive bandwidth models an infinitely fast resource.
func TransferTime(n int64, bw float64) float64 {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return float64(n) / bw
}

// Max returns the larger of a and b.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MaxOf returns the maximum of a non-empty slice of timestamps.
func MaxOf(ts []float64) float64 {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
