// Package replicated implements the paper's §4.2 facility for I/O on local
// data that is replicated on every node of a distributed-memory machine:
// "The pC++ compiler automatically transforms programs to insure that local
// data is output and input by only one node. For input, the data is
// broadcast to the rest of the nodes after it is read."
//
// Every node calls the same operations SPMD-style; node 0 performs the
// actual file I/O, writes are de-duplicated, and reads are broadcast.
package replicated

import (
	"fmt"

	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
)

// File is a node-replicated view of one file: a sequential read/write
// cursor whose operations hit storage exactly once regardless of the node
// count.
type File struct {
	node   *machine.Node
	f      *pfs.File
	cursor int64
}

// Open opens (creating/truncating if trunc) the named file on all nodes.
func Open(node *machine.Node, name string, trunc bool) (*File, error) {
	f, err := node.Open(name, trunc)
	if err != nil {
		return nil, fmt.Errorf("replicated: %w", err)
	}
	// Open is collective: no node may touch the file until every node holds
	// it (otherwise a fast node's write could race a slow node's
	// truncate-on-open).
	if err := node.Comm().Barrier(); err != nil {
		f.Close()
		return nil, fmt.Errorf("replicated: open sync: %w", err)
	}
	return &File{node: node, f: f}, nil
}

// Write appends p once (from node 0); all nodes advance their cursor and
// synchronize.
func (r *File) Write(p []byte) error {
	status := []byte{1}
	if r.node.Rank() == 0 {
		if err := r.f.WriteAt(p, r.cursor); err != nil {
			status = []byte(err.Error())
		}
	}
	status, err := r.node.Comm().Bcast(0, status)
	if err != nil {
		return fmt.Errorf("replicated: write sync: %w", err)
	}
	if len(status) != 1 || status[0] != 1 {
		return fmt.Errorf("replicated: write: %s", status)
	}
	r.cursor += int64(len(p))
	return nil
}

// Read reads the next n bytes once (on node 0) and broadcasts them to every
// node, as the pC++ compiler transformation does for input of replicated
// data.
func (r *File) Read(n int) ([]byte, error) {
	var frame []byte
	if r.node.Rank() == 0 {
		buf := make([]byte, n)
		if err := r.f.ReadAt(buf, r.cursor); err != nil {
			frame = append([]byte{0}, err.Error()...)
		} else {
			frame = append([]byte{1}, buf...)
		}
	}
	frame, err := r.node.Comm().Bcast(0, frame)
	if err != nil {
		return nil, fmt.Errorf("replicated: read sync: %w", err)
	}
	if len(frame) == 0 || frame[0] != 1 {
		return nil, fmt.Errorf("replicated: read: %s", frame[1:])
	}
	r.cursor += int64(n)
	return frame[1:], nil
}

// SeekTo sets the cursor on every node.
func (r *File) SeekTo(off int64) { r.cursor = off }

// Offset returns the current cursor.
func (r *File) Offset() int64 { return r.cursor }

// Close releases the handle on every node.
func (r *File) Close() error { return r.f.Close() }
