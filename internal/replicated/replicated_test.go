package replicated

import (
	"bytes"
	"fmt"
	"testing"

	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

func TestWriteOnceReadBroadcast(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: 4, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			f, err := Open(n, "params", true)
			if err != nil {
				return err
			}
			defer f.Close()
			// Every node calls Write with the same replicated data.
			if err := f.Write([]byte("alpha=1\n")); err != nil {
				return err
			}
			if err := f.Write([]byte("beta=2\n")); err != nil {
				return err
			}
			// Read it back from the top on all nodes.
			f.SeekTo(0)
			got, err := f.Read(16)
			if err != nil {
				return err
			}
			if string(got) != "alpha=1\nbeta=2\n\x00"[:16] && string(got) != "alpha=1\nbeta=2\n" {
				// 15 bytes written; 16th read fails → adjust below.
				return fmt.Errorf("unexpected read %q", got)
			}
			return nil
		})
	// Reading 16 bytes of a 15-byte file must fail on node 0 and propagate.
	if err == nil {
		t.Fatal("overlong read succeeded")
	}

	// The write side must still have produced exactly one copy.
	img, ierr := fs.Image("params")
	if ierr != nil {
		t.Fatal(ierr)
	}
	if string(img) != "alpha=1\nbeta=2\n" {
		t.Fatalf("file image %q — data duplicated or lost", img)
	}
}

func TestReadBroadcastsSameBytes(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	results := make([][]byte, 3)
	_, err := machine.Run(machine.Config{NProcs: 3, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			f, err := Open(n, "data", true)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := f.Write([]byte("0123456789")); err != nil {
				return err
			}
			f.SeekTo(2)
			got, err := f.Read(5)
			if err != nil {
				return err
			}
			results[n.Rank()] = got
			if f.Offset() != 7 {
				return fmt.Errorf("offset %d, want 7", f.Offset())
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range results {
		if !bytes.Equal(b, []byte("23456")) {
			t.Fatalf("rank %d read %q", r, b)
		}
	}
}
