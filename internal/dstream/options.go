package dstream

import (
	"fmt"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
)

// Strategy selects the collective data path a stream uses to move record
// data between the nodes and the file. It generalizes the paper's
// funnelled-vs-parallel pair (§4.1) with the two-phase collective buffering
// of the ViPIOS/MPI-IO line of work: shuffle to a few aggregators over the
// interconnect, then issue large stripe-aligned transfers.
type Strategy uint8

const (
	// StrategyAuto picks per record: funnelled for small collections,
	// parallel for large ones — the paper's heuristic (never two-phase, so
	// existing workloads keep their exact cost profile unless they opt in).
	StrategyAuto Strategy = iota
	// StrategyFunnel routes metadata and data through node 0's per-node
	// block: one parallel append total.
	StrategyFunnel
	// StrategyParallel writes metadata and data with separate parallel
	// operations, every node hitting the PFS directly.
	StrategyParallel
	// StrategyTwoPhase shuffles encoded element payloads to K aggregator
	// ranks (K from the PFS stripe factor) which each assemble one
	// stripe-aligned contiguous extent, so the file sees K large transfers
	// instead of NProcs small ones. On input streams the aggregators refill
	// extents once and scatter slices to the consumers.
	StrategyTwoPhase
)

// String returns the flag-friendly name of the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyFunnel:
		return "funnel"
	case StrategyParallel:
		return "parallel"
	case StrategyTwoPhase:
		return "twophase"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// ParseStrategy maps a flag-friendly name back to its Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "auto", "":
		return StrategyAuto, nil
	case "funnel":
		return StrategyFunnel, nil
	case "parallel":
		return StrategyParallel, nil
	case "twophase", "two-phase":
		return StrategyTwoPhase, nil
	}
	return StrategyAuto, fmt.Errorf("dstream: unknown strategy %q (want auto|funnel|parallel|twophase)", name)
}

// strategy resolves the effective strategy for a record over nElems
// elements: an explicit Strategy wins; otherwise the legacy MetaPolicy is
// honored; otherwise the paper's size heuristic decides.
func (o Options) strategy(nElems int) Strategy {
	if o.Strategy != StrategyAuto {
		return o.Strategy
	}
	switch o.Meta {
	case MetaFunnel:
		return StrategyFunnel
	case MetaParallel:
		return StrategyParallel
	}
	if nElems < o.funnelThreshold() {
		return StrategyFunnel
	}
	return StrategyParallel
}

// Option is one functional setting for Open/OpenInput — the composable
// replacement for the Options struct literal (which the deprecated
// OutputOpts/InputOpts constructors still accept).
type Option func(*Options)

// WithStrategy selects the collective data path (write side: funnel,
// parallel, or two-phase; input side: two-phase enables aggregated refill).
func WithStrategy(s Strategy) Option {
	return func(o *Options) { o.Strategy = s }
}

// WithAsync turns output writes into write-behind operations: Write still
// rendezvouses but returns without waiting for the disk; Close (or Drain)
// waits for everything to land.
func WithAsync() Option {
	return func(o *Options) { o.Async = true }
}

// WithReadAhead sets the input-stream prefetch depth: up to n upcoming
// records are fetched in the background while the consumer drains the
// current one, so Read stalls only for the un-overlapped remainder of the
// transfer — the read-side mirror of WithAsync. Zero disables prefetching.
func WithReadAhead(n int) Option {
	return func(o *Options) { o.ReadAhead = n }
}

// WithAppend opens an output stream on an existing d/stream file and adds
// records after the ones already present instead of truncating.
func WithAppend() Option {
	return func(o *Options) { o.Append = true }
}

// WithStrict enforces the full Figure 2 contract on input streams: every
// array of a record must be extracted before the next read, skip, or close.
func WithStrict() Option {
	return func(o *Options) { o.Strict = true }
}

// WithFunnelThreshold overrides the element count below which the Auto
// strategy funnels (DefaultFunnelThreshold otherwise).
func WithFunnelThreshold(n int) Option {
	return func(o *Options) { o.FunnelThreshold = n }
}

// WithAggregators overrides the aggregator count of the two-phase strategy.
// Zero (the default) derives K from the file's stripe factor.
func WithAggregators(k int) Option {
	return func(o *Options) { o.Aggregators = k }
}

// WithChannelWindow sets the per-consumer credit window of a
// stream-to-stream channel in bytes (DefaultChannelWindow otherwise): a
// producer keeps at most n unacknowledged frame bytes in flight toward
// each consumer before blocking for credit. Channel opens only.
func WithChannelWindow(n int) Option {
	return func(o *Options) { o.ChannelWindow = n }
}

// WithOptions merges a pre-built Options value, for callers migrating from
// the struct-literal constructors.
func WithOptions(opts Options) Option {
	return func(o *Options) { *o = opts }
}

// WithFileSystem opens the stream's file on fs instead of the machine's own
// file system — the hook a daemon session uses to point a stream at remote
// storage. All ranks of the collective open must name the same file system.
func WithFileSystem(fs *pfs.FileSystem) Option {
	return func(o *Options) { o.FS = fs }
}

// openFile resolves the stream's file: the injected file system when one is
// set, the machine's otherwise.
func openFile(node *machine.Node, opts Options, name string, trunc bool) (*pfs.File, error) {
	if opts.FS != nil {
		return opts.FS.Open(name, node.Size(), node.Rank(), node.Clock(), trunc)
	}
	return node.Open(name, trunc)
}

// buildOptions folds a functional-option list over the zero value.
func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Open opens an output d/stream for collections distributed by d, backed by
// the named file. Settings are passed as functional options:
//
//	s, err := dstream.Open(node, d, "particles",
//	    dstream.WithStrategy(dstream.StrategyTwoPhase),
//	    dstream.WithAsync())
//
// Every node of the machine must make the matching call (open is
// collective). The zero-option call gives the paper's defaults.
func Open(node *machine.Node, d *distr.Distribution, name string, opts ...Option) (*OStream, error) {
	return openOutput(node, d, name, buildOptions(opts))
}

// OpenInput opens an input d/stream for collections distributed by d,
// backed by the named file, with functional options (notably WithStrict and
// WithStrategy(StrategyTwoPhase) for aggregated refill). As with Open, the
// call is collective.
func OpenInput(node *machine.Node, d *distr.Distribution, name string, opts ...Option) (*IStream, error) {
	return openInput(node, d, name, buildOptions(opts))
}
