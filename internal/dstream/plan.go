package dstream

import (
	"fmt"
	"strconv"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/plan"
)

// Planner integration. Under the full-auto configuration (no explicit
// strategy, no legacy Meta policy, no funnel-threshold override) a stream
// carries a plan.Planner: a closed-form cost model over the node's
// platform profile and the file's stripe layout that picks strategy,
// aggregator fan-in, and read-ahead depth per record, re-planning online
// when observed cost diverges from the estimate.
//
// Collective-consistency contract: every planner input is rank-identical —
// the record geometry comes from an Allreduce (writes) or node 0's
// metadata broadcast (reads), and the observed costs are virtual-clock
// deltas between points where a synchronizing collective has equalized the
// group's clocks. Every rank therefore computes the identical plan chain
// with no extra agreement round; PlanSignature exposes the chain's hash so
// harnesses can verify no switch ever split the group.

// plannerEnabled reports whether the cost-model planner owns the strategy
// choice. Any explicit setting — a fixed Strategy, the deprecated Meta
// policy, or a FunnelThreshold override — keeps the paper's static
// heuristic, so opted-in configurations keep their exact cost profile.
func (o Options) plannerEnabled() bool {
	return o.Strategy == StrategyAuto && o.Meta == MetaAuto && o.FunnelThreshold == 0
}

// streamDir names the open primitive an Options value is validated for, so
// direction-inapplicable settings fail loudly instead of passing silently.
type streamDir uint8

const (
	dirOutput streamDir = iota
	dirInput
	dirChanSend
	dirChanRecv
)

func (d streamDir) String() string {
	switch d {
	case dirOutput:
		return "Open"
	case dirInput:
		return "OpenInput"
	case dirChanSend:
		return "OpenChannel"
	case dirChanRecv:
		return "OpenChannelInput"
	}
	return fmt.Sprintf("streamDir(%d)", uint8(d))
}

// validateFor rejects option values the named open primitive would
// otherwise misread silently: negative values indistinguishable from the
// zero value (a negative threshold used to fall back to the default, a
// negative aggregator count to the stripe factor, a negative read-ahead to
// synchronous reads), and options that belong to the other direction
// entirely (read-ahead on an output stream, append or write-behind on an
// input stream, any file-path setting on an interconnect-only channel).
func (o Options) validateFor(dir streamDir) error {
	if o.FunnelThreshold < 0 {
		return fmt.Errorf("dstream: negative funnel threshold %d", o.FunnelThreshold)
	}
	if o.Aggregators < 0 {
		return fmt.Errorf("dstream: negative aggregator count %d", o.Aggregators)
	}
	if o.ReadAhead < 0 {
		return fmt.Errorf("dstream: negative read-ahead depth %d", o.ReadAhead)
	}
	if o.ChannelWindow < 0 {
		return fmt.Errorf("dstream: negative channel window %d", o.ChannelWindow)
	}
	reject := func(opt string) error {
		return fmt.Errorf("dstream: option %s does not apply to %s", opt, dir)
	}
	switch dir {
	case dirOutput:
		if o.ReadAhead > 0 {
			return reject("WithReadAhead")
		}
		if o.Strict {
			return reject("WithStrict")
		}
		if o.ChannelWindow > 0 {
			return reject("WithChannelWindow")
		}
	case dirInput:
		if o.Append {
			return reject("WithAppend")
		}
		if o.Async {
			return reject("WithAsync")
		}
		if o.ChannelWindow > 0 {
			return reject("WithChannelWindow")
		}
	case dirChanSend, dirChanRecv:
		// Channels live on the interconnect: no file, no collective data
		// path, no prefetch pipeline, no storage override.
		if o.Append {
			return reject("WithAppend")
		}
		if o.Async {
			return reject("WithAsync")
		}
		if o.ReadAhead > 0 {
			return reject("WithReadAhead")
		}
		if o.Strategy != StrategyAuto {
			return reject("WithStrategy")
		}
		if o.Aggregators > 0 {
			return reject("WithAggregators")
		}
		if o.FunnelThreshold > 0 {
			return reject("WithFunnelThreshold")
		}
		if o.Meta != MetaAuto {
			return reject("a MetaPolicy")
		}
		if o.FS != nil {
			return reject("WithFileSystem")
		}
		if dir == dirChanSend && o.Strict {
			return reject("WithStrict")
		}
	}
	return nil
}

// fromPlanStrategy maps the planner's strategy space onto the stream's.
func fromPlanStrategy(s plan.Strategy) Strategy {
	switch s {
	case plan.Funnel:
		return StrategyFunnel
	case plan.TwoPhase:
		return StrategyTwoPhase
	}
	return StrategyParallel
}

// planMetrics is the dstream_plan_* handle set, created once at open so
// the per-record bookkeeping allocates nothing.
type planMetrics struct {
	records  [3]*dsmon.Counter // indexed by plan.Strategy
	switches *dsmon.Counter
	estimate *dsmon.Histogram
	observed *dsmon.Histogram
	sig      *dsmon.Gauge
	depth    *dsmon.Gauge
}

func newPlanMetrics(met *streamMetrics, rank int) *planMetrics {
	reg := met.mon.Registry()
	pm := &planMetrics{
		switches: reg.Counter("dstream_plan_switches_total",
			"records where the planner changed strategy mid-stream"),
		estimate: reg.Histogram("dstream_plan_estimate_seconds",
			"planner cost estimate per planned record (calibrated, virtual seconds)", dsmon.LatencyBuckets),
		observed: reg.Histogram("dstream_plan_observed_seconds",
			"observed virtual cost per planned record", dsmon.LatencyBuckets),
		sig: reg.Gauge("dstream_plan_sig",
			"low 32 bits of the rank's plan-chain signature (full value via PlanSignature)",
			"rank", strconv.Itoa(rank)),
		depth: reg.Gauge("dstream_plan_readahead_depth",
			"read-ahead depth the planner currently asks for"),
	}
	for s := plan.Strategy(0); s < 3; s++ {
		pm.records[s] = reg.Counter("dstream_plan_records_total",
			"records planned, by chosen strategy", "strategy", s.String())
	}
	return pm
}

// note records one decision into the plan metric families.
func (pm *planMetrics) note(p *plan.Planner, d plan.Decision) {
	pm.records[d.Strategy].Inc()
	pm.estimate.Observe(d.Estimate)
	if d.Switched {
		pm.switches.Inc()
	}
	pm.sig.Set(float64(uint32(p.Signature())))
}

// planSwitchSpan drops a zero-length marker span at a plan switch so
// critical-path attribution sees the re-planning event on the timeline.
func (s *stream) planSwitchSpan(d plan.Decision) {
	if rec := s.met.mon.Recorder(); rec != nil {
		now := s.node.Clock().Now()
		rec.AddSpan(s.node.Rank(), "dstream", "plan.switch "+s.name+" -> "+d.Strategy.String(), now, now)
	}
}

// newStreamPlanner builds the planner a full-auto stream carries: the cost
// model is the node's platform profile crossed with the stream file's
// stripe layout.
func (s *stream) newStreamPlanner() *plan.Planner {
	return plan.New(plan.Model{Prof: s.node.Profile(), Layout: s.f.Layout()})
}

// metaBytesFor is the record front-matter size of this stream's
// distribution: header, descriptor (cached — it never changes between
// records), and size table.
func (s *stream) metaBytesFor(descLen int) int64 {
	return enc.RecordHeaderLen + int64(descLen) + int64(4*s.dist.N)
}

// PlanSignature returns the FNV-1a hash of the planner's decision chain on
// this rank (0 when the planner is off). All ranks of one stream must
// agree on it at any record boundary; a mismatch means a plan switch broke
// collective consistency.
func (s *OStream) PlanSignature() uint64 {
	if s.planner == nil {
		return 0
	}
	return s.planner.Signature()
}

// PlanSwitches returns how many records re-planned onto a different
// strategy (0 when the planner is off).
func (s *OStream) PlanSwitches() int64 {
	if s.planner == nil {
		return 0
	}
	return s.planner.Switches()
}

// PlanSignature is the input-side mirror of OStream.PlanSignature.
func (s *IStream) PlanSignature() uint64 {
	if s.planner == nil {
		return 0
	}
	return s.planner.Signature()
}

// PlanSwitches is the input-side mirror of OStream.PlanSwitches.
func (s *IStream) PlanSwitches() int64 {
	if s.planner == nil {
		return 0
	}
	return s.planner.Switches()
}
