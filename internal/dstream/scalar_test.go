package dstream

import (
	"fmt"
	"math/rand"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// everyScalar carries one field of each Scalar-constraint type, covering
// the full set of built-in insertion operators the paper defines "for each
// of the fundamental pC++ types".
type everyScalar struct {
	B   bool
	I   int
	I8  int8
	I16 int16
	I32 int32
	I64 int64
	U8  uint8
	U16 uint16
	U32 uint32
	U64 uint64
	F32 float32
	F64 float64
	S   string
}

func randomScalars(rng *rand.Rand) everyScalar {
	return everyScalar{
		B:   rng.Intn(2) == 0,
		I:   int(rng.Int63()) - (1 << 40),
		I8:  int8(rng.Intn(256) - 128),
		I16: int16(rng.Intn(1<<16) - 1<<15),
		I32: rng.Int31() - (1 << 30),
		I64: rng.Int63() - (1 << 62),
		U8:  uint8(rng.Intn(256)),
		U16: uint16(rng.Intn(1 << 16)),
		U32: rng.Uint32(),
		U64: rng.Uint64(),
		F32: rng.Float32(),
		F64: rng.NormFloat64(),
		S:   fmt.Sprintf("s-%x", rng.Uint64()),
	}
}

// TestEveryScalarFieldRoundTrip drives InsertField/ExtractField through all
// thirteen fundamental types in one record (13 interleaved arrays).
func TestEveryScalarFieldRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const n = 9
	rng := rand.New(rand.NewSource(77))
	want := make([]everyScalar, n)
	for i := range want {
		want[i] = randomScalars(rng)
	}
	run(t, 3, fs, func(nd *machine.Node) error {
		d := mustLocal(t, n, 3, distr.Cyclic, 0)
		c, err := collection.New[everyScalar](nd, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *everyScalar) { *e = want[g] })
		s, err := Open(nd, d, "scalars")
		if err != nil {
			return err
		}
		ins := []func() error{
			func() error { return InsertField(s, c, func(e *everyScalar) bool { return e.B }) },
			func() error { return InsertField(s, c, func(e *everyScalar) int { return e.I }) },
			func() error { return InsertField(s, c, func(e *everyScalar) int8 { return e.I8 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) int16 { return e.I16 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) int32 { return e.I32 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) int64 { return e.I64 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) uint8 { return e.U8 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) uint16 { return e.U16 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) uint32 { return e.U32 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) uint64 { return e.U64 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) float32 { return e.F32 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) float64 { return e.F64 }) },
			func() error { return InsertField(s, c, func(e *everyScalar) string { return e.S }) },
		}
		for _, f := range ins {
			if err := f(); err != nil {
				return err
			}
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		back, err := collection.New[everyScalar](nd, d)
		if err != nil {
			return err
		}
		in, err := OpenInput(nd, d, "scalars")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if got := in.Arrays(); got != len(ins) {
			return fmt.Errorf("Arrays = %d, want %d", got, len(ins))
		}
		ext := []func() error{
			func() error { return ExtractField(in, back, func(e *everyScalar) *bool { return &e.B }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *int { return &e.I }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *int8 { return &e.I8 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *int16 { return &e.I16 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *int32 { return &e.I32 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *int64 { return &e.I64 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *uint8 { return &e.U8 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *uint16 { return &e.U16 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *uint32 { return &e.U32 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *uint64 { return &e.U64 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *float32 { return &e.F32 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *float64 { return &e.F64 }) },
			func() error { return ExtractField(in, back, func(e *everyScalar) *string { return &e.S }) },
		}
		for _, f := range ext {
			if err := f(); err != nil {
				return err
			}
		}
		var bad error
		back.Apply(func(g int, e *everyScalar) {
			if *e != want[g] {
				bad = fmt.Errorf("global %d: got %+v want %+v", g, *e, want[g])
			}
		})
		return bad
	})
}

// TestInt64SliceFieldRoundTrip covers the remaining typed slice helper.
func TestInt64SliceFieldRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	type rec struct{ V []int64 }
	run(t, 2, fs, func(nd *machine.Node) error {
		d := mustLocal(t, 7, 2, distr.Block, 0)
		c, err := collection.New[rec](nd, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *rec) {
			for i := 0; i <= g; i++ {
				e.V = append(e.V, int64(g*100+i))
			}
		})
		s, err := Open(nd, d, "i64s")
		if err != nil {
			return err
		}
		if err := InsertInt64Slice(s, c, func(e *rec) []int64 { return e.V }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		back, err := collection.New[rec](nd, d)
		if err != nil {
			return err
		}
		in, err := OpenInput(nd, d, "i64s")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := ExtractInt64Slice(in, back, func(e *rec) *[]int64 { return &e.V }); err != nil {
			return err
		}
		var bad error
		back.Apply(func(g int, e *rec) {
			if len(e.V) != g+1 || (g >= 0 && e.V[g] != int64(g*101)) {
				bad = fmt.Errorf("global %d: %v", g, e.V)
			}
		})
		return bad
	})
}
