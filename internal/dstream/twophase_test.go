package dstream

import (
	"bytes"
	"fmt"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

func TestStripeCuts(t *testing.T) {
	// Interior cuts land on stripe boundaries of the file offsets.
	cuts := stripeCuts(100, 1000, 4, 256)
	if cuts[0] != 0 || cuts[4] != 1000 {
		t.Fatalf("cuts endpoints: %v", cuts)
	}
	for j := 1; j < 4; j++ {
		if cuts[j] != 0 && cuts[j] != 1000 && (100+cuts[j])%256 != 0 {
			t.Errorf("cut %d = %d: file offset %d not stripe aligned", j, cuts[j], 100+cuts[j])
		}
		if cuts[j] < cuts[j-1] {
			t.Errorf("cuts not monotone: %v", cuts)
		}
	}
	// A record smaller than one stripe cell degenerates to one extent.
	cuts = stripeCuts(0, 10, 4, 4096)
	want := []int64{0, 10, 10, 10, 10}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("tiny record cuts = %v, want %v", cuts, want)
		}
	}
	// Zero unit: plain even division, still monotone and exhaustive.
	cuts = stripeCuts(0, 100, 3, 0)
	if cuts[0] != 0 || cuts[1] != 33 || cuts[2] != 66 || cuts[3] != 100 {
		t.Fatalf("unit-free cuts = %v", cuts)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Strategy
	}{{"auto", StrategyAuto}, {"", StrategyAuto}, {"funnel", StrategyFunnel},
		{"parallel", StrategyParallel}, {"twophase", StrategyTwoPhase}, {"two-phase", StrategyTwoPhase}} {
		got, err := ParseStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", c.in, got, err)
		}
		if c.in != "" && c.in != "two-phase" && got.String() != c.in {
			t.Errorf("Strategy(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus name")
	}
}

// strategyImage writes two records (one interleaved group of two arrays,
// then a single-array group with some zero-length elements) under the given
// options onto a striped store and returns the resulting file image.
func strategyImage(t *testing.T, nprocs, nElems int, mode distr.Mode, bsize int, opts ...Option) []byte {
	t.Helper()
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
	run(t, nprocs, fs, func(n *machine.Node) error {
		d, err := distr.New(nElems, nprocs, mode, bsize)
		if err != nil {
			return err
		}
		s, err := Open(n, d, "f", opts...)
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[plist](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *plist) { *e = mkPlist(g) })
		if err := Insert[plist](s, c); err != nil {
			return err
		}
		if err := Insert[plist](s, c); err != nil { // interleaved second array
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		// Second record: every third element encodes nothing at all.
		err = s.InsertFunc(func(l int, e *Encoder) {
			g := d.GlobalIndex(n.Rank(), l)
			if g%3 == 0 {
				return
			}
			e.Int64(int64(g))
		})
		if err != nil {
			return err
		}
		return s.Write()
	})
	img, err := fs.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestCrossStrategyByteIdentity: funnel × parallel × two-phase × async must
// produce identical file images for every distribution mode, uneven element
// counts, and zero-length elements. The strategies may move bytes through
// different ranks, but the record format is one.
func TestCrossStrategyByteIdentity(t *testing.T) {
	configs := []struct {
		nprocs, nElems int
		mode           distr.Mode
		bsize          int
	}{
		{4, 23, distr.Block, 0},       // uneven block split
		{4, 23, distr.Cyclic, 0},      // cyclic: file order ≠ global order
		{4, 23, distr.BlockCyclic, 3}, // block-cyclic with remainder
		{3, 7, distr.Block, 0},        // fewer elements than some stripes
	}
	strategies := []struct {
		name string
		opts []Option
	}{
		{"funnel", []Option{WithStrategy(StrategyFunnel)}},
		{"parallel", []Option{WithStrategy(StrategyParallel)}},
		{"twophase", []Option{WithStrategy(StrategyTwoPhase)}},
		{"twophase-async", []Option{WithStrategy(StrategyTwoPhase), WithAsync()}},
		{"twophase-k2", []Option{WithStrategy(StrategyTwoPhase), WithAggregators(2)}},
		{"funnel-async", []Option{WithStrategy(StrategyFunnel), WithAsync()}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-n%d-p%d", cfg.mode, cfg.nElems, cfg.nprocs), func(t *testing.T) {
			ref := strategyImage(t, cfg.nprocs, cfg.nElems, cfg.mode, cfg.bsize, strategies[0].opts...)
			if len(ref) == 0 {
				t.Fatal("reference image empty")
			}
			for _, s := range strategies[1:] {
				img := strategyImage(t, cfg.nprocs, cfg.nElems, cfg.mode, cfg.bsize, s.opts...)
				if !bytes.Equal(img, ref) {
					t.Errorf("%s image differs from funnel reference (%d vs %d bytes)", s.name, len(img), len(ref))
				}
			}
		})
	}
}

// TestTwoPhaseRoundTrip: a record written two-phase reads back exactly —
// through the two-phase refill path and the direct path, sorted and
// unsorted, including a reader with a different distribution (so phase two
// composes with the element redistribution).
func TestTwoPhaseRoundTrip(t *testing.T) {
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(4, 512))
	const nElems = 23
	run(t, 4, fs, func(n *machine.Node) error {
		d := mustDist(t, nElems, 4, distr.Block, 0)
		return writePlists(n, d, "f", Options{Strategy: StrategyTwoPhase})
	})
	for _, rd := range []struct {
		name   string
		mode   distr.Mode
		opts   []Option
		sorted bool
	}{
		{"same-layout-twophase", distr.Block, []Option{WithStrategy(StrategyTwoPhase)}, true},
		{"cyclic-reader-twophase", distr.Cyclic, []Option{WithStrategy(StrategyTwoPhase)}, true},
		{"cyclic-reader-direct", distr.Cyclic, nil, true},
		{"unsorted-twophase", distr.Block, []Option{WithStrategy(StrategyTwoPhase)}, false},
	} {
		rd := rd
		t.Run(rd.name, func(t *testing.T) {
			run(t, 4, fs, func(n *machine.Node) error {
				d := mustDist(t, nElems, 4, rd.mode, 0)
				s, err := OpenInput(n, d, "f", rd.opts...)
				if err != nil {
					return err
				}
				defer s.Close()
				if rd.sorted {
					err = s.Read()
				} else {
					err = s.UnsortedRead()
				}
				if err != nil {
					return err
				}
				c, err := collection.New[plist](n, d)
				if err != nil {
					return err
				}
				if err := Extract[plist](s, c); err != nil {
					return err
				}
				if !rd.sorted {
					return nil // counts checked by Extract; order unspecified
				}
				var bad error
				c.Apply(func(g int, e *plist) {
					if want := mkPlist(g); bad == nil && !plistEqual(*e, want) {
						bad = fmt.Errorf("element %d mismatch after round trip", g)
					}
				})
				return bad
			})
		})
	}
}

// TestTwoPhaseFlatBackend: without stripe geometry the strategy degrades to
// K = profile I/O channels and still round-trips.
func TestTwoPhaseFlatBackend(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge()) // 4 I/O channels → K = 4
	run(t, 6, fs, func(n *machine.Node) error {
		d := mustDist(t, 17, 6, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{Strategy: StrategyTwoPhase}); err != nil {
			return err
		}
		c, err := readPlists(n, d, "f", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if want := mkPlist(g); bad == nil && !plistEqual(*e, want) {
				bad = fmt.Errorf("element %d mismatch", g)
			}
		})
		return bad
	})
}

// TestOpenMatchesLegacyConstructors: the functional-options constructors
// and the deprecated struct-literal ones configure identical streams.
func TestOpenMatchesLegacyConstructors(t *testing.T) {
	fs1 := pfs.NewMemFS(vtime.Challenge())
	fs2 := pfs.NewMemFS(vtime.Challenge())
	legacy := Options{Meta: MetaParallel, Async: true, FunnelThreshold: 9}
	run(t, 4, fs1, func(n *machine.Node) error {
		d := mustDist(t, 23, 4, distr.Block, 0)
		return writePlists(n, d, "f", legacy)
	})
	run(t, 4, fs2, func(n *machine.Node) error {
		d := mustDist(t, 23, 4, distr.Block, 0)
		s, err := Open(n, d, "f", WithOptions(legacy))
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[plist](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *plist) { *e = mkPlist(g) })
		if err := Insert[plist](s, c); err != nil {
			return err
		}
		return s.Write()
	})
	img1, err := fs1.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	img2, err := fs2.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("Open(WithOptions(legacy)) and OutputOpts(legacy) produced different images")
	}
}
