package dstream

import (
	"errors"
	"fmt"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestMultipleStreamsOneFile reproduces the paper's §4.1 note: "Multiple
// d/streams may be set up and connected to the same file if collections
// with differing distributions and alignments are to be output." Two output
// streams with different distributions append alternating records to one
// file; on input, two streams over the same file each read their records
// and Skip the other's.
func TestMultipleStreamsOneFile(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const file = "shared"
	type small struct{ V int64 }
	type big struct{ W float64 }

	run(t, 3, fs, func(n *machine.Node) error {
		dSmall := mustLocal(t, 7, 3, distr.Cyclic, 0)
		dBig := mustLocal(t, 20, 3, distr.Block, 0)

		cs, err := collection.New[small](n, dSmall)
		if err != nil {
			return err
		}
		cs.Apply(func(g int, e *small) { e.V = int64(g) })
		cb, err := collection.New[big](n, dBig)
		if err != nil {
			return err
		}
		cb.Apply(func(g int, e *big) { e.W = float64(g) / 4 })

		sSmall, err := Open(n, dSmall, file)
		if err != nil {
			return err
		}
		sBig, err := Open(n, dBig, file)
		if err != nil {
			return err
		}
		// Alternate records: small, big, small.
		if err := InsertField(sSmall, cs, func(e *small) int64 { return e.V }); err != nil {
			return err
		}
		if err := sSmall.Write(); err != nil {
			return err
		}
		if err := InsertField(sBig, cb, func(e *big) float64 { return e.W }); err != nil {
			return err
		}
		if err := sBig.Write(); err != nil {
			return err
		}
		if err := InsertField(sSmall, cs, func(e *small) int64 { return e.V * 10 }); err != nil {
			return err
		}
		if err := sSmall.Write(); err != nil {
			return err
		}
		if err := sSmall.Close(); err != nil {
			return err
		}
		return sBig.Close()
	})

	run(t, 3, fs, func(n *machine.Node) error {
		dSmall := mustLocal(t, 7, 3, distr.Cyclic, 0)
		dBig := mustLocal(t, 20, 3, distr.Block, 0)
		cs, err := collection.New[small](n, dSmall)
		if err != nil {
			return err
		}
		cb, err := collection.New[big](n, dBig)
		if err != nil {
			return err
		}

		inSmall, err := OpenInput(n, dSmall, file)
		if err != nil {
			return err
		}
		defer inSmall.Close()
		inBig, err := OpenInput(n, dBig, file)
		if err != nil {
			return err
		}
		defer inBig.Close()

		// Stream-select by peeking at the element count.
		ne, err := inSmall.NextElems()
		if err != nil || ne != 7 {
			return fmt.Errorf("peek 1: %d, %v", ne, err)
		}
		if err := inSmall.Read(); err != nil {
			return err
		}
		if err := ExtractField(inSmall, cs, func(e *small) *int64 { return &e.V }); err != nil {
			return err
		}
		var bad error
		cs.Apply(func(g int, e *small) {
			if e.V != int64(g) {
				bad = fmt.Errorf("record 1 global %d = %d", g, e.V)
			}
		})
		if bad != nil {
			return bad
		}

		// The big stream skips the small record it already passed? No: each
		// stream has its own cursor from the top, so inBig must skip rec 1.
		if err := inBig.Skip(); err != nil {
			return err
		}
		if err := inBig.Read(); err != nil {
			return err
		}
		if err := ExtractField(inBig, cb, func(e *big) *float64 { return &e.W }); err != nil {
			return err
		}
		cb.Apply(func(g int, e *big) {
			if e.W != float64(g)/4 {
				bad = fmt.Errorf("record 2 global %d = %v", g, e.W)
			}
		})
		if bad != nil {
			return bad
		}

		// Small stream skips the big record and reads its second one.
		if err := inSmall.Skip(); err != nil {
			return err
		}
		if err := inSmall.Read(); err != nil {
			return err
		}
		if err := ExtractField(inSmall, cs, func(e *small) *int64 { return &e.V }); err != nil {
			return err
		}
		cs.Apply(func(g int, e *small) {
			if e.V != int64(g*10) {
				bad = fmt.Errorf("record 3 global %d = %d", g, e.V)
			}
		})
		if bad != nil {
			return bad
		}
		if inSmall.More() {
			return fmt.Errorf("small stream has unexpected further records")
		}
		return nil
	})
}

func TestSkipPastEndRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{}); err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Skip(); err != nil {
			return err
		}
		if err := s.Skip(); err == nil {
			return fmt.Errorf("skip past end accepted")
		}
		return nil
	})
}

func TestSkipInvalidatesPendingExtracts(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		// Two records.
		if err := func() error {
			s, err := Open(n, d, "f")
			if err != nil {
				return err
			}
			defer s.Close()
			for i := 0; i < 2; i++ {
				if err := s.InsertFunc(func(l int, e *Encoder) { e.Int64(int64(i)) }); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			return nil
		}(); err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err != nil {
			return err
		}
		if err := s.Skip(); err != nil { // abandons record 2... wait, record 1's data
			return err
		}
		// After Skip, extracting is illegal until the next Read.
		if err := s.ExtractFunc(func(int, *Decoder) {}); err == nil {
			return fmt.Errorf("extract after skip accepted")
		}
		return nil
	})
}

// TestAlignedCollectionRoundTrip drives a non-identity alignment through
// the whole pipeline: the alignment is stored in the record header and
// honoured on the read side.
func TestAlignedCollectionRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const n, templateN = 10, 40
	run(t, 3, fs, func(nd *machine.Node) error {
		// Elements map to template cells 3 + 2i.
		al := distr.Alignment{Offset: 3, Stride: 2}
		wd, err := distr.NewAligned(n, templateN, 3, distr.Cyclic, 0, al)
		if err != nil {
			return err
		}
		c, err := collection.New[plist](nd, wd)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *plist) { *e = mkPlist(g) })
		s, err := Open(nd, wd, "aligned")
		if err != nil {
			return err
		}
		if err := Insert[plist](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		// Read with an identity-aligned BLOCK distribution: both the
		// alignment and the mode differ, so the sorted read must route.
		rd, err := distr.New(n, 3, distr.Block, 0)
		if err != nil {
			return err
		}
		back, err := collection.New[plist](nd, rd)
		if err != nil {
			return err
		}
		in, err := OpenInput(nd, rd, "aligned")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := Extract[plist](in, back); err != nil {
			return err
		}
		var bad error
		back.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch under alignment", g)
			}
		})
		return bad
	})
}

// TestFullPipelineOverTCP runs the complete write/redistribute/read cycle
// over real loopback sockets.
func TestFullPipelineOverTCP(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Paragon())
	_, err := machine.Run(machine.Config{
		NProcs: 4, Profile: vtime.Paragon(), FS: fs, Transport: machine.TransportTCP,
	}, func(n *machine.Node) error {
		wd := mustLocal(t, 30, 4, distr.Cyclic, 0)
		if err := writePlists(n, wd, "tcp", Options{}); err != nil {
			return err
		}
		rd := mustLocal(t, 30, 4, distr.Block, 0)
		c, err := readPlists(n, rd, "tcp", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch over TCP", g)
			}
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrictMode enforces the full Figure 2 contract: in Strict mode a
// record must be completely extracted before the next read, skip, or close.
func TestStrictMode(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		// Two records, two arrays each.
		s, err := Open(n, d, "strict")
		if err != nil {
			return err
		}
		for rec := 0; rec < 2; rec++ {
			for a := 0; a < 2; a++ {
				if err := s.InsertFunc(func(l int, e *Encoder) { e.Int64(int64(rec*10 + a)) }); err != nil {
					return err
				}
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}

		in, err := OpenInput(n, d, "strict", WithStrict())
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil {
			return err
		}
		// Only one of two arrays extracted.
		if err := in.ExtractFunc(func(int, *Decoder) {}); err != nil {
			return err
		}
		if err := in.Read(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("strict read with pending arrays: %v, want ErrOrder", err)
		}
		return nil
	})

	// Close path.
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		in, err := OpenInput(n, d, "strict", WithStrict())
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil {
			return err
		}
		if err := in.Close(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("strict close with pending arrays: %v, want ErrOrder", err)
		}
		return nil
	})

	// Fully extracted: strict mode is satisfied.
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		in, err := OpenInput(n, d, "strict", WithStrict())
		if err != nil {
			return err
		}
		for rec := 0; rec < 2; rec++ {
			if err := in.Read(); err != nil {
				return err
			}
			for a := 0; a < 2; a++ {
				rec, a := rec, a
				if err := in.ExtractFunc(func(l int, dec *Decoder) {
					if got := dec.Int64(); got != int64(rec*10+a) {
						panic(fmt.Sprintf("rec %d arr %d: got %d", rec, a, got))
					}
				}); err != nil {
					return err
				}
			}
		}
		return in.Close()
	})
}

// TestAsyncWriteCorrectness: write-behind streams produce byte-identical
// files and fully readable data; only the virtual timing differs.
func TestAsyncWriteCorrectness(t *testing.T) {
	images := map[bool][]byte{}
	for _, async := range []bool{false, true} {
		fs := pfs.NewMemFS(vtime.Paragon())
		var closedAt, writtenAt float64
		run(t, 3, fs, func(n *machine.Node) error {
			d := mustLocal(t, 20, 3, distr.Cyclic, 0)
			c, err := collection.New[plist](n, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, e *plist) { *e = mkPlist(g) })
			s, err := Open(n, d, "async", WithOptions(Options{Async: async}))
			if err != nil {
				return err
			}
			for rec := 0; rec < 3; rec++ {
				if err := Insert[plist](s, c); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			if n.Rank() == 0 {
				writtenAt = n.Clock().Now()
			}
			if err := s.Close(); err != nil {
				return err
			}
			if n.Rank() == 0 {
				closedAt = n.Clock().Now()
			}
			// Read everything back.
			c2, err := readPlists(n, d, "async", true)
			if err != nil {
				return err
			}
			var bad error
			c2.Apply(func(g int, e *plist) {
				if !plistEqual(*e, mkPlist(g)) {
					bad = fmt.Errorf("async=%v: global %d mismatch", async, g)
				}
			})
			return bad
		})
		img, err := fs.Image("async")
		if err != nil {
			t.Fatal(err)
		}
		images[async] = img
		if async {
			// In async mode the writes return early; Close pays the I/O.
			if closedAt <= writtenAt {
				t.Fatalf("async close paid no drain time (%v → %v)", writtenAt, closedAt)
			}
		}
	}
	if string(images[false]) != string(images[true]) {
		t.Fatal("async and sync modes produced different file images")
	}
}

// TestEmptyCollectionRoundTrip: a collection with zero elements writes a
// header-only record that reads back cleanly.
func TestEmptyCollectionRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 3, fs, func(n *machine.Node) error {
		d := mustLocal(t, 0, 3, distr.Block, 0)
		s, err := Open(n, d, "empty")
		if err != nil {
			return err
		}
		if err := s.InsertFunc(func(int, *Encoder) {}); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		in, err := OpenInput(n, d, "empty")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if in.Arrays() != 1 || in.LocalLen() != 0 {
			return fmt.Errorf("Arrays=%d LocalLen=%d", in.Arrays(), in.LocalLen())
		}
		if err := in.ExtractFunc(func(int, *Decoder) {}); err != nil {
			return err
		}
		if in.More() {
			return fmt.Errorf("trailing records in empty stream")
		}
		return nil
	})
}

// TestAppendMode accumulates records across separate "runs" in one file —
// the §2 save-between-runs pattern — and reads them all back in order.
func TestAppendMode(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	writeRun := func(runIdx int, opts Options) {
		run(t, 2, fs, func(n *machine.Node) error {
			d := mustLocal(t, 6, 2, distr.Cyclic, 0)
			s, err := Open(n, d, "history", WithOptions(opts))
			if err != nil {
				return err
			}
			defer s.Close()
			if err := s.InsertFunc(func(l int, e *Encoder) {
				e.Int64(int64(runIdx*100 + d.GlobalIndex(n.Rank(), l)))
			}); err != nil {
				return err
			}
			return s.Write()
		})
	}
	writeRun(0, Options{})
	writeRun(1, Options{Append: true})
	writeRun(2, Options{Append: true})

	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, 6, 2, distr.Cyclic, 0)
		in, err := OpenInput(n, d, "history")
		if err != nil {
			return err
		}
		defer in.Close()
		for runIdx := 0; runIdx < 3; runIdx++ {
			if err := in.Read(); err != nil {
				return err
			}
			var bad error
			if err := in.ExtractFunc(func(l int, dec *Decoder) {
				want := int64(runIdx*100 + d.GlobalIndex(n.Rank(), l))
				if got := dec.Int64(); got != want && bad == nil {
					bad = fmt.Errorf("run %d: got %d want %d", runIdx, got, want)
				}
			}); err != nil {
				return err
			}
			if bad != nil {
				return bad
			}
		}
		if in.More() {
			return fmt.Errorf("extra records")
		}
		return nil
	})
}

// TestAppendToNonStreamRejected: append mode validates the file header.
func TestAppendToNonStreamRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		f, err := n.Open("junk2", true)
		if err != nil {
			return err
		}
		if _, err := f.ParallelAppend([]byte("garbage bytes here....")); err != nil {
			return err
		}
		f.Close()
		d := mustLocal(t, 4, 2, distr.Block, 0)
		_, err = Open(n, d, "junk2", WithAppend())
		if err == nil {
			return fmt.Errorf("append to non-stream accepted")
		}
		return nil
	})
}
