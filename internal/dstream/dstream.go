// Package dstream implements d/streams, the paper's central contribution: a
// language-independent abstraction for buffered I/O on distributed arrays of
// variable-sized objects (paper §3), realized here for Go collections the
// way pC++/streams realized it for pC++ collections (paper §4).
//
// A d/stream is a buffer associated with a file. Data is inserted from
// distributed collections into an output d/stream's per-node buffers and
// written to the file with one parallel operation; an input d/stream reads a
// record back — with read (element order restored, redistributing across
// nodes when the processor count or distribution changed) or unsortedRead
// (no ordering guarantee, no interprocessor communication) — and extracts it
// into collections.
//
// # Primitive order (Figure 2 state machines)
//
//	output: open → insert⁺ → write → (insert⁺ → write)* → close
//	input:  open → (read|unsortedRead) → extract* → … → close
//
// Illegal orders (write with nothing inserted, extract before a read, more
// extracts than the record has arrays) are rejected at run time.
//
// # Interleaving
//
// Arrays inserted consecutively with no intervening write have their
// elements interleaved in the file: the payloads of element i from every
// insert of the group are contiguous. All collections inserted into one
// group must be aligned (same layout) with the stream's distribution.
//
// # On-disk layout (Figure 4, §4.1)
//
//	file   := fileHeader record*
//	record := recordHeader | sizeTable (node order) | data (node order)
//
// The metadata (distribution descriptor + per-element sizes) precedes the
// data, so the input side needs nothing from the programmer: it reads the
// paperwork, then the data, "regardless of differences in the number of
// processors and distribution of the reading and writing arrays."
package dstream

import (
	"errors"
	"fmt"
	"hash/fnv"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
)

// Encoder is the typed buffer an element inserter fills (one per element).
type Encoder = enc.Buffer

// Decoder is the typed reader an element extractor drains.
type Decoder = enc.Reader

// Inserter is implemented by element types that can insert themselves —
// the Go counterpart of the paper's insertion functions
// (declareStreamInserter). Implementations append the element's fields,
// including variable-sized ones, to e.
type Inserter interface {
	StreamInsert(e *Encoder)
}

// Extractor is the inverse of Inserter. Implementations decode exactly what
// their StreamInsert encoded; decoding failures surface via d.Err and are
// checked by the library after each element.
type Extractor interface {
	StreamExtract(d *Decoder)
}

// MetaPolicy selects how a record's metadata (header + size table) reaches
// the file (§4.1 step 1).
type MetaPolicy uint8

const (
	// MetaAuto funnels metadata through node 0 for small collections and
	// writes it in parallel for large ones (the paper's heuristic).
	MetaAuto MetaPolicy = iota
	// MetaFunnel always gathers the size table to node 0, which writes it
	// at the head of its per-node buffer — one parallel write total.
	MetaFunnel
	// MetaParallel always writes the metadata with its own parallel write.
	MetaParallel
)

// DefaultFunnelThreshold is the element count below which MetaAuto funnels
// metadata through node 0.
const DefaultFunnelThreshold = 4096

// Options tune a stream; the zero value gives the paper's defaults.
// Prefer building them through Open/OpenInput's functional options; the
// struct remains exported for WithOptions (wholesale migration of a
// pre-built value) and for tools that enumerate settings.
type Options struct {
	// Strategy selects the collective data path. StrategyAuto (the zero
	// value) defers to the legacy Meta policy and the funnel-threshold
	// heuristic; an explicit strategy overrides both.
	Strategy Strategy
	// Aggregators overrides the two-phase aggregator count; zero derives K
	// from the file's stripe factor.
	Aggregators int

	// Meta is the legacy metadata-path policy, honored only under
	// StrategyAuto.
	//
	// Deprecated: use Strategy (WithStrategy) instead.
	Meta            MetaPolicy
	FunnelThreshold int // 0 means DefaultFunnelThreshold
	// Strict enforces the full Figure 2 contract on input streams: every
	// array of a record must be extracted before the next read or skip, and
	// before close ("every extract must have a corresponding insert" in
	// both directions). Off by default: the paper's interface permits a
	// reader that stops early, losing the rest of the record.
	Strict bool
	// Append opens an output stream on an existing d/stream file and adds
	// records after the ones already present, instead of truncating — the
	// §2 "saving data-sets between application runs" pattern when one file
	// accumulates the history of several runs. The file must already be a
	// valid d/stream file.
	Append bool
	// Async turns output writes into write-behind operations: Write still
	// rendezvouses (the group must agree on the record layout) but returns
	// without waiting for the disk, so computation between writes overlaps
	// the transfer. Close (or Drain) waits for everything to land. An
	// extension beyond the paper's synchronous write primitive; the
	// BenchmarkAblationAsyncOverlap bench quantifies it.
	Async bool
	// ReadAhead is the input-stream prefetch depth: while the consumer
	// drains the current record, up to ReadAhead upcoming records are
	// fetched in the background (metadata synchronously — it is a few
	// broadcast bytes — the data section with the asynchronous read
	// primitives), so Read stalls only for the un-overlapped remainder of
	// the transfer. The read-side mirror of Async. Zero disables
	// prefetching; prefetched records a consumer skips are counted as
	// wasted bytes and their buffers recycled.
	ReadAhead int
	// FS overrides the file system the stream's file is opened on. Nil (the
	// default) uses the machine's own file system (machine.Config.FS). A
	// session with a dstreamd daemon injects its remote-backed file system
	// here — see the session package — so embedded and remote streams share
	// every code path above the pfs.Backend seam.
	FS *pfs.FileSystem
	// ChannelWindow is the per-consumer credit window of a stream-to-stream
	// channel, in bytes: a producer keeps at most this many unacknowledged
	// frame bytes in flight toward each consumer before blocking for
	// credit, so a slow consumer backpressures its producers instead of
	// growing unbounded buffers. Zero means DefaultChannelWindow. Only
	// OpenChannel/OpenChannelInput accept it.
	ChannelWindow int
}

func (o Options) funnelThreshold() int {
	if o.FunnelThreshold <= 0 {
		return DefaultFunnelThreshold
	}
	return o.FunnelThreshold
}

// Common errors.
var (
	// ErrClosed reports use of a closed stream.
	ErrClosed = errors.New("dstream: stream closed")
	// ErrNotAligned reports inserting/extracting a collection whose layout
	// differs from the stream's distribution.
	ErrNotAligned = errors.New("dstream: collection not aligned with stream distribution")
	// ErrOrder reports a primitive called out of the legal order.
	ErrOrder = errors.New("dstream: primitive out of order")
	// ErrIO wraps a flush or refill that failed in the layers below —
	// communication retries exhausted, storage faults, aborted collectives.
	// The stream is left in its sticky-error state: later primitives return
	// the same error instead of hanging or silently corrupting the file.
	ErrIO = errors.New("dstream: I/O failed")
)

// stream holds the state shared by both directions.
type stream struct {
	node *machine.Node
	dist *distr.Distribution
	f    *pfs.File
	name string
	err  error // sticky
	met  *streamMetrics
	// tag keys this stream's cross-rank causal edges (shuffle/scatter
	// rendezvous). Derived from the file name, so every rank's instance of
	// the same logical stream computes the identical tag with no
	// communication.
	tag uint64
}

// streamTag hashes a stream name into the causal-edge rendezvous tag.
func streamTag(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// streamMetrics is the dsmon handle set of one stream. Handles are
// get-or-create in the run's registry, so every stream of a run
// aggregates into the same dstream_* families; a run without a monitor
// gets nil handles, which are no-ops. This is the accounting the paper's
// tables imply but never expose: how full the per-node buffers get, how
// long a flush or refill stalls the computation, and — for asynchronous
// write-behind — how much of each transfer overlapped computation instead
// of blocking it.
type streamMetrics struct {
	mon      *dsmon.Monitor
	inserts  *dsmon.Counter
	writes   *dsmon.Counter
	reads    *dsmon.Counter
	extracts *dsmon.Counter
	skips    *dsmon.Counter
	errs     *dsmon.Counter
	fill     *dsmon.Gauge
	// flushBytes / refillBytes observe the per-node payload of each
	// flush / refill; flushStall / refillStall observe the virtual
	// seconds the primitive kept the node from computing.
	flushBytes  *dsmon.Histogram
	refillBytes *dsmon.Histogram
	flushStall  *dsmon.Histogram
	drainStall  *dsmon.Histogram
	refillStall *dsmon.Histogram
	// asyncOverlap observes, per asynchronous append, the virtual seconds
	// the disk kept working after Write returned — the overlapped share;
	// flushStall{phase="write"} holds the blocked share.
	asyncOverlap *dsmon.Histogram
	// Two-phase accounting: shuffleBytes observes the per-node payload
	// exchanged over the interconnect during the aggregation shuffle;
	// extentBytes observes the stripe-aligned extent each aggregator moved
	// to or from the file; shuffleStall observes the virtual seconds the
	// shuffle phase (alltoallv + extent assembly) kept the node from
	// computing.
	shuffleBytes *dsmon.Histogram
	extentBytes  *dsmon.Histogram
	shuffleStall *dsmon.Histogram
	// Read-ahead accounting: prefetchHits counts reads served from the
	// prefetch queue; prefetchWasted counts prefetched data bytes dropped
	// unread (skipped records, close with queued records); prefetchOverlap
	// observes, per hit, the virtual seconds of the prefetched transfer
	// that overlapped computation instead of stalling the consumer —
	// refillStall holds the blocked remainder.
	prefetchHits    *dsmon.Counter
	prefetchWasted  *dsmon.Counter
	prefetchOverlap *dsmon.Histogram
}

// newStreamMetrics binds the dstream metric families in m's registry.
func newStreamMetrics(m *dsmon.Monitor) *streamMetrics {
	reg := m.Registry()
	return &streamMetrics{
		mon:      m,
		inserts:  reg.Counter("dstream_inserts_total", "insert operations (one per collection per group)"),
		writes:   reg.Counter("dstream_writes_total", "records flushed by output streams"),
		reads:    reg.Counter("dstream_reads_total", "records loaded by input streams"),
		extracts: reg.Counter("dstream_extracts_total", "extract operations drained from records"),
		skips:    reg.Counter("dstream_skips_total", "records skipped by input streams"),
		errs:     reg.Counter("dstream_errors_total", "stream primitives that failed and stuck the stream in its error state"),
		fill: reg.Gauge("dstream_buffer_fill_bytes",
			"bytes currently buffered in unwritten interleave groups, all streams of this node's run"),
		flushBytes: reg.Histogram("dstream_flush_bytes",
			"per-node data bytes per record flush", dsmon.SizeBuckets),
		refillBytes: reg.Histogram("dstream_refill_bytes",
			"per-node data bytes per record refill", dsmon.SizeBuckets),
		flushStall: reg.Histogram("dstream_flush_stall_seconds",
			"virtual seconds a write kept the node from computing", dsmon.LatencyBuckets, "phase", "write"),
		drainStall: reg.Histogram("dstream_flush_stall_seconds",
			"virtual seconds a write kept the node from computing", dsmon.LatencyBuckets, "phase", "drain"),
		refillStall: reg.Histogram("dstream_refill_stall_seconds",
			"virtual seconds a read/unsortedRead kept the node from computing", dsmon.LatencyBuckets),
		asyncOverlap: reg.Histogram("dstream_async_overlap_seconds",
			"virtual seconds of disk transfer overlapped with computation per async append", dsmon.LatencyBuckets),
		shuffleBytes: reg.Histogram("dstream_twophase_shuffle_bytes",
			"per-node payload bytes exchanged in the two-phase aggregation shuffle", dsmon.SizeBuckets),
		extentBytes: reg.Histogram("dstream_twophase_extent_bytes",
			"stripe-aligned extent bytes per aggregator transfer", dsmon.SizeBuckets),
		shuffleStall: reg.Histogram("dstream_twophase_shuffle_stall_seconds",
			"virtual seconds the two-phase shuffle kept the node from computing", dsmon.LatencyBuckets),
		prefetchHits: reg.Counter("dstream_prefetch_hits_total",
			"input-stream reads served from the read-ahead queue"),
		prefetchWasted: reg.Counter("dstream_prefetch_wasted_bytes_total",
			"prefetched data bytes dropped unread (skips, close with queued records)"),
		prefetchOverlap: reg.Histogram("dstream_prefetch_overlap_seconds",
			"virtual seconds of prefetched transfer overlapped with computation per hit", dsmon.LatencyBuckets),
	}
}

func (s *stream) fail(err error) error {
	if err != nil && s.err == nil {
		s.err = err
		s.met.errs.Inc()
	}
	return err
}

func (s *stream) checkOpen() error {
	if s.err != nil {
		return s.err
	}
	if s.f == nil {
		return ErrClosed
	}
	return nil
}

// headerFor renders the record header (and descriptor section, for
// EXPLICIT distributions) for this stream's distribution.
func headerFor(d *distr.Distribution, nArrays int, dataBytes uint64) (enc.RecordHeader, []byte) {
	var desc []byte
	if d.Mode == distr.Explicit {
		desc = enc.EncodeOwnerTable(d.Owners())
	}
	return enc.RecordHeader{
		NArrays:     uint32(nArrays),
		NElems:      uint32(d.N),
		NProcs:      uint32(d.NProcs),
		Mode:        uint8(d.Mode),
		BlockSize:   uint32(d.BlockSize),
		AlignOffset: int32(d.Align.Offset),
		AlignStride: int32(d.Align.Stride),
		TemplateN:   uint32(d.TemplateN),
		DescBytes:   uint32(len(desc)),
		DataBytes:   dataBytes,
	}, desc
}

// distFromHeader reconstructs the writer's distribution from a record
// header and its descriptor section — the information that lets read()
// route every element to its new owner.
func distFromHeader(h enc.RecordHeader, desc []byte) (*distr.Distribution, error) {
	if distr.Mode(h.Mode) == distr.Explicit {
		owners, err := enc.DecodeOwnerTable(desc, int(h.NElems))
		if err != nil {
			return nil, fmt.Errorf("dstream: record owner table: %w", err)
		}
		d, err := distr.NewExplicit(owners, int(h.NProcs))
		if err != nil {
			return nil, fmt.Errorf("dstream: record carries invalid distribution: %w", err)
		}
		return d, nil
	}
	d, err := distr.NewAligned(
		int(h.NElems), int(h.TemplateN), int(h.NProcs),
		distr.Mode(h.Mode), int(h.BlockSize),
		distr.Alignment{Offset: int(h.AlignOffset), Stride: int(h.AlignStride)},
	)
	if err != nil {
		return nil, fmt.Errorf("dstream: record carries invalid distribution: %w", err)
	}
	return d, nil
}

// fileOrder returns, for each file position (writer node-block order), the
// global element index stored there.
func fileOrder(wdist *distr.Distribution) []int {
	out := make([]int, 0, wdist.N)
	for r := 0; r < wdist.NProcs; r++ {
		n := wdist.LocalCount(r)
		for l := 0; l < n; l++ {
			out = append(out, wdist.GlobalIndex(r, l))
		}
	}
	return out
}
