package dstream

import (
	"fmt"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/grid"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestExplicitDistributionRoundTrip: the owner table travels in the record
// descriptor, so readers can restore an explicitly distributed collection
// under any layout.
func TestExplicitDistributionRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	owners := []int{2, 2, 0, 1, 0, 1, 2, 0, 1, 0, 0, 2}
	run(t, 3, fs, func(n *machine.Node) error {
		wd, err := distr.NewExplicit(owners, 3)
		if err != nil {
			return err
		}
		if err := writePlists(n, wd, "exp", Options{}); err != nil {
			return err
		}
		// Sorted read under BLOCK.
		rd := mustLocal(t, len(owners), 3, distr.Block, 0)
		c, err := readPlists(n, rd, "exp", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch from explicit writer", g)
			}
		})
		return bad
	})
}

// TestExplicitReaderRoundTrip: the reader side may be explicit too.
func TestExplicitReaderRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		wd := mustLocal(t, 9, 2, distr.Cyclic, 0)
		if err := writePlists(n, wd, "exp2", Options{}); err != nil {
			return err
		}
		rd, err := distr.NewExplicit([]int{1, 1, 1, 0, 0, 0, 1, 0, 1}, 2)
		if err != nil {
			return err
		}
		c, err := readPlists(n, rd, "exp2", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch on explicit reader", g)
			}
		})
		return bad
	})
}

// TestGrid2DRoundTrip writes a (BLOCK, CYCLIC)-distributed 2-D grid and
// reads it back on a 1-D BLOCK layout — distributed grids flowing through
// the same format.
func TestGrid2DRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const rows, cols = 6, 8
	run(t, 4, fs, func(n *machine.Node) error {
		g2, err := grid.New2D(rows, cols, 2, 2, distr.Block, distr.Cyclic, 0, 0)
		if err != nil {
			return err
		}
		type cell struct{ V float64 }
		c, err := collection.New[cell](n, g2.Dist())
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *cell) {
			i, j := g2.Coords(g)
			e.V = float64(i*100 + j)
		})
		s, err := Open(n, g2.Dist(), "grid")
		if err != nil {
			return err
		}
		if err := InsertField(s, c, func(e *cell) float64 { return e.V }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		rd := mustLocal(t, rows*cols, 4, distr.Block, 0)
		back, err := collection.New[cell](n, rd)
		if err != nil {
			return err
		}
		in, err := OpenInput(n, rd, "grid")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := ExtractField(in, back, func(e *cell) *float64 { return &e.V }); err != nil {
			return err
		}
		var bad error
		back.Apply(func(g int, e *cell) {
			i, j := g/cols, g%cols
			if e.V != float64(i*100+j) {
				bad = fmt.Errorf("cell (%d,%d) = %v", i, j, e.V)
			}
		})
		return bad
	})
}

// TestBalancedDistributionRoundTrip: load-balanced variable-density data —
// elements are weighted by their payload size, so nodes carry near-equal
// bytes even though element counts differ.
func TestBalancedDistributionRoundTrip(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const n = 24
	// Element g holds g%5+1 particles → weight proportional to size.
	weights := make([]float64, n)
	for g := range weights {
		weights[g] = float64(g%5 + 1)
	}
	run(t, 3, fs, func(nd *machine.Node) error {
		wd, err := distr.NewBalanced(weights, 3)
		if err != nil {
			return err
		}
		if err := writePlists(nd, wd, "bal", Options{}); err != nil {
			return err
		}
		rd := mustLocal(t, n, 3, distr.Cyclic, 0)
		c, err := readPlists(nd, rd, "bal", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch from balanced writer", g)
			}
		})
		return bad
	})
}

// TestExplicitDescriptorInFile: the record really carries the owner table
// (the file is bigger by 4·N bytes and dsdump-parseable) — checked at the
// byte level via the header fields.
func TestExplicitDescriptorInFile(t *testing.T) {
	fsPat := pfs.NewMemFS(vtime.Challenge())
	fsExp := pfs.NewMemFS(vtime.Challenge())
	const n = 10
	write := func(fs *pfs.FileSystem, explicit bool) {
		run(t, 2, fs, func(nd *machine.Node) error {
			var wd *distr.Distribution
			var err error
			if explicit {
				owners := make([]int, n)
				for i := range owners {
					owners[i] = i % 2
				}
				wd, err = distr.NewExplicit(owners, 2)
			} else {
				wd, err = distr.New(n, 2, distr.Cyclic, 0)
			}
			if err != nil {
				return err
			}
			return writePlists(nd, wd, "f", Options{})
		})
	}
	write(fsPat, false)
	write(fsExp, true)
	imgPat, _ := fsPat.Image("f")
	imgExp, _ := fsExp.Image("f")
	if len(imgExp) != len(imgPat)+4*n {
		t.Fatalf("explicit file %d bytes, pattern %d — want exactly +%d for the owner table",
			len(imgExp), len(imgPat), 4*n)
	}
	// Same data section bytes: {i%2} over 2 procs is the CYCLIC layout.
	if string(imgExp[len(imgExp)-64:]) != string(imgPat[len(imgPat)-64:]) {
		t.Fatal("data sections differ between equivalent layouts")
	}
}
