package dstream

import (
	"encoding/binary"
	"fmt"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/trace"
)

// Two-phase collective buffering: instead of every rank hitting the PFS
// with its own (often small) block, the ranks shuffle their encoded element
// payloads over the interconnect to K aggregator ranks, each of which moves
// one large stripe-aligned contiguous extent in a single parallel
// operation. K follows the file's stripe factor, so one aggregator feeds
// one stripe device — the server-side data reorganization of the
// ViPIOS/MPI-IO collective-I/O line of work, grafted onto the paper's
// d/stream record format without changing a byte of it.

// twoPhaseAggregators returns the aggregator count K: the explicit
// Options.Aggregators override, else the file's stripe factor, clamped to
// [1, nprocs]. Aggregators are ranks 0..K-1.
func twoPhaseAggregators(o Options, l pfs.Layout, nprocs int) int {
	k := o.Aggregators
	if k <= 0 {
		k = l.StripeFactor
	}
	if k < 1 {
		k = 1
	}
	if k > nprocs {
		k = nprocs
	}
	return k
}

// stripeCuts partitions the [0, total) byte span of a data section that
// will occupy file offsets [base, base+total) into k contiguous extents.
// Interior boundaries are pulled up to the nearest stripe-cell boundary of
// the file, so each aggregator's extent covers whole cells (except at the
// ragged ends of the record). The k+1 cut points are monotone, with
// cuts[0] = 0 and cuts[k] = total; an extent may be empty when the record
// is smaller than the stripe geometry.
func stripeCuts(base, total int64, k int, unit int64) []int64 {
	cuts := make([]int64, k+1)
	cuts[k] = total
	for j := 1; j < k; j++ {
		ideal := base + total*int64(j)/int64(k)
		aligned := ideal
		if unit > 0 {
			aligned = (ideal + unit - 1) / unit * unit
		}
		cut := aligned - base
		if cut < cuts[j-1] {
			cut = cuts[j-1]
		}
		if cut > total {
			cut = total
		}
		cuts[j] = cut
	}
	return cuts
}

// writeTwoPhase is the two-phase record flush. The record's bytes are
// identical to writeFunnel's: metadata funnels through node 0 and rides the
// same single parallel append as the data; only the rank→block assignment
// of the data section changes, from "every rank appends its own elements"
// to "K aggregators append stripe-aligned extents".
func (s *OStream) writeTwoPhase(nArrays int, localSizes []uint32, data []byte) error {
	comm := s.node.Comm()
	me := s.node.Rank()
	nprocs := s.node.Size()
	shuffleStart := s.node.Clock().Now()

	// Every rank learns every rank's data byte count, so the aggregation
	// plan is computed locally — and identically — everywhere.
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(data)))
	lenParts, err := comm.Allgather(lenBuf[:])
	if err != nil {
		return fmt.Errorf("dstream: allgather data sizes: %w", err)
	}
	rankOff := make([]int64, nprocs+1)
	for r, p := range lenParts {
		if len(p) != 8 {
			return fmt.Errorf("dstream: bad size contribution from rank %d", r)
		}
		rankOff[r+1] = rankOff[r] + int64(binary.LittleEndian.Uint64(p))
	}
	total := rankOff[nprocs]

	// The size table funnels through node 0 as in writeFunnel, placed at
	// the head of its block so metadata and data move in one operation.
	st := enc.AppendSizeTable(bufpool.GetCap(4*len(localSizes)), localSizes)
	parts, err := comm.Gather(0, st)
	if err != nil {
		bufpool.Put(st)
		return fmt.Errorf("dstream: gather sizes: %w", err)
	}
	if me != 0 {
		// The transport copied st on send; rank 0 releases its own copy
		// below, after flattening (Gather aliases the root's contribution).
		bufpool.Put(st)
	}

	// Aggregation plan: the data section will start metaLen bytes past the
	// current end of file; cut it into K extents at stripe boundaries. A
	// planned stream uses the cost model's fan-in (rank-identical, like
	// every planner output); K changes the rank→extent assignment but not
	// a byte of the record, so re-planning K is always safe.
	layout := s.f.Layout()
	k := twoPhaseAggregators(s.opts, layout, nprocs)
	if s.planner != nil && s.planK > 0 {
		k = s.planK
	}
	h, desc := headerFor(s.dist, nArrays, uint64(total))
	metaLen := enc.RecordHeaderLen + int64(len(desc)) + int64(4*s.dist.N)
	base := s.f.Size() + metaLen
	cuts := stripeCuts(base, total, k, layout.StripeUnit)

	// Shuffle: each rank slices its contiguous payload [lo, hi) of the data
	// section by the extent cuts and sends each aggregator its overlap.
	// Within an extent, ascending sender rank is ascending file offset, so
	// concatenating the received pieces rebuilds the extent contiguously.
	bufs := make([][]byte, nprocs)
	var sent int64
	lo, hi := rankOff[me], rankOff[me+1]
	for j := 0; j < k; j++ {
		a, b := max(lo, cuts[j]), min(hi, cuts[j+1])
		if a >= b {
			continue
		}
		bufs[j] = data[a-lo : b-lo]
		if j != me {
			sent += b - a
		}
	}
	recv, err := comm.Alltoallv(bufs)
	if err != nil {
		return fmt.Errorf("dstream: two-phase shuffle: %w", err)
	}

	// Aggregators assemble their extent; every other rank contributes an
	// empty block to the closing append. The received pieces (all owned by
	// this rank per the Alltoallv contract) are released as they are packed.
	var block []byte
	blockPooled := false
	if me < k {
		extLen := cuts[me+1] - cuts[me]
		ext := bufpool.GetCap(int(extLen))
		for _, p := range recv {
			ext = append(ext, p...)
			bufpool.Put(p)
		}
		if int64(len(ext)) != extLen {
			return fmt.Errorf("dstream: extent %d assembled %d of %d bytes", me, len(ext), extLen)
		}
		s.node.CopyCost(int64(len(ext)))
		s.met.extentBytes.Observe(float64(len(ext)))
		block = ext
		blockPooled = true
	} else {
		for _, p := range recv {
			bufpool.Put(p)
		}
	}
	shuffleEnd := s.node.Clock().Now()
	s.met.shuffleBytes.Observe(float64(sent))
	s.met.shuffleStall.Observe(shuffleEnd - shuffleStart)
	if rec := s.met.mon.Recorder(); rec != nil {
		// The shuffle span covers exactly the interval shuffleStall observes,
		// so critical-path attribution and the metric agree by construction.
		sid := rec.AddSpan(me, "dstream", "twophase.shuffle "+s.name, shuffleStart, shuffleEnd)
		// Cross-rank edges, contributor shuffle → aggregator stripe write:
		// both sides derive who overlaps whom from the identical aggregation
		// plan (rankOff × cuts), so the keys rendezvous without extra
		// communication. The aggregator's stripe write is part of its record
		// flush span (reserved in Write before the strategy ran).
		seq := uint64(s.wrote)
		for j := 0; j < k; j++ {
			if max(lo, cuts[j]) < min(hi, cuts[j+1]) {
				rec.FlowOut(trace.FlowKey{Kind: "shuffle", A: me, B: j, Tag: s.tag, Seq: seq}, sid)
			}
		}
		if me < k {
			for r := 0; r < nprocs; r++ {
				if max(rankOff[r], cuts[me]) < min(rankOff[r+1], cuts[me+1]) {
					rec.FlowIn(trace.FlowKey{Kind: "shuffle", A: r, B: me, Tag: s.tag, Seq: seq}, s.writeSpan)
				}
			}
		}
	}

	if me == 0 {
		allSizes := bufpool.GetCap(4 * s.dist.N)
		for _, p := range parts {
			allSizes = append(allSizes, p...)
		}
		for r, p := range parts {
			if r != 0 {
				bufpool.Put(p)
			}
		}
		bufpool.Put(st)
		if len(allSizes) != 4*s.dist.N {
			bufpool.Put(allSizes)
			return fmt.Errorf("dstream: reassembled size table is %d bytes, want %d", len(allSizes), 4*s.dist.N)
		}
		full := bufpool.GetCap(int(metaLen) + len(block))
		full = h.AppendTo(full)
		full = append(full, desc...)
		full = append(full, allSizes...)
		full = append(full, block...)
		bufpool.Put(allSizes)
		if blockPooled {
			bufpool.Put(block)
		}
		block = full
		blockPooled = true
	}
	err = s.appendRecordBlock(block, "two-phase append")
	if blockPooled {
		bufpool.Put(block)
	}
	return err
}

// refillTwoPhase is the read-side mirror: K aggregators refill
// stripe-aligned extents of the record's data section with one large
// parallel read each, then scatter to every rank the overlap with its
// contiguous share [offs[starts[me]], offs[starts[me+1]]). The share is
// assembled into dst (grown through the pool when the record outgrows it)
// and is byte-identical to what the direct ParallelRead path yields.
//
// In async mode (the read-ahead pipeline) the extent read is issued
// write-behind-style: its bytes are valid immediately in real time, the
// returned completion is the virtual instant the disk transfer lands, and
// the scatter's interconnect cost is charged at issue time — the mirror of
// the write side's shuffle accounting. Sync mode returns completion 0 and
// leaves the clock fully advanced. On error the returned buffer is
// whatever the caller now owns (possibly dst itself); transport failures
// carry the commError tag.
func (s *IStream) refillTwoPhase(dataStart int64, offs []int64, starts []int, dst []byte, async bool) ([]byte, float64, error) {
	comm := s.node.Comm()
	me := s.node.Rank()
	nprocs := s.node.Size()
	total := offs[len(offs)-1]
	shuffleStart := s.node.Clock().Now()

	layout := s.f.Layout()
	k := twoPhaseAggregators(s.opts, layout, nprocs)
	if s.planner != nil && s.planK > 0 {
		k = s.planK
	}
	cuts := stripeCuts(dataStart, total, k, layout.StripeUnit)

	// Phase one: aggregators read their extent; other ranks contribute an
	// empty range to the rendezvous.
	var rg pfs.Range
	if me < k {
		rg = pfs.Range{Off: dataStart + cuts[me], Len: int(cuts[me+1] - cuts[me])}
	}
	var (
		ext        []byte
		completion float64
		err        error
	)
	if async {
		ext, completion, err = s.f.ParallelReadAsync(rg)
	} else {
		ext, err = s.f.ParallelRead(rg)
	}
	if err != nil {
		return dst, 0, fmt.Errorf("dstream: two-phase refill: %w", err)
	}
	if me < k {
		s.met.extentBytes.Observe(float64(len(ext)))
	}

	// Per-rank byte ranges of the data section under the reader split.
	rankOff := make([]int64, nprocs+1)
	for r := 0; r <= nprocs; r++ {
		rankOff[r] = offs[starts[r]]
	}

	// Phase two: scatter. Aggregator j sends rank r the overlap of its
	// extent with r's byte range; r reassembles its share by concatenating
	// in aggregator order (ascending file offset).
	bufs := make([][]byte, nprocs)
	var sent int64
	if me < k {
		elo, ehi := cuts[me], cuts[me+1]
		for r := 0; r < nprocs; r++ {
			a, b := max(elo, rankOff[r]), min(ehi, rankOff[r+1])
			if a >= b {
				continue
			}
			bufs[r] = ext[a-elo : b-elo]
			if r != me {
				sent += b - a
			}
		}
	}
	recv, err := comm.Alltoallv(bufs)
	if err != nil {
		return dst, 0, &commError{fmt.Errorf("dstream: two-phase scatter: %w", err)}
	}
	// The extent's bytes have been copied onto the wire; release it.
	bufpool.Put(ext)
	// Assemble this node's share into dst; when dst is the stream's refill
	// scratch, the previous record's decoders are invalid from here on,
	// per the Read contract.
	want := rankOff[me+1] - rankOff[me]
	chunk := dst[:0]
	if int64(cap(chunk)) < want {
		bufpool.Put(dst)
		chunk = bufpool.GetCap(int(want))
	}
	for _, p := range recv {
		chunk = append(chunk, p...)
		bufpool.Put(p)
	}
	if int64(len(chunk)) != want {
		return chunk, 0, fmt.Errorf("dstream: two-phase refill assembled %d of %d bytes", len(chunk), want)
	}
	shuffleEnd := s.node.Clock().Now()
	s.met.shuffleBytes.Observe(float64(sent))
	s.met.shuffleStall.Observe(shuffleEnd - shuffleStart)
	if rec := s.met.mon.Recorder(); rec != nil {
		// Read-side mirror of the write shuffle's edges: aggregator extent
		// scatter → consumer reassembly, keyed by the record's data offset
		// (unique per record in the file).
		sid := rec.AddSpan(me, "dstream", "twophase.shuffle "+s.name, shuffleStart, shuffleEnd)
		seq := uint64(dataStart)
		if me < k {
			elo, ehi := cuts[me], cuts[me+1]
			for r := 0; r < nprocs; r++ {
				// r == me would be a self-loop on sid; skip it.
				if r != me && max(elo, rankOff[r]) < min(ehi, rankOff[r+1]) {
					rec.FlowOut(trace.FlowKey{Kind: "scatter", A: me, B: r, Tag: s.tag, Seq: seq}, sid)
				}
			}
		}
		for j := 0; j < k; j++ {
			if j != me && max(cuts[j], rankOff[me]) < min(cuts[j+1], rankOff[me+1]) {
				rec.FlowIn(trace.FlowKey{Kind: "scatter", A: j, B: me, Tag: s.tag, Seq: seq}, sid)
			}
		}
	}
	return chunk, completion, nil
}
