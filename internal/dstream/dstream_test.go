package dstream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// particle-list element mirroring Figure 3 of the paper.
type plist struct {
	N    int64
	Mass []float64
	X    []float64
}

func (p *plist) StreamInsert(e *Encoder) {
	e.Int64(p.N)
	e.Float64Slice(p.Mass)
	e.Float64Slice(p.X)
}

func (p *plist) StreamExtract(d *Decoder) {
	p.N = d.Int64()
	p.Mass = d.Float64Slice()
	p.X = d.Float64Slice()
}

// mkPlist builds a deterministic, variable-sized element for global index g.
func mkPlist(g int) plist {
	n := g%5 + 1 // 1..5 particles: sizes vary across the array
	p := plist{N: int64(n)}
	for i := 0; i < n; i++ {
		p.Mass = append(p.Mass, float64(g)+float64(i)/10)
		p.X = append(p.X, float64(g*100+i))
	}
	return p
}

func plistEqual(a, b plist) bool {
	if a.N != b.N || len(a.Mass) != len(b.Mass) || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.Mass {
		if a.Mass[i] != b.Mass[i] {
			return false
		}
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

func run(t *testing.T, nprocs int, fs *pfs.FileSystem, body func(n *machine.Node) error) machine.Result {
	t.Helper()
	res, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustDist(t *testing.T, n, p int, m distr.Mode, b int) *distr.Distribution {
	t.Helper()
	d, err := distr.New(n, p, m, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// writePlists writes one record of plist elements under dist d.
func writePlists(n *machine.Node, d *distr.Distribution, name string, opts Options) error {
	c, err := collection.New[plist](n, d)
	if err != nil {
		return err
	}
	c.Apply(func(g int, e *plist) { *e = mkPlist(g) })
	s, err := Open(n, d, name, WithOptions(opts))
	if err != nil {
		return err
	}
	defer s.Close()
	if err := Insert[plist](s, c); err != nil {
		return err
	}
	return s.Write()
}

// readPlists reads one record into a collection under dist d.
func readPlists(n *machine.Node, d *distr.Distribution, name string, sorted bool) (*collection.Collection[plist], error) {
	c, err := collection.New[plist](n, d)
	if err != nil {
		return nil, err
	}
	s, err := OpenInput(n, d, name)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if sorted {
		err = s.Read()
	} else {
		err = s.UnsortedRead()
	}
	if err != nil {
		return nil, err
	}
	if err := Extract[plist](s, c); err != nil {
		return nil, err
	}
	return c, nil
}

// TestRoundTripSameLayout: write and read with identical distributions; the
// sorted read must restore every element exactly.
func TestRoundTripSameLayout(t *testing.T) {
	for _, mode := range []distr.Mode{distr.Block, distr.Cyclic, distr.BlockCyclic} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			fs := pfs.NewMemFS(vtime.Challenge())
			run(t, 4, fs, func(n *machine.Node) error {
				d := mustLocal(t, 23, 4, mode, 3)
				if err := writePlists(n, d, "f", Options{}); err != nil {
					return err
				}
				c, err := readPlists(n, d, "f", true)
				if err != nil {
					return err
				}
				ok := true
				c.Apply(func(g int, e *plist) {
					if !plistEqual(*e, mkPlist(g)) {
						ok = false
					}
				})
				if !ok {
					return fmt.Errorf("rank %d: element mismatch", n.Rank())
				}
				return nil
			})
		})
	}
}

func mustLocal(t *testing.T, n, p int, m distr.Mode, b int) *distr.Distribution {
	t.Helper()
	d, err := distr.New(n, p, m, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRoundTripChangedDistribution: write CYCLIC, read BLOCK — the sorted
// read must redistribute every element to its new owner.
func TestRoundTripChangedDistribution(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 4, fs, func(n *machine.Node) error {
		wd := mustLocal(t, 30, 4, distr.Cyclic, 0)
		if err := writePlists(n, wd, "f", Options{}); err != nil {
			return err
		}
		rd := mustLocal(t, 30, 4, distr.Block, 0)
		c, err := readPlists(n, rd, "f", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("rank %d global %d mismatch: %+v", n.Rank(), g, *e)
			}
		})
		return bad
	})
}

// TestRoundTripChangedProcs: checkpoint under 4 procs, restart under 3 and
// under 6 — the signature capability of §4.1's read.
func TestRoundTripChangedProcs(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 4, fs, func(n *machine.Node) error {
		d := mustLocal(t, 25, 4, distr.BlockCyclic, 2)
		return writePlists(n, d, "ck", Options{})
	})
	for _, readerProcs := range []int{1, 3, 6} {
		readerProcs := readerProcs
		t.Run(fmt.Sprintf("readers=%d", readerProcs), func(t *testing.T) {
			run(t, readerProcs, fs, func(n *machine.Node) error {
				rd := mustLocal(t, 25, readerProcs, distr.Cyclic, 0)
				c, err := readPlists(n, rd, "ck", true)
				if err != nil {
					return err
				}
				var bad error
				c.Apply(func(g int, e *plist) {
					if !plistEqual(*e, mkPlist(g)) {
						bad = fmt.Errorf("global %d mismatch", g)
					}
				})
				return bad
			})
		})
	}
}

// TestUnsortedReadPreservesMultiset: the payload multiset survives even
// though order is arbitrary.
func TestUnsortedReadPreservesMultiset(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var got []plist
	run(t, 3, fs, func(n *machine.Node) error {
		wd := mustLocal(t, 17, 3, distr.Cyclic, 0)
		if err := writePlists(n, wd, "f", Options{}); err != nil {
			return err
		}
		rd := mustLocal(t, 17, 3, distr.Block, 0)
		c, err := readPlists(n, rd, "f", false)
		if err != nil {
			return err
		}
		<-mu
		got = append(got, c.Local()...)
		mu <- struct{}{}
		return nil
	})
	if len(got) != 17 {
		t.Fatalf("extracted %d elements, want 17", len(got))
	}
	// Compare sorted-by-fingerprint multisets.
	var want []plist
	for g := 0; g < 17; g++ {
		want = append(want, mkPlist(g))
	}
	fp := func(p plist) string { return fmt.Sprintf("%v|%v|%v", p.N, p.Mass, p.X) }
	var a, b []string
	for _, p := range got {
		a = append(a, fp(p))
	}
	for _, p := range want {
		b = append(b, fp(p))
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("multiset differs at %d:\n got %s\nwant %s", i, a[i], b[i])
		}
	}
}

// TestInterleaving: two field inserts before one write produce
// element-contiguous interleaved payloads in the file, verified against a
// scalar reference encoding.
func TestInterleaving(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const N = 6
	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, N, 2, distr.Block, 0)
		type seg struct {
			count int64
			dens  float64
		}
		c, err := collection.New[seg](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, e *seg) { e.count = int64(g); e.dens = float64(g) / 2 })
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := InsertField(s, c, func(e *seg) int64 { return e.count }); err != nil {
			return err
		}
		if err := InsertField(s, c, func(e *seg) float64 { return e.dens }); err != nil {
			return err
		}
		return s.Write()
	})

	// Reference: for BLOCK over 2 procs of 6 elements, file element order is
	// global order; each element's payload must be count (8B) then dens (8B).
	img, err := fs.Image("f")
	if err != nil {
		t.Fatal(err)
	}
	var ref Encoder
	for g := 0; g < N; g++ {
		ref.Int64(int64(g))
		ref.Float64(float64(g) / 2)
	}
	data := img[len(img)-ref.Len():]
	if !bytes.Equal(data, ref.Bytes()) {
		t.Fatalf("interleaved data section:\n got % x\nwant % x", data, ref.Bytes())
	}

	// Read the fields back independently.
	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, N, 2, distr.Block, 0)
		type seg struct {
			count int64
			dens  float64
		}
		c, err := collection.New[seg](n, d)
		if err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err != nil {
			return err
		}
		if got := s.Arrays(); got != 2 {
			return fmt.Errorf("Arrays = %d, want 2", got)
		}
		if err := ExtractField(s, c, func(e *seg) *int64 { return &e.count }); err != nil {
			return err
		}
		if err := ExtractField(s, c, func(e *seg) *float64 { return &e.dens }); err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *seg) {
			if e.count != int64(g) || e.dens != float64(g)/2 {
				bad = fmt.Errorf("global %d: %+v", g, *e)
			}
		})
		return bad
	})
}

// TestFunnelAndParallelMetaIdenticalFiles: both metadata paths must produce
// byte-identical file images (§4.1 step 1 is a performance choice only).
func TestFunnelAndParallelMetaIdenticalFiles(t *testing.T) {
	images := map[MetaPolicy][]byte{}
	for _, pol := range []MetaPolicy{MetaFunnel, MetaParallel} {
		fs := pfs.NewMemFS(vtime.Challenge())
		run(t, 3, fs, func(n *machine.Node) error {
			d := mustLocal(t, 11, 3, distr.Cyclic, 0)
			return writePlists(n, d, "f", Options{Meta: pol})
		})
		img, err := fs.Image("f")
		if err != nil {
			t.Fatal(err)
		}
		images[pol] = img
	}
	if !bytes.Equal(images[MetaFunnel], images[MetaParallel]) {
		t.Fatal("funnel and parallel metadata paths produced different file images")
	}
}

// TestMultipleRecords: several writes, read back in order; reader stops at
// More() == false.
func TestMultipleRecords(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	const rounds = 4
	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, 8, 2, distr.Cyclic, 0)
		type cell struct{ v int64 }
		c, err := collection.New[cell](n, d)
		if err != nil {
			return err
		}
		s, err := Open(n, d, "multi")
		if err != nil {
			return err
		}
		defer s.Close()
		for round := 0; round < rounds; round++ {
			c.Apply(func(g int, e *cell) { e.v = int64(g + 1000*round) })
			if err := InsertField(s, c, func(e *cell) int64 { return e.v }); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		if s.Records() != rounds {
			return fmt.Errorf("Records = %d", s.Records())
		}
		return nil
	})
	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, 8, 2, distr.Cyclic, 0)
		type cell struct{ v int64 }
		c, err := collection.New[cell](n, d)
		if err != nil {
			return err
		}
		s, err := OpenInput(n, d, "multi")
		if err != nil {
			return err
		}
		defer s.Close()
		round := 0
		for s.More() {
			if err := s.Read(); err != nil {
				return err
			}
			if err := ExtractField(s, c, func(e *cell) *int64 { return &e.v }); err != nil {
				return err
			}
			var bad error
			c.Apply(func(g int, e *cell) {
				if e.v != int64(g+1000*round) {
					bad = fmt.Errorf("round %d global %d: %d", round, g, e.v)
				}
			})
			if bad != nil {
				return bad
			}
			round++
		}
		if round != rounds {
			return fmt.Errorf("read %d records, want %d", round, rounds)
		}
		return nil
	})
}

// --- Figure 2 state machine enforcement ---

func TestWriteWithoutInsertRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Write(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("Write with no inserts: %v, want ErrOrder", err)
		}
		return nil
	})
}

func TestExtractBeforeReadRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{}); err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.ExtractFunc(func(int, *Decoder) {}); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("extract before read: %v, want ErrOrder", err)
		}
		return nil
	})
}

func TestTooManyExtractsRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{}); err != nil {
			return err
		}
		c, err := collection.New[plist](n, d)
		if err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.UnsortedRead(); err != nil {
			return err
		}
		if err := Extract[plist](s, c); err != nil {
			return err
		}
		if err := Extract[plist](s, c); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("second extract of 1-array record: %v, want ErrOrder", err)
		}
		return nil
	})
}

func TestReadPastEndRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{}); err != nil {
			return err
		}
		s, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err != nil {
			return err
		}
		if s.More() {
			return fmt.Errorf("More() true after last record")
		}
		if err := s.Read(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("read past end: %v, want ErrOrder", err)
		}
		return nil
	})
}

func TestCloseWithUnwrittenInserts(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		if err := s.InsertFunc(func(int, *Encoder) {}); err != nil {
			return err
		}
		if err := s.Close(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("close with pending inserts: %v, want ErrOrder", err)
		}
		// Idempotent second close.
		if err := s.Close(); err != nil {
			return fmt.Errorf("second close: %v", err)
		}
		return nil
	})
}

func TestUseAfterCloseRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		if err := s.InsertFunc(func(int, *Encoder) {}); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		s.Close()
		if err := s.InsertFunc(func(int, *Encoder) {}); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("insert after close: %v, want ErrClosed", err)
		}
		return nil
	})
}

func TestStickyError(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Write(); err == nil { // no inserts → error, now sticky
			return fmt.Errorf("expected error")
		}
		if err := s.InsertFunc(func(int, *Encoder) {}); err == nil {
			return fmt.Errorf("stream not sticky after error")
		}
		return nil
	})
}

// --- open-time validation ---

func TestInputRejectsNonStreamFile(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		f, err := n.Open("junk", true)
		if err != nil {
			return err
		}
		if _, err := f.ParallelAppend([]byte("this is not a d/stream file at all")); err != nil {
			return err
		}
		f.Close()
		d := mustLocal(t, 4, 2, distr.Block, 0)
		if _, err := OpenInput(n, d, "junk"); err == nil {
			return fmt.Errorf("non-stream file accepted")
		}
		return nil
	})
}

func TestInputRejectsMissingFile(t *testing.T) {
	// Opening a missing file creates an empty backend; header check fails.
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 1, fs, func(n *machine.Node) error {
		d := mustLocal(t, 4, 1, distr.Block, 0)
		if _, err := OpenInput(n, d, "absent"); err == nil {
			return fmt.Errorf("missing file accepted")
		}
		return nil
	})
}

func TestElementCountMismatchRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		wd := mustLocal(t, 10, 2, distr.Block, 0)
		if err := writePlists(n, wd, "f", Options{}); err != nil {
			return err
		}
		rd := mustLocal(t, 12, 2, distr.Block, 0) // wrong N
		s, err := OpenInput(n, rd, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err == nil {
			return fmt.Errorf("mismatched element count accepted")
		}
		return nil
	})
}

func TestMisalignedCollectionRejected(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		sd := mustLocal(t, 10, 2, distr.Block, 0)
		cd := mustLocal(t, 10, 2, distr.Cyclic, 0)
		c, err := collection.New[plist](n, cd)
		if err != nil {
			return err
		}
		s, err := Open(n, sd, "f")
		if err != nil {
			return err
		}
		defer s.Close()
		if err := Insert[plist](s, c); !errors.Is(err, ErrNotAligned) {
			return fmt.Errorf("misaligned insert: %v, want ErrNotAligned", err)
		}
		return nil
	})
}

// TestVirtualTimeDeterministic: the full write+read pipeline yields
// identical virtual times across runs.
func TestVirtualTimeDeterministic(t *testing.T) {
	runOnce := func() []float64 {
		fs := pfs.NewMemFS(vtime.Paragon())
		res, err := machine.Run(machine.Config{NProcs: 4, Profile: vtime.Paragon(), FS: fs},
			func(n *machine.Node) error {
				d, _ := distr.New(40, 4, distr.Cyclic, 0)
				if err := writePlists(n, d, "f", Options{}); err != nil {
					return err
				}
				rd, _ := distr.New(40, 4, distr.Block, 0)
				_, err := readPlists(n, rd, "f", true)
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res.NodeTimes
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestUnsortedFasterThanSorted: with a changed distribution, unsortedRead
// must beat sorted read (it skips the all-to-all), the §3 performance claim.
func TestUnsortedFasterThanSorted(t *testing.T) {
	elapsed := func(sorted bool) float64 {
		fs := pfs.NewMemFS(vtime.Paragon())
		res, err := machine.Run(machine.Config{NProcs: 4, Profile: vtime.Paragon(), FS: fs},
			func(n *machine.Node) error {
				wd, _ := distr.New(2000, 4, distr.Cyclic, 0)
				if err := writePlists(n, wd, "f", Options{}); err != nil {
					return err
				}
				n.Clock().Reset()
				rd, _ := distr.New(2000, 4, distr.Block, 0)
				_, err := readPlists(n, rd, "f", sorted)
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	sortedT, unsortedT := elapsed(true), elapsed(false)
	if unsortedT >= sortedT {
		t.Fatalf("unsortedRead (%v) not faster than read (%v)", unsortedT, sortedT)
	}
}

// TestRoundTripRandomized: property-style sweep over random shapes,
// distributions, writer/reader proc counts and element sizes.
func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 12; iter++ {
		n := rng.Intn(40) + 1
		wp := rng.Intn(5) + 1
		rp := rng.Intn(5) + 1
		wm := distr.Mode(rng.Intn(3))
		rm := distr.Mode(rng.Intn(3))
		wb := rng.Intn(4) + 1
		rb := rng.Intn(4) + 1
		sorted := rng.Intn(2) == 0
		name := fmt.Sprintf("rt-%d", iter)

		fs := pfs.NewMemFS(vtime.Challenge())
		if _, err := machine.Run(machine.Config{NProcs: wp, Profile: vtime.Challenge(), FS: fs},
			func(nd *machine.Node) error {
				d, err := distr.New(n, wp, wm, wb)
				if err != nil {
					return err
				}
				return writePlists(nd, d, name, Options{})
			}); err != nil {
			t.Fatalf("iter %d write: %v", iter, err)
		}

		collected := make(chan plist, n)
		if _, err := machine.Run(machine.Config{NProcs: rp, Profile: vtime.Challenge(), FS: fs},
			func(nd *machine.Node) error {
				d, err := distr.New(n, rp, rm, rb)
				if err != nil {
					return err
				}
				c, err := readPlists(nd, d, name, sorted)
				if err != nil {
					return err
				}
				var bad error
				c.Apply(func(g int, e *plist) {
					if sorted && !plistEqual(*e, mkPlist(g)) {
						bad = fmt.Errorf("global %d mismatch", g)
					}
					collected <- *e
				})
				return bad
			}); err != nil {
			t.Fatalf("iter %d read (n=%d wp=%d rp=%d wm=%v rm=%v sorted=%v): %v",
				iter, n, wp, rp, wm, rm, sorted, err)
		}
		close(collected)
		// For unsorted reads check the multiset.
		counts := map[string]int{}
		for p := range collected {
			counts[fmt.Sprintf("%v%v%v", p.N, p.Mass, p.X)]++
		}
		for g := 0; g < n; g++ {
			p := mkPlist(g)
			counts[fmt.Sprintf("%v%v%v", p.N, p.Mass, p.X)]--
		}
		for k, v := range counts {
			if v != 0 {
				t.Fatalf("iter %d: multiset mismatch for %s (%+d)", iter, k, v)
			}
		}
	}
}

// TestIOFaultSurfacesEverywhere: an injected backend fault must turn into
// an error on every node, not a hang.
func TestIOFaultSurfacesEverywhere(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	if err := fs.InjectFault("f", 2); err != nil {
		t.Fatal(err)
	}
	_, err := machine.Run(machine.Config{NProcs: 2, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(8, 2, distr.Block, 0)
			return writePlists(n, d, "f", Options{})
		})
	if err == nil {
		t.Fatal("write with injected fault succeeded")
	}
	if !errors.Is(err, pfs.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// TestZeroSizeElements: elements may legally encode nothing.
func TestZeroSizeElements(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		d := mustLocal(t, 6, 2, distr.Cyclic, 0)
		s, err := Open(n, d, "f")
		if err != nil {
			return err
		}
		if err := s.InsertFunc(func(l int, e *Encoder) {
			// Odd global elements encode nothing at all.
			if s.Dist().GlobalIndex(n.Rank(), l)%2 == 0 {
				e.Int64(42)
			}
		}); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		in, err := OpenInput(n, d, "f")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		return in.ExtractFunc(func(l int, dec *Decoder) {
			if in.Dist().GlobalIndex(n.Rank(), l)%2 == 0 {
				if got := dec.Int64(); got != 42 {
					panic(fmt.Sprintf("got %d", got))
				}
			}
		})
	})
}

// TestMoreProcsThanElements: empty nodes participate in all collectives.
func TestMoreProcsThanElements(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 6, fs, func(n *machine.Node) error {
		d := mustLocal(t, 3, 6, distr.Block, 0)
		if err := writePlists(n, d, "f", Options{}); err != nil {
			return err
		}
		c, err := readPlists(n, d, "f", true)
		if err != nil {
			return err
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if !plistEqual(*e, mkPlist(g)) {
				bad = fmt.Errorf("global %d mismatch", g)
			}
		})
		return bad
	})
}

func TestOutputValidation(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		wrong := mustDist(t, 8, 3, distr.Block, 0) // 3 procs on 2-node machine
		if _, err := Open(n, wrong, "f"); err == nil {
			return fmt.Errorf("wrong-procs output accepted")
		}
		if _, err := OpenInput(n, wrong, "f"); err == nil {
			return fmt.Errorf("wrong-procs input accepted")
		}
		return nil
	})
}
