package dstream

import (
	"fmt"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/plan"
	"pcxxstreams/internal/trace"
)

// OStream is an output d/stream: a per-node buffer bound to a file, into
// which aligned collections are inserted and then written with one parallel
// operation per record. Declare one per distribution/alignment, as in the
// paper: `oStream s(&d, &a, "wholeGridFile")`.
type OStream struct {
	stream
	opts Options
	// group is the current interleave group: one entry per insert since
	// the last write; each entry holds the encoded payload of every local
	// element, in local order.
	group [][][]byte
	// groupBytes tracks the encoded payload bytes buffered in group — the
	// buffer fill level the dstream_buffer_fill_bytes gauge reports.
	groupBytes int64
	wrote      int // records written
	// pending is the completion time of the latest asynchronous write; the
	// clock must reach it before the stream's data is durable.
	pending float64

	// Steady-state scratch: the element encoder reused across inserts, the
	// per-insert payload-slice arrays recycled between flushes (their pooled
	// payloads are released at each Write), and the local size table reused
	// across flushes.
	encScratch  Encoder
	arrFree     [][][]byte
	sizeScratch []uint32

	// Causal-graph state, all zero when the run is not tracing: the span
	// IDs of the inserts encoded into the record being flushed (each gets
	// an encode→write edge), the record flush span (reserved before the
	// strategy runs so the shuffle can link to it), and the async disk
	// spans the next Drain will wait on.
	insertSpans  []trace.SpanID
	writeSpan    trace.SpanID
	pendingSpans []trace.SpanID

	// Cost-model planner state (nil planner = the paper's static
	// heuristic). descLen caches the descriptor section's byte length (it
	// never changes between records); planTotal carries the record's
	// agreed total data bytes from the plan agreement to writeParallel,
	// which then skips its own Allreduce; planStart/planStrat/planEst
	// feed the post-flush observation back to the planner.
	planner   *plan.Planner
	planMet   *planMetrics
	descLen   int
	planK     int
	planTotal int64
	planStrat plan.Strategy
	planEst   float64
	planStart float64
}

// openOutput is the collective open every output constructor funnels into.
// Every node of the machine must make the matching call.
func openOutput(node *machine.Node, d *distr.Distribution, name string, opts Options) (*OStream, error) {
	if d.NProcs != node.Size() {
		return nil, fmt.Errorf("dstream: distribution over %d procs on a %d-node machine", d.NProcs, node.Size())
	}
	if err := opts.validateFor(dirOutput); err != nil {
		return nil, err
	}
	f, err := openFile(node, opts, name, !opts.Append)
	if err != nil {
		return nil, fmt.Errorf("dstream: open output %q: %w", name, err)
	}
	s := &OStream{
		stream: stream{node: node, dist: d, f: f, name: name, met: newStreamMetrics(node.Monitor()), tag: streamTag(name)},
		opts:   opts,
	}
	if opts.plannerEnabled() {
		s.planner = s.newStreamPlanner()
		s.planMet = newPlanMetrics(s.met, node.Rank())
		_, desc := headerFor(d, 1, 0)
		s.descLen = len(desc)
	}
	// Node 0 stamps (or, in append mode, validates) the file header; the
	// control sync both orders that before any parallel append and models
	// the PFS open synchronization.
	if opts.Append {
		// Node 0 validates the existing header and broadcasts the verdict,
		// so a bad file fails every node together instead of leaving peers
		// waiting at the open rendezvous.
		verdict := []byte{1}
		if node.Rank() == 0 {
			hdr := make([]byte, enc.FileHeaderLen)
			if err := f.ReadAt(hdr, 0); err != nil {
				verdict = []byte(err.Error())
			} else if err := enc.CheckFileHeader(hdr); err != nil {
				verdict = []byte(err.Error())
			}
		}
		verdict, err := node.Comm().Bcast(0, verdict)
		if err != nil {
			f.Close()
			return nil, s.fail(fmt.Errorf("dstream: append open sync: %w", err))
		}
		if len(verdict) != 1 || verdict[0] != 1 {
			f.Close()
			return nil, s.fail(fmt.Errorf("dstream: append to %q: %s", name, verdict))
		}
	} else if node.Rank() == 0 {
		if err := f.WriteAt(enc.EncodeFileHeader(), 0); err != nil {
			f.Close()
			return nil, s.fail(fmt.Errorf("dstream: write file header: %w", err))
		}
	}
	if err := f.ControlSync(); err != nil {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open sync: %w", err))
	}
	return s, nil
}

// LocalLen returns the number of elements this node contributes per insert.
func (s *OStream) LocalLen() int { return s.dist.LocalCount(s.node.Rank()) }

// Pending returns the number of inserts in the current interleave group.
func (s *OStream) Pending() int { return len(s.group) }

// Records returns the number of records written so far.
func (s *OStream) Records() int { return s.wrote }

// FileSize returns the current byte length of the underlying file image
// (header plus all committed records). Checkpoint managers use it to seal
// commit markers.
func (s *OStream) FileSize() int64 {
	if s.f == nil {
		return 0
	}
	return s.f.Size()
}

// InsertFunc is the low-level insert primitive: fill is called once per
// locally owned element, in local order, and appends that element's payload
// to the encoder. The generic helpers (Insert, InsertField, …) are built on
// it. Inserting charges the per-element pointer-list traversal cost of
// Figure 4.
func (s *OStream) InsertFunc(fill func(local int, e *Encoder)) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	start := s.node.Clock().Now()
	n := s.LocalLen()
	var arr [][]byte
	if f := len(s.arrFree); f > 0 && cap(s.arrFree[f-1]) >= n {
		arr = s.arrFree[f-1][:n]
		s.arrFree = s.arrFree[:f-1]
	} else {
		arr = make([][]byte, n)
	}
	e := &s.encScratch
	var arrBytes int64
	for l := 0; l < n; l++ {
		e.Reset()
		fill(l, e)
		p := bufpool.Get(e.Len())
		copy(p, e.Bytes())
		arr[l] = p
		arrBytes += int64(len(p))
	}
	s.group = append(s.group, arr)
	s.groupBytes += arrBytes
	s.met.inserts.Inc()
	s.met.fill.Add(float64(arrBytes))
	s.node.Compute(float64(n) * s.node.Profile().PerElemCost)
	if rec := s.met.mon.Recorder(); rec != nil {
		id := rec.AddSpan(s.node.Rank(), "dstream", "ostream.Insert "+s.name, start, s.node.Clock().Now())
		s.insertSpans = append(s.insertSpans, id)
	}
	return nil
}

// Write flushes the current interleave group as one record (§4.1): the
// per-element pointer lists are traversed, data is packed into the per-node
// buffer, the metadata (distribution descriptor and per-element sizes) is
// placed ahead of the data — through node 0 for small collections, with a
// parallel write for large ones — and the data is written with one parallel
// operation in node order.
func (s *OStream) Write() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if len(s.group) == 0 {
		return s.fail(fmt.Errorf("%w: write with no pending inserts", ErrOrder))
	}
	start := s.node.Clock().Now()
	nArrays := len(s.group)
	nLocal := s.LocalLen()
	rec := s.met.mon.Recorder()
	if rec != nil {
		// Reserve the flush span up front: the encode edges below and the
		// two-phase shuffle's stripe-write edges reference it before the
		// span's end time is known.
		s.writeSpan = rec.NewSpanID()
		for _, id := range s.insertSpans {
			rec.AddFlow(id, s.writeSpan, "encode")
		}
		s.insertSpans = s.insertSpans[:0]
	}

	// Per-element sizes (local order) with the group's arrays interleaved.
	if cap(s.sizeScratch) < nLocal {
		s.sizeScratch = make([]uint32, nLocal)
	}
	localSizes := s.sizeScratch[:nLocal]
	for l := range localSizes {
		localSizes[l] = 0
	}
	var localBytes int
	for _, arr := range s.group {
		for l, p := range arr {
			localSizes[l] += uint32(len(p))
			localBytes += len(p)
		}
	}
	// Pack the per-node data buffer: element-major, interleaving the
	// group's arrays (Figure 4's pointer-list traversal). The pooled element
	// payloads are released as soon as their bytes are packed; the emptied
	// per-insert arrays are recycled for the next group.
	data := bufpool.GetCap(localBytes)
	for l := 0; l < nLocal; l++ {
		for _, arr := range s.group {
			data = append(data, arr[l]...)
		}
	}
	for _, arr := range s.group {
		for l, p := range arr {
			bufpool.Put(p)
			arr[l] = nil
		}
		s.arrFree = append(s.arrFree, arr)
	}
	s.node.CopyCost(int64(localBytes) + int64(4*nLocal))
	s.group = s.group[:0]
	s.met.fill.Add(-float64(s.groupBytes))
	s.groupBytes = 0

	var werr error
	strat := s.opts.strategy(s.dist.N)
	if s.planner != nil {
		strat, werr = s.planRecord(localBytes)
	}
	if werr == nil {
		switch strat {
		case StrategyFunnel:
			werr = s.writeFunnel(nArrays, localSizes, data)
		case StrategyTwoPhase:
			werr = s.writeTwoPhase(nArrays, localSizes, data)
		default:
			werr = s.writeParallel(nArrays, localSizes, data)
		}
	}
	// Every strategy's bytes are on the wire or in the file by the time it
	// returns (parallel appends complete inside the rendezvous, transports
	// copy on send), so the packed buffer can be released even on failure.
	bufpool.Put(data)
	if werr != nil {
		return s.fail(fmt.Errorf("%w: %w", ErrIO, werr))
	}
	s.wrote++
	end := s.node.Clock().Now()
	if s.planner != nil {
		// The strategy's closing rendezvous left every rank's clock at the
		// same instant, and planStart was equalized by the plan agreement:
		// the delta is a rank-identical observation, fed back for free.
		obs := end - s.planStart
		s.planner.Observe(s.planStrat, s.planEst, obs)
		s.planMet.observed.Observe(obs)
	}
	s.met.writes.Inc()
	s.met.flushBytes.Observe(float64(localBytes))
	s.met.flushStall.Observe(end - start)
	if rec != nil {
		rec.AddSpanID(s.writeSpan, s.node.Rank(), "dstream", "ostream.Write "+s.name, start, end)
	}
	return nil
}

// planRecord agrees on the record's total data bytes — one 8-byte
// Allreduce, the same agreement writeParallel performs anyway, hoisted
// ahead of the strategy choice — and asks the planner for this record's
// plan. The Allreduce both supplies a rank-identical geometry and
// equalizes the group's virtual clocks, so every rank picks the same
// strategy with no further communication and the post-flush clock delta
// is a common observation.
func (s *OStream) planRecord(localBytes int) (Strategy, error) {
	total, err := s.node.Comm().Allreduce(float64(localBytes), collective.OpSum)
	if err != nil {
		return StrategyAuto, fmt.Errorf("dstream: plan agreement: %w", err)
	}
	s.planTotal = int64(total)
	g := plan.Geometry{
		NProcs:    s.dist.NProcs,
		NElems:    s.dist.N,
		DataBytes: s.planTotal,
		MetaBytes: s.metaBytesFor(s.descLen),
	}
	d := s.planner.PlanWrite(g, s.opts.Aggregators)
	s.planK = d.Aggregators
	s.planStrat = d.Strategy
	s.planEst = d.RawEstimate
	s.planStart = s.node.Clock().Now()
	s.planMet.note(s.planner, d)
	if d.Switched {
		s.planSwitchSpan(d)
	}
	return fromPlanStrategy(d.Strategy), nil
}

// writeFunnel gathers the size table to node 0, which writes the record
// header and the whole table at the head of its per-node block; one
// parallel append moves everything (§4.1: "collected into node zero and
// placed at the head of the per-node buffer on that node so that it can be
// written with the actual data").
func (s *OStream) writeFunnel(nArrays int, localSizes []uint32, data []byte) error {
	comm := s.node.Comm()
	st := enc.AppendSizeTable(bufpool.GetCap(4*len(localSizes)), localSizes)
	parts, err := comm.Gather(0, st)
	if err != nil {
		bufpool.Put(st)
		return fmt.Errorf("dstream: gather sizes: %w", err)
	}
	if s.node.Rank() != 0 {
		// The transport copied st on send; the non-root block is just data,
		// which Write releases.
		bufpool.Put(st)
		return s.appendRecordBlock(data, "funnel append")
	}
	allSizes := bufpool.GetCap(4 * s.dist.N)
	for _, p := range parts {
		allSizes = append(allSizes, p...)
	}
	// parts[0] aliases st (Gather returns the root's own contribution
	// as-is); the rest arrived from the wire and are ours to release.
	for r, p := range parts {
		if r != 0 {
			bufpool.Put(p)
		}
	}
	bufpool.Put(st)
	total, derr := enc.SumSizeTable(allSizes, s.dist.N)
	if derr != nil {
		bufpool.Put(allSizes)
		return fmt.Errorf("dstream: reassemble size table: %w", derr)
	}
	h, desc := headerFor(s.dist, nArrays, total)
	block := bufpool.GetCap(enc.RecordHeaderLen + len(desc) + len(allSizes) + len(data))
	block = h.AppendTo(block)
	block = append(block, desc...)
	block = append(block, allSizes...)
	block = append(block, data...)
	bufpool.Put(allSizes)
	err = s.appendRecordBlock(block, "funnel append")
	bufpool.Put(block)
	return err
}

// appendRecordBlock moves one per-node block to the file, synchronously or
// write-behind per Options.Async.
func (s *OStream) appendRecordBlock(block []byte, what string) error {
	if s.opts.Async {
		_, completion, err := s.f.ParallelAppendAsync(block)
		if err != nil {
			return fmt.Errorf("dstream: %s: %w", what, err)
		}
		if completion > s.pending {
			s.pending = completion
		}
		// The disk keeps transferring past this point while the node
		// computes: the write-behind overlap the paper's synchronous
		// primitive cannot have.
		if overlap := completion - s.node.Clock().Now(); overlap > 0 {
			s.met.asyncOverlap.Observe(overlap)
		}
		if id := s.f.LastAsyncSpan(); id != 0 {
			s.pendingSpans = append(s.pendingSpans, id)
		}
		return nil
	}
	if _, err := s.f.ParallelAppend(block); err != nil {
		return fmt.Errorf("dstream: %s: %w", what, err)
	}
	return nil
}

// Drain blocks (in virtual time) until every asynchronous write has landed
// on disk. A no-op for synchronous streams.
func (s *OStream) Drain() {
	now := s.node.Clock().Now()
	if stall := s.pending - now; stall > 0 {
		s.met.drainStall.Observe(stall)
		if rec := s.met.mon.Recorder(); rec != nil {
			id := rec.AddSpan(s.node.Rank(), "dstream", "ostream.Drain "+s.name, now, s.pending)
			// Link the drain to the async disk spans it is waiting out.
			for _, p := range s.pendingSpans {
				rec.AddFlow(p, id, "drain")
			}
		}
	}
	s.pendingSpans = s.pendingSpans[:0]
	s.node.Clock().SyncTo(s.pending)
}

// writeParallel writes the metadata section with its own parallel append
// (node 0 prefixes the record header to its slice of the size table), then
// the data section with a second parallel append.
func (s *OStream) writeParallel(nArrays int, localSizes []uint32, data []byte) error {
	var total float64
	if s.planner != nil {
		// The plan agreement already summed the group's data bytes; don't
		// pay a second Allreduce.
		total = float64(s.planTotal)
	} else {
		var err error
		total, err = s.node.Comm().Allreduce(float64(len(data)), collective.OpSum)
		if err != nil {
			return fmt.Errorf("dstream: sum data bytes: %w", err)
		}
	}
	var meta []byte
	if s.node.Rank() == 0 {
		h, desc := headerFor(s.dist, nArrays, uint64(total))
		meta = bufpool.GetCap(enc.RecordHeaderLen + len(desc) + 4*len(localSizes))
		meta = h.AppendTo(meta)
		meta = append(meta, desc...)
		meta = enc.AppendSizeTable(meta, localSizes)
	} else {
		meta = enc.AppendSizeTable(bufpool.GetCap(4*len(localSizes)), localSizes)
	}
	_, err := s.f.ParallelAppend(meta)
	bufpool.Put(meta)
	if err != nil {
		return fmt.Errorf("dstream: meta append: %w", err)
	}
	return s.appendRecordBlock(data, "data append")
}

// Close releases the stream. As in pC++/streams, where close lives in the
// d/stream destructor, Close is idempotent and safe to defer.
func (s *OStream) Close() error {
	if s.f == nil {
		return nil
	}
	s.Drain()
	err := s.f.Close()
	s.f = nil
	if len(s.group) > 0 {
		// Data inserted but never written is lost; surface it.
		if err == nil {
			err = fmt.Errorf("%w: close with %d unwritten inserts", ErrOrder, len(s.group))
		}
	}
	return err
}

// Node returns the owning node.
func (s *OStream) Node() *machine.Node { return s.node }

// Dist returns the stream's distribution.
func (s *OStream) Dist() *distr.Distribution { return s.dist }
