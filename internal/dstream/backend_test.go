package dstream

import (
	"bytes"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestBackendsProduceIdenticalImages runs the identical stream program
// against the in-memory backend and the on-disk backend and asserts the
// resulting file images are byte-equal — the DESIGN.md invariant that the
// storage substitution is behaviour-preserving.
func TestBackendsProduceIdenticalImages(t *testing.T) {
	dir := t.TempDir()
	memFS := pfs.NewMemFS(vtime.Paragon())
	osFS := pfs.NewFileSystem(vtime.Paragon(), pfs.OSFactory(dir))

	program := func(fs *pfs.FileSystem) machine.Result {
		res, err := machine.Run(machine.Config{NProcs: 3, Profile: vtime.Paragon(), FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(14, 3, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				if err := writePlists(n, d, "img", Options{}); err != nil {
					return err
				}
				// Append a second record through a second stream on the
				// same file to exercise reopen-without-truncate too? No:
				// Output truncates; read instead to exercise both sides.
				rd, err := distr.New(14, 3, distr.Block, 0)
				if err != nil {
					return err
				}
				_, err = readPlists(n, rd, "img", true)
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	resMem := program(memFS)
	resOS := program(osFS)

	memImg, err := memFS.Image("img")
	if err != nil {
		t.Fatal(err)
	}
	osImg, err := osFS.Image("img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memImg, osImg) {
		t.Fatalf("file images differ: mem %d bytes, os %d bytes", len(memImg), len(osImg))
	}
	// Virtual time is also backend-independent (cost model only sees sizes
	// and offsets).
	for r := range resMem.NodeTimes {
		if resMem.NodeTimes[r] != resOS.NodeTimes[r] {
			t.Fatalf("rank %d virtual time differs by backend: %v vs %v",
				r, resMem.NodeTimes[r], resOS.NodeTimes[r])
		}
	}
	// And the op profiles match exactly.
	if resMem.IO != resOS.IO {
		t.Fatalf("op profiles differ:\nmem %+v\nos  %+v", resMem.IO, resOS.IO)
	}
}
