package dstream

import (
	"errors"
	"fmt"
	"testing"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// writeRecordSeq writes `records` records of plist elements to name, each
// record's values keyed by (global index, record number) so cross-record
// mixups are detectable.
func writeRecordSeq(t *testing.T, fs *pfs.FileSystem, nprocs, nElems, records int, name string) {
	t.Helper()
	run(t, nprocs, fs, func(n *machine.Node) error {
		d := mustDist(t, nElems, nprocs, distr.Block, 0)
		s, err := Open(n, d, name)
		if err != nil {
			return err
		}
		defer s.Close()
		c, err := collection.New[plist](n, d)
		if err != nil {
			return err
		}
		for r := 0; r < records; r++ {
			r := r
			c.Apply(func(g int, e *plist) { *e = mkPlist(g + r*37) })
			if err := Insert[plist](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		return nil
	})
}

// readRecordSeq reads `records` records under the given options and, for
// sorted reads, verifies every element against the writeRecordSeq values.
func readRecordSeq(n *machine.Node, d *distr.Distribution, name string, records int, sorted bool, opts ...Option) error {
	s, err := OpenInput(n, d, name, opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	c, err := collection.New[plist](n, d)
	if err != nil {
		return err
	}
	for r := 0; r < records; r++ {
		if sorted {
			err = s.Read()
		} else {
			err = s.UnsortedRead()
		}
		if err != nil {
			return fmt.Errorf("record %d: %w", r, err)
		}
		if err := Extract[plist](s, c); err != nil {
			return fmt.Errorf("record %d: %w", r, err)
		}
		if !sorted {
			continue
		}
		var bad error
		c.Apply(func(g int, e *plist) {
			if want := mkPlist(g + r*37); bad == nil && !plistEqual(*e, want) {
				bad = fmt.Errorf("record %d element %d mismatch", r, g)
			}
		})
		if bad != nil {
			return bad
		}
	}
	if s.More() {
		return fmt.Errorf("More() true after %d records", records)
	}
	return s.Close()
}

// TestReadAheadByteIdentity: every strategy × reader layout × depth ×
// sorted/unsorted combination must deliver exactly the bytes the
// synchronous (depth 0) path delivers — the prefetch pipeline is a pure
// performance feature.
func TestReadAheadByteIdentity(t *testing.T) {
	const nprocs, nElems, records = 4, 23, 5
	for _, strat := range []Strategy{StrategyParallel, StrategyTwoPhase} {
		for _, mode := range []distr.Mode{distr.Block, distr.Cyclic} {
			for _, sorted := range []bool{true, false} {
				for _, depth := range []int{1, 2, 4, 8} {
					strat, mode, sorted, depth := strat, mode, sorted, depth
					t.Run(fmt.Sprintf("%s-%s-sorted=%v-depth=%d", strat, mode, sorted, depth), func(t *testing.T) {
						fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
						writeRecordSeq(t, fs, nprocs, nElems, records, "f")
						run(t, nprocs, fs, func(n *machine.Node) error {
							d := mustDist(t, nElems, nprocs, mode, 0)
							return readRecordSeq(n, d, "f", records, sorted,
								WithStrategy(strat), WithReadAhead(depth))
						})
					})
				}
			}
		}
	}
}

// TestReadAheadHitMetrics: with the pipeline primed at open, every read of
// a steady-state consumer is a hit, and the overlap histogram records one
// observation per hit.
func TestReadAheadHitMetrics(t *testing.T) {
	const nprocs, nElems, records = 4, 23, 4
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
	writeRecordSeq(t, fs, nprocs, nElems, records, "f")
	mon := dsmon.New()
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs, Monitor: mon},
		func(n *machine.Node) error {
			d := mustDist(t, nElems, nprocs, distr.Block, 0)
			return readRecordSeq(n, d, "f", records, true, WithReadAhead(2))
		})
	if err != nil {
		t.Fatal(err)
	}
	reg := mon.Registry()
	hits := reg.Counter("dstream_prefetch_hits_total", "").Value()
	if want := int64(nprocs * records); hits != want {
		t.Errorf("prefetch hits = %d, want %d", hits, want)
	}
	if wasted := reg.Counter("dstream_prefetch_wasted_bytes_total", "").Value(); wasted != 0 {
		t.Errorf("wasted bytes = %d on a fully consumed stream", wasted)
	}
	if c := reg.Histogram("dstream_prefetch_overlap_seconds", "", dsmon.LatencyBuckets).Count(); c != hits {
		t.Errorf("overlap observations = %d, want %d", c, hits)
	}
}

// TestReadAheadSkipAndPeek: Skip consumes a queued prefetch without I/O
// (counting its data as wasted), NextElems peeks the queue, and the records
// around the skipped one still read back correctly.
func TestReadAheadSkipAndPeek(t *testing.T) {
	const nprocs, nElems, records = 4, 23, 4
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
	writeRecordSeq(t, fs, nprocs, nElems, records, "f")
	mon := dsmon.New()
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs, Monitor: mon},
		func(n *machine.Node) error {
			d := mustDist(t, nElems, nprocs, distr.Block, 0)
			s, err := OpenInput(n, d, "f", WithReadAhead(2))
			if err != nil {
				return err
			}
			defer s.Close()
			c, err := collection.New[plist](n, d)
			if err != nil {
				return err
			}
			for r := 0; r < records; r++ {
				if ne, err := s.NextElems(); err != nil || ne != nElems {
					return fmt.Errorf("NextElems before record %d = %d, %v", r, ne, err)
				}
				if r%2 == 1 {
					if err := s.Skip(); err != nil {
						return fmt.Errorf("skip record %d: %w", r, err)
					}
					continue
				}
				if err := s.Read(); err != nil {
					return fmt.Errorf("read record %d: %w", r, err)
				}
				if err := Extract[plist](s, c); err != nil {
					return err
				}
				var bad error
				c.Apply(func(g int, e *plist) {
					if want := mkPlist(g + r*37); bad == nil && !plistEqual(*e, want) {
						bad = fmt.Errorf("record %d element %d mismatch after skip interleave", r, g)
					}
				})
				if bad != nil {
					return bad
				}
			}
			return s.Close()
		})
	if err != nil {
		t.Fatal(err)
	}
	if wasted := mon.Registry().Counter("dstream_prefetch_wasted_bytes_total", "").Value(); wasted == 0 {
		t.Error("skipping prefetched records counted no wasted bytes")
	}
}

// TestReadAheadStrict: the Figure 2 contract survives the pipeline — a
// prefetched Skip over a partially extracted record is still refused.
func TestReadAheadStrict(t *testing.T) {
	const nprocs, nElems = 4, 23
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
	writeRecordSeq(t, fs, nprocs, nElems, 3, "f")
	run(t, nprocs, fs, func(n *machine.Node) error {
		d := mustDist(t, nElems, nprocs, distr.Block, 0)
		s, err := OpenInput(n, d, "f", WithReadAhead(2), WithStrict())
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err != nil {
			return err
		}
		if err := s.Skip(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("strict skip over unextracted record: err = %v, want ErrOrder", err)
		}
		return nil
	})
}

// TestReadAheadBufferRelease: a read-ahead pipeline returns every pooled
// buffer on Close — including queued prefetches killed by an early close.
// The invariant is "same metadata loads, same outstanding": a reader
// retains its broadcast metadata frames (receive frames are re-sliced by
// the transport, so the pool counts them outstanding forever — the
// documented retained-forever case), and that retention grows with the
// number of records whose front matter was fetched, never with the
// prefetch depth. A depth-k reader closed after one record has loaded
// 1+k records' metadata, so it must match a synchronous reader of 1+k
// records exactly; any surplus is a data buffer the pipeline dropped.
func TestReadAheadBufferRelease(t *testing.T) {
	const nprocs, nElems, records = 4, 23, 4
	const depth = 2
	delta := func(depth, reads int) int64 {
		fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
		writeRecordSeq(t, fs, nprocs, nElems, records, "f")
		before := bufpool.Stats().Outstanding
		run(t, nprocs, fs, func(n *machine.Node) error {
			d := mustDist(t, nElems, nprocs, distr.Block, 0)
			var opts []Option
			if depth > 0 {
				opts = append(opts, WithReadAhead(depth))
			} else {
				// An explicit strategy keeps the planner (which would
				// otherwise start prefetching on its own) out of the
				// baseline: this reader must be genuinely synchronous.
				opts = append(opts, WithStrategy(StrategyParallel))
			}
			s, err := OpenInput(n, d, "f", opts...)
			if err != nil {
				return err
			}
			defer s.Close()
			c, err := collection.New[plist](n, d)
			if err != nil {
				return err
			}
			for r := 0; r < reads; r++ {
				if err := s.Read(); err != nil {
					return err
				}
				if err := Extract[plist](s, c); err != nil {
					return err
				}
			}
			return s.Close()
		})
		return bufpool.Stats().Outstanding - before
	}
	// Full drain: both readers load all `records` records' metadata.
	if sync, ahead := delta(0, records), delta(depth, records); ahead != sync {
		t.Errorf("full drain: read-ahead outstanding delta %d != sync %d", ahead, sync)
	}
	// Early close after one record: the pipeline has loaded metadata for
	// 1+depth records and must release every queued data buffer.
	if sync, ahead := delta(0, 1+depth), delta(depth, 1); ahead != sync {
		t.Errorf("early close: read-ahead outstanding delta %d != sync reader of %d records %d",
			ahead, 1+depth, sync)
	}
}

// TestReadAheadStallsLower: the point of the pipeline — with computation
// between reads, the refill stall of a read-ahead consumer is strictly
// below the synchronous consumer's on the same file.
func TestReadAheadStallsLower(t *testing.T) {
	const nprocs, nElems, records = 4, 23, 5
	stall := func(depth int, strat Strategy) float64 {
		fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
		writeRecordSeq(t, fs, nprocs, nElems, records, "f")
		mon := dsmon.New()
		_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs, Monitor: mon},
			func(n *machine.Node) error {
				d := mustDist(t, nElems, nprocs, distr.Block, 0)
				var opts []Option
				opts = append(opts, WithStrategy(strat))
				if depth > 0 {
					opts = append(opts, WithReadAhead(depth))
				}
				s, err := OpenInput(n, d, "f", opts...)
				if err != nil {
					return err
				}
				defer s.Close()
				c, err := collection.New[plist](n, d)
				if err != nil {
					return err
				}
				for r := 0; r < records; r++ {
					if err := s.Read(); err != nil {
						return err
					}
					if err := Extract[plist](s, c); err != nil {
						return err
					}
					n.Compute(0.005) // computation the transfer can hide under
				}
				return s.Close()
			})
		if err != nil {
			t.Fatal(err)
		}
		return mon.Registry().Histogram("dstream_refill_stall_seconds", "", dsmon.LatencyBuckets).Sum()
	}
	for _, strat := range []Strategy{StrategyParallel, StrategyTwoPhase} {
		sync, ahead := stall(0, strat), stall(2, strat)
		if ahead >= sync {
			t.Errorf("%s: read-ahead stall %.6fs not below sync stall %.6fs", strat, ahead, sync)
		}
	}
}
