package dstream

import (
	"strings"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// TestShuffleWriteFlow pins the dstream write chain's causal edges on the
// two-phase path: every rank's encode work (ostream.Insert spans) feeds its
// record write span, and every contributor's shuffle span feeds the
// aggregator write spans that persist its bytes — with edges pointing at
// spans that exist, on the right ranks, in timestamp order.
func TestShuffleWriteFlow(t *testing.T) {
	const nprocs, nElems = 4, 64
	fs := pfs.NewFileSystem(vtime.Paragon(), pfs.StripedMemFactory(3, 256))
	mon := dsmon.NewTracing()
	_, err := machine.Run(machine.Config{
		NProcs: nprocs, Profile: vtime.Paragon(), FS: fs, Monitor: mon,
	}, func(n *machine.Node) error {
		d, err := distr.New(nElems, nprocs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		s, err := Open(n, d, "f", WithStrategy(StrategyTwoPhase))
		if err != nil {
			return err
		}
		c, err := collection.New[plist](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, p *plist) { *p = mkPlist(g) })
		if err := Insert[plist](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	rec := mon.Recorder()
	byID := map[trace.SpanID]trace.Event{}
	for _, ev := range rec.Events() {
		if ev.ID != 0 {
			byID[ev.ID] = ev
		}
	}
	var encodeEdges, shuffleEdges int
	shuffleSinkRanks := map[int]bool{}
	for _, f := range rec.Flows() {
		from, okF := byID[f.From]
		to, okT := byID[f.To]
		switch f.Kind {
		case "encode":
			encodeEdges++
			if !okF || !okT {
				t.Fatalf("encode edge %v has a dangling endpoint", f)
			}
			if !strings.HasPrefix(from.Name, "ostream.Insert") {
				t.Fatalf("encode edge source = %+v, want an ostream.Insert span", from)
			}
			if !strings.HasPrefix(to.Name, "ostream.Write") {
				t.Fatalf("encode edge sink = %+v, want an ostream.Write span", to)
			}
			if from.Node != to.Node {
				t.Fatalf("encode edge crosses ranks: %+v → %+v", from, to)
			}
			if from.End > to.End {
				t.Fatalf("insert span ends (%v) after its write span (%v)", from.End, to.End)
			}
		case "shuffle":
			shuffleEdges++
			if !okF || !okT {
				t.Fatalf("shuffle edge %v has a dangling endpoint", f)
			}
			if !strings.HasPrefix(from.Name, "twophase.shuffle") {
				t.Fatalf("shuffle edge source = %+v, want a twophase.shuffle span", from)
			}
			if !strings.HasPrefix(to.Name, "ostream.Write") {
				t.Fatalf("shuffle edge sink = %+v, want the aggregator's ostream.Write span", to)
			}
			if from.Start > to.End {
				t.Fatalf("shuffle span starts (%v) after the stripe write ended (%v)", from.Start, to.End)
			}
			shuffleSinkRanks[to.Node] = true
		}
	}
	if encodeEdges == 0 {
		t.Fatal("no encode edges recorded")
	}
	if shuffleEdges == 0 {
		t.Fatal("no shuffle edges recorded")
	}
	// The striped store has 3 devices, so the plan elects min(3, nprocs)
	// aggregators; shuffle edges must converge on aggregator ranks only.
	if len(shuffleSinkRanks) > 3 {
		t.Fatalf("shuffle edges target %d ranks, want at most the 3 aggregators", len(shuffleSinkRanks))
	}
}
