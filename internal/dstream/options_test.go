package dstream

import (
	"strings"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestOptionValidation: option values the open primitives used to misread
// silently now fail at open time with a clear error, per direction.
// Negative values (a negative threshold fell back to the default, a
// negative aggregator count to the stripe factor, a negative depth to
// synchronous reads) fail everywhere; direction-inapplicable options
// (read-ahead on an output stream, append or write-behind on an input
// stream, any file-path setting on a channel) fail on exactly the
// directions they don't apply to, and still open on the ones they do.
func TestOptionValidation(t *testing.T) {
	const inapplicable = "does not apply to"
	cases := []struct {
		name string
		opts []Option
		// Expected error substring per open primitive; "" means the open
		// must succeed.
		wantOut, wantIn, wantCS, wantCR string
	}{
		{"defaults", nil, "", "", "", ""},
		{"zero threshold", []Option{WithFunnelThreshold(0)}, "", "", "", ""},
		{"positive threshold", []Option{WithFunnelThreshold(512)}, "", "", inapplicable, inapplicable},
		{"positive aggregators", []Option{WithAggregators(2)}, "", "", inapplicable, inapplicable},
		{"explicit strategy", []Option{WithStrategy(StrategyTwoPhase)}, "", "", inapplicable, inapplicable},
		{"positive read-ahead", []Option{WithReadAhead(3)}, inapplicable, "", inapplicable, inapplicable},
		{"strict", []Option{WithStrict()}, inapplicable, "", inapplicable, ""},
		{"append", []Option{WithAppend()}, "", inapplicable, inapplicable, inapplicable},
		{"async", []Option{WithAsync()}, "", inapplicable, inapplicable, inapplicable},
		{"channel window", []Option{WithChannelWindow(1 << 16)}, inapplicable, inapplicable, "", ""},
		{"negative threshold", []Option{WithFunnelThreshold(-1)},
			"negative funnel threshold", "negative funnel threshold", "negative funnel threshold", "negative funnel threshold"},
		{"negative aggregators", []Option{WithAggregators(-2)},
			"negative aggregator count", "negative aggregator count", "negative aggregator count", "negative aggregator count"},
		{"negative read-ahead", []Option{WithReadAhead(-4)},
			"negative read-ahead depth", "negative read-ahead depth", "negative read-ahead depth", "negative read-ahead depth"},
		{"negative window", []Option{WithChannelWindow(-1)},
			"negative channel window", "negative channel window", "negative channel window", "negative channel window"},
		{"negative among valid", []Option{WithStrategy(StrategyTwoPhase), WithAggregators(-1), WithReadAhead(2)},
			"negative aggregator count", "negative aggregator count", "negative aggregator count", "negative aggregator count"},
	}
	check := func(t *testing.T, rank int, prim, name string, got error, want string, closer func() error) {
		t.Helper()
		if want == "" {
			if got != nil {
				t.Errorf("rank %d: %s(%s) failed: %v", rank, prim, name, got)
				return
			}
			if err := closer(); err != nil {
				t.Errorf("rank %d: %s(%s) close: %v", rank, prim, name, err)
			}
			return
		}
		if got == nil || !strings.Contains(got.Error(), want) {
			t.Errorf("rank %d: %s(%s) = %v, want error containing %q", rank, prim, name, got, want)
			if got == nil {
				closer()
			}
		}
	}
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		d, err := distr.New(8, 2, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		// Seed one valid file so the OpenInput (and append) successes have a
		// d/stream file to attach to.
		seed, err := Open(n, d, "opt-valid", WithStrategy(StrategyParallel))
		if err != nil {
			return err
		}
		if err := seed.InsertFunc(func(l int, e *Encoder) { e.Int64(int64(l)) }); err != nil {
			return err
		}
		if err := seed.Write(); err != nil {
			return err
		}
		if err := seed.Close(); err != nil {
			return err
		}

		for _, tc := range cases {
			outFile := "opt-" + tc.name
			if tc.wantOut == "" && hasAppend(tc.opts) {
				outFile = "opt-valid" // append needs an existing d/stream file
			}
			out, err := Open(n, d, outFile, tc.opts...)
			check(t, n.Rank(), "Open", tc.name, err, tc.wantOut, func() error {
				if out == nil {
					return nil
				}
				return out.Close()
			})

			in, err := OpenInput(n, d, "opt-valid", tc.opts...)
			check(t, n.Rank(), "OpenInput", tc.name, err, tc.wantIn, func() error {
				if in == nil {
					return nil
				}
				return in.Close()
			})

			// Channel opens are local (no communication, no storage): both
			// groups span the whole 2-rank machine, so every rank may try
			// both ends. The ends are dropped unclosed — an unused channel
			// holds no pooled buffers and owes no EOF.
			_, err = OpenChannel(n, d, d, "opt-chan-"+tc.name, tc.opts...)
			check(t, n.Rank(), "OpenChannel", tc.name, err, tc.wantCS, func() error { return nil })
			_, err = OpenChannelInput(n, d, d, "opt-chan-"+tc.name, tc.opts...)
			check(t, n.Rank(), "OpenChannelInput", tc.name, err, tc.wantCR, func() error { return nil })
		}
		return nil
	})
}

func hasAppend(opts []Option) bool {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o.Append
}

// TestPlannerEnabledGate pins which configurations hand the strategy choice
// to the cost-model planner: only the full-auto zero configuration. Any
// explicit strategy, legacy metadata policy, or threshold override keeps
// the paper's static heuristic and its exact cost profile.
func TestPlannerEnabledGate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want bool
	}{
		{"zero options", Options{}, true},
		{"async only", Options{Async: true}, true},
		{"read-ahead only", Options{ReadAhead: 2}, true},
		{"aggregators only", Options{Aggregators: 2}, true},
		{"explicit strategy", Options{Strategy: StrategyFunnel}, false},
		{"explicit twophase", Options{Strategy: StrategyTwoPhase}, false},
		{"meta policy", Options{Meta: MetaFunnel}, false},
		{"funnel threshold", Options{FunnelThreshold: 100}, false},
	}
	for _, tc := range cases {
		if got := tc.o.plannerEnabled(); got != tc.want {
			t.Errorf("%s: plannerEnabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
