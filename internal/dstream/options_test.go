package dstream

import (
	"strings"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestOptionValidation: option values Open and OpenInput used to misread
// silently (a negative threshold fell back to the default, a negative
// aggregator count to the stripe factor, a negative depth to synchronous
// reads) now fail at open time with a clear error — on both stream
// directions — while the zero values and genuine settings still open.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		wantErr string // "" means the open must succeed
	}{
		{"defaults", nil, ""},
		{"zero threshold", []Option{WithFunnelThreshold(0)}, ""},
		{"positive threshold", []Option{WithFunnelThreshold(512)}, ""},
		{"positive aggregators", []Option{WithAggregators(2)}, ""},
		{"positive read-ahead", []Option{WithReadAhead(3)}, ""},
		{"negative threshold", []Option{WithFunnelThreshold(-1)}, "negative funnel threshold"},
		{"negative aggregators", []Option{WithAggregators(-2)}, "negative aggregator count"},
		{"negative read-ahead", []Option{WithReadAhead(-4)}, "negative read-ahead depth"},
		{"negative among valid", []Option{WithStrategy(StrategyTwoPhase), WithAggregators(-1), WithReadAhead(2)},
			"negative aggregator count"},
	}
	fs := pfs.NewMemFS(vtime.Challenge())
	run(t, 2, fs, func(n *machine.Node) error {
		d, err := distr.New(8, 2, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		// Seed one valid file so the OpenInput successes have bytes to read.
		seed, err := Open(n, d, "opt-valid", WithStrategy(StrategyParallel))
		if err != nil {
			return err
		}
		if err := seed.InsertFunc(func(l int, e *Encoder) { e.Int64(int64(l)) }); err != nil {
			return err
		}
		if err := seed.Write(); err != nil {
			return err
		}
		if err := seed.Close(); err != nil {
			return err
		}

		for _, tc := range cases {
			out, err := Open(n, d, "opt-"+tc.name, tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("rank %d: Open(%s) failed: %v", n.Rank(), tc.name, err)
					continue
				}
				if err := out.Close(); err != nil {
					return err
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("rank %d: Open(%s) = %v, want error containing %q", n.Rank(), tc.name, err, tc.wantErr)
				if err == nil {
					out.Close()
				}
			}

			in, err := OpenInput(n, d, "opt-valid", tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("rank %d: OpenInput(%s) failed: %v", n.Rank(), tc.name, err)
					continue
				}
				if err := in.Close(); err != nil {
					return err
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("rank %d: OpenInput(%s) = %v, want error containing %q", n.Rank(), tc.name, err, tc.wantErr)
				if err == nil {
					in.Close()
				}
			}
		}
		return nil
	})
}

// TestPlannerEnabledGate pins which configurations hand the strategy choice
// to the cost-model planner: only the full-auto zero configuration. Any
// explicit strategy, legacy metadata policy, or threshold override keeps
// the paper's static heuristic and its exact cost profile.
func TestPlannerEnabledGate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want bool
	}{
		{"zero options", Options{}, true},
		{"async only", Options{Async: true}, true},
		{"read-ahead only", Options{ReadAhead: 2}, true},
		{"aggregators only", Options{Aggregators: 2}, true},
		{"explicit strategy", Options{Strategy: StrategyFunnel}, false},
		{"explicit twophase", Options{Strategy: StrategyTwoPhase}, false},
		{"meta policy", Options{Meta: MetaFunnel}, false},
		{"funnel threshold", Options{FunnelThreshold: 100}, false},
	}
	for _, tc := range cases {
		if got := tc.o.plannerEnabled(); got != tc.want {
			t.Errorf("%s: plannerEnabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
