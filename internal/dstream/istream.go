package dstream

import (
	"errors"
	"fmt"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/plan"
	"pcxxstreams/internal/trace"
)

// IStream is an input d/stream. Records are consumed in the order they were
// written; each Read (or UnsortedRead) loads one record into the per-node
// buffers, after which Extract calls drain it array by array.
type IStream struct {
	stream
	opts   Options
	cursor int64 // file offset of the next record

	// Current record state.
	hdr      enc.RecordHeader
	haveRec  bool
	elemBufs []*Decoder // one per local element, in local order
	extracts int

	// Steady-state scratch, reused across records: refill holds the node's
	// share of the current record's data section (element decoders alias it,
	// so bytes extracted with Raw are invalidated by the next Read, Skip, or
	// Close); hdrScratch is node 0's metadata read buffer.
	refill     []byte
	hdrScratch []byte

	// Read-ahead state (Options.ReadAhead > 0): pre is the queue of
	// prefetched records, oldest first and file-contiguous from cursor;
	// preFree recycles retired share buffers as future prefetch
	// destinations; starts caches the per-rank element split of the
	// reader's distribution (identical for every record the stream
	// accepts).
	pre     []prefetched
	preFree [][]byte
	starts  []int

	// Cost-model planner state (nil planner = the static heuristic).
	// planDepth is the effective read-ahead depth — the planner's choice
	// under full auto, Options.ReadAhead when set explicitly;
	// planStart/planStrat/planEst feed the per-record observation back.
	planner   *plan.Planner
	planMet   *planMetrics
	planDepth int
	planK     int
	planStrat plan.Strategy
	planEst   float64
	planStart float64
}

// recordMeta is the decoded front matter of one record: header, raw
// distribution descriptor, and the prefix-summed element payload offsets
// within the data section (len NElems+1).
type recordMeta struct {
	h    enc.RecordHeader
	desc []byte
	offs []int64
}

// prefetched is one read-ahead record: decoded metadata plus this rank's
// contiguous share of the data section, whose bytes are valid (in virtual
// time) from completion on. The share was moved by an asynchronous
// collective, so a consumer arriving before completion stalls only for the
// remainder.
type prefetched struct {
	cursor     int64 // file offset of the record's header
	next       int64 // file offset of the record after it
	meta       recordMeta
	chunk      []byte  // this rank's share (pooled; nil for an empty share)
	issued     float64 // virtual time the prefetch was issued
	completion float64 // virtual time the data transfer lands
	// span is the background disk transfer's span ID (0 when not tracing):
	// a prefetch hit links its read span to it, closing the issue→
	// completion→consumption chain in the causal graph.
	span trace.SpanID
}

// commError tags an error whose occurrence may differ across ranks — a
// transport failure seen by this rank only. The prefetch pipeline must
// treat these as fatal: a rank that silently abandoned a prefetch while its
// peers queued one would desynchronize the group's collective schedules.
// Deterministic failures (decode errors, node 0's broadcast read verdict)
// carry no tag and may be abandoned benignly — every rank abandons them
// together, and the consumer's own synchronous Read or Skip surfaces
// whatever is really there. The wrapper is transparent in rendered
// messages.
type commError struct{ err error }

func (e *commError) Error() string { return e.err.Error() }
func (e *commError) Unwrap() error { return e.err }

func isCommErr(err error) bool {
	var ce *commError
	return errors.As(err, &ce)
}

// openInput is the collective open every input constructor funnels into.
// Note that d describes the *reader's* layout; the writer's layout is
// discovered from the file itself (§4.1: "no information about the
// distribution or size of the data to be read needs to be passed to the
// library by the programmer").
func openInput(node *machine.Node, d *distr.Distribution, name string, opts Options) (*IStream, error) {
	if d.NProcs != node.Size() {
		return nil, fmt.Errorf("dstream: distribution over %d procs on a %d-node machine", d.NProcs, node.Size())
	}
	if err := opts.validateFor(dirInput); err != nil {
		return nil, err
	}
	f, err := openFile(node, opts, name, false)
	if err != nil {
		return nil, fmt.Errorf("dstream: open input %q: %w", name, err)
	}
	s := &IStream{
		stream: stream{node: node, dist: d, f: f, name: name, met: newStreamMetrics(node.Monitor()), tag: streamTag(name)},
		opts:   opts,
	}
	// Node 0 validates the file header and broadcasts the verdict.
	verdict := []byte{1}
	if node.Rank() == 0 {
		hdr := make([]byte, enc.FileHeaderLen)
		if err := f.ReadAt(hdr, 0); err != nil {
			verdict = []byte(fmt.Sprintf("read file header: %v", err))
		} else if err := enc.CheckFileHeader(hdr); err != nil {
			verdict = []byte(err.Error())
		}
	}
	verdict, err = node.Comm().Bcast(0, verdict)
	if err != nil {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open sync: %w", err))
	}
	if len(verdict) != 1 || verdict[0] != 1 {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open input %q: %s", name, verdict))
	}
	// The PFS open synchronization (gopen-style control call), as on the
	// output side.
	if err := f.ControlSync(); err != nil {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open sync: %w", err))
	}
	if opts.plannerEnabled() {
		s.planner = s.newStreamPlanner()
		s.planMet = newPlanMetrics(s.met, node.Rank())
		// Depth starts at the explicit override (0 under full auto — the
		// first record is read synchronously, its broadcast geometry seeds
		// the planner, and the pipeline starts from the second record).
		s.planDepth = opts.ReadAhead
	}
	s.cursor = enc.FileHeaderLen
	// With read-ahead enabled, start the pipeline now so the first Read
	// already overlaps with whatever the consumer does before it.
	s.topUpPrefetch()
	return s, nil
}

// aheadDepth is the effective prefetch depth: the planner's current
// choice on a planned stream, the static option otherwise.
func (s *IStream) aheadDepth() int {
	if s.planner != nil {
		return s.planDepth
	}
	return s.opts.ReadAhead
}

// planRead plans the record described by m and reports whether the
// two-phase refill should serve it. All inputs come from the broadcast
// metadata, so every rank plans identically; the broadcast also equalized
// the group's clocks, making planStart a common origin for the
// observation that follows the data movement.
func (s *IStream) planRead(m recordMeta) bool {
	if s.planner == nil {
		return s.opts.strategy(int(m.h.NElems)) == StrategyTwoPhase
	}
	g := plan.Geometry{
		NProcs:    s.dist.NProcs,
		NElems:    int(m.h.NElems),
		DataBytes: int64(m.h.DataBytes),
		MetaBytes: enc.RecordHeaderLen + int64(m.h.DescBytes) + m.h.SizeTableBytes(),
	}
	d := s.planner.PlanRead(g, s.opts.Aggregators, s.opts.ReadAhead)
	s.planK = d.Aggregators
	s.planDepth = d.ReadAhead
	s.planStrat = d.Strategy
	s.planEst = d.RawEstimate
	s.planStart = s.node.Clock().Now()
	s.planMet.note(s.planner, d)
	s.planMet.depth.Set(float64(d.ReadAhead))
	if d.Switched {
		s.planSwitchSpan(d)
	}
	return d.Strategy == plan.TwoPhase
}

// observePlanned feeds one planned record's observed virtual cost back to
// the planner. end must be a rank-identical instant (a synchronous
// refill's closing rendezvous, or an asynchronous transfer's completion).
func (s *IStream) observePlanned(end float64) {
	if s.planner == nil {
		return
	}
	obs := end - s.planStart
	s.planner.Observe(s.planStrat, s.planEst, obs)
	s.planMet.observed.Observe(obs)
}

// More reports whether another record remains in the file.
func (s *IStream) More() bool {
	if s.checkOpen() != nil {
		return false
	}
	return s.cursor < s.f.Size()
}

// Read loads the next record with full element-order fidelity: every
// element lands on the node that owns it under the reader's distribution,
// in local order — even when the number of processors or the distribution
// changed since the file was written. This is the two-phase strategy of
// §4.1: a read conforming to the layout on disk, then a redistribution
// among the processors.
func (s *IStream) Read() error { return s.read(true) }

// UnsortedRead loads the next record without ordering guarantees: each node
// receives the right number of element payloads (per the reader's
// distribution) straight from the file, with no interprocessor
// communication — the higher-performance path for data whose element
// indices carry no meaning (§3).
func (s *IStream) UnsortedRead() error { return s.read(false) }

func (s *IStream) read(sorted bool) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkFullyExtracted("read"); err != nil {
		return err
	}
	if !s.More() {
		return s.fail(fmt.Errorf("%w: read past last record", ErrOrder))
	}
	start := s.node.Clock().Now()

	// Steps 1–2: record front matter — served from the prefetch queue when
	// the pipeline has it, read synchronously (node 0 reads, broadcasts)
	// otherwise.
	e, hit := s.takePrefetched()
	var m recordMeta
	if hit {
		// The data transfer was issued in the background; stall only for
		// its un-overlapped remainder.
		s.node.Clock().SyncTo(e.completion)
		overlap := start - e.issued
		if lag := e.completion - e.issued; overlap > lag {
			overlap = lag
		}
		if overlap < 0 {
			overlap = 0
		}
		s.met.prefetchHits.Inc()
		s.met.prefetchOverlap.Observe(overlap)
		m = e.meta
	} else {
		var err error
		if m, err = s.loadMeta(s.cursor); err != nil {
			return s.fail(err)
		}
	}

	wdist, err := distFromHeader(m.h, m.desc)
	if err != nil {
		return s.fail(err)
	}

	offs := m.offs
	dataStart := s.cursor + enc.RecordHeaderLen + int64(m.h.DescBytes) + m.h.SizeTableBytes()

	me := s.node.Rank()
	starts := s.rankStarts()
	lo, hi := starts[me], starts[me+1]

	// Step 3: move this node's contiguous share of the data section out of
	// the file — a prefetched share already sits in memory; otherwise one
	// direct parallel read (conforming to the layout on disk), or, under
	// the two-phase strategy, aggregators that refill stripe-aligned
	// extents once and scatter slices to consumers. A prefetched record
	// was planned when its fetch was issued; a synchronous one is planned
	// here.
	var chunk []byte
	switch {
	case hit:
		if e.chunk != nil {
			s.retireBuf(s.refill)
			s.refill = e.chunk
		}
		chunk = e.chunk
	case s.planRead(m):
		c, _, err := s.refillTwoPhase(dataStart, offs, starts, s.refill, false)
		s.refill = c
		chunk = c
		if err != nil {
			return s.fail(fmt.Errorf("%w: parallel read: %w", ErrIO, err))
		}
		s.observePlanned(s.node.Clock().Now())
	default:
		rg := pfs.Range{Off: dataStart + offs[lo], Len: int(offs[hi] - offs[lo])}
		old := s.refill
		chunk, err = s.f.ParallelReadInto(rg, old[:0])
		if err != nil {
			return s.fail(fmt.Errorf("%w: parallel read: %w", ErrIO, err))
		}
		if rg.Len > 0 {
			if cap(old) < rg.Len {
				// Outgrown: the read came back in a fresh pooled buffer.
				bufpool.Put(old)
			}
			s.refill = chunk
		}
		s.observePlanned(s.node.Clock().Now())
	}
	s.node.CopyCost(int64(len(chunk)))
	if s.planner != nil {
		// Credit the waste governor: this record's bytes were wanted.
		s.planner.ObserveConsumed(int64(m.h.DataBytes))
	}

	// Slice the chunk into per-position payloads.
	payloads := make([][]byte, hi-lo)
	for p := lo; p < hi; p++ {
		payloads[p-lo] = chunk[offs[p]-offs[lo] : offs[p+1]-offs[lo]]
	}

	var bufs [][]byte
	if !sorted || s.dist.SameLayout(wdist) {
		// unsortedRead, or the layouts agree: the contiguous chunk already
		// holds exactly this node's elements (in writer order for the
		// matched case; in arbitrary-but-counted order otherwise).
		bufs = payloads
	} else {
		order := fileOrder(wdist)
		bufs, err = s.redistribute(order[lo:hi], payloads)
		if err != nil {
			return s.fail(fmt.Errorf("%w: redistribute: %w", ErrIO, err))
		}
	}

	if len(s.elemBufs) == len(bufs) {
		for i, b := range bufs {
			s.elemBufs[i].Reset(b)
		}
	} else {
		s.elemBufs = make([]*Decoder, len(bufs))
		for i, b := range bufs {
			d := new(Decoder)
			d.Reset(b)
			s.elemBufs[i] = d
		}
	}
	s.hdr = m.h
	s.haveRec = true
	s.extracts = 0
	s.cursor += m.h.TotalBytes()
	end := s.node.Clock().Now()
	s.met.reads.Inc()
	s.met.refillBytes.Observe(float64(len(chunk)))
	s.met.refillStall.Observe(end - start)
	// Top up the pipeline after the stall metric is cut, so issuing the
	// next prefetches never counts against this read's stall.
	s.topUpPrefetch()
	op := "istream.Read "
	if !sorted {
		op = "istream.UnsortedRead "
	}
	if rec := s.met.mon.Recorder(); rec != nil {
		rid := rec.AddSpan(s.node.Rank(), "dstream", op+s.name, start, end)
		if hit {
			// Close the pipeline chain: issue → background disk transfer →
			// the read that consumed (and possibly stalled on) it.
			rec.AddFlow(e.span, rid, "prefetch")
		}
	}
	return nil
}

// loadMeta reads and validates the front matter of the record at cursor —
// header, distribution descriptor, and size table, each read by node 0 and
// broadcast — and returns the decoded header, the raw descriptor, and the
// prefix-summed payload offsets within the data section (length NElems+1).
// Collective; the caller surfaces the error through s.fail where that is
// warranted.
func (s *IStream) loadMeta(cursor int64) (recordMeta, error) {
	var m recordMeta
	hdr, err := s.bcastBytes(cursor, enc.RecordHeaderLen)
	if err != nil {
		return m, fmt.Errorf("%w: read record header: %w", ErrIO, err)
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return m, err
	}
	if int(h.NElems) != s.dist.N {
		return m, fmt.Errorf("dstream: record has %d elements, reader expects %d", h.NElems, s.dist.N)
	}

	// Descriptor and size table — "which appear ahead of the actual data".
	var desc []byte
	if h.DescBytes > 0 {
		desc, err = s.bcastBytes(cursor+enc.RecordHeaderLen, int(h.DescBytes))
		if err != nil {
			return m, fmt.Errorf("%w: read distribution descriptor: %w", ErrIO, err)
		}
	}
	tableRaw, err := s.bcastBytes(cursor+enc.RecordHeaderLen+int64(h.DescBytes), int(h.SizeTableBytes()))
	if err != nil {
		return m, fmt.Errorf("%w: read size table: %w", ErrIO, err)
	}
	sizes, err := enc.DecodeSizeTable(tableRaw, int(h.NElems))
	if err != nil {
		return m, err
	}
	if _, err := distFromHeader(h, desc); err != nil {
		return m, err
	}

	// File-order bookkeeping: offsets of each element payload within the
	// data section.
	n := int(h.NElems)
	offs := make([]int64, n+1)
	for i, sz := range sizes {
		offs[i+1] = offs[i] + int64(sz)
	}
	if uint64(offs[n]) != h.DataBytes {
		return m, fmt.Errorf("dstream: size table sums to %d but record claims %d data bytes", offs[n], h.DataBytes)
	}
	return recordMeta{h: h, desc: desc, offs: offs}, nil
}

// rankStarts returns (caching across records — the reader's distribution
// never changes) the prefix sums of per-rank element counts: starts[r] is
// the first file position owned by rank r, starts[nprocs] the total.
func (s *IStream) rankStarts() []int {
	if s.starts == nil {
		s.starts = make([]int, s.dist.NProcs+1)
		for r := 0; r < s.dist.NProcs; r++ {
			s.starts[r+1] = s.starts[r] + s.dist.LocalCount(r)
		}
	}
	return s.starts
}

// topUpPrefetch issues background fetches until the queue holds ReadAhead
// upcoming records or the file runs out. Every input to the loop — cursor,
// queue contents, file size, record headers — is identical on all ranks,
// so the ranks extend their collective schedules in lockstep. A failed
// prefetch stops the top-up: deterministic failures are abandoned by every
// rank at once and re-surface through the consumer's own synchronous read;
// transport failures fail the stream (see commError).
func (s *IStream) topUpPrefetch() {
	if s.aheadDepth() <= 0 || s.err != nil || s.f == nil {
		return
	}
	next := s.cursor
	if n := len(s.pre); n > 0 {
		next = s.pre[n-1].next
	}
	for len(s.pre) < s.aheadDepth() && next < s.f.Size() {
		e, ok := s.prefetchOne(next)
		if !ok {
			return
		}
		s.pre = append(s.pre, e)
		next = e.next
	}
}

// prefetchOne fetches the record at cursor in the background: front matter
// synchronously (it is small and needed to plan the data transfer), the
// data share with an asynchronous collective whose completion is settled
// only when the record is consumed. ok=false abandons the prefetch.
func (s *IStream) prefetchOne(cursor int64) (prefetched, bool) {
	e := prefetched{cursor: cursor, issued: s.node.Clock().Now()}
	m, err := s.loadMeta(cursor)
	if err != nil {
		if isCommErr(err) {
			s.fail(err)
		}
		return e, false
	}
	e.meta = m
	e.next = cursor + m.h.TotalBytes()
	dataStart := cursor + enc.RecordHeaderLen + int64(m.h.DescBytes) + m.h.SizeTableBytes()
	starts := s.rankStarts()
	dst := s.takeFreeBuf()
	if s.planRead(m) {
		chunk, completion, err := s.refillTwoPhase(dataStart, m.offs, starts, dst, true)
		if err != nil {
			s.retireBuf(chunk)
			if isCommErr(err) {
				s.fail(fmt.Errorf("%w: parallel read: %w", ErrIO, err))
			}
			return e, false
		}
		e.chunk, e.completion = chunk, completion
		e.span = s.f.LastAsyncSpan()
	} else {
		me := s.node.Rank()
		lo, hi := starts[me], starts[me+1]
		rg := pfs.Range{Off: dataStart + m.offs[lo], Len: int(m.offs[hi] - m.offs[lo])}
		chunk, completion, err := s.f.ParallelReadIntoAsync(rg, dst)
		if err != nil {
			// PFS errors reach every rank through the rendezvous, so the
			// abandon is collective — benign.
			s.retireBuf(dst)
			return e, false
		}
		if rg.Len == 0 {
			s.retireBuf(dst)
			chunk = nil
		} else if cap(dst) < rg.Len {
			// Outgrown: the read came back in a fresh pooled buffer.
			bufpool.Put(dst)
		}
		e.chunk, e.completion = chunk, completion
		e.span = s.f.LastAsyncSpan()
	}
	// The async transfer's completion is the same instant on every rank;
	// its distance from the planned start is the record's observed cost,
	// fed back at issue time (ranks run the pipeline in lockstep, so the
	// planner sees observations in the same order everywhere).
	s.observePlanned(e.completion)
	return e, true
}

// takePrefetched pops the queue head when it is the record at the current
// cursor. A stale queue (which cursor movement through Read and Skip never
// produces, but cheap to be safe against) is drained and counted wasted,
// and the caller proceeds synchronously.
func (s *IStream) takePrefetched() (prefetched, bool) {
	if len(s.pre) == 0 {
		return prefetched{}, false
	}
	if s.pre[0].cursor != s.cursor {
		s.dropPrefetched()
		return prefetched{}, false
	}
	e := s.pre[0]
	copy(s.pre, s.pre[1:])
	s.pre[len(s.pre)-1] = prefetched{}
	s.pre = s.pre[:len(s.pre)-1]
	return e, true
}

// dropPrefetched discards every queued prefetch, counting the fetched data
// as wasted and recycling the share buffers.
func (s *IStream) dropPrefetched() {
	for i := range s.pre {
		s.met.prefetchWasted.Add(int64(len(s.pre[i].chunk)))
		s.retireBuf(s.pre[i].chunk)
		s.pre[i] = prefetched{}
	}
	s.pre = s.pre[:0]
}

// retireBuf recycles a pooled buffer this stream no longer needs: onto the
// local free list while prefetching (destinations turn over every record;
// the list is bounded by the queue depth plus the refill slot), back to
// the shared pool otherwise. nil is a no-op.
func (s *IStream) retireBuf(b []byte) {
	if b == nil {
		return
	}
	if d := s.aheadDepth(); d > 0 && len(s.preFree) <= d {
		s.preFree = append(s.preFree, b)
		return
	}
	bufpool.Put(b)
}

// takeFreeBuf pops a recycled prefetch destination (length reset), or
// returns nil, in which case the read path draws from the shared pool.
func (s *IStream) takeFreeBuf() []byte {
	n := len(s.preFree)
	if n == 0 {
		return nil
	}
	b := s.preFree[n-1]
	s.preFree[n-1] = nil
	s.preFree = s.preFree[:n-1]
	return b[:0]
}

// bcastBytes has node 0 read [off, off+n) and broadcast it. The broadcast
// frame is per-call (the caller may hold the result across the next
// bcastBytes, e.g. the descriptor across the size-table read), but node 0's
// read scratch is reused across records.
func (s *IStream) bcastBytes(off int64, n int) ([]byte, error) {
	var buf []byte
	var readErr string
	if s.node.Rank() == 0 {
		if cap(s.hdrScratch) < n {
			s.hdrScratch = make([]byte, n)
		}
		buf = s.hdrScratch[:n]
		if n > 0 {
			if err := s.f.ReadAt(buf, off); err != nil {
				readErr = err.Error()
				buf = nil
			}
		}
	}
	// Broadcast a status byte plus the payload so all ranks agree on errors.
	var frame []byte
	if s.node.Rank() == 0 {
		if readErr != "" {
			frame = append([]byte{0}, readErr...)
		} else {
			frame = append([]byte{1}, buf...)
		}
	}
	frame, err := s.node.Comm().Bcast(0, frame)
	if err != nil {
		// Transport failure: possibly rank-asymmetric, so the prefetch
		// pipeline must not abandon on it silently (see commError).
		return nil, &commError{err}
	}
	if len(frame) == 0 || frame[0] != 1 {
		return nil, fmt.Errorf("node 0 read failed: %s", frame[1:])
	}
	return frame[1:], nil
}

// redistribute is phase two of the sorted read: each element read from disk
// is routed to the node that owns it under the reader's distribution, and
// placed at its local index. globals[i] is the global element index of
// payloads[i].
func (s *IStream) redistribute(globals []int, payloads [][]byte) ([][]byte, error) {
	me := s.node.Rank()
	nprocs := s.dist.NProcs
	out := make([][]byte, s.dist.LocalCount(me))

	// Pack one buffer per destination: (u32 global, u32 len, payload)*.
	var sendBytes int64
	outBufs := make([]enc.Buffer, nprocs)
	for i, g := range globals {
		owner := s.dist.Owner(g)
		if owner == me {
			out[s.dist.LocalIndex(g)] = payloads[i]
			continue
		}
		outBufs[owner].Uint32(uint32(g))
		outBufs[owner].Bytes32(payloads[i])
		sendBytes += int64(8 + len(payloads[i]))
	}
	s.node.CopyCost(sendBytes)

	bufs := make([][]byte, nprocs)
	for r := range bufs {
		bufs[r] = outBufs[r].Bytes()
	}
	recv, err := s.node.Comm().Alltoallv(bufs)
	if err != nil {
		return nil, fmt.Errorf("dstream: redistribute: %w", err)
	}
	var d enc.Reader
	for r, b := range recv {
		if r == me {
			bufpool.Put(b) // own elements were placed directly
			continue
		}
		d.Reset(b)
		for d.Remaining() > 0 {
			g := int(d.Uint32())
			p := d.Bytes32()
			if d.Err() != nil {
				return nil, fmt.Errorf("dstream: redistribute decode from %d: %w", r, d.Err())
			}
			if s.dist.Owner(g) != me {
				return nil, fmt.Errorf("dstream: element %d misrouted to rank %d", g, me)
			}
			out[s.dist.LocalIndex(g)] = p
		}
		// Bytes32 copies each payload out, so the frame can go back.
		bufpool.Put(b)
	}
	for l, b := range out {
		if b == nil {
			return nil, fmt.Errorf("dstream: local slot %d (global %d) never arrived",
				l, s.dist.GlobalIndex(me, l))
		}
	}
	return out, nil
}

// Skip advances past the next record without loading its data. It enables
// the paper's multiple-streams-per-file pattern ("Multiple d/streams may be
// set up and connected to the same file if collections with differing
// distributions and alignments are to be output"): each input stream reads
// the records that match its distribution and skips the others, in file
// order. Only the record header is read (by node 0, broadcast).
func (s *IStream) Skip() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkFullyExtracted("skip"); err != nil {
		return err
	}
	if !s.More() {
		return s.fail(fmt.Errorf("%w: skip past last record", ErrOrder))
	}
	if e, ok := s.takePrefetched(); ok {
		// Already fetched: no I/O to do, but the prefetched data dies
		// unread.
		s.met.prefetchWasted.Add(int64(len(e.chunk)))
		if s.planner != nil {
			// Debit the waste governor with the record's rank-identical
			// total (Skip is collective, so every rank debits together);
			// enough skipped bytes and the planner stops prefetching.
			s.planner.ObserveWasted(int64(e.meta.h.DataBytes))
		}
		s.retireBuf(e.chunk)
		s.cursor = e.next
		s.haveRec = false
		s.elemBufs = nil
		s.met.skips.Inc()
		s.topUpPrefetch()
		return nil
	}
	hdr, err := s.bcastBytes(s.cursor, enc.RecordHeaderLen)
	if err != nil {
		return s.fail(fmt.Errorf("dstream: skip record header: %w", err))
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return s.fail(err)
	}
	s.cursor += h.TotalBytes()
	s.haveRec = false
	s.elemBufs = nil
	s.met.skips.Inc()
	s.topUpPrefetch()
	return nil
}

// NextElems peeks at the next record's element count without consuming it,
// so a reader owning several input streams can decide which one should
// read the upcoming record. Returns ErrOrder at end of file.
func (s *IStream) NextElems() (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	if !s.More() {
		return 0, fmt.Errorf("%w: no next record", ErrOrder)
	}
	if len(s.pre) > 0 && s.pre[0].cursor == s.cursor {
		// Peek the prefetch queue: no I/O, no communication (the queues
		// are identical on every rank, so skipping the broadcast is
		// collective-consistent).
		return int(s.pre[0].meta.h.NElems), nil
	}
	hdr, err := s.bcastBytes(s.cursor, enc.RecordHeaderLen)
	if err != nil {
		return 0, s.fail(fmt.Errorf("dstream: peek record header: %w", err))
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return 0, s.fail(err)
	}
	return int(h.NElems), nil
}

// ExtractFunc is the low-level extract primitive: take is called once per
// locally owned element, in local order, with that element's decoder
// positioned at the next array of the record. Each call to ExtractFunc
// consumes one insert's worth of data, in insertion order.
func (s *IStream) ExtractFunc(take func(local int, d *Decoder)) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if !s.haveRec {
		return s.fail(fmt.Errorf("%w: extract before read", ErrOrder))
	}
	if s.extracts >= int(s.hdr.NArrays) {
		return s.fail(fmt.Errorf("%w: record has %d arrays, extract #%d requested",
			ErrOrder, s.hdr.NArrays, s.extracts+1))
	}
	for l, d := range s.elemBufs {
		take(l, d)
		if err := d.Err(); err != nil {
			return s.fail(fmt.Errorf("dstream: extract element (local %d): %w", l, err))
		}
	}
	s.extracts++
	s.met.extracts.Inc()
	s.node.Compute(float64(len(s.elemBufs)) * s.node.Profile().PerElemCost)
	return nil
}

// Arrays returns the number of arrays in the current record (0 before the
// first read).
func (s *IStream) Arrays() int {
	if !s.haveRec {
		return 0
	}
	return int(s.hdr.NArrays)
}

// Extracted returns how many arrays of the current record have been
// extracted.
func (s *IStream) Extracted() int { return s.extracts }

// LocalLen returns the number of elements this node receives per record.
func (s *IStream) LocalLen() int { return s.dist.LocalCount(s.node.Rank()) }

// checkFullyExtracted enforces Strict mode: the current record must be
// fully drained before moving on.
func (s *IStream) checkFullyExtracted(op string) error {
	if !s.opts.Strict || !s.haveRec {
		return nil
	}
	if s.extracts < int(s.hdr.NArrays) {
		return s.fail(fmt.Errorf("%w: %s with %d of %d arrays unextracted (Strict)",
			ErrOrder, op, int(s.hdr.NArrays)-s.extracts, s.hdr.NArrays))
	}
	return nil
}

// Close releases the stream (idempotent). In Strict mode, closing with a
// partially extracted record is an error.
func (s *IStream) Close() error {
	if s.f == nil {
		return nil
	}
	// Release the pipeline first: queued prefetches die unread (counted
	// wasted) and the recycled destinations go back to the shared pool.
	s.dropPrefetched()
	for i, b := range s.preFree {
		bufpool.Put(b)
		s.preFree[i] = nil
	}
	s.preFree = nil
	err := s.f.Close()
	s.f = nil
	bufpool.Put(s.refill)
	s.refill = nil
	s.elemBufs = nil
	if err == nil && s.opts.Strict && s.haveRec && s.extracts < int(s.hdr.NArrays) {
		err = fmt.Errorf("%w: close with %d of %d arrays unextracted (Strict)",
			ErrOrder, int(s.hdr.NArrays)-s.extracts, s.hdr.NArrays)
	}
	return err
}

// Node returns the owning node.
func (s *IStream) Node() *machine.Node { return s.node }

// Dist returns the reader's distribution.
func (s *IStream) Dist() *distr.Distribution { return s.dist }
