package dstream

import (
	"fmt"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
)

// IStream is an input d/stream. Records are consumed in the order they were
// written; each Read (or UnsortedRead) loads one record into the per-node
// buffers, after which Extract calls drain it array by array.
type IStream struct {
	stream
	opts   Options
	cursor int64 // file offset of the next record

	// Current record state.
	hdr      enc.RecordHeader
	haveRec  bool
	elemBufs []*Decoder // one per local element, in local order
	extracts int

	// Steady-state scratch, reused across records: refill holds the node's
	// share of the current record's data section (element decoders alias it,
	// so bytes extracted with Raw are invalidated by the next Read, Skip, or
	// Close); hdrScratch is node 0's metadata read buffer.
	refill     []byte
	hdrScratch []byte
}

// Input opens an input d/stream for collections distributed by d, backed by
// the named file. Note that d describes the *reader's* layout; the writer's
// layout is discovered from the file itself (§4.1: "no information about
// the distribution or size of the data to be read needs to be passed to the
// library by the programmer").
//
// Deprecated: use OpenInput.
func Input(node *machine.Node, d *distr.Distribution, name string) (*IStream, error) {
	return openInput(node, d, name, Options{})
}

// InputOpts opens an input d/stream with an explicit Options struct.
//
// Deprecated: use OpenInput with functional options.
func InputOpts(node *machine.Node, d *distr.Distribution, name string, opts Options) (*IStream, error) {
	return openInput(node, d, name, opts)
}

// openInput is the collective open every input constructor funnels into.
func openInput(node *machine.Node, d *distr.Distribution, name string, opts Options) (*IStream, error) {
	if d.NProcs != node.Size() {
		return nil, fmt.Errorf("dstream: distribution over %d procs on a %d-node machine", d.NProcs, node.Size())
	}
	f, err := node.Open(name, false)
	if err != nil {
		return nil, fmt.Errorf("dstream: open input %q: %w", name, err)
	}
	s := &IStream{
		stream: stream{node: node, dist: d, f: f, name: name, met: newStreamMetrics(node.Monitor())},
		opts:   opts,
	}
	// Node 0 validates the file header and broadcasts the verdict.
	verdict := []byte{1}
	if node.Rank() == 0 {
		hdr := make([]byte, enc.FileHeaderLen)
		if err := f.ReadAt(hdr, 0); err != nil {
			verdict = []byte(fmt.Sprintf("read file header: %v", err))
		} else if err := enc.CheckFileHeader(hdr); err != nil {
			verdict = []byte(err.Error())
		}
	}
	verdict, err = node.Comm().Bcast(0, verdict)
	if err != nil {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open sync: %w", err))
	}
	if len(verdict) != 1 || verdict[0] != 1 {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open input %q: %s", name, verdict))
	}
	// The PFS open synchronization (gopen-style control call), as on the
	// output side.
	if err := f.ControlSync(); err != nil {
		f.Close()
		return nil, s.fail(fmt.Errorf("dstream: open sync: %w", err))
	}
	s.cursor = enc.FileHeaderLen
	return s, nil
}

// More reports whether another record remains in the file.
func (s *IStream) More() bool {
	if s.checkOpen() != nil {
		return false
	}
	return s.cursor < s.f.Size()
}

// Read loads the next record with full element-order fidelity: every
// element lands on the node that owns it under the reader's distribution,
// in local order — even when the number of processors or the distribution
// changed since the file was written. This is the two-phase strategy of
// §4.1: a read conforming to the layout on disk, then a redistribution
// among the processors.
func (s *IStream) Read() error { return s.read(true) }

// UnsortedRead loads the next record without ordering guarantees: each node
// receives the right number of element payloads (per the reader's
// distribution) straight from the file, with no interprocessor
// communication — the higher-performance path for data whose element
// indices carry no meaning (§3).
func (s *IStream) UnsortedRead() error { return s.read(false) }

func (s *IStream) read(sorted bool) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkFullyExtracted("read"); err != nil {
		return err
	}
	if !s.More() {
		return s.fail(fmt.Errorf("%w: read past last record", ErrOrder))
	}
	start := s.node.Clock().Now()

	// Step 1: record header — node 0 reads, broadcasts.
	hdr, err := s.bcastBytes(s.cursor, enc.RecordHeaderLen)
	if err != nil {
		return s.fail(fmt.Errorf("%w: read record header: %w", ErrIO, err))
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return s.fail(err)
	}
	if int(h.NElems) != s.dist.N {
		return s.fail(fmt.Errorf("dstream: record has %d elements, reader expects %d", h.NElems, s.dist.N))
	}

	// Step 2: descriptor and size table — node 0 reads, broadcasts. (The
	// distribution and size information, "which appear ahead of the actual
	// data".)
	var desc []byte
	if h.DescBytes > 0 {
		desc, err = s.bcastBytes(s.cursor+enc.RecordHeaderLen, int(h.DescBytes))
		if err != nil {
			return s.fail(fmt.Errorf("%w: read distribution descriptor: %w", ErrIO, err))
		}
	}
	tableRaw, err := s.bcastBytes(s.cursor+enc.RecordHeaderLen+int64(h.DescBytes), int(h.SizeTableBytes()))
	if err != nil {
		return s.fail(fmt.Errorf("%w: read size table: %w", ErrIO, err))
	}
	sizes, err := enc.DecodeSizeTable(tableRaw, int(h.NElems))
	if err != nil {
		return s.fail(err)
	}

	wdist, err := distFromHeader(h, desc)
	if err != nil {
		return s.fail(err)
	}

	// File-order bookkeeping: offsets of each element payload within the
	// data section, and the split of file positions across reader nodes.
	n := int(h.NElems)
	offs := make([]int64, n+1)
	for i, sz := range sizes {
		offs[i+1] = offs[i] + int64(sz)
	}
	if uint64(offs[n]) != h.DataBytes {
		return s.fail(fmt.Errorf("dstream: size table sums to %d but record claims %d data bytes", offs[n], h.DataBytes))
	}
	dataStart := s.cursor + enc.RecordHeaderLen + int64(h.DescBytes) + h.SizeTableBytes()

	me := s.node.Rank()
	starts := make([]int, s.dist.NProcs+1)
	for r := 0; r < s.dist.NProcs; r++ {
		starts[r+1] = starts[r] + s.dist.LocalCount(r)
	}
	lo, hi := starts[me], starts[me+1]

	// Step 3: move this node's contiguous share of the data section out of
	// the file — with one direct parallel read (conforming to the layout on
	// disk), or, under the two-phase strategy, through aggregators that
	// refill stripe-aligned extents once and scatter slices to consumers.
	var chunk []byte
	if s.opts.strategy(n) == StrategyTwoPhase {
		chunk, err = s.refillTwoPhase(dataStart, offs, starts)
	} else {
		rg := pfs.Range{Off: dataStart + offs[lo], Len: int(offs[hi] - offs[lo])}
		old := s.refill
		chunk, err = s.f.ParallelReadInto(rg, old[:0])
		if err == nil && rg.Len > 0 {
			if cap(old) < rg.Len {
				// Outgrown: the read came back in a fresh pooled buffer.
				bufpool.Put(old)
			}
			s.refill = chunk
		}
	}
	if err != nil {
		return s.fail(fmt.Errorf("%w: parallel read: %w", ErrIO, err))
	}
	s.node.CopyCost(int64(len(chunk)))

	// Slice the chunk into per-position payloads.
	payloads := make([][]byte, hi-lo)
	for p := lo; p < hi; p++ {
		payloads[p-lo] = chunk[offs[p]-offs[lo] : offs[p+1]-offs[lo]]
	}

	var bufs [][]byte
	if !sorted || s.dist.SameLayout(wdist) {
		// unsortedRead, or the layouts agree: the contiguous chunk already
		// holds exactly this node's elements (in writer order for the
		// matched case; in arbitrary-but-counted order otherwise).
		bufs = payloads
	} else {
		order := fileOrder(wdist)
		bufs, err = s.redistribute(order[lo:hi], payloads)
		if err != nil {
			return s.fail(fmt.Errorf("%w: redistribute: %w", ErrIO, err))
		}
	}

	if len(s.elemBufs) == len(bufs) {
		for i, b := range bufs {
			s.elemBufs[i].Reset(b)
		}
	} else {
		s.elemBufs = make([]*Decoder, len(bufs))
		for i, b := range bufs {
			d := new(Decoder)
			d.Reset(b)
			s.elemBufs[i] = d
		}
	}
	s.hdr = h
	s.haveRec = true
	s.extracts = 0
	s.cursor += h.TotalBytes()
	end := s.node.Clock().Now()
	s.met.reads.Inc()
	s.met.refillBytes.Observe(float64(len(chunk)))
	s.met.refillStall.Observe(end - start)
	op := "istream.Read "
	if !sorted {
		op = "istream.UnsortedRead "
	}
	s.met.mon.Span(s.node.Rank(), "dstream", op+s.name, start, end)
	return nil
}

// bcastBytes has node 0 read [off, off+n) and broadcast it. The broadcast
// frame is per-call (the caller may hold the result across the next
// bcastBytes, e.g. the descriptor across the size-table read), but node 0's
// read scratch is reused across records.
func (s *IStream) bcastBytes(off int64, n int) ([]byte, error) {
	var buf []byte
	var readErr string
	if s.node.Rank() == 0 {
		if cap(s.hdrScratch) < n {
			s.hdrScratch = make([]byte, n)
		}
		buf = s.hdrScratch[:n]
		if n > 0 {
			if err := s.f.ReadAt(buf, off); err != nil {
				readErr = err.Error()
				buf = nil
			}
		}
	}
	// Broadcast a status byte plus the payload so all ranks agree on errors.
	var frame []byte
	if s.node.Rank() == 0 {
		if readErr != "" {
			frame = append([]byte{0}, readErr...)
		} else {
			frame = append([]byte{1}, buf...)
		}
	}
	frame, err := s.node.Comm().Bcast(0, frame)
	if err != nil {
		return nil, err
	}
	if len(frame) == 0 || frame[0] != 1 {
		return nil, fmt.Errorf("node 0 read failed: %s", frame[1:])
	}
	return frame[1:], nil
}

// redistribute is phase two of the sorted read: each element read from disk
// is routed to the node that owns it under the reader's distribution, and
// placed at its local index. globals[i] is the global element index of
// payloads[i].
func (s *IStream) redistribute(globals []int, payloads [][]byte) ([][]byte, error) {
	me := s.node.Rank()
	nprocs := s.dist.NProcs
	out := make([][]byte, s.dist.LocalCount(me))

	// Pack one buffer per destination: (u32 global, u32 len, payload)*.
	var sendBytes int64
	outBufs := make([]enc.Buffer, nprocs)
	for i, g := range globals {
		owner := s.dist.Owner(g)
		if owner == me {
			out[s.dist.LocalIndex(g)] = payloads[i]
			continue
		}
		outBufs[owner].Uint32(uint32(g))
		outBufs[owner].Bytes32(payloads[i])
		sendBytes += int64(8 + len(payloads[i]))
	}
	s.node.CopyCost(sendBytes)

	bufs := make([][]byte, nprocs)
	for r := range bufs {
		bufs[r] = outBufs[r].Bytes()
	}
	recv, err := s.node.Comm().Alltoallv(bufs)
	if err != nil {
		return nil, fmt.Errorf("dstream: redistribute: %w", err)
	}
	var d enc.Reader
	for r, b := range recv {
		if r == me {
			bufpool.Put(b) // own elements were placed directly
			continue
		}
		d.Reset(b)
		for d.Remaining() > 0 {
			g := int(d.Uint32())
			p := d.Bytes32()
			if d.Err() != nil {
				return nil, fmt.Errorf("dstream: redistribute decode from %d: %w", r, d.Err())
			}
			if s.dist.Owner(g) != me {
				return nil, fmt.Errorf("dstream: element %d misrouted to rank %d", g, me)
			}
			out[s.dist.LocalIndex(g)] = p
		}
		// Bytes32 copies each payload out, so the frame can go back.
		bufpool.Put(b)
	}
	for l, b := range out {
		if b == nil {
			return nil, fmt.Errorf("dstream: local slot %d (global %d) never arrived",
				l, s.dist.GlobalIndex(me, l))
		}
	}
	return out, nil
}

// Skip advances past the next record without loading its data. It enables
// the paper's multiple-streams-per-file pattern ("Multiple d/streams may be
// set up and connected to the same file if collections with differing
// distributions and alignments are to be output"): each input stream reads
// the records that match its distribution and skips the others, in file
// order. Only the record header is read (by node 0, broadcast).
func (s *IStream) Skip() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkFullyExtracted("skip"); err != nil {
		return err
	}
	if !s.More() {
		return s.fail(fmt.Errorf("%w: skip past last record", ErrOrder))
	}
	hdr, err := s.bcastBytes(s.cursor, enc.RecordHeaderLen)
	if err != nil {
		return s.fail(fmt.Errorf("dstream: skip record header: %w", err))
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return s.fail(err)
	}
	s.cursor += h.TotalBytes()
	s.haveRec = false
	s.elemBufs = nil
	s.met.skips.Inc()
	return nil
}

// NextElems peeks at the next record's element count without consuming it,
// so a reader owning several input streams can decide which one should
// read the upcoming record. Returns ErrOrder at end of file.
func (s *IStream) NextElems() (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	if !s.More() {
		return 0, fmt.Errorf("%w: no next record", ErrOrder)
	}
	hdr, err := s.bcastBytes(s.cursor, enc.RecordHeaderLen)
	if err != nil {
		return 0, s.fail(fmt.Errorf("dstream: peek record header: %w", err))
	}
	h, err := enc.DecodeRecordHeader(hdr)
	if err != nil {
		return 0, s.fail(err)
	}
	return int(h.NElems), nil
}

// ExtractFunc is the low-level extract primitive: take is called once per
// locally owned element, in local order, with that element's decoder
// positioned at the next array of the record. Each call to ExtractFunc
// consumes one insert's worth of data, in insertion order.
func (s *IStream) ExtractFunc(take func(local int, d *Decoder)) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if !s.haveRec {
		return s.fail(fmt.Errorf("%w: extract before read", ErrOrder))
	}
	if s.extracts >= int(s.hdr.NArrays) {
		return s.fail(fmt.Errorf("%w: record has %d arrays, extract #%d requested",
			ErrOrder, s.hdr.NArrays, s.extracts+1))
	}
	for l, d := range s.elemBufs {
		take(l, d)
		if err := d.Err(); err != nil {
			return s.fail(fmt.Errorf("dstream: extract element (local %d): %w", l, err))
		}
	}
	s.extracts++
	s.met.extracts.Inc()
	s.node.Compute(float64(len(s.elemBufs)) * s.node.Profile().PerElemCost)
	return nil
}

// Arrays returns the number of arrays in the current record (0 before the
// first read).
func (s *IStream) Arrays() int {
	if !s.haveRec {
		return 0
	}
	return int(s.hdr.NArrays)
}

// Extracted returns how many arrays of the current record have been
// extracted.
func (s *IStream) Extracted() int { return s.extracts }

// LocalLen returns the number of elements this node receives per record.
func (s *IStream) LocalLen() int { return s.dist.LocalCount(s.node.Rank()) }

// checkFullyExtracted enforces Strict mode: the current record must be
// fully drained before moving on.
func (s *IStream) checkFullyExtracted(op string) error {
	if !s.opts.Strict || !s.haveRec {
		return nil
	}
	if s.extracts < int(s.hdr.NArrays) {
		return s.fail(fmt.Errorf("%w: %s with %d of %d arrays unextracted (Strict)",
			ErrOrder, op, int(s.hdr.NArrays)-s.extracts, s.hdr.NArrays))
	}
	return nil
}

// Close releases the stream (idempotent). In Strict mode, closing with a
// partially extracted record is an error.
func (s *IStream) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	bufpool.Put(s.refill)
	s.refill = nil
	s.elemBufs = nil
	if err == nil && s.opts.Strict && s.haveRec && s.extracts < int(s.hdr.NArrays) {
		err = fmt.Errorf("%w: close with %d of %d arrays unextracted (Strict)",
			ErrOrder, int(s.hdr.NArrays)-s.extracts, s.hdr.NArrays)
	}
	return err
}

// Node returns the owning node.
func (s *IStream) Node() *machine.Node { return s.node }

// Dist returns the reader's distribution.
func (s *IStream) Dist() *distr.Distribution { return s.dist }
