package dstream

import (
	"fmt"
	"math/rand"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// TestFuzzRecordSequences drives randomized but legal primitive sequences
// through the full pipeline: random numbers of records, random interleave
// widths, random per-element payload shapes (mixed scalar types and
// lengths, including empty), random distributions on both sides, sorted and
// unsorted reads — and checks that extraction reproduces insertion exactly.
// The generator is seeded, so failures replay deterministically.
func TestFuzzRecordSequences(t *testing.T) {
	const iters = 25
	for seed := int64(0); seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed)
		})
	}
}

// payloadFor deterministically derives the bytes element g gets in record
// rec, array a — mixed types, variable length.
func payloadFor(e *Encoder, seed int64, rec, a, g int) {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(rec)*10_007 + int64(a)*101 + int64(g)))
	n := rng.Intn(6) // 0..5 items; 0 = empty element payload
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			e.Int64(rng.Int63())
		case 1:
			e.Float64(rng.NormFloat64())
		case 2:
			e.String(fmt.Sprintf("s%d-%d", g, rng.Intn(1000)))
		case 3:
			vals := make([]float64, rng.Intn(4))
			for j := range vals {
				vals[j] = rng.Float64()
			}
			e.Float64Slice(vals)
		}
	}
}

// verifyPayload decodes what payloadFor encoded and reports mismatches.
func verifyPayload(d *Decoder, seed int64, rec, a, g int) error {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(rec)*10_007 + int64(a)*101 + int64(g)))
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			want := rng.Int63()
			if got := d.Int64(); got != want {
				return fmt.Errorf("int64 %d != %d", got, want)
			}
		case 1:
			want := rng.NormFloat64()
			if got := d.Float64(); got != want {
				return fmt.Errorf("float64 %v != %v", got, want)
			}
		case 2:
			want := fmt.Sprintf("s%d-%d", g, rng.Intn(1000))
			if got := d.String(); got != want {
				return fmt.Errorf("string %q != %q", got, want)
			}
		case 3:
			want := make([]float64, rng.Intn(4))
			for j := range want {
				want[j] = rng.Float64()
			}
			got := d.Float64Slice()
			if len(got) != len(want) {
				return fmt.Errorf("slice len %d != %d", len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("slice[%d] %v != %v", j, got[j], want[j])
				}
			}
		}
	}
	return d.Err()
}

func fuzzOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nElems := rng.Intn(30) + 1
	wProcs := rng.Intn(4) + 1
	rProcs := rng.Intn(4) + 1
	records := rng.Intn(4) + 1
	arrays := make([]int, records)
	for i := range arrays {
		arrays[i] = rng.Intn(3) + 1
	}
	wMode, rMode := distr.Mode(rng.Intn(3)), distr.Mode(rng.Intn(3))
	wBlk, rBlk := rng.Intn(3)+1, rng.Intn(3)+1
	sorted := rng.Intn(2) == 0

	fs := pfs.NewMemFS(vtime.Challenge())
	// Writer machine.
	if _, err := machine.Run(machine.Config{NProcs: wProcs, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			wd, err := distr.New(nElems, wProcs, wMode, wBlk)
			if err != nil {
				return err
			}
			s, err := Open(n, wd, "fuzz")
			if err != nil {
				return err
			}
			defer s.Close()
			for rec := 0; rec < records; rec++ {
				for a := 0; a < arrays[rec]; a++ {
					rec, a := rec, a
					if err := s.InsertFunc(func(l int, e *Encoder) {
						payloadFor(e, seed, rec, a, wd.GlobalIndex(n.Rank(), l))
					}); err != nil {
						return err
					}
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		t.Fatalf("write (n=%d wp=%d recs=%v): %v", nElems, wProcs, arrays, err)
	}

	// Reader machine. Sorted reads can verify per-element content; unsorted
	// reads verify that every element decodes as SOME valid element of the
	// record (the per-element payload is self-consistent).
	if _, err := machine.Run(machine.Config{NProcs: rProcs, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			rd, err := distr.New(nElems, rProcs, rMode, rBlk)
			if err != nil {
				return err
			}
			in, err := OpenInput(n, rd, "fuzz")
			if err != nil {
				return err
			}
			defer in.Close()
			for rec := 0; rec < records; rec++ {
				if sorted {
					err = in.Read()
				} else {
					err = in.UnsortedRead()
				}
				if err != nil {
					return fmt.Errorf("record %d: %w", rec, err)
				}
				if got := in.Arrays(); got != arrays[rec] {
					return fmt.Errorf("record %d: Arrays=%d want %d", rec, got, arrays[rec])
				}
				for a := 0; a < arrays[rec]; a++ {
					if !sorted {
						// Without ordering we cannot know which global each
						// slot holds; just consume the arrays so the state
						// machine stays aligned (content is covered by the
						// multiset tests elsewhere).
						if err := in.ExtractFunc(func(int, *Decoder) {}); err != nil {
							return err
						}
						continue
					}
					rec, a := rec, a
					var bad error
					if err := in.ExtractFunc(func(l int, d *Decoder) {
						g := rd.GlobalIndex(n.Rank(), l)
						if e := verifyPayload(d, seed, rec, a, g); e != nil && bad == nil {
							bad = fmt.Errorf("record %d array %d global %d: %w", rec, a, g, e)
						}
					}); err != nil {
						return err
					}
					if bad != nil {
						return bad
					}
				}
			}
			if in.More() {
				return fmt.Errorf("unexpected trailing records")
			}
			return nil
		}); err != nil {
		t.Fatalf("read (sorted=%v rp=%d): %v", sorted, rProcs, err)
	}
}

// TestFuzzUnsortedConsumesExactBytes: after an unsortedRead, consuming each
// array of the record leaves every per-element decoder exactly empty —
// payload framing never leaks across elements, whatever the shapes.
func TestFuzzUnsortedConsumesExactBytes(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nElems := rng.Intn(20) + 1
		procs := rng.Intn(3) + 1
		fs := pfs.NewMemFS(vtime.Challenge())
		if _, err := machine.Run(machine.Config{NProcs: procs, Profile: vtime.Challenge(), FS: fs},
			func(n *machine.Node) error {
				d, err := distr.New(nElems, procs, distr.Cyclic, 0)
				if err != nil {
					return err
				}
				s, err := Open(n, d, "bytes")
				if err != nil {
					return err
				}
				if err := s.InsertFunc(func(l int, e *Encoder) {
					payloadFor(e, seed, 0, 0, d.GlobalIndex(n.Rank(), l))
				}); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
				if err := s.Close(); err != nil {
					return err
				}

				in, err := OpenInput(n, d, "bytes")
				if err != nil {
					return err
				}
				defer in.Close()
				if err := in.UnsortedRead(); err != nil {
					return err
				}
				var leftover int
				if err := in.ExtractFunc(func(l int, dec *Decoder) {
					// Drain: decode as the element's own global id would...
					// we don't know it, so drain raw.
					dec.Raw(dec.Remaining())
					leftover += dec.Remaining()
				}); err != nil {
					return err
				}
				if leftover != 0 {
					return fmt.Errorf("%d leftover bytes", leftover)
				}
				return nil
			}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzOptionCombos drives random records through every combination of
// the stream options (metadata policy × async × strict × append), checking
// content after each phase.
func TestFuzzOptionCombos(t *testing.T) {
	seed := int64(0)
	for _, meta := range []MetaPolicy{MetaAuto, MetaFunnel, MetaParallel} {
		for _, async := range []bool{false, true} {
			for _, strict := range []bool{false, true} {
				seed++
				meta, async, strict, seed := meta, async, strict, seed
				t.Run(fmt.Sprintf("meta=%d async=%v strict=%v", meta, async, strict), func(t *testing.T) {
					fs := pfs.NewMemFS(vtime.Challenge())
					rng := rand.New(rand.NewSource(seed))
					n := rng.Intn(20) + 1
					procs := rng.Intn(3) + 1
					// Two "program runs": the second appends.
					for phase := 0; phase < 2; phase++ {
						phase := phase
						if _, err := machine.Run(machine.Config{NProcs: procs, Profile: vtime.Challenge(), FS: fs},
							func(nd *machine.Node) error {
								d, err := distr.New(n, procs, distr.Cyclic, 0)
								if err != nil {
									return err
								}
								s, err := Open(nd, d, "combo", WithOptions(Options{
									Meta: meta, Async: async, Append: phase == 1,
								}))
								if err != nil {
									return err
								}
								defer s.Close()
								if err := s.InsertFunc(func(l int, e *Encoder) {
									e.Int64(int64(phase*1000 + d.GlobalIndex(nd.Rank(), l)))
								}); err != nil {
									return err
								}
								return s.Write()
							}); err != nil {
							t.Fatal(err)
						}
					}
					// Read both records back under strict mode if requested.
					if _, err := machine.Run(machine.Config{NProcs: procs, Profile: vtime.Challenge(), FS: fs},
						func(nd *machine.Node) error {
							d, err := distr.New(n, procs, distr.Cyclic, 0)
							if err != nil {
								return err
							}
							in, err := OpenInput(nd, d, "combo", WithOptions(Options{Strict: strict}))
							if err != nil {
								return err
							}
							defer in.Close()
							for phase := 0; phase < 2; phase++ {
								if err := in.Read(); err != nil {
									return err
								}
								var bad error
								if err := in.ExtractFunc(func(l int, dec *Decoder) {
									want := int64(phase*1000 + d.GlobalIndex(nd.Rank(), l))
									if got := dec.Int64(); got != want && bad == nil {
										bad = fmt.Errorf("phase %d: %d != %d", phase, got, want)
									}
								}); err != nil {
									return err
								}
								if bad != nil {
									return bad
								}
							}
							if in.More() {
								return fmt.Errorf("unexpected extra records")
							}
							return nil
						}); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
