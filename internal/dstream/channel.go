package dstream

import (
	"errors"
	"fmt"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/enc"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/trace"
)

// This file implements persistent stream-to-stream channels: the d/stream
// endpoints generalized so a stream can attach M producer ranks directly to
// N consumer ranks over the interconnect, with no file in between (the MPI
// Streams direction — see ROADMAP). The inserter/extractor machinery is the
// one the file streams use; what replaces the file is a set of per-pair
// frame flows over the machine's mailbox rings:
//
//	producer: OpenChannel → insert⁺ → write → (insert⁺ → write)* → close
//	consumer: OpenChannelInput → read → extract* → … → close
//
// # Groups
//
// The producer group occupies machine ranks [0, M) and the consumer group
// machine ranks [P−N, P), where M and N are the NProcs of the two
// distributions and P the machine size. Both ends name both layouts at
// open — the channel's analog of the self-describing record header — so
// every rank derives the complete frame routing statically, with no open
// handshake and no per-record metadata exchange. The groups may overlap
// (M = N = P gives a loopback channel); an overlapping rank must then keep
// its in-flight bytes below the credit window between its own writes and
// reads, or it would wait on a credit only it can send.
//
// # Redistribution
//
// Each Write turns the interleave group into one frame per consumer that
// owns at least one of this rank's elements, packed exactly like the
// two-phase shuffle: (u32 global, u32 len, payload)* with the group's
// arrays interleaved element-major inside the payload. When M ≠ N or the
// layouts differ, the frames ARE the redistribution — every element flows
// straight from its producer to the rank that owns it under the consumer
// distribution, and Read places it by local index.
//
// # Flow control
//
// Data frames ride Endpoint.Send, so bulk frames inherit the rendezvous
// backpressure of the mailbox rings; on top of that a credit window bounds
// the bytes in flight per (producer, consumer) pair. The consumer
// acknowledges a record's frames when the next Read retires them (their
// decoders alias the frame buffers until then); the producer blocks before
// a send that would exceed Options.ChannelWindow outstanding bytes. A
// frame larger than the whole window is allowed through alone — the
// window gates on outstanding > 0, so progress never depends on a credit
// that can't come.
var (
	// ErrEOS reports, from IChannel.Read, that every producer closed the
	// channel: the stream of records is over. Not sticky — it is the normal
	// end of a pipeline, not a failure.
	ErrEOS = errors.New("dstream: end of stream")
)

// DefaultChannelWindow is the per-consumer credit window (bytes) when
// Options.ChannelWindow is zero.
const DefaultChannelWindow = 1 << 20

// chanFlagEOF marks a frame that carries no data: the sending producer has
// closed its end.
const chanFlagEOF = 1 << 0

// chanFrameHeaderLen is the fixed frame front matter: flags, nArrays,
// element count.
const chanFrameHeaderLen = 12

// chanTags derives the channel's two wire tags from its name, the way
// streamTag keys a file stream's causal edges: every rank of the machine
// computes the identical tags with no communication. Data and credit flow
// on distinct tags so a blocked credit wait never consumes a data frame.
func chanTags(name string) (data, credit uint64) {
	return streamTag("dstream.chan.data:" + name), streamTag("dstream.chan.credit:" + name)
}

// chanMetrics is the dsmon handle set of the channel layer, get-or-create
// in the run's registry like streamMetrics.
type chanMetrics struct {
	frames  *dsmon.Counter
	bytes   *dsmon.Counter
	redist  *dsmon.Counter
	drained *dsmon.Counter
	credits *dsmon.Gauge
	// creditStall observes the virtual seconds a producer's Write blocked
	// waiting for consumer credit; recvStall the virtual seconds a
	// consumer's Read blocked waiting for producer frames — the two halves
	// of a pipeline imbalance.
	creditStall *dsmon.Histogram
	recvStall   *dsmon.Histogram
}

func newChanMetrics(m *dsmon.Monitor) *chanMetrics {
	reg := m.Registry()
	return &chanMetrics{
		frames: reg.Counter("dstream_chan_frames_total", "channel data frames sent"),
		bytes: reg.Counter("dstream_chan_bytes_total",
			"channel frame bytes sent (header + routed payload)"),
		redist: reg.Counter("dstream_chan_redistribute_bytes_total",
			"channel frame bytes that crossed machine ranks"),
		drained: reg.Counter("dstream_chan_drained_bytes_total",
			"channel frame bytes an early-closing consumer drained unread"),
		credits: reg.Gauge("dstream_chan_credits",
			"channel frame bytes in flight awaiting consumer credit, all channels of this node's run"),
		creditStall: reg.Histogram("dstream_chan_stall_seconds",
			"virtual seconds a channel primitive blocked on the other end", dsmon.LatencyBuckets, "phase", "credit"),
		recvStall: reg.Histogram("dstream_chan_stall_seconds",
			"virtual seconds a channel primitive blocked on the other end", dsmon.LatencyBuckets, "phase", "recv"),
	}
}

// chanCheck validates the pair of layouts against the machine. mine is the
// calling end's distribution, peer the other end's.
func chanCheck(node *machine.Node, mine, peer *distr.Distribution) error {
	if mine.N != peer.N {
		return fmt.Errorf("dstream: channel ends disagree on element count: %d vs %d", mine.N, peer.N)
	}
	if mine.NProcs > node.Size() || peer.NProcs > node.Size() {
		return fmt.Errorf("dstream: channel groups (%d and %d ranks) exceed the %d-node machine",
			mine.NProcs, peer.NProcs, node.Size())
	}
	return nil
}

// chanDest is one consumer a producer sends frames to.
type chanDest struct {
	cons  int // consumer group rank
	rank  int // machine rank
	count int // elements routed there per record (0 = pacing-marker destination)
	frame enc.Buffer
	// outstanding is the frame bytes sent and not yet credited back — the
	// producer side of the credit window.
	outstanding int64
}

// chanSrc is one producer a consumer receives frames from.
type chanSrc struct {
	prod  int // producer group rank
	rank  int // machine rank
	count int // elements expected per record
}

// OChannel is the producer end of a stream-to-stream channel: an OStream
// whose records leave over the interconnect instead of landing in a file.
// Insert fills the interleave group exactly as on a file stream; Write
// routes it to the consumers as one frame per destination.
type OChannel struct {
	stream
	opts    Options
	peer    *distr.Distribution // consumer layout
	grpRank int                 // rank within the producer group
	window  int64
	dataTag uint64
	credTag uint64

	open    bool
	eofSent bool

	group      [][][]byte
	groupBytes int64
	wrote      int

	dests    []chanDest
	elemDest []int // local element → index into dests

	encScratch  Encoder
	arrFree     [][][]byte
	insertSpans []trace.SpanID
	cmet        *chanMetrics
}

// OpenChannel opens the producer end of the channel called name. d is the
// producer group's layout (its NProcs is M, the producer count), peer the
// consumer group's layout (NProcs = N). The caller must be one of machine
// ranks [0, M); every producer and every consumer of the machine must make
// its matching open call, though — unlike the file opens — no
// communication happens until the first Write.
func OpenChannel(node *machine.Node, d, peer *distr.Distribution, name string, opts ...Option) (*OChannel, error) {
	o := buildOptions(opts)
	if err := o.validateFor(dirChanSend); err != nil {
		return nil, err
	}
	if err := chanCheck(node, d, peer); err != nil {
		return nil, err
	}
	if node.Rank() >= d.NProcs {
		return nil, fmt.Errorf("dstream: rank %d outside the channel's producer group [0,%d)",
			node.Rank(), d.NProcs)
	}
	s := &OChannel{
		stream:  stream{node: node, dist: d, name: name, met: newStreamMetrics(node.Monitor()), tag: streamTag(name)},
		opts:    o,
		peer:    peer,
		grpRank: node.Rank(),
		window:  int64(o.ChannelWindow),
		cmet:    newChanMetrics(node.Monitor()),
		open:    true,
	}
	if s.window <= 0 {
		s.window = DefaultChannelWindow
	}
	s.dataTag, s.credTag = chanTags(name)
	s.buildRouting()
	return s, nil
}

// buildRouting derives the static frame plan: which consumers this
// producer sends to, how many elements each frame carries, and which
// destination each local element belongs to. Producer group rank 0
// additionally adopts every consumer that owns no elements, sending it
// empty pacing frames so its Read keeps record cadence and its EOF
// arrives.
func (s *OChannel) buildRouting() {
	consBase := s.node.Size() - s.peer.NProcs
	nLocal := s.dist.LocalCount(s.grpRank)
	s.elemDest = make([]int, nLocal)
	idx := make([]int, s.peer.NProcs)
	for c := range idx {
		idx[c] = -1
	}
	for l := 0; l < nLocal; l++ {
		g := s.dist.GlobalIndex(s.grpRank, l)
		c := s.peer.Owner(g)
		if idx[c] < 0 {
			idx[c] = len(s.dests)
			s.dests = append(s.dests, chanDest{cons: c, rank: consBase + c})
		}
		s.dests[idx[c]].count++
		s.elemDest[l] = idx[c]
	}
	if s.grpRank == 0 {
		for c := 0; c < s.peer.NProcs; c++ {
			if s.peer.LocalCount(c) == 0 {
				s.dests = append(s.dests, chanDest{cons: c, rank: consBase + c})
			}
		}
	}
}

// checkOpen shadows the embedded stream's file-based check: a channel has
// no file, it has an open flag.
func (s *OChannel) checkOpen() error {
	if s.err != nil {
		return s.err
	}
	if !s.open {
		return ErrClosed
	}
	return nil
}

// LocalLen returns the number of elements this producer contributes per
// insert — its share of the producer distribution.
func (s *OChannel) LocalLen() int { return s.dist.LocalCount(s.grpRank) }

// Pending returns the number of inserts in the current interleave group.
func (s *OChannel) Pending() int { return len(s.group) }

// Records returns the number of records written so far.
func (s *OChannel) Records() int { return s.wrote }

// Node returns the owning node.
func (s *OChannel) Node() *machine.Node { return s.node }

// Dist returns the producer group's distribution.
func (s *OChannel) Dist() *distr.Distribution { return s.dist }

// InsertFunc is the channel's low-level insert primitive, identical in
// contract to OStream.InsertFunc: fill is called once per locally owned
// element, in local order, appending that element's payload to the
// encoder.
func (s *OChannel) InsertFunc(fill func(local int, e *Encoder)) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	start := s.node.Clock().Now()
	n := s.LocalLen()
	var arr [][]byte
	if f := len(s.arrFree); f > 0 && cap(s.arrFree[f-1]) >= n {
		arr = s.arrFree[f-1][:n]
		s.arrFree = s.arrFree[:f-1]
	} else {
		arr = make([][]byte, n)
	}
	e := &s.encScratch
	var arrBytes int64
	for l := 0; l < n; l++ {
		e.Reset()
		fill(l, e)
		p := bufpool.Get(e.Len())
		copy(p, e.Bytes())
		arr[l] = p
		arrBytes += int64(len(p))
	}
	s.group = append(s.group, arr)
	s.groupBytes += arrBytes
	s.met.inserts.Inc()
	s.met.fill.Add(float64(arrBytes))
	s.node.Compute(float64(n) * s.node.Profile().PerElemCost)
	if rec := s.met.mon.Recorder(); rec != nil {
		id := rec.AddSpan(s.node.Rank(), "dstream", "ochannel.Insert "+s.name, start, s.node.Clock().Now())
		s.insertSpans = append(s.insertSpans, id)
	}
	return nil
}

// Write flushes the current interleave group as one record: the group's
// arrays are interleaved element-major (as on disk, so extractors see the
// same layout), each element is routed to the consumer that owns it, and
// one frame per destination goes out over the mailbox rings, gated by the
// credit window.
func (s *OChannel) Write() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if len(s.group) == 0 {
		return s.fail(fmt.Errorf("%w: write with no pending inserts", ErrOrder))
	}
	start := s.node.Clock().Now()
	rec := s.met.mon.Recorder()
	var writeSpan trace.SpanID
	if rec != nil {
		writeSpan = rec.NewSpanID()
		for _, id := range s.insertSpans {
			rec.AddFlow(id, writeSpan, "encode")
		}
		s.insertSpans = s.insertSpans[:0]
	}
	nArrays := len(s.group)
	nLocal := s.LocalLen()

	for i := range s.dests {
		d := &s.dests[i]
		d.frame.Reset()
		d.frame.Uint32(0)
		d.frame.Uint32(uint32(nArrays))
		d.frame.Uint32(uint32(d.count))
	}
	var localBytes int64
	for l := 0; l < nLocal; l++ {
		f := &s.dests[s.elemDest[l]].frame
		var sz int
		for _, arr := range s.group {
			sz += len(arr[l])
		}
		f.Uint32(uint32(s.dist.GlobalIndex(s.grpRank, l)))
		f.Uint32(uint32(sz))
		for _, arr := range s.group {
			f.Raw(arr[l])
		}
		localBytes += int64(sz)
	}
	for _, arr := range s.group {
		for l, p := range arr {
			bufpool.Put(p)
			arr[l] = nil
		}
		s.arrFree = append(s.arrFree, arr)
	}
	s.node.CopyCost(localBytes + int64(8*nLocal))
	s.group = s.group[:0]
	s.met.fill.Add(-float64(s.groupBytes))
	s.groupBytes = 0

	ep := s.node.Comm().Endpoint()
	seq := uint64(s.wrote) + 1
	for i := range s.dests {
		d := &s.dests[i]
		frameLen := int64(d.frame.Len())
		if err := s.awaitCredit(d, frameLen); err != nil {
			return s.fail(fmt.Errorf("%w: channel credit from consumer %d: %w", ErrIO, d.cons, err))
		}
		if rec != nil {
			rec.FlowOut(trace.FlowKey{Kind: "chan", A: s.node.Rank(), B: d.rank, Tag: s.tag, Seq: seq}, writeSpan)
		}
		if err := ep.Send(d.rank, s.dataTag, d.frame.Bytes()); err != nil {
			return s.fail(fmt.Errorf("%w: channel send to consumer %d: %w", ErrIO, d.cons, err))
		}
		d.outstanding += frameLen
		s.cmet.credits.Add(float64(frameLen))
		s.cmet.frames.Inc()
		s.cmet.bytes.Add(frameLen)
		if d.rank != s.node.Rank() {
			s.cmet.redist.Add(frameLen)
		}
	}
	s.wrote++
	end := s.node.Clock().Now()
	s.met.writes.Inc()
	s.met.flushBytes.Observe(float64(localBytes))
	s.met.flushStall.Observe(end - start)
	if rec != nil {
		rec.AddSpanID(writeSpan, s.node.Rank(), "dstream", "ochannel.Write "+s.name, start, end)
	}
	return nil
}

// awaitCredit blocks until sending frameLen more bytes to d fits the
// window. A frame with nothing outstanding always passes, so an oversize
// frame cannot deadlock on a credit that will never come.
func (s *OChannel) awaitCredit(d *chanDest, frameLen int64) error {
	if d.outstanding <= 0 || d.outstanding+frameLen <= s.window {
		return nil
	}
	ep := s.node.Comm().Endpoint()
	start := s.node.Clock().Now()
	for d.outstanding > 0 && d.outstanding+frameLen > s.window {
		b, err := ep.Recv(d.rank, s.credTag)
		if err != nil {
			return err
		}
		var rd enc.Reader
		rd.Reset(b)
		v := rd.Uint64()
		ok := rd.Err() == nil && rd.Remaining() == 0
		bufpool.Put(b)
		if !ok {
			return fmt.Errorf("dstream: malformed credit frame from consumer %d", d.cons)
		}
		d.outstanding -= int64(v)
		s.cmet.credits.Add(-float64(v))
		if d.outstanding < 0 {
			return fmt.Errorf("dstream: consumer %d over-credited by %d bytes", d.cons, -d.outstanding)
		}
	}
	end := s.node.Clock().Now()
	s.cmet.creditStall.Observe(end - start)
	if rec := s.met.mon.Recorder(); rec != nil && end > start {
		rec.Add(s.node.Rank(), "dstream", "ochannel.credit-wait "+s.name, start, end)
	}
	return nil
}

// closeSend delivers the end-of-stream marker: one EOF-flagged empty frame
// to every destination. EOF frames are small, ride the eager path, and are
// not credit-accounted.
func (s *OChannel) closeSend() error {
	if s.eofSent {
		return nil
	}
	s.eofSent = true
	ep := s.node.Comm().Endpoint()
	e := &s.encScratch
	e.Reset()
	e.Uint32(chanFlagEOF)
	e.Uint32(0)
	e.Uint32(0)
	for i := range s.dests {
		d := &s.dests[i]
		if err := ep.Send(d.rank, s.dataTag, e.Bytes()); err != nil {
			return fmt.Errorf("%w: channel EOF to consumer %d: %w", ErrIO, d.cons, err)
		}
	}
	return nil
}

// Close sends the end-of-stream marker (once) and releases the producer
// end. Idempotent and safe to defer, like the file streams' Close; data
// inserted but never written is surfaced as an order error.
func (s *OChannel) Close() error {
	if !s.open {
		return nil
	}
	s.open = false
	var err error
	if s.err == nil {
		if err = s.closeSend(); err != nil {
			s.fail(err)
		}
	}
	// Settle the in-flight account: credits for the last record arrive at
	// the consumer's next read or close, but a closed producer no longer
	// listens for them — the gauge tracks live channels only.
	for i := range s.dests {
		d := &s.dests[i]
		if d.outstanding > 0 {
			s.cmet.credits.Add(-float64(d.outstanding))
			d.outstanding = 0
		}
	}
	if len(s.group) > 0 {
		if err == nil {
			err = fmt.Errorf("%w: close with %d unwritten inserts", ErrOrder, len(s.group))
		}
		for _, arr := range s.group {
			for _, p := range arr {
				bufpool.Put(p)
			}
		}
		s.group = nil
		s.met.fill.Add(-float64(s.groupBytes))
		s.groupBytes = 0
	}
	return err
}

// IChannel is the consumer end of a stream-to-stream channel: an IStream
// whose records arrive over the interconnect. Each Read assembles one
// record from one frame per producer; Extract calls drain it exactly as on
// a file stream. Read returns ErrEOS once every producer has closed.
type IChannel struct {
	stream
	opts    Options
	peer    *distr.Distribution // producer layout
	grpRank int                 // rank within the consumer group
	dataTag uint64
	credTag uint64

	open bool
	eos  bool

	srcs   []chanSrc
	srcEOF []bool
	// frames holds the current record's frame buffers (parallel to srcs);
	// the element decoders alias them, so they are retired — credited back
	// to their producers and returned to the pool — only when the next
	// Read, or Close, replaces them.
	frames [][]byte
	out    [][]byte // per local element payload, aliasing frames

	nArrays  int
	haveRec  bool
	extracts int
	readRecs int

	elemBufs  []*Decoder
	credFrame enc.Buffer
	cmet      *chanMetrics
}

// OpenChannelInput opens the consumer end of the channel called name. d is
// the consumer group's layout (its NProcs is N, the consumer count), peer
// the producer group's layout (NProcs = M). The caller must be one of
// machine ranks [P−N, P).
func OpenChannelInput(node *machine.Node, d, peer *distr.Distribution, name string, opts ...Option) (*IChannel, error) {
	o := buildOptions(opts)
	if err := o.validateFor(dirChanRecv); err != nil {
		return nil, err
	}
	if err := chanCheck(node, d, peer); err != nil {
		return nil, err
	}
	consBase := node.Size() - d.NProcs
	if node.Rank() < consBase {
		return nil, fmt.Errorf("dstream: rank %d outside the channel's consumer group [%d,%d)",
			node.Rank(), consBase, node.Size())
	}
	r := &IChannel{
		stream:  stream{node: node, dist: d, name: name, met: newStreamMetrics(node.Monitor()), tag: streamTag(name)},
		opts:    o,
		peer:    peer,
		grpRank: node.Rank() - consBase,
		cmet:    newChanMetrics(node.Monitor()),
		open:    true,
	}
	r.dataTag, r.credTag = chanTags(name)
	r.buildRouting()
	return r, nil
}

// buildRouting derives the consumer's static frame plan: which producers
// send to this rank and how many elements each delivers per record. A
// consumer owning no elements still hears from producer group rank 0 (the
// pacing marker), so its Read keeps cadence and sees EOF.
func (r *IChannel) buildRouting() {
	counts := make([]int, r.peer.NProcs)
	nLocal := r.dist.LocalCount(r.grpRank)
	for l := 0; l < nLocal; l++ {
		g := r.dist.GlobalIndex(r.grpRank, l)
		counts[r.peer.Owner(g)]++
	}
	for p, c := range counts {
		if c > 0 {
			r.srcs = append(r.srcs, chanSrc{prod: p, rank: p, count: c})
		}
	}
	if len(r.srcs) == 0 {
		r.srcs = append(r.srcs, chanSrc{prod: 0, rank: 0})
	}
	r.srcEOF = make([]bool, len(r.srcs))
	r.frames = make([][]byte, len(r.srcs))
	r.out = make([][]byte, nLocal)
}

// checkOpen shadows the embedded stream's file-based check.
func (r *IChannel) checkOpen() error {
	if r.err != nil {
		return r.err
	}
	if !r.open {
		return ErrClosed
	}
	return nil
}

// LocalLen returns the number of elements this consumer receives per
// record — its share of the consumer distribution.
func (r *IChannel) LocalLen() int { return r.dist.LocalCount(r.grpRank) }

// Arrays returns the number of arrays in the current record (0 before the
// first read).
func (r *IChannel) Arrays() int {
	if !r.haveRec {
		return 0
	}
	return r.nArrays
}

// Extracted returns how many arrays of the current record have been
// extracted.
func (r *IChannel) Extracted() int { return r.extracts }

// Records returns the number of records read so far.
func (r *IChannel) Records() int { return r.readRecs }

// EOF reports whether every producer has closed the channel.
func (r *IChannel) EOF() bool { return r.eos }

// Node returns the owning node.
func (r *IChannel) Node() *machine.Node { return r.node }

// Dist returns the consumer group's distribution.
func (r *IChannel) Dist() *distr.Distribution { return r.dist }

// checkFullyExtracted enforces Strict mode, as on file input streams.
func (r *IChannel) checkFullyExtracted(op string) error {
	if !r.opts.Strict || !r.haveRec {
		return nil
	}
	if r.extracts < r.nArrays {
		return r.fail(fmt.Errorf("%w: %s with %d of %d arrays unextracted (Strict)",
			ErrOrder, op, r.nArrays-r.extracts, r.nArrays))
	}
	return nil
}

// retire acknowledges and releases the previous record's frames: each goes
// back to the buffer pool and its byte length flows back to its producer
// as an 8-byte eager credit frame, reopening that pair's window.
func (r *IChannel) retire() {
	ep := r.node.Comm().Endpoint()
	for i, b := range r.frames {
		if b == nil {
			continue
		}
		src := &r.srcs[i]
		r.credFrame.Reset()
		r.credFrame.Uint64(uint64(len(b)))
		if err := ep.Send(src.rank, r.credTag, r.credFrame.Bytes()); err != nil {
			r.fail(fmt.Errorf("%w: channel credit to producer %d: %w", ErrIO, src.prod, err))
		}
		bufpool.Put(b)
		r.frames[i] = nil
	}
	for i := range r.out {
		r.out[i] = nil
	}
}

// Read assembles the next record: the previous record's frames are retired
// (credited and pooled), one frame is received from every producer in the
// plan, and each element payload is placed — still aliasing its frame
// buffer, zero copies — at its local index under the consumer
// distribution. Returns ErrEOS once every producer has closed.
func (r *IChannel) Read() error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	if r.eos {
		return ErrEOS
	}
	if err := r.checkFullyExtracted("read"); err != nil {
		return err
	}
	start := r.node.Clock().Now()
	rec := r.met.mon.Recorder()
	var readSpan trace.SpanID
	if rec != nil {
		readSpan = rec.NewSpanID()
	}
	r.retire()
	if r.err != nil {
		return r.err
	}
	ep := r.node.Comm().Endpoint()
	seq := uint64(r.readRecs) + 1
	eofs := 0
	nArrays := -1
	var total int64
	for i := range r.srcs {
		src := &r.srcs[i]
		b, err := ep.Recv(src.rank, r.dataTag)
		if err != nil {
			return r.fail(fmt.Errorf("%w: channel recv from producer %d: %w", ErrIO, src.prod, err))
		}
		r.frames[i] = b
		var d enc.Reader
		d.Reset(b)
		flags := d.Uint32()
		na := int(d.Uint32())
		cnt := int(d.Uint32())
		if d.Err() != nil {
			return r.fail(fmt.Errorf("%w: channel frame from producer %d: truncated header", ErrIO, src.prod))
		}
		if flags&chanFlagEOF != 0 {
			eofs++
			continue
		}
		if rec != nil {
			rec.FlowIn(trace.FlowKey{Kind: "chan", A: src.rank, B: r.node.Rank(), Tag: r.tag, Seq: seq}, readSpan)
		}
		if cnt != src.count {
			return r.fail(fmt.Errorf("%w: channel frame from producer %d carries %d elements, plan expects %d",
				ErrIO, src.prod, cnt, src.count))
		}
		if nArrays < 0 {
			nArrays = na
		} else if na != nArrays {
			return r.fail(fmt.Errorf("%w: producers disagree on array count (%d vs %d)", ErrIO, na, nArrays))
		}
		for j := 0; j < cnt; j++ {
			g := int(d.Uint32())
			sz := int(d.Uint32())
			p := d.Raw(sz)
			if d.Err() != nil {
				return r.fail(fmt.Errorf("%w: channel frame from producer %d: truncated element", ErrIO, src.prod))
			}
			if g < 0 || g >= r.dist.N || r.dist.Owner(g) != r.grpRank {
				return r.fail(fmt.Errorf("%w: element %d misrouted to consumer %d", ErrIO, g, r.grpRank))
			}
			li := r.dist.LocalIndex(g)
			if r.out[li] != nil {
				return r.fail(fmt.Errorf("%w: element %d delivered twice", ErrIO, g))
			}
			r.out[li] = p
		}
		if d.Remaining() != 0 {
			return r.fail(fmt.Errorf("%w: channel frame from producer %d: %d trailing bytes", ErrIO, src.prod, d.Remaining()))
		}
		total += int64(len(b))
	}
	if eofs > 0 {
		if eofs != len(r.srcs) {
			return r.fail(fmt.Errorf("%w: channel EOF and data frames in the same record", ErrIO))
		}
		// EOF frames carry no credited bytes; release them directly.
		for i, b := range r.frames {
			if b != nil {
				bufpool.Put(b)
				r.frames[i] = nil
			}
		}
		r.eos = true
		r.haveRec = false
		return ErrEOS
	}
	for l, b := range r.out {
		if b == nil {
			return r.fail(fmt.Errorf("dstream: local slot %d (global %d) never arrived",
				l, r.dist.GlobalIndex(r.grpRank, l)))
		}
	}
	if len(r.elemBufs) == len(r.out) {
		for i, b := range r.out {
			r.elemBufs[i].Reset(b)
		}
	} else {
		r.elemBufs = make([]*Decoder, len(r.out))
		for i, b := range r.out {
			d := new(Decoder)
			d.Reset(b)
			r.elemBufs[i] = d
		}
	}
	r.node.CopyCost(total)
	r.nArrays = nArrays
	r.haveRec = true
	r.extracts = 0
	r.readRecs++
	end := r.node.Clock().Now()
	r.met.reads.Inc()
	r.met.refillBytes.Observe(float64(total))
	r.met.refillStall.Observe(end - start)
	r.cmet.recvStall.Observe(end - start)
	if rec != nil {
		rec.AddSpanID(readSpan, r.node.Rank(), "dstream", "ichannel.Read "+r.name, start, end)
	}
	return nil
}

// ExtractFunc is the channel's low-level extract primitive, identical in
// contract to IStream.ExtractFunc.
func (r *IChannel) ExtractFunc(take func(local int, d *Decoder)) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	if !r.haveRec {
		return r.fail(fmt.Errorf("%w: extract before read", ErrOrder))
	}
	if r.extracts >= r.nArrays {
		return r.fail(fmt.Errorf("%w: record has %d arrays, extract #%d requested",
			ErrOrder, r.nArrays, r.extracts+1))
	}
	for l, d := range r.elemBufs {
		take(l, d)
		if err := d.Err(); err != nil {
			return r.fail(fmt.Errorf("dstream: extract element (local %d): %w", l, err))
		}
	}
	r.extracts++
	r.met.extracts.Inc()
	r.node.Compute(float64(len(r.elemBufs)) * r.node.Profile().PerElemCost)
	return nil
}

// drain consumes — crediting and discarding — everything the producers
// still have in flight, through their EOF markers, so an early-closing
// consumer never leaves a producer blocked on a credit window that would
// never reopen. The skipped bytes are counted drained. A channel already
// in its sticky-error state does not drain: the run is aborting, and the
// machine tears the transport down with it.
func (r *IChannel) drain() error {
	r.retire()
	if r.err != nil || r.eos {
		return r.err
	}
	ep := r.node.Comm().Endpoint()
	var drained int64
	done := 0
	for i := range r.srcs {
		if r.srcEOF[i] {
			done++
		}
	}
	for done < len(r.srcs) {
		for i := range r.srcs {
			if r.srcEOF[i] {
				continue
			}
			src := &r.srcs[i]
			b, err := ep.Recv(src.rank, r.dataTag)
			if err != nil {
				return r.fail(fmt.Errorf("%w: channel drain from producer %d: %w", ErrIO, src.prod, err))
			}
			var d enc.Reader
			d.Reset(b)
			flags := d.Uint32()
			if d.Err() != nil {
				bufpool.Put(b)
				return r.fail(fmt.Errorf("%w: channel frame from producer %d: truncated header", ErrIO, src.prod))
			}
			if flags&chanFlagEOF != 0 {
				r.srcEOF[i] = true
				done++
				bufpool.Put(b)
				continue
			}
			drained += int64(len(b))
			r.credFrame.Reset()
			r.credFrame.Uint64(uint64(len(b)))
			if err := ep.Send(src.rank, r.credTag, r.credFrame.Bytes()); err != nil {
				bufpool.Put(b)
				return r.fail(fmt.Errorf("%w: channel credit to producer %d: %w", ErrIO, src.prod, err))
			}
			bufpool.Put(b)
		}
	}
	r.cmet.drained.Add(drained)
	r.eos = true
	return nil
}

// Close drains the channel to end-of-stream (crediting the producers for
// everything discarded) and releases the consumer end. Idempotent. In
// Strict mode, closing with a partially extracted record is an error.
func (r *IChannel) Close() error {
	if !r.open {
		return nil
	}
	r.open = false
	var err error
	if r.opts.Strict && r.haveRec && r.extracts < r.nArrays {
		err = fmt.Errorf("%w: close with %d of %d arrays unextracted (Strict)",
			ErrOrder, r.nArrays-r.extracts, r.nArrays)
	}
	r.haveRec = false
	if derr := r.drain(); derr != nil && err == nil {
		err = derr
	}
	r.elemBufs = nil
	return err
}
