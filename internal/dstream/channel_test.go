package dstream

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// chanRun runs an SPMD body on a file-system-less machine config (channels
// never touch storage, but the harness still wants an FS for abort wiring).
func chanRun(t *testing.T, nprocs int, mon *dsmon.Monitor, body func(n *machine.Node) error) {
	t.Helper()
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: nprocs, Profile: vtime.Challenge(), FS: fs, Monitor: mon}, body)
	if err != nil {
		t.Fatal(err)
	}
}

// pipeOnce pushes records through an M→N channel and verifies every
// extracted element on the consumer side. Each record carries two
// interleaved arrays (mkPlist(g) and mkPlist(g+offset)) so the element-major
// interleave is exercised like the file streams' group inserts.
func pipeOnce(t *testing.T, m, n, nElems, records int, wmode, rmode distr.Mode, opts ...Option) {
	t.Helper()
	p := m + n
	chanRun(t, p, nil, func(node *machine.Node) error {
		wd, err := distr.New(nElems, m, wmode, 0)
		if err != nil {
			return err
		}
		rd, err := distr.New(nElems, n, rmode, 0)
		if err != nil {
			return err
		}
		var perr, cerr error
		if node.Rank() < m {
			perr = chanProduce(node, wd, rd, records, opts...)
		}
		if node.Rank() >= p-n {
			cerr = chanConsume(node, rd, wd, records, opts...)
		}
		if perr != nil {
			return perr
		}
		return cerr
	})
}

func chanProduce(node *machine.Node, wd, rd *distr.Distribution, records int, opts ...Option) error {
	s, err := OpenChannel(node, wd, rd, "pipe", opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	a := make([]plist, s.LocalLen())
	b := make([]plist, s.LocalLen())
	for rec := 0; rec < records; rec++ {
		for l := range a {
			g := wd.GlobalIndex(node.Rank(), l)
			a[l] = mkPlist(g + rec*7)
			b[l] = mkPlist(g + rec*7 + 1000)
		}
		if err := InsertElems[plist](s, a); err != nil {
			return err
		}
		if err := InsertElems[plist](s, b); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
	}
	return s.Close()
}

func chanConsume(node *machine.Node, rd, wd *distr.Distribution, records int, opts ...Option) error {
	r, err := OpenChannelInput(node, rd, wd, "pipe", opts...)
	if err != nil {
		return err
	}
	defer r.Close()
	grpRank := node.Rank() - (node.Size() - rd.NProcs)
	a := make([]plist, r.LocalLen())
	b := make([]plist, r.LocalLen())
	got := 0
	for {
		err := r.Read()
		if errors.Is(err, ErrEOS) {
			break
		}
		if err != nil {
			return err
		}
		if r.Arrays() != 2 {
			return fmt.Errorf("record %d has %d arrays, want 2", got, r.Arrays())
		}
		if err := ExtractElems[plist](r, a); err != nil {
			return err
		}
		if err := ExtractElems[plist](r, b); err != nil {
			return err
		}
		for l := range a {
			g := rd.GlobalIndex(grpRank, l)
			if want := mkPlist(g + got*7); !plistEqual(a[l], want) {
				return fmt.Errorf("record %d array 0 element %d mismatch", got, g)
			}
			if want := mkPlist(g + got*7 + 1000); !plistEqual(b[l], want) {
				return fmt.Errorf("record %d array 1 element %d mismatch", got, g)
			}
		}
		got++
	}
	if got != records {
		return fmt.Errorf("consumed %d records, want %d", got, records)
	}
	if !r.EOF() {
		return fmt.Errorf("EOF() false after ErrEOS")
	}
	return r.Close()
}

// TestChannelGrid: the M→N matrix with differing layouts on the two ends —
// every cell redistributes on the fly, and every element arrives at its
// consumer-side local index intact.
func TestChannelGrid(t *testing.T) {
	cells := []struct{ m, n int }{{1, 1}, {2, 2}, {4, 2}, {2, 4}, {1, 3}, {3, 1}}
	for _, c := range cells {
		t.Run(fmt.Sprintf("%dto%d", c.m, c.n), func(t *testing.T) {
			pipeOnce(t, c.m, c.n, 23, 3, distr.Block, distr.Cyclic)
		})
	}
}

// TestChannelSameLayout: M = N with identical layouts — the degenerate
// pair-wise pipe — still frames and routes correctly.
func TestChannelSameLayout(t *testing.T) {
	pipeOnce(t, 2, 2, 16, 3, distr.Block, distr.Block)
}

// TestChannelSmallWindow: a credit window far below the per-record frame
// size forces the oversize-frame path (outstanding == 0 always sends) and
// a credit wait on every subsequent write; the pipeline must still drain
// completely and observe credit stalls.
func TestChannelSmallWindow(t *testing.T) {
	mon := dsmon.New()
	const m, n, nElems, records = 2, 2, 23, 4
	chanRun(t, m+n, mon, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, m, distr.Block, 0)
		rd, _ := distr.New(nElems, n, distr.Cyclic, 0)
		var perr, cerr error
		if node.Rank() < m {
			perr = chanProduce(node, wd, rd, records, WithChannelWindow(64))
		}
		if node.Rank() >= 2 {
			cerr = chanConsume(node, rd, wd, records)
		}
		if perr != nil {
			return perr
		}
		return cerr
	})
	reg := mon.Registry()
	if c := reg.Histogram("dstream_chan_stall_seconds", "", dsmon.LatencyBuckets, "phase", "credit").Count(); c == 0 {
		t.Error("no credit-stall observations with a 64-byte window")
	}
	if v := reg.Gauge("dstream_chan_credits", "").Value(); v != 0 {
		t.Errorf("credits gauge = %v after a fully drained run, want 0", v)
	}
}

// TestChannelEarlyConsumerClose: a consumer that stops after one record
// must drain (and credit) the rest of the stream on Close, so producers
// blocked on the window finish cleanly instead of hanging.
func TestChannelEarlyConsumerClose(t *testing.T) {
	mon := dsmon.New()
	const m, n, nElems, records = 2, 2, 23, 6
	chanRun(t, m+n, mon, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, m, distr.Block, 0)
		rd, _ := distr.New(nElems, n, distr.Block, 0)
		if node.Rank() < m {
			return chanProduce(node, wd, rd, records, WithChannelWindow(64))
		}
		r, err := OpenChannelInput(node, rd, wd, "pipe")
		if err != nil {
			return err
		}
		if err := r.Read(); err != nil {
			return err
		}
		return r.Close()
	})
	if v := mon.Registry().Counter("dstream_chan_drained_bytes_total", "").Value(); v == 0 {
		t.Error("early close drained no bytes")
	}
}

// TestChannelConsumerWithoutElements: a consumer owning zero elements still
// paces through empty marker frames from producer rank 0 and sees EOF.
func TestChannelConsumerWithoutElements(t *testing.T) {
	const m, n, nElems, records = 2, 2, 8, 3
	owners := make([]int, nElems) // every element on consumer group rank 0
	chanRun(t, m+n, nil, func(node *machine.Node) error {
		wd, err := distr.New(nElems, m, distr.Block, 0)
		if err != nil {
			return err
		}
		rd, err := distr.NewExplicit(owners, n)
		if err != nil {
			return err
		}
		var perr, cerr error
		if node.Rank() < m {
			perr = chanProduce(node, wd, rd, records)
		}
		if node.Rank() >= m {
			cerr = chanConsume(node, rd, wd, records)
		}
		if perr != nil {
			return perr
		}
		return cerr
	})
}

// TestChannelLoopback: overlapping groups (M = N = P), each rank both
// producing and consuming, writes-then-reads record by record so its own
// in-flight bytes stay below the window.
func TestChannelLoopback(t *testing.T) {
	const p, nElems, records = 2, 12, 3
	chanRun(t, p, nil, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, p, distr.Block, 0)
		rd, _ := distr.New(nElems, p, distr.Cyclic, 0)
		s, err := OpenChannel(node, wd, rd, "loop")
		if err != nil {
			return err
		}
		defer s.Close()
		r, err := OpenChannelInput(node, rd, wd, "loop")
		if err != nil {
			return err
		}
		defer r.Close()
		in := make([]plist, s.LocalLen())
		out := make([]plist, r.LocalLen())
		for rec := 0; rec < records; rec++ {
			for l := range in {
				in[l] = mkPlist(wd.GlobalIndex(node.Rank(), l) + rec*7)
			}
			if err := InsertElems[plist](s, in); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
			if err := r.Read(); err != nil {
				return err
			}
			if err := ExtractElems[plist](r, out); err != nil {
				return err
			}
			for l := range out {
				g := rd.GlobalIndex(node.Rank(), l)
				if want := mkPlist(g + rec*7); !plistEqual(out[l], want) {
					return fmt.Errorf("record %d element %d mismatch", rec, g)
				}
			}
		}
		if err := s.Close(); err != nil {
			return err
		}
		if err := r.Read(); !errors.Is(err, ErrEOS) {
			return fmt.Errorf("read after close = %v, want ErrEOS", err)
		}
		return r.Close()
	})
}

// TestChannelStrict: the Figure 2 contract on the consumer end — moving on
// with unextracted arrays fails under WithStrict.
func TestChannelStrict(t *testing.T) {
	const m, n, nElems = 1, 1, 8
	chanRun(t, m+n, nil, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, m, distr.Block, 0)
		rd, _ := distr.New(nElems, n, distr.Block, 0)
		if node.Rank() == 0 {
			return chanProduce(node, wd, rd, 2)
		}
		r, err := OpenChannelInput(node, rd, wd, "pipe", WithStrict())
		if err != nil {
			return err
		}
		buf := make([]plist, r.LocalLen())
		if err := r.Read(); err != nil {
			return err
		}
		if err := ExtractElems[plist](r, buf); err != nil {
			return err
		}
		// One of two arrays extracted: the next read must refuse.
		if err := r.Read(); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("strict read with unextracted array = %v, want ErrOrder", err)
		}
		// The stream is now sticky-failed; Close must not hang on a drain.
		r.Close()
		return nil
	})
}

// TestChannelOrderErrors: the channel rejects out-of-order primitives with
// the file streams' errors.
func TestChannelOrderErrors(t *testing.T) {
	const m, n, nElems = 1, 1, 8
	chanRun(t, m+n, nil, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, m, distr.Block, 0)
		rd, _ := distr.New(nElems, n, distr.Block, 0)
		if node.Rank() == 0 {
			// No consumer attaches to "solo": the failed primitives below
			// never reach the wire.
			s, err := OpenChannel(node, wd, rd, "solo")
			if err != nil {
				return err
			}
			if err := s.Write(); !errors.Is(err, ErrOrder) {
				return fmt.Errorf("write with no inserts = %v, want ErrOrder", err)
			}
			s2, err := OpenChannel(node, wd, rd, "solo2")
			if err != nil {
				return err
			}
			short := make([]plist, 1)
			if err := InsertElems[plist](s2, short); !errors.Is(err, ErrNotAligned) {
				return fmt.Errorf("short InsertElems = %v, want ErrNotAligned", err)
			}
			return nil
		}
		r, err := OpenChannelInput(node, rd, wd, "solo3")
		if err != nil {
			return err
		}
		buf := make([]plist, r.LocalLen())
		if err := ExtractElems[plist](r, buf); !errors.Is(err, ErrOrder) {
			return fmt.Errorf("extract before read = %v, want ErrOrder", err)
		}
		return nil
	})
}

// TestChannelOpenErrors: group membership and layout agreement are checked
// at open, before any communication.
func TestChannelOpenErrors(t *testing.T) {
	chanRun(t, 2, nil, func(node *machine.Node) error {
		wd, _ := distr.New(8, 1, distr.Block, 0)
		rd, _ := distr.New(8, 1, distr.Block, 0)
		rdBad, _ := distr.New(9, 1, distr.Block, 0)
		big, _ := distr.New(8, 3, distr.Block, 0)
		if _, err := OpenChannel(node, wd, rdBad, "x"); err == nil {
			return fmt.Errorf("mismatched element counts accepted")
		}
		if _, err := OpenChannel(node, big, rd, "x"); err == nil {
			return fmt.Errorf("oversized group accepted")
		}
		if node.Rank() == 1 {
			if _, err := OpenChannel(node, wd, rd, "x"); err == nil ||
				!strings.Contains(err.Error(), "outside the channel's producer group") {
				return fmt.Errorf("rank outside producer group: err = %v", err)
			}
		}
		if node.Rank() == 0 {
			if _, err := OpenChannelInput(node, rd, wd, "x"); err == nil ||
				!strings.Contains(err.Error(), "outside the channel's consumer group") {
				return fmt.Errorf("rank outside consumer group: err = %v", err)
			}
		}
		return nil
	})
}

// TestChannelUseAfterClose: closed ends return ErrClosed, and Close stays
// idempotent.
func TestChannelUseAfterClose(t *testing.T) {
	const m, n, nElems = 1, 1, 8
	chanRun(t, m+n, nil, func(node *machine.Node) error {
		wd, _ := distr.New(nElems, m, distr.Block, 0)
		rd, _ := distr.New(nElems, n, distr.Block, 0)
		if node.Rank() == 0 {
			s, err := OpenChannel(node, wd, rd, "pipe")
			if err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return fmt.Errorf("second close = %v, want nil", err)
			}
			if err := s.InsertFunc(func(int, *Encoder) {}); !errors.Is(err, ErrClosed) {
				return fmt.Errorf("insert after close = %v, want ErrClosed", err)
			}
			return nil
		}
		r, err := OpenChannelInput(node, rd, wd, "pipe")
		if err != nil {
			return err
		}
		if err := r.Read(); !errors.Is(err, ErrEOS) {
			return fmt.Errorf("read = %v, want ErrEOS (producer closed immediately)", err)
		}
		if err := r.Close(); err != nil {
			return err
		}
		if err := r.Read(); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("read after close = %v, want ErrClosed", err)
		}
		return nil
	})
}
