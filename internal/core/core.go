// Package core marks the paper's primary contribution within the prescribed
// repository layout. The d/stream implementation itself lives in
// pcxxstreams/internal/dstream (see that package's documentation for the
// abstraction, the Figure 2 state machines, and the on-disk format); this
// package re-exports its public surface under the canonical internal/core
// path so the contribution is reachable where the repository structure
// promises it.
package core

import (
	"pcxxstreams/internal/dstream"
)

// Core d/stream types.
type (
	// OStream is an output d/stream (see dstream.OStream).
	OStream = dstream.OStream
	// IStream is an input d/stream (see dstream.IStream).
	IStream = dstream.IStream
	// Encoder is the per-element payload encoder.
	Encoder = dstream.Encoder
	// Decoder is the per-element payload decoder.
	Decoder = dstream.Decoder
	// Inserter is implemented by self-inserting element types.
	Inserter = dstream.Inserter
	// Extractor is implemented by self-extracting element types.
	Extractor = dstream.Extractor
	// Options tunes stream behaviour.
	Options = dstream.Options
	// MetaPolicy selects the metadata write path.
	MetaPolicy = dstream.MetaPolicy
)

// Stream constructors.
var (
	// Output opens an output d/stream.
	Output = dstream.Output
	// OutputOpts opens an output d/stream with options.
	OutputOpts = dstream.OutputOpts
	// Input opens an input d/stream.
	Input = dstream.Input
)

// Sentinel errors.
var (
	// ErrClosed reports use of a closed stream.
	ErrClosed = dstream.ErrClosed
	// ErrNotAligned reports a collection/stream layout mismatch.
	ErrNotAligned = dstream.ErrNotAligned
	// ErrOrder reports a Figure 2 state-machine violation.
	ErrOrder = dstream.ErrOrder
)
