// Package core marks the paper's primary contribution within the prescribed
// repository layout. The d/stream implementation itself lives in
// pcxxstreams/internal/dstream (see that package's documentation for the
// abstraction, the Figure 2 state machines, and the on-disk format); this
// package re-exports its public surface under the canonical internal/core
// path so the contribution is reachable where the repository structure
// promises it.
package core

import (
	"pcxxstreams/internal/dstream"
)

// Core d/stream types.
type (
	// OStream is an output d/stream (see dstream.OStream).
	OStream = dstream.OStream
	// IStream is an input d/stream (see dstream.IStream).
	IStream = dstream.IStream
	// Encoder is the per-element payload encoder.
	Encoder = dstream.Encoder
	// Decoder is the per-element payload decoder.
	Decoder = dstream.Decoder
	// Inserter is implemented by self-inserting element types.
	Inserter = dstream.Inserter
	// Extractor is implemented by self-extracting element types.
	Extractor = dstream.Extractor
	// Options tunes stream behaviour.
	Options = dstream.Options
	// Option is one functional stream setting for Open/OpenInput.
	Option = dstream.Option
	// Strategy selects the collective data path of a stream.
	Strategy = dstream.Strategy
	// MetaPolicy selects the metadata write path.
	//
	// Deprecated: use Strategy instead.
	MetaPolicy = dstream.MetaPolicy
	// OChannel is the sending end of a stream-to-stream channel.
	OChannel = dstream.OChannel
	// IChannel is the receiving end of a stream-to-stream channel.
	IChannel = dstream.IChannel
)

// Stream strategies.
const (
	// StrategyAuto picks funnel or parallel per record by collection size.
	StrategyAuto = dstream.StrategyAuto
	// StrategyFunnel routes metadata and data through node 0's block.
	StrategyFunnel = dstream.StrategyFunnel
	// StrategyParallel writes with every node hitting the PFS directly.
	StrategyParallel = dstream.StrategyParallel
	// StrategyTwoPhase shuffles to stripe-aligned aggregators first.
	StrategyTwoPhase = dstream.StrategyTwoPhase
)

// Stream constructors.
var (
	// Open opens an output d/stream with functional options.
	Open = dstream.Open
	// OpenInput opens an input d/stream with functional options.
	OpenInput = dstream.OpenInput
	// OpenChannel opens the sending end of a stream-to-stream channel.
	OpenChannel = dstream.OpenChannel
	// OpenChannelInput opens the receiving end of a stream-to-stream channel.
	OpenChannelInput = dstream.OpenChannelInput
	// WithStrategy selects the collective data path.
	WithStrategy = dstream.WithStrategy
	// WithAsync makes output writes write-behind.
	WithAsync = dstream.WithAsync
	// WithChannelWindow sets a channel's per-consumer credit window.
	WithChannelWindow = dstream.WithChannelWindow
)

// Sentinel errors.
var (
	// ErrClosed reports use of a closed stream.
	ErrClosed = dstream.ErrClosed
	// ErrNotAligned reports a collection/stream layout mismatch.
	ErrNotAligned = dstream.ErrNotAligned
	// ErrOrder reports a Figure 2 state-machine violation.
	ErrOrder = dstream.ErrOrder
	// ErrIO wraps a flush or refill that failed in the layers below.
	ErrIO = dstream.ErrIO
	// ErrEOS reports end of stream on a channel's receiving end.
	ErrEOS = dstream.ErrEOS
)
