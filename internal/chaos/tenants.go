package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/server"
	"pcxxstreams/internal/session"
	"pcxxstreams/internal/vtime"
)

// TenantsConfig describes one multi-tenant oracle run: N independent tenant
// programs, each a full SPMD machine, sharing one dstreamd daemon whose
// storage is fault-injected, while a chopper kills every client connection
// at seeded moments mid-run.
type TenantsConfig struct {
	// Tenants is the number of concurrent tenant programs (default 3).
	Tenants int
	// NProcs is each tenant machine's rank count (default 2).
	NProcs int
	// Segments, Particles, Records shape each tenant's SCF pipeline
	// (defaults 2·NProcs+1, 8, 2).
	Segments  int
	Particles int
	Records   int
	// Strategy selects each tenant's collective data path.
	Strategy dstream.Strategy
	// Rates is the fault schedule, applied both to the daemon's storage
	// backends and to every tenant machine's transport (DefaultRates()
	// when zero).
	Rates Rates
	// StripeFactor/StripeUnit shape the daemon's chaotic striped store
	// (defaults 2 × 4096).
	StripeFactor int
	StripeUnit   int64
	// Disconnects is how many times the chopper severs every client
	// connection mid-run (default 3); the moments are seeded.
	Disconnects int
	// ReconnectBudget bounds each session's redial window — exhausting it
	// must yield a clean error, never a hang (default 10s).
	ReconnectBudget time.Duration
	// Watchdog bounds the whole seed in real time; exceeding it is
	// OutcomeHang (default 120s).
	Watchdog time.Duration
	// RecvDeadline bounds each blocking receive inside tenant machines
	// (default 5s).
	RecvDeadline time.Duration
}

func (c TenantsConfig) withDefaults() TenantsConfig {
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.NProcs <= 0 {
		c.NProcs = 2
	}
	if c.Segments <= 0 {
		c.Segments = 2*c.NProcs + 1
	}
	if c.Particles <= 0 {
		c.Particles = 8
	}
	if c.Records <= 0 {
		c.Records = 2
	}
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if c.StripeFactor <= 0 {
		c.StripeFactor = 2
	}
	if c.StripeUnit <= 0 {
		c.StripeUnit = 4096
	}
	if c.Disconnects < 0 {
		c.Disconnects = 0
	} else if c.Disconnects == 0 {
		c.Disconnects = 3
	}
	if c.ReconnectBudget <= 0 {
		c.ReconnectBudget = 10 * time.Second
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 120 * time.Second
	}
	if c.RecvDeadline <= 0 {
		c.RecvDeadline = 5 * time.Second
	}
	return c
}

// tenantName names tenant i of a run.
func tenantName(i int) string { return fmt.Sprintf("tenant-%d", i) }

// tenantSeedBase offsets each tenant's deterministic fill so that every
// tenant's bytes are distinct: a daemon that ever serves tenant A bytes
// written by tenant B fails A's in-band verification, because B's fill
// cannot reproduce A's.
func tenantSeedBase(i int) int { return 100_000 * (i + 1) }

// tenantFile is the file every tenant writes. Deliberately the SAME name
// for all tenants: namespace isolation, not naming discipline, must keep
// their bytes apart.
const tenantFile = "data"

// tenantPipeline is one tenant's SPMD body: fill with the tenant's seeded
// pattern, write Records records, read back on a different layout, verify
// every segment in-band.
func tenantPipeline(cfg TenantsConfig, sess *session.Session, base int) func(*machine.Node) error {
	return func(n *machine.Node) error {
		dw, err := distr.New(cfg.Segments, cfg.NProcs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		src, err := collection.New[scf.Segment](n, dw)
		if err != nil {
			return err
		}
		src.Apply(func(g int, s *scf.Segment) { s.Fill(g+base, cfg.Particles) })

		out, err := sess.Open(n, dw, tenantFile, dstream.WithStrategy(cfg.Strategy))
		if err != nil {
			return err
		}
		for rec := 0; rec < cfg.Records; rec++ {
			if err := dstream.Insert[scf.Segment](out, src); err != nil {
				return err
			}
			if err := out.Write(); err != nil {
				return err
			}
		}
		if err := out.Close(); err != nil {
			return err
		}

		dr, err := distr.New(cfg.Segments, cfg.NProcs, distr.Block, 0)
		if err != nil {
			return err
		}
		back, err := collection.New[scf.Segment](n, dr)
		if err != nil {
			return err
		}
		in, err := sess.OpenInput(n, dr, tenantFile, dstream.WithStrategy(cfg.Strategy))
		if err != nil {
			return err
		}
		for rec := 0; rec < cfg.Records; rec++ {
			if err := in.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](in, back); err != nil {
				return err
			}
			var bad error
			back.Apply(func(g int, s *scf.Segment) {
				var want scf.Segment
				want.Fill(g+base, cfg.Particles)
				if !s.Equal(&want) && bad == nil {
					bad = fmt.Errorf("%w: record %d global %d on rank %d", errCorrupt, rec, g, n.Rank())
				}
			})
			if bad != nil {
				return bad
			}
		}
		return in.Close()
	}
}

// TenantsReference runs every tenant's pipeline fault-free against a local
// file system and returns the per-tenant file images — the byte-identity
// baseline for OK runs (data content is additionally verified in-band every
// run, faulted or not).
func TenantsReference(cfg TenantsConfig) ([][]byte, error) {
	cfg = cfg.withDefaults()
	refs := make([][]byte, cfg.Tenants)
	for i := range refs {
		fs := pfs.NewMemFS(vtime.Paragon())
		sess := session.Local()
		_, err := machine.Run(machine.Config{
			NProcs:  cfg.NProcs,
			Profile: vtime.Paragon(),
			FS:      fs,
		}, tenantPipeline(cfg, sess, tenantSeedBase(i)))
		if err != nil {
			return nil, fmt.Errorf("chaos: fault-free tenant reference failed: %w", err)
		}
		img, err := fs.Image(tenantFile)
		if err != nil {
			return nil, err
		}
		refs[i] = img
	}
	return refs, nil
}

// TenantsSeedResult is one seeded multi-tenant schedule's verdict.
type TenantsSeedResult struct {
	Seed int64
	// Outcomes and Errs are per tenant, index-aligned with tenant names.
	Outcomes []Outcome
	Errs     []error
	// Worst aggregates: the most severe per-tenant outcome, or OutcomeHang
	// if the whole seed outlived the watchdog.
	Worst Outcome
	// Disconnects is how many connection cuts the chopper actually landed.
	Disconnects int
	// Injects maps fault kinds to injection counts, as in SeedResult.
	Injects map[string]int64
}

func worseOf(a, b Outcome) Outcome {
	// Severity order: OK < CleanError < Corrupt < Hang.
	if b > a {
		return b
	}
	return a
}

// RunTenantsSeed executes one seeded multi-tenant schedule: a daemon over
// fault-injected striped storage, cfg.Tenants concurrent tenant machines
// with fault-injected transports, and seeded mid-run connection cuts. Every
// tenant must end byte-identical (in-band verification, plus file image
// equality against refs for OK outcomes) or with a clean error; a hang or a
// cross-tenant byte leak is a forbidden outcome.
func RunTenantsSeed(cfg TenantsConfig, seed int64, refs [][]byte) TenantsSeedResult {
	cfg = cfg.withDefaults()
	mon := dsmon.New()
	res := TenantsSeedResult{
		Seed:     seed,
		Outcomes: make([]Outcome, cfg.Tenants),
		Errs:     make([]error, cfg.Tenants),
	}

	tenants := make([]server.Tenant, cfg.Tenants)
	for i := range tenants {
		tenants[i] = server.Tenant{Name: tenantName(i)}
	}
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Factory: StripedChaosFactory(cfg.StripeFactor, cfg.StripeUnit, seed, cfg.Rates, mon),
		Tenants: tenants,
		// Short grace: expired sessions must free slots fast enough for a
		// campaign of hundreds of seeds not to accumulate daemon state.
		Grace:   2 * time.Second,
		Monitor: mon,
	})
	if err != nil {
		for i := range res.Outcomes {
			res.Outcomes[i] = OutcomeCleanError
			res.Errs[i] = err
		}
		res.Worst = OutcomeCleanError
		return res
	}
	defer srv.Close()

	// The chopper: at seeded moments, sever every client connection. The
	// sessions must resume (within grace and budget) or fail cleanly.
	stop := make(chan struct{})
	var chopped int
	var chopWG sync.WaitGroup
	chopWG.Add(1)
	go func() {
		defer chopWG.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < cfg.Disconnects; i++ {
			// Sub-millisecond-to-few-millisecond delays: the pipelines are
			// short, and a cut only exercises the resume path if it lands
			// while requests are in flight.
			delay := time.Duration(200+rng.Intn(4000)) * time.Microsecond
			select {
			case <-stop:
				return
			case <-time.After(delay):
				chopped += srv.KillConnections()
			}
		}
	}()

	// Tenant goroutines write into a private slice; it is copied into the
	// result only on clean completion, so goroutines leaked by a hang cannot
	// race the caller's reads.
	errs := make([]error, cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runOneTenant(cfg, srv.Addr(), i, seed, refs, mon)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	select {
	case <-done:
	case <-time.After(cfg.Watchdog):
		close(stop)
		res.Worst = OutcomeHang
		for i := range res.Outcomes {
			res.Outcomes[i] = OutcomeHang
		}
		res.Injects = injectCounts(mon)
		return res
	}
	close(stop)
	chopWG.Wait()
	copy(res.Errs, errs)
	res.Disconnects = chopped
	res.Injects = injectCounts(mon)

	for i, err := range res.Errs {
		switch {
		case err == nil:
			res.Outcomes[i] = OutcomeOK
		case errors.Is(err, errCorrupt):
			res.Outcomes[i] = OutcomeCorrupt
		default:
			res.Outcomes[i] = OutcomeCleanError
		}
		res.Worst = worseOf(res.Worst, res.Outcomes[i])
	}
	return res
}

// runOneTenant connects one tenant session, runs its pipeline under a
// fault-injected transport, and — when the run succeeds — verifies the
// daemon-resident file image against the tenant's fault-free reference.
// Transport injections are counted on the shared run monitor so the
// campaign's fault-space coverage check sees them alongside the daemon's
// storage faults.
func runOneTenant(cfg TenantsConfig, addr string, i int, seed int64, refs [][]byte, mon *dsmon.Monitor) error {
	// The client's reconnect budget covers established sessions; a chopper
	// cut landing during the initial hello surfaces as a Connect error.
	// Retry it within the same budget, as a real client would.
	var sess *session.Session
	var err error
	deadline := time.Now().Add(cfg.ReconnectBudget)
	for {
		sess, err = session.ConnectConfig(addr, server.ClientConfig{
			Tenant:          tenantName(i),
			ReconnectBudget: cfg.ReconnectBudget,
		})
		if err == nil {
			break
		}
		if errors.Is(err, server.ErrUnknownTenant) || errors.Is(err, server.ErrBusy) ||
			errors.Is(err, server.ErrQuota) || time.Now().After(deadline) {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer sess.Close()
	// Each tenant machine gets its own transport fault schedule, derived
	// from the seed and the tenant index so schedules differ across tenants
	// but replay identically for a given seed.
	tseed := seed*1000 + int64(i)
	_, err = sess.Run(machine.Config{
		NProcs:  cfg.NProcs,
		Profile: vtime.Paragon(),
		WrapTransport: func(tr comm.Transport) comm.Transport {
			return NewTransport(tr, cfg.NProcs, tseed, cfg.Rates, mon)
		},
		RecvDeadline: cfg.RecvDeadline,
	}, tenantPipeline(cfg, sess, tenantSeedBase(i)))
	if err != nil {
		return err
	}
	// The run verified content in-band; for a completed run the stored
	// image must also be byte-identical to the fault-free reference.
	img, err := sess.FS(vtime.Paragon()).Image(tenantFile)
	if err != nil {
		return err
	}
	if !bytes.Equal(img, refs[i]) {
		return fmt.Errorf("%w: tenant %d image differs from fault-free reference (%d vs %d bytes)",
			errCorrupt, i, len(img), len(refs[i]))
	}
	return nil
}

// TenantsReport aggregates a multi-tenant seed campaign.
type TenantsReport struct {
	Results                             []TenantsSeedResult
	OK, CleanErrors, Corruptions, Hangs int // per-tenant counts
	SeedsAllOK                          int
	Disconnects                         int
	Injects                             map[string]int64
}

// Add folds one seed's result into the report.
func (r *TenantsReport) Add(sr TenantsSeedResult) {
	r.Results = append(r.Results, sr)
	allOK := true
	for _, o := range sr.Outcomes {
		switch o {
		case OutcomeOK:
			r.OK++
		case OutcomeCleanError:
			r.CleanErrors++
			allOK = false
		case OutcomeCorrupt:
			r.Corruptions++
			allOK = false
		case OutcomeHang:
			r.Hangs++
			allOK = false
		}
	}
	if allOK {
		r.SeedsAllOK++
	}
	r.Disconnects += sr.Disconnects
	if r.Injects == nil {
		r.Injects = make(map[string]int64)
	}
	for k, v := range sr.Injects {
		r.Injects[k] += v
	}
}

// RunTenantsSeeds runs seeds [first, first+n) of the multi-tenant oracle
// and aggregates the verdicts, stopping early on the first hang (the
// machinery behind a hang is leaked).
func RunTenantsSeeds(cfg TenantsConfig, first int64, n int) (TenantsReport, error) {
	cfg = cfg.withDefaults()
	refs, err := TenantsReference(cfg)
	if err != nil {
		return TenantsReport{}, err
	}
	var rep TenantsReport
	for i := 0; i < n; i++ {
		sr := RunTenantsSeed(cfg, first+int64(i), refs)
		rep.Add(sr)
		if sr.Worst == OutcomeHang {
			break
		}
	}
	return rep, nil
}
