package chaos

import (
	"bytes"
	"flag"
	"testing"
	"time"

	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
)

var (
	chaosSeed = flag.Int64("chaos.seed", 1, "first seed of the chaos oracle campaign")
	chaosN    = flag.Int("chaos.n", 200, "number of seeded schedules the chaos oracle runs")
)

// reportFailures logs every non-OK seed and fails the test on any forbidden
// outcome (hang or corruption). Clean errors are permitted — retry budgets
// are finite — but logged so a noisy schedule is visible.
func reportFailures(t *testing.T, rep Report) {
	t.Helper()
	for _, sr := range rep.Results {
		if sr.Outcome != OutcomeOK {
			t.Logf("seed %d: %s: %v", sr.Seed, sr.Outcome, sr.Err)
		}
	}
	t.Logf("campaign: %d ok, %d clean errors, %d corruptions, %d hangs over %d seeds",
		rep.OK, rep.CleanErrors, rep.Corruptions, rep.Hangs, len(rep.Results))
	if rep.Hangs != 0 {
		t.Fatalf("%d seed(s) hung — the stack lost progress under transient faults", rep.Hangs)
	}
	if rep.Corruptions != 0 {
		t.Fatalf("%d seed(s) silently corrupted data", rep.Corruptions)
	}
}

// requireAllKinds asserts the campaign provably exercised every fault kind,
// via the dsmon injection counters the chaos layers bump.
func requireAllKinds(t *testing.T, rep Report) {
	t.Helper()
	for _, k := range commKinds {
		if rep.Injects["comm:"+k] == 0 {
			t.Errorf("no seed injected comm fault %q — campaign does not cover the fault space", k)
		}
	}
	for _, k := range pfsKinds {
		if rep.Injects["pfs:"+k] == 0 {
			t.Errorf("no seed injected pfs fault %q — campaign does not cover the fault space", k)
		}
	}
	t.Logf("injections: %v", rep.Injects)
}

// TestChaosOracle is the tentpole acceptance test: the full SCF write→read
// pipeline across NProcs simulated ranks, run under -chaos.n seeded fault
// schedules starting at -chaos.seed. Every run must finish with bytes
// identical to the fault-free reference or a clean error on every rank;
// hangs and silent corruption fail the suite, and the campaign as a whole
// must have injected every fault kind at least once.
func TestChaosOracle(t *testing.T) {
	rep, err := RunSeeds(Config{}, *chaosSeed, *chaosN)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	requireAllKinds(t, rep)
	if rep.OK == 0 {
		t.Error("no seed completed successfully — default rates should mostly be survivable")
	}
}

// TestChaosOracleTwoPhase reruns the full campaign with the two-phase
// collective strategy on both stream directions, so the aggregation
// shuffle, extent assembly, and scatter traffic face the same fault
// schedules as the classic paths — with the same trichotomy verdict.
func TestChaosOracleTwoPhase(t *testing.T) {
	rep, err := RunSeeds(Config{Strategy: dstream.StrategyTwoPhase}, *chaosSeed, *chaosN)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	if rep.OK == 0 {
		t.Error("no two-phase seed completed successfully — default rates should mostly be survivable")
	}
}

// TestChaosOracleParallel completes the per-strategy coverage: the all-ranks
// parallel append/read paths — now drawing every frame and refill buffer
// from the shared pool — face the full seeded fault campaign. A pooling bug
// that resurfaced a recycled buffer would show up here as a corruption
// verdict (and, under -tags pooldebug, as a poison panic at the exact Get).
func TestChaosOracleParallel(t *testing.T) {
	rep, err := RunSeeds(Config{Strategy: dstream.StrategyParallel}, *chaosSeed, *chaosN)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	if rep.OK == 0 {
		t.Error("no parallel-strategy seed completed successfully — default rates should mostly be survivable")
	}
}

// TestChaosOracleReadAhead runs the campaign with the input stream's
// prefetch pipeline on over a striped, fault-injected store: every stripe
// leg of the concurrent fan-out fails on its own schedule while the reader
// holds in-flight background refills. The trichotomy verdict is unchanged —
// byte-identity or a clean error on every rank; a prefetch that outlives
// its stream, leaks a pooled buffer into a wedged rendezvous, or applies a
// stale speculative refill shows up here as a hang or a corruption.
func TestChaosOracleReadAhead(t *testing.T) {
	rep, err := RunSeeds(Config{
		ReadAhead:    2,
		Records:      3,
		StripeFactor: 3,
		StripeUnit:   1 << 12,
	}, *chaosSeed, *chaosN)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	if rep.OK == 0 {
		t.Error("no read-ahead seed completed successfully — default rates should mostly be survivable")
	}
	// The striped factory must actually have put faults under the fan-out.
	for _, k := range pfsKinds {
		if rep.Injects["pfs:"+k] == 0 {
			t.Errorf("no seed injected pfs fault %q under the stripe", k)
		}
	}
	t.Logf("injections: %v", rep.Injects)
}

// TestChaosOraclePlanner runs the campaign with the cost-model planner
// active on both stream directions — full-auto streams (no explicit
// strategy, no explicit read-ahead) over a striped, fault-injected store.
// The injected faults (delays, drops, retries) skew the virtual-time cost
// observations the planner calibrates against mid-stream, which is exactly
// the condition under which a re-plan could split the group: if any rank
// saw a different cost than its peers, it would switch strategies on a
// different record boundary and the collective protocol would deadlock or
// interleave wrong bytes. The oracle therefore asserts, on top of the usual
// trichotomy, that every successful seed's per-rank plan-decision chains
// (FNV-1a over every record's strategy, aggregator count, and depth) are
// bit-identical across ranks on both the write and read side.
func TestChaosOraclePlanner(t *testing.T) {
	cfg := Config{
		Records:      3,
		StripeFactor: 3,
		StripeUnit:   1 << 12,
	}.withDefaults()
	ref, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	agreed := 0
	for i := 0; i < *chaosN; i++ {
		seed := *chaosSeed + int64(i)
		c := cfg
		c.PlanSigs = NewPlanSignatures(cfg.NProcs)
		sr := RunSeed(c, seed, ref)
		rep.Add(sr)
		if sr.Outcome == OutcomeHang {
			break
		}
		// Only completed runs have every rank's chain; a clean error
		// legitimately leaves ranks at different records.
		if sr.Outcome == OutcomeOK {
			if err := c.PlanSigs.Agree(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			} else {
				agreed++
			}
		}
	}
	reportFailures(t, rep)
	if rep.OK == 0 {
		t.Error("no planner seed completed successfully — default rates should mostly be survivable")
	}
	t.Logf("plan-decision chains rank-identical on all %d successful seeds", agreed)
}

// TestReferenceStrategyIdentity: the fault-free pipeline writes the same
// bytes whichever strategy moves them — funnel, parallel, and two-phase are
// rank-to-block assignments, not formats. This pins the cross-strategy
// byte-identity acceptance criterion on the SCF pipeline itself.
func TestReferenceStrategyIdentity(t *testing.T) {
	ref, err := Reference(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []dstream.Strategy{dstream.StrategyFunnel, dstream.StrategyParallel, dstream.StrategyTwoPhase} {
		img, err := Reference(Config{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(img, ref) {
			t.Errorf("strategy %v image differs from auto reference (%d vs %d bytes)", s, len(img), len(ref))
		}
	}
}

// TestChaosOracleTCP repeats a slice of the campaign over real loopback
// sockets, so the framing, write-deadline, and broken-connection paths are
// also exposed to the fault schedule. Smaller seed count: each run pays for
// real dial/accept work.
func TestChaosOracleTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP oracle skipped in -short mode")
	}
	n := *chaosN / 10
	if n < 10 {
		n = 10
	}
	rep, err := RunSeeds(Config{Transport: machine.TransportTCP}, *chaosSeed, n)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
}

// TestChaosOracleScale is the scale cell of the campaign: the full
// pipeline across 64 simulated ranks with the fan-out-sharded collectives
// — the configuration the runtime scale curve runs — under seeded fault
// schedules. This is where a mailbox-ring bug that only shows under many
// concurrent producers (a missed wakeup on a contended gate, a stale
// overflow count, a close racing hundreds of enqueues) graduates from
// torture-suite theory to a hang or corruption verdict. Fewer seeds: one
// 64-rank pipeline costs ~16x a 4-rank one.
func TestChaosOracleScale(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank oracle skipped in -short mode")
	}
	n := *chaosN / 20
	if n < 8 {
		n = 8
	}
	rep, err := RunSeeds(Config{NProcs: 64, Fanout: 8, Records: 1}, *chaosSeed, n)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	if rep.OK == 0 {
		t.Error("no 64-rank seed completed successfully — default rates should mostly be survivable")
	}
}

// TestChaosBrutalRatesFailCleanly cranks the drop rate far past what the
// retry budget absorbs: most seeds must now fail, but every failure must
// still be clean — retry exhaustion may abort a run, never hang or corrupt
// it.
func TestChaosBrutalRatesFailCleanly(t *testing.T) {
	rates := DefaultRates()
	rates.Drop = 0.45
	rep, err := RunSeeds(Config{Rates: rates, Watchdog: 2 * time.Minute}, *chaosSeed, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("brutal campaign: %d ok, %d clean errors, %d corruptions, %d hangs",
		rep.OK, rep.CleanErrors, rep.Corruptions, rep.Hangs)
	if rep.Hangs != 0 {
		t.Fatalf("%d seed(s) hung under brutal rates", rep.Hangs)
	}
	if rep.Corruptions != 0 {
		t.Fatalf("%d seed(s) corrupted data under brutal rates", rep.Corruptions)
	}
	if rep.CleanErrors == 0 {
		t.Error("a 45% drop rate never exhausted a retry budget — exhaustion path untested")
	}
}

// TestReferenceDeterministic: the fault-free pipeline is a fixed point — two
// reference runs produce byte-identical images. Without this the oracle's
// byte-comparison verdict would be meaningless.
func TestReferenceDeterministic(t *testing.T) {
	a, err := Reference(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reference(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two fault-free runs differ (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("reference image is empty")
	}
}
