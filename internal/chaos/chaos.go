// Package chaos is the deterministic fault-injection layer of the d/stream
// stack: seeded per-message transport faults (chaos.Transport) and
// per-operation storage faults (chaos.Backend), plus an end-to-end oracle
// harness (harness.go) that runs the full SCF write→read pipeline under
// hundreds of seeded fault schedules and asserts the stack's resilience
// contract — every run either produces bytes identical to a fault-free run,
// or fails with a clean error on every rank; it never hangs and never
// silently corrupts data.
//
// The injected faults are *transient*: every one of them wraps
// comm.ErrTransient or pfs.ErrTransient, so the retry machinery in the
// endpoints and the file system absorbs them. That makes chaos the
// complement of the permanent-kill injectors (comm.FaultyTransport,
// pfs.FaultyBackend), which model a crashed node or disk and whose errors
// are deliberately fatal.
//
// Every injection is counted in the run's dsmon registry under
// chaos_comm_inject_total{kind=…} and chaos_pfs_inject_total{kind=…}, so a
// chaos run is as observable as a healthy one and tests can assert that a
// schedule really exercised each fault kind.
package chaos

import "time"

// Rates sets the per-operation probability of each fault kind (each in
// [0, 1]; the kinds are evaluated as disjoint slices of one uniform draw,
// so their sum per layer must stay ≤ 1).
type Rates struct {
	// Transport faults, evaluated per Send on the sending rank's stream:
	//
	// Drop discards the message and reports a transient error to the
	// sender — a detected loss (NACK/timeout), which the endpoint retries.
	Drop float64
	// SendErr delivers the message but still reports a transient error, so
	// the endpoint's retry produces a duplicate the receiver must suppress.
	SendErr float64
	// Duplicate delivers the message twice.
	Duplicate float64
	// Delay delivers the message late, from a background goroutine after a
	// real-time pause in (0, MaxDelay].
	Delay float64
	// Reorder holds the message back until the sender's next message has
	// been delivered (or until ReorderFuse elapses), swapping wire order.
	Reorder float64
	// RecvErr fails a receive attempt with a transient error before it
	// looks at the mailbox.
	RecvErr float64

	// Storage faults, evaluated per backend ReadAt/WriteAt:
	//
	// ReadErr / WriteErr fail the operation outright with pfs.ErrTransient.
	ReadErr  float64
	WriteErr float64
	// ShortRead / ShortWrite transfer only a prefix of the request and
	// report pfs.ErrTransient, forcing the retry helpers to resume.
	ShortRead  float64
	ShortWrite float64

	// MaxDelay bounds the real-time delivery delay of a Delay fault.
	MaxDelay time.Duration
	// ReorderFuse bounds how long a reordered message is held when no
	// follow-up send arrives to release it.
	ReorderFuse time.Duration
}

// DefaultRates is an aggressive-but-survivable schedule: every fault kind
// fires often enough that a few-hundred-message run exercises all of them,
// while the per-operation transient rate stays far below what six retry
// attempts absorb (exhaustion probability per op ≈ rate^attempts).
func DefaultRates() Rates {
	return Rates{
		Drop: 0.02, SendErr: 0.02, Duplicate: 0.03, Delay: 0.03, Reorder: 0.03, RecvErr: 0.02,
		ReadErr: 0.03, WriteErr: 0.03, ShortRead: 0.05, ShortWrite: 0.05,
		MaxDelay:    2 * time.Millisecond,
		ReorderFuse: 2 * time.Millisecond,
	}
}

// mix is splitmix64: it turns (seed, salt) into an independent PRNG seed,
// so every rank / file / direction gets its own deterministic stream from
// one schedule seed.
func mix(seed uint64, salt uint64) uint64 {
	z := seed + salt*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
