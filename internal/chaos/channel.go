package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// ChannelConfig describes one channel-oracle pipeline: M producer ranks
// streaming SCF records through a persistent stream-to-stream channel to N
// consumer ranks (block → cyclic, so every record is redistributed in
// flight), under seeded transport faults plus a seeded mid-stream consumer
// stall that drives the producers into their credit windows.
type ChannelConfig struct {
	// Producers and Consumers are the channel group sizes; the machine has
	// Producers+Consumers ranks (defaults 2 and 2).
	Producers int
	Consumers int
	// Segments is the element count (default 2·max(M,N)+1, so the groups'
	// layouts disagree and at least one rank is uneven).
	Segments int
	// Particles per segment (default 8).
	Particles int
	// Records is how many insert+write rounds the producers perform
	// (default 3).
	Records int
	// Window is the channel's per-consumer credit window in bytes (default
	// 4096 — small, so the stalled consumer visibly back-pressures the
	// producers through the credit machinery).
	Window int
	// Stall is the real-time length of the seeded mid-stream consumer stall
	// (default 20ms). The stalled rank and record are derived from the seed.
	Stall time.Duration
	// Rates is the transport fault schedule (DefaultRates() when zero).
	Rates Rates
	// Watchdog and RecvDeadline as in Config.
	Watchdog     time.Duration
	RecvDeadline time.Duration
}

func (c ChannelConfig) withDefaults() ChannelConfig {
	if c.Producers <= 0 {
		c.Producers = 2
	}
	if c.Consumers <= 0 {
		c.Consumers = 2
	}
	if c.Segments <= 0 {
		m := c.Producers
		if c.Consumers > m {
			m = c.Consumers
		}
		c.Segments = 2*m + 1
	}
	if c.Particles <= 0 {
		c.Particles = 8
	}
	if c.Records <= 0 {
		c.Records = 3
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.Stall <= 0 {
		c.Stall = 20 * time.Millisecond
	}
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 60 * time.Second
	}
	if c.RecvDeadline <= 0 {
		c.RecvDeadline = 5 * time.Second
	}
	return c
}

func (c ChannelConfig) dists() (dProd, dCons *distr.Distribution, err error) {
	if dProd, err = distr.New(c.Segments, c.Producers, distr.Block, 0); err != nil {
		return nil, nil, err
	}
	if dCons, err = distr.New(c.Segments, c.Consumers, distr.Cyclic, 0); err != nil {
		return nil, nil, err
	}
	return dProd, dCons, nil
}

// foldSegments digests one consumed record — the rank's local segments in
// global order, each re-encoded with the element codec — into sum, so the
// digest is a pure function of the consumed bytes on either path.
func foldSegments(sum uint64, rec int, d *distr.Distribution, slot int, local []scf.Segment, scratch *dstream.Encoder) uint64 {
	f := fnv.New64a()
	var hdr [8]byte
	for l := range local {
		g := d.GlobalIndex(slot, l)
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(rec), byte(rec>>8), byte(rec>>16), byte(rec>>24)
		hdr[4], hdr[5], hdr[6], hdr[7] = byte(g), byte(g>>8), byte(g>>16), byte(g>>24)
		f.Write(hdr[:])
		scratch.Reset()
		local[l].StreamInsert(scratch)
		f.Write(scratch.Bytes())
	}
	return sum*1099511628211 ^ f.Sum64()
}

// verifySegments checks one consumed record against the deterministic fill.
func verifySegments(rec int, d *distr.Distribution, slot int, local []scf.Segment, particles int) error {
	var want scf.Segment
	for l := range local {
		g := d.GlobalIndex(slot, l)
		want.Fill(g+1000*rec, particles)
		if !local[l].Equal(&want) {
			return fmt.Errorf("%w: record %d global %d", errCorrupt, rec, g)
		}
	}
	return nil
}

// ChannelReference runs the write-then-read file path fault-free on the same
// machine shape and returns each consumer slot's consumed-bytes digest — the
// oracle every chaotic channel run is compared to: the pipeline must deliver
// exactly the bytes the file system would have.
func ChannelReference(cfg ChannelConfig) ([]uint64, error) {
	cfg = cfg.withDefaults()
	p := cfg.Producers + cfg.Consumers
	dProd, dCons, err := cfg.dists()
	if err != nil {
		return nil, err
	}
	wOwners := make([]int, cfg.Segments)
	rOwners := make([]int, cfg.Segments)
	for g := 0; g < cfg.Segments; g++ {
		wOwners[g] = dProd.Owner(g)
		rOwners[g] = p - cfg.Consumers + dCons.Owner(g)
	}
	dW, err := distr.NewExplicit(wOwners, p)
	if err != nil {
		return nil, err
	}
	dR, err := distr.NewExplicit(rOwners, p)
	if err != nil {
		return nil, err
	}
	digests := make([]uint64, cfg.Consumers)
	_, err = machine.Run(machine.Config{
		NProcs:  p,
		Profile: vtime.Paragon(),
		FS:      pfs.NewMemFS(vtime.Paragon()),
	}, func(n *machine.Node) error {
		s, err := dstream.Open(n, dW, "chan-spool")
		if err != nil {
			return err
		}
		c, err := collection.New[scf.Segment](n, dW)
		if err != nil {
			return err
		}
		for rec := 0; rec < cfg.Records; rec++ {
			rec := rec
			c.Apply(func(g int, sg *scf.Segment) { sg.Fill(g+1000*rec, cfg.Particles) })
			if err := dstream.Insert[scf.Segment](s, c); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}

		r, err := dstream.OpenInput(n, dR, "chan-spool")
		if err != nil {
			return err
		}
		back, err := collection.New[scf.Segment](n, dR)
		if err != nil {
			return err
		}
		rank := n.Rank()
		slot := rank - (p - cfg.Consumers)
		var sum uint64
		var scratch dstream.Encoder
		for rec := 0; rec < cfg.Records; rec++ {
			if err := r.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](r, back); err != nil {
				return err
			}
			if rank >= p-cfg.Consumers {
				if err := verifySegments(rec, dCons, slot, back.Local(), cfg.Particles); err != nil {
					return err
				}
				sum = foldSegments(sum, rec, dCons, slot, back.Local(), &scratch)
			}
		}
		if rank >= p-cfg.Consumers {
			digests[slot] = sum
		}
		return r.Close()
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free file reference run failed: %w", err)
	}
	return digests, nil
}

// channelPipeline is the SPMD body of one channel-oracle run. The stalled
// consumer slot and record are seed-derived, so the campaign sweeps the
// stall across the group and the stream.
func channelPipeline(cfg ChannelConfig, seed int64, digests []uint64) func(*machine.Node) error {
	p := cfg.Producers + cfg.Consumers
	stallSlot := int(uint64(seed) % uint64(cfg.Consumers))
	stallRec := int((uint64(seed) >> 3) % uint64(cfg.Records))
	return func(n *machine.Node) error {
		dProd, dCons, err := cfg.dists()
		if err != nil {
			return err
		}
		rank := n.Rank()
		if rank < cfg.Producers {
			s, err := dstream.OpenChannel(n, dProd, dCons, "chan-chaos",
				dstream.WithChannelWindow(cfg.Window))
			if err != nil {
				return err
			}
			local := make([]scf.Segment, s.LocalLen())
			for rec := 0; rec < cfg.Records; rec++ {
				for l := range local {
					local[l].Fill(dProd.GlobalIndex(rank, l)+1000*rec, cfg.Particles)
				}
				if err := dstream.InsertElems[scf.Segment](s, local); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
			}
			return s.Close()
		}

		r, err := dstream.OpenChannelInput(n, dCons, dProd, "chan-chaos",
			dstream.WithChannelWindow(cfg.Window))
		if err != nil {
			return err
		}
		slot := rank - (p - cfg.Consumers)
		local := make([]scf.Segment, r.LocalLen())
		var sum uint64
		var scratch dstream.Encoder
		for rec := 0; rec < cfg.Records; rec++ {
			if err := r.Read(); err != nil {
				return err
			}
			if err := dstream.ExtractElems[scf.Segment](r, local); err != nil {
				return err
			}
			if err := verifySegments(rec, dCons, slot, local, cfg.Particles); err != nil {
				return err
			}
			sum = foldSegments(sum, rec, dCons, slot, local, &scratch)
			if slot == stallSlot && rec == stallRec {
				// The seeded mid-stream stall: this consumer stops reading in
				// real time while the producers run on until the credit
				// window closes over them.
				time.Sleep(cfg.Stall)
			}
		}
		digests[slot] = sum
		return r.Close()
	}
}

// RunChannelSeed executes the channel pipeline under one seeded transport
// fault schedule (plus the seed's consumer stall) and classifies the outcome
// against refDigests (from ChannelReference): the consumed bytes must be
// exactly what the write-then-read file path delivers, or the run must fail
// cleanly on every rank — never hang, never corrupt.
func RunChannelSeed(cfg ChannelConfig, seed int64, refDigests []uint64) SeedResult {
	cfg = cfg.withDefaults()
	p := cfg.Producers + cfg.Consumers
	mon := dsmon.New()
	digests := make([]uint64, cfg.Consumers)

	res := SeedResult{Seed: seed}
	done := make(chan error, 1)
	go func() {
		_, err := machine.Run(machine.Config{
			NProcs:  p,
			Profile: vtime.Paragon(),
			FS:      pfs.NewMemFS(vtime.Paragon()),
			Monitor: mon,
			WrapTransport: func(tr comm.Transport) comm.Transport {
				return NewTransport(tr, p, seed, cfg.Rates, mon)
			},
			RecvDeadline: cfg.RecvDeadline,
		}, channelPipeline(cfg, seed, digests))
		done <- err
	}()

	var err error
	select {
	case err = <-done:
	case <-time.After(cfg.Watchdog):
		res.Outcome = OutcomeHang
		res.Err = fmt.Errorf("chaos: channel seed %d outlived the %v watchdog", seed, cfg.Watchdog)
		res.Injects = injectCounts(mon)
		return res
	}
	res.Injects = injectCounts(mon)

	switch {
	case err == nil:
		res.Outcome = OutcomeOK
		for slot, d := range digests {
			if d != refDigests[slot] {
				res.Outcome = OutcomeCorrupt
				res.Err = fmt.Errorf("chaos: seed %d consumer %d consumed %016x, file path delivers %016x",
					seed, slot, d, refDigests[slot])
				break
			}
		}
	case errors.Is(err, errCorrupt):
		res.Outcome = OutcomeCorrupt
		res.Err = err
	default:
		res.Outcome = OutcomeCleanError
		res.Err = err
	}
	return res
}

// RunChannelSeeds runs seeds [first, first+n) of the channel oracle and
// aggregates the verdicts, stopping early on the first hang.
func RunChannelSeeds(cfg ChannelConfig, first int64, n int) (Report, error) {
	cfg = cfg.withDefaults()
	ref, err := ChannelReference(cfg)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	for i := 0; i < n; i++ {
		sr := RunChannelSeed(cfg, first+int64(i), ref)
		rep.Add(sr)
		if sr.Outcome == OutcomeHang {
			break
		}
	}
	return rep, nil
}
